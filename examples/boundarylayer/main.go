// Boundarylayer is the "real CFD" demo: thin-layer Navier–Stokes flow
// over a no-slip flat plate on a wall-clustered (stretched) grid — the
// configuration F3D-class codes exist for. It combines every extension
// of the reproduction at once: viscous terms, per-face wall boundary
// conditions, stretched spacing, and loop-level parallelism, and prints
// the developing velocity profile.
//
// Run:
//
//	go run ./examples/boundarylayer
package main

import (
	"fmt"
	"runtime"
	"strings"

	"repro/internal/euler"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/parloop"
)

func main() {
	// Wall-normal direction L, clustered hard at the wall (one-sided
	// stretching: all the resolution goes where the boundary layer is).
	z := grid.NewZone("plate", 15, 11, 25)
	z.XL = grid.StretchCoordsOneSided(z.LMax, 2.2)
	z.DL = z.XL[1] - z.XL[0]
	cfg := f3d.DefaultConfig(grid.Case{Name: "plate", Zones: []grid.Zone{z}})
	cfg.Freestream = euler.Prim{Rho: 1, U: 0.5, V: 0, W: 0, P: 1}
	cfg.Dt = f3d.EstimateDt(&cfg, 1.5)
	cfg.Viscous, cfg.Re = true, 500
	cfg.FaceBC = map[f3d.Face]f3d.BCKind{
		f3d.FaceLMin: f3d.BCNoSlipWall, // the plate
		f3d.FaceLMax: f3d.BCFreestream, // far field
	}

	team := parloop.NewTeam(runtime.GOMAXPROCS(0))
	defer team.Close()
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Team: team, Phases: f3d.AllPhases()})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	f3d.InitUniform(s)

	fmt.Printf("flat plate: %v, Re=%g, dt=%.2e, no-slip wall at l=0, %d workers\n\n",
		z, cfg.Re, cfg.Dt, team.Workers())

	coords := z.CoordsL()
	printProfile := func(step int) {
		zs := s.Zones()[0]
		j, k := z.JMax/2, z.KMax/2
		var buf [euler.NC]float64
		fmt.Printf("u/U∞ profile after %d steps (z = wall-normal coordinate):\n", step)
		for l := 0; l < z.LMax; l += 2 {
			zs.Q.Point(j, k, l, buf[:])
			u := buf[1] / buf[0] / cfg.Freestream.U
			bar := int(u*50 + 0.5)
			if bar < 0 {
				bar = 0
			}
			fmt.Printf("  z=%6.4f |%-50s| %.3f\n", coords[l], strings.Repeat("#", bar), u)
		}
		fmt.Println()
	}

	steps := 0
	for _, upTo := range []int{40, 160} {
		for steps < upTo {
			s.Step()
			steps++
		}
		printProfile(steps)
	}

	// The boundary-layer thickness: height where u reaches 99% of U∞.
	zs := s.Zones()[0]
	var buf [euler.NC]float64
	for l := 0; l < z.LMax; l++ {
		zs.Q.Point(z.JMax/2, z.KMax/2, l, buf[:])
		if buf[1]/buf[0] >= 0.99*cfg.Freestream.U {
			fmt.Printf("δ99 ≈ %.4f (grid spacing at wall: %.5f — the stretched grid puts\n",
				coords[l], coords[1]-coords[0])
			fmt.Println("resolution where the gradients are, the reason real F3D grids are clustered)")
			break
		}
	}
}
