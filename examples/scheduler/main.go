// Scheduler demonstrates the space-sharing job scheduler on a ragged
// mix of jobs — the daemon's allocation policy run as a batch, without
// HTTP. A handful of synthetic solver workloads with very different
// loop-level parallelism (M from 2 to 15, the paper's Table 3 shape)
// are submitted at once against a small processor budget.
//
// The program prints two tables:
//
//  1. The allocation argument: for each distinct M in the mix, the
//     naive grant min(M, procs) versus the plateau grant — both reach
//     the same stair-step speedup, but the plateau grant releases the
//     processors that sit on the flat part of the stair, where
//     ceil(M/P) does not change. Those released processors are what
//     lets the scheduler run several jobs at once.
//
//  2. The observed run: per job, requested M, granted P (grown or
//     shrunk while running as the queue drained), the stair-step
//     speedup M/ceil(M/P) at the final grant, sync events, and queue
//     wait versus run time.
//
// Run:
//
//	go run ./examples/scheduler [-procs N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/model"
	"repro/internal/sched"
)

// job describes one synthetic workload in the mix: M units of
// loop-level parallelism and a per-step work budget in cycles.
type job struct {
	name  string
	m     int
	steps int
	work  float64
}

func main() {
	procs := flag.Int("procs", 6, "processor budget to space-share")
	flag.Parse()

	// A ragged mix: big and small M, long and short jobs, submitted
	// back-to-back so the queue actually forms.
	mix := []job{
		{"wing", 15, 40, 3e6},
		{"store", 9, 30, 2e6},
		{"bc-sweep", 2, 20, 1e6},
		{"probe", 3, 15, 5e5},
		{"body", 12, 30, 2e6},
		{"patch", 5, 20, 1e6},
		{"trace", 2, 10, 5e5},
	}

	fmt.Printf("Plateau allocation versus naive allocation on %d processors\n", *procs)
	fmt.Printf("(speedup is the stair-step M/ceil(M/P); both grants reach the same step)\n\n")
	fmt.Printf("%6s  %12s  %14s  %8s  %s\n", "M", "naive grant", "plateau grant", "speedup", "released")
	seen := map[int]bool{}
	for _, j := range mix {
		if seen[j.m] {
			continue
		}
		seen[j.m] = true
		naive := j.m
		if *procs < naive {
			naive = *procs
		}
		p := sched.PlateauGrant(j.m, *procs)
		fmt.Printf("%6d  %12d  %14d  %8.2f  %d procs\n",
			j.m, naive, p, model.StairStepSpeedup(j.m, p), naive-p)
	}

	s := sched.New(sched.Config{
		Procs:         *procs,
		QueueDepth:    len(mix),
		Grow:          true,
		ShrinkToAdmit: true,
	})
	defer s.Close()

	type submitted struct {
		job
		h *sched.Handle
	}
	start := time.Now()
	var subs []submitted
	for _, j := range mix {
		profile := model.StepProfile{
			Loops: []model.LoopClass{{
				Name:        j.name,
				WorkCycles:  j.work,
				Parallelism: j.m,
				SyncEvents:  1,
			}},
			SerialCycles: j.work / 50,
		}
		h, err := s.Submit(sched.NewSyntheticJob(j.name, profile, j.steps, 1))
		if err != nil {
			log.Fatalf("submit %s: %v", j.name, err)
		}
		subs = append(subs, submitted{j, h})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	for _, sub := range subs {
		if err := sub.h.Wait(ctx); err != nil {
			log.Fatalf("job %s: %v", sub.name, err)
		}
	}
	elapsed := time.Since(start)

	fmt.Printf("\nObserved run (%d jobs, budget %d procs, grow and shrink-to-admit on)\n\n", len(mix), *procs)
	fmt.Printf("%3s  %-8s  %4s  %7s  %8s  %7s  %5s  %9s  %9s\n",
		"id", "name", "M", "granted", "speedup", "resizes", "sync", "wait", "run")
	for _, sub := range subs {
		st := sub.h.Status()
		fmt.Printf("%3d  %-8s  %4d  %7d  %8.2f  %7d  %5d  %8.0fms  %8.0fms\n",
			st.ID, st.Name, st.Requested, st.Granted, st.Speedup,
			st.Resizes, st.SyncEvents, st.WaitSec*1000, st.RunSec*1000)
	}

	m := s.Metrics()
	fmt.Printf("\n%d jobs in %.2fs; peak %d/%d procs in use; %d grant resizes; %d sync events\n",
		m.Completed, elapsed.Seconds(), m.MaxInUse, m.Procs, m.Resizes, m.SyncEvents)
}
