// Stairstep demonstrates the paper's central scaling phenomenon: when a
// loop has only N units of parallelism, ideal speedup is not linear but
// a stair function N/ceil(N/P) (Table 3, Figure 1), with plateaus the
// paper observed in F3D between 48–64 processors (1M case) and 88–104
// processors (59M case).
//
// The program prints the predicted stair-step for the paper's N = 15
// alongside a measured run of a 15-iteration loop of heavy,
// equal-sized work items on 1..GOMAXPROCS workers. On a multi-core
// host the measured curve reproduces the plateaus (5–7 workers all
// give 5x, etc.); on a single-core host the measured column stays
// flat at 1 — the prediction column still shows the paper's table.
//
// Run:
//
//	go run ./examples/stairstep
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/parloop"
)

// workItem burns a fixed, deterministic amount of CPU.
func workItem() float64 {
	x := 1.0
	for i := 0; i < 4_000_000; i++ {
		x = x + 1/x
	}
	return x
}

func main() {
	const n = 15
	maxWorkers := runtime.GOMAXPROCS(0)
	fmt.Printf("loop with %d units of parallelism, up to %d workers\n\n", n, maxWorkers)

	// Serial baseline.
	start := time.Now()
	var sink float64
	for i := 0; i < n; i++ {
		sink += workItem()
	}
	serial := time.Since(start)
	fmt.Printf("serial: %v (checksum %.3f)\n\n", serial.Round(time.Millisecond), sink)

	fmt.Printf("%8s %12s %12s %14s\n", "workers", "predicted", "measured", "max units/proc")
	for w := 1; w <= maxWorkers && w <= n; w++ {
		team := parloop.NewTeam(w)
		start := time.Now()
		_ = parloop.SumFloat64(team, n, func(i int) float64 { return workItem() })
		elapsed := time.Since(start)
		team.Close()
		measured := serial.Seconds() / elapsed.Seconds()
		fmt.Printf("%8d %12.3f %12.3f %14d\n",
			w, model.StairStepSpeedup(n, w), measured, model.MaxUnitsPerProcessor(n, w))
	}

	// Where do the jumps land for the paper's zone dimensions?
	fmt.Println("\npredicted speedup jumps (paper §5: at M/5, M/4, M/3, M/2, M):")
	for _, m := range []int{15, 89, 175} {
		fmt.Printf("  M=%3d: %v\n", m, model.SpeedupJumps(m, int(math.Min(float64(2*m), 200))))
	}
}
