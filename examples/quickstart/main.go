// Quickstart: parallelizing a vectorizable loop nest with loop-level
// parallelism, the way the paper does it.
//
// The nest below is Example 1 from the paper: a triply nested loop with
// no dependencies in any direction. Vectorization would target the
// inner (J) loop; loop-level parallelism targets the OUTER (L) loop so
// that one synchronization event covers a whole zone of work (Table 2's
// "outer loop" row).
//
// Run:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/model"
	"repro/internal/parloop"
)

const (
	lmax, kmax, jmax = 64, 64, 64
)

func main() {
	workers := runtime.GOMAXPROCS(0)
	team := parloop.NewTeam(workers)
	defer team.Close()
	fmt.Printf("team of %d workers\n\n", workers)

	a := make([]float64, lmax*kmax*jmax)
	b := make([]float64, lmax*kmax*jmax)
	for i := range b {
		b[i] = float64(i%97) / 97
	}

	// Example 1: parallelize the outer loop. The body is the two inner
	// loops — vector-friendly unit stride, one parallel region total.
	start := time.Now()
	team.For(lmax, func(l int) {
		for k := 0; k < kmax; k++ {
			base := (l*kmax + k) * jmax
			for j := 0; j < jmax; j++ {
				v := b[base+j]
				a[base+j] = 2.5*v*v + 0.5*v + 1
			}
		}
	})
	fmt.Printf("outer-loop parallel nest: %v, %d sync events\n",
		time.Since(start).Round(time.Microsecond), team.SyncEvents())

	// A deterministic parallel reduction: same bits every run for a
	// fixed team size, so parallelization does not change convergence
	// checks.
	sum := parloop.SumFloat64(team, len(a), func(i int) float64 { return a[i] })
	fmt.Printf("checksum: %.10f\n\n", sum)

	// Measure this machine's synchronization cost and apply the paper's
	// Table 1 criterion: how much work must a loop contain before
	// parallelizing it is worthwhile here?
	sync := parloop.MeasureSyncCost(team, 200)
	fmt.Printf("measured fork-join cost: %v per region\n", sync.PerSync)
	const assumedClockMHz = 2000 // order of magnitude for a modern core
	cycles := sync.Cycles(assumedClockMHz)
	minWork := model.MinWorkPerLoop(workers, cycles, model.OverheadBudget)
	fmt.Printf("≈ %.0f cycles at %d MHz → a loop needs ≥ %.2e cycles of work\n",
		cycles, assumedClockMHz, minWork)
	fmt.Printf("  (our nest holds ~%d flop-heavy iterations — compare Table 1)\n", lmax*kmax*jmax)

	// Example 2: merging two loops under one region halves the
	// synchronization events.
	team.ResetSyncEvents()
	team.Region(func(ctx *parloop.WorkerCtx) {
		ctx.For(len(a), func(i int) { a[i] += 1 })
		// No barrier needed: the second loop only touches indices the
		// same worker owns.
		ctx.For(len(a), func(i int) { a[i] *= 0.5 })
	})
	fmt.Printf("\ntwo merged loops: %d sync event(s) instead of 2\n", team.SyncEvents())
}
