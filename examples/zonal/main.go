// Zonal demonstrates the multi-zone structure of the paper's F3D runs:
// the 1-million-point case is three zones stacked along J (15×75×70,
// 87×75×70, 89×75×70) exchanging interface data each step, and each
// zone's loops carry their own limited parallelism — the origin of the
// composite stair-step curves in the paper's Figures 2 and 3.
//
// The program
//
//  1. splits one grid into two coupled zones and shows the zonal run
//     tracking the single-zone run while a disturbance crosses the
//     interface;
//  2. prints the per-zone available parallelism of the paper's cases
//     and the processor counts where each zone's stair-step jumps —
//     the numbers behind "nearly flat performance between 48 and 64
//     processors".
//
// Run:
//
//	go run ./examples/zonal
package main

import (
	"fmt"
	"math"

	"repro/internal/euler"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/model"
)

func main() {
	part1()
	fmt.Println()
	part2()
}

func part1() {
	const n, kmax, lmax, split = 25, 11, 10, 12
	c, ifaces := f3d.SplitAlongJ("demo", n, kmax, lmax, split)
	zonalCfg := f3d.DefaultConfig(c)
	zonalCfg.Interfaces = ifaces
	singleCfg := f3d.DefaultConfig(grid.Single(n, kmax, lmax))
	zonalCfg.Dt = singleCfg.Dt

	zs, err := f3d.NewCacheSolver(zonalCfg, f3d.CacheOptions{})
	if err != nil {
		panic(err)
	}
	defer zs.Close()
	ss, err := f3d.NewCacheSolver(singleCfg, f3d.CacheOptions{})
	if err != nil {
		panic(err)
	}
	defer ss.Close()

	// The same physical pulse, centered left of the interface.
	offsets := []int{0, split}
	initPulseAt(zs, offsets, 7)
	initPulseAt(ss, []int{0}, 7)

	fmt.Printf("two zones (%v | %v) coupled at physical j=%d..%d vs one zone %v\n",
		c.Zones[0], c.Zones[1], split, split+1, singleCfg.Case.Zones[0])
	fmt.Printf("%6s %14s %14s %12s\n", "step", "zonal resid", "single resid", "max |Δfield|")
	for i := 1; i <= 20; i++ {
		rz := zs.Step()
		rs := ss.Step()
		if i%4 == 0 {
			fmt.Printf("%6d %14.6e %14.6e %12.3e\n", i, rz.Residual, rs.Residual, fieldDiff(zs, ss, offsets))
		}
	}
	fmt.Println("the disturbance crosses the explicit interface with a small, decaying error.")
}

func part2() {
	fmt.Println("per-zone loop parallelism of the paper's cases (J-limited key loops):")
	for _, c := range []grid.Case{grid.Paper1M(), grid.Paper59M()} {
		fmt.Printf("  case %s (%d points):\n", c.Name, c.Points())
		for _, z := range c.Zones {
			jumps := model.SpeedupJumps(z.JMax, 128)
			hi := jumps
			if len(hi) > 5 {
				hi = hi[len(hi)-5:]
			}
			fmt.Printf("    %-22v parallelism %3d, last stair-step jumps at procs %v\n", z, z.JMax, hi)
		}
	}
	fmt.Println("  → zones 2 and 3 dominate the work; their J/2 boundaries (44/45 and")
	fmt.Println("    87/88) anchor the flat regions the paper reports in Figures 2-3.")
}

func initPulseAt(s f3d.Solver, offsets []int, cj float64) {
	cfg := s.Config()
	f3d.InitUniform(s)
	for zi, zst := range s.Zones() {
		z := zst.Zone
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					dj := float64(j+offsets[zi]) - cj
					dk := float64(k) - float64(z.KMax-1)/2
					dl := float64(l) - float64(z.LMax-1)/2
					g := 0.03 * math.Exp(-(dj*dj+dk*dk+dl*dl)/9)
					p := euler.Prim{
						Rho: cfg.Freestream.Rho * (1 + g),
						U:   cfg.Freestream.U, V: cfg.Freestream.V, W: cfg.Freestream.W,
						P: cfg.Freestream.P * (1 + g),
					}
					u := p.Cons()
					zst.Q.SetPoint(j, k, l, u[:])
				}
			}
		}
	}
}

func fieldDiff(zonal, single f3d.Solver, offsets []int) float64 {
	uz := single.Zones()[0]
	var a, b [euler.NC]float64
	worst := 0.0
	for zi, zst := range zonal.Zones() {
		z := zst.Zone
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					zst.Q.Point(j, k, l, a[:])
					uz.Q.Point(j+offsets[zi], k, l, b[:])
					for c := 0; c < euler.NC; c++ {
						if d := math.Abs(a[c] - b[c]); d > worst {
							worst = d
						}
					}
				}
			}
		}
	}
	return worst
}
