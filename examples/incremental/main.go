// Incremental reproduces the paper's §4 parallelization workflow on the
// F3D solver: profile the serial code to find the expensive loops, ask
// the Table 1 criterion which are worth parallelizing, then parallelize
// them one phase at a time — validating after every stage that the
// solution is unchanged ("this allows one to alternate between
// parallelization and debugging").
//
// Run:
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/parloop"
	"repro/internal/profile"
)

const steps = 5

func main() {
	c := grid.Scaled(grid.Paper1M(), 0.30)
	cfg := f3d.DefaultConfig(c)
	fmt.Printf("case: %d zones, %d points\n\n", len(c.Zones), c.Points())

	// Stage 0: profile the serial solver phase by phase.
	prof := profile.New()
	serial := mustCache(cfg, f3d.CacheOptions{})
	defer serial.Close()
	f3d.InitPulse(serial, 0.02)
	// The phase decomposition (which loop classes exist, and how much of
	// the step each holds) is independent of what is parallelized.
	profiled := f3d.StepProfileFor(c, f3d.AllPhases())
	for i := 0; i < steps; i++ {
		prof.Time("whole-step", func() { serial.Step() })
	}
	// Charge the analytic per-phase split so the profile table shows
	// loop granularity (a real prof run would show the subroutines).
	total := prof.Total()
	for _, lc := range profiled.Loops {
		frac := lc.WorkCycles / profiled.TotalCycles()
		prof.Add(lc.Name, time.Duration(float64(total)*frac))
	}
	entries := prof.Entries()
	fmt.Println("serial profile (prof-style):")
	fmt.Print(profile.Format(entries, 8))

	// Which loops clear the Table 1 bar on this machine?
	workers := runtime.GOMAXPROCS(0)
	team := parloop.NewTeam(workers)
	defer team.Close()
	sync := parloop.MeasureSyncCost(team, 100)
	const clockMHz = 2000
	advice := profile.Advise(entries, clockMHz, sync.Cycles(clockMHz), workers, model.OverheadBudget)
	fmt.Printf("\nTable 1 advice (this host: sync ≈ %v, %d workers):\n", sync.PerSync, workers)
	for _, a := range advice {
		verdict := "leave serial"
		if a.Parallelize {
			verdict = "PARALLELIZE"
		}
		fmt.Printf("  %-28s %10.2e cycles/call  → %s\n", a.Entry.Name, a.WorkCycles, verdict)
	}

	// The same profile judged for a 64-processor Origin 2000, whose
	// synchronization events cost tens of thousands of cycles: the
	// cheap loops now fall below the Table 1 bar — the paper's reason
	// for leaving boundary conditions serial.
	sgi := machine.Origin2000R12K()
	sgiAdvice := profile.Advise(entries, sgi.ClockMHz, sgi.SyncCostCycles(64), 64, model.OverheadBudget)
	fmt.Printf("\nTable 1 advice (simulated %s, 64 procs, sync %.0f cycles):\n",
		sgi.Name, sgi.SyncCostCycles(64))
	for _, a := range sgiAdvice {
		verdict := "leave serial"
		if a.Parallelize {
			verdict = "PARALLELIZE"
		}
		fmt.Printf("  %-28s %10.2e cycles/call  → %s\n", a.Entry.Name, a.WorkCycles, verdict)
	}

	// Stages 1..3: enable one phase at a time, checking the answer.
	reference := snapshot(serial)
	stages := []struct {
		name   string
		phases f3d.ParallelPhases
	}{
		{"RHS only", f3d.ParallelPhases{RHS: true}},
		{"+ J/K sweeps", f3d.ParallelPhases{RHS: true, SweepJK: true}},
		{"+ L sweep (all)", f3d.AllPhases()},
	}
	fmt.Printf("\nincremental parallelization (%d workers):\n", workers)
	for k, st := range stages {
		s := mustCache(cfg, f3d.CacheOptions{Team: team, Phases: st.phases})
		f3d.InitPulse(s, 0.02)
		start := time.Now()
		for i := 0; i < steps; i++ {
			s.Step()
		}
		elapsed := time.Since(start)
		diff := maxDiffFrom(reference, s)
		pred := profile.CoverageSpeedup(entries[1:], k+1, workers) // entries[0] is whole-step
		fmt.Printf("  stage %d (%-16s): %8v for %d steps, predicted Amdahl speedup %.1fx, |Δanswer| = %g\n",
			k+1, st.name, elapsed.Round(time.Millisecond), steps, pred, diff)
		s.Close()
	}
	fmt.Println("\nanswer unchanged at every stage — the paper's validation loop in miniature.")
}

func mustCache(cfg f3d.Config, opts f3d.CacheOptions) *f3d.CacheSolver {
	s, err := f3d.NewCacheSolver(cfg, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// snapshot runs the reference solver's state out to a comparable form.
func snapshot(s *f3d.CacheSolver) *f3d.CacheSolver { return s }

func maxDiffFrom(ref *f3d.CacheSolver, s *f3d.CacheSolver) float64 {
	return f3d.MaxPointwiseDiff(ref, s)
}
