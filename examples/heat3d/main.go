// Heat3d applies the paper's whole methodology to a second vectorizable
// code: an explicit 3-D heat-equation kernel.
//
// Three versions of the same update are run and compared:
//
//  1. vector-style: separate passes per direction streaming through
//     full-field temporaries (the organization a vector machine likes);
//  2. cache-tuned serial: one fused pass, all three directions' stencil
//     work done per point while it is hot in cache (§4 concept 3:
//     "maximize the amount of work per cache miss");
//  3. cache-tuned parallel: the fused pass with its outer loop under a
//     parloop region (Example 1).
//
// All three produce bitwise-identical fields; the timings show the
// serial-tuning gain and the parallel gain separately, which is exactly
// the order the paper tunes in (serial first, then parallelize).
//
// Run:
//
//	go run ./examples/heat3d
package main

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"repro/internal/parloop"
)

const (
	n     = 96 // cube edge
	steps = 20
	alpha = 0.1
)

func idx(j, k, l int) int { return (l*n+k)*n + j }

func initField() []float64 {
	f := make([]float64, n*n*n)
	for l := 0; l < n; l++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				f[idx(j, k, l)] = math.Sin(float64(j)*0.2) * math.Cos(float64(k)*0.3) * math.Sin(float64(l)*0.1)
			}
		}
	}
	return f
}

// stepVector is the vector-style update: one full-field pass per
// direction, each reading the whole field and writing a full-field
// temporary — long unit-stride streams, three times the memory traffic.
func stepVector(u, d2sum, tmp []float64) {
	for i := range d2sum {
		d2sum[i] = 0
	}
	// J direction.
	for l := 1; l < n-1; l++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				i := idx(j, k, l)
				tmp[i] = (u[i-1] - u[i]) - (u[i] - u[i+1])
			}
		}
	}
	for l := 1; l < n-1; l++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				i := idx(j, k, l)
				d2sum[i] += tmp[i]
			}
		}
	}
	// K direction.
	for l := 1; l < n-1; l++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				i := idx(j, k, l)
				tmp[i] = (u[i-n] - u[i]) - (u[i] - u[i+n])
			}
		}
	}
	for l := 1; l < n-1; l++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				i := idx(j, k, l)
				d2sum[i] += tmp[i]
			}
		}
	}
	// L direction.
	for l := 1; l < n-1; l++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				i := idx(j, k, l)
				tmp[i] = (u[i-n*n] - u[i]) - (u[i] - u[i+n*n])
			}
		}
	}
	for l := 1; l < n-1; l++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				i := idx(j, k, l)
				d2sum[i] += tmp[i]
				u[i] += alpha * d2sum[i]
			}
		}
	}
}

// cacheSlab is the fused cache-tuned update for an L slab: every
// direction's contribution is accumulated while the point is resident,
// in the same J→K→L addition order as the vector version so the result
// is bitwise identical.
func cacheSlab(u, unew []float64, l0, l1 int) {
	for l := l0; l < l1; l++ {
		for k := 1; k < n-1; k++ {
			for j := 1; j < n-1; j++ {
				i := idx(j, k, l)
				d2 := 0.0
				d2 += (u[i-1] - u[i]) - (u[i] - u[i+1])
				d2 += (u[i-n] - u[i]) - (u[i] - u[i+n])
				d2 += (u[i-n*n] - u[i]) - (u[i] - u[i+n*n])
				unew[i] = u[i] + alpha*d2
			}
		}
	}
}

func runVector() ([]float64, time.Duration) {
	u := initField()
	d2sum := make([]float64, len(u))
	tmp := make([]float64, len(u))
	start := time.Now()
	for s := 0; s < steps; s++ {
		stepVector(u, d2sum, tmp)
	}
	return u, time.Since(start)
}

func runCache(team *parloop.Team) ([]float64, time.Duration) {
	u := initField()
	unew := append([]float64(nil), u...)
	start := time.Now()
	for s := 0; s < steps; s++ {
		if team == nil {
			cacheSlab(u, unew, 1, n-1)
		} else {
			team.ForChunked(n-2, func(lo, hi int) {
				cacheSlab(u, unew, 1+lo, 1+hi)
			})
		}
		u, unew = unew, u
	}
	return u, time.Since(start)
}

func maxDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func main() {
	fmt.Printf("heat3d: %d³ grid, %d steps\n\n", n, steps)

	uv, tv := runVector()
	fmt.Printf("vector-style (full-field passes):   %8v\n", tv.Round(time.Millisecond))

	us, ts := runCache(nil)
	fmt.Printf("cache-tuned serial (fused pass):    %8v  (%.2fx vs vector)\n",
		ts.Round(time.Millisecond), tv.Seconds()/ts.Seconds())

	workers := runtime.GOMAXPROCS(0)
	team := parloop.NewTeam(workers)
	defer team.Close()
	up, tp := runCache(team)
	fmt.Printf("cache-tuned parallel (%2d workers):  %8v  (%.2fx vs serial)\n",
		workers, tp.Round(time.Millisecond), ts.Seconds()/tp.Seconds())

	// The paper's invariant: tuning and parallelization change the code
	// shape, never the answer. Interior updates are computed with the
	// identical float sequence, so only boundary handling could differ —
	// and it does not.
	fmt.Printf("\nmax |vector − cache-serial|   = %g\n", maxDiff(uv, us))
	fmt.Printf("max |serial − parallel|       = %g\n", maxDiff(us, up))
	fmt.Printf("sync events across %d steps: %d (one per step: outer-loop parallelism)\n",
		steps, team.SyncEvents())
}
