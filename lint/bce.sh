#!/bin/sh
# Bounds-check-elimination lint for the tuned kernel layer.
#
# Prints every bounds check the compiler could NOT eliminate from the
# tuned kernel files (linalg/tuned.go, f3d/kernels_tuned.go,
# parloop/reduce_tuned.go), sorted. CI diffs this against the
# committed lint/bce_golden.txt: a new IsInBounds site in a hot loop
# is a silent performance regression — the kernel still passes every
# correctness test while the inner loop re-grows per-element checks.
#
# The golden list is not empty: the up-front [:n] pins are themselves
# IsSliceInBounds sites (once per call, by design), and a few
# down-counting back-substitution loops carry checks the current
# compiler cannot discharge. The lint pins the list, so changes in
# either direction are visible and deliberate.
#
# To regenerate after editing a tuned kernel:
#     ./lint/bce.sh > lint/bce_golden.txt
set -eu
cd "$(dirname "$0")/.."
# -a forces recompilation: a cached build would skip the compile and
# print nothing.
go build -a -gcflags='-d=ssa/check_bce' \
    ./internal/linalg ./internal/parloop ./internal/f3d 2>&1 |
    grep -E 'tuned\.go' | LC_ALL=C sort
