// Package repro's root benchmark harness regenerates every table and
// figure of ARL-TR-2556 and benchmarks the design choices DESIGN.md
// calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Analytical tables (1, 2, 3, Figure 1) are exact reproductions; the
// measured-performance artifacts (Table 4, Figures 2–3) come from the
// calibrated SMP simulator (this host has one CPU — see DESIGN.md); the
// code-shape claims (serial tuning factor, Examples 1–4) are measured
// on the real solver and runtime. Key reproduced values are attached as
// benchmark metrics; the full row/series dumps come from cmd/tables and
// cmd/perfsim.
package repro

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/autopar"
	"repro/internal/cachesim"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/parloop"
	"repro/internal/sim"
	"repro/internal/vecperf"
)

// ---------------------------------------------------------------------------
// Table 1: minimum work per parallelized loop for efficient execution.

func BenchmarkTable1(b *testing.B) {
	var t [][]float64
	for i := 0; i < b.N; i++ {
		t = model.Table1()
	}
	b.ReportMetric(t[0][0], "cycles_p2_sync1e4")
	b.ReportMetric(t[3][2], "cycles_p128_sync1e6")
}

// ---------------------------------------------------------------------------
// Table 2: available work per synchronization event (1M-point zone).

func BenchmarkTable2(b *testing.B) {
	var rows []model.Table2Row
	for i := 0; i < b.N; i++ {
		rows = model.Table2()
	}
	// 3-D outer loop at 10 cycles/point: 10,000,000 cycles.
	b.ReportMetric(rows[6].Work[0], "cycles_3d_outer_10cpp")
	// 3-D boundary inner loop at 10 cycles/point: 1,000 cycles.
	b.ReportMetric(rows[7].Work[0], "cycles_3d_bc_inner_10cpp")
}

// ---------------------------------------------------------------------------
// Table 3: predicted stair-step speedup, N = 15.

func BenchmarkTable3(b *testing.B) {
	var rows []model.Table3Row
	for i := 0; i < b.N; i++ {
		rows = model.Table3()
	}
	b.ReportMetric(rows[4].Speedup, "speedup_5to7procs")
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup_15procs")
}

// ---------------------------------------------------------------------------
// Figure 1: predicted speedup curves, N ∈ {5,15,25,35,45}, P = 1..50.

func BenchmarkFigure1(b *testing.B) {
	var series [][]float64
	for i := 0; i < b.N; i++ {
		series = model.Figure1Series()
	}
	// The N=45 curve's long plateau at 22.5 (P = 23..44).
	b.ReportMetric(series[4][22], "n45_p23_speedup")
	b.ReportMetric(series[4][43], "n45_p44_speedup")
}

// ---------------------------------------------------------------------------
// Table 4: measured F3D performance on the two evaluation platforms
// (simulated; calibrated to the paper's 1-processor rows).

func BenchmarkTable4(b *testing.B) {
	var oneM, fiftyNineM []sim.Table4Row
	for i := 0; i < b.N; i++ {
		oneM, fiftyNineM = sim.Table4()
	}
	b.ReportMetric(oneM[0].Sgi.StepsPerHour, "sgi_1M_1p_steps_hr")        // paper: 181
	b.ReportMetric(oneM[0].Sun.StepsPerHour, "sun_1M_1p_steps_hr")        // paper: 138
	b.ReportMetric(fiftyNineM[0].Sgi.StepsPerHour, "sgi_59M_1p_steps_hr") // paper: 2.3
	last := fiftyNineM[len(fiftyNineM)-1]
	b.ReportMetric(last.Sgi.StepsPerHour, "sgi_59M_124p_steps_hr") // paper: 153
	b.ReportMetric(last.Sgi.Speedup, "sgi_59M_124p_speedup")       // paper: ≈66
}

// ---------------------------------------------------------------------------
// Figure 2: 1M-point case sweeps on Origin 2000 / HPC 10000 / V2500.

func BenchmarkFigure2(b *testing.B) {
	var series []sim.FigureSeries
	for i := 0; i < b.N; i++ {
		series = sim.Figure2()
	}
	sgi := series[0].Results
	plat := sim.FindPlateaus(sgi, 0.01, 8)
	var hi sim.Plateau
	for _, p := range plat {
		if p.Lo >= 40 && p.Lo <= 70 {
			hi = p
		}
	}
	// Paper: "nearly flat performance between 48 and 64 processors".
	b.ReportMetric(float64(hi.Lo), "plateau_lo_procs")
	b.ReportMetric(float64(hi.Hi), "plateau_hi_procs")
}

// ---------------------------------------------------------------------------
// Figure 3: 59M-point case sweeps, including the 195-MHz Origin.

func BenchmarkFigure3(b *testing.B) {
	var series []sim.FigureSeries
	for i := 0; i < b.N; i++ {
		series = sim.Figure3()
	}
	sgi := series[0].Results
	// Paper: flat between 88 and 104 processors.
	b.ReportMetric(sgi[87].StepsPerHour, "sgi_88p_steps_hr")
	b.ReportMetric(sgi[103].StepsPerHour, "sgi_104p_steps_hr")
	b.ReportMetric(sgi[103].StepsPerHour/sgi[87].StepsPerHour, "flatness_88_104")
}

// ---------------------------------------------------------------------------
// §5 serial-tuning claim: the cache-tuned variant vs the vector-style
// original, single processor. (The paper reports >10x on the Power
// Challenge, where plane-sized scratch thrashed a small cache; on a
// modern host with large caches the gap is smaller but must favor the
// cache variant.)

func benchCase() grid.Case { return grid.Scaled(grid.Paper1M(), 0.22) }

// benchTeam returns a team of at least four workers so the
// synchronization-structure ablations (Examples 1-3, BC, merged
// regions) expose their region counts even on hosts with few cores.
func benchTeam() *parloop.Team {
	w := runtime.GOMAXPROCS(0)
	if w < 4 {
		w = 4
	}
	return parloop.NewTeam(w)
}

func BenchmarkSerialTuning(b *testing.B) {
	cfg := f3d.DefaultConfig(benchCase())
	b.Run("vector", func(b *testing.B) {
		s, err := f3d.NewVectorSolver(cfg)
		if err != nil {
			b.Fatal(err)
		}
		f3d.InitPulse(s, 0.02)
		b.ResetTimer()
		var flops float64
		for i := 0; i < b.N; i++ {
			flops += s.Step().Flops
		}
		b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "MFLOPS")
	})
	b.Run("cache", func(b *testing.B) {
		s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		f3d.InitPulse(s, 0.02)
		b.ResetTimer()
		var flops float64
		for i := 0; i < b.N; i++ {
			flops += s.Step().Flops
		}
		b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "MFLOPS")
	})
}

// ---------------------------------------------------------------------------
// §5 size-scan claim: single-processor MFLOPS roughly flat across
// problem sizes (the opposite of vector machines' vector-length
// sensitivity).

func BenchmarkSizeScan(b *testing.B) {
	for _, scale := range []float64{0.10, 0.16, 0.25} {
		c := grid.Scaled(grid.Paper1M(), scale)
		b.Run(fmt.Sprintf("points=%d", c.Points()), func(b *testing.B) {
			s, err := f3d.NewCacheSolver(f3d.DefaultConfig(c), f3d.CacheOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			f3d.InitPulse(s, 0.02)
			b.ResetTimer()
			var flops float64
			for i := 0; i < b.N; i++ {
				flops += s.Step().Flops
			}
			b.ReportMetric(flops/b.Elapsed().Seconds()/1e6, "MFLOPS")
		})
	}
}

// ---------------------------------------------------------------------------
// Real parallel solver scaling (limited by this host's cores; the
// interesting fleet-scale curves are Figures 2-3 above).

func BenchmarkParallelSolver(b *testing.B) {
	cfg := f3d.DefaultConfig(benchCase())
	maxW := runtime.GOMAXPROCS(0)
	for w := 1; w <= maxW; w *= 2 {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var team *parloop.Team
			if w > 1 {
				team = parloop.NewTeam(w)
				defer team.Close()
			}
			s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Team: team, Phases: f3d.AllPhases()})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			f3d.InitPulse(s, 0.02)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Example 1 ablation: parallelize the inner loop (one region per outer
// iteration) vs the outer loop (one region total). Same arithmetic,
// orders of magnitude different synchronization counts.

func BenchmarkExample1(b *testing.B) {
	const outer, inner = 64, 4096
	data := make([]float64, outer*inner)
	team := benchTeam()
	defer team.Close()
	body := func(o, i int) {
		v := data[o*inner+i]
		data[o*inner+i] = v*v*0.5 + v + 1
	}
	b.Run("inner-loop", func(b *testing.B) {
		team.ResetSyncEvents()
		for n := 0; n < b.N; n++ {
			for o := 0; o < outer; o++ {
				team.For(inner, func(i int) { body(o, i) })
			}
		}
		b.ReportMetric(float64(team.SyncEvents())/float64(b.N), "syncs/op")
	})
	b.Run("outer-loop", func(b *testing.B) {
		team.ResetSyncEvents()
		for n := 0; n < b.N; n++ {
			team.For(outer, func(o int) {
				for i := 0; i < inner; i++ {
					body(o, i)
				}
			})
		}
		b.ReportMetric(float64(team.SyncEvents())/float64(b.N), "syncs/op")
	})
}

// ---------------------------------------------------------------------------
// Example 2 ablation: two loops as separate regions vs merged under one
// region.

func BenchmarkExample2(b *testing.B) {
	const n = 1 << 16
	a := make([]float64, n)
	c := make([]float64, n)
	team := benchTeam()
	defer team.Close()
	b.Run("separate-regions", func(b *testing.B) {
		team.ResetSyncEvents()
		for i := 0; i < b.N; i++ {
			team.For(n, func(j int) { a[j] = float64(j) * 0.5 })
			team.For(n, func(j int) { c[j] = a[j] + 1 })
		}
		b.ReportMetric(float64(team.SyncEvents())/float64(b.N), "syncs/op")
	})
	b.Run("merged-region", func(b *testing.B) {
		team.ResetSyncEvents()
		for i := 0; i < b.N; i++ {
			team.Region(func(ctx *parloop.WorkerCtx) {
				ctx.For(n, func(j int) { a[j] = float64(j) * 0.5 })
				ctx.For(n, func(j int) { c[j] = a[j] + 1 })
			})
		}
		b.ReportMetric(float64(team.SyncEvents())/float64(b.N), "syncs/op")
	})
}

// ---------------------------------------------------------------------------
// Example 3 ablation: parallel regions opened inside a callee, once per
// outer iteration, vs one region hoisted into the parent. The paper:
// "this optimization reduces the number of synchronization events by
// 1-3 orders of magnitude".

func BenchmarkExample3(b *testing.B) {
	const outer, inner = 256, 512
	var sink atomic.Int64
	team := benchTeam()
	defer team.Close()
	sub := func(j int) int64 {
		s := int64(0)
		for i := 0; i < inner; i++ {
			s += int64(i ^ j)
		}
		return s
	}
	b.Run("child-regions", func(b *testing.B) {
		team.ResetSyncEvents()
		for n := 0; n < b.N; n++ {
			for j := 0; j < outer; j++ {
				// The callee opens its own region each call.
				team.ForChunked(inner, func(lo, hi int) {
					s := int64(0)
					for i := lo; i < hi; i++ {
						s += int64(i ^ j)
					}
					sink.Add(s)
				})
			}
		}
		b.ReportMetric(float64(team.SyncEvents())/float64(b.N), "syncs/op")
	})
	b.Run("hoisted-parent", func(b *testing.B) {
		team.ResetSyncEvents()
		for n := 0; n < b.N; n++ {
			team.For(outer, func(j int) {
				sink.Add(sub(j))
			})
		}
		b.ReportMetric(float64(team.SyncEvents())/float64(b.N), "syncs/op")
	})
}

// ---------------------------------------------------------------------------
// Example 4: the three memory-access orderings through the cache/TLB/
// NUMA simulator.

func BenchmarkExample4(b *testing.B) {
	cfg := cachesim.DefaultTraceConfig(8)
	cfg.JMax, cfg.KMax, cfg.LMax = 48, 48, 48
	for _, ord := range []cachesim.Ordering{
		cachesim.OrderingIdeal, cachesim.OrderingAcceptable, cachesim.OrderingUnacceptable,
	} {
		name := []string{"ideal", "acceptable", "unacceptable"}[int(ord)]
		b.Run(name, func(b *testing.B) {
			var r cachesim.Report
			for i := 0; i < b.N; i++ {
				r = cachesim.Trace(cfg, ord)
			}
			b.ReportMetric(100*r.CacheMissRate, "cache_miss_%")
			b.ReportMetric(100*r.TLBMissRate, "tlb_miss_%")
			b.ReportMetric(r.AvgSharersPerPage, "sharers/page")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: scheduling policies on a ragged (triangular) workload.

func BenchmarkSchedules(b *testing.B) {
	const n = 2048
	team := parloop.NewTeam(runtime.GOMAXPROCS(0))
	defer team.Close()
	var sink atomic.Int64
	ragged := func(lo, hi int) {
		s := int64(0)
		for i := lo; i < hi; i++ {
			for k := 0; k < i; k++ { // cost grows with index
				s += int64(k)
			}
		}
		sink.Add(s)
	}
	for _, sched := range []parloop.Schedule{parloop.Static, parloop.StaticCyclic, parloop.Dynamic, parloop.Guided} {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				team.ForSched(n, sched, 32, ragged)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: parallelizing the boundary-condition loops vs leaving them
// serial (the paper's §3 trade-off).

func BenchmarkBCParallelization(b *testing.B) {
	cfg := f3d.DefaultConfig(benchCase())
	team := benchTeam()
	defer team.Close()
	for _, parBC := range []bool{false, true} {
		name := "bc-serial"
		phases := f3d.AllPhases()
		if parBC {
			name = "bc-parallel"
			phases.BC = true
		}
		b.Run(name, func(b *testing.B) {
			s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Team: team, Phases: phases})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			f3d.InitPulse(s, 0.02)
			team.ResetSyncEvents()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.ReportMetric(float64(team.SyncEvents())/float64(b.N), "syncs/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Ablation: per-phase fork-join regions vs one merged region per zone
// step (Example 3 applied to the whole solver).

func BenchmarkMergedRegions(b *testing.B) {
	cfg := f3d.DefaultConfig(benchCase())
	team := benchTeam()
	defer team.Close()
	for _, merged := range []bool{false, true} {
		name := "per-phase"
		if merged {
			name = "merged"
		}
		b.Run(name, func(b *testing.B) {
			s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Team: team, Phases: f3d.AllPhases(), Merged: merged})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			f3d.InitPulse(s, 0.02)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
		})
	}
}

// ---------------------------------------------------------------------------
// The synchronization cost itself (the paper's §3 input parameter).

func BenchmarkSyncCost(b *testing.B) {
	team := parloop.NewTeam(runtime.GOMAXPROCS(0))
	defer team.Close()
	stats := parloop.MeasureSyncCost(team, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		team.For(1<<4, func(int) {}) // degenerate region: pure overhead
	}
	b.ReportMetric(float64(stats.PerSync.Nanoseconds()), "ns/sync_measured")

	// Map the measured cost onto the paper's Table 1 criterion for a
	// hypothetical 2-GHz processor.
	cycles := stats.Cycles(2000)
	b.ReportMetric(model.MinWorkPerLoop(team.Workers(), cycles, model.OverheadBudget), "min_work_cycles")
}

// ---------------------------------------------------------------------------
// §8 reproduction: automatic parallelization vs profile-guided
// directives (Wolfe's "parallelizing compilers don't work"; Hisley's
// parallel slowdown). Predicted speedups of the three strategies on a
// model F3D-like program.

func BenchmarkAutoParStrategies(b *testing.B) {
	big := func(name string, work float64) *autopar.Nest {
		return &autopar.Nest{
			Name:  name,
			Loops: []autopar.Loop{{Var: "l", N: 350}, {Var: "k", N: 450}, {Var: "j", N: 175}},
			Accesses: []autopar.Access{
				autopar.WriteTo("q", autopar.Idx("j"), autopar.Idx("k"), autopar.Idx("l")),
				autopar.Read("rhs", autopar.Idx("j"), autopar.Idx("k"), autopar.Idx("l")),
			},
			WorkPerIter: work,
		}
	}
	nests := []*autopar.Nest{big("rhs", 50), big("sweep", 80)}
	for i := 0; i < 8; i++ {
		nests = append(nests, &autopar.Nest{
			Name:  "helper",
			Loops: []autopar.Loop{{Var: "k", N: 75}, {Var: "j", N: 89}},
			Accesses: []autopar.Access{
				autopar.WriteTo("bc", autopar.Idx("j"), autopar.Idx("k")),
			},
			WorkPerIter: 4,
			Calls:       2000,
		})
	}
	sgi := machine.Origin2000R12K()
	m := autopar.Machine{Procs: 16, SyncCost: sgi.SyncCostCycles(16) * 10, Budget: model.OverheadBudget}
	var auto, inner, guided float64
	for i := 0; i < b.N; i++ {
		auto = autopar.PredictSpeedup(nests, autopar.Outermost, m)
		inner = autopar.PredictSpeedup(nests, autopar.Innermost, m)
		guided = autopar.PredictSpeedup(nests, autopar.CostGuided, m)
	}
	b.ReportMetric(auto, "speedup_automatic")
	b.ReportMetric(inner, "speedup_innermost")
	b.ReportMetric(guided, "speedup_guided")
}

// ---------------------------------------------------------------------------
// §4 scratch-discipline claim: plane-sized scratch (vector) vs
// pencil-sized scratch (cache-tuned) on a 1994-class 2 MB cache — the
// memory-system mechanism behind the paper's >10x serial tuning gain.

func BenchmarkScratchDiscipline(b *testing.B) {
	cfg := cachesim.DefaultScratchConfig(89, 75, 4, 2<<20)
	var plane, pencil cachesim.ScratchReport
	b.Run("plane", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plane = cachesim.ScratchTrace(cfg, cachesim.PlaneScratch)
		}
		b.ReportMetric(100*plane.MissRate, "miss_%")
	})
	b.Run("pencil", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pencil = cachesim.ScratchTrace(cfg, cachesim.PencilScratch)
		}
		b.ReportMetric(100*pencil.MissRate, "miss_%")
		b.ReportMetric(cachesim.ScratchSpeedupEstimate(plane, pencil, 1, 100), "est_speedup_x")
	})
}

// ---------------------------------------------------------------------------
// §2 framing: vector-length sensitivity of the machines the codes came
// from. The 1M case's first zone (J = 15) cripples a C90 pipe and does
// not bother a cache-based RISC processor — the asymmetry the whole
// approach rides on.

func BenchmarkVectorLengthSensitivity(b *testing.B) {
	c90 := vecperf.CrayC90()
	var short, long float64
	for i := 0; i < b.N; i++ {
		short = c90.ZoneSweepMFLOPS(15, 75*70, 4)
		long = c90.ZoneSweepMFLOPS(175, 450*350, 4)
	}
	b.ReportMetric(short, "c90_J15_MFLOPS")
	b.ReportMetric(long, "c90_J175_MFLOPS")
	b.ReportMetric(float64(c90.HalfPerformanceLength(4)), "n_half")
}

// ---------------------------------------------------------------------------
// Ablation: tridiagonal (2nd-difference) vs pentadiagonal
// (4th-difference) implicit dissipation — the ARC3D-style accelerator's
// cost per step and its convergence payoff.

func BenchmarkImplicitDissipation(b *testing.B) {
	for _, d4 := range []bool{false, true} {
		name := "tridiagonal-2nd"
		if d4 {
			name = "pentadiagonal-4th"
		}
		b.Run(name, func(b *testing.B) {
			cfg := f3d.DefaultConfig(benchCase())
			cfg.ImplicitDissip4 = d4
			s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			f3d.InitPulse(s, 0.02)
			// Convergence payoff: residual after a fixed 20 steps.
			probe, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
			if err != nil {
				b.Fatal(err)
			}
			defer probe.Close()
			f3d.InitPulse(probe, 0.02)
			var res f3d.StepStats
			for i := 0; i < 20; i++ {
				res = probe.Step()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Step()
			}
			b.ReportMetric(res.Residual*1e6, "residual_at_20steps_x1e6")
		})
	}
}
