// Package vecperf models execution on classic vector supercomputers —
// the machines the paper's §2 frames its whole project against ("from
// the mid-1970s to the mid-1990s, the terms 'vector computers' and
// 'supercomputers' were nearly synonymous (e.g., Cray C90)").
//
// A vector pipe executes a loop of N elements in
//
//	startup + ceil(N / VL) · chunkOverhead + N / ratePerCycle
//
// cycles: the startup and per-chunk costs amortize only over long
// vectors, which is why vector machines love the long inner loops the
// paper's codes were written for and hate short ones (the 15-point J
// dimension of the 1M case's first zone), while cache-based RISC
// processors are largely indifferent to vector length. The package
// quantifies both sides of §2's equivalence claim: "any job that
// exhibits an acceptable level of performance when using one processor
// of a C90 should exhibit an acceptable level of performance when using
// a modest number of RISC processors."
package vecperf

import "fmt"

// VectorMachine describes one vector processor.
type VectorMachine struct {
	Name     string
	ClockMHz float64
	// VL is the vector register length (elements per strip-mined chunk).
	VL int
	// FlopsPerCycle is the peak floating-point issue rate of the pipes.
	FlopsPerCycle float64
	// StartupCycles is the fixed cost of issuing one vector loop.
	StartupCycles float64
	// ChunkCycles is the per-strip overhead (pipeline refill per VL
	// elements).
	ChunkCycles float64
}

// CrayC90 returns a single C90 CPU: 244 MHz, two pipes at two flops per
// cycle each (≈1 GFLOPS peak), 128-element vector registers. Startup
// and strip overheads are representative textbook values (the paper
// gives none; absolute C90 rates here are assumptions, documented as
// such in EXPERIMENTS.md — the *shape* in vector length is the point).
func CrayC90() *VectorMachine {
	return &VectorMachine{
		Name:          "Cray C90 (1 CPU)",
		ClockMHz:      244,
		VL:            128,
		FlopsPerCycle: 4,
		StartupCycles: 60,
		ChunkCycles:   15,
	}
}

// LoopCycles returns the cycles to execute a vectorized loop of n
// elements performing flopsPerElement floating-point operations each.
func (m *VectorMachine) LoopCycles(n int, flopsPerElement float64) float64 {
	if n < 0 {
		panic(fmt.Sprintf("vecperf: LoopCycles n must be >= 0, got %d", n))
	}
	if n == 0 {
		return 0
	}
	chunks := (n + m.VL - 1) / m.VL
	return m.StartupCycles + float64(chunks)*m.ChunkCycles +
		float64(n)*flopsPerElement/m.FlopsPerCycle
}

// EffectiveMFLOPS returns the delivered rate on a loop of n elements at
// flopsPerElement each — the vector-length sensitivity curve.
func (m *VectorMachine) EffectiveMFLOPS(n int, flopsPerElement float64) float64 {
	if n < 1 || flopsPerElement <= 0 {
		panic(fmt.Sprintf("vecperf: EffectiveMFLOPS needs n >= 1 and positive flops, got %d/%g", n, flopsPerElement))
	}
	cycles := m.LoopCycles(n, flopsPerElement)
	seconds := cycles / (m.ClockMHz * 1e6)
	return float64(n) * flopsPerElement / seconds / 1e6
}

// PeakMFLOPS returns the machine's peak rate.
func (m *VectorMachine) PeakMFLOPS() float64 {
	return m.ClockMHz * m.FlopsPerCycle
}

// HalfPerformanceLength returns n½ — the vector length at which the
// loop delivers half the asymptotic rate (Hockney's classic metric).
func (m *VectorMachine) HalfPerformanceLength(flopsPerElement float64) int {
	if flopsPerElement <= 0 {
		panic(fmt.Sprintf("vecperf: HalfPerformanceLength needs positive flops, got %g", flopsPerElement))
	}
	// Asymptotic rate (per element cost as n→∞, amortizing chunk
	// overhead over VL elements).
	asympCyclesPerElem := flopsPerElement/m.FlopsPerCycle + m.ChunkCycles/float64(m.VL)
	for n := 1; n < 1_000_000; n++ {
		if m.LoopCycles(n, flopsPerElement)/float64(n) <= 2*asympCyclesPerElem {
			return n
		}
	}
	return 1_000_000
}

// ZoneSweepMFLOPS returns the delivered rate of an implicit sweep whose
// inner (vector) loops run over vecLen elements and are re-issued
// reissues times (once per line of the plane, per plane of the zone,
// etc.) — how zone dimensions translate to vector efficiency.
func (m *VectorMachine) ZoneSweepMFLOPS(vecLen, reissues int, flopsPerElement float64) float64 {
	if vecLen < 1 || reissues < 1 {
		panic(fmt.Sprintf("vecperf: ZoneSweepMFLOPS needs vecLen, reissues >= 1, got %d/%d", vecLen, reissues))
	}
	cycles := float64(reissues) * m.LoopCycles(vecLen, flopsPerElement)
	seconds := cycles / (m.ClockMHz * 1e6)
	return float64(vecLen*reissues) * flopsPerElement / seconds / 1e6
}
