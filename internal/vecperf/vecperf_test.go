package vecperf

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeakAndAsymptote(t *testing.T) {
	m := CrayC90()
	if got := m.PeakMFLOPS(); math.Abs(got-976) > 1e-9 {
		t.Errorf("C90 peak = %g MFLOPS, want 976", got)
	}
	// Long vectors at decent arithmetic intensity approach (but never
	// exceed) peak.
	long := m.EffectiveMFLOPS(1_000_000, 8)
	if long >= m.PeakMFLOPS() {
		t.Errorf("delivered %g exceeds peak %g", long, m.PeakMFLOPS())
	}
	if long < 0.9*m.PeakMFLOPS() {
		t.Errorf("long-vector rate %g too far below peak %g", long, m.PeakMFLOPS())
	}
}

func TestVectorLengthSensitivity(t *testing.T) {
	// The §2 story: the paper's zone 1 has a 15-point J dimension —
	// crippling for a vector pipe, irrelevant for a cache processor.
	m := CrayC90()
	short := m.EffectiveMFLOPS(15, 2)
	long := m.EffectiveMFLOPS(450, 2)
	if short >= long/3 {
		t.Errorf("15-element vectors should be several times slower: %g vs %g MFLOPS", short, long)
	}
	// Monotone improvement with vector length (sampled; strip-mining
	// makes the exact curve sawtooth between multiples of VL, so compare
	// across full strips).
	prev := 0.0
	for _, n := range []int{16, 128, 256, 512, 4096} {
		r := m.EffectiveMFLOPS(n, 2)
		if r < prev {
			t.Errorf("rate fell from %g to %g at n=%d", prev, r, n)
		}
		prev = r
	}
}

func TestHalfPerformanceLength(t *testing.T) {
	m := CrayC90()
	nHalf := m.HalfPerformanceLength(2)
	if nHalf < 20 || nHalf > 400 {
		t.Errorf("n½ = %d, expected a classic O(100) value", nHalf)
	}
	// Consistency: at n½ the per-element cost is within 2x asymptotic.
	asymp := 2/m.FlopsPerCycle + m.ChunkCycles/float64(m.VL)
	perElem := m.LoopCycles(nHalf, 2) / float64(nHalf)
	if perElem > 2*asymp*1.01 {
		t.Errorf("per-element cost at n½ = %g, want <= %g", perElem, 2*asymp)
	}
}

func TestZoneSweepMirrorsPaperZones(t *testing.T) {
	// The 1M case's zones as the vector machine sees them: zone 1
	// (J=15, reissued per K×L line) delivers far less than zone 3
	// (J=89) and the 59M zone 3 (J=175). Vector codes split their work
	// into many simple loops, so the per-loop arithmetic intensity is
	// low (~4 flops/element) and startup dominates short vectors.
	m := CrayC90()
	z1 := m.ZoneSweepMFLOPS(15, 75*70, 4)
	z3 := m.ZoneSweepMFLOPS(89, 75*70, 4)
	big := m.ZoneSweepMFLOPS(175, 450*350, 4)
	if !(z1 < z3 && z3 < big) {
		t.Errorf("vector efficiency not ordered by J length: %g, %g, %g", z1, z3, big)
	}
	if z1 > 0.5*big {
		t.Errorf("short-vector zone should lose at least half the rate: %g vs %g", z1, big)
	}
}

func TestEquivalenceClaim(t *testing.T) {
	// §2: "any job that exhibits an acceptable level of performance when
	// using one processor of a C90 should exhibit an acceptable level of
	// performance when using a modest number of RISC processors." With a
	// C90 CPU delivering ~40-60% of its 976 MFLOPS peak on long-vector
	// CFD and the tuned RISC code at 237 MFLOPS per Origin processor,
	// the C90-equivalence point is 2-3 Origin processors — "modest".
	m := CrayC90()
	c90 := m.EffectiveMFLOPS(450, 50) * 0.6 // memory/scalar derating
	const originPerProc = 237
	equiv := c90 / originPerProc
	if equiv < 1 || equiv > 8 {
		t.Errorf("C90-equivalence = %.1f Origin processors, expected a modest number", equiv)
	}
}

func TestPanicsAndZero(t *testing.T) {
	m := CrayC90()
	if m.LoopCycles(0, 2) != 0 {
		t.Error("zero-length loop should cost nothing")
	}
	for name, fn := range map[string]func(){
		"neg n":    func() { m.LoopCycles(-1, 2) },
		"eff n":    func() { m.EffectiveMFLOPS(0, 2) },
		"eff f":    func() { m.EffectiveMFLOPS(1, 0) },
		"nhalf":    func() { m.HalfPerformanceLength(0) },
		"sweep":    func() { m.ZoneSweepMFLOPS(0, 1, 2) },
		"reissues": func() { m.ZoneSweepMFLOPS(1, 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLoopCyclesAdditiveProperty(t *testing.T) {
	// Splitting a loop in two never helps (each half pays startup): the
	// reason the vector code fused loops and maximized inner trip counts.
	m := CrayC90()
	f := func(au, bu uint16) bool {
		a, b := int(au%5000)+1, int(bu%5000)+1
		whole := m.LoopCycles(a+b, 3)
		split := m.LoopCycles(a, 3) + m.LoopCycles(b, 3)
		return split >= whole-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
