package sim

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/model"
)

func flatProfile(work float64, par int) model.StepProfile {
	return model.StepProfile{
		Loops: []model.LoopClass{{Name: "main", WorkCycles: work, Parallelism: par, SyncEvents: 1}},
	}
}

func TestRunBasicScaling(t *testing.T) {
	m := machine.Origin2000R12K()
	prof := flatProfile(1e10, 1<<20)
	res := Sweep(prof, m, 16)
	if len(res) != 16 {
		t.Fatalf("Sweep returned %d results", len(res))
	}
	if math.Abs(res[0].Speedup-1) > 1e-12 {
		t.Errorf("speedup at 1 proc = %g, want 1", res[0].Speedup)
	}
	// With huge parallelism and small sync cost, speedup is near linear.
	if res[15].Speedup < 15.5 || res[15].Speedup > 16 {
		t.Errorf("speedup at 16 procs = %g, want ≈16", res[15].Speedup)
	}
	// MFLOPS at 1 proc matches the machine's calibrated delivered rate.
	if math.Abs(res[0].MFLOPS-m.DeliveredMFLOPSPerProc) > m.DeliveredMFLOPSPerProc*0.01 {
		t.Errorf("1-proc MFLOPS = %g, want ≈%g", res[0].MFLOPS, m.DeliveredMFLOPSPerProc)
	}
	// Steps/hour and MFLOPS are proportional.
	r0 := res[0]
	for _, r := range res {
		ratio := r.MFLOPS / r.StepsPerHour
		if math.Abs(ratio-r0.MFLOPS/r0.StepsPerHour) > 1e-9*ratio {
			t.Errorf("MFLOPS not proportional to steps/hour at %d procs", r.Procs)
		}
	}
}

func TestStairStepVisibleInSweep(t *testing.T) {
	// Parallelism 15 with negligible sync must show Table 3's plateaus.
	m := machine.Origin2000R12K()
	m.SyncBaseCycles, m.SyncPerProcCycles = 0, 0
	prof := flatProfile(1e12, 15)
	res := Sweep(prof, m, 15)
	for p := 5; p <= 7; p++ {
		if math.Abs(res[p-1].Speedup-5) > 1e-9 {
			t.Errorf("speedup at %d procs = %g, want 5", p, res[p-1].Speedup)
		}
	}
	if math.Abs(res[14].Speedup-15) > 1e-9 {
		t.Errorf("speedup at 15 procs = %g, want 15", res[14].Speedup)
	}
}

func TestSyncCostCausesDropoff(t *testing.T) {
	// A tiny loop with growing sync cost must peak and then slow down —
	// the first of the paper's two "lesser of two evils" regimes (§4).
	m := machine.Origin2000R12K()
	m.SyncBaseCycles, m.SyncPerProcCycles = 1e5, 5e4
	prof := flatProfile(2e7, 1<<20)
	res := Sweep(prof, m, 128)
	best, bestP := 0.0, 0
	for _, r := range res {
		if r.StepsPerHour > best {
			best, bestP = r.StepsPerHour, r.Procs
		}
	}
	if bestP >= 64 {
		t.Errorf("expected peak well below 64 procs, got %d", bestP)
	}
	if res[127].StepsPerHour >= best {
		t.Error("no dropoff after peak")
	}
}

func TestTable4Shape(t *testing.T) {
	oneM, fiftyNineM := Table4()
	if len(oneM) != len(Table4ProcCounts1M) || len(fiftyNineM) != len(Table4ProcCounts59M) {
		t.Fatalf("row counts wrong: %d, %d", len(oneM), len(fiftyNineM))
	}
	// Single-processor anchors must be near the paper's measurements:
	// SGI ≈ 181 steps/hr (1M) and ≈ 2.3 steps/hr (59M);
	// SUN ≈ 138 and ≈ 2.1.
	within := func(got, want, relTol float64) bool {
		return math.Abs(got-want) <= want*relTol
	}
	if !within(oneM[0].Sgi.StepsPerHour, 181, 0.10) {
		t.Errorf("SGI 1M 1-proc steps/hr = %.1f, paper 181", oneM[0].Sgi.StepsPerHour)
	}
	if !within(oneM[0].Sun.StepsPerHour, 138, 0.10) {
		t.Errorf("SUN 1M 1-proc steps/hr = %.1f, paper 138", oneM[0].Sun.StepsPerHour)
	}
	if !within(fiftyNineM[0].Sgi.StepsPerHour, 2.3, 0.15) {
		t.Errorf("SGI 59M 1-proc steps/hr = %.2f, paper 2.3", fiftyNineM[0].Sgi.StepsPerHour)
	}
	if !within(fiftyNineM[0].Sun.StepsPerHour, 2.1, 0.15) {
		t.Errorf("SUN 59M 1-proc steps/hr = %.2f, paper 2.1", fiftyNineM[0].Sun.StepsPerHour)
	}
	// SUN is N/A beyond 64 processors.
	for _, r := range fiftyNineM {
		if r.Procs > 64 && r.Sun != nil {
			t.Errorf("SUN result present at %d procs, paper prints N/A", r.Procs)
		}
		if r.Procs <= 64 && r.Sun == nil {
			t.Errorf("SUN result missing at %d procs", r.Procs)
		}
	}
	find := func(rows []Table4Row, p int) Table4Row {
		for _, r := range rows {
			if r.Procs == p {
				return r
			}
		}
		t.Fatalf("no row at %d procs", p)
		return Table4Row{}
	}
	// Near-monotone rise with processor count for the 59M case (the
	// paper's numbers climb through 124 procs; on model plateaus the
	// growing sync cost shaves off a fraction of a percent).
	for i := 1; i < len(fiftyNineM); i++ {
		if fiftyNineM[i].Sgi.StepsPerHour < fiftyNineM[i-1].Sgi.StepsPerHour*0.99 {
			t.Errorf("59M SGI steps/hr fell >1%% between %d and %d procs",
				fiftyNineM[i-1].Procs, fiftyNineM[i].Procs)
		}
	}
	// Headline 59M absolute anchors (paper: 128 steps/hr at 88 procs,
	// 153 at 124): within 25%.
	if r := find(fiftyNineM, 88).Sgi.StepsPerHour; math.Abs(r-128) > 128*0.25 {
		t.Errorf("59M SGI at 88 procs = %.0f steps/hr, paper 128", r)
	}
	if r := find(fiftyNineM, 124).Sgi.StepsPerHour; math.Abs(r-153) > 153*0.25 {
		t.Errorf("59M SGI at 124 procs = %.0f steps/hr, paper 153", r)
	}
	// Who-wins: at 64 processors the SGI outperforms the SUN on both
	// cases (as in the paper: 3,694 vs 2,819 and 91 vs 73), while
	// per-processor delivered MFLOPS stay within 2× of each other.
	r1 := find(oneM, 64)
	if r1.Sgi.StepsPerHour <= r1.Sun.StepsPerHour {
		t.Errorf("1M at 64p: SGI (%.0f) should beat SUN (%.0f)", r1.Sgi.StepsPerHour, r1.Sun.StepsPerHour)
	}
	perProcSgi := r1.Sgi.MFLOPS / 64
	perProcSun := r1.Sun.MFLOPS / 64
	ratio := perProcSgi / perProcSun
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("per-proc MFLOPS ratio SGI/SUN = %.2f, paper finds them similar", ratio)
	}
	// Scaling-band check against the paper's headline results: SGI 59M
	// speedup at 124 procs was 153/2.3 ≈ 66; ours must land within a
	// factor of 1.5.
	s := find(fiftyNineM, 124).Sgi.Speedup
	if s < 44 || s > 100 {
		t.Errorf("59M SGI speedup at 124 procs = %.1f, paper ≈66", s)
	}
}

func TestFigure2And3Shape(t *testing.T) {
	f2 := Figure2()
	if len(f2) != 3 {
		t.Fatalf("Figure2 has %d series", len(f2))
	}
	for _, s := range f2 {
		if len(s.Results) != s.Machine.MaxProcs {
			t.Errorf("%s series has %d points, want %d", s.Machine.Name, len(s.Results), s.Machine.MaxProcs)
		}
	}
	// The 1M case must show a flat region in the upper processor range
	// (paper: "nearly flat performance between 48 and 64 processors").
	sgi := f2[0]
	plat := FindPlateaus(sgi.Results, 0.01, 8)
	foundHigh := false
	for _, p := range plat {
		if p.Lo >= 40 && p.Lo <= 70 && p.Hi-p.Lo >= 8 {
			foundHigh = true
		}
	}
	if !foundHigh {
		t.Errorf("1M SGI sweep shows no high-P plateau; plateaus: %+v", plat)
	}

	f3 := Figure3()
	// 59M: flat region in the 88–172 band (jump at ceil(175/2)=88).
	sgi59 := f3[0]
	plat59 := FindPlateaus(sgi59.Results, 0.01, 10)
	found59 := false
	for _, p := range plat59 {
		if p.Lo >= 85 && p.Lo <= 95 {
			found59 = true
		}
	}
	if !found59 {
		t.Errorf("59M SGI sweep shows no plateau starting near 88; plateaus: %+v", plat59)
	}
	// The 195-MHz machine stays below the 300-MHz machine everywhere.
	r10k := f3[1]
	for i := range r10k.Results {
		if r10k.Results[i].StepsPerHour >= sgi59.Results[i].StepsPerHour {
			t.Errorf("195-MHz Origin beats 300-MHz Origin at %d procs", i+1)
			break
		}
	}
}

func TestFindPlateaus(t *testing.T) {
	res := []Result{
		{Procs: 1, StepsPerHour: 100},
		{Procs: 2, StepsPerHour: 200},
		{Procs: 3, StepsPerHour: 201},
		{Procs: 4, StepsPerHour: 202},
		{Procs: 5, StepsPerHour: 203},
		{Procs: 6, StepsPerHour: 400},
	}
	plat := FindPlateaus(res, 0.02, 3)
	if len(plat) != 1 || plat[0].Lo != 2 || plat[0].Hi != 5 {
		t.Errorf("FindPlateaus = %+v, want [{2 5}]", plat)
	}
	defer func() {
		if recover() == nil {
			t.Error("tol<=0 should panic")
		}
	}()
	FindPlateaus(res, 0, 3)
}

func TestCrossoverProcs(t *testing.T) {
	a := []Result{{Procs: 1, StepsPerHour: 1}, {Procs: 2, StepsPerHour: 5}}
	b := []Result{{Procs: 1, StepsPerHour: 2}, {Procs: 2, StepsPerHour: 4}}
	if got := CrossoverProcs(a, b); got != 2 {
		t.Errorf("CrossoverProcs = %d, want 2", got)
	}
	if got := CrossoverProcs(b[:1], a[:1]); got != 1 {
		t.Errorf("CrossoverProcs = %d, want 1", got)
	}
	if got := CrossoverProcs(a[:1], b[:1]); got != 0 {
		t.Errorf("CrossoverProcs = %d, want 0", got)
	}
}

func TestMachineModels(t *testing.T) {
	for _, m := range machine.Evaluated() {
		if m.CyclesPerFlop() <= 0 {
			t.Errorf("%s: bad cycles/flop", m.Name)
		}
		if m.Efficiency() <= 0 || m.Efficiency() > 1 {
			t.Errorf("%s: efficiency %g outside (0,1]", m.Name, m.Efficiency())
		}
		if m.SyncCostCycles(64) <= m.SyncCostCycles(1) {
			t.Errorf("%s: sync cost does not grow with procs", m.Name)
		}
		// Paper range: 2,000 to ~1M cycles.
		if c := m.SyncCostCycles(m.MaxProcs); c < 2_000 || c > 2_000_000 {
			t.Errorf("%s: sync cost at max procs %g outside paper's range", m.Name, c)
		}
	}
	if len(machine.TuningSystems()) != 7 {
		t.Errorf("Table 5 should have 7 rows, got %d", len(machine.TuningSystems()))
	}
}

func TestSizeScanFlatMFLOPS(t *testing.T) {
	// §5: "serial runs ... for problem sizes ranging from 1- to
	// 200-million grid points without a significant decrease in the
	// MFLOPS rate". The cache-tuned profile's single-processor MFLOPS
	// must be size-independent.
	m := machine.Origin2000R12K()
	var rates []float64
	for _, scale := range []float64{1} {
		for _, c := range []grid.Case{grid.Paper1M(), grid.Paper59M()} {
			_ = scale
			r := At(F3DProfile(c), m, 1)
			rates = append(rates, r.MFLOPS)
		}
	}
	for i := 1; i < len(rates); i++ {
		if math.Abs(rates[i]-rates[0]) > rates[0]*0.02 {
			t.Errorf("1-proc MFLOPS varies with size: %v", rates)
		}
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{Procs: 64, StepsPerHour: 100, Speedup: 48}
	if got := r.TurnaroundHours(500); got != 5 {
		t.Errorf("TurnaroundHours = %g, want 5", got)
	}
	if got := r.Efficiency(); got != 0.75 {
		t.Errorf("Efficiency = %g, want 0.75", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("negative steps should panic")
		}
	}()
	r.TurnaroundHours(-1)
}

func TestBestProcs(t *testing.T) {
	// A profile whose speed peaks and drops: BestProcs finds the peak.
	m := machine.Origin2000R12K()
	m.SyncBaseCycles, m.SyncPerProcCycles = 1e5, 5e4
	res := Sweep(flatProfile(2e7, 1<<20), m, 64)
	best := BestProcs(res)
	if best.Procs <= 1 || best.Procs >= 64 {
		t.Errorf("peak at %d procs, expected an interior peak", best.Procs)
	}
	for _, r := range res {
		if r.StepsPerHour > best.StepsPerHour {
			t.Errorf("BestProcs missed a better entry at %d procs", r.Procs)
		}
	}
	// The paper's own sweeps: the 59M case still improves at 124 procs,
	// so its best is at the top of the range.
	prof := F3DProfile(grid.Paper59M())
	sweep := Sweep(prof, machine.Origin2000R12K(), 124)
	if b := BestProcs(sweep); b.Procs < 110 {
		t.Errorf("59M sweep should peak near the top, got %d", b.Procs)
	}
	defer func() {
		if recover() == nil {
			t.Error("empty sweep should panic")
		}
	}()
	BestProcs(nil)
}

func TestPaperTable4Data(t *testing.T) {
	oneM, fiftyNineM := PaperTable4()
	simOneM, simFiftyNineM := Table4()
	if len(oneM) != len(simOneM) || len(fiftyNineM) != len(simFiftyNineM) {
		t.Fatal("paper rows misaligned with simulated rows")
	}
	// Per-row comparison: simulated within a factor of 2 of the paper
	// everywhere (the deviations concentrate in the small case at high
	// processor counts, see EXPERIMENTS.md).
	check := func(rows []Table4Row, paper []PaperTable4Row) {
		for i, r := range rows {
			p := paper[i]
			if r.Procs != p.Procs {
				t.Fatalf("row %d procs mismatch: %d vs %d", i, r.Procs, p.Procs)
			}
			if ratio := r.Sgi.StepsPerHour / p.SgiSteps; ratio < 0.5 || ratio > 2 {
				t.Errorf("SGI at %d procs: sim/paper ratio %.2f", r.Procs, ratio)
			}
			if r.Sun != nil && p.SunSteps > 0 {
				if ratio := r.Sun.StepsPerHour / p.SunSteps; ratio < 0.5 || ratio > 2 {
					t.Errorf("SUN at %d procs: sim/paper ratio %.2f", r.Procs, ratio)
				}
			}
		}
	}
	check(simOneM, oneM)
	check(simFiftyNineM, fiftyNineM)
}
