package sim

import (
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/model"
)

// Calibration of the F3D workload from the paper's own single-processor
// measurements (Table 4): delivered MFLOPS × 3600 / (steps/hour ×
// points) ≈ 4,700 flops per grid point per time step on both machines
// (237 MFLOPS at 181 steps/hour and 180 MFLOPS at 138 steps/hour on the
// 1,002,750-point case). The serial fraction folds the unparallelized
// boundary-condition and bookkeeping loops; it is back-solved from the
// 59-million-point scaling limit (speedup ≈ 66 at 124 processors needs
// roughly 0.4 % serial work).
const (
	F3DFlopsPerPoint  = 4700
	F3DSerialFraction = 0.004
)

// Per-case delivered per-processor rates from Table 4's single-processor
// rows. The 59-million-point case runs slower per processor than the
// 1-million-point case (a larger share of the working set misses the
// cache): 179 vs 237 MFLOPS on the Origin 2000, 163 vs 180 on the
// HPC 10000.
const (
	sgiDelivered1M  = 237
	sgiDelivered59M = 179
	sunDelivered1M  = 180
	sunDelivered59M = 163
)

// F3DProfile returns the F3D-shaped step profile (J-limited loop
// parallelism, see f3d.StepProfileF3D) for a case, in flops.
func F3DProfile(c grid.Case) model.StepProfile {
	return f3d.StepProfileF3D(c, F3DFlopsPerPoint, F3DSerialFraction)
}

// Table4Row is one row of the reproduced Table 4.
type Table4Row struct {
	Procs  int
	Points int     // total grid points of the case
	Sun    *Result // nil where the paper prints N/A (beyond 64 processors)
	Sgi    Result
}

// Table4ProcCounts1M and Table4ProcCounts59M are the processor counts
// the paper tabulates for the two cases.
var (
	Table4ProcCounts1M  = []int{1, 32, 48, 64, 72, 88}
	Table4ProcCounts59M = []int{1, 32, 48, 64, 72, 88, 104, 112, 120, 124}
)

// Table4 reproduces the paper's Table 4: the F3D profile for both test
// cases run on the SUN HPC 10000 and SGI Origin 2000 models at the
// paper's processor counts.
func Table4() (oneM, fiftyNineM []Table4Row) {
	build := func(c grid.Case, counts []int, sun, sgi *machine.Machine) []Table4Row {
		prof := F3DProfile(c)
		rows := make([]Table4Row, 0, len(counts))
		for _, p := range counts {
			row := Table4Row{Procs: p, Points: c.Points(), Sgi: At(prof, sgi, p)}
			if p <= sun.MaxProcs {
				r := At(prof, sun, p)
				row.Sun = &r
			}
			rows = append(rows, row)
		}
		return rows
	}
	oneM = build(grid.Paper1M(), Table4ProcCounts1M,
		machine.SunHPC10000().WithDelivered(sunDelivered1M),
		machine.Origin2000R12K().WithDelivered(sgiDelivered1M))
	fiftyNineM = build(grid.Paper59M(), Table4ProcCounts59M,
		machine.SunHPC10000().WithDelivered(sunDelivered59M),
		machine.Origin2000R12K().WithDelivered(sgiDelivered59M))
	return oneM, fiftyNineM
}

// FigureSeries is one machine's curve in Figure 2 or Figure 3.
type FigureSeries struct {
	Machine *machine.Machine
	Results []Result
}

// Figure2 reproduces the paper's Figure 2: steps/hour versus processor
// count for the 1-million-grid-point case on the SGI Origin 2000
// (R12000), SUN HPC 10000 and HP V2500 models, each swept to its
// maximum configuration.
func Figure2() []FigureSeries {
	prof := F3DProfile(grid.Paper1M())
	var out []FigureSeries
	for _, m := range []*machine.Machine{machine.Origin2000R12K(), machine.SunHPC10000(), machine.HPV2500()} {
		out = append(out, FigureSeries{Machine: m, Results: Sweep(prof, m, m.MaxProcs)})
	}
	return out
}

// Figure3 reproduces the paper's Figure 3: the 59-million-grid-point
// case on the 300-MHz R12000 Origin 2000, the 195-MHz R10000 Origin
// 2000 and the SUN HPC 10000.
func Figure3() []FigureSeries {
	prof := F3DProfile(grid.Paper59M())
	machines := []*machine.Machine{
		machine.Origin2000R12K().WithDelivered(sgiDelivered59M),
		machine.Origin2000R10K195(),
		machine.SunHPC10000().WithDelivered(sunDelivered59M),
	}
	var out []FigureSeries
	for _, m := range machines {
		out = append(out, FigureSeries{Machine: m, Results: Sweep(prof, m, m.MaxProcs)})
	}
	return out
}

// PaperTable4 holds the values printed in the paper's Table 4 for
// side-by-side comparison. Entries are steps/hour; zero marks N/A.
// Source note: the available scan of ARL-TR-2556 is OCR-degraded for a
// few of the 1M-case mid-rows; values below follow the legible figures
// (and Figures 2-3 where the table is ambiguous).
type PaperTable4Row struct {
	Procs    int
	SunSteps float64
	SgiSteps float64
}

// PaperTable4 returns the paper's printed rows for both cases.
func PaperTable4() (oneM, fiftyNineM []PaperTable4Row) {
	oneM = []PaperTable4Row{
		{1, 138, 181},
		{32, 2786, 2877},
		{48, 3093, 3545},
		{64, 2819, 3694},
		{72, 0, 4105},
		{88, 0, 5087},
	}
	fiftyNineM = []PaperTable4Row{
		{1, 2.1, 2.3},
		{32, 45, 59},
		{48, 61, 73},
		{64, 73, 91},
		{72, 0, 101},
		{88, 0, 128},
		{104, 0, 131},
		{112, 0, 144},
		{120, 0, 150},
		{124, 0, 153},
	}
	return oneM, fiftyNineM
}
