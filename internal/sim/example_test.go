package sim_test

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Reproduce the paper's headline scaling number: the 59-million-point
// case on the 128-processor Origin 2000 at 124 processors (the paper
// measured 153 steps/hour, a speedup of ≈66).
func Example() {
	prof := sim.F3DProfile(grid.Paper59M())
	m := machine.Origin2000R12K().WithDelivered(179) // Table 4's 59M 1-proc rate
	r := sim.At(prof, m, 124)
	fmt.Printf("steps/hour: %.0f\n", r.StepsPerHour)
	fmt.Printf("speedup:    %.1f\n", r.Speedup)
	fmt.Printf("turnaround for 1000 steps: %.1f hours\n", r.TurnaroundHours(1000))
	// Output:
	// steps/hour: 154
	// speedup:    66.9
	// turnaround for 1000 steps: 6.5 hours
}
