// Package sim is the SMP execution-cost simulator that regenerates the
// paper's measured-performance table and figures (Table 4, Figures 2
// and 3) from first principles: it schedules a per-time-step loop
// profile (work, available loop-level parallelism, synchronization
// events — extracted from the real solver or shaped like the original
// F3D) onto a machine model and reports the paper's metrics,
// time steps/hour and delivered MFLOPS.
//
// The host running this reproduction has a single CPU, so wall-clock
// scaling cannot be measured here; the simulator substitutes for the
// 128-processor Origin 2000 and 64-processor HPC 10000 (see DESIGN.md,
// substitutions). Its arithmetic is exactly the model the paper itself
// uses to reason about scaling: stair-step ideal speedup (Table 3),
// per-region synchronization cost (Table 1), and Amdahl serial cost.
package sim

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/model"
)

// Result is one simulated data point: the paper's two metrics at a
// processor count.
type Result struct {
	Procs        int
	StepsPerHour float64
	MFLOPS       float64
	Speedup      float64 // relative to Procs = 1 on the same machine
}

// Run simulates the profile (work quantities in floating-point
// operations) on machine m for each processor count in procs. The
// profile's flops are converted to cycles with the machine's calibrated
// delivered rate; synchronization costs come from the machine's sync
// model.
func Run(profile model.StepProfile, m *machine.Machine, procs []int) []Result {
	flopsPerStep := profile.TotalCycles() // profile is in flops
	if flopsPerStep <= 0 {
		panic("sim: profile has no work")
	}
	cycles := profile.Scale(m.CyclesPerFlop())
	base := cycles.PredictStepCycles(1, m.SyncCostCycles(1))
	out := make([]Result, 0, len(procs))
	for _, p := range procs {
		if p < 1 {
			panic(fmt.Sprintf("sim: processor count must be >= 1, got %d", p))
		}
		stepCycles := cycles.PredictStepCycles(p, m.SyncCostCycles(p))
		secPerStep := stepCycles / (m.ClockMHz * 1e6)
		out = append(out, Result{
			Procs:        p,
			StepsPerHour: 3600 / secPerStep,
			MFLOPS:       flopsPerStep / secPerStep / 1e6,
			Speedup:      base / stepCycles,
		})
	}
	return out
}

// Sweep runs processor counts 1..maxProcs.
func Sweep(profile model.StepProfile, m *machine.Machine, maxProcs int) []Result {
	if maxProcs < 1 {
		panic(fmt.Sprintf("sim: maxProcs must be >= 1, got %d", maxProcs))
	}
	procs := make([]int, maxProcs)
	for i := range procs {
		procs[i] = i + 1
	}
	return Run(profile, m, procs)
}

// At returns the result at a specific processor count.
func At(profile model.StepProfile, m *machine.Machine, procs int) Result {
	return Run(profile, m, []int{procs})[0]
}

// Plateaus returns the maximal runs of consecutive processor counts
// whose steps/hour changes by less than tol (relative) — the "nearly
// flat performance" regions the paper points out in its results (§5).
// Only runs of at least minLen counts are reported.
type Plateau struct {
	Lo, Hi int
}

// FindPlateaus scans a sweep for flat regions.
func FindPlateaus(results []Result, tol float64, minLen int) []Plateau {
	if tol <= 0 {
		panic(fmt.Sprintf("sim: tol must be > 0, got %g", tol))
	}
	var out []Plateau
	i := 0
	for i < len(results) {
		j := i
		for j+1 < len(results) {
			a, b := results[j].StepsPerHour, results[j+1].StepsPerHour
			if a <= 0 {
				break
			}
			rel := (b - a) / a
			if rel < 0 {
				rel = -rel
			}
			if rel > tol {
				break
			}
			j++
		}
		if j-i+1 >= minLen {
			out = append(out, Plateau{Lo: results[i].Procs, Hi: results[j].Procs})
		}
		if j == i {
			i++
		} else {
			i = j
		}
	}
	return out
}

// CrossoverProcs returns the smallest processor count at which a's
// steps/hour exceeds b's, or 0 if it never does. Both sweeps must be
// over the same processor counts.
func CrossoverProcs(a, b []Result) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Procs != b[i].Procs {
			panic("sim: CrossoverProcs sweeps have mismatched processor counts")
		}
		if a[i].StepsPerHour > b[i].StepsPerHour {
			return a[i].Procs
		}
	}
	return 0
}

// TurnaroundHours returns the wall-clock hours needed to run the given
// number of time steps at this result's rate — the metric the paper
// says users actually care about ("what really matters are metrics such
// as run time and turnaround time", §5).
func (r Result) TurnaroundHours(steps int) float64 {
	if steps < 0 {
		panic(fmt.Sprintf("sim: TurnaroundHours steps must be >= 0, got %d", steps))
	}
	return float64(steps) / r.StepsPerHour
}

// Efficiency returns speedup per processor (parallel efficiency).
func (r Result) Efficiency() float64 {
	return r.Speedup / float64(r.Procs)
}

// BestProcs returns the sweep entry with the highest steps/hour: where
// "the speed first peaks and then starts to drop off" (§4), or the last
// entry if the sweep never peaks.
func BestProcs(results []Result) Result {
	if len(results) == 0 {
		panic("sim: BestProcs on empty sweep")
	}
	best := results[0]
	for _, r := range results[1:] {
		if r.StepsPerHour > best.StepsPerHour {
			best = r
		}
	}
	return best
}
