package sim

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/machine"
)

func BenchmarkTable4Full(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Table4()
	}
}

func BenchmarkSweep128(b *testing.B) {
	prof := F3DProfile(grid.Paper59M())
	m := machine.Origin2000R12K()
	for i := 0; i < b.N; i++ {
		Sweep(prof, m, 128)
	}
}

func BenchmarkFindPlateaus(b *testing.B) {
	prof := F3DProfile(grid.Paper1M())
	res := Sweep(prof, machine.Origin2000R12K(), 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FindPlateaus(res, 0.01, 5)
	}
}
