package parloop_test

import (
	"fmt"

	"repro/internal/parloop"
)

// Parallelize the outer loop of a vectorizable nest (the paper's
// Example 1): one synchronization event for the whole nest.
func ExampleTeam_For() {
	team := parloop.NewTeam(4)
	defer team.Close()

	const outer, inner = 8, 1024
	data := make([]float64, outer*inner)
	team.For(outer, func(o int) {
		for i := 0; i < inner; i++ {
			data[o*inner+i] = float64(o + i)
		}
	})
	fmt.Println("sync events:", team.SyncEvents())
	// Output:
	// sync events: 1
}

// Merge two loop phases under one region (the paper's Example 2),
// separating them with a barrier only because the second reads what the
// first wrote across worker boundaries.
func ExampleTeam_Region() {
	team := parloop.NewTeam(4)
	defer team.Close()

	const n = 1000
	a := make([]float64, n)
	b := make([]float64, n)
	team.Region(func(ctx *parloop.WorkerCtx) {
		ctx.For(n, func(i int) { a[i] = float64(i) })
		ctx.Barrier()
		ctx.For(n, func(i int) { b[i] = a[n-1-i] })
	})
	fmt.Println(b[0], b[999])
	fmt.Println("sync events:", team.SyncEvents())
	// Output:
	// 999 0
	// sync events: 2
}

// Deterministic parallel reduction: the same bits on every run for a
// fixed team size.
func ExampleSumFloat64() {
	team := parloop.NewTeam(3)
	defer team.Close()

	sum := parloop.SumFloat64(team, 1000, func(i int) float64 { return float64(i) })
	fmt.Println(sum)
	// Output:
	// 499500
}

// Static chunking follows the stair-step arithmetic of the paper's
// Table 3: 15 units on 4 workers gives shares of ceil(15/4) = 4 down
// to 3.
func ExampleStaticRange() {
	for w := 0; w < 4; w++ {
		lo, hi := parloop.StaticRange(15, 4, w)
		fmt.Printf("worker %d: [%d,%d) — %d units\n", w, lo, hi, hi-lo)
	}
	// Output:
	// worker 0: [0,4) — 4 units
	// worker 1: [4,8) — 4 units
	// worker 2: [8,12) — 4 units
	// worker 3: [12,15) — 3 units
}
