package parloop

// Sections runs the given tasks concurrently on the team and returns
// when all have completed: the OpenMP "sections" construct, one
// synchronization event. Tasks are dealt round-robin (task i runs on
// worker i mod Workers()); with fewer tasks than workers the surplus
// workers idle through the region.
//
// This is the coarse-grained complement to loop-level parallelism —
// heterogeneous phases (or independent zones) side by side, the
// building block of the multi-level-parallelism style the paper's §8
// discusses (Taft's MLP).
func (t *Team) Sections(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if t.workers == 1 {
		t.runSerial(func() {
			for _, task := range tasks {
				task()
			}
		})
		return
	}
	t.fork(func(w int) {
		for i := w; i < len(tasks); i += t.workers {
			tasks[i]()
		}
	})
}
