package parloop

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// runRegionExpectPanic opens a region in which the chosen worker
// panics (before or after a barrier, per barrierFirst) and asserts the
// panic surfaces as a *PanicError on the caller without deadlocking
// any teammate.
func runRegionExpectPanic(t *testing.T, tm *Team, victim int, barrierFirst bool) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("region with panicking worker %d did not panic", victim)
		}
		if _, ok := r.(*PanicError); !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", r, r)
		}
	}()
	tm.Region(func(ctx *WorkerCtx) {
		if barrierFirst {
			ctx.Barrier()
		}
		if ctx.ID() == victim%ctx.Workers() {
			panic(fmt.Sprintf("injected panic on worker %d", ctx.ID()))
		}
		// Teammates head for another barrier; if the broken-barrier
		// release were missing they would deadlock here forever.
		ctx.Barrier()
	})
}

// checkTeamWorks runs a plain reduction region and verifies the team
// still computes the right answer with the right worker count.
func checkTeamWorks(t *testing.T, tm *Team) {
	t.Helper()
	const n = 64
	var sum atomic.Int64
	tm.For(n, func(i int) { sum.Add(int64(i)) })
	if want := int64(n * (n - 1) / 2); sum.Load() != want {
		t.Fatalf("team broken: sum = %d, want %d", sum.Load(), want)
	}
}

// TestResizePanicInterleavings is the property test for the panic-safe
// region machinery: a seeded random sequence of resizes, healthy
// regions, panicking regions and barrier-heavy panicking regions must
// never deadlock, must keep the sync-event counter consistent (exactly
// +1 per healthy multi-worker region, monotonic across faults), and
// must leave the team fully usable after every fault.
func TestResizePanicInterleavings(t *testing.T) {
	for _, seed := range []int64{1, 7, 42, 1234} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			done := make(chan struct{})
			go func() {
				defer close(done)
				rng := rand.New(rand.NewSource(seed))
				tm := NewTeam(1 + rng.Intn(6))
				defer tm.Close()
				for op := 0; op < 200; op++ {
					before := tm.SyncEvents()
					switch rng.Intn(4) {
					case 0:
						tm.Resize(1 + rng.Intn(8))
						if got := tm.SyncEvents(); got != before {
							t.Errorf("op %d: Resize changed SyncEvents %d -> %d", op, before, got)
						}
					case 1:
						checkTeamWorks(t, tm)
						want := before
						if tm.Workers() > 1 {
							want++
						}
						if got := tm.SyncEvents(); got != want {
							t.Errorf("op %d: healthy region SyncEvents %d, want %d", op, got, want)
						}
					case 2:
						runRegionExpectPanic(t, tm, rng.Intn(8), false)
					case 3:
						runRegionExpectPanic(t, tm, rng.Intn(8), rng.Intn(2) == 0)
					}
					if got := tm.SyncEvents(); got < before {
						t.Errorf("op %d: SyncEvents went backwards %d -> %d", op, before, got)
					}
					// The team must keep working whatever just happened.
					checkTeamWorks(t, tm)
				}
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("deadlock: resize/panic/region sequence did not finish")
			}
		})
	}
}

// TestPanicBeforeTeammatesReachBarrier pins the nastiest interleaving
// deterministically: worker 0 panics immediately while every other
// worker is already committed to a barrier wait.
func TestPanicBeforeTeammatesReachBarrier(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	for round := 0; round < 50; round++ {
		func() {
			defer func() {
				if _, ok := recover().(*PanicError); !ok {
					t.Fatal("expected *PanicError")
				}
			}()
			tm.Region(func(ctx *WorkerCtx) {
				if ctx.ID() == 0 {
					panic("early death")
				}
				ctx.Barrier()
				ctx.Barrier()
			})
		}()
		checkTeamWorks(t, tm)
	}
}

// TestPanicOnHelperWorkerIdentifiesWorker checks the PanicError carries
// the panicking worker's id, not the caller's.
func TestPanicOnHelperWorkerIdentifiesWorker(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok {
			t.Fatal("expected *PanicError")
		}
		if pe.Worker != 2 {
			t.Fatalf("PanicError.Worker = %d, want 2", pe.Worker)
		}
	}()
	tm.Region(func(ctx *WorkerCtx) {
		if ctx.ID() == 2 {
			panic("helper death")
		}
	})
}
