package parloop

import "fmt"

// Collapse2 parallelizes a doubly nested loop by flattening the (n1, n2)
// iteration space into n1·n2 units and dealing them with the Static
// schedule: the OpenMP "collapse(2)" clause. It raises the available
// parallelism from n1 to n1·n2, pushing the stair-step plateaus of the
// paper's Figure 1 out to far larger processor counts.
func (t *Team) Collapse2(n1, n2 int, body func(i, j int)) {
	if n1 < 0 || n2 < 0 {
		panic(fmt.Sprintf("parloop: Collapse2 extents must be >= 0, got %d, %d", n1, n2))
	}
	n := n1 * n2
	t.ForChunked(n, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			body(f/n2, f%n2)
		}
	})
}

// Collapse3 flattens a triply nested loop into n1·n2·n3 units (OpenMP
// "collapse(3)").
func (t *Team) Collapse3(n1, n2, n3 int, body func(i, j, k int)) {
	if n1 < 0 || n2 < 0 || n3 < 0 {
		panic(fmt.Sprintf("parloop: Collapse3 extents must be >= 0, got %d, %d, %d", n1, n2, n3))
	}
	n := n1 * n2 * n3
	n23 := n2 * n3
	t.ForChunked(n, func(lo, hi int) {
		for f := lo; f < hi; f++ {
			i := f / n23
			r := f - i*n23
			body(i, r/n3, r%n3)
		}
	})
}

// ForNested parallelizes the outer loop of a two-level nest, running the
// inner loop serially within each outer iteration (Example 1 in the
// paper: parallelize the outer loop even though vectorization lives in
// the inner loop). Provided for symmetry and self-documenting call
// sites.
func (t *Team) ForNested(n1, n2 int, body func(i, j int)) {
	t.For(n1, func(i int) {
		for j := 0; j < n2; j++ {
			body(i, j)
		}
	})
}
