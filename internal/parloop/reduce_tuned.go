package parloop

import (
	"fmt"
	"math"
)

// Tuned slice reductions: the team reductions above take a per-index
// closure, which costs an indirect call per element; these take the
// data as a slice and run an inner loop unrolled four wide with
// independent accumulators, so the adds pipeline instead of
// serializing on one register. Unrolling reassociates the sum, so
// results differ from the strict left-to-right scalar order by
// rounding — the conformance matrix bounds these kernels in ULPs
// rather than requiring bitwise equality, exactly as it already does
// for the team reductions, whose partial merges reassociate too. For a
// fixed team size and chunk setting the grouping is deterministic, so
// results are still bit-reproducible run to run.

// SumSliceSerial sums x with four independent accumulators. It
// allocates nothing.
func SumSliceSerial(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotSliceSerial returns the dot product of x and y with four
// independent accumulators. The lengths must match; the check happens
// before any element is read. It allocates nothing.
func DotSliceSerial(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("parloop: DotSliceSerial length mismatch: %d vs %d", len(x), len(y)))
	}
	y = y[:len(x)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// MaxSliceSerial returns the maximum of x, unrolled four wide. Unlike
// the sums, max is insensitive to grouping, so the result equals the
// scalar loop exactly. len(x) must be at least 1. It allocates
// nothing.
func MaxSliceSerial(x []float64) float64 {
	if len(x) == 0 {
		panic("parloop: MaxSliceSerial needs len >= 1")
	}
	m0, m1, m2, m3 := math.Inf(-1), math.Inf(-1), math.Inf(-1), math.Inf(-1)
	i := 0
	for ; i+3 < len(x); i += 4 {
		if x[i] > m0 {
			m0 = x[i]
		}
		if x[i+1] > m1 {
			m1 = x[i+1]
		}
		if x[i+2] > m2 {
			m2 = x[i+2]
		}
		if x[i+3] > m3 {
			m3 = x[i+3]
		}
	}
	for ; i < len(x); i++ {
		if x[i] > m0 {
			m0 = x[i]
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return m0
}

// SumSlice sums x across the team: each worker runs the unrolled
// serial kernel over its chunks, and partials merge in ascending
// worker order (deterministic for a fixed configuration).
func SumSlice(t *Team, x []float64) float64 {
	return ReduceChunked(t, len(x), 0.0, func(lo, hi int, acc float64) float64 {
		return acc + SumSliceSerial(x[lo:hi])
	}, func(a, b float64) float64 { return a + b })
}

// DotSlice computes the dot product of x and y across the team with
// the unrolled serial kernel per chunk.
func DotSlice(t *Team, x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("parloop: DotSlice length mismatch: %d vs %d", len(x), len(y)))
	}
	return ReduceChunked(t, len(x), 0.0, func(lo, hi int, acc float64) float64 {
		return acc + DotSliceSerial(x[lo:hi], y[lo:hi])
	}, func(a, b float64) float64 { return a + b })
}

// MaxSlice returns the maximum of x across the team. len(x) must be at
// least 1. Grouping cannot change a maximum, so the result equals the
// serial scalar loop exactly at every team size.
func MaxSlice(t *Team, x []float64) float64 {
	if len(x) == 0 {
		panic("parloop: MaxSlice needs len >= 1")
	}
	return ReduceChunked(t, len(x), math.Inf(-1), func(lo, hi int, acc float64) float64 {
		if m := MaxSliceSerial(x[lo:hi]); m > acc {
			return m
		}
		return acc
	}, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}
