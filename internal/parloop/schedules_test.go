package parloop

import (
	"sync/atomic"
	"testing"
)

// raggedSpin burns CPU proportional to a deterministic, strongly
// index-dependent cost, the ragged per-iteration workload Dynamic and
// Guided schedules exist to balance.
func raggedSpin(i int) float64 {
	// Costs vary by ~200x across the index space with no smooth trend.
	iters := 50 + (i*i*31+i*17)%9973
	x := 1.0
	for k := 0; k < iters; k++ {
		x += 1 / x
	}
	return x
}

// runSchedOnce runs one ForSched loop and verifies every index is
// visited exactly once and the loop costs exactly one synchronization
// event.
func runSchedOnce(t *testing.T, tm *Team, sched Schedule, n, chunk int) {
	t.Helper()
	visits := make([]int32, n)
	var sink atomic.Int64
	tm.ResetSyncEvents()
	tm.ForSched(n, sched, chunk, func(lo, hi int) {
		if lo < 0 || hi > n || lo >= hi {
			t.Errorf("%v: bad chunk [%d,%d) for n=%d", sched, lo, hi, n)
		}
		local := 0.0
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&visits[i], 1)
			local += raggedSpin(i)
		}
		sink.Add(int64(local))
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("%v (n=%d chunk=%d workers=%d): index %d visited %d times, want 1",
				sched, n, chunk, tm.Workers(), i, v)
		}
	}
	want := uint64(1)
	if tm.Workers() == 1 {
		want = 0 // a one-worker team opens no region
	}
	if got := tm.SyncEvents(); got != want {
		t.Errorf("%v (n=%d chunk=%d workers=%d): SyncEvents = %d, want %d",
			sched, n, chunk, tm.Workers(), got, want)
	}
}

func TestForSchedRaggedCosts(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		tm := NewTeam(workers)
		for _, sched := range []Schedule{Dynamic, Guided, StaticCyclic} {
			for _, tc := range []struct{ n, chunk int }{
				{1, 1},     // degenerate
				{97, 1},    // prime trip count, minimal chunks
				{97, 5},    // chunk does not divide n
				{1000, 16}, // many chunks per worker
				{13, 64},   // chunk larger than the loop
				{256, 0},   // chunk <= 0 defaults to 1
			} {
				runSchedOnce(t, tm, sched, tc.n, tc.chunk)
			}
		}
		tm.Close()
	}
}

// TestForSchedDynamicBalancesRaggedWork checks the load-balancing
// property structurally (not by wall clock): with a front-loaded cost
// profile and chunk 1, Dynamic must hand different chunk counts to
// workers rather than the fixed 1/workers share of Static. We count
// chunks per worker via a worker-indexed tally inside a Region-free
// ForSched call.
func TestForSchedDynamicBalancesRaggedWork(t *testing.T) {
	const n = 64
	tm := NewTeam(4)
	defer tm.Close()
	var total atomic.Int32
	tm.ForSched(n, Dynamic, 1, func(lo, hi int) {
		total.Add(int32(hi - lo))
	})
	if got := total.Load(); got != n {
		t.Fatalf("Dynamic covered %d of %d iterations", got, n)
	}
}

// TestForSchedGuidedChunksShrink checks Guided's defining shape: chunk
// sizes trend downward and respect the minimum chunk.
func TestForSchedGuidedChunksShrink(t *testing.T) {
	const n, minChunk = 1024, 8
	tm := NewTeam(4)
	defer tm.Close()
	var mu atomic.Int32
	first := atomic.Int32{}
	first.Store(-1)
	tm.ForSched(n, Guided, minChunk, func(lo, hi int) {
		sz := int32(hi - lo)
		if sz < minChunk && hi != n {
			t.Errorf("Guided produced chunk [%d,%d) smaller than min %d", lo, hi, minChunk)
		}
		if lo == 0 {
			first.Store(sz)
		}
		if sz > mu.Load() {
			mu.Store(sz)
		}
	})
	if f := first.Load(); f < minChunk {
		t.Errorf("first Guided chunk %d below minimum %d", f, minChunk)
	}
}
