package parloop

import (
	"encoding/json"
	"fmt"
	"sync/atomic"
)

// Schedules lists every schedule the runtime implements, in declaration
// order. Adaptive controllers use it as the legal exploration axis.
func Schedules() []Schedule {
	return []Schedule{Static, StaticCyclic, Dynamic, Guided}
}

// ParseSchedule is the inverse of Schedule.String.
func ParseSchedule(s string) (Schedule, error) {
	for _, sc := range Schedules() {
		if sc.String() == s {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("parloop: unknown schedule %q", s)
}

// MarshalJSON encodes the schedule by its OpenMP-style name so wire
// formats (f3dd's /adapt endpoint, tracetool reports) stay readable and
// stable across reorderings of the enum.
func (s Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a schedule name produced by MarshalJSON.
func (s *Schedule) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	sc, err := ParseSchedule(name)
	if err != nil {
		return err
	}
	*s = sc
	return nil
}

// LoopCfg is the per-loop reconfigure seam for adaptive scheduling: a
// {schedule, chunk} pair that one goroutine (a controller, between
// steps) may retarget while another (the compute loop) keeps entering
// regions through it. Both fields are packed into a single word so a
// Store can never be observed half-applied — a region entry sees either
// the old pair or the new pair, never a mix. The new configuration
// takes effect at the next region entry; a region already in flight is
// unaffected, which is what keeps mid-flight reconfiguration free of
// residual-history changes (the iteration *set* is invariant, only its
// dealing changes).
//
// The zero value is {Static, chunk 1}.
type LoopCfg struct {
	// packed holds chunk<<8 | schedule. Chunk is clamped to >= 1 on
	// Store, so a loaded value is always a legal ForSched argument.
	packed atomic.Uint64
}

// NewLoopCfg returns a LoopCfg initialized to the given pair.
func NewLoopCfg(sched Schedule, chunk int) *LoopCfg {
	c := &LoopCfg{}
	c.Store(sched, chunk)
	return c
}

// Store atomically retargets the pair. chunk < 1 is clamped to 1;
// an out-of-range schedule panics (programmer error, same contract as
// ForSched).
func (c *LoopCfg) Store(sched Schedule, chunk int) {
	if sched < Static || sched > Guided {
		panic(fmt.Sprintf("parloop: LoopCfg.Store: unknown schedule %v", sched))
	}
	if chunk < 1 {
		chunk = 1
	}
	c.packed.Store(uint64(chunk)<<8 | uint64(sched))
}

// Load returns the current pair. A LoopCfg that was never Stored reads
// as {Static, 1}.
func (c *LoopCfg) Load() (Schedule, int) {
	v := c.packed.Load()
	if v == 0 {
		return Static, 1
	}
	return Schedule(v & 0xff), int(v >> 8)
}

// ForCfg is ForSched reading its {schedule, chunk} from cfg exactly
// once at region entry. Controllers retarget cfg between steps; the
// loop itself never changes.
func (t *Team) ForCfg(n int, cfg *LoopCfg, body func(lo, hi int)) {
	sched, chunk := cfg.Load()
	t.ForSched(n, sched, chunk, body)
}

// ForCfgW is ForSchedW reading its {schedule, chunk} from cfg exactly
// once at region entry.
func (t *Team) ForCfgW(n int, cfg *LoopCfg, body func(worker, lo, hi int)) {
	sched, chunk := cfg.Load()
	t.ForSchedW(n, sched, chunk, body)
}
