package parloop

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestLoopCfgZeroValue(t *testing.T) {
	var c LoopCfg
	sched, chunk := c.Load()
	if sched != Static || chunk != 1 {
		t.Fatalf("zero LoopCfg = {%v, %d}, want {static, 1}", sched, chunk)
	}
}

func TestLoopCfgStoreLoad(t *testing.T) {
	c := NewLoopCfg(Dynamic, 16)
	if sched, chunk := c.Load(); sched != Dynamic || chunk != 16 {
		t.Fatalf("Load = {%v, %d}, want {dynamic, 16}", sched, chunk)
	}
	c.Store(Guided, 0) // clamped
	if sched, chunk := c.Load(); sched != Guided || chunk != 1 {
		t.Fatalf("Load = {%v, %d}, want {guided, 1}", sched, chunk)
	}
}

func TestLoopCfgStoreBadSchedule(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Store with invalid schedule did not panic")
		}
	}()
	NewLoopCfg(Schedule(99), 1)
}

// TestForCfgAllSchedules proves ForCfg covers every iteration exactly
// once under every configuration, including retargets between regions.
func TestForCfgAllSchedules(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	const n = 1001
	cfg := NewLoopCfg(Static, 1)
	for _, sched := range Schedules() {
		for _, chunk := range []int{1, 7, 64} {
			cfg.Store(sched, chunk)
			hits := make([]int32, n)
			team.ForCfgW(n, cfg, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					hits[i]++
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("%v chunk=%d: iteration %d hit %d times", sched, chunk, i, h)
				}
			}
		}
	}
}

// TestLoopCfgConcurrentRetarget drives a compute loop through ForCfg
// while another goroutine retargets the config continuously. Under
// -race this proves the seam is safe; the coverage check proves every
// region still visits every iteration exactly once regardless of which
// configuration each entry observed.
func TestLoopCfgConcurrentRetarget(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	const n, steps = 513, 50
	cfg := NewLoopCfg(Static, 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		scheds := Schedules()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg.Store(scheds[i%len(scheds)], 1+i%9)
		}
	}()

	acc := make([]int64, n)
	for s := 0; s < steps; s++ {
		team.ForCfg(n, cfg, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				acc[i]++
			}
		})
	}
	close(stop)
	wg.Wait()
	for i, v := range acc {
		if v != steps {
			t.Fatalf("iteration %d executed %d times, want %d", i, v, steps)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	for _, sched := range Schedules() {
		b, err := json.Marshal(sched)
		if err != nil {
			t.Fatalf("marshal %v: %v", sched, err)
		}
		var got Schedule
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if got != sched {
			t.Fatalf("round trip %v -> %s -> %v", sched, b, got)
		}
	}
	var s Schedule
	if err := json.Unmarshal([]byte(`"no-such"`), &s); err == nil {
		t.Fatal("unmarshal of unknown schedule name succeeded")
	}
	if err := json.Unmarshal([]byte(`17`), &s); err == nil {
		t.Fatal("unmarshal of numeric schedule succeeded")
	}
	if _, err := ParseSchedule("dynamic"); err != nil {
		t.Fatalf("ParseSchedule(dynamic): %v", err)
	}
}
