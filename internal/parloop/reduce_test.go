package parloop

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumFloat64Exact(t *testing.T) {
	for _, tm := range teams(t) {
		for _, n := range []int{0, 1, 2, 100, 12345} {
			got := SumFloat64(tm, n, func(i int) float64 { return float64(i) })
			want := float64(n) * float64(n-1) / 2
			if n == 0 {
				want = 0
			}
			if got != want {
				t.Errorf("workers=%d n=%d: sum = %g, want %g", tm.Workers(), n, got, want)
			}
		}
	}
}

func TestSumDeterministicPerTeamSize(t *testing.T) {
	// For a fixed team size the reduction order is fixed, so repeated
	// runs produce bit-identical results even for ill-conditioned sums.
	vals := make([]float64, 10_000)
	for i := range vals {
		vals[i] = math.Sin(float64(i)) * math.Pow(10, float64(i%30)-15)
	}
	for _, tm := range teams(t) {
		first := SumFloat64(tm, len(vals), func(i int) float64 { return vals[i] })
		for rep := 0; rep < 20; rep++ {
			got := SumFloat64(tm, len(vals), func(i int) float64 { return vals[i] })
			if got != first {
				t.Fatalf("workers=%d: run %d sum %x differs from first %x",
					tm.Workers(), rep, math.Float64bits(got), math.Float64bits(first))
			}
		}
	}
}

func TestMaxFloat64(t *testing.T) {
	for _, tm := range teams(t) {
		vals := []float64{3, -10, 7.5, 7.5, 2, -math.MaxFloat64, 100.25, 99}
		got := MaxFloat64(tm, len(vals), func(i int) float64 { return vals[i] })
		if got != 100.25 {
			t.Errorf("workers=%d: max = %g, want 100.25", tm.Workers(), got)
		}
		if got := MaxFloat64(tm, 1, func(int) float64 { return -5 }); got != -5 {
			t.Errorf("single element max = %g, want -5", got)
		}
	}
}

func TestMaxFloat64PanicsOnEmpty(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	defer func() {
		if recover() == nil {
			t.Error("MaxFloat64(n=0) should panic")
		}
	}()
	MaxFloat64(tm, 0, func(int) float64 { return 0 })
}

func TestReduceGenericNonCommutative(t *testing.T) {
	// String concatenation is associative but not commutative: Reduce
	// must preserve index order across workers.
	for _, tm := range teams(t) {
		got := Reduce(tm, 26, "", func(i int, acc string) string {
			return acc + string(rune('a'+i))
		}, func(a, b string) string { return a + b })
		if got != "abcdefghijklmnopqrstuvwxyz" {
			t.Errorf("workers=%d: %q", tm.Workers(), got)
		}
	}
}

func TestReduceIdentityOnEmpty(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	got := Reduce(tm, 0, 42, func(int, int) int { panic("fold on empty") }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Errorf("empty Reduce = %d, want identity 42", got)
	}
}

func TestReduceChunkedMatchesReduce(t *testing.T) {
	f := func(nu uint16) bool {
		n := int(nu % 3000)
		tm := NewTeam(4)
		defer tm.Close()
		a := Reduce(tm, n, int64(0), func(i int, acc int64) int64 { return acc + int64(i)*int64(i) },
			func(a, b int64) int64 { return a + b })
		b := ReduceChunked(tm, n, int64(0), func(lo, hi int, acc int64) int64 {
			for i := lo; i < hi; i++ {
				acc += int64(i) * int64(i)
			}
			return acc
		}, func(a, b int64) int64 { return a + b })
		return a == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeasureSyncCost(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	stats := MeasureSyncCost(tm, 100)
	if stats.Workers != 2 || stats.Regions != 100 {
		t.Errorf("stats metadata wrong: %+v", stats)
	}
	if stats.PerSync <= 0 {
		t.Errorf("PerSync = %v, want > 0", stats.PerSync)
	}
	// Cycle conversion: 1 µs at 300 MHz is 300 cycles.
	s := SyncCostStats{PerSync: 1000}
	if got := s.Cycles(300); math.Abs(got-300) > 1e-9 {
		t.Errorf("Cycles(300MHz) for 1µs = %g, want 300", got)
	}
	if got := MeasureSyncCost(tm, 0).Regions; got != 1 {
		t.Errorf("regions clamped to %d, want 1", got)
	}
}

func TestMeasureBarrierCost(t *testing.T) {
	for _, workers := range []int{1, 3} {
		tm := NewTeam(workers)
		stats := MeasureBarrierCost(tm, 50)
		if stats.Regions != 50 {
			t.Errorf("workers=%d: Regions = %d, want 50", workers, stats.Regions)
		}
		if workers > 1 && stats.PerSync <= 0 {
			t.Errorf("workers=%d: PerSync = %v, want > 0", workers, stats.PerSync)
		}
		tm.Close()
	}
}
