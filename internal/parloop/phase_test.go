package parloop

import (
	"sync"
	"testing"
)

// TestPhaseSerialTeamNeverBumps: a one-worker team opens no real
// regions and must keep its phase at zero — a single executor cannot
// race itself.
func TestPhaseSerialTeamNeverBumps(t *testing.T) {
	tm := NewTeam(1)
	defer tm.Close()
	tm.For(10, func(int) {})
	tm.Region(func(ctx *WorkerCtx) {
		ctx.Barrier()
		ctx.For(5, func(int) {})
	})
	if got := tm.Phase(); got != 0 {
		t.Errorf("serial team Phase() = %d, want 0", got)
	}
}

// TestPhaseForkJoinBumpsTwice: each fork-join region is its own epoch,
// and the code after it another.
func TestPhaseForkJoinBumpsTwice(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	if got := tm.Phase(); got != 0 {
		t.Fatalf("fresh team Phase() = %d, want 0", got)
	}
	tm.For(30, func(int) {})
	if got := tm.Phase(); got != 2 {
		t.Errorf("after one region Phase() = %d, want 2 (fork + join)", got)
	}
	tm.For(30, func(int) {})
	if got := tm.Phase(); got != 4 {
		t.Errorf("after two regions Phase() = %d, want 4", got)
	}
}

// TestPhaseBarrierSeparatesEpochs: inside a region, every worker
// observes one phase before the barrier and the next phase after it —
// the property the dependence checker's happens-before relation is
// built on.
func TestPhaseBarrierSeparatesEpochs(t *testing.T) {
	const workers = 4
	tm := NewTeam(workers)
	defer tm.Close()
	var mu sync.Mutex
	pre := make(map[uint64]bool)
	post := make(map[uint64]bool)
	tm.Region(func(ctx *WorkerCtx) {
		p := tm.Phase()
		mu.Lock()
		pre[p] = true
		mu.Unlock()
		ctx.Barrier()
		q := tm.Phase()
		mu.Lock()
		post[q] = true
		mu.Unlock()
	})
	if len(pre) != 1 || len(post) != 1 {
		t.Fatalf("phases not uniform across workers: pre %v post %v", pre, post)
	}
	var prePhase, postPhase uint64
	for p := range pre {
		prePhase = p
	}
	for p := range post {
		postPhase = p
	}
	if postPhase != prePhase+1 {
		t.Errorf("barrier bumped phase %d -> %d, want +1", prePhase, postPhase)
	}
	// Region fork bumped once (phase 1 inside), barrier once (2), join
	// once (3).
	if got := tm.Phase(); got != 3 {
		t.Errorf("after region with one barrier Phase() = %d, want 3", got)
	}
}

// TestPhaseSurvivesResizeAndPanic: the barrier installed by Resize and
// the replacement barrier installed after a worker panic must both stay
// wired to the phase counter.
func TestPhaseSurvivesResizeAndPanic(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	tm.Resize(3)
	start := tm.Phase()
	tm.Region(func(ctx *WorkerCtx) { ctx.Barrier() })
	if got := tm.Phase(); got != start+3 {
		t.Fatalf("after resize, region with barrier moved phase %d -> %d, want +3", start, got)
	}
	func() {
		defer func() { recover() }()
		tm.Region(func(ctx *WorkerCtx) {
			if ctx.ID() == 1 {
				panic("boom")
			}
			ctx.Barrier()
		})
	}()
	start = tm.Phase()
	tm.Region(func(ctx *WorkerCtx) { ctx.Barrier() })
	if got := tm.Phase(); got != start+3 {
		t.Errorf("after panic recovery, region with barrier moved phase %d -> %d, want +3", start, got)
	}
}
