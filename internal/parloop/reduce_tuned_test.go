package parloop

import (
	"math"
	"math/rand"
	"testing"
)

// scalarSum is the strict left-to-right reference the tuned kernels
// are measured against.
func scalarSum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}

func ulpsApart(a, b float64) uint64 {
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba > bb {
		return ba - bb
	}
	return bb - ba
}

// TestSumSliceSerialExactOnIntegers uses integer-valued data, where
// addition is exact in any order, so the reassociated unrolled sum
// must equal the scalar sum to the bit — at every length through the
// unroll remainders.
func TestSumSliceSerialExactOnIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for n := 0; n <= 33; n++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = float64(rng.Intn(2000) - 1000)
		}
		if got, want := SumSliceSerial(x), scalarSum(x); got != want {
			t.Fatalf("n=%d: %v != %v", n, got, want)
		}
	}
}

func TestSumDotSliceSerialWithinULPs(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 64, 1023} {
		x := make([]float64, n)
		y := make([]float64, n)
		var dot float64
		for i := range x {
			x[i] = rng.Float64()*2 - 1
			y[i] = rng.Float64()*2 - 1
		}
		for i := range x {
			dot += x[i] * y[i]
		}
		// The grouping differs, so allow a small rounding drift; 1<<16
		// ULPs is the bound the conformance matrix uses for sums.
		if d := ulpsApart(SumSliceSerial(x), scalarSum(x)); d > 1<<16 {
			t.Errorf("sum n=%d: %d ULPs apart", n, d)
		}
		if d := ulpsApart(DotSliceSerial(x, y), dot); d > 1<<16 {
			t.Errorf("dot n=%d: %d ULPs apart", n, d)
		}
	}
}

func TestMaxSliceSerialExact(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, n := range []int{1, 2, 3, 4, 5, 9, 100} {
		x := make([]float64, n)
		for i := range x {
			x[i] = -1000 + rng.Float64() // all negative: identity must not leak
		}
		want := x[0]
		for _, v := range x {
			if v > want {
				want = v
			}
		}
		if got := MaxSliceSerial(x); got != want {
			t.Fatalf("n=%d: %v != %v", n, got, want)
		}
	}
}

// TestSliceReductionsAcrossTeams pins the team versions: deterministic
// for a fixed team size, within ULPs of the serial tuned kernel for
// sums, exactly equal for max.
func TestSliceReductionsAcrossTeams(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	const n = 517
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()*2 - 1
		y[i] = rng.Float64()*2 - 1
	}
	sumRef := SumSliceSerial(x)
	dotRef := DotSliceSerial(x, y)
	maxRef := MaxSliceSerial(x)
	for _, workers := range []int{1, 2, 3, 4, 7} {
		tm := NewTeam(workers)
		sum1, dot1, max1 := SumSlice(tm, x), DotSlice(tm, x, y), MaxSlice(tm, x)
		for rep := 0; rep < 3; rep++ {
			if s := SumSlice(tm, x); math.Float64bits(s) != math.Float64bits(sum1) {
				t.Errorf("workers=%d: sum not reproducible", workers)
			}
		}
		if d := ulpsApart(sum1, sumRef); d > 1<<16 {
			t.Errorf("workers=%d: sum %d ULPs from serial", workers, d)
		}
		if d := ulpsApart(dot1, dotRef); d > 1<<16 {
			t.Errorf("workers=%d: dot %d ULPs from serial", workers, d)
		}
		if max1 != maxRef {
			t.Errorf("workers=%d: max %v != %v", workers, max1, maxRef)
		}
		tm.Close()
	}
	// Empty and single-element inputs.
	tm := NewTeam(2)
	defer tm.Close()
	if SumSlice(tm, nil) != 0 {
		t.Error("empty sum not zero")
	}
	if v := MaxSlice(tm, []float64{-3}); v != -3 {
		t.Errorf("singleton max: %v", v)
	}
}

func TestSliceReductionPanics(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	for name, fn := range map[string]func(){
		"dot serial mismatch": func() { DotSliceSerial(make([]float64, 3), make([]float64, 4)) },
		"dot team mismatch":   func() { DotSlice(tm, make([]float64, 3), make([]float64, 4)) },
		"max serial empty":    func() { MaxSliceSerial(nil) },
		"max team empty":      func() { MaxSlice(tm, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestSerialSliceKernelsAllocFree pins the zero-allocation property
// the perf gate enforces on the serial slice kernels.
func TestSerialSliceKernelsAllocFree(t *testing.T) {
	x := make([]float64, 256)
	y := make([]float64, 256)
	for i := range x {
		x[i] = float64(i%13) - 6
		y[i] = float64(i%7) - 3
	}
	var sink float64
	if a := testing.AllocsPerRun(100, func() { sink += SumSliceSerial(x) }); a != 0 {
		t.Errorf("SumSliceSerial allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { sink += DotSliceSerial(x, y) }); a != 0 {
		t.Errorf("DotSliceSerial allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() { sink += MaxSliceSerial(x) }); a != 0 {
		t.Errorf("MaxSliceSerial allocates %v/op", a)
	}
	_ = sink
}

// BenchmarkSliceReductions compares the closure-based team reduction
// with the tuned slice form at one worker — the per-element indirect
// call is the cost being removed.
func BenchmarkSliceReductions(b *testing.B) {
	x := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i%17) - 8
	}
	tm := NewTeam(1)
	defer tm.Close()
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SumFloat64(tm, len(x), func(i int) float64 { return x[i] })
		}
	})
	b.Run("slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SumSlice(tm, x)
		}
	})
	b.Run("slice-serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SumSliceSerial(x)
		}
	})
}
