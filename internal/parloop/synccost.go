package parloop

import (
	"time"
)

// SyncCostStats summarizes a measurement of the team's fork-join
// synchronization cost — the quantity the paper reports as ranging
// "from 2,000 to 1-million cycles (or more)" depending on machine and
// load (§3), and the input to the Table 1 minimum-work criterion.
type SyncCostStats struct {
	Workers int
	Regions int           // regions timed
	Total   time.Duration // wall clock for all regions
	PerSync time.Duration // Total / Regions
}

// Cycles converts the per-synchronization cost to processor cycles at
// the given clock rate in MHz.
func (s SyncCostStats) Cycles(clockMHz float64) float64 {
	return s.PerSync.Seconds() * clockMHz * 1e6
}

// MeasureSyncCost times empty fork-join regions on the team and returns
// the average cost of one synchronization event. regions is the number
// of empty regions to execute (values below 1 are raised to 1).
//
// The measured value plugs directly into model.MinWorkPerLoop to decide
// which loops are worth parallelizing on this host — the same
// methodology the paper applies with vendor profiling tools.
func MeasureSyncCost(t *Team, regions int) SyncCostStats {
	if regions < 1 {
		regions = 1
	}
	// Warm up the team (first region pays goroutine scheduling noise).
	for i := 0; i < 3; i++ {
		t.fork(func(int) {})
	}
	start := time.Now()
	for i := 0; i < regions; i++ {
		t.fork(func(int) {})
	}
	total := time.Since(start)
	return SyncCostStats{
		Workers: t.Workers(),
		Regions: regions,
		Total:   total,
		PerSync: total / time.Duration(regions),
	}
}

// MeasureBarrierCost times bare barriers inside a single open region,
// the cheaper synchronization available to merged loop phases
// (Example 2). For a one-worker team the barrier is free and the
// returned PerSync is the loop overhead only.
func MeasureBarrierCost(t *Team, barriers int) SyncCostStats {
	if barriers < 1 {
		barriers = 1
	}
	var total time.Duration
	t.Region(func(ctx *WorkerCtx) {
		ctx.Barrier()
		var start time.Time
		if ctx.ID() == 0 {
			start = time.Now()
		}
		for i := 0; i < barriers; i++ {
			ctx.Barrier()
		}
		if ctx.ID() == 0 {
			total = time.Since(start)
		}
	})
	return SyncCostStats{
		Workers: t.Workers(),
		Regions: barriers,
		Total:   total,
		PerSync: total / time.Duration(barriers),
	}
}
