// Package parloop is a loop-level parallelism runtime for Go, modeled on
// the OpenMP/C$doacross execution model that ARL-TR-2556 uses to
// parallelize vectorizable programs on shared-memory SMPs.
//
// A Team is a set of persistent worker goroutines (the OpenMP "thread
// team"). Parallel loops are fork-join regions executed by the team:
// the caller becomes worker 0, the iteration space is divided according
// to a Schedule, and the region ends with one synchronization event —
// the cost the paper's Table 1 budgets against.
//
// The API mirrors the transformations of the paper's §4:
//
//   - For / ForChunked parallelize a single loop (Example 1: parallelize
//     the outer loop of a vectorizable nest);
//   - Region opens one parallel region in which each worker runs several
//     loop phases separated by Barrier calls, merging loops under a
//     single fork-join (Example 2) or hoisting parallelism into a parent
//     subroutine (Example 3);
//   - Reduce performs deterministic reductions (partials combined in
//     worker order, so results are bit-reproducible run to run for a
//     fixed team size).
//
// Every region increments the team's synchronization-event counter,
// which the benchmark harness uses to verify the paper's claim that
// loop merging and parent-level parallelization cut synchronization
// events by one to three orders of magnitude.
package parloop

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Schedule selects how a loop's iteration space is dealt to workers,
// mirroring the OpenMP schedule kinds.
type Schedule int

const (
	// Static deals contiguous blocks of roughly n/workers iterations,
	// assigned once before the loop runs. Lowest overhead; the paper's
	// stair-step model (Table 3) describes exactly this schedule: the
	// critical path holds ceil(n/workers) units of work.
	Static Schedule = iota
	// StaticCyclic deals fixed-size chunks round-robin (OpenMP
	// "schedule(static, chunk)"). Useful when iteration cost varies
	// smoothly with the index.
	StaticCyclic
	// Dynamic deals fixed-size chunks from a shared counter as workers
	// become free. Tolerates ragged iteration costs at the price of one
	// atomic operation per chunk.
	Dynamic
	// Guided deals shrinking chunks (half the remaining work divided by
	// the team size, but at least the chunk size), approximating
	// dynamic's balance with fewer atomic operations.
	Guided
)

// String returns the OpenMP-style name of the schedule.
func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case StaticCyclic:
		return "static-cyclic"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// PanicError is the value a fork-join region re-raises on the caller
// when a worker panicked inside the region. It preserves the original
// panic value plus the worker's identity and stack, and implements
// error so a recover site (for example a job scheduler) can convert
// the region failure into an ordinary error without losing the cause.
//
// The team itself survives: the panic breaks the region's barrier so
// no teammate deadlocks waiting for the dead worker, the join still
// completes, and the barrier is replaced before the re-raise, leaving
// the team immediately reusable for further regions.
type PanicError struct {
	// Value is the original panic value.
	Value any
	// Worker is the index of the worker that panicked.
	Worker int
	// Stack is the panicking worker's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parloop: worker %d panicked: %v", e.Worker, e.Value)
}

// barrierBroken is the sentinel panic used to unwind workers parked at
// a region barrier when a teammate panics: the broken barrier releases
// them, they unwind with this sentinel, and the region's recover
// discards it in favor of the teammate's original panic.
type barrierBroken struct{}

// task is one fork-join region's per-worker work unit.
type task struct {
	body func(worker int)
	wg   *sync.WaitGroup
}

// Team is a persistent group of workers that executes parallel regions.
// The zero value is not usable; call NewTeam. A Team is safe for use by
// one region at a time (like an OpenMP thread team); concurrent regions
// on the same team must be externally serialized.
type Team struct {
	workers int
	cmds    []chan task // one channel per helper (workers 1..workers-1)
	bar     *barrier

	// tracer receives region/barrier/chunk span events labeled with
	// label. A nil or disabled tracer costs one atomic load per site
	// and allocates nothing (the obs package's always-attached
	// contract).
	tracer *obs.Tracer
	label  string

	closed  atomic.Bool
	regions atomic.Uint64 // synchronization events (fork-join regions)

	// inRegion is an advisory guard marking a fork-join region open on
	// the team. Resize and a second concurrent region check it to turn
	// the silent corruption of a contract violation (Resize racing an
	// in-flight ForSched's dynamic counter, two regions sharing one
	// barrier) into an immediate panic.
	inRegion atomic.Bool

	// phase is the barrier-epoch counter the dynamic loop-dependence
	// checker (internal/check) keys its happens-before relation on: it
	// is bumped when a region forks, when a region joins, and when a
	// region barrier releases. Two memory accesses can race only if
	// they observe the same phase from different workers — accesses in
	// different phases are separated by a fork, join or barrier.
	phase atomic.Uint64

	// panicMu collects the first panic raised inside a region so it can
	// be re-raised on the caller's goroutine after the join.
	panicMu  sync.Mutex
	panicked any
	panicSet bool
}

// NewTeam creates a team of n workers. The calling goroutine
// participates as worker 0 of every region; n-1 helper goroutines are
// started and parked. A team with n == 1 executes all regions inline
// and opens no synchronization events. n < 1 is clamped to 1 (a
// degenerate grant still deserves a working serial team — the guard a
// processor-allocating scheduler relies on).
func NewTeam(n int) *Team {
	if n < 1 {
		n = 1
	}
	t := &Team{
		workers: n,
	}
	t.bar = t.newBarrier(n)
	t.startHelpers()
	return t
}

// newBarrier builds a region barrier wired to bump the team's phase
// counter at every release, so barrier-separated loop phases are
// distinct epochs for the dependence checker.
func (t *Team) newBarrier(n int) *barrier {
	b := newBarrier(n)
	b.onRelease = func() { t.phase.Add(1) }
	return b
}

// startHelpers launches helper goroutines for workers 1..workers-1,
// populating t.cmds.
func (t *Team) startHelpers() {
	t.cmds = make([]chan task, t.workers-1)
	for i := range t.cmds {
		ch := make(chan task)
		t.cmds[i] = ch
		go func(worker int, ch chan task) {
			for tk := range ch {
				t.runWorker(tk, worker)
			}
		}(i+1, ch)
	}
}

// Resize changes the team to n workers (n < 1 is clamped to 1),
// stopping the old helper goroutines and starting a fresh set. The
// synchronization-event counter is preserved. Resize must only be
// called between regions, by the same logical owner that opens regions
// (for a scheduled job: at a step boundary); it must never run
// concurrently with a region on the same team. Resizing to the current
// size is a no-op. This is the grow/shrink primitive a space-sharing
// scheduler uses to apply a revised processor grant to a running job.
//
// Resize detects the most dangerous misuse — running while a region is
// in flight — and panics instead of corrupting the region: a resize
// racing an open ForSched would close the command channels workers are
// being dispatched on and change the worker count that the dynamic and
// guided chunk calculations read mid-loop, silently skipping or
// double-running iterations. The check is advisory (a narrow race
// window remains), but it converts every deterministic interleaving of
// the misuse into an immediate, attributable failure.
func (t *Team) Resize(n int) {
	if t.closed.Load() {
		panic("parloop: Resize after Close")
	}
	if t.inRegion.Load() {
		panic("parloop: Resize during an open region (Resize must run between regions, serialized with them)")
	}
	if n < 1 {
		n = 1
	}
	if n == t.workers {
		return
	}
	for _, ch := range t.cmds {
		close(ch)
	}
	t.workers = n
	t.bar = t.newBarrier(n)
	t.startHelpers()
}

// runWorker executes one worker's share of a region, converting panics
// into a recorded value so the join can re-raise them.
func (t *Team) runWorker(tk task, worker int) {
	defer func() {
		if r := recover(); r != nil {
			t.abortRegion(r, worker)
		}
		tk.wg.Done()
	}()
	tk.body(worker)
}

// abortRegion handles a panic raised inside an open region: it records
// the first real panic (wrapped as a *PanicError with the worker's
// stack) and breaks the region barrier so teammates parked at a
// Barrier unwind instead of deadlocking on the dead worker. The
// barrierBroken sentinel those teammates raise while unwinding is
// discarded — only the original panic survives to the join.
func (t *Team) abortRegion(r any, worker int) {
	if _, ok := r.(barrierBroken); ok {
		return
	}
	t.panicMu.Lock()
	if !t.panicSet {
		t.panicked = &PanicError{Value: r, Worker: worker, Stack: debug.Stack()}
		t.panicSet = true
	}
	t.panicMu.Unlock()
	t.bar.breakBarrier()
}

// SetTracer attaches tr to the team; subsequent regions emit
// region-begin/end spans, barrier waits and per-worker chunk spans
// tagged with label (typically the job name). Like Resize, SetTracer
// must only be called between regions. A nil tracer detaches.
func (t *Team) SetTracer(tr *obs.Tracer, label string) {
	t.tracer = tr
	t.label = label
}

// SetLabel changes the label on subsequent trace events without
// detaching the tracer. Multi-phase solvers relabel around each phase
// so one traced run yields per-phase loops in the profile rankings
// (the evidence the auto-parallelization pipeline plans from) instead
// of a single aggregate. Like SetTracer, SetLabel must only be called
// between regions.
func (t *Team) SetLabel(label string) { t.label = label }

// Label returns the current trace label, so a solver that relabels
// phases can restore the caller's label afterwards.
func (t *Team) Label() string { return t.label }

// Tracer returns the attached tracer (nil when detached).
func (t *Team) Tracer() *obs.Tracer { return t.tracer }

// Workers returns the team size.
func (t *Team) Workers() int { return t.workers }

// SyncEvents returns the number of fork-join regions (synchronization
// events) the team has executed since creation. A team of one worker
// never synchronizes and always reports zero.
func (t *Team) SyncEvents() uint64 { return t.regions.Load() }

// ResetSyncEvents zeroes the synchronization-event counter.
func (t *Team) ResetSyncEvents() { t.regions.Store(0) }

// Phase returns the team's barrier-epoch counter: a monotone value
// bumped at every region fork, region join and barrier release. All
// accesses a worker performs between two consecutive bumps observe the
// same phase; accesses in different phases are ordered by the fork,
// join or barrier between them. The dynamic loop-dependence checker
// (internal/check) uses this as the happens-before relation of the
// fork-join/barrier execution model: two accesses to the same element
// by different workers in the same phase, at least one a write, are a
// loop-carried-dependence race. A one-worker team never bumps.
func (t *Team) Phase() uint64 { return t.phase.Load() }

// Close stops the helper goroutines. The team must not be used after
// Close. Close is idempotent.
func (t *Team) Close() {
	if t.closed.Swap(true) {
		return
	}
	for _, ch := range t.cmds {
		close(ch)
	}
}

// fork runs body(worker) on every worker (0..Workers-1) and returns
// after all complete: one fork-join region, one synchronization event.
// A panic raised by any worker breaks the region barrier (so no
// teammate deadlocks), is wrapped as a *PanicError and re-raised on
// the caller after the join; the team remains usable.
// runSerial executes fn as worker 0 of a degenerate serial region,
// wrapping a panic as a *PanicError exactly like a real fork-join
// would, so callers see one failure contract regardless of team size.
func (t *Team) runSerial(fn func()) {
	defer func() {
		if r := recover(); r != nil {
			if pe, ok := r.(*PanicError); ok {
				panic(pe)
			}
			panic(&PanicError{Value: r, Worker: 0, Stack: debug.Stack()})
		}
	}()
	fn()
}

func (t *Team) fork(body func(worker int)) {
	if t.closed.Load() {
		panic("parloop: team used after Close")
	}
	if t.workers == 1 {
		t.runSerial(func() { body(0) })
		return
	}
	if !t.inRegion.CompareAndSwap(false, true) {
		panic("parloop: concurrent regions on one team (regions must be externally serialized)")
	}
	defer t.inRegion.Store(false)
	t.regions.Add(1)
	t.phase.Add(1) // fork: the region body is a new epoch
	tr := t.tracer
	traced := tr.Enabled()
	var start time.Time
	if traced {
		start = tr.Now()
		tr.Emit(obs.Event{Kind: obs.KindRegionBegin, At: start, Name: t.label, Worker: -1, A: int64(t.workers)})
	}
	var wg sync.WaitGroup
	wg.Add(t.workers - 1)
	tk := task{body: body, wg: &wg}
	for _, ch := range t.cmds {
		ch <- tk
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				t.abortRegion(r, 0)
			}
		}()
		body(0)
	}()
	wg.Wait()
	t.phase.Add(1) // join: code after the region is a new epoch
	if traced {
		end := tr.Now()
		tr.Emit(obs.Event{Kind: obs.KindRegionEnd, At: end, Name: t.label, Worker: -1, Dur: end.Sub(start), A: int64(t.workers)})
	}
	t.panicMu.Lock()
	r, set := t.panicked, t.panicSet
	t.panicked, t.panicSet = nil, false
	t.panicMu.Unlock()
	if set {
		// The panic may have left the barrier broken or mid-cycle;
		// replace it so the team stays usable for further regions.
		t.bar = t.newBarrier(t.workers)
		panic(r)
	}
}

// For executes body(i) for i in [0, n) in parallel using the Static
// schedule. It is the analogue of a C$doacross on the loop itself
// (Example 1). For n <= 0 it returns immediately without opening a
// region.
func (t *Team) For(n int, body func(i int)) {
	t.ForChunked(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// ForChunked executes body(lo, hi) over disjoint contiguous ranges
// covering [0, n) using the Static schedule. Passing the range rather
// than individual indices lets the body hoist per-chunk setup (scratch
// buffers, the paper's pencil-sized work arrays) out of the inner loop.
func (t *Team) ForChunked(n int, body func(lo, hi int)) {
	t.forChunkedW(n, func(_, lo, hi int) { body(lo, hi) })
}

// forChunkedW is the Static-schedule core shared by ForChunked and
// ForSchedW: it additionally hands the body the executing worker's
// index.
func (t *Team) forChunkedW(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if t.workers == 1 || n == 1 {
		// A single worker or a single iteration opens no parallel
		// region: the paper's "serial fallback" for degenerate loops.
		if t.workers > 1 {
			// Degenerate loop on a real team still synchronizes once
			// (the region is opened before the trip count is known in
			// directive-based models). We run it inline but count it.
			t.regions.Add(1)
		}
		t.runSerial(func() { body(0, 0, n) })
		return
	}
	t.fork(func(w int) {
		lo, hi := StaticRange(n, t.workers, w)
		if lo < hi {
			t.runChunk(w, lo, hi, func(lo, hi int) { body(w, lo, hi) })
		}
	})
}

// runChunk executes one worker's chunk, emitting a per-chunk span when
// the team's tracer is enabled. The disabled path is a direct call.
func (t *Team) runChunk(w, lo, hi int, body func(lo, hi int)) {
	tr := t.tracer
	if !tr.Enabled() {
		body(lo, hi)
		return
	}
	start := tr.Now()
	body(lo, hi)
	end := tr.Now()
	tr.Emit(obs.Event{Kind: obs.KindChunk, At: end, Name: t.label, Worker: w, Dur: end.Sub(start), A: int64(lo), B: int64(hi)})
}

// ForSched executes body(lo, hi) over chunks of [0, n) under the given
// schedule. chunk is the chunk size for StaticCyclic and Dynamic and
// the minimum chunk for Guided; it is ignored by Static. chunk <= 0
// defaults to 1.
func (t *Team) ForSched(n int, sched Schedule, chunk int, body func(lo, hi int)) {
	t.ForSchedW(n, sched, chunk, func(_, lo, hi int) { body(lo, hi) })
}

// ForSchedW is ForSched with the executing worker's index passed to the
// body. The index is what dependence-instrumented kernels (internal/
// check) record with every shadow-memory access, and what per-worker
// accumulator reductions index their partials with; bodies that need
// neither should use ForSched.
func (t *Team) ForSchedW(n int, sched Schedule, chunk int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	switch sched {
	case Static:
		t.forChunkedW(n, body)
	case StaticCyclic:
		t.fork(func(w int) {
			wb := func(lo, hi int) { body(w, lo, hi) }
			for lo := w * chunk; lo < n; lo += t.workers * chunk {
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				t.runChunk(w, lo, hi, wb)
			}
		})
	case Dynamic:
		var next atomic.Int64
		t.fork(func(w int) {
			wb := func(lo, hi int) { body(w, lo, hi) }
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				t.runChunk(w, lo, hi, wb)
			}
		})
	case Guided:
		var next atomic.Int64
		t.fork(func(w int) {
			wb := func(lo, hi int) { body(w, lo, hi) }
			for {
				cur := next.Load()
				for {
					if int(cur) >= n {
						return
					}
					remaining := n - int(cur)
					c := remaining / (2 * t.workers)
					if c < chunk {
						c = chunk
					}
					if c > remaining {
						c = remaining
					}
					if next.CompareAndSwap(cur, cur+int64(c)) {
						t.runChunk(w, int(cur), int(cur)+c, wb)
						break
					}
					cur = next.Load()
				}
			}
		})
	default:
		panic(fmt.Sprintf("parloop: unknown schedule %v", sched))
	}
}

// StaticRange returns the half-open range [lo, hi) of iterations
// assigned to the given worker by the Static schedule for a loop of n
// iterations on workers workers. The first n%workers workers receive
// ceil(n/workers) iterations and the rest floor(n/workers), so the
// maximum per-worker share is exactly the ceil(n/p) of the paper's
// stair-step model (Table 3).
func StaticRange(n, workers, worker int) (lo, hi int) {
	if workers < 1 {
		panic(fmt.Sprintf("parloop: StaticRange workers must be >= 1, got %d", workers))
	}
	if worker < 0 || worker >= workers {
		panic(fmt.Sprintf("parloop: StaticRange worker %d out of range [0,%d)", worker, workers))
	}
	if n < 0 {
		n = 0
	}
	q, r := n/workers, n%workers
	if worker < r {
		lo = worker * (q + 1)
		hi = lo + q + 1
		return lo, hi
	}
	lo = r*(q+1) + (worker-r)*q
	return lo, lo + q
}

// WorkerCtx is the view a worker has of the parallel region it is
// running inside (Region). It provides the worker's identity and the
// collective operations available mid-region.
type WorkerCtx struct {
	team   *Team
	worker int
}

// ID returns this worker's index in [0, Workers()).
func (c *WorkerCtx) ID() int { return c.worker }

// Workers returns the team size.
func (c *WorkerCtx) Workers() int { return c.team.workers }

// Barrier blocks until every worker in the region has called Barrier.
// It counts as one synchronization event (the cost of separating two
// loop phases inside a merged region is a barrier, which is cheaper
// than a full fork-join but still a synchronization in the paper's
// accounting).
func (c *WorkerCtx) Barrier() {
	if c.team.workers == 1 {
		return
	}
	if c.worker == 0 {
		c.team.regions.Add(1)
	}
	tr := c.team.tracer
	if tr.Enabled() {
		start := tr.Now()
		c.team.bar.wait()
		end := tr.Now()
		tr.Emit(obs.Event{Kind: obs.KindBarrier, At: end, Name: c.team.label, Worker: c.worker, Dur: end.Sub(start)})
		return
	}
	c.team.bar.wait()
}

// Range returns this worker's Static-schedule share of a loop of n
// iterations. It is how merged loops (Example 2) and hoisted parent
// loops (Example 3) divide work without opening a new region.
func (c *WorkerCtx) Range(n int) (lo, hi int) {
	return StaticRange(n, c.team.workers, c.worker)
}

// For runs body(i) for this worker's Static share of [0, n): a loop
// inside an open region, costing no additional synchronization (until
// the caller decides a Barrier is needed). With a tracer enabled the
// share is recorded as one chunk span carrying the worker's identity
// and index range, so merged-region loop phases get the same
// attribution as standalone ForChunked loops.
func (c *WorkerCtx) For(n int, body func(i int)) {
	lo, hi := c.Range(n)
	if lo >= hi {
		return
	}
	c.team.runChunk(c.worker, lo, hi, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Region opens one parallel region and runs body on every worker. All
// loops executed via ctx inside the region share the region's single
// fork-join synchronization; phases with dependencies between them are
// separated by ctx.Barrier(). This is the paper's Example 2 (merging
// loops under a common outer loop) and Example 3 (parallelizing a
// parent subroutine) in API form.
func (t *Team) Region(body func(ctx *WorkerCtx)) {
	if t.workers == 1 {
		t.runSerial(func() { body(&WorkerCtx{team: t, worker: 0}) })
		return
	}
	t.fork(func(w int) {
		body(&WorkerCtx{team: t, worker: w})
	})
}

// barrier is a reusable cyclic barrier for a fixed party count. It can
// be broken (by a panicking teammate): a broken barrier releases every
// current and future waiter by raising the barrierBroken sentinel,
// which unwinds them out of the region instead of deadlocking them on
// a worker that will never arrive. A broken barrier stays broken; the
// team replaces it at the region join.
type barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	gen    uint64
	broken bool
	// onRelease, if set, runs under mu exactly once per cycle, by the
	// last arriver, before any waiter is released: every access before
	// the barrier by any party happens before it, and every access
	// after the barrier happens after it. The team uses it to bump its
	// phase counter.
	onRelease func()
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait() {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		panic(barrierBroken{})
	}
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		if b.onRelease != nil {
			b.onRelease()
		}
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	broken := b.broken
	b.mu.Unlock()
	if broken {
		panic(barrierBroken{})
	}
}

// breakBarrier marks the barrier broken and wakes every waiter.
func (b *barrier) breakBarrier() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
