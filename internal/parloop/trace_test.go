package parloop

import (
	"testing"

	"repro/internal/obs"
)

// countKinds tallies events by kind.
func countKinds(events []obs.Event) map[obs.Kind]int {
	m := make(map[obs.Kind]int)
	for _, e := range events {
		m[e.Kind]++
	}
	return m
}

func TestTracerRegionAndChunkEvents(t *testing.T) {
	tr := obs.NewTracer(1024, nil)
	tr.Enable()
	team := NewTeam(4)
	defer team.Close()
	team.SetTracer(tr, "zone7")

	team.For(16, func(i int) {})

	kinds := countKinds(tr.Events())
	if kinds[obs.KindRegionBegin] != 1 || kinds[obs.KindRegionEnd] != 1 {
		t.Errorf("region events %v, want one begin and one end", kinds)
	}
	// Four workers, 16 iterations: every worker gets a chunk.
	if kinds[obs.KindChunk] != 4 {
		t.Errorf("chunk events = %d, want 4", kinds[obs.KindChunk])
	}
	covered := 0
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.KindChunk:
			covered += int(e.B - e.A)
			if e.Worker < 0 || e.Worker >= 4 {
				t.Errorf("chunk worker %d out of range", e.Worker)
			}
		case obs.KindRegionEnd:
			if e.A != 4 {
				t.Errorf("region end team size %d, want 4", e.A)
			}
		}
		if e.Name != "zone7" {
			t.Errorf("event label %q, want zone7", e.Name)
		}
	}
	if covered != 16 {
		t.Errorf("chunk spans cover %d iterations, want 16", covered)
	}
}

func TestTracerBarrierEvents(t *testing.T) {
	tr := obs.NewTracer(1024, nil)
	tr.Enable()
	team := NewTeam(3)
	defer team.Close()
	team.SetTracer(tr, "")

	team.Region(func(ctx *WorkerCtx) {
		ctx.Barrier()
		ctx.Barrier()
	})

	kinds := countKinds(tr.Events())
	// Each of the 2 barriers is waited on by all 3 workers.
	if kinds[obs.KindBarrier] != 6 {
		t.Errorf("barrier events = %d, want 6", kinds[obs.KindBarrier])
	}
}

func TestTracerSchedulesEmitChunks(t *testing.T) {
	for _, sched := range []Schedule{StaticCyclic, Dynamic, Guided} {
		tr := obs.NewTracer(4096, nil)
		tr.Enable()
		team := NewTeam(4)
		team.SetTracer(tr, "sched")
		covered := 0
		team.ForSched(100, sched, 8, func(lo, hi int) {})
		for _, e := range tr.Events() {
			if e.Kind == obs.KindChunk {
				covered += int(e.B - e.A)
			}
		}
		team.Close()
		if covered != 100 {
			t.Errorf("%v: chunk spans cover %d iterations, want 100", sched, covered)
		}
	}
}

// TestTracerRegionLoopAndReduceChunks: loop phases inside a merged
// region (ctx.For) and reduction folds carry per-worker chunk spans
// with index ranges, so the analyzer can attribute their work.
func TestTracerRegionLoopAndReduceChunks(t *testing.T) {
	tr := obs.NewTracer(1024, nil)
	tr.Enable()
	team := NewTeam(4)
	defer team.Close()
	team.SetTracer(tr, "merged")

	team.Region(func(ctx *WorkerCtx) {
		ctx.For(10, func(i int) {})
		ctx.Barrier()
		ctx.For(6, func(i int) {})
	})
	covered := 0
	for _, e := range tr.Events() {
		if e.Kind == obs.KindChunk {
			covered += int(e.B - e.A)
			if e.Worker < 0 || e.Worker >= 4 {
				t.Errorf("chunk worker %d out of range", e.Worker)
			}
		}
	}
	if covered != 16 {
		t.Errorf("region loop chunk spans cover %d iterations, want 16", covered)
	}

	tr.Reset()
	if got := SumFloat64(team, 12, func(i int) float64 { return 1 }); got != 12 {
		t.Fatalf("SumFloat64 = %v, want 12", got)
	}
	sum := Reduce(team, 12, 0, func(i, acc int) int { return acc + 1 }, func(a, b int) int { return a + b })
	if sum != 12 {
		t.Fatalf("Reduce = %d, want 12", sum)
	}
	covered = 0
	for _, e := range tr.Events() {
		if e.Kind == obs.KindChunk {
			covered += int(e.B - e.A)
		}
	}
	if covered != 24 {
		t.Errorf("reduction chunk spans cover %d iterations, want 24 (two 12-iteration reductions)", covered)
	}
}

func TestDisabledTracerEmitsNothingAndAddsNoAllocs(t *testing.T) {
	tr := obs.NewTracer(64, nil)
	team := NewTeam(4)
	defer team.Close()

	body := func(lo, hi int) {}
	base := testing.AllocsPerRun(100, func() { team.ForChunked(1024, body) })

	team.SetTracer(tr, "off")
	withTracer := testing.AllocsPerRun(100, func() { team.ForChunked(1024, body) })

	if tr.Len() != 0 {
		t.Errorf("disabled tracer recorded %d events", tr.Len())
	}
	if withTracer > base {
		t.Errorf("disabled tracer adds allocations: %v > %v per region", withTracer, base)
	}
}

func TestTracerSurvivesResizeAndPanic(t *testing.T) {
	tr := obs.NewTracer(1024, nil)
	tr.Enable()
	team := NewTeam(2)
	defer team.Close()
	team.SetTracer(tr, "crashy")

	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("worker panic not re-raised")
			}
		}()
		team.For(2, func(i int) {
			if i == 1 {
				panic("boom")
			}
		})
	}()

	team.Resize(3)
	tr.Reset()
	team.For(9, func(i int) {})
	kinds := countKinds(tr.Events())
	if kinds[obs.KindRegionEnd] != 1 || kinds[obs.KindChunk] != 3 {
		t.Errorf("after resize: events %v, want 1 region end and 3 chunks", kinds)
	}
}
