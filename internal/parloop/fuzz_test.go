package parloop

import (
	"sync"
	"sync/atomic"
	"testing"
)

// FuzzStaticRange is the partition property test for the Static
// schedule's range math: for every (n, workers) the per-worker ranges
// must tile [0, n) exactly — disjoint, exhaustive, in worker order —
// with shares differing by at most one iteration and the largest share
// equal to ceil(n/workers), the critical-path length of the paper's
// stair-step model.
func FuzzStaticRange(f *testing.F) {
	f.Add(uint16(0), uint8(1))
	f.Add(uint16(1), uint8(1))
	f.Add(uint16(15), uint8(4))
	f.Add(uint16(100), uint8(7))
	f.Add(uint16(1000), uint8(64))
	f.Fuzz(func(t *testing.T, nRaw uint16, wRaw uint8) {
		n := int(nRaw)
		workers := 1 + int(wRaw)%256
		prevHi := 0
		minShare, maxShare := n+1, -1
		for w := 0; w < workers; w++ {
			lo, hi := StaticRange(n, workers, w)
			if lo > hi {
				t.Fatalf("StaticRange(%d,%d,%d) = [%d,%d): inverted", n, workers, w, lo, hi)
			}
			if lo != prevHi {
				t.Fatalf("StaticRange(%d,%d,%d) starts at %d, want %d (gap or overlap)", n, workers, w, lo, prevHi)
			}
			prevHi = hi
			share := hi - lo
			if share < minShare {
				minShare = share
			}
			if share > maxShare {
				maxShare = share
			}
		}
		if prevHi != n {
			t.Fatalf("StaticRange(%d,%d,·) covers [0,%d), want [0,%d)", n, workers, prevHi, n)
		}
		if maxShare-minShare > 1 {
			t.Fatalf("StaticRange(%d,%d,·): share spread %d..%d, want within 1", n, workers, minShare, maxShare)
		}
		ceil := (n + workers - 1) / workers
		if maxShare != ceil && n > 0 {
			t.Fatalf("StaticRange(%d,%d,·): max share %d, want ceil = %d", n, workers, maxShare, ceil)
		}
	})
}

// fuzzTeams caches teams per worker count so schedule-cover fuzzing
// does not start and stop goroutines on every input.
var fuzzTeams sync.Map // int -> *Team

func fuzzTeam(workers int) *Team {
	if tm, ok := fuzzTeams.Load(workers); ok {
		return tm.(*Team)
	}
	tm, _ := fuzzTeams.LoadOrStore(workers, NewTeam(workers))
	return tm.(*Team)
}

// FuzzScheduleCover is the partition property test for every Schedule:
// executed on a real team, each schedule must visit every iteration of
// [0, n) exactly once for all (n, workers, chunk) — no index dropped,
// none double-dealt, whichever worker picks up each chunk.
func FuzzScheduleCover(f *testing.F) {
	f.Add(uint16(0), uint8(1), uint8(0), uint8(0))
	f.Add(uint16(1), uint8(3), uint8(1), uint8(1))
	f.Add(uint16(100), uint8(4), uint8(3), uint8(2))
	f.Add(uint16(255), uint8(7), uint8(16), uint8(3))
	f.Add(uint16(97), uint8(2), uint8(13), uint8(2))
	f.Fuzz(func(t *testing.T, nRaw uint16, wRaw, chunkRaw, schedRaw uint8) {
		n := int(nRaw) % 512
		workers := 1 + int(wRaw)%8
		chunk := int(chunkRaw) % 32 // 0 exercises the default
		sched := Schedule(int(schedRaw) % 4)
		tm := fuzzTeam(workers)
		visits := make([]int32, n)
		tm.ForSchedW(n, sched, chunk, func(w, lo, hi int) {
			if w < 0 || w >= workers {
				t.Errorf("%v: worker %d out of range [0,%d)", sched, w, workers)
			}
			if lo < 0 || hi > n || lo > hi {
				t.Errorf("%v: chunk [%d,%d) outside [0,%d)", sched, lo, hi, n)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&visits[i], 1)
			}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("%v n=%d workers=%d chunk=%d: index %d visited %d times, want 1",
					sched, n, workers, chunk, i, v)
			}
		}
	})
}
