package parloop

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkForkJoinOverhead measures the cost of one empty parallel
// region — the synchronization cost of the paper's Table 1 — for a
// range of team sizes.
func BenchmarkForkJoinOverhead(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			tm := NewTeam(w)
			defer tm.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tm.For(w, func(int) {})
			}
		})
	}
}

// BenchmarkBarrier measures a bare barrier inside an open region (the
// cheaper synchronization available to merged loop phases).
func BenchmarkBarrier(b *testing.B) {
	for _, w := range []int{2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			tm := NewTeam(w)
			defer tm.Close()
			b.ResetTimer()
			tm.Region(func(ctx *WorkerCtx) {
				for i := 0; i < b.N; i++ {
					ctx.Barrier()
				}
			})
		})
	}
}

// BenchmarkSchedulesUniform compares schedules on uniform iterations,
// where Static should win on overhead.
func BenchmarkSchedulesUniform(b *testing.B) {
	tm := NewTeam(runtime.GOMAXPROCS(0))
	defer tm.Close()
	const n = 1 << 14
	data := make([]float64, n)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = v*v + 1
		}
	}
	for _, sched := range []Schedule{Static, StaticCyclic, Dynamic, Guided} {
		b.Run(sched.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tm.ForSched(n, sched, 64, body)
			}
		})
	}
}

func BenchmarkSumFloat64(b *testing.B) {
	tm := NewTeam(runtime.GOMAXPROCS(0))
	defer tm.Close()
	const n = 1 << 16
	data := make([]float64, n)
	for i := range data {
		data[i] = float64(i)
	}
	b.SetBytes(n * 8)
	for i := 0; i < b.N; i++ {
		SumFloat64(tm, n, func(j int) float64 { return data[j] })
	}
}

func BenchmarkCollapse2VsNested(b *testing.B) {
	tm := NewTeam(runtime.GOMAXPROCS(0))
	defer tm.Close()
	const n1, n2 = 64, 256
	data := make([]float64, n1*n2)
	b.Run("nested", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tm.ForNested(n1, n2, func(x, y int) { data[x*n2+y] += 1 })
		}
	})
	b.Run("collapse2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tm.Collapse2(n1, n2, func(x, y int) { data[x*n2+y] += 1 })
		}
	})
}

func BenchmarkSections(b *testing.B) {
	tm := NewTeam(4)
	defer tm.Close()
	work := func() {
		s := 0.0
		for i := 0; i < 1000; i++ {
			s += float64(i)
		}
		_ = s
	}
	tasks := []func(){work, work, work, work}
	for i := 0; i < b.N; i++ {
		tm.Sections(tasks...)
	}
}
