package parloop

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func teams(t *testing.T) []*Team {
	t.Helper()
	sizes := []int{1, 2, 3, 4, 7}
	ts := make([]*Team, len(sizes))
	for i, n := range sizes {
		tm := NewTeam(n)
		t.Cleanup(tm.Close)
		ts[i] = tm
	}
	return ts
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, tm := range teams(t) {
		for _, n := range []int{0, 1, 2, 5, 17, 100, 1001} {
			hits := make([]int32, n)
			tm.For(n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d hit %d times", tm.Workers(), n, i, h)
				}
			}
		}
	}
}

func TestForChunkedCoversDisjointRanges(t *testing.T) {
	for _, tm := range teams(t) {
		for _, n := range []int{1, 2, 6, 19, 128} {
			hits := make([]int32, n)
			tm.ForChunked(n, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("empty chunk [%d,%d) delivered", lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Errorf("workers=%d n=%d: index %d hit %d times", tm.Workers(), n, i, h)
				}
			}
		}
	}
}

func TestForSchedAllSchedules(t *testing.T) {
	scheds := []Schedule{Static, StaticCyclic, Dynamic, Guided}
	for _, tm := range teams(t) {
		for _, sched := range scheds {
			for _, n := range []int{0, 1, 7, 64, 333} {
				for _, chunk := range []int{0, 1, 3, 16, 1000} {
					hits := make([]int32, n)
					tm.ForSched(n, sched, chunk, func(lo, hi int) {
						for i := lo; i < hi; i++ {
							atomic.AddInt32(&hits[i], 1)
						}
					})
					for i, h := range hits {
						if h != 1 {
							t.Fatalf("workers=%d sched=%v n=%d chunk=%d: index %d hit %d times",
								tm.Workers(), sched, n, chunk, i, h)
						}
					}
				}
			}
		}
	}
}

func TestStaticRangePartitionProperties(t *testing.T) {
	// Property: ranges are ascending, disjoint, cover [0,n), and the
	// largest share equals ceil(n/workers) when n >= workers (the
	// paper's stair-step critical path).
	f := func(nu uint16, wu uint8) bool {
		n := int(nu % 5000)
		w := int(wu%32) + 1
		prevHi := 0
		maxShare := 0
		for worker := 0; worker < w; worker++ {
			lo, hi := StaticRange(n, w, worker)
			if lo != prevHi || hi < lo {
				return false
			}
			if hi-lo > maxShare {
				maxShare = hi - lo
			}
			prevHi = hi
		}
		if prevHi != n {
			return false
		}
		wantMax := (n + w - 1) / w
		return maxShare == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStaticRangeBalance(t *testing.T) {
	// Shares differ by at most one iteration.
	for _, w := range []int{1, 2, 5, 16, 128} {
		for _, n := range []int{0, 1, 15, 89, 1000} {
			mn, mx := 1<<30, 0
			for worker := 0; worker < w; worker++ {
				lo, hi := StaticRange(n, w, worker)
				s := hi - lo
				if s < mn {
					mn = s
				}
				if s > mx {
					mx = s
				}
			}
			if mx-mn > 1 {
				t.Errorf("w=%d n=%d: share spread %d..%d", w, n, mn, mx)
			}
		}
	}
}

func TestStaticRangePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"workers=0":  func() { StaticRange(10, 0, 0) },
		"worker=-1":  func() { StaticRange(10, 2, -1) },
		"worker=out": func() { StaticRange(10, 2, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewTeamClampsToOne(t *testing.T) {
	for _, n := range []int{0, -3} {
		tm := NewTeam(n)
		if got := tm.Workers(); got != 1 {
			t.Errorf("NewTeam(%d).Workers() = %d, want 1", n, got)
		}
		sum := 0
		tm.For(5, func(i int) { sum += i })
		if sum != 10 {
			t.Errorf("NewTeam(%d) team ran wrong: sum = %d, want 10", n, sum)
		}
		tm.Close()
	}
}

func TestSyncEventCounting(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	tm.ResetSyncEvents()
	tm.For(100, func(int) {})             // 1 region
	tm.ForChunked(100, func(int, int) {}) // 1 region
	tm.Region(func(ctx *WorkerCtx) {})    // 1 region
	if got := tm.SyncEvents(); got != 3 {
		t.Errorf("SyncEvents = %d, want 3", got)
	}
	tm.Region(func(ctx *WorkerCtx) {
		ctx.Barrier() // +1
		ctx.Barrier() // +1
	})
	if got := tm.SyncEvents(); got != 6 {
		t.Errorf("SyncEvents after barriers = %d, want 6", got)
	}
	// Degenerate loop still counts one region on a real team.
	tm.For(1, func(int) {})
	if got := tm.SyncEvents(); got != 7 {
		t.Errorf("SyncEvents after degenerate loop = %d, want 7", got)
	}
	// n <= 0 opens no region.
	tm.For(0, func(int) { t.Error("body ran for n=0") })
	if got := tm.SyncEvents(); got != 7 {
		t.Errorf("SyncEvents after empty loop = %d, want 7", got)
	}
}

func TestSingleWorkerTeamOpensNoRegions(t *testing.T) {
	tm := NewTeam(1)
	defer tm.Close()
	tm.For(1000, func(int) {})
	tm.Region(func(ctx *WorkerCtx) {
		ctx.Barrier()
		ctx.For(10, func(int) {})
	})
	if got := tm.SyncEvents(); got != 0 {
		t.Errorf("single-worker team recorded %d sync events, want 0", got)
	}
}

func TestRegionMergedLoops(t *testing.T) {
	// Example 2: two loop phases under one region with a barrier between
	// them, where phase 2 reads what phase 1 wrote.
	for _, tm := range teams(t) {
		const n = 257
		a := make([]float64, n)
		b := make([]float64, n)
		tm.Region(func(ctx *WorkerCtx) {
			ctx.For(n, func(i int) { a[i] = float64(i) })
			ctx.Barrier()
			ctx.For(n, func(i int) {
				// Read a neighbor written (possibly) by another worker.
				j := (i + n/2) % n
				b[i] = 2 * a[j]
			})
		})
		for i := range b {
			j := (i + n/2) % n
			if b[i] != 2*float64(j) {
				t.Fatalf("workers=%d: b[%d] = %g, want %g", tm.Workers(), i, b[i], 2*float64(j))
			}
		}
	}
}

func TestRegionWorkerIdentity(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	seen := make([]int32, 4)
	tm.Region(func(ctx *WorkerCtx) {
		if ctx.Workers() != 4 {
			t.Errorf("ctx.Workers() = %d, want 4", ctx.Workers())
		}
		atomic.AddInt32(&seen[ctx.ID()], 1)
	})
	for id, c := range seen {
		if c != 1 {
			t.Errorf("worker %d ran %d times, want 1", id, c)
		}
	}
}

func TestPanicPropagation(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	func() {
		defer func() {
			pe, ok := recover().(*PanicError)
			if !ok || pe.Value != "boom" {
				t.Errorf("recovered %v, want *PanicError wrapping \"boom\"", pe)
				return
			}
			if len(pe.Stack) == 0 {
				t.Error("PanicError carries no stack")
			}
			if pe.Error() == "" {
				t.Error("PanicError.Error() is empty")
			}
		}()
		tm.For(100, func(i int) {
			if i == 57 {
				panic("boom")
			}
		})
	}()
	// The team must remain usable after a panicked region.
	var total atomic.Int64
	tm.For(100, func(i int) { total.Add(int64(i)) })
	if total.Load() != 4950 {
		t.Errorf("team broken after panic: sum = %d, want 4950", total.Load())
	}
}

func TestCloseIdempotentAndUseAfterClosePanics(t *testing.T) {
	tm := NewTeam(2)
	tm.Close()
	tm.Close() // must not panic
	defer func() {
		if recover() == nil {
			t.Error("use after Close should panic")
		}
	}()
	tm.For(10, func(int) {})
}

func TestCollapse2(t *testing.T) {
	for _, tm := range teams(t) {
		const n1, n2 = 7, 13
		hits := make([]int32, n1*n2)
		tm.Collapse2(n1, n2, func(i, j int) {
			if i < 0 || i >= n1 || j < 0 || j >= n2 {
				t.Errorf("out of range (%d,%d)", i, j)
			}
			atomic.AddInt32(&hits[i*n2+j], 1)
		})
		for idx, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: flat index %d hit %d times", tm.Workers(), idx, h)
			}
		}
	}
}

func TestCollapse3(t *testing.T) {
	for _, tm := range teams(t) {
		const n1, n2, n3 = 3, 5, 7
		hits := make([]int32, n1*n2*n3)
		tm.Collapse3(n1, n2, n3, func(i, j, k int) {
			atomic.AddInt32(&hits[(i*n2+j)*n3+k], 1)
		})
		for idx, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: flat index %d hit %d times", tm.Workers(), idx, h)
			}
		}
	}
}

func TestForNested(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	const n1, n2 = 10, 4
	var sum atomic.Int64
	tm.ForNested(n1, n2, func(i, j int) {
		sum.Add(int64(i*n2 + j))
	})
	want := int64(n1*n2) * int64(n1*n2-1) / 2
	if sum.Load() != want {
		t.Errorf("ForNested sum = %d, want %d", sum.Load(), want)
	}
}

func TestScheduleString(t *testing.T) {
	for s, want := range map[Schedule]string{
		Static:       "static",
		StaticCyclic: "static-cyclic",
		Dynamic:      "dynamic",
		Guided:       "guided",
		Schedule(9):  "Schedule(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestForSchedUnknownPanics(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	defer func() {
		if recover() == nil {
			t.Error("unknown schedule should panic")
		}
	}()
	tm.ForSched(10, Schedule(42), 1, func(int, int) {})
}
