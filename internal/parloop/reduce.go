package parloop

// Reduce executes a parallel reduction over [0, n). Each worker folds
// its Static-schedule share into a private accumulator starting from
// identity via fold, and the per-worker partials are combined with
// merge in ascending worker order. Because the partition and the merge
// order are deterministic for a fixed team size, the result is
// bit-reproducible from run to run — the property the paper relies on
// when it requires parallelization "without introducing any changes to
// the algorithm or the convergence properties of the codes".
//
// merge must be associative; it need not be commutative (partials are
// merged left to right).
func Reduce[T any](t *Team, n int, identity T, fold func(i int, acc T) T, merge func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	if t.workers == 1 {
		acc := identity
		t.runSerial(func() {
			for i := 0; i < n; i++ {
				acc = fold(i, acc)
			}
		})
		return acc
	}
	partials := make([]T, t.workers)
	t.fork(func(w int) {
		lo, hi := StaticRange(n, t.workers, w)
		acc := identity
		if lo < hi {
			t.runChunk(w, lo, hi, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					acc = fold(i, acc)
				}
			})
		}
		partials[w] = acc
	})
	acc := partials[0]
	for w := 1; w < t.workers; w++ {
		acc = merge(acc, partials[w])
	}
	return acc
}

// ReduceChunked is Reduce with a range-based fold: each worker receives
// its whole contiguous range once, which lets the fold keep its
// accumulator in a register across the inner loop.
func ReduceChunked[T any](t *Team, n int, identity T, fold func(lo, hi int, acc T) T, merge func(a, b T) T) T {
	if n <= 0 {
		return identity
	}
	if t.workers == 1 {
		acc := identity
		t.runSerial(func() { acc = fold(0, n, acc) })
		return acc
	}
	partials := make([]T, t.workers)
	t.fork(func(w int) {
		lo, hi := StaticRange(n, t.workers, w)
		acc := identity
		if lo < hi {
			t.runChunk(w, lo, hi, func(lo, hi int) {
				acc = fold(lo, hi, acc)
			})
		}
		partials[w] = acc
	})
	acc := partials[0]
	for w := 1; w < t.workers; w++ {
		acc = merge(acc, partials[w])
	}
	return acc
}

// SumFloat64 reduces body(i) summed over [0, n) with deterministic
// combination order.
func SumFloat64(t *Team, n int, body func(i int) float64) float64 {
	return ReduceChunked(t, n, 0.0, func(lo, hi int, acc float64) float64 {
		for i := lo; i < hi; i++ {
			acc += body(i)
		}
		return acc
	}, func(a, b float64) float64 { return a + b })
}

// MaxFloat64 reduces the maximum of body(i) over [0, n). n must be >= 1.
func MaxFloat64(t *Team, n int, body func(i int) float64) float64 {
	if n < 1 {
		panic("parloop: MaxFloat64 needs n >= 1")
	}
	first := body(0)
	return ReduceChunked(t, n, first, func(lo, hi int, acc float64) float64 {
		for i := lo; i < hi; i++ {
			if v := body(i); v > acc {
				acc = v
			}
		}
		return acc
	}, func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	})
}
