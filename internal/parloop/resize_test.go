package parloop

import (
	"sync"
	"sync/atomic"
	"testing"
)

// checkTeamInvariants runs a loop on the team and verifies the
// worker-count invariants: every index visited exactly once, every
// observed worker id in [0, Workers()), and at most Workers() distinct
// workers participating.
func checkTeamInvariants(t *testing.T, tm *Team, n int) {
	t.Helper()
	visits := make([]int32, n)
	var seen sync.Map
	tm.Region(func(ctx *WorkerCtx) {
		if ctx.Workers() != tm.Workers() {
			t.Errorf("ctx.Workers() = %d, team Workers() = %d", ctx.Workers(), tm.Workers())
		}
		w := ctx.ID()
		if w < 0 || w >= tm.Workers() {
			t.Errorf("worker id %d out of range [0,%d)", w, tm.Workers())
		}
		seen.Store(w, true)
		ctx.For(n, func(i int) {
			atomic.AddInt32(&visits[i], 1)
		})
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("index %d visited %d times, want 1", i, v)
		}
	}
	distinct := 0
	seen.Range(func(any, any) bool { distinct++; return true })
	if distinct > tm.Workers() {
		t.Errorf("%d distinct workers participated on a %d-worker team", distinct, tm.Workers())
	}
}

func TestResizeWorkerInvariants(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	for _, n := range []int{4, 1, 7, 3, 2} {
		tm.Resize(n)
		if got := tm.Workers(); got != n {
			t.Fatalf("after Resize(%d): Workers() = %d", n, got)
		}
		checkTeamInvariants(t, tm, 101)
	}
}

func TestResizeClampsToOne(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	tm.Resize(-2)
	if got := tm.Workers(); got != 1 {
		t.Fatalf("Resize(-2): Workers() = %d, want 1", got)
	}
	checkTeamInvariants(t, tm, 17)
}

func TestResizeSameSizeNoOp(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	cmds := tm.cmds
	tm.Resize(3)
	if len(tm.cmds) != len(cmds) {
		t.Fatalf("Resize to same size changed helper count")
	}
	for i := range cmds {
		if tm.cmds[i] != cmds[i] {
			t.Errorf("Resize to same size replaced helper channel %d", i)
		}
	}
}

func TestResizePreservesSyncEvents(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	tm.For(10, func(int) {})
	before := tm.SyncEvents()
	if before != 1 {
		t.Fatalf("SyncEvents before resize = %d, want 1", before)
	}
	tm.Resize(4)
	if got := tm.SyncEvents(); got != before {
		t.Errorf("Resize changed SyncEvents: %d -> %d", before, got)
	}
	tm.For(10, func(int) {})
	if got := tm.SyncEvents(); got != before+1 {
		t.Errorf("SyncEvents after resized region = %d, want %d", got, before+1)
	}
}

func TestResizeAfterClosePanics(t *testing.T) {
	tm := NewTeam(2)
	tm.Close()
	defer func() {
		if recover() == nil {
			t.Error("Resize after Close should panic")
		}
	}()
	tm.Resize(3)
}

// TestResizeDuringOpenRegionPanics is the regression test for the
// Resize-vs-in-flight-ForSched audit: a resize landing while a region
// is open would close the helper channels mid-dispatch and change the
// worker count the dynamic/guided chunk math reads mid-loop. The team
// must refuse with a panic instead of corrupting the loop, and stay
// usable afterwards.
func TestResizeDuringOpenRegionPanics(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	inRegion := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var once sync.Once
		tm.ForSched(64, Dynamic, 4, func(lo, hi int) {
			once.Do(func() { close(inRegion) })
			<-release
		})
	}()
	<-inRegion
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		tm.Resize(5)
		return false
	}()
	close(release)
	<-done
	if !panicked {
		t.Fatal("Resize during an open ForSched did not panic")
	}
	if got := tm.Workers(); got != 3 {
		t.Fatalf("rejected Resize changed Workers() to %d", got)
	}
	checkTeamInvariants(t, tm, 57)
}

// TestConcurrentRegionsPanic: two goroutines opening regions on one
// team is the same contract violation from the other side; the second
// fork must fail fast rather than share the first region's barrier.
func TestConcurrentRegionsPanic(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	inRegion := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var once sync.Once
		tm.ForChunked(8, func(lo, hi int) {
			once.Do(func() { close(inRegion) })
			<-release
		})
	}()
	<-inRegion
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		tm.For(8, func(int) {})
		return false
	}()
	close(release)
	<-done
	if !panicked {
		t.Fatal("second concurrent region on one team did not panic")
	}
	checkTeamInvariants(t, tm, 33)
}

// TestResizeBarrierMatchesNewSize exercises a barrier-bearing region
// after growth and shrink: a stale barrier sized for the old team would
// deadlock or mis-release.
func TestResizeBarrierMatchesNewSize(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	for _, n := range []int{2, 5, 1, 3} {
		tm.Resize(n)
		var phase1 atomic.Int32
		ok := true
		tm.Region(func(ctx *WorkerCtx) {
			phase1.Add(1)
			ctx.Barrier()
			if int(phase1.Load()) != tm.Workers() {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("Resize(%d): barrier released before all workers arrived", n)
		}
	}
}
