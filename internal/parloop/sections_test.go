package parloop

import (
	"sync/atomic"
	"testing"
)

func TestSectionsRunsEveryTaskOnce(t *testing.T) {
	for _, tm := range teams(t) {
		for _, n := range []int{0, 1, 2, 3, 8, 17} {
			counts := make([]int32, n)
			tasks := make([]func(), n)
			for i := range tasks {
				i := i
				tasks[i] = func() { atomic.AddInt32(&counts[i], 1) }
			}
			tm.Sections(tasks...)
			for i, c := range counts {
				if c != 1 {
					t.Errorf("workers=%d n=%d: task %d ran %d times", tm.Workers(), n, i, c)
				}
			}
		}
	}
}

func TestSectionsSyncEvents(t *testing.T) {
	tm := NewTeam(3)
	defer tm.Close()
	tm.ResetSyncEvents()
	tm.Sections(func() {}, func() {}, func() {}, func() {})
	if got := tm.SyncEvents(); got != 1 {
		t.Errorf("Sections opened %d sync events, want 1", got)
	}
	tm.Sections() // empty: no region
	if got := tm.SyncEvents(); got != 1 {
		t.Errorf("empty Sections opened a region")
	}
}

func TestSectionsConcurrent(t *testing.T) {
	// Two tasks that must overlap in time: each waits for the other via
	// channels, deadlocking unless they run concurrently.
	tm := NewTeam(2)
	defer tm.Close()
	a2b := make(chan int, 1)
	b2a := make(chan int, 1)
	var got int32
	tm.Sections(
		func() {
			a2b <- 7
			atomic.AddInt32(&got, int32(<-b2a))
		},
		func() {
			b2a <- 11
			atomic.AddInt32(&got, int32(<-a2b))
		},
	)
	if got != 18 {
		t.Errorf("sections exchange got %d, want 18", got)
	}
}

func TestSectionsPanicPropagates(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	defer func() {
		pe, ok := recover().(*PanicError)
		if !ok || pe.Value != "section boom" {
			t.Error("panic not propagated from section as *PanicError")
		}
	}()
	tm.Sections(func() {}, func() { panic("section boom") })
}
