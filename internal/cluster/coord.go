package cluster

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// DefaultHeartbeatTTL is how long a worker stays live after its last
// heartbeat (or successful RPC) before the coordinator stops routing
// to it.
const DefaultHeartbeatTTL = 5 * time.Second

// Config parameterizes a Coordinator.
type Config struct {
	// Clock drives heartbeat expiry and trace timestamps. nil defaults
	// to the wall clock; tests inject a simclock.Virtual.
	Clock simclock.Clock
	// Tracer receives heartbeat / shard-step / step-RPC / exchange /
	// failover events. nil disables tracing (obs tracers are
	// nil-safe).
	Tracer *obs.Tracer
	// Node tags the coordinator's own events in merged fleet
	// timelines (default "coord"), distinguishing them from
	// worker-side spans.
	Node string
	// Metrics is the registry for the coordinator's counters and
	// gauges. nil creates a private registry.
	Metrics *obs.Registry
	// HeartbeatTTL overrides DefaultHeartbeatTTL when > 0.
	HeartbeatTTL time.Duration
	// Replicas is the consistent-hash ring's virtual-node count per
	// worker (default 64).
	Replicas int
	// Allocator is the shard-planning policy: how many workers a solve
	// with m zones uses. nil defaults to sched.PlateauAllocator — the
	// same stair-step rule the node scheduler applies to processors,
	// run here with whole daemons as the resource.
	Allocator sched.Allocator
}

// workerState is the coordinator's record of one registered worker.
type workerState struct {
	id       string
	client   WorkerClient
	lastSeen time.Time
	lost     bool
}

// Worker is the exported membership view (GET /workers material).
type Worker struct {
	ID       string    `json:"id"`
	LastSeen time.Time `json:"last_seen"`
	Lost     bool      `json:"lost,omitempty"`
	Live     bool      `json:"live"`
}

// Coordinator tracks worker membership and routes work: whole jobs by
// consistent hashing on the workload key (Route), sharded solves by
// zone groups over the same ring order (Solve).
type Coordinator struct {
	cfg      Config
	clock    simclock.Clock
	alloc    sched.Allocator
	solveSeq atomic.Uint64 // assigns per-solve trace ids

	mu      sync.Mutex
	workers map[string]*workerState
	ring    *Ring

	ctrHeartbeats *obs.Counter
	ctrRouted     *obs.Counter
	ctrSteps      *obs.Counter
	ctrPlanes     *obs.Counter
	ctrFailovers  *obs.Counter
	ctrSolves     *obs.Counter
}

// New creates a coordinator with no workers.
func New(cfg Config) *Coordinator {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.HeartbeatTTL <= 0 {
		cfg.HeartbeatTTL = DefaultHeartbeatTTL
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 64
	}
	if cfg.Allocator == nil {
		cfg.Allocator = sched.PlateauAllocator{}
	}
	if cfg.Node == "" {
		cfg.Node = "coord"
	}
	c := &Coordinator{
		cfg:     cfg,
		clock:   cfg.Clock,
		alloc:   cfg.Allocator,
		workers: make(map[string]*workerState),
		ring:    NewRing(cfg.Replicas),

		ctrHeartbeats: cfg.Metrics.Counter("cluster_heartbeats_total", "Worker heartbeats received."),
		ctrRouted:     cfg.Metrics.Counter("cluster_jobs_routed_total", "Jobs routed to a worker by consistent hashing."),
		ctrSteps:      cfg.Metrics.Counter("cluster_shard_steps_total", "Lockstep shard time steps completed across all solves."),
		ctrPlanes:     cfg.Metrics.Counter("cluster_planes_exchanged_total", "Boundary planes routed between shards."),
		ctrFailovers:  cfg.Metrics.Counter("cluster_failovers_total", "Re-shards after a worker loss."),
		ctrSolves:     cfg.Metrics.Counter("cluster_solves_total", "Sharded solves completed."),
	}
	cfg.Metrics.GaugeFunc("cluster_workers_live", "Workers currently live (heartbeat within TTL).", func() float64 {
		return float64(len(c.Live()))
	})
	return c
}

// Metrics returns the coordinator's registry.
func (c *Coordinator) Metrics() *obs.Registry { return c.cfg.Metrics }

// Tracer returns the coordinator's tracer (nil when tracing is off).
func (c *Coordinator) Tracer() *obs.Tracer { return c.cfg.Tracer }

// Node returns the coordinator's node tag.
func (c *Coordinator) Node() string { return c.cfg.Node }

// Clock returns the coordinator's clock.
func (c *Coordinator) Clock() simclock.Clock { return c.clock }

// Register adds a worker under the given id. Re-registering a live id
// is an error; re-registering a lost id replaces its client (the
// restarted-daemon case) and revives it.
func (c *Coordinator) Register(id string, client WorkerClient) error {
	if id == "" || client == nil {
		return fmt.Errorf("cluster: Register needs an id and a client")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.workers[id]; ok && !w.lost {
		return fmt.Errorf("cluster: worker %q already registered", id)
	}
	c.workers[id] = &workerState{id: id, client: client, lastSeen: c.clock.Now()}
	c.ring.Add(id)
	return nil
}

// Deregister removes a worker entirely (planned decommission; loss is
// MarkLost).
func (c *Coordinator) Deregister(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.workers, id)
	c.ring.Remove(id)
}

// Heartbeat records a sign of life from a worker. Heartbeating a lost
// worker revives it (rejoining the ring). Unknown ids are an error —
// workers must register first.
func (c *Coordinator) Heartbeat(id string) error {
	c.mu.Lock()
	w, ok := c.workers[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: heartbeat from unregistered worker %q", id)
	}
	revived := w.lost
	w.lost = false
	w.lastSeen = c.clock.Now()
	if revived {
		c.ring.Add(id)
	}
	c.mu.Unlock()
	c.ctrHeartbeats.Inc()
	if c.cfg.Tracer.Enabled() {
		a := int64(0)
		if revived {
			a = 1
		}
		c.cfg.Tracer.Emit(obs.Event{Kind: obs.KindHeartbeat, Name: id, Worker: -1,
			Node: c.cfg.Node, A: a})
	}
	return nil
}

// MarkLost declares a worker dead (failed RPC, missed heartbeats). It
// stays registered so a later heartbeat can revive it, but leaves the
// ring and the live set immediately.
func (c *Coordinator) MarkLost(id string) {
	c.mu.Lock()
	if w, ok := c.workers[id]; ok && !w.lost {
		w.lost = true
		c.ring.Remove(id)
	}
	c.mu.Unlock()
}

// liveLocked reports whether w counts as live at now.
func (c *Coordinator) liveLocked(w *workerState, now time.Time) bool {
	return !w.lost && now.Sub(w.lastSeen) <= c.cfg.HeartbeatTTL
}

// Live returns the ids of live workers, sorted.
func (c *Coordinator) Live() []string {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.workers))
	for id, w := range c.workers {
		if c.liveLocked(w, now) {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Workers returns the full membership view, sorted by id.
func (c *Coordinator) Workers() []Worker {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Worker, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, Worker{ID: w.id, LastSeen: w.lastSeen, Lost: w.lost, Live: c.liveLocked(w, now)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// client returns the live worker's client.
func (c *Coordinator) client(id string) (WorkerClient, error) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.workers[id]
	if !ok || !c.liveLocked(w, now) {
		return nil, fmt.Errorf("cluster: worker %q not live", id)
	}
	return w.client, nil
}

// rank returns the key's preference order over live workers: the
// consistent-hash ring walk, filtered to workers still within their
// heartbeat TTL.
func (c *Coordinator) rank(key string) []string {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	all := c.ring.LookupN(key, c.ring.Len())
	out := make([]string, 0, len(all))
	for _, id := range all {
		if w, ok := c.workers[id]; ok && c.liveLocked(w, now) {
			out = append(out, id)
		}
	}
	return out
}

// Route picks the worker owning the workload key: the first live
// worker on the key's ring walk. It is the whole-job routing path —
// a job that is not sharded runs entirely on the returned worker.
func (c *Coordinator) Route(key string) (string, WorkerClient, error) {
	ranked := c.rank(key)
	if len(ranked) == 0 {
		return "", nil, fmt.Errorf("cluster: no live workers for %q", key)
	}
	id := ranked[0]
	client, err := c.client(id)
	if err != nil {
		return "", nil, err
	}
	c.ctrRouted.Inc()
	return id, client, nil
}
