package cluster

import (
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// LocalWorker is the in-process transport: a WorkerClient wrapping its
// own Host directly, with injectable faults. It carries the same wire
// payloads as the HTTP transport — planes and snapshots cross it as
// encoded bytes — so deterministic tests exercise the full
// serialization path without sockets.
//
// Fault injection models the two cluster failure modes the chaos soak
// drives: Fail makes every subsequent call return ErrWorkerDown (node
// loss) until Recover; SetDelay makes every call sleep on the worker's
// clock first (a slow link), which under a simclock.Virtual blocks
// until the test advances time.
type LocalWorker struct {
	id    string
	host  *Host
	clock simclock.Clock

	mu     sync.Mutex
	down   bool
	delay  time.Duration
	tracer *obs.Tracer
}

// NewLocalWorker creates an in-process worker with an empty shard
// host. clock gates injected slow links; nil defaults to the wall
// clock.
func NewLocalWorker(id string, clock simclock.Clock) *LocalWorker {
	if clock == nil {
		clock = simclock.Real{}
	}
	return &LocalWorker{id: id, host: NewHost(), clock: clock}
}

// ID returns the worker's id.
func (w *LocalWorker) ID() string { return w.id }

// Host exposes the underlying shard host (tests inspect shard
// counts; Close releases everything).
func (w *LocalWorker) Host() *Host { return w.host }

// EnableTrace attaches an enabled tracer of the given ring capacity
// to the worker's shard host, timestamped by the worker's clock, and
// returns it. The worker then serves the TraceSource interface, so a
// Collector can pull its events like a remote daemon's.
func (w *LocalWorker) EnableTrace(capacity int) *obs.Tracer {
	tr := obs.NewTracer(capacity, w.clock)
	tr.Enable()
	w.mu.Lock()
	w.tracer = tr
	w.mu.Unlock()
	w.host.SetObs(w.id, tr)
	return tr
}

// Tracer returns the worker's tracer (nil until EnableTrace).
func (w *LocalWorker) Tracer() *obs.Tracer {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tracer
}

// FetchTrace implements TraceSource over the in-process transport:
// the worker's ring events with Seq >= since, subject to the same
// injected faults as every other call — a failed node refuses, like
// an unreachable daemon mid-pull.
func (w *LocalWorker) FetchTrace(since uint64) ([]obs.Event, uint64, uint64, error) {
	if err := w.gate(); err != nil {
		return nil, since, 0, err
	}
	w.mu.Lock()
	tr := w.tracer
	w.mu.Unlock()
	events, dropped := tr.EventsSince(since)
	return events, obs.NextCursor(events, since), dropped, nil
}

// ClockProbe implements TraceSource: the worker's current clock with
// zero round-trip (in-process), still subject to injected faults.
// Under a shared simclock.Virtual the collector's offset estimate for
// this worker is therefore exactly zero.
func (w *LocalWorker) ClockProbe() (time.Time, time.Duration, error) {
	if err := w.gate(); err != nil {
		return time.Time{}, 0, err
	}
	return w.clock.Now(), 0, nil
}

// Fail injects node loss: every call from now on returns
// ErrWorkerDown.
func (w *LocalWorker) Fail() {
	w.mu.Lock()
	w.down = true
	w.mu.Unlock()
}

// Recover clears an injected failure. The worker's shards are gone
// (its host is cleared, as a restarted daemon's would be).
func (w *LocalWorker) Recover() {
	w.mu.Lock()
	w.down = false
	w.mu.Unlock()
	w.host.Close()
}

// SetDelay injects a slow link: every call first sleeps d on the
// worker's clock. d = 0 removes the delay.
func (w *LocalWorker) SetDelay(d time.Duration) {
	w.mu.Lock()
	w.delay = d
	w.mu.Unlock()
}

// gate applies the injected faults in order: a dead node refuses
// immediately; a slow link delays, then the call proceeds.
func (w *LocalWorker) gate() error {
	w.mu.Lock()
	down, delay := w.down, w.delay
	w.mu.Unlock()
	if down {
		return ErrWorkerDown
	}
	if delay > 0 {
		w.clock.Sleep(delay)
		// Loss during the delay still fails the call, like a timeout.
		w.mu.Lock()
		down = w.down
		w.mu.Unlock()
		if down {
			return ErrWorkerDown
		}
	}
	return nil
}

// Ping implements WorkerClient.
func (w *LocalWorker) Ping() error { return w.gate() }

// CreateShard implements WorkerClient.
func (w *LocalWorker) CreateShard(req CreateShardRequest) (CreateShardResponse, error) {
	if err := w.gate(); err != nil {
		return CreateShardResponse{}, err
	}
	return w.host.Create(req)
}

// StepShard implements WorkerClient.
func (w *LocalWorker) StepShard(req StepRequest) (StepResponse, error) {
	if err := w.gate(); err != nil {
		return StepResponse{}, err
	}
	return w.host.Step(req)
}

// ReleaseShard implements WorkerClient.
func (w *LocalWorker) ReleaseShard(req ReleaseRequest) error {
	if err := w.gate(); err != nil {
		return err
	}
	return w.host.Release(req)
}
