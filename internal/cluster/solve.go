package cluster

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs"
)

// SolveSpec describes one sharded multi-zone solve.
type SolveSpec struct {
	// Job is the workload key: consistent hashing on it picks which
	// workers host the shards, so the same job lands on the same
	// workers while membership is stable.
	Job string
	// Zones and Interfaces are the global case (f3d.StackAlongJ
	// produces matched pairs).
	Zones      []grid.Zone
	Interfaces []f3d.Interface
	// Config carries the solver parameters. Dt must be set (the
	// shards never re-estimate it — a per-shard CFL estimate would
	// diverge from the single-node solve).
	Config f3d.Config
	// PulseAmp is the initial-condition amplitude (f3d.InitPulse).
	PulseAmp float64
	// Steps is the number of lockstep time steps.
	Steps int
	// CheckpointEvery snapshots all zones every so many steps (the
	// failover rollback point). 0 defaults to 1 — checkpoint every
	// step; < 0 disables checkpoints, so a failover replays from the
	// initial state.
	CheckpointEvery int
	// MaxFailovers bounds re-shards before the solve gives up
	// (default 8).
	MaxFailovers int
}

// StepStat is one step of the reassembled convergence history,
// bitwise equal to the single-node f3d.StepStats for the same case.
type StepStat struct {
	Residual float64 `json:"residual"`
	MaxDelta float64 `json:"max_delta"`
	Flops    float64 `json:"flops"`
}

// SolveResult is the outcome of a sharded solve.
type SolveResult struct {
	// Trace is the coordinator-assigned solve id stamped on every
	// shard RPC and trace event of this solve — the correlation key
	// for the fleet timeline and the cluster analyzer.
	Trace string `json:"trace,omitempty"`
	// History is the per-step convergence record.
	History []StepStat `json:"history"`
	// Workers is how many workers the plateau plan used.
	Workers int `json:"workers"`
	// Groups lists each shard's global zone range [lo, hi), in shard
	// order.
	Groups [][2]int `json:"groups"`
	// Failovers counts re-shards forced by worker loss.
	Failovers int `json:"failovers"`
}

// checkpoint is the engine's rollback state: the solve had completed
// `step` steps when the snapshots were taken.
type checkpoint struct {
	step  int
	snaps []SnapshotWire
}

// runShard is one shard of an in-flight solve.
type runShard struct {
	worker string
	client WorkerClient
	id     string
	lo, hi int
	inbox  [][]byte
}

// Solve runs the spec across the live workers: plan zone groups with
// the cluster-level allocator, create one shard per granted worker,
// then advance all shards in lockstep, exchanging boundary planes
// between steps. Worker loss triggers checkpoint-rollback failover
// onto the survivors. The returned history is bitwise the single-node
// history for the same case and config.
func (c *Coordinator) Solve(spec SolveSpec) (SolveResult, error) {
	if spec.Steps < 1 {
		return SolveResult{}, fmt.Errorf("cluster: solve needs Steps >= 1, got %d", spec.Steps)
	}
	if len(spec.Zones) == 0 {
		return SolveResult{}, fmt.Errorf("cluster: solve needs zones")
	}
	if spec.Config.Dt <= 0 {
		return SolveResult{}, fmt.Errorf("cluster: solve needs Config.Dt > 0 (shards must share the global time step)")
	}
	if spec.CheckpointEvery == 0 {
		spec.CheckpointEvery = 1
	}
	if spec.MaxFailovers == 0 {
		spec.MaxFailovers = 8
	}

	flops := float64(interiorPoints(spec.Zones)) * f3d.FlopsPerPoint()
	trace := fmt.Sprintf("%s#%d", spec.Job, c.solveSeq.Add(1))
	result := SolveResult{Trace: trace, History: make([]StepStat, spec.Steps)}
	ckpt := checkpoint{step: 0}

	shards, err := c.createShards(spec, ckpt, trace)
	if err != nil {
		return SolveResult{}, err
	}
	result.Workers = len(shards)
	for _, sh := range shards {
		result.Groups = append(result.Groups, [2]int{sh.lo, sh.hi})
	}

	s := ckpt.step
	for s < spec.Steps {
		wantCkpt := spec.CheckpointEvery > 0 && (s+1)%spec.CheckpointEvery == 0
		traced := c.cfg.Tracer.Enabled()
		start := c.cfg.Tracer.Now()
		resps := make([]StepResponse, len(shards))
		errs := make([]error, len(shards))
		rpcDur := make([]time.Duration, len(shards))
		var wg sync.WaitGroup
		for i := range shards {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				var t0 time.Time
				if traced {
					t0 = c.cfg.Tracer.Now()
				}
				resps[i], errs[i] = shards[i].client.StepShard(StepRequest{
					Job:        spec.Job,
					ID:         shards[i].id,
					Step:       s,
					Planes:     shards[i].inbox,
					Checkpoint: wantCkpt,
					Trace:      trace,
				})
				if traced {
					rpcDur[i] = c.cfg.Tracer.Now().Sub(t0)
				}
			}(i)
		}
		wg.Wait()

		if lost := workersWithErrors(shards, errs); len(lost) > 0 {
			result.Failovers++
			if result.Failovers > spec.MaxFailovers {
				return SolveResult{}, fmt.Errorf("cluster: solve %q gave up after %d failovers (last lost: %v)",
					spec.Job, result.Failovers-1, lost)
			}
			c.failover(spec, shards, lost, trace, s)
			shards, err = c.createShards(spec, ckpt, trace)
			if err != nil {
				return SolveResult{}, fmt.Errorf("cluster: re-shard after losing %v: %w", lost, err)
			}
			// The rolled-back state replays deterministically, so
			// history entries below ckpt.step stay valid as computed.
			result.Workers = len(shards)
			result.Groups = result.Groups[:0]
			for _, sh := range shards {
				result.Groups = append(result.Groups, [2]int{sh.lo, sh.hi})
			}
			if traced {
				now := c.cfg.Tracer.Now()
				for _, w := range lost {
					c.cfg.Tracer.Emit(obs.Event{Kind: obs.KindFailover, Name: w, Worker: -1,
						Node: c.cfg.Node, Trace: trace, Epoch: int64(ckpt.step),
						A: int64(ckpt.step), B: int64(len(c.Live()))})
				}
				// One span-shaped failover event per failed round: its
				// duration (the failed fan-out plus the re-shard) is the
				// failover time the cluster analyzer charges to the step
				// that now replays.
				c.cfg.Tracer.Emit(obs.Event{Kind: obs.KindFailover, Name: spec.Job, Worker: -1,
					Node: c.cfg.Node, Trace: trace, Epoch: int64(ckpt.step),
					Dur: now.Sub(start), A: int64(ckpt.step), B: int64(len(lost))})
			}
			s = ckpt.step
			continue
		}

		stat, err := foldStep(spec, resps)
		if err != nil {
			c.releaseShards(spec, shards, trace, s)
			return SolveResult{}, err
		}
		stat.Flops = flops
		result.History[s] = stat

		// Successful lockstep RPCs are proof of life.
		for _, sh := range shards {
			_ = c.Heartbeat(sh.worker)
		}

		planes := 0
		if err := routePlanes(shards, resps); err != nil {
			c.releaseShards(spec, shards, trace, s)
			return SolveResult{}, err
		}
		for i := range resps {
			planes += len(resps[i].Planes)
		}
		c.ctrSteps.Inc()
		c.ctrPlanes.Add(uint64(planes))
		if traced {
			now := c.cfg.Tracer.Now()
			for i := range shards {
				// One RPC span per worker, all on the coordinator's
				// clock: the per-step straggler is the longest of these.
				c.cfg.Tracer.Emit(obs.Event{Kind: obs.KindStepRPC, Name: spec.Job, Worker: i,
					Node: shards[i].worker, Trace: trace, Epoch: int64(s),
					Dur: rpcDur[i], A: int64(s), B: int64(len(shards))})
			}
			c.cfg.Tracer.Emit(obs.Event{Kind: obs.KindShardStep, Name: spec.Job, Worker: -1,
				Node: c.cfg.Node, Trace: trace, Epoch: int64(s),
				Dur: now.Sub(start), A: int64(s), B: int64(len(shards))})
			c.cfg.Tracer.Emit(obs.Event{Kind: obs.KindExchange, Name: spec.Job, Worker: -1,
				Node: c.cfg.Node, Trace: trace, Epoch: int64(s),
				A: int64(s), B: int64(planes)})
		}

		if wantCkpt {
			ckpt = checkpoint{step: s + 1, snaps: collectSnapshots(resps)}
		}
		s++
	}

	c.releaseShards(spec, shards, trace, spec.Steps)
	c.ctrSolves.Inc()
	return result, nil
}

// createShards plans the zone groups over the currently live workers
// and creates one shard per group, restoring the checkpoint state when
// one exists. Initial donor planes come back with creation and are
// routed into the shards' inboxes, so the first lockstep step needs no
// extra round-trip.
func (c *Coordinator) createShards(spec SolveSpec, ckpt checkpoint, trace string) ([]*runShard, error) {
	ranked := c.rank(spec.Job)
	if len(ranked) == 0 {
		return nil, fmt.Errorf("cluster: no live workers")
	}
	granted := c.alloc.Grant(len(spec.Zones), len(ranked))
	workers := ranked[:granted]
	// k zones per shard is the stair-step plateau: the lockstep wall
	// time is the slowest shard's, so only the max group size matters,
	// exactly as ceil(m/p) governs a loop's chunks.
	k := (len(spec.Zones) + granted - 1) / granted

	shards := make([]*runShard, 0, granted)
	initPlanes := make([]StepResponse, 0, granted)
	for i, w := range workers {
		lo := i * k
		hi := lo + k
		if hi > len(spec.Zones) {
			hi = len(spec.Zones)
		}
		client, err := c.client(w)
		if err != nil {
			c.releaseShards(spec, shards, trace, ckpt.step)
			return nil, err
		}
		var restore []SnapshotWire
		for _, snap := range ckpt.snaps {
			if snap.Zone >= lo && snap.Zone < hi {
				restore = append(restore, snap)
			}
		}
		resp, err := client.CreateShard(CreateShardRequest{
			Job:        spec.Job,
			Zones:      spec.Zones,
			Interfaces: spec.Interfaces,
			Lo:         lo,
			Hi:         hi,
			Config:     spec.Config,
			PulseAmp:   spec.PulseAmp,
			Restore:    restore,
			Step:       ckpt.step,
			Trace:      trace,
		})
		if err != nil {
			c.MarkLost(w)
			c.releaseShards(spec, shards, trace, ckpt.step)
			return nil, fmt.Errorf("cluster: create shard on %q: %w", w, err)
		}
		shards = append(shards, &runShard{worker: w, client: client, id: resp.ID, lo: lo, hi: hi})
		initPlanes = append(initPlanes, StepResponse{Planes: resp.Planes})
	}
	// Route the creation-time donor planes now that every shard exists:
	// they are the exchange input of the first lockstep step.
	if err := routePlanes(shards, initPlanes); err != nil {
		c.releaseShards(spec, shards, trace, ckpt.step)
		return nil, err
	}
	return shards, nil
}

// workersWithErrors returns the distinct workers whose lockstep call
// failed, in shard order.
func workersWithErrors(shards []*runShard, errs []error) []string {
	var out []string
	seen := map[string]struct{}{}
	for i, err := range errs {
		if err == nil {
			continue
		}
		w := shards[i].worker
		if _, dup := seen[w]; !dup {
			seen[w] = struct{}{}
			out = append(out, w)
		}
	}
	return out
}

// failover marks the lost workers and releases every surviving shard
// (state is rolled back to the checkpoint, so nothing on the
// survivors is worth keeping). The failover trace events are emitted
// by Solve after the re-shard completes, so the span covers the whole
// recovery.
func (c *Coordinator) failover(spec SolveSpec, shards []*runShard, lost []string, trace string, epoch int) {
	for _, w := range lost {
		c.MarkLost(w)
	}
	c.releaseShards(spec, shards, trace, epoch)
	c.ctrFailovers.Add(uint64(len(lost)))
}

// releaseShards frees the shards best-effort (lost workers will
// refuse; that is fine — their state dies with them).
func (c *Coordinator) releaseShards(spec SolveSpec, shards []*runShard, trace string, epoch int) {
	for _, sh := range shards {
		if sh == nil {
			continue
		}
		_ = sh.client.ReleaseShard(ReleaseRequest{Job: spec.Job, ID: sh.id,
			Trace: trace, Epoch: int64(epoch)})
	}
}

// foldStep reassembles the global step statistics from the shard
// responses: per-zone sum-of-squares folded in global zone order (the
// single-node summation order — grouping partial sums per shard would
// change the float result), max-delta as a max.
func foldStep(spec SolveSpec, resps []StepResponse) (StepStat, error) {
	parts := make([]*ZonePart, len(spec.Zones))
	maxDelta := 0.0
	for i := range resps {
		for j := range resps[i].Zones {
			p := &resps[i].Zones[j]
			if p.Zone < 0 || p.Zone >= len(parts) || parts[p.Zone] != nil {
				return StepStat{}, fmt.Errorf("cluster: bad or duplicate residual part for zone %d", p.Zone)
			}
			parts[p.Zone] = p
		}
		if resps[i].MaxDelta > maxDelta {
			maxDelta = resps[i].MaxDelta
		}
	}
	sumsq, n := 0.0, 0
	for zi, p := range parts {
		if p == nil {
			return StepStat{}, fmt.Errorf("cluster: no residual part for zone %d", zi)
		}
		sumsq += p.SumSq
		n += p.Points
	}
	res := 0.0
	if n > 0 {
		res = math.Sqrt(sumsq / float64(n))
	}
	return StepStat{Residual: res, MaxDelta: maxDelta}, nil
}

// routePlanes distributes every outgoing plane to the inbox of the
// shard owning its global receiver zone.
func routePlanes(shards []*runShard, resps []StepResponse) error {
	for i := range shards {
		shards[i].inbox = nil
	}
	for i := range resps {
		for _, b := range resps[i].Planes {
			zone, err := planeReceiver(b)
			if err != nil {
				return err
			}
			dest := -1
			for j, sh := range shards {
				if zone >= sh.lo && zone < sh.hi {
					dest = j
					break
				}
			}
			if dest < 0 {
				return fmt.Errorf("cluster: plane for zone %d owned by no shard", zone)
			}
			shards[dest].inbox = append(shards[dest].inbox, b)
		}
	}
	return nil
}

// collectSnapshots merges the checkpoint snapshots of all shards,
// sorted by global zone.
func collectSnapshots(resps []StepResponse) []SnapshotWire {
	var out []SnapshotWire
	for i := range resps {
		out = append(out, resps[i].Snapshots...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Zone < out[j].Zone })
	return out
}
