package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// HTTPClient is the WorkerClient a coordinator uses to drive a remote
// f3dd over its shard API (mounted by ShardServer). Planes and
// snapshots travel as base64-wrapped binary payloads inside the JSON
// bodies, so the IEEE-754 bits survive the wire exactly.
type HTTPClient struct {
	// BaseURL is the worker daemon's root, e.g. "http://host:8080".
	BaseURL string
	// Client is the underlying HTTP client; nil uses
	// http.DefaultClient.
	Client *http.Client
}

func (c *HTTPClient) httpClient() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

// post sends a JSON request body and decodes the JSON response into
// out (out == nil discards the body). Non-2xx responses become errors
// carrying the server's error text; transport-level failures map to
// ErrWorkerDown so the engine's failover treats an unreachable daemon
// like a dead one.
func (c *HTTPClient) post(path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return fmt.Errorf("cluster: encode %s request: %w", path, err)
	}
	url := strings.TrimRight(c.BaseURL, "/") + path
	resp, err := c.httpClient().Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("cluster: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("cluster: decode %s response: %w", path, err)
	}
	return nil
}

// Ping implements WorkerClient via the daemon's readiness endpoint: a
// draining daemon answers 503, which correctly reads as "do not route
// new work here".
func (c *HTTPClient) Ping() error {
	url := strings.TrimRight(c.BaseURL, "/") + "/healthz"
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: healthz: %s", resp.Status)
	}
	return nil
}

// FetchTrace implements TraceSource over the daemon's GET
// /trace?since= cursor API: the returned events, the cursor to resume
// from (the daemon's X-Trace-Next header when present, else derived
// from the batch), and how many events the daemon's ring dropped
// before this batch (X-Trace-Dropped). Transport failures map to
// ErrWorkerDown, like every other worker call.
func (c *HTTPClient) FetchTrace(since uint64) ([]obs.Event, uint64, uint64, error) {
	url := strings.TrimRight(c.BaseURL, "/") + "/trace?since=" + strconv.FormatUint(since, 10)
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return nil, since, 0, fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, since, 0, fmt.Errorf("cluster: /trace: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	events, err := obs.ReadJSONL(resp.Body)
	if err != nil {
		return nil, since, 0, fmt.Errorf("cluster: decode /trace body: %w", err)
	}
	next := obs.NextCursor(events, since)
	if h := resp.Header.Get("X-Trace-Next"); h != "" {
		if v, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			next = v
		}
	}
	var dropped uint64
	if h := resp.Header.Get("X-Trace-Dropped"); h != "" {
		if v, perr := strconv.ParseUint(h, 10, 64); perr == nil {
			dropped = v
		}
	}
	return events, next, dropped, nil
}

// ClockProbe implements TraceSource: the daemon's clock as reported
// by /healthz (now_ns), plus the locally measured round-trip. A
// draining daemon (503) still reports its clock — readiness and
// timekeeping are independent.
func (c *HTTPClient) ClockProbe() (time.Time, time.Duration, error) {
	url := strings.TrimRight(c.BaseURL, "/") + "/healthz"
	t0 := time.Now()
	resp, err := c.httpClient().Get(url)
	rtt := time.Since(t0)
	if err != nil {
		return time.Time{}, 0, fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return time.Time{}, 0, fmt.Errorf("cluster: /healthz: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var body struct {
		NowNs int64 `json:"now_ns"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body); err != nil {
		return time.Time{}, 0, fmt.Errorf("cluster: decode /healthz body: %w", err)
	}
	if body.NowNs == 0 {
		return time.Time{}, 0, fmt.Errorf("cluster: /healthz reports no clock (now_ns missing)")
	}
	return time.Unix(0, body.NowNs), rtt, nil
}

// FetchMetrics returns the daemon's raw Prometheus exposition (GET
// /metrics), for the coordinator's fleet rollup.
func (c *HTTPClient) FetchMetrics() (string, error) {
	url := strings.TrimRight(c.BaseURL, "/") + "/metrics"
	resp, err := c.httpClient().Get(url)
	if err != nil {
		return "", fmt.Errorf("%w: %v", ErrWorkerDown, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return "", fmt.Errorf("cluster: read /metrics body: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("cluster: /metrics: %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	return string(body), nil
}

// SetTrace toggles the daemon's tracer (POST /trace/enable), so a
// coordinator starting a traced solve can switch its workers' rings
// on first.
func (c *HTTPClient) SetTrace(enabled, reset bool) error {
	return c.post("/trace/enable", map[string]bool{"enabled": enabled, "reset": reset}, nil)
}

// CreateShard implements WorkerClient.
func (c *HTTPClient) CreateShard(req CreateShardRequest) (CreateShardResponse, error) {
	var resp CreateShardResponse
	err := c.post("/shards/create", req, &resp)
	return resp, err
}

// StepShard implements WorkerClient.
func (c *HTTPClient) StepShard(req StepRequest) (StepResponse, error) {
	var resp StepResponse
	err := c.post("/shards/step", req, &resp)
	return resp, err
}

// ReleaseShard implements WorkerClient.
func (c *HTTPClient) ReleaseShard(req ReleaseRequest) error {
	return c.post("/shards/release", req, nil)
}

// ShardServer exposes a Host over HTTP: the worker-daemon side of the
// shard API. Mount it under /shards/ (cmd/f3dd does).
type ShardServer struct {
	host *Host
}

// NewShardServer wraps a host.
func NewShardServer(h *Host) *ShardServer { return &ShardServer{host: h} }

// Host returns the served host.
func (s *ShardServer) Host() *Host { return s.host }

// ServeHTTP implements http.Handler.
func (s *ShardServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpJSONError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	switch r.URL.Path {
	case "/shards/create":
		var req CreateShardRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := s.host.Create(req)
		writeShardResult(w, resp, err)
	case "/shards/step":
		var req StepRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := s.host.Step(req)
		writeShardResult(w, resp, err)
	case "/shards/release":
		var req ReleaseRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeShardResult(w, struct{}{}, s.host.Release(req))
	default:
		httpJSONError(w, http.StatusNotFound, fmt.Sprintf("no such endpoint %q", r.URL.Path))
	}
}

// decodeJSON parses the request body, answering 400 on failure.
func decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		httpJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

// writeShardResult answers with the response or maps the host error to
// a status: unknown shards/endpoints are 404-shaped conflicts (409 for
// lockstep mismatches would overfit; 400 carries the message fine).
func writeShardResult(w http.ResponseWriter, resp any, err error) {
	if err != nil {
		httpJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// httpJSONError answers an error as {"error": ...}.
func httpJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
