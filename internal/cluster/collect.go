package cluster

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// TraceSource is the pull side of distributed tracing: anything a
// collector can drain events and clock readings from. Both worker
// transports implement it — LocalWorker in-process, HTTPClient over
// the daemon's GET /trace cursor API — so the coordinator assembles
// the same fleet timeline in tests and in production.
type TraceSource interface {
	// FetchTrace returns the source's events with Seq >= since, the
	// cursor to resume from, and how many events the source's ring
	// dropped before this window (also present in-band as a
	// trace_dropped marker event).
	FetchTrace(since uint64) ([]obs.Event, uint64, uint64, error)
	// ClockProbe returns the source's current clock reading and the
	// locally observed round-trip time of the probe.
	ClockProbe() (remote time.Time, rtt time.Duration, err error)
}

// CollectorConfig parameterizes a Collector.
type CollectorConfig struct {
	// Clock is the coordinator-side reference clock offsets are
	// estimated against. nil defaults to the wall clock; under a
	// shared simclock.Virtual every estimated offset is exactly zero,
	// keeping merged timelines deterministic in tests.
	Clock simclock.Clock
	// Coord, when non-nil, plays two roles: it receives the
	// collector's own collect / clock_sync events, and its ring — the
	// coordinator's solve spans — is merged into Timeline.
	Coord *obs.Tracer
	// Node tags events that arrive without a node (and the Coord
	// tracer's, if unset there). Default "coord".
	Node string
}

// WorkerTraceStat is one worker's collection state (GET /trace
// diagnostics material).
type WorkerTraceStat struct {
	Worker  string        `json:"worker"`
	Cursor  uint64        `json:"cursor"`
	Events  int           `json:"events"`
	Dropped uint64        `json:"dropped"`
	Errors  int           `json:"errors"`
	LastErr string        `json:"last_err,omitempty"`
	Synced  bool          `json:"synced"`
	Offset  time.Duration `json:"offset_ns"`
	RTT     time.Duration `json:"rtt_ns"`
}

// collectorWorker is the collector's per-worker state. fetchMu
// serializes pulls against the same source (so concurrent Pull calls
// cannot replay a cursor and duplicate events); mu guards the state
// and is never held across a network call, so Stats and Timeline stay
// responsive while a slow worker is mid-fetch.
type collectorWorker struct {
	id  string
	src TraceSource

	fetchMu sync.Mutex

	mu      sync.Mutex
	cursor  uint64
	synced  bool
	offset  time.Duration
	rtt     time.Duration
	events  []obs.Event
	dropped uint64
	errors  int
	lastErr string
}

// Collector incrementally drains every worker's trace ring into one
// node-tagged fleet timeline on the coordinator's clock. Worker
// clocks are aligned by the offset estimated from a clock probe's RTT
// midpoint: offset = remote - (local + rtt/2), subtracted from each
// event timestamp. Per-worker fetch failures (a lost node mid-pull)
// are recorded and skipped — the cursor survives, so collection
// resumes where it left off when the node revives.
type Collector struct {
	cfg CollectorConfig

	mu      sync.Mutex
	workers []*collectorWorker
	byID    map[string]*collectorWorker
}

// NewCollector creates an empty collector.
func NewCollector(cfg CollectorConfig) *Collector {
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Node == "" {
		cfg.Node = "coord"
	}
	return &Collector{cfg: cfg, byID: make(map[string]*collectorWorker)}
}

// AddWorker registers a worker's trace source under its node id.
// Adding an id again rebinds its source (the restarted-daemon case)
// but keeps the cursor and collected events.
func (c *Collector) AddWorker(id string, src TraceSource) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w, ok := c.byID[id]; ok {
		w.mu.Lock()
		w.src = src
		w.mu.Unlock()
		return
	}
	w := &collectorWorker{id: id, src: src}
	c.byID[id] = w
	c.workers = append(c.workers, w)
}

// snapshot returns the worker list under the collector lock.
func (c *Collector) snapshot() []*collectorWorker {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*collectorWorker(nil), c.workers...)
}

// SyncClocks probes every worker's clock concurrently and stores the
// RTT-midpoint offset estimates used to align subsequent pulls. It
// returns how many workers answered; failures leave the worker's
// previous estimate (or none) in place. Each successful probe emits a
// clock_sync event into the Coord tracer (A = offset ns, B = rtt ns).
func (c *Collector) SyncClocks() int {
	var wg sync.WaitGroup
	var n atomic.Int64
	for _, w := range c.snapshot() {
		wg.Add(1)
		go func(w *collectorWorker) {
			defer wg.Done()
			w.fetchMu.Lock()
			defer w.fetchMu.Unlock()
			w.mu.Lock()
			src := w.src
			w.mu.Unlock()
			local0 := c.cfg.Clock.Now()
			remote, rtt, err := src.ClockProbe()
			w.mu.Lock()
			if err != nil {
				w.errors++
				w.lastErr = err.Error()
				w.mu.Unlock()
				return
			}
			w.offset = remote.Sub(local0.Add(rtt / 2))
			w.rtt = rtt
			w.synced = true
			offset := w.offset
			w.mu.Unlock()
			n.Add(1)
			if c.cfg.Coord.Enabled() {
				c.cfg.Coord.Emit(obs.Event{Kind: obs.KindClockSync, Name: w.id, Worker: -1,
					Node: c.cfg.Node, A: int64(offset), B: int64(rtt)})
			}
		}(w)
	}
	wg.Wait()
	return int(n.Load())
}

// Pull drains every worker concurrently from its cursor, aligning and
// node-tagging the fetched events. It returns the number of events
// added across all workers. A worker whose fetch fails contributes
// nothing this round but keeps its cursor; in-band trace_dropped
// markers pass through node-tagged, so the merged timeline is
// self-describing about per-worker truncation. Each worker's pull
// emits a collect event into the Coord tracer (A = events, B =
// dropped).
func (c *Collector) Pull() int {
	var wg sync.WaitGroup
	var added atomic.Int64
	for _, w := range c.snapshot() {
		wg.Add(1)
		go func(w *collectorWorker) {
			defer wg.Done()
			added.Add(int64(c.pullWorker(w)))
		}(w)
	}
	wg.Wait()
	return int(added.Load())
}

func (c *Collector) pullWorker(w *collectorWorker) int {
	w.fetchMu.Lock()
	defer w.fetchMu.Unlock()
	w.mu.Lock()
	src, since := w.src, w.cursor
	synced, offset := w.synced, w.offset
	w.mu.Unlock()

	t0 := c.cfg.Clock.Now()
	events, next, dropped, err := src.FetchTrace(since)
	pull := c.cfg.Clock.Now().Sub(t0)
	if err != nil {
		w.mu.Lock()
		w.errors++
		w.lastErr = err.Error()
		w.mu.Unlock()
		return 0
	}
	for i := range events {
		if events[i].Node == "" {
			events[i].Node = w.id
		}
		if synced && offset != 0 {
			events[i].At = events[i].At.Add(-offset)
		}
	}
	w.mu.Lock()
	w.cursor = next
	w.dropped += dropped
	w.events = append(w.events, events...)
	w.lastErr = ""
	w.mu.Unlock()
	if c.cfg.Coord.Enabled() {
		c.cfg.Coord.Emit(obs.Event{Kind: obs.KindCollect, Name: w.id, Worker: -1,
			Node: c.cfg.Node, Dur: pull, A: int64(len(events)), B: int64(dropped)})
	}
	return len(events)
}

// Stats returns per-worker collection state, sorted by worker id.
func (c *Collector) Stats() []WorkerTraceStat {
	ws := c.snapshot()
	out := make([]WorkerTraceStat, 0, len(ws))
	for _, w := range ws {
		w.mu.Lock()
		out = append(out, WorkerTraceStat{
			Worker: w.id, Cursor: w.cursor, Events: len(w.events),
			Dropped: w.dropped, Errors: w.errors, LastErr: w.lastErr,
			Synced: w.synced, Offset: w.offset, RTT: w.rtt,
		})
		w.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Worker < out[j].Worker })
	return out
}

// Timeline returns the merged fleet timeline: every collected worker
// event plus the Coord tracer's current ring, sorted by aligned
// timestamp (ties broken by node then sequence, so the order is
// deterministic under a virtual clock where many events share an
// instant).
func (c *Collector) Timeline() []obs.Event {
	var out []obs.Event
	for _, w := range c.snapshot() {
		w.mu.Lock()
		out = append(out, w.events...)
		w.mu.Unlock()
	}
	if c.cfg.Coord != nil {
		for _, e := range c.cfg.Coord.Events() {
			if e.Node == "" {
				e.Node = c.cfg.Node
			}
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Seq < b.Seq
	})
	return out
}
