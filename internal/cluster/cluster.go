// Package cluster distributes the F3D solver stack across machines: a
// coordinator routes jobs to registered f3dd worker daemons by
// consistent hashing, and a sharded-solve engine splits one multi-zone
// case into contiguous zone groups, one group per worker, stepping all
// shards in lockstep with boundary-plane exchange between steps.
//
// The design extends the paper's loop-level argument one level up. At
// node scope, the stair-step model says a loop of m units on p
// processors runs in ceil(m/p) serial chunks; at cluster scope the
// same arithmetic governs zones per worker, so the shard planner runs
// the identical sched.Allocator policy with "processors" replaced by
// whole daemons. And just as the paper demands parallelization change
// nothing about the numerics, the distributed solve reproduces the
// single-node residual history bitwise: zones are coupled through
// whole J-planes captured at the start of each time step (f3d's zonal
// scheme), planes cross the transport as raw IEEE-754 bits, and
// per-zone residual parts are re-folded in global zone order so no
// floating-point regrouping sneaks in.
//
// The transport is an interface: LocalWorker runs shards in-process
// for deterministic tests (with injectable node loss and slow links),
// HTTPClient/ShardServer carry the same wire types over HTTP between
// cmd/f3dc and cmd/f3dd. Failover is checkpoint-rollback: the engine
// snapshots all zones every CheckpointEvery steps, and when a worker
// is lost mid-solve it re-plans over the survivors, restores the last
// checkpoint and replays — deterministically, so the history a client
// observed before the loss never changes.
package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs"
)

// ErrWorkerDown is the error transports return when the worker is
// unreachable or has been failed by fault injection. The engine treats
// any transport error as a loss; this sentinel makes tests precise.
var ErrWorkerDown = errors.New("cluster: worker down")

// WorkerClient is the coordinator's view of one worker daemon. An
// implementation carries requests over some transport: LocalWorker
// in-process, HTTPClient over HTTP to a f3dd.
type WorkerClient interface {
	// Ping checks liveness (used for registration and heartbeats).
	Ping() error
	// CreateShard builds a shard on the worker and returns its id and
	// the donor planes captured from the shard's initial state.
	CreateShard(req CreateShardRequest) (CreateShardResponse, error)
	// StepShard advances a shard one lockstep time step.
	StepShard(req StepRequest) (StepResponse, error)
	// ReleaseShard frees a shard's storage.
	ReleaseShard(req ReleaseRequest) error
}

// CreateShardRequest describes one shard of a sharded solve: the full
// global case geometry plus the contiguous zone range this worker
// owns. Shipping the whole geometry keeps workers stateless — each
// rebuilds exactly the zones it needs and knows which of its faces
// are fed by remote planes.
type CreateShardRequest struct {
	// Job is the workload key; it labels the shard in traces and
	// scopes shard ids.
	Job string `json:"job"`
	// Zones is the global zone list of the case.
	Zones []grid.Zone `json:"zones"`
	// Interfaces couples the global zones along J (global indices).
	Interfaces []f3d.Interface `json:"interfaces,omitempty"`
	// Lo, Hi bound this shard's zones: global indices [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Config carries the solver parameters. Its Case and Interfaces
	// fields are ignored — the worker derives its sub-case from
	// Zones[Lo:Hi] — but Dt must be the global time step, never
	// re-estimated per shard, or the shards diverge from the
	// single-node solve.
	Config f3d.Config `json:"config"`
	// PulseAmp is the initial-condition pulse amplitude (InitPulse).
	PulseAmp float64 `json:"pulse_amp"`
	// Restore, when non-empty, overwrites the initial state with
	// checkpointed zone snapshots (global zone indices) — the failover
	// path.
	Restore []SnapshotWire `json:"restore,omitempty"`
	// Step is the lockstep step the shard starts at (0 for a fresh
	// solve, the checkpoint step after a failover).
	Step int `json:"step"`
	// Trace is the coordinator-assigned solve id. The worker stamps
	// it (with Step as the epoch) on every span it emits for this
	// shard, so fleet timelines attribute worker-side work to the
	// originating cluster solve.
	Trace string `json:"trace,omitempty"`
}

// CreateShardResponse returns the shard id and the donor planes
// captured from the shard's initial state — the planes its neighbours
// need for the first step.
type CreateShardResponse struct {
	ID string `json:"id"`
	// Planes holds f3d.BoundaryPlane.MarshalBinary payloads addressed
	// to *global* receiver zones.
	Planes [][]byte `json:"planes,omitempty"`
}

// StepRequest advances one shard one time step.
type StepRequest struct {
	Job string `json:"job"`
	ID  string `json:"id"`
	// Step is the lockstep step index; the worker rejects it unless it
	// matches the shard's own counter (lockstep sanity).
	Step int `json:"step"`
	// Planes are the incoming boundary planes (binary payloads,
	// global receiver zones) captured by neighbours at the current
	// time level.
	Planes [][]byte `json:"planes,omitempty"`
	// Checkpoint asks for zone snapshots of the post-step state.
	Checkpoint bool `json:"checkpoint,omitempty"`
	// Trace is the solve id this lockstep step belongs to (Step is
	// its epoch); it correlates worker-side spans across the fleet.
	Trace string `json:"trace,omitempty"`
}

// ZonePart is one zone's contribution to the global step statistics.
// The coordinator re-folds SumSq in global zone order, so the
// reassembled residual is bitwise the single-node one regardless of
// how zones are grouped.
type ZonePart struct {
	// Zone is the global zone index.
	Zone   int     `json:"zone"`
	SumSq  float64 `json:"sumsq"`
	Points int     `json:"points"`
}

// StepResponse carries one shard's step results.
type StepResponse struct {
	// Zones lists per-zone residual parts in global zone order.
	Zones []ZonePart `json:"zones"`
	// MaxDelta is the shard's max-norm solution change.
	MaxDelta float64 `json:"max_delta"`
	// Planes are the donor planes captured from the post-step state —
	// the neighbours' input for the next step.
	Planes [][]byte `json:"planes,omitempty"`
	// Snapshots holds the post-step zone checkpoints when the request
	// asked for them (global zone indices).
	Snapshots []SnapshotWire `json:"snapshots,omitempty"`
}

// ReleaseRequest frees one shard.
type ReleaseRequest struct {
	Job string `json:"job"`
	ID  string `json:"id"`
	// Trace and Epoch carry the solve id and the lockstep step the
	// release happened at, completing trace propagation across every
	// shard RPC.
	Trace string `json:"trace,omitempty"`
	Epoch int64  `json:"epoch,omitempty"`
}

// SnapshotWire is the transport form of f3d.ZoneSnapshot: the zone's
// conserved field as packed IEEE-754 bits, so checkpoints survive the
// wire bit-exactly just like boundary planes.
type SnapshotWire struct {
	Zone int    `json:"zone"`
	Data []byte `json:"data"`
}

// packFloats encodes values as big-endian IEEE-754 bits.
func packFloats(vs []float64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		putFloat(out[8*i:], v)
	}
	return out
}

// unpackFloats decodes packFloats output.
func unpackFloats(b []byte) ([]float64, error) {
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("cluster: packed floats of %d bytes", len(b))
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = getFloat(b[8*i:])
	}
	return out, nil
}

// wireSnapshot converts a zone snapshot to its wire form.
func wireSnapshot(s f3d.ZoneSnapshot) SnapshotWire {
	return SnapshotWire{Zone: s.Zone, Data: packFloats(s.Data)}
}

// snapshot converts back from the wire form.
func (w SnapshotWire) snapshot() (f3d.ZoneSnapshot, error) {
	data, err := unpackFloats(w.Data)
	if err != nil {
		return f3d.ZoneSnapshot{}, err
	}
	return f3d.ZoneSnapshot{Zone: w.Zone, Data: data}, nil
}

// captureSpec is one donor plane a shard must capture every step: the
// local zone and face it reads, and the global zone the plane is
// addressed to.
type captureSpec struct {
	local      int
	face       f3d.Face
	recvGlobal int
}

// shard is one hosted piece of a sharded solve.
type shard struct {
	job      string
	lo, hi   int
	solver   *f3d.CacheSolver
	captures []captureSpec
	inbox    []f3d.BoundaryPlane // local-addressed, set before each Step
	step     int
}

// Host runs shards on a worker. It is the worker-side half of every
// transport: LocalWorker wraps one directly, ShardServer exposes one
// over HTTP inside f3dd.
type Host struct {
	mu     sync.Mutex
	next   int
	shards map[string]*shard
	node   string
	tracer *obs.Tracer
}

// NewHost creates an empty shard host.
func NewHost() *Host {
	return &Host{shards: make(map[string]*shard)}
}

// SetObs attaches the worker-side tracer and the node name stamped on
// every span the host emits (shard-step compute, boundary exchange).
// A nil or disabled tracer keeps stepping zero-cost: the host then
// pays one atomic load per Step and reads no timestamps.
func (h *Host) SetObs(node string, tr *obs.Tracer) {
	h.mu.Lock()
	h.node = node
	h.tracer = tr
	h.mu.Unlock()
}

// ShardCount returns the number of live shards (exported to metrics
// and the daemon's healthz).
func (h *Host) ShardCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.shards)
}

// Close releases every shard.
func (h *Host) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id, sh := range h.shards {
		sh.solver.Close()
		delete(h.shards, id)
	}
}

// Create builds a shard from the request: the sub-case Zones[Lo:Hi)
// with intra-shard interfaces kept local and cross-shard couplings
// turned into capture specs, the solver initialized exactly as the
// single-node solve (shared Dt, same pulse), optionally overwritten
// from checkpoint snapshots.
func (h *Host) Create(req CreateShardRequest) (CreateShardResponse, error) {
	if req.Lo < 0 || req.Hi > len(req.Zones) || req.Lo >= req.Hi {
		return CreateShardResponse{}, fmt.Errorf("cluster: shard range [%d, %d) of %d zones", req.Lo, req.Hi, len(req.Zones))
	}
	sub := grid.Case{
		Name:  fmt.Sprintf("%s-shard-%d-%d", req.Job, req.Lo, req.Hi),
		Zones: append([]grid.Zone(nil), req.Zones[req.Lo:req.Hi]...),
	}
	var local []f3d.Interface
	var caps []captureSpec
	for _, f := range req.Interfaces {
		lin := f.Left >= req.Lo && f.Left < req.Hi
		rin := f.Right >= req.Lo && f.Right < req.Hi
		switch {
		case lin && rin:
			local = append(local, f3d.Interface{Left: f.Left - req.Lo, Right: f.Right - req.Lo})
		case lin:
			caps = append(caps, captureSpec{local: f.Left - req.Lo, face: f3d.FaceJMax, recvGlobal: f.Right})
		case rin:
			caps = append(caps, captureSpec{local: f.Right - req.Lo, face: f3d.FaceJMin, recvGlobal: f.Left})
		}
	}
	cfg := req.Config
	cfg.Case = sub
	cfg.Interfaces = local
	sh := &shard{job: req.Job, lo: req.Lo, hi: req.Hi, captures: caps, step: req.Step}
	solver, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{
		BoundaryHook: func(zone int) { sh.applyInbox(zone) },
	})
	if err != nil {
		return CreateShardResponse{}, fmt.Errorf("cluster: shard solver: %w", err)
	}
	sh.solver = solver
	f3d.InitPulse(solver, req.PulseAmp)
	for _, w := range req.Restore {
		snap, err := w.snapshot()
		if err != nil {
			solver.Close()
			return CreateShardResponse{}, err
		}
		snap.Zone -= req.Lo
		if err := snap.Restore(solver); err != nil {
			solver.Close()
			return CreateShardResponse{}, fmt.Errorf("cluster: restore: %w", err)
		}
	}
	planes, err := sh.capturePlanes()
	if err != nil {
		solver.Close()
		return CreateShardResponse{}, err
	}
	h.mu.Lock()
	h.next++
	id := fmt.Sprintf("%s-%d", req.Job, h.next)
	h.shards[id] = sh
	h.mu.Unlock()
	return CreateShardResponse{ID: id, Planes: planes}, nil
}

// applyInbox is the shard's BoundaryHook body: write every inbox plane
// addressed to the given local zone onto its face. It runs inside the
// solver's boundary phase, after the zone's boundary conditions and
// local interface planes — the exact point applyInterfacesTo uses, so
// remote coupling is indistinguishable from local coupling.
func (sh *shard) applyInbox(zone int) {
	for i := range sh.inbox {
		if sh.inbox[i].Zone != zone {
			continue
		}
		if err := sh.inbox[i].Apply(sh.solver); err != nil {
			// The host validated dimensions at decode; a failure here
			// is a programming error, not an operational condition.
			panic(fmt.Sprintf("cluster: apply plane: %v", err))
		}
	}
}

// capturePlanes snapshots every donor plane of the shard at the
// current time level, addressed to its global receiver zone.
func (sh *shard) capturePlanes() ([][]byte, error) {
	if len(sh.captures) == 0 {
		return nil, nil
	}
	out := make([][]byte, 0, len(sh.captures))
	for _, c := range sh.captures {
		p, err := f3d.CapturePlane(sh.solver, c.local, c.face)
		if err != nil {
			return nil, fmt.Errorf("cluster: capture: %w", err)
		}
		p = p.RetargetTo(c.recvGlobal)
		b, err := p.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("cluster: encode plane: %w", err)
		}
		out = append(out, b)
	}
	return out, nil
}

// Step advances one shard one lockstep time step: decode and stage the
// incoming planes, step the solver (the BoundaryHook applies the
// planes at the zonal-coupling point), report per-zone residual parts
// and the donor planes for the next step.
//
// When a tracer is attached and enabled (SetObs), the handler emits
// two spans stamped with the request's solve id and step epoch: a
// KindShardStep span covering the solver step (compute) and a
// KindExchange span covering everything else in the handler — plane
// decode, donor-plane capture and checkpoint snapshots — so the two
// durations sum to the worker's whole handling time.
func (h *Host) Step(req StepRequest) (StepResponse, error) {
	h.mu.Lock()
	sh, ok := h.shards[req.ID]
	node, tr := h.node, h.tracer
	h.mu.Unlock()
	if !ok {
		return StepResponse{}, fmt.Errorf("cluster: no shard %q", req.ID)
	}
	traced := tr.Enabled()
	var t0, tDecoded, tStepped time.Time
	if traced {
		t0 = tr.Now()
	}
	if req.Step != sh.step {
		return StepResponse{}, fmt.Errorf("cluster: shard %q at step %d, request for step %d", req.ID, sh.step, req.Step)
	}
	inbox := make([]f3d.BoundaryPlane, 0, len(req.Planes))
	for _, b := range req.Planes {
		var p f3d.BoundaryPlane
		if err := p.UnmarshalBinary(b); err != nil {
			return StepResponse{}, fmt.Errorf("cluster: decode plane: %w", err)
		}
		if p.Zone < sh.lo || p.Zone >= sh.hi {
			return StepResponse{}, fmt.Errorf("cluster: plane for zone %d outside shard [%d, %d)", p.Zone, sh.lo, sh.hi)
		}
		p.Zone -= sh.lo
		z := sh.solver.Zones()[p.Zone].Zone
		if z.KMax != p.KMax || z.LMax != p.LMax {
			return StepResponse{}, fmt.Errorf("cluster: plane %dx%d for zone %q face %dx%d",
				p.KMax, p.LMax, z.Name, z.KMax, z.LMax)
		}
		inbox = append(inbox, p)
	}
	sh.inbox = inbox
	if traced {
		tDecoded = tr.Now()
	}
	stats := sh.solver.Step()
	if traced {
		tStepped = tr.Now()
	}
	sh.step++
	zres := sh.solver.ZoneResiduals()
	resp := StepResponse{MaxDelta: stats.MaxDelta, Zones: make([]ZonePart, len(zres))}
	for i, zr := range zres {
		resp.Zones[i] = ZonePart{Zone: sh.lo + i, SumSq: zr.SumSq, Points: zr.Points}
	}
	planes, err := sh.capturePlanes()
	if err != nil {
		return StepResponse{}, err
	}
	resp.Planes = planes
	if req.Checkpoint {
		resp.Snapshots = make([]SnapshotWire, 0, sh.hi-sh.lo)
		for zi := 0; zi < sh.hi-sh.lo; zi++ {
			snap, err := f3d.SnapshotZone(sh.solver, zi)
			if err != nil {
				return StepResponse{}, err
			}
			snap.Zone = sh.lo + zi
			resp.Snapshots = append(resp.Snapshots, wireSnapshot(snap))
		}
	}
	if traced {
		tEnd := tr.Now()
		tr.Emit(obs.Event{Kind: obs.KindShardStep, Name: req.Job, Worker: -1,
			Node: node, Trace: req.Trace, Epoch: int64(req.Step), At: tStepped,
			Dur: tStepped.Sub(tDecoded), A: int64(req.Step), B: int64(sh.hi - sh.lo)})
		tr.Emit(obs.Event{Kind: obs.KindExchange, Name: req.Job, Worker: -1,
			Node: node, Trace: req.Trace, Epoch: int64(req.Step), At: tEnd,
			Dur: tDecoded.Sub(t0) + tEnd.Sub(tStepped),
			A:   int64(req.Step), B: int64(len(req.Planes) + len(resp.Planes))})
	}
	return resp, nil
}

// Release frees one shard (unknown ids are an error, so lockstep
// bookkeeping bugs surface).
func (h *Host) Release(req ReleaseRequest) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	sh, ok := h.shards[req.ID]
	if !ok {
		return fmt.Errorf("cluster: no shard %q", req.ID)
	}
	sh.solver.Close()
	delete(h.shards, req.ID)
	return nil
}

// planeReceiver peeks the global receiver zone out of an encoded
// plane without decoding the payload — the routing key of the
// exchange round.
func planeReceiver(b []byte) (int, error) {
	if len(b) < 8 {
		return 0, fmt.Errorf("cluster: plane payload of %d bytes", len(b))
	}
	return int(getUint32(b[4:])), nil
}

// interiorPoints sums the implicit-update interior of the zones, the
// flop-count basis (boundary points are explicit, as in f3d).
func interiorPoints(zones []grid.Zone) int {
	total := 0
	for i := range zones {
		z := &zones[i]
		total += (z.JMax - 2) * (z.KMax - 2) * (z.LMax - 2)
	}
	return total
}

func putFloat(b []byte, v float64) { binary.BigEndian.PutUint64(b, math.Float64bits(v)) }

func getFloat(b []byte) float64 { return math.Float64frombits(binary.BigEndian.Uint64(b)) }

func getUint32(b []byte) uint32 { return binary.BigEndian.Uint32(b) }
