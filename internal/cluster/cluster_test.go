package cluster

import (
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/euler"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// testCase builds the 3-zone case the cluster tests shard: a 20×6×5
// box stacked into three zones along J, with the matching solver
// config (shared Dt) and pulse amplitude.
func testCase() ([]grid.Zone, []f3d.Interface, f3d.Config, float64) {
	c, ifaces := f3d.StackAlongJ("c3", 20, 6, 5, []int{6, 12})
	cfg := f3d.DefaultConfig(c)
	return c.Zones, ifaces, cfg, 0.02
}

// referenceHistory runs the single-node coupled solve and returns the
// per-step stats plus the final conserved fields per zone.
func referenceHistory(t *testing.T, steps int) ([]StepStat, [][]float64) {
	t.Helper()
	zones, ifaces, cfg, amp := testCase()
	cfg.Case = grid.Case{Name: "ref", Zones: zones}
	cfg.Interfaces = ifaces
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
	if err != nil {
		t.Fatalf("reference solver: %v", err)
	}
	defer s.Close()
	f3d.InitPulse(s, amp)
	hist := make([]StepStat, steps)
	for i := 0; i < steps; i++ {
		st := s.Step()
		hist[i] = StepStat{Residual: st.Residual, MaxDelta: st.MaxDelta, Flops: st.Flops}
	}
	finals := make([][]float64, len(zones))
	for zi, zs := range s.Zones() {
		finals[zi] = append([]float64(nil), zs.Q.Data...)
	}
	return hist, finals
}

// newTestCluster registers n in-process workers on a coordinator.
func newTestCluster(t *testing.T, n int, clock simclock.Clock) (*Coordinator, []*LocalWorker) {
	t.Helper()
	c := New(Config{Clock: clock})
	workers := make([]*LocalWorker, n)
	for i := range workers {
		id := string(rune('a'+i)) + "-worker"
		workers[i] = NewLocalWorker(id, clock)
		if err := c.Register(id, workers[i]); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	return c, workers
}

func assertHistoryBitwise(t *testing.T, got, want []StepStat) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("history length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i].Residual) != math.Float64bits(want[i].Residual) {
			t.Errorf("step %d residual %v, want %v", i, got[i].Residual, want[i].Residual)
		}
		if math.Float64bits(got[i].MaxDelta) != math.Float64bits(want[i].MaxDelta) {
			t.Errorf("step %d max-delta %v, want %v", i, got[i].MaxDelta, want[i].MaxDelta)
		}
		if got[i].Flops != want[i].Flops {
			t.Errorf("step %d flops %v, want %v", i, got[i].Flops, want[i].Flops)
		}
	}
}

// TestShardedSolveMatchesSingleNode is the tentpole obligation: the
// same 3-zone case sharded over 2 and 3 workers must reproduce the
// single-node residual history bitwise.
func TestShardedSolveMatchesSingleNode(t *testing.T) {
	const steps = 6
	want, _ := referenceHistory(t, steps)
	for _, nw := range []int{1, 2, 3} {
		c, workers := newTestCluster(t, nw, nil)
		zones, ifaces, cfg, amp := testCase()
		res, err := c.Solve(SolveSpec{
			Job: "conf", Zones: zones, Interfaces: ifaces,
			Config: cfg, PulseAmp: amp, Steps: steps,
		})
		if err != nil {
			t.Fatalf("%d workers: solve: %v", nw, err)
		}
		if res.Workers != nw {
			t.Errorf("%d workers: plan used %d", nw, res.Workers)
		}
		assertHistoryBitwise(t, res.History, want)
		for _, w := range workers {
			if n := w.Host().ShardCount(); n != 0 {
				t.Errorf("%d workers: %s still holds %d shards", nw, w.ID(), n)
			}
		}
	}
}

// failAfter wraps a client and injects ErrWorkerDown starting with the
// n-th StepShard call — a worker lost mid-solve, deterministically.
type failAfter struct {
	WorkerClient
	calls, n int
}

func (f *failAfter) StepShard(req StepRequest) (StepResponse, error) {
	f.calls++
	if f.calls > f.n {
		return StepResponse{}, ErrWorkerDown
	}
	return f.WorkerClient.StepShard(req)
}

// TestFailoverReproducesHistory loses a worker mid-solve: the engine
// must re-shard onto the survivors, roll back to the checkpoint and
// still deliver the single-node history bitwise.
func TestFailoverReproducesHistory(t *testing.T) {
	const steps = 6
	want, _ := referenceHistory(t, steps)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	tracer := obs.NewTracer(256, clock)
	tracer.Enable()
	c := New(Config{Clock: clock, Tracer: tracer})
	zones, ifaces, cfg, amp := testCase()

	good := make([]*LocalWorker, 2)
	for i, id := range []string{"alpha", "beta"} {
		good[i] = NewLocalWorker(id, clock)
		if err := c.Register(id, good[i]); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	flaky := &failAfter{WorkerClient: NewLocalWorker("gamma", clock), n: 3}
	if err := c.Register("gamma", flaky); err != nil {
		t.Fatalf("register: %v", err)
	}

	res, err := c.Solve(SolveSpec{
		Job: "failover", Zones: zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: amp, Steps: steps,
	})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if flaky.calls <= flaky.n {
		t.Fatalf("injected worker was never used (%d calls); loss path untested", flaky.calls)
	}
	if res.Failovers < 1 {
		t.Fatalf("no failover recorded")
	}
	assertHistoryBitwise(t, res.History, want)
	if len(c.Live()) != 2 {
		t.Errorf("live workers %v, want the two survivors", c.Live())
	}
	if got := c.Metrics(); got != nil {
		// The failover must be visible in metrics and the trace.
		found := false
		for _, e := range tracer.Events() {
			if e.Kind == obs.KindFailover && e.Name == "gamma" {
				found = true
			}
		}
		if !found {
			t.Error("no failover trace event for the lost worker")
		}
	}
}

// TestFailoverWithSparseCheckpoints disables per-step checkpoints so
// the rollback replays several steps, and also exercises the
// no-checkpoint-yet path (replay from the initial state).
func TestFailoverWithSparseCheckpoints(t *testing.T) {
	const steps = 6
	want, _ := referenceHistory(t, steps)
	for _, every := range []int{-1, 4} {
		c, _ := newTestCluster(t, 1, nil)
		flaky := &failAfter{WorkerClient: NewLocalWorker("zeta", nil), n: 4}
		if err := c.Register("zeta", flaky); err != nil {
			t.Fatalf("register: %v", err)
		}
		zones, ifaces, cfg, amp := testCase()
		res, err := c.Solve(SolveSpec{
			Job: "sparse", Zones: zones, Interfaces: ifaces,
			Config: cfg, PulseAmp: amp, Steps: steps, CheckpointEvery: every,
		})
		if err != nil {
			t.Fatalf("every=%d: solve: %v", every, err)
		}
		if flaky.calls <= flaky.n {
			// The ring may not have placed a shard on the flaky worker
			// for this job; the solve still must be correct.
			t.Logf("every=%d: flaky worker unused", every)
		}
		assertHistoryBitwise(t, res.History, want)
	}
}

// TestSolveFailsWithNoSurvivors: losing every worker is an error, not
// a hang.
func TestSolveFailsWithNoSurvivors(t *testing.T) {
	c := New(Config{})
	flaky := &failAfter{WorkerClient: NewLocalWorker("solo", nil), n: 2}
	if err := c.Register("solo", flaky); err != nil {
		t.Fatalf("register: %v", err)
	}
	zones, ifaces, cfg, amp := testCase()
	_, err := c.Solve(SolveSpec{
		Job: "doomed", Zones: zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: amp, Steps: 6,
	})
	if err == nil {
		t.Fatal("solve with no survivors succeeded")
	}
}

// TestSolveSpecValidation covers the rejected specs.
func TestSolveSpecValidation(t *testing.T) {
	c, _ := newTestCluster(t, 1, nil)
	zones, ifaces, cfg, amp := testCase()
	if _, err := c.Solve(SolveSpec{Job: "x", Zones: zones, Interfaces: ifaces, Config: cfg, PulseAmp: amp}); err == nil {
		t.Error("Steps=0 accepted")
	}
	if _, err := c.Solve(SolveSpec{Job: "x", Config: cfg, Steps: 1}); err == nil {
		t.Error("no zones accepted")
	}
	bad := cfg
	bad.Dt = 0
	if _, err := c.Solve(SolveSpec{Job: "x", Zones: zones, Interfaces: ifaces, Config: bad, Steps: 1}); err == nil ||
		!strings.Contains(err.Error(), "Dt") {
		t.Errorf("Dt=0: err %v", err)
	}
}

// TestHeartbeatTTL: workers expire off the live set when their
// heartbeats stop, and a late heartbeat revives a lost worker.
func TestHeartbeatTTL(t *testing.T) {
	clock := simclock.NewVirtual(time.Unix(0, 0))
	c := New(Config{Clock: clock, HeartbeatTTL: 10 * time.Second})
	w := NewLocalWorker("w1", clock)
	if err := c.Register("w1", w); err != nil {
		t.Fatalf("register: %v", err)
	}
	if live := c.Live(); len(live) != 1 {
		t.Fatalf("fresh worker not live: %v", live)
	}
	clock.Advance(11 * time.Second)
	if live := c.Live(); len(live) != 0 {
		t.Fatalf("expired worker still live: %v", live)
	}
	if err := c.Heartbeat("w1"); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}
	if live := c.Live(); len(live) != 1 {
		t.Fatalf("heartbeat did not restore liveness: %v", live)
	}
	c.MarkLost("w1")
	if live := c.Live(); len(live) != 0 {
		t.Fatalf("lost worker still live: %v", live)
	}
	if err := c.Heartbeat("w1"); err != nil {
		t.Fatalf("revival heartbeat: %v", err)
	}
	ws := c.Workers()
	if len(ws) != 1 || !ws[0].Live || ws[0].Lost {
		t.Fatalf("revived worker state: %+v", ws)
	}
	if err := c.Heartbeat("ghost"); err == nil {
		t.Error("heartbeat from unregistered worker accepted")
	}
}

// TestRouteConsistency: routing is deterministic, only targets live
// workers, and keys stay put when an unrelated worker leaves.
func TestRouteConsistency(t *testing.T) {
	c, _ := newTestCluster(t, 4, nil)
	keys := []string{"job-a", "job-b", "job-c", "job-d", "job-e", "job-f"}
	first := map[string]string{}
	for _, k := range keys {
		id, client, err := c.Route(k)
		if err != nil || client == nil {
			t.Fatalf("route %s: %v", k, err)
		}
		first[k] = id
	}
	for _, k := range keys {
		id, _, err := c.Route(k)
		if err != nil || id != first[k] {
			t.Fatalf("route %s moved: %s -> %s (%v)", k, first[k], id, err)
		}
	}
	// Remove one worker: only keys it owned may move.
	var gone string
	for _, id := range first {
		gone = id
		break
	}
	c.Deregister(gone)
	for _, k := range keys {
		id, _, err := c.Route(k)
		if err != nil {
			t.Fatalf("route %s after deregister: %v", k, err)
		}
		if first[k] != gone && id != first[k] {
			t.Errorf("key %s moved %s -> %s though its worker survived", k, first[k], id)
		}
		if first[k] == gone && id == gone {
			t.Errorf("key %s still routed to removed worker", k)
		}
	}
	// No workers at all is an error.
	empty := New(Config{})
	if _, _, err := empty.Route("k"); err == nil {
		t.Error("route with no workers succeeded")
	}
}

// TestRingBasics covers the ring directly: distinct LookupN results,
// add/remove idempotence, empty-ring lookups.
func TestRingBasics(t *testing.T) {
	r := NewRing(32)
	if _, ok := r.Lookup("k"); ok {
		t.Error("lookup on empty ring succeeded")
	}
	r.Add("n1")
	r.Add("n2")
	r.Add("n3")
	r.Add("n2") // idempotent
	if r.Len() != 3 {
		t.Fatalf("ring has %d nodes, want 3", r.Len())
	}
	ns := r.LookupN("key", 3)
	if len(ns) != 3 {
		t.Fatalf("LookupN returned %v", ns)
	}
	seen := map[string]bool{}
	for _, n := range ns {
		if seen[n] {
			t.Fatalf("LookupN returned duplicate %q in %v", n, ns)
		}
		seen[n] = true
	}
	if got := r.LookupN("key", 10); len(got) != 3 {
		t.Errorf("LookupN over-ask returned %v", got)
	}
	r.Remove("n2")
	r.Remove("n2") // idempotent
	if r.Len() != 2 {
		t.Fatalf("ring has %d nodes after remove, want 2", r.Len())
	}
	for _, n := range r.LookupN("key", 2) {
		if n == "n2" {
			t.Error("removed node still returned")
		}
	}
	if got := r.Nodes(); len(got) != 2 || got[0] != "n1" || got[1] != "n3" {
		t.Errorf("Nodes() = %v", got)
	}
}

// TestHTTPTransportEndToEnd runs a 2-worker sharded solve over real
// HTTP (httptest servers around ShardServer) and demands the same
// bitwise history — the serialization path has no excuse either.
func TestHTTPTransportEndToEnd(t *testing.T) {
	const steps = 4
	want, _ := referenceHistory(t, steps)
	c := New(Config{})
	hosts := make([]*Host, 2)
	for i, id := range []string{"http-a", "http-b"} {
		hosts[i] = NewHost()
		srv := httptest.NewServer(NewShardServer(hosts[i]))
		t.Cleanup(srv.Close)
		if err := c.Register(id, &HTTPClient{BaseURL: srv.URL, Client: srv.Client()}); err != nil {
			t.Fatalf("register: %v", err)
		}
	}
	zones, ifaces, cfg, amp := testCase()
	res, err := c.Solve(SolveSpec{
		Job: "http", Zones: zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: amp, Steps: steps,
	})
	if err != nil {
		t.Fatalf("solve over HTTP: %v", err)
	}
	if res.Workers != 2 {
		t.Errorf("plan used %d workers, want 2", res.Workers)
	}
	assertHistoryBitwise(t, res.History, want)
	for i, h := range hosts {
		if n := h.ShardCount(); n != 0 {
			t.Errorf("host %d still holds %d shards", i, n)
		}
	}
	// An unreachable daemon maps to ErrWorkerDown.
	dead := &HTTPClient{BaseURL: "http://127.0.0.1:1"}
	if err := dead.Ping(); !errors.Is(err, ErrWorkerDown) {
		t.Errorf("dead daemon ping: %v", err)
	}
}

// TestHostErrors covers the host's validation paths.
func TestHostErrors(t *testing.T) {
	zones, ifaces, cfg, amp := testCase()
	h := NewHost()
	defer h.Close()

	if _, err := h.Create(CreateShardRequest{Job: "j", Zones: zones, Interfaces: ifaces, Lo: 2, Hi: 1, Config: cfg}); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := h.Create(CreateShardRequest{Job: "j", Zones: zones, Interfaces: ifaces, Lo: 0, Hi: 9, Config: cfg}); err == nil {
		t.Error("out-of-range shard accepted")
	}
	bad := cfg
	bad.Dt = -1
	if _, err := h.Create(CreateShardRequest{Job: "j", Zones: zones, Interfaces: ifaces, Lo: 0, Hi: 1, Config: bad}); err == nil {
		t.Error("invalid config accepted")
	}

	resp, err := h.Create(CreateShardRequest{Job: "j", Zones: zones, Interfaces: ifaces, Lo: 0, Hi: 2, Config: cfg, PulseAmp: amp})
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if h.ShardCount() != 1 {
		t.Fatalf("shard count %d", h.ShardCount())
	}
	if len(resp.Planes) != 1 {
		t.Fatalf("initial planes %d, want 1 (one cross-shard coupling)", len(resp.Planes))
	}
	if _, err := h.Step(StepRequest{ID: "nope", Step: 0}); err == nil {
		t.Error("step of unknown shard accepted")
	}
	if _, err := h.Step(StepRequest{ID: resp.ID, Step: 3}); err == nil {
		t.Error("out-of-lockstep step accepted")
	}
	if _, err := h.Step(StepRequest{ID: resp.ID, Step: 0, Planes: [][]byte{{1, 2, 3}}}); err == nil {
		t.Error("garbage plane accepted")
	}
	// A plane addressed outside the shard's range must be rejected.
	p := f3d.BoundaryPlane{Zone: 2, Face: f3d.FaceJMin, KMax: zones[2].KMax, LMax: zones[2].LMax,
		Data: make([]float64, zones[2].KMax*zones[2].LMax*euler.NC)}
	pb, err := p.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if _, err := h.Step(StepRequest{ID: resp.ID, Step: 0, Planes: [][]byte{pb}}); err == nil ||
		!strings.Contains(err.Error(), "outside shard") {
		t.Errorf("foreign plane: err %v", err)
	}
	if err := h.Release(ReleaseRequest{ID: "nope"}); err == nil {
		t.Error("release of unknown shard accepted")
	}
	if err := h.Release(ReleaseRequest{ID: resp.ID}); err != nil {
		t.Errorf("release: %v", err)
	}
}

// TestSnapshotWireRoundTrip: packed checkpoints are bit-exact.
func TestSnapshotWireRoundTrip(t *testing.T) {
	orig := f3d.ZoneSnapshot{Zone: 2, Data: []float64{1.0 / 3, math.Nextafter(1, 2), -0.0, 42}}
	w := wireSnapshot(orig)
	back, err := w.snapshot()
	if err != nil {
		t.Fatalf("unpack: %v", err)
	}
	if back.Zone != orig.Zone || len(back.Data) != len(orig.Data) {
		t.Fatalf("shape changed: %+v", back)
	}
	for i := range orig.Data {
		if math.Float64bits(back.Data[i]) != math.Float64bits(orig.Data[i]) {
			t.Fatalf("Data[%d] not bitwise", i)
		}
	}
	if _, err := (SnapshotWire{Data: []byte{1, 2, 3}}).snapshot(); err == nil {
		t.Error("ragged packed data accepted")
	}
}

// TestSlowLinkDelaysButCompletes: a slow link stretches the lockstep
// wall time without changing the result (virtual clock, driver
// advancing).
func TestSlowLinkDelaysButCompletes(t *testing.T) {
	const steps = 3
	want, _ := referenceHistory(t, steps)
	clock := simclock.NewVirtual(time.Unix(0, 0))
	c, workers := newTestCluster(t, 2, clock)
	workers[1].SetDelay(200 * time.Millisecond)

	zones, ifaces, cfg, amp := testCase()
	type out struct {
		res SolveResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Solve(SolveSpec{
			Job: "slow", Zones: zones, Interfaces: ifaces,
			Config: cfg, PulseAmp: amp, Steps: steps,
		})
		done <- out{res, err}
	}()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatalf("solve: %v", o.err)
			}
			assertHistoryBitwise(t, o.res.History, want)
			return
		case <-deadline:
			t.Fatal("slow-link solve did not finish")
		default:
			if !clock.AdvanceToNext() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
}
