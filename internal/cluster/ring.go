package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over worker ids. Each node owns
// `replicas` virtual points on a 64-bit circle; a key is routed to the
// first point at or clockwise of its hash. Adding or removing one node
// only moves the keys adjacent to its points — the property that makes
// job placement stable as workers join and leave. The ring is not
// safe for concurrent use; the Coordinator serializes access under its
// own lock.
type Ring struct {
	replicas int
	nodes    map[string]struct{}
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates an empty ring with the given virtual-node count per
// node (values < 1 are clamped to 1).
func NewRing(replicas int) *Ring {
	if replicas < 1 {
		replicas = 1
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}
}

// hashKey maps a string onto the circle (FNV-1a, stable across
// processes and platforms, so a coordinator restart re-derives the
// same placement).
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Add inserts a node's virtual points. Adding a present node is a
// no-op.
func (r *Ring) Add(node string) {
	if _, ok := r.nodes[node]; ok {
		return
	}
	r.nodes[node] = struct{}{}
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Remove deletes a node's virtual points. Removing an absent node is a
// no-op.
func (r *Ring) Remove(node string) {
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the nodes in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning the key, or false on an empty ring.
func (r *Ring) Lookup(key string) (string, bool) {
	ns := r.LookupN(key, 1)
	if len(ns) == 0 {
		return "", false
	}
	return ns[0], true
}

// LookupN walks clockwise from the key's hash and returns the first n
// distinct nodes encountered — the key's preference order. Fewer than
// n nodes on the ring returns all of them.
func (r *Ring) LookupN(key string, n int) []string {
	if n < 1 || len(r.points) == 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
