package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/simclock"
)

// solveAdvancing runs a solve in a goroutine while advancing the
// virtual clock whenever the workload is stuck on injected latency.
func solveAdvancing(t *testing.T, c *Coordinator, clk *simclock.Virtual, spec SolveSpec) SolveResult {
	t.Helper()
	type out struct {
		res SolveResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Solve(spec)
		done <- out{res, err}
	}()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case o := <-done:
			if o.err != nil {
				t.Fatalf("solve: %v", o.err)
			}
			return o.res
		case <-deadline:
			t.Fatal("solve did not terminate")
		default:
			if !clk.AdvanceToNext() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
}

// newTracedCluster builds a virtual-clock cluster with tracing on
// everywhere: n traced local workers plus a traced coordinator.
func newTracedCluster(t *testing.T, n, ringCap int) (*Coordinator, []*LocalWorker, *simclock.Virtual) {
	t.Helper()
	clk := simclock.NewVirtual(time.Unix(0, 0))
	tracer := obs.NewTracer(4096, clk)
	tracer.Enable()
	c := New(Config{Clock: clk, Tracer: tracer, HeartbeatTTL: time.Hour})
	workers := make([]*LocalWorker, n)
	for i := range workers {
		id := fmt.Sprintf("w%02d", i+1)
		workers[i] = NewLocalWorker(id, clk)
		workers[i].EnableTrace(ringCap)
		if err := c.Register(id, workers[i]); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	return c, workers, clk
}

// newTestCollector wires a collector to the coordinator and its
// workers, sharing the coordinator's clock and tracer.
func newTestCollector(c *Coordinator, workers []*LocalWorker) *Collector {
	col := NewCollector(CollectorConfig{Clock: c.Clock(), Coord: c.Tracer(), Node: c.Node()})
	for _, w := range workers {
		col.AddWorker(w.ID(), w)
	}
	return col
}

// TestCollectorEndToEndClosure is the tentpole obligation: a traced
// 3-worker solve on a virtual clock, with per-worker link delays,
// must merge into a timeline whose cluster attribution closes
// exactly and names a straggler for every step. (Which worker is
// named depends on how far the advance-if-stuck driver ran the clock
// while each RPC goroutine was waking, so only hand-built timelines —
// the analyze unit tests — pin exact identities.)
func TestCollectorEndToEndClosure(t *testing.T) {
	const steps = 4
	c, workers, clk := newTracedCluster(t, 3, 1024)
	for i, w := range workers {
		w.SetDelay(time.Duration(i+1) * 10 * time.Millisecond)
	}
	zones, ifaces, cfg, amp := testCase()
	res := solveAdvancing(t, c, clk, SolveSpec{
		Job: "obs", Zones: zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: amp, Steps: steps,
	})
	if res.Trace == "" {
		t.Fatal("solve result carries no trace id")
	}

	// Collect with the links fast again: the pulls themselves should
	// not need the advance-if-stuck driver.
	for _, w := range workers {
		w.SetDelay(0)
	}
	col := newTestCollector(c, workers)
	if n := col.SyncClocks(); n != 3 {
		t.Fatalf("SyncClocks reached %d workers, want 3", n)
	}
	for _, st := range col.Stats() {
		if !st.Synced || st.Offset != 0 {
			t.Errorf("worker %s: offset %v under a shared virtual clock, want 0", st.Worker, st.Offset)
		}
	}
	if added := col.Pull(); added == 0 {
		t.Fatal("Pull collected nothing")
	}

	timeline := col.Timeline()
	seenNode := map[string]bool{}
	for _, e := range timeline {
		if e.Node == "" {
			t.Fatalf("timeline event without node tag: %+v", e)
		}
		seenNode[e.Node] = true
	}
	for _, id := range []string{"coord", "w01", "w02", "w03"} {
		if !seenNode[id] {
			t.Errorf("timeline has no events from %s", id)
		}
	}

	rep := analyze.ClusterAnalyze(timeline, analyze.ClusterConfig{})
	if len(rep.Solves) != 1 {
		t.Fatalf("want 1 solve in report, got %d", len(rep.Solves))
	}
	solve := rep.Solves[0]
	if solve.Trace != res.Trace {
		t.Errorf("report trace %q, result trace %q", solve.Trace, res.Trace)
	}
	if len(solve.Steps) != steps {
		t.Fatalf("report has %d steps, want %d", len(solve.Steps), steps)
	}
	if !rep.Closed || rep.Truncated {
		t.Fatalf("report not cleanly closed: closed=%v truncated=%v", rep.Closed, rep.Truncated)
	}
	if err := analyze.CheckClusterClosure(rep); err != nil {
		t.Fatalf("closure: %v", err)
	}
	for _, st := range solve.Steps {
		// Virtual time only advances inside the injected link delays,
		// so every step's wall covers at least the slowest link.
		if st.WallNs < int64(30*time.Millisecond) {
			t.Errorf("step %d: wall %d, want >= 30ms", st.Step, st.WallNs)
		}
		if st.Straggler == "" || st.StragglerNs < 0 {
			t.Errorf("step %d: no straggler named (%q, %dns)", st.Step, st.Straggler, st.StragglerNs)
		}
		if len(st.Workers) != 3 {
			t.Errorf("step %d: %d lanes, want 3", st.Step, len(st.Workers))
		}
		if st.Verdict != "confirmed" {
			t.Errorf("step %d: verdict %q", st.Step, st.Verdict)
		}
	}
	if len(solve.Stragglers) == 0 {
		t.Error("no straggler tally")
	}
}

// TestCollectorDropMarkerDegradesToPartial wraps one worker's tiny
// ring mid-solve: the merged timeline must carry its node-tagged
// trace_dropped marker, and the cluster report must degrade that
// worker's affected steps to plausible partial attribution instead of
// mis-closing.
func TestCollectorDropMarkerDegradesToPartial(t *testing.T) {
	const steps = 6
	c, workers, clk := newTracedCluster(t, 3, 1024)
	// w01's ring holds only 3 events; a 6-step solve emits 12 on it.
	workers[0].EnableTrace(3)
	for i, w := range workers {
		w.SetDelay(time.Duration(i+1) * 10 * time.Millisecond)
	}
	zones, ifaces, cfg, amp := testCase()
	solveAdvancing(t, c, clk, SolveSpec{
		Job: "wrap", Zones: zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: amp, Steps: steps,
	})
	for _, w := range workers {
		w.SetDelay(0)
	}
	col := newTestCollector(c, workers)
	col.SyncClocks()
	col.Pull()

	marker := false
	for _, e := range col.Timeline() {
		if e.Kind == obs.KindTraceDropped && e.Node == "w01" && e.A > 0 {
			marker = true
		}
	}
	if !marker {
		t.Fatal("merged timeline has no node-tagged trace_dropped marker for w01")
	}

	rep := analyze.ClusterAnalyze(col.Timeline(), analyze.ClusterConfig{})
	if !rep.Truncated || rep.DroppedEvents["w01"] == 0 {
		t.Fatalf("report does not surface the wrap: %+v", rep)
	}
	solve := rep.Solves[0]
	if !solve.Partial {
		t.Fatal("solve with dropped worker spans must be partial")
	}
	partialSteps := 0
	for _, st := range solve.Steps {
		if st.Partial {
			partialSteps++
			if st.Verdict != "plausible" {
				t.Errorf("step %d partial but verdict %q", st.Step, st.Verdict)
			}
		}
		if !st.Closed {
			t.Errorf("step %d: partial attribution must still close, got %+v", st.Step, st)
		}
	}
	if partialSteps == 0 {
		t.Error("no step degraded to partial despite the wrap")
	}
	if err := analyze.CheckClusterClosure(rep); err != nil {
		t.Errorf("closure after degradation: %v", err)
	}
}

// TestCollectorSurvivesNodeLossMidPull fails a worker between pulls:
// the collector must record the error, keep the others' events
// flowing, keep the failed worker's cursor, and resume it after
// revival without duplicating or corrupting the timeline.
func TestCollectorSurvivesNodeLossMidPull(t *testing.T) {
	c, workers, _ := newTracedCluster(t, 3, 1024)
	col := newTestCollector(c, workers)
	for _, w := range workers {
		w.Tracer().Emit(obs.Event{Kind: obs.KindHeartbeat, Name: "before", Worker: -1})
	}
	if added := col.Pull(); added != 3 {
		t.Fatalf("first pull added %d, want 3", added)
	}

	workers[1].Fail()
	for _, w := range workers {
		w.Tracer().Emit(obs.Event{Kind: obs.KindHeartbeat, Name: "during", Worker: -1})
	}
	if added := col.Pull(); added != 2 {
		t.Fatalf("pull with w02 down added %d, want 2 (survivors only)", added)
	}
	var w02 WorkerTraceStat
	for _, st := range col.Stats() {
		if st.Worker == "w02" {
			w02 = st
		}
	}
	if w02.Errors == 0 || w02.LastErr == "" {
		t.Errorf("w02 failure not recorded: %+v", w02)
	}
	if w02.Cursor != 1 {
		t.Errorf("w02 cursor moved to %d while down, want 1", w02.Cursor)
	}

	workers[1].Recover()
	if added := col.Pull(); added != 1 {
		t.Fatalf("pull after revival added %d, want 1 (the missed event)", added)
	}
	seen := map[string]map[uint64]int{}
	perNode := map[string]int{}
	for _, e := range col.Timeline() {
		if e.Kind != obs.KindHeartbeat {
			continue
		}
		if seen[e.Node] == nil {
			seen[e.Node] = map[uint64]int{}
		}
		seen[e.Node][e.Seq]++
		if seen[e.Node][e.Seq] > 1 {
			t.Fatalf("duplicate event %s/%d in timeline", e.Node, e.Seq)
		}
		perNode[e.Node]++
	}
	for _, id := range []string{"w01", "w02", "w03"} {
		if perNode[id] != 2 {
			t.Errorf("%s: %d heartbeats in timeline, want 2", id, perNode[id])
		}
	}
}

// TestCollectorConcurrentPulls hammers one collector from many
// goroutines (Pull, SyncClocks, Stats, Timeline) while workers keep
// emitting: no event may be duplicated or lost. Run under -race this
// is the collector's concurrency gate.
func TestCollectorConcurrentPulls(t *testing.T) {
	const emitters = 3
	const perWorker = 200
	c, workers, _ := newTracedCluster(t, emitters, 4*perWorker)
	col := newTestCollector(c, workers)

	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *LocalWorker) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				w.Tracer().Emit(obs.Event{Kind: obs.KindChunk, Name: "c", Worker: i})
			}
		}(w)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				col.Pull()
				col.SyncClocks()
				_ = col.Stats()
				_ = col.Timeline()
			}
		}()
	}
	wg.Wait()
	col.Pull()

	perNode := map[string]int{}
	for _, e := range col.Timeline() {
		if e.Kind != obs.KindChunk {
			continue
		}
		perNode[e.Node]++
	}
	for _, w := range workers {
		if got := perNode[w.ID()]; got != perWorker {
			t.Errorf("%s: %d events collected, want exactly %d", w.ID(), got, perWorker)
		}
	}
}

// skewedSource is a TraceSource whose clock runs ahead of the
// collector's by a fixed skew, with a symmetric probe RTT.
type skewedSource struct {
	clk    simclock.Clock
	skew   time.Duration
	rtt    time.Duration
	events []obs.Event
}

func (s *skewedSource) FetchTrace(since uint64) ([]obs.Event, uint64, uint64, error) {
	var out []obs.Event
	for _, e := range s.events {
		if e.Seq >= since {
			out = append(out, e)
		}
	}
	return out, obs.NextCursor(out, since), 0, nil
}

func (s *skewedSource) ClockProbe() (time.Time, time.Duration, error) {
	return s.clk.Now().Add(s.skew), s.rtt, nil
}

// TestCollectorClockAlignment checks the offset estimate and its
// application: a worker whose clock runs 250ms ahead reports events
// timestamped in its own frame; after SyncClocks the merged timeline
// carries them on the collector's clock.
func TestCollectorClockAlignment(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	trueAt := clk.Now().Add(5 * time.Millisecond)
	const skew = 250 * time.Millisecond
	src := &skewedSource{clk: clk, skew: skew, events: []obs.Event{
		{Seq: 0, Kind: obs.KindHeartbeat, Name: "hb", Worker: -1, At: trueAt.Add(skew)},
	}}
	col := NewCollector(CollectorConfig{Clock: clk, Node: "coord"})
	col.AddWorker("w01", src)
	if n := col.SyncClocks(); n != 1 {
		t.Fatalf("SyncClocks reached %d, want 1", n)
	}
	st := col.Stats()[0]
	if st.Offset != skew {
		t.Fatalf("offset = %v, want %v (zero-RTT probe)", st.Offset, skew)
	}
	col.Pull()
	tl := col.Timeline()
	if len(tl) != 1 {
		t.Fatalf("timeline has %d events, want 1", len(tl))
	}
	if !tl[0].At.Equal(trueAt) {
		t.Errorf("aligned At = %v, want %v", tl[0].At, trueAt)
	}
	if tl[0].Node != "w01" {
		t.Errorf("event not node-tagged: %q", tl[0].Node)
	}
}

// TestCollectorRTTMidpoint checks the offset estimator's RTT
// handling: offset = remote - (local + rtt/2).
func TestCollectorRTTMidpoint(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	src := &skewedSource{clk: clk, skew: 100 * time.Millisecond, rtt: 40 * time.Millisecond}
	col := NewCollector(CollectorConfig{Clock: clk, Node: "coord"})
	col.AddWorker("w01", src)
	col.SyncClocks()
	if got, want := col.Stats()[0].Offset, 80*time.Millisecond; got != want {
		t.Errorf("offset = %v, want %v", got, want)
	}
}

// TestCollectorEmitsCollectAndClockSync checks the collector's own
// spans land in the coordinator tracer and the merged timeline.
func TestCollectorEmitsCollectAndClockSync(t *testing.T) {
	c, workers, _ := newTracedCluster(t, 2, 64)
	col := newTestCollector(c, workers)
	workers[0].Tracer().Emit(obs.Event{Kind: obs.KindHeartbeat, Name: "hb", Worker: -1})
	col.SyncClocks()
	col.Pull()
	var sync, collect int
	for _, e := range col.Timeline() {
		switch e.Kind {
		case obs.KindClockSync:
			sync++
			if e.Node != "coord" {
				t.Errorf("clock_sync tagged %q, want coord", e.Node)
			}
		case obs.KindCollect:
			collect++
		}
	}
	if sync != 2 || collect != 2 {
		t.Errorf("timeline has %d clock_sync and %d collect events, want 2 and 2", sync, collect)
	}
}
