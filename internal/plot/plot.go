// Package plot renders line charts as ASCII text, so the figure
// reproductions (Figure 1's stair-step curves, Figures 2-3's scaling
// sweeps) can be *seen* from the terminal harness, not just tabulated.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one curve: Y values over the shared X axis.
type Series struct {
	Name string
	Y    []float64
}

// markers cycles through per-series glyphs.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the series over x as an ASCII chart of the given plot
// area (width × height characters, excluding axes and labels). NaN and
// missing trailing values are skipped, so series of different lengths
// share one axis. Returns the chart as a string ending in a legend.
func Render(title string, x []float64, series []Series, width, height int) string {
	if width < 8 || height < 4 {
		panic(fmt.Sprintf("plot: area too small (%dx%d)", width, height))
	}
	if len(x) < 2 {
		panic("plot: need at least two x values")
	}
	// Ranges.
	xmin, xmax := x[0], x[0]
	for _, v := range x {
		xmin = math.Min(xmin, v)
		xmax = math.Max(xmax, v)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i, v := range s.Y {
			if i >= len(x) || math.IsNaN(v) {
				continue
			}
			ymin = math.Min(ymin, v)
			ymax = math.Max(ymax, v)
		}
	}
	if math.IsInf(ymin, 1) {
		ymin, ymax = 0, 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	cells := make([][]byte, height)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(v float64) int {
		c := int((v - xmin) / (xmax - xmin) * float64(width-1))
		return clamp(c, 0, width-1)
	}
	row := func(v float64) int {
		r := int((v - ymin) / (ymax - ymin) * float64(height-1))
		return clamp(height-1-r, 0, height-1)
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i, v := range s.Y {
			if i >= len(x) || math.IsNaN(v) {
				continue
			}
			cells[row(v)][col(x[i])] = m
		}
	}

	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	axisW := 10
	for r := 0; r < height; r++ {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.4g ", ymax)
		} else if r == height-1 {
			label = fmt.Sprintf("%9.4g ", ymin)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(cells[r]))
	}
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", axisW), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s%-*.4g%*.4g\n", strings.Repeat(" ", axisW+1), width/2, xmin, width-width/2-1, xmax)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// XRange returns the x values 1..n as floats, the usual
// processor-count axis.
func XRange(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i + 1)
	}
	return x
}
