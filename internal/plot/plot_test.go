package plot

import (
	"math"
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	x := XRange(10)
	s := []Series{
		{Name: "linear", Y: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}},
		{Name: "flat", Y: []float64{5, 5, 5, 5, 5, 5, 5, 5, 5, 5}},
	}
	out := Render("test chart", x, s, 40, 10)
	if !strings.Contains(out, "test chart") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "linear") || !strings.Contains(out, "flat") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("series markers missing")
	}
	lines := strings.Split(out, "\n")
	// Title + height rows + axis + x labels + 2 legend rows.
	if len(lines) < 10+4 {
		t.Errorf("unexpected line count %d", len(lines))
	}
	// The top row holds the max of the linear series; the flat series
	// sits mid-chart.
	if !strings.Contains(lines[1], "*") {
		t.Errorf("max of linear series not on top row: %q", lines[1])
	}
	// Axis labels carry the ranges.
	if !strings.Contains(out, "10") || !strings.Contains(out, "1") {
		t.Error("axis range labels missing")
	}
}

func TestRenderStairStepShape(t *testing.T) {
	// A stair function renders with repeated marker rows (plateaus).
	x := XRange(15)
	y := make([]float64, 15)
	for p := 1; p <= 15; p++ {
		y[p-1] = 15 / math.Ceil(15/float64(p))
	}
	out := Render("", x, []Series{{Name: "n=15", Y: y}}, 30, 8)
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "*") {
			rows++
		}
	}
	// 7 distinct plateau values (1, 1.875, 3, 3.75, 5, 7.5, 15) may
	// share rows after quantization, but several rows must be occupied.
	if rows < 4 {
		t.Errorf("stair chart occupies only %d rows", rows)
	}
}

func TestRenderHandlesNaNAndShortSeries(t *testing.T) {
	x := XRange(6)
	s := []Series{
		{Name: "short", Y: []float64{1, 2}},
		{Name: "gappy", Y: []float64{3, math.NaN(), 5, math.NaN(), 7, 8}},
	}
	out := Render("", x, s, 20, 6)
	if out == "" {
		t.Fatal("empty render")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	out := Render("", XRange(4), []Series{{Name: "c", Y: []float64{2, 2, 2, 2}}}, 12, 4)
	if !strings.Contains(out, "*") {
		t.Error("constant series not drawn")
	}
}

func TestRenderPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"small": func() { Render("", XRange(4), nil, 2, 2) },
		"x":     func() { Render("", []float64{1}, nil, 20, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
