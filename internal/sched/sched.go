package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parloop"
	"repro/internal/simclock"
)

// Errors returned by the scheduler's admission and control surface.
var (
	// ErrQueueFull is returned by Submit when the bounded queue is at
	// capacity — the backpressure signal callers (and the daemon's HTTP
	// layer) propagate upstream instead of buffering unboundedly.
	ErrQueueFull = errors.New("sched: queue full")
	// ErrDraining is returned by Submit after Drain or Close began.
	ErrDraining = errors.New("sched: scheduler is draining")
	// ErrNotFound is returned for operations on unknown job IDs.
	ErrNotFound = errors.New("sched: no such job")
	// ErrTimeout is the cancellation cause (and job error) when a
	// job's run deadline expires before Run returns.
	ErrTimeout = errors.New("sched: job deadline exceeded")
	// ErrTerminal is returned by Cancel for a job already in a
	// terminal state — nothing is left to cancel.
	ErrTerminal = errors.New("sched: job already finished")
)

// Config configures a Scheduler.
type Config struct {
	// Procs is the processor budget space-shared across jobs; the sum
	// of all concurrent grants never exceeds it. <= 0 defaults to
	// runtime.GOMAXPROCS(0).
	Procs int
	// QueueDepth bounds the number of jobs waiting for processors;
	// Submit fails with ErrQueueFull beyond it. <= 0 defaults to 64.
	QueueDepth int
	// Grow lets the scheduler raise running jobs' grants to higher
	// plateaus when the queue is empty and processors are idle — the
	// "resize as the queue drains" policy.
	Grow bool
	// ShrinkToAdmit lets the scheduler ask the largest running job to
	// drop one plateau when the queue is blocked with zero free
	// processors, so queued work is admitted instead of starving.
	ShrinkToAdmit bool
	// Clock is the time source for timestamps, deadlines and
	// timeouts. nil defaults to the wall clock; tests install a
	// simclock.Virtual to drive deadlines deterministically.
	Clock simclock.Clock
	// DefaultTimeout bounds the running time of jobs submitted without
	// an explicit per-job timeout. <= 0 means no deadline. The
	// deadline starts when the job is granted processors, not at
	// submission, so queue wait never eats a job's budget.
	DefaultTimeout time.Duration
	// Tracer receives grant/resize/preempt events and is attached to
	// every job's team, so region, barrier and chunk spans come out
	// tagged with the job name. nil creates a private disabled tracer
	// (events cost one atomic load until enabled).
	Tracer *obs.Tracer
	// Metrics is the registry the scheduler registers its counters,
	// gauges and grant histogram in. nil creates a private registry. A
	// registry must back at most one scheduler: counters are looked up
	// by name, so two schedulers on one registry would share them.
	Metrics *obs.Registry
	// Allocator is the grant policy deciding processor counts. nil
	// defaults to PlateauAllocator, the paper's stair-step rule; tests
	// and higher-level schedulers may substitute their own.
	Allocator Allocator
}

// DefaultConfig returns the production setting: full-machine budget,
// a 64-deep queue, and both resize policies on.
func DefaultConfig() Config {
	return Config{Procs: 0, QueueDepth: 64, Grow: true, ShrinkToAdmit: true}
}

// Scheduler space-shares a fixed processor budget across concurrent
// jobs. See the package comment for the allocation policy.
type Scheduler struct {
	cfg Config

	mu      sync.Mutex
	cond    *sync.Cond // broadcast on every queue/running transition
	free    int
	queue   []*record // FIFO of admitted, not-yet-running jobs
	running map[uint64]*record
	jobs    map[uint64]*record
	order   []uint64 // submission order, for listing
	nextID  uint64

	draining bool
	wg       sync.WaitGroup // one entry per running job goroutine

	// Counters live in the obs registry as lock-free atomics, so the
	// /metrics scrape path never races the scheduler: increments
	// happen wherever they occur (with or without mu) and readers
	// never need the mutex. Gauges derived from mu-guarded structures
	// (queue depth, free processors) are registered as GaugeFuncs that
	// take mu themselves at scrape time.
	reg    *obs.Registry
	tracer *obs.Tracer

	ctrSubmitted, ctrRejected                 *obs.Counter
	ctrCompleted, ctrFailed, ctrCanceled      *obs.Counter
	ctrTimedOut, ctrCanceledQueued, ctrPanics *obs.Counter
	ctrResizes, ctrPreempts                   *obs.Counter
	ctrDoneSyncEvents                         *obs.Counter // sync events of finished jobs
	gMaxInUse                                 *obs.Gauge   // high-water processors in use (updated under mu)
	hGrant                                    *obs.Histogram

	alloc Allocator
	clock simclock.Clock
}

// New creates a scheduler with the given configuration.
func New(cfg Config) *Scheduler {
	if cfg.Procs <= 0 {
		cfg.Procs = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Clock == nil {
		cfg.Clock = simclock.Real{}
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(4096, cfg.Clock)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.Allocator == nil {
		cfg.Allocator = PlateauAllocator{}
	}
	s := &Scheduler{
		cfg:     cfg,
		free:    cfg.Procs,
		running: make(map[uint64]*record),
		jobs:    make(map[uint64]*record),
		clock:   cfg.Clock,
		reg:     cfg.Metrics,
		tracer:  cfg.Tracer,
		alloc:   cfg.Allocator,
	}
	s.cond = sync.NewCond(&s.mu)
	s.registerMetrics()
	return s
}

// registerMetrics creates the scheduler's counters, gauges and the
// grant-size histogram in its registry.
func (s *Scheduler) registerMetrics() {
	r := s.reg
	s.ctrSubmitted = r.Counter("sched_submitted_total", "Jobs admitted to the queue.")
	s.ctrRejected = r.Counter("sched_rejected_total", "Submissions refused (queue full or draining).")
	s.ctrCompleted = r.Counter("sched_completed_total", "Jobs that finished successfully.")
	s.ctrFailed = r.Counter("sched_failed_total", "Jobs that returned an error or panicked.")
	s.ctrCanceled = r.Counter("sched_canceled_total", "Jobs canceled while queued or running.")
	s.ctrTimedOut = r.Counter("sched_timed_out_total", "Jobs whose run deadline expired.")
	s.ctrCanceledQueued = r.Counter("sched_canceled_queued_total", "Canceled jobs that never received processors.")
	s.ctrPanics = r.Counter("sched_panics_total", "Failed jobs whose cause was a panic.")
	s.ctrResizes = r.Counter("sched_resizes_total", "Grant resizes applied at job checkpoints.")
	s.ctrPreempts = r.Counter("sched_preempts_total", "Shrink requests issued to admit queued work.")
	s.ctrDoneSyncEvents = r.Counter("sched_done_sync_events_total", "Synchronization events of finished jobs' teams.")
	s.gMaxInUse = r.Gauge("sched_max_inuse_procs", "High-water mark of processors in use.")
	s.hGrant = r.Histogram("sched_grant_procs", "Processor counts at grant and applied resize (plateau occupancy).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128})
	r.GaugeFunc("sched_procs", "Processor budget space-shared across jobs.", func() float64 {
		return float64(s.cfg.Procs)
	})
	r.GaugeFunc("sched_free_procs", "Processors not accounted to any job.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.free)
	})
	r.GaugeFunc("sched_inuse_procs", "Processors accounted to running jobs (including pending grows).", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.inUseLocked())
	})
	r.GaugeFunc("sched_queue_depth", "Jobs admitted and waiting for processors.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.queue))
	})
	r.GaugeFunc("sched_running_jobs", "Jobs currently holding processors.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.running))
	})
	r.GaugeFunc("sched_sync_events_total", "Synchronization events across finished and running jobs' teams.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.syncEventsLocked())
	})
}

// emit records a scheduler trace event when tracing is enabled. c
// carries the job's requested parallelism M on resize and preempt
// events so occupancy analysis can bind them to a loop even when the
// original grant event has been overwritten by ring wraparound.
func (s *Scheduler) emit(k obs.Kind, name string, a, b, c int64) {
	if !s.tracer.Enabled() {
		return
	}
	s.tracer.Emit(obs.Event{Kind: k, Name: name, Worker: -1, A: a, B: b, C: c})
}

// Tracer returns the scheduler's event tracer (never nil; disabled
// until enabled by the operator, e.g. via f3dd's POST /trace/enable).
func (s *Scheduler) Tracer() *obs.Tracer { return s.tracer }

// Registry returns the metrics registry holding the scheduler's
// counters; the daemon renders it at GET /metrics.
func (s *Scheduler) Registry() *obs.Registry { return s.reg }

// inUseLocked sums the processors accounted to running jobs. Caller
// holds s.mu.
func (s *Scheduler) inUseLocked() int {
	inUse := 0
	for _, rec := range s.running {
		inUse += rec.acct()
	}
	return inUse
}

// syncEventsLocked totals sync events across finished and running
// teams. Caller holds s.mu.
func (s *Scheduler) syncEventsLocked() uint64 {
	sync := s.ctrDoneSyncEvents.Value()
	for _, rec := range s.running {
		if rec.team != nil {
			sync += rec.team.SyncEvents()
		}
	}
	return sync
}

// Procs returns the scheduler's processor budget.
func (s *Scheduler) Procs() int { return s.cfg.Procs }

// Handle refers to a submitted job.
type Handle struct {
	s   *Scheduler
	rec *record
}

// ID returns the job's scheduler-assigned ID.
func (h *Handle) ID() uint64 { return h.rec.id }

// Done returns a channel closed when the job reaches a terminal state.
func (h *Handle) Done() <-chan struct{} { return h.rec.done }

// Wait blocks until the job finishes or ctx expires, returning the
// job's error (nil for success, the context error for cancellation).
func (h *Handle) Wait(ctx context.Context) error {
	select {
	case <-h.rec.done:
		h.s.mu.Lock()
		defer h.s.mu.Unlock()
		return h.rec.err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Status returns a snapshot of the job.
func (h *Handle) Status() JobStatus {
	h.s.mu.Lock()
	defer h.s.mu.Unlock()
	return h.rec.snapshotLocked(h.s.clock.Now())
}

// Cancel requests cancellation of the job (see Scheduler.Cancel).
func (h *Handle) Cancel() { _ = h.s.Cancel(h.rec.id) }

// SubmitOptions tunes one submission.
type SubmitOptions struct {
	// Timeout bounds the job's running time (measured from the grant,
	// not from submission). 0 inherits Config.DefaultTimeout; negative
	// disables the deadline for this job.
	Timeout time.Duration
}

// Submit admits a job to the queue and triggers dispatch. It returns
// ErrQueueFull when the queue is at capacity (backpressure) and
// ErrDraining once shutdown has begun. A job reporting Parallelism()
// < 1 is treated as serial (M = 1).
func (s *Scheduler) Submit(j Job) (*Handle, error) {
	return s.SubmitWithOptions(j, SubmitOptions{})
}

// SubmitWithOptions is Submit with per-job options (run timeout).
func (s *Scheduler) SubmitWithOptions(j Job, opts SubmitOptions) (*Handle, error) {
	m := j.Parallelism()
	if m < 1 {
		m = 1
	}
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout < 0 {
		timeout = 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.ctrRejected.Inc()
		return nil, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.ctrRejected.Inc()
		return nil, ErrQueueFull
	}
	ctx, cancel := context.WithCancelCause(context.Background())
	s.nextID++
	rec := &record{
		id:        s.nextID,
		job:       j,
		state:     StateQueued,
		requested: m,
		timeout:   timeout,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		submitted: s.clock.Now(),
	}
	s.jobs[rec.id] = rec
	s.order = append(s.order, rec.id)
	s.queue = append(s.queue, rec)
	s.ctrSubmitted.Inc()
	s.dispatchLocked()
	s.cond.Broadcast()
	return &Handle{s: s, rec: rec}, nil
}

// dispatchLocked starts queued jobs while free processors remain,
// granting each the largest plateau that fits, then applies the resize
// policies. Caller holds s.mu.
func (s *Scheduler) dispatchLocked() {
	for len(s.queue) > 0 && s.free > 0 {
		rec := s.queue[0]
		p := s.alloc.Grant(rec.requested, s.free)
		s.queue = s.queue[1:]
		s.free -= p
		rec.granted, rec.target = p, p
		rec.state = StateRunning
		rec.started = s.clock.Now()
		s.running[rec.id] = rec
		s.emit(obs.KindGrant, rec.job.Name(), int64(p), int64(rec.requested), 0)
		s.hGrant.Observe(float64(p))
		s.wg.Add(1)
		go s.runJob(rec)
	}
	if len(s.queue) > 0 && s.free == 0 && s.cfg.ShrinkToAdmit {
		s.requestShrinkLocked()
	}
	if len(s.queue) == 0 && s.free > 0 && s.cfg.Grow {
		s.growLocked()
	}
	if used := s.cfg.Procs - s.free; float64(used) > s.gMaxInUse.Value() {
		s.gMaxInUse.Set(float64(used))
	}
}

// growLocked raises running jobs' targets to higher plateaus while
// idle processors allow, in submission order. A job is only grown when
// the extra processors actually reach the next stair-step — growing
// within a plateau would burn budget for zero speedup. Caller holds
// s.mu.
func (s *Scheduler) growLocked() {
	ids := make([]uint64, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for s.free > 0 {
		grew := false
		for _, id := range ids {
			rec := s.running[id]
			cur := rec.acct()
			if cur >= rec.requested {
				continue
			}
			p := s.alloc.Grant(rec.requested, cur+s.free)
			if p > cur {
				s.free -= p - cur
				rec.target = p
				grew = true
				if s.free == 0 {
					break
				}
			}
		}
		if !grew {
			return
		}
	}
}

// requestShrinkLocked asks the running job with the largest settled
// grant to drop one plateau so the queue head can be admitted. The
// shrink is cooperative: it takes effect (and frees processors) at the
// victim's next Checkpoint. Caller holds s.mu.
func (s *Scheduler) requestShrinkLocked() {
	var victim *record
	for _, rec := range s.running {
		if rec.target != rec.granted || rec.granted <= 1 {
			continue // resize already pending, or nothing to give
		}
		if victim == nil || rec.granted > victim.granted ||
			(rec.granted == victim.granted && rec.id < victim.id) {
			victim = rec
		}
	}
	if victim == nil {
		return
	}
	if p := s.alloc.Lower(victim.requested, victim.granted); p >= 1 {
		victim.target = p
		s.ctrPreempts.Inc()
		s.emit(obs.KindPreempt, victim.job.Name(), int64(victim.granted), int64(p), int64(victim.requested))
	}
}

// runJob executes one granted job on its own goroutine.
func (s *Scheduler) runJob(rec *record) {
	defer s.wg.Done()
	team := parloop.NewTeam(rec.granted)
	team.SetTracer(s.tracer, rec.job.Name())
	s.mu.Lock()
	rec.team = team
	s.mu.Unlock()

	if rec.timeout > 0 {
		// The deadline watcher cancels the job with ErrTimeout when the
		// clock (virtual in tests) reaches the deadline. It exits as
		// soon as the job finishes.
		go func() {
			select {
			case <-s.clock.After(rec.timeout):
				rec.cancel(ErrTimeout)
			case <-rec.done:
			}
		}()
	}

	g := &Grant{s: s, rec: rec, team: team}
	err, panicked := runSafely(rec.job, g)
	sync := team.SyncEvents()
	team.Close()

	s.mu.Lock()
	s.free += rec.acct()
	// Keep granted at its final value for status reporting; settle any
	// never-applied resize so acct() stays consistent (the record is no
	// longer in running, so it is out of the budget either way).
	rec.target = rec.granted
	rec.finished = s.clock.Now()
	rec.syncEvents = sync
	s.ctrDoneSyncEvents.Add(sync)
	rec.err = err
	// A panic always classifies as a failure, even if the job was also
	// canceled or timed out: a crash is worth surfacing over the
	// concurrent administrative action.
	switch {
	case panicked:
		rec.state = StateFailed
		rec.cause = CausePanic
		s.ctrFailed.Inc()
		s.ctrPanics.Inc()
	case errors.Is(context.Cause(rec.ctx), ErrTimeout):
		rec.state = StateTimedOut
		rec.cause = CauseTimeout
		if err == nil || errors.Is(err, context.Canceled) {
			rec.err = ErrTimeout
		}
		s.ctrTimedOut.Inc()
	case rec.ctx.Err() != nil:
		rec.state = StateCanceled
		rec.cause = CauseCanceledRunning
		if err == nil {
			rec.err = rec.ctx.Err()
		}
		s.ctrCanceled.Inc()
	case err != nil:
		rec.state = StateFailed
		rec.cause = CauseError
		s.ctrFailed.Inc()
	default:
		rec.state = StateDone
		s.ctrCompleted.Inc()
	}
	rec.cancel(nil)
	delete(s.running, rec.id)
	close(rec.done)
	s.dispatchLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// runSafely invokes Run, converting a panic into an error so one bad
// job cannot take the scheduler down. A worker panic inside one of the
// job's parallel regions arrives here as a *parloop.PanicError (the
// region's barrier was already broken and the team joined cleanly);
// any other panic on the job goroutine is caught directly.
func runSafely(j Job, g *Grant) (err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			if pe, ok := r.(*parloop.PanicError); ok {
				err = fmt.Errorf("sched: job %q: %w", j.Name(), pe)
			} else {
				err = fmt.Errorf("sched: job %q panicked: %v", j.Name(), r)
			}
		}
	}()
	return j.Run(g), false
}

// Cancel requests cancellation of the job with the given ID. A queued
// job is removed immediately, releasing its queue slot without ever
// holding processors; a running job is signaled through its context
// and finishes at its next Checkpoint. Canceling a job already in a
// terminal state returns ErrTerminal.
func (s *Scheduler) Cancel(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return ErrNotFound
	}
	switch rec.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == rec {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.cancelQueuedLocked(rec)
		s.dispatchLocked()
		s.cond.Broadcast()
	case StateRunning:
		rec.cancel(nil)
	default:
		return ErrTerminal
	}
	return nil
}

// cancelQueuedLocked finishes a job that never started: it is marked
// canceled with the queued-specific cause so accounting distinguishes
// it from a running cancel. The caller has already removed it from
// the queue; it never held processors. Caller holds s.mu.
func (s *Scheduler) cancelQueuedLocked(rec *record) {
	rec.cancel(nil)
	rec.state = StateCanceled
	rec.cause = CauseCanceledQueued
	rec.finished = s.clock.Now()
	rec.err = context.Canceled
	s.ctrCanceled.Inc()
	s.ctrCanceledQueued.Inc()
	close(rec.done)
}

// Job returns a snapshot of the job with the given ID.
func (s *Scheduler) Job(id uint64) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return rec.snapshotLocked(s.clock.Now()), nil
}

// Jobs returns snapshots of all jobs in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.clock.Now()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshotLocked(now))
	}
	return out
}

// Metrics is a point-in-time view of the scheduler's accounting.
type Metrics struct {
	// Procs is the budget; InUse the processors accounted to running
	// jobs (including pending grows); Free the remainder. InUse + Free
	// == Procs always.
	Procs int `json:"procs"`
	InUse int `json:"in_use"`
	Free  int `json:"free"`
	// MaxInUse is the high-water mark of InUse over the scheduler's
	// lifetime — the budget-invariant witness (never exceeds Procs).
	MaxInUse int `json:"max_in_use"`

	Queued  int `json:"queued"`
	Running int `json:"running"`

	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Canceled  uint64 `json:"canceled"`
	// TimedOut counts jobs whose run deadline expired (a terminal
	// state distinct from Failed and Canceled).
	TimedOut uint64 `json:"timed_out"`
	// CanceledQueued is the subset of Canceled that never started —
	// canceled straight out of the queue, having held no processors.
	CanceledQueued uint64 `json:"canceled_queued"`
	// Panics is the subset of Failed caused by a panic in Run or in a
	// worker inside one of the job's parallel regions.
	Panics uint64 `json:"panics"`
	// Resizes counts applied grant changes (grow and shrink).
	Resizes uint64 `json:"resizes"`
	// Preempts counts shrink requests issued to running jobs so queued
	// work could be admitted (each becomes a Resize once applied).
	Preempts uint64 `json:"preempts"`
	// SyncEvents totals fork-join regions across finished and running
	// jobs' teams.
	SyncEvents uint64 `json:"sync_events"`
}

// Metrics returns current counters and gauges. The counters are read
// from the registry's atomics; the mutex only guards the structural
// gauges (queue depth, running set, free processors), so a scrape can
// never observe a torn counter regardless of what the scheduler is
// doing. The same numbers are exported in Prometheus text form
// through Registry.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Metrics{
		Procs:          s.cfg.Procs,
		InUse:          s.inUseLocked(),
		Free:           s.free,
		MaxInUse:       int(s.gMaxInUse.Value()),
		Queued:         len(s.queue),
		Running:        len(s.running),
		Submitted:      s.ctrSubmitted.Value(),
		Rejected:       s.ctrRejected.Value(),
		Completed:      s.ctrCompleted.Value(),
		Failed:         s.ctrFailed.Value(),
		Canceled:       s.ctrCanceled.Value(),
		TimedOut:       s.ctrTimedOut.Value(),
		CanceledQueued: s.ctrCanceledQueued.Value(),
		Panics:         s.ctrPanics.Value(),
		Resizes:        s.ctrResizes.Value(),
		Preempts:       s.ctrPreempts.Value(),
		SyncEvents:     s.syncEventsLocked(),
	}
}

// Draining reports whether Drain or Close has begun. The daemon's
// readiness endpoint flips unhealthy on it, so coordinators stop
// routing new work to a worker that is shutting down.
func (s *Scheduler) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain stops admission and waits until every queued and running job
// has finished, or ctx expires. It is the graceful-shutdown path: the
// daemon calls it on SIGTERM before exiting.
func (s *Scheduler) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.mu.Lock()
		for len(s.queue) > 0 || len(s.running) > 0 {
			s.cond.Wait()
		}
		s.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		// Wake the waiter so it can observe state and exit; it will
		// close idle when the scheduler eventually goes quiet.
		s.cond.Broadcast()
		return ctx.Err()
	}
}

// Close cancels every queued and running job and waits for running
// jobs to return. The scheduler accepts no work afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.draining = true
	for len(s.queue) > 0 {
		rec := s.queue[0]
		s.queue = s.queue[1:]
		s.cancelQueuedLocked(rec)
	}
	for _, rec := range s.running {
		rec.cancel(nil)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}
