package sched

import (
	"fmt"

	"repro/internal/model"
)

// funcJob adapts a closure to the Job interface.
type funcJob struct {
	name string
	m    int
	fn   func(g *Grant) error
}

// NewFuncJob wraps fn as a Job with the given name and parallelism.
// It is the lightweight adapter for tests, examples and ad-hoc work.
func NewFuncJob(name string, parallelism int, fn func(g *Grant) error) Job {
	return &funcJob{name: name, m: parallelism, fn: fn}
}

func (j *funcJob) Name() string     { return j.name }
func (j *funcJob) Parallelism() int { return j.m }
func (j *funcJob) Run(g *Grant) error {
	return j.fn(g)
}

// SyntheticJob executes a model.StepProfile as real CPU work: each
// time step runs the profile's parallel loop classes on the granted
// team (one fork-join region per sync event, iteration counts equal to
// the class's parallelism) and burns the serial residue on the job
// goroutine. It turns the paper's closed-form workload descriptions
// into schedulable jobs, so scheduler experiments can replay Table 2
// shapes without a full solver.
type SyntheticJob struct {
	name    string
	profile model.StepProfile
	steps   int
	// workScale converts profile cycles into spin-loop iterations;
	// keep it small in tests.
	workScale float64
}

// NewSyntheticJob builds a synthetic job running steps time steps of
// the profile. workScale scales profile cycles to spin iterations
// (1.0 ≈ one spin iteration per cycle); it must be > 0.
func NewSyntheticJob(name string, p model.StepProfile, steps int, workScale float64) *SyntheticJob {
	if steps < 1 {
		panic(fmt.Sprintf("sched: NewSyntheticJob steps must be >= 1, got %d", steps))
	}
	if workScale <= 0 {
		panic(fmt.Sprintf("sched: NewSyntheticJob workScale must be > 0, got %g", workScale))
	}
	return &SyntheticJob{name: name, profile: p, steps: steps, workScale: workScale}
}

// Name implements Job.
func (j *SyntheticJob) Name() string { return j.name }

// Parallelism implements Job: the largest loop-class parallelism in
// the profile (serial-only profiles report 1).
func (j *SyntheticJob) Parallelism() int {
	m := 1
	for _, l := range j.profile.Loops {
		if l.Parallelism > m {
			m = l.Parallelism
		}
	}
	return m
}

// Run implements Job: steps × (parallel loop classes + serial work),
// checkpointing once per step.
func (j *SyntheticJob) Run(g *Grant) error {
	for s := 0; s < j.steps; s++ {
		if err := g.Checkpoint(); err != nil {
			return err
		}
		team := g.Team()
		for _, l := range j.profile.Loops {
			if l.Parallelism < 2 {
				spin(j.iters(l.WorkCycles))
				continue
			}
			perUnit := j.iters(l.WorkCycles / float64(l.Parallelism))
			regions := l.SyncEvents
			if regions < 1 {
				regions = 1
			}
			for r := 0; r < regions; r++ {
				team.ForChunked(l.Parallelism, func(lo, hi int) {
					for i := lo; i < hi; i++ {
						spin(perUnit / regions)
					}
				})
			}
		}
		spin(j.iters(j.profile.SerialCycles))
	}
	return nil
}

func (j *SyntheticJob) iters(cycles float64) int {
	n := int(cycles * j.workScale)
	if n < 1 {
		n = 1
	}
	return n
}

// spin burns roughly n dependent floating-point operations. The result
// feeds a branch the compiler cannot fold away.
func spin(n int) {
	x := 1.0
	for i := 0; i < n; i++ {
		x += 1 / x
	}
	if x < 0 {
		panic("sched: spin underflow (unreachable)")
	}
}
