package sched

import (
	"testing"

	"repro/internal/model"
)

// FuzzPlateauGrant fuzzes the single-grant decision: for any job
// parallelism m and free-processor count avail, the grant must be 0
// exactly when nothing is free, otherwise a plateau of m within
// [1, min(m, avail)] that loses no speedup versus taking everything
// available.
func FuzzPlateauGrant(f *testing.F) {
	f.Add(15, 7)
	f.Add(15, 15)
	f.Add(1, 64)
	f.Add(97, 3)
	f.Add(1024, 1024)
	f.Fuzz(func(t *testing.T, m, avail int) {
		if m < 1 || m > 1<<16 || avail < -8 || avail > 1<<16 {
			t.Skip()
		}
		g := PlateauGrant(m, avail)
		if avail <= 0 {
			if g != 0 {
				t.Fatalf("PlateauGrant(%d, %d) = %d, want 0 with nothing free", m, avail, g)
			}
			return
		}
		bound := m
		if avail < bound {
			bound = avail
		}
		if g < 1 || g > bound {
			t.Fatalf("PlateauGrant(%d, %d) = %d outside [1, %d]", m, avail, g, bound)
		}
		ceil := func(p int) int { return (m + p - 1) / p }
		if g > 1 && ceil(g) >= ceil(g-1) {
			t.Fatalf("PlateauGrant(%d, %d) = %d is off-plateau", m, avail, g)
		}
		// No speedup sacrificed: the grant's critical path equals the
		// critical path of grabbing every available processor.
		if ceil(g) != ceil(bound) {
			t.Fatalf("PlateauGrant(%d, %d) = %d loses speedup: ceil %d vs %d at p=%d",
				m, avail, g, ceil(g), ceil(bound), bound)
		}
	})
}

// FuzzAllocator drives a live scheduler with a byte-string-derived
// sequence of submit/finish/cancel/step operations and asserts the
// global allocation invariants after every step: grants always sit on
// a plateau of the job's parallelism, concurrent grants never sum past
// the budget (InUse + Free == Procs, MaxInUse <= Procs), and when the
// dust settles nothing is leaked.
func FuzzAllocator(f *testing.F) {
	f.Add(uint8(6), []byte{0x15, 0x3f, 0x04, 0x81, 0x22, 0xf0, 0x07})
	f.Add(uint8(3), []byte{0x01, 0x01, 0x01, 0x80, 0x80, 0x80})
	f.Add(uint8(16), []byte{0xff, 0x00, 0x42, 0x9a, 0x33, 0x77, 0xc8, 0x11})
	f.Fuzz(func(t *testing.T, procsByte uint8, ops []byte) {
		procs := 1 + int(procsByte)%16
		if len(ops) > 48 {
			ops = ops[:48]
		}
		s := New(Config{Procs: procs, QueueDepth: 8, Grow: true, ShrinkToAdmit: true})
		defer s.Close()

		type slot struct {
			j *gateJob
			h *Handle
		}
		var live []slot
		check := func() {
			t.Helper()
			m := s.Metrics()
			if m.InUse+m.Free != m.Procs {
				t.Fatalf("budget leak: InUse %d + Free %d != Procs %d", m.InUse, m.Free, m.Procs)
			}
			if m.MaxInUse > m.Procs {
				t.Fatalf("budget exceeded: MaxInUse %d > Procs %d", m.MaxInUse, m.Procs)
			}
			for _, sl := range live {
				st := sl.h.Status()
				if st.State != StateRunning {
					continue
				}
				on := false
				for _, p := range model.PlateauProcs(st.Requested, st.Requested) {
					if st.Granted == p {
						on = true
						break
					}
				}
				if !on {
					t.Fatalf("job %d granted %d, off every plateau of M=%d", st.ID, st.Granted, st.Requested)
				}
			}
		}
		finishRunning := func(idx int) {
			var running []int
			for i, sl := range live {
				if sl.h.Status().State == StateRunning {
					running = append(running, i)
				}
			}
			if len(running) == 0 {
				return
			}
			i := running[idx%len(running)]
			sl := live[i]
			sl.j.finish <- nil
			if err := waitDone(t, sl.h); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
		for _, op := range ops {
			switch op >> 6 {
			case 0, 1: // submit a job with m from the low bits
				m := 1 + int(op&0x3f)%20
				j := newGate("fuzz", m)
				h, err := s.Submit(j)
				if err != nil {
					break // queue full: legitimate backpressure
				}
				live = append(live, slot{j, h})
			case 2: // finish a running job
				finishRunning(int(op & 0x3f))
			case 3: // step every live job so pending resizes apply
				for _, sl := range live {
					select {
					case sl.j.step <- struct{}{}:
					default:
					}
				}
			}
			check()
		}
		for len(live) > 0 {
			n := len(live)
			finishRunning(0)
			check()
			if len(live) == n {
				// Only queued jobs remain runnable after running ones
				// drained; stepping is not needed — dispatch happens on
				// completion. If nothing is running and nothing started,
				// the dispatcher is wedged.
				t.Fatalf("allocator wedged with %d live jobs and none running", n)
			}
		}
		m := s.Metrics()
		if m.InUse != 0 || m.Queued != 0 || m.Running != 0 {
			t.Fatalf("not idle after all jobs finished: %+v", m)
		}
	})
}
