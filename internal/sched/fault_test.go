package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/parloop"
	"repro/internal/simclock"
)

// TestJobTimeoutOnVirtualClock runs a job that hangs until canceled
// under a run deadline on the virtual clock: the job must reach
// StateTimedOut with cause "timeout", its error must be ErrTimeout,
// and its processors must return to the pool — all without any real
// time passing.
func TestJobTimeoutOnVirtualClock(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	s := New(Config{Procs: 2, QueueDepth: 4, Clock: clk})
	defer s.Close()

	h, err := s.SubmitWithOptions(NewFuncJob("hang", 2, func(g *Grant) error {
		<-g.Context().Done()
		return g.Checkpoint() // reports the cancellation cause
	}), SubmitOptions{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, h, func(st JobStatus) bool { return st.State == StateRunning }, "hang running")

	// The deadline watcher registers on the virtual clock; advancing
	// past the deadline fires it.
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline watcher never registered on the clock")
		}
		time.Sleep(time.Microsecond)
	}
	clk.Advance(time.Minute)

	if err := waitDone(t, h); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Wait = %v, want ErrTimeout", err)
	}
	st := h.Status()
	if st.State != StateTimedOut || st.Cause != CauseTimeout {
		t.Fatalf("status %+v, want timed-out with cause timeout", st)
	}
	m := checkBudget(t, s)
	if m.TimedOut != 1 || m.InUse != 0 || m.Free != 2 {
		t.Fatalf("metrics %+v, want TimedOut 1 and processors reclaimed", m)
	}
	// RunSec is measured on the virtual clock: exactly the minute that
	// was advanced.
	if st.RunSec != 60 {
		t.Fatalf("RunSec = %v, want 60 (virtual)", st.RunSec)
	}
}

// TestTimeoutFreesProcsForQueuedJob is the reclaim half of the
// deadline story: a hung job holding the whole budget times out and
// the queued job behind it gets its processors.
func TestTimeoutFreesProcsForQueuedJob(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	s := New(Config{Procs: 4, QueueDepth: 4, Clock: clk, DefaultTimeout: 10 * time.Second})
	defer s.Close()

	hang, err := s.Submit(NewFuncJob("hang", 4, func(g *Grant) error {
		<-g.Context().Done()
		return g.Context().Err()
	}))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, hang, func(st JobStatus) bool { return st.State == StateRunning }, "hang running")

	next := newGate("next", 4)
	hnext, err := s.Submit(next)
	if err != nil {
		t.Fatal(err)
	}
	if st := hnext.Status(); st.State != StateQueued {
		t.Fatalf("next: %+v, want queued behind the hog", st)
	}

	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline watcher never registered")
		}
		time.Sleep(time.Microsecond)
	}
	clk.Advance(time.Minute)
	if err := waitDone(t, hang); !errors.Is(err, ErrTimeout) {
		t.Fatalf("hang err = %v, want ErrTimeout", err)
	}
	st := waitStatus(t, hnext, func(st JobStatus) bool { return st.State == StateRunning }, "next re-granted")
	if st.Granted != 4 {
		t.Fatalf("next granted %d, want the full reclaimed budget", st.Granted)
	}
	next.finish <- nil
	if err := waitDone(t, hnext); err != nil {
		t.Fatal(err)
	}
	checkBudget(t, s)
}

// TestCancelQueuedReleasesSlotAndCounts is the satellite regression
// test: canceling a job that never started must release its queue
// slot immediately (a new Submit succeeds where it would have hit
// ErrQueueFull) and must be distinguishable in accounting — cause
// canceled-queued, CanceledQueued counter — from a running cancel.
func TestCancelQueuedReleasesSlotAndCounts(t *testing.T) {
	s := New(Config{Procs: 1, QueueDepth: 2})
	defer s.Close()

	running := newGate("running", 1)
	hr, err := s.Submit(running)
	if err != nil {
		t.Fatal(err)
	}
	q1, _ := s.Submit(newGate("q1", 1))
	q2, _ := s.Submit(newGate("q2", 1))
	if _, err := s.Submit(newGate("q3", 1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("queue should be full, got %v", err)
	}

	// Cancel a queued job: slot released, distinct terminal cause.
	if err := s.Cancel(q1.ID()); err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, q1); !errors.Is(err, context.Canceled) {
		t.Fatalf("q1 err = %v, want context.Canceled", err)
	}
	st := q1.Status()
	if st.State != StateCanceled || st.Cause != CauseCanceledQueued {
		t.Fatalf("q1 status %+v, want canceled with cause canceled-queued", st)
	}
	if st.Granted != 0 {
		t.Fatalf("q1 granted %d processors while queued", st.Granted)
	}
	// The slot is free again.
	q3, err := s.Submit(newGate("q3", 1))
	if err != nil {
		t.Fatalf("Submit after queued cancel = %v, want success (slot released)", err)
	}

	m := checkBudget(t, s)
	if m.Canceled != 1 || m.CanceledQueued != 1 {
		t.Fatalf("metrics %+v, want Canceled 1 / CanceledQueued 1", m)
	}

	// A running cancel does NOT bump CanceledQueued.
	if err := s.Cancel(hr.ID()); err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, hr); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if st := hr.Status(); st.Cause != CauseCanceledRunning {
		t.Fatalf("running cancel cause = %v, want canceled-running", st.Cause)
	}
	m = s.Metrics()
	if m.Canceled != 2 || m.CanceledQueued != 1 {
		t.Fatalf("metrics %+v, want Canceled 2 / CanceledQueued 1", m)
	}

	// Canceling a finished job reports ErrTerminal.
	if err := s.Cancel(q1.ID()); !errors.Is(err, ErrTerminal) {
		t.Fatalf("Cancel(finished) = %v, want ErrTerminal", err)
	}
	for _, h := range []*Handle{q2, q3} {
		h.Cancel()
		_ = waitDone(t, h)
	}
}

// TestWorkerPanicInsideRegionFailsJobAndRegrants is the acceptance
// check for panic-safe regions end to end: a worker panic inside a
// parallel region (with teammates committed to a barrier) surfaces as
// a job failure with cause "panic" — not a process crash — and the
// dead job's processors are re-granted to the queued job behind it.
func TestWorkerPanicInsideRegionFailsJobAndRegrants(t *testing.T) {
	s := New(Config{Procs: 4, QueueDepth: 4})
	defer s.Close()

	boom, err := s.Submit(NewFuncJob("boom", 4, func(g *Grant) error {
		g.Team().Region(func(ctx *parloop.WorkerCtx) {
			if ctx.ID() == 1 {
				panic("solver blew up")
			}
			// Teammates head into a barrier the dead worker will never
			// reach — the panic must break it, not deadlock the team.
			ctx.Barrier()
		})
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	queued := newGate("queued", 4)
	hq, err := s.Submit(queued)
	if err != nil {
		t.Fatal(err)
	}

	if werr := waitDone(t, boom); werr == nil {
		t.Fatal("want error from panicking job")
	}
	st := boom.Status()
	if st.State != StateFailed || st.Cause != CausePanic {
		t.Fatalf("boom status %+v, want failed with cause panic", st)
	}
	if st.Err == "" {
		t.Fatal("boom status carries no error text")
	}

	// The panicking job's processors go to the queued job.
	stq := waitStatus(t, hq, func(st JobStatus) bool { return st.State == StateRunning }, "queued job re-granted")
	if stq.Granted != 4 {
		t.Fatalf("queued job granted %d, want the reclaimed 4", stq.Granted)
	}
	queued.finish <- nil
	if err := waitDone(t, hq); err != nil {
		t.Fatal(err)
	}
	m := checkBudget(t, s)
	if m.Failed != 1 || m.Panics != 1 || m.Completed != 1 {
		t.Fatalf("metrics %+v, want Failed 1 / Panics 1 / Completed 1", m)
	}
}

// TestDefaultTimeoutAppliesAndOptOut checks Config.DefaultTimeout is
// inherited by plain Submits and that a negative per-job timeout opts
// out of the deadline entirely.
func TestDefaultTimeoutAppliesAndOptOut(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	s := New(Config{Procs: 2, QueueDepth: 4, Clock: clk, DefaultTimeout: time.Second})
	defer s.Close()

	// Opted-out job: hangs across a huge clock advance, then finishes
	// normally when released.
	release := make(chan struct{})
	free, err := s.SubmitWithOptions(NewFuncJob("free", 1, func(g *Grant) error {
		<-release
		return nil
	}), SubmitOptions{Timeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Inherited-deadline job.
	hang, err := s.Submit(NewFuncJob("hang", 1, func(g *Grant) error {
		<-g.Context().Done()
		return g.Checkpoint()
	}))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, hang, func(st JobStatus) bool { return st.State == StateRunning }, "hang running")

	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never registered")
		}
		time.Sleep(time.Microsecond)
	}
	clk.Advance(time.Hour)
	if err := waitDone(t, hang); !errors.Is(err, ErrTimeout) {
		t.Fatalf("hang err = %v, want ErrTimeout (inherited default)", err)
	}
	close(release)
	if err := waitDone(t, free); err != nil {
		t.Fatalf("opted-out job err = %v, want nil despite the hour-long clock jump", err)
	}
	m := checkBudget(t, s)
	if m.TimedOut != 1 || m.Completed != 1 {
		t.Fatalf("metrics %+v, want TimedOut 1 / Completed 1", m)
	}
}
