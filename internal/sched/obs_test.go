package sched

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestTracerSeesGrantAndRegionEvents runs one parallel job with the
// tracer enabled and checks the scheduler- and team-level events come
// out tagged with the job's name.
func TestTracerSeesGrantAndRegionEvents(t *testing.T) {
	tr := obs.NewTracer(4096, nil)
	tr.Enable()
	s := New(Config{Procs: 4, Tracer: tr})
	defer s.Close()

	job := NewFuncJob("traced", 4, func(g *Grant) error {
		for step := 0; step < 3; step++ {
			if err := g.Checkpoint(); err != nil {
				return err
			}
			g.Team().For(8, func(i int) {})
		}
		return nil
	})
	h, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	var grants, regions, chunks int
	for _, e := range tr.Events() {
		if e.Name != "traced" {
			t.Errorf("event %v labeled %q, want job name", e.Kind, e.Name)
		}
		switch e.Kind {
		case obs.KindGrant:
			grants++
			if e.A != 4 || e.B != 4 {
				t.Errorf("grant event A=%d B=%d, want granted 4 of requested 4", e.A, e.B)
			}
		case obs.KindRegionEnd:
			regions++
		case obs.KindChunk:
			chunks++
		}
	}
	if grants != 1 {
		t.Errorf("grant events = %d, want 1", grants)
	}
	if regions != 3 {
		t.Errorf("region-end events = %d, want 3 (one per step)", regions)
	}
	if chunks == 0 {
		t.Error("no chunk spans recorded")
	}
}

// TestPreemptEmitsEventAndCounter drives the shrink-to-admit path and
// checks the preempt trace event and counter fire.
func TestPreemptEmitsEventAndCounter(t *testing.T) {
	tr := obs.NewTracer(4096, nil)
	tr.Enable()
	s := New(Config{Procs: 4, QueueDepth: 8, ShrinkToAdmit: true, Tracer: tr})
	defer s.Close()

	release := make(chan struct{})
	big, err := s.Submit(NewFuncJob("big", 4, func(g *Grant) error {
		for {
			select {
			case <-release:
				return nil
			default:
			}
			if err := g.Checkpoint(); err != nil {
				return err
			}
			g.Team().For(4, func(i int) {})
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	// With all 4 processors held, a queued job forces a shrink request.
	small, err := s.Submit(NewFuncJob("small", 1, func(g *Grant) error { return nil }))
	if err != nil {
		t.Fatal(err)
	}
	if err := small.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	close(release)
	if err := big.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	m := s.Metrics()
	if m.Preempts == 0 {
		t.Error("no preempts counted")
	}
	if m.Resizes == 0 {
		t.Error("no resizes counted")
	}
	var preempts, resizes int
	for _, e := range tr.Events() {
		switch e.Kind {
		case obs.KindPreempt:
			preempts++
			if e.Name != "big" {
				t.Errorf("preempt victim %q, want big", e.Name)
			}
		case obs.KindResize:
			resizes++
		}
	}
	if preempts == 0 || resizes == 0 {
		t.Errorf("trace: %d preempts, %d resizes, want both > 0", preempts, resizes)
	}
}

// TestMetricsMatchRegistry checks that the JSON Metrics snapshot and
// the Prometheus rendering agree — they are two views of one set of
// atomics.
func TestMetricsMatchRegistry(t *testing.T) {
	s := New(Config{Procs: 2})
	defer s.Close()
	for i := 0; i < 3; i++ {
		h, err := s.Submit(NewFuncJob("ok", 2, func(g *Grant) error {
			g.Team().For(4, func(int) {})
			return nil
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	m := s.Metrics()
	if m.Submitted != 3 || m.Completed != 3 {
		t.Fatalf("metrics %+v, want 3 submitted and completed", m)
	}
	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"sched_submitted_total 3",
		"sched_completed_total 3",
		"sched_procs 2",
		"sched_queue_depth 0",
		"sched_running_jobs 0",
		`sched_grant_procs_bucket{le="2"} 3`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("prometheus output missing %q:\n%s", line, out)
		}
	}
	if m.SyncEvents == 0 {
		t.Error("no sync events recorded for parallel jobs")
	}
}
