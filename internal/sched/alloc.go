package sched

import (
	"fmt"

	"repro/internal/model"
)

// Allocator decides how much of a divisible resource a job with m
// units of parallelism receives from an available pool. It abstracts
// the paper's stair-step grant rule so the same policy runs at two
// levels of the system: the node scheduler granting processors to jobs
// (PlateauAllocator, the leaf), and the cluster coordinator granting
// worker daemons to a sharded multi-zone solve (internal/cluster's
// shard planner), where m is the zone count and the "processors" are
// whole f3dd instances. The stair-step argument is scale-free: ceil
// division governs both zones-per-worker and units-per-processor, so
// any grant off a plateau wastes a node exactly the way it wastes a
// core.
type Allocator interface {
	// Grant returns the amount to allocate to a job with m units of
	// parallelism when avail units of resource are free (0 when avail
	// <= 0, never more than min(m, avail)).
	Grant(m, avail int) int
	// Lower returns the largest efficient allocation strictly below
	// granted for a job with m units, or 0 when granted is already
	// minimal — the shrink step a scheduler proposes under pressure.
	Lower(m, granted int) int
}

// PlateauAllocator is the paper's stair-step policy (Table 3,
// Figure 1): every grant is rounded down to the left edge of its
// efficiency plateau. It is the default allocator of the node
// scheduler and the leaf policy under the cluster coordinator.
type PlateauAllocator struct{}

// Grant implements Allocator via PlateauGrant.
func (PlateauAllocator) Grant(m, avail int) int { return PlateauGrant(m, avail) }

// Lower implements Allocator via NextLowerPlateau.
func (PlateauAllocator) Lower(m, granted int) int { return NextLowerPlateau(m, granted) }

// PlateauGrant returns the processor grant for a job with m units of
// loop-level parallelism when avail processors are free: the smallest
// processor count delivering the best stair-step speedup reachable
// within avail. Equivalently, it rounds p = min(m, avail) down to the
// left edge of its plateau:
//
//	k = ceil(m/p)            // max units per processor (Table 3)
//	grant = ceil(m/k)        // fewest processors achieving that k
//
// The grant is never off-plateau — ceil(m/grant) < ceil(m/(grant-1))
// for every grant > 1 — so no granted processor is wasted: by the
// paper's model, StairStepSpeedup(m, grant) equals
// StairStepSpeedup(m, min(m, avail)) exactly, and the avail-grant
// processors left in the pool are free to serve other jobs. avail <= 0
// returns 0 (nothing to grant).
func PlateauGrant(m, avail int) int {
	if m < 1 {
		panic(fmt.Sprintf("sched: PlateauGrant needs m >= 1, got %d", m))
	}
	if avail <= 0 {
		return 0
	}
	p := m
	if avail < p {
		p = avail
	}
	k := (m + p - 1) / p
	return (m + k - 1) / k
}

// NextLowerPlateau returns the largest plateau grant strictly below the
// current grant for a job with m units of parallelism, or 0 if the
// current grant is already 1 (nothing left to give back). It is the
// shrink step the scheduler proposes when the queue is blocked: the
// victim drops exactly one stair-step, the smallest sacrifice of its
// own speedup that frees processors for the queue head.
func NextLowerPlateau(m, granted int) int {
	if granted <= 1 {
		return 0
	}
	return PlateauGrant(m, granted-1)
}

// Plateaus returns the efficient grant sizes for a job with m units of
// parallelism on a machine with maxProcs processors — a thin proxy for
// model.PlateauProcs so callers of the scheduler need not import the
// model package.
func Plateaus(m, maxProcs int) []int {
	return model.PlateauProcs(m, maxProcs)
}
