package sched

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// TestPlateauGrantNeverOffPlateau is the allocator's core guarantee:
// for every (m, avail), the grant is either 0 (no processors), 1, or a
// processor count at the left edge of a stair-step — adding the grant's
// last processor strictly reduced ceil(m/P). No job is ever granted a
// P where ceil(M/P) == ceil(M/(P-1)).
func TestPlateauGrantNeverOffPlateau(t *testing.T) {
	ceil := func(a, b int) int { return (a + b - 1) / b }
	for m := 1; m <= 200; m++ {
		for avail := 0; avail <= 260; avail++ {
			g := PlateauGrant(m, avail)
			if avail == 0 {
				if g != 0 {
					t.Fatalf("PlateauGrant(%d, 0) = %d, want 0", m, g)
				}
				continue
			}
			if g < 1 || g > m || g > avail {
				t.Fatalf("PlateauGrant(%d, %d) = %d out of range", m, avail, g)
			}
			if g > 1 && ceil(m, g) == ceil(m, g-1) {
				t.Fatalf("PlateauGrant(%d, %d) = %d is off-plateau: ceil(m/P)=%d == ceil(m/(P-1))",
					m, avail, g, ceil(m, g))
			}
		}
	}
}

// TestPlateauGrantLosesNoSpeedup verifies the grant delivers exactly
// the speedup of the naive grant min(m, avail): rounding down to the
// plateau costs nothing by the paper's model.
func TestPlateauGrantLosesNoSpeedup(t *testing.T) {
	for m := 1; m <= 150; m++ {
		for avail := 1; avail <= 200; avail++ {
			g := PlateauGrant(m, avail)
			naive := m
			if avail < naive {
				naive = avail
			}
			if got, want := model.StairStepSpeedup(m, g), model.StairStepSpeedup(m, naive); got != want {
				t.Fatalf("PlateauGrant(%d, %d) = %d: speedup %g != naive grant %d speedup %g",
					m, avail, g, got, naive, want)
			}
		}
	}
}

// TestPlateauGrantIsMemberOfPlateauProcs cross-checks the allocator
// against the model package's plateau enumeration.
func TestPlateauGrantIsMemberOfPlateauProcs(t *testing.T) {
	for m := 1; m <= 120; m++ {
		plateaus := make(map[int]bool)
		for _, p := range model.PlateauProcs(m, m) {
			plateaus[p] = true
		}
		for avail := 1; avail <= m+10; avail++ {
			if g := PlateauGrant(m, avail); !plateaus[g] {
				t.Fatalf("PlateauGrant(%d, %d) = %d is not in PlateauProcs %v",
					m, avail, g, model.PlateauProcs(m, m))
			}
		}
	}
}

// TestPlateauGrantTable3 pins the paper's N = 15 example: the grants
// for avail = 1..15 follow Table 3's plateau left edges.
func TestPlateauGrantTable3(t *testing.T) {
	want := []int{1, 2, 3, 4, 5, 5, 5, 8, 8, 8, 8, 8, 8, 8, 15}
	got := make([]int, 15)
	for avail := 1; avail <= 15; avail++ {
		got[avail-1] = PlateauGrant(15, avail)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlateauGrant(15, 1..15) = %v, want %v", got, want)
	}
}

func TestNextLowerPlateau(t *testing.T) {
	cases := []struct{ m, granted, want int }{
		{15, 15, 8},
		{15, 8, 5},
		{15, 5, 4},
		{15, 2, 1},
		{15, 1, 0}, // nothing below 1
		{1, 1, 0},
		{7, 4, 3},
	}
	for _, c := range cases {
		if got := NextLowerPlateau(c.m, c.granted); got != c.want {
			t.Errorf("NextLowerPlateau(%d, %d) = %d, want %d", c.m, c.granted, got, c.want)
		}
	}
}

func TestPlateausProxy(t *testing.T) {
	if got, want := Plateaus(15, 15), model.PlateauProcs(15, 15); !reflect.DeepEqual(got, want) {
		t.Errorf("Plateaus(15,15) = %v, want %v", got, want)
	}
}

func TestPlateauGrantPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PlateauGrant(0, 4) should panic")
		}
	}()
	PlateauGrant(0, 4)
}
