// Package sched is a space-sharing job scheduler for loop-parallel
// solver runs: it packs concurrent jobs onto a fixed processor budget
// the way the paper's stair-step model (Table 3, Figure 1) says an SMP
// should be shared. A job with M units of loop-level parallelism only
// benefits from processor counts on a stair-step plateau — any grant P
// with ceil(M/P) == ceil(M/(P-1)) wastes processors without buying
// speedup — so the allocator rounds every grant down to the nearest
// plateau (PlateauGrant) and hands the spare processors to the next
// job in the queue. That is the paper's throughput-versus-latency
// argument for the Origin 2000 turned into an admission policy.
//
// Jobs are queued FIFO with a bounded queue (backpressure), run on
// parloop teams created per grant, and may be resized while running:
// the scheduler revises a job's grant (growing it as the queue drains,
// optionally shrinking it to admit new work) and the job applies the
// revision cooperatively at its next Checkpoint, between parallel
// regions. Jackson & Agathokleous's dynamic loop parallelisation
// (PAPERS.md) is the precedent: runtime-adaptive thread counts beat
// static ones when the machine is shared.
package sched

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/parloop"
)

// Job is a schedulable unit of solver work.
//
// Parallelism reports M, the units of loop-level parallelism of the
// job's dominant parallel loop (for the paper's F3D zones, the maximum
// zone dimension — the M whose plateaus sit at roughly M/5, M/4, M/3,
// M/2 and M). The scheduler never grants more than M processors and
// only grants plateau-efficient counts.
//
// Run executes the job on the granted team. Well-behaved jobs call
// g.Checkpoint() between parallel regions (typically once per time
// step) so the scheduler can apply grant resizes and cancellation; a
// job that never checkpoints still runs correctly but holds its
// initial grant until it returns.
type Job interface {
	Name() string
	Parallelism() int
	Run(g *Grant) error
}

// Grant is a job's lease on processors: the team to run loops on plus
// the cooperative control surface back into the scheduler.
type Grant struct {
	s    *Scheduler
	rec  *record
	team *parloop.Team
}

// Team returns the parloop team sized to the current grant. The team
// may be resized by Checkpoint; callers must not cache Workers()
// across checkpoints.
func (g *Grant) Team() *parloop.Team { return g.team }

// Procs returns the job's currently applied processor grant.
func (g *Grant) Procs() int {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.rec.granted
}

// Context returns the job's cancellation context. It is canceled by
// Scheduler.Cancel and by Scheduler.Close.
func (g *Grant) Context() context.Context { return g.rec.ctx }

// Checkpoint applies any pending grant resize to the team and reports
// cancellation. It must be called between parallel regions (never
// while a region is in flight on the team). On cancellation it returns
// the cancellation cause (ErrTimeout when the job's deadline expired,
// context.Canceled for an explicit cancel); jobs should return that
// error from Run.
func (g *Grant) Checkpoint() error {
	if g.rec.ctx.Err() != nil {
		return context.Cause(g.rec.ctx)
	}
	s := g.s
	s.mu.Lock()
	rec := g.rec
	if rec.target != rec.granted {
		old := rec.granted
		// Resize between regions is safe: Checkpoint runs on the job's
		// own goroutine, the only opener of regions on this team.
		g.team.Resize(rec.target)
		rec.granted = rec.target
		rec.resizes++
		s.ctrResizes.Inc()
		s.emit(obs.KindResize, rec.job.Name(), int64(old), int64(rec.granted), int64(rec.requested))
		s.hGrant.Observe(float64(rec.granted))
		if rec.granted < old {
			// A shrink returns processors to the pool only once applied;
			// the freed capacity can admit the queue head right away.
			s.free += old - rec.granted
			s.dispatchLocked()
		}
	}
	s.mu.Unlock()
	return nil
}

// State is a job's lifecycle state.
type State int

const (
	// StateQueued: admitted, waiting for processors.
	StateQueued State = iota
	// StateRunning: granted processors and executing.
	StateRunning
	// StateDone: Run returned nil.
	StateDone
	// StateFailed: Run returned an error (or panicked).
	StateFailed
	// StateCanceled: canceled while queued, or Run ended after
	// cancellation.
	StateCanceled
	// StateTimedOut: the job's run deadline expired before Run
	// finished; the scheduler canceled it with ErrTimeout.
	StateTimedOut
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	case StateTimedOut:
		return "timed-out"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// MarshalJSON encodes the state as its string name.
func (s State) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON decodes a state from its string name, so JobStatus
// round-trips through the daemon's JSON API.
func (s *State) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for _, c := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateTimedOut} {
		if c.String() == name {
			*s = c
			return nil
		}
	}
	return fmt.Errorf("sched: unknown state %q", name)
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateTimedOut
}

// Cause records why a job left the running (or queued) state — the
// failure taxonomy the chaos harness asserts against. CauseNone means
// the job completed normally (or has not finished yet).
type Cause int

const (
	// CauseNone: still in flight, or completed successfully.
	CauseNone Cause = iota
	// CauseError: Run returned a non-nil error.
	CauseError
	// CausePanic: Run (or a worker inside one of its parallel regions)
	// panicked; the panic was converted into a job error.
	CausePanic
	// CauseTimeout: the run deadline expired and the scheduler
	// canceled the job.
	CauseTimeout
	// CauseCanceledQueued: canceled before it ever received
	// processors; its queue slot was released immediately.
	CauseCanceledQueued
	// CauseCanceledRunning: canceled while running; it stopped at its
	// next checkpoint (or context poll).
	CauseCanceledRunning
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseError:
		return "error"
	case CausePanic:
		return "panic"
	case CauseTimeout:
		return "timeout"
	case CauseCanceledQueued:
		return "canceled-queued"
	case CauseCanceledRunning:
		return "canceled-running"
	default:
		return fmt.Sprintf("Cause(%d)", int(c))
	}
}

// MarshalJSON encodes the cause as its string name.
func (c Cause) MarshalJSON() ([]byte, error) { return json.Marshal(c.String()) }

// UnmarshalJSON decodes a cause from its string name.
func (c *Cause) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for _, k := range []Cause{CauseNone, CauseError, CausePanic, CauseTimeout, CauseCanceledQueued, CauseCanceledRunning} {
		if k.String() == name {
			*c = k
			return nil
		}
	}
	return fmt.Errorf("sched: unknown cause %q", name)
}

// JobStatus is a point-in-time snapshot of a job's lifecycle and
// accounting: the paper-relevant allocation facts (requested M versus
// granted P, plateau speedup) plus queueing and synchronization stats.
type JobStatus struct {
	ID    uint64 `json:"id"`
	Name  string `json:"name"`
	State State  `json:"state"`
	// Requested is the job's parallelism M (the most processors it can
	// use).
	Requested int `json:"requested"`
	// Granted is the current (or final) processor grant, always a
	// stair-step plateau of Requested.
	Granted int `json:"granted"`
	// Speedup is the stair-step model's predicted speedup at the
	// current grant: M/ceil(M/P).
	Speedup float64 `json:"speedup"`
	// Resizes counts applied grant changes.
	Resizes int `json:"resizes"`
	// Cause explains a terminal failure state ("none" while in flight
	// or after success): error, panic, timeout, canceled-queued or
	// canceled-running.
	Cause Cause `json:"cause,omitempty"`
	// SyncEvents counts the fork-join regions the job's team has run.
	SyncEvents uint64 `json:"sync_events"`
	// WaitSec and RunSec are queue wait and execution time in seconds.
	WaitSec float64 `json:"wait_sec"`
	RunSec  float64 `json:"run_sec"`
	Err     string  `json:"error,omitempty"`
}

// record is the scheduler's internal per-job bookkeeping. All mutable
// fields are guarded by Scheduler.mu except where noted.
type record struct {
	id  uint64
	job Job

	state     State
	cause     Cause
	requested int
	granted   int // applied grant (0 while queued)
	target    int // desired grant; != granted means a resize is pending
	resizes   int
	timeout   time.Duration // run deadline; 0 means none

	ctx    context.Context
	cancel context.CancelCauseFunc
	done   chan struct{} // closed when the job reaches a terminal state

	team *parloop.Team // set once running; teams are created per grant

	submitted  time.Time
	started    time.Time
	finished   time.Time
	syncEvents uint64 // captured from the team at completion
	err        error
}

// acct returns the processors accounted against the budget for this
// record: a pending grow is deducted from the pool at decision time, a
// pending shrink is credited only once applied, so the accounted value
// is the max of the two.
func (r *record) acct() int {
	if r.target > r.granted {
		return r.target
	}
	return r.granted
}

// snapshotLocked builds a JobStatus; caller holds Scheduler.mu.
func (r *record) snapshotLocked(now time.Time) JobStatus {
	st := JobStatus{
		ID:        r.id,
		Name:      r.job.Name(),
		State:     r.state,
		Cause:     r.cause,
		Requested: r.requested,
		Granted:   r.granted,
		Resizes:   r.resizes,
	}
	if r.granted >= 1 {
		st.Speedup = float64(r.requested) / float64((r.requested+r.granted-1)/r.granted)
	}
	switch {
	case r.state == StateQueued:
		st.WaitSec = now.Sub(r.submitted).Seconds()
	case r.started.IsZero():
		// canceled while queued
		st.WaitSec = r.finished.Sub(r.submitted).Seconds()
	default:
		st.WaitSec = r.started.Sub(r.submitted).Seconds()
		end := r.finished
		if r.state == StateRunning {
			end = now
		}
		st.RunSec = end.Sub(r.started).Seconds()
	}
	if r.state == StateRunning && r.team != nil {
		st.SyncEvents = r.team.SyncEvents()
	} else {
		st.SyncEvents = r.syncEvents
	}
	if r.err != nil {
		st.Err = r.err.Error()
	}
	return st
}
