package sched

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
)

// gateJob is a deterministically controllable job: the test drives its
// checkpoints (step) and completion (finish) over channels, so every
// scheduler transition happens at a point the test chose.
type gateJob struct {
	name    string
	m       int
	started chan struct{}
	step    chan struct{}
	finish  chan error
}

func newGate(name string, m int) *gateJob {
	return &gateJob{
		name:    name,
		m:       m,
		started: make(chan struct{}),
		step:    make(chan struct{}, 64),
		finish:  make(chan error, 1),
	}
}

func (j *gateJob) Name() string     { return j.name }
func (j *gateJob) Parallelism() int { return j.m }
func (j *gateJob) Run(g *Grant) error {
	close(j.started)
	for {
		select {
		case <-j.step:
			if err := g.Checkpoint(); err != nil {
				return err
			}
		case err := <-j.finish:
			return err
		case <-g.Context().Done():
			return g.Context().Err()
		}
	}
}

func waitStatus(t *testing.T, h *Handle, ok func(JobStatus) bool, what string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := h.Status()
		if ok(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; last status %+v", what, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func waitDone(t *testing.T, h *Handle) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return h.Wait(ctx)
}

// checkBudget asserts the accounting invariant InUse + Free == Procs
// and the budget ceiling MaxInUse <= Procs.
func checkBudget(t *testing.T, s *Scheduler) Metrics {
	t.Helper()
	m := s.Metrics()
	if m.InUse+m.Free != m.Procs {
		t.Fatalf("budget leak: InUse %d + Free %d != Procs %d", m.InUse, m.Free, m.Procs)
	}
	if m.MaxInUse > m.Procs {
		t.Fatalf("budget exceeded: MaxInUse %d > Procs %d", m.MaxInUse, m.Procs)
	}
	return m
}

// checkOnPlateau asserts a running job's grant sits on a stair-step
// plateau of its requested parallelism.
func checkOnPlateau(t *testing.T, st JobStatus) {
	t.Helper()
	if st.State != StateRunning {
		return
	}
	for _, p := range model.PlateauProcs(st.Requested, st.Requested) {
		if st.Granted == p {
			return
		}
	}
	t.Fatalf("job %q granted %d, off every plateau of M=%d (%v)",
		st.Name, st.Granted, st.Requested, model.PlateauProcs(st.Requested, st.Requested))
}

func TestPlateauPackingAndReclaim(t *testing.T) {
	s := New(Config{Procs: 7, QueueDepth: 8})
	defer s.Close()

	a := newGate("a", 15)
	ha, err := s.Submit(a)
	if err != nil {
		t.Fatal(err)
	}
	// PlateauGrant(15, 7) = 5: granting 6 or 7 buys no speedup over 5.
	if st := ha.Status(); st.State != StateRunning || st.Granted != 5 {
		t.Fatalf("a: %+v, want running with grant 5", st)
	}
	checkOnPlateau(t, ha.Status())

	b := newGate("b", 9)
	hb, err := s.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	// Two processors remain; PlateauGrant(9, 2) = 2.
	if st := hb.Status(); st.State != StateRunning || st.Granted != 2 {
		t.Fatalf("b: %+v, want running with grant 2", st)
	}

	c := newGate("c", 3)
	hc, err := s.Submit(c)
	if err != nil {
		t.Fatal(err)
	}
	if st := hc.Status(); st.State != StateQueued {
		t.Fatalf("c: %+v, want queued (no free processors)", st)
	}
	m := checkBudget(t, s)
	if m.InUse != 7 || m.Queued != 1 || m.Running != 2 {
		t.Fatalf("metrics %+v, want InUse 7, Queued 1, Running 2", m)
	}

	// Completing a releases 5 processors; c is dispatched with its full
	// request (PlateauGrant(3, 5) = 3).
	a.finish <- nil
	if err := waitDone(t, ha); err != nil {
		t.Fatalf("a: %v", err)
	}
	st := waitStatus(t, hc, func(st JobStatus) bool { return st.State == StateRunning }, "c running")
	if st.Granted != 3 {
		t.Fatalf("c granted %d, want 3", st.Granted)
	}
	checkBudget(t, s)

	b.finish <- nil
	c.finish <- nil
	if err := waitDone(t, hb); err != nil {
		t.Fatalf("b: %v", err)
	}
	if err := waitDone(t, hc); err != nil {
		t.Fatalf("c: %v", err)
	}
	m = checkBudget(t, s)
	if m.Completed != 3 || m.InUse != 0 || m.Free != 7 {
		t.Fatalf("final metrics %+v, want 3 completed and an idle budget", m)
	}
	if st := ha.Status(); st.SyncEvents != 0 {
		// a never ran a region; the counter must still be wired.
		t.Logf("a sync events: %d", st.SyncEvents)
	}
}

func TestGrowAsQueueDrains(t *testing.T) {
	s := New(Config{Procs: 8, QueueDepth: 8, Grow: true})
	defer s.Close()

	b := newGate("b", 5)
	hb, _ := s.Submit(b)
	if st := hb.Status(); st.Granted != 5 {
		t.Fatalf("b granted %d, want 5", st.Granted)
	}
	a := newGate("a", 8)
	ha, _ := s.Submit(a)
	// Three processors were free; PlateauGrant(8, 3) = 3.
	if st := ha.Status(); st.State != StateRunning || st.Granted != 3 {
		t.Fatalf("a: %+v, want running with grant 3", st)
	}

	// b completes; the queue is empty, so the scheduler offers a the
	// freed processors: PlateauGrant(8, 3+5) = 8, a full-plateau grow.
	b.finish <- nil
	if err := waitDone(t, hb); err != nil {
		t.Fatal(err)
	}
	// The grow is pending until a checkpoints; the budget already
	// accounts for it.
	m := checkBudget(t, s)
	if m.InUse != 8 {
		t.Fatalf("pending grow not accounted: InUse %d, want 8", m.InUse)
	}
	a.step <- struct{}{}
	st := waitStatus(t, ha, func(st JobStatus) bool { return st.Granted == 8 }, "a grown to 8")
	if st.Resizes != 1 {
		t.Fatalf("a resizes = %d, want 1", st.Resizes)
	}
	if m := checkBudget(t, s); m.Resizes != 1 {
		t.Fatalf("metrics resizes = %d, want 1", m.Resizes)
	}
	a.finish <- nil
	if err := waitDone(t, ha); err != nil {
		t.Fatal(err)
	}
}

func TestGrowSkipsWithinPlateau(t *testing.T) {
	// m=15 on 12 processors: the 8-processor plateau extends through
	// 14, so freeing 4 more processors (8 -> 12 available) must NOT
	// grow the job — those processors buy zero speedup.
	s := New(Config{Procs: 12, QueueDepth: 8, Grow: true})
	defer s.Close()

	a := newGate("a", 15)
	ha, _ := s.Submit(a)
	if st := ha.Status(); st.Granted != 8 {
		t.Fatalf("a granted %d, want 8 (PlateauGrant(15, 12))", st.Granted)
	}
	b := newGate("b", 4)
	hb, _ := s.Submit(b)
	if st := hb.Status(); st.Granted != 4 {
		t.Fatalf("b granted %d, want 4", st.Granted)
	}
	b.finish <- nil
	if err := waitDone(t, hb); err != nil {
		t.Fatal(err)
	}
	a.step <- struct{}{}
	// Give any (wrong) grow a chance to land, then confirm none did.
	time.Sleep(10 * time.Millisecond)
	if st := ha.Status(); st.Granted != 8 || st.Resizes != 0 {
		t.Fatalf("a was grown within a plateau: %+v", st)
	}
	if m := checkBudget(t, s); m.Free != 4 {
		t.Fatalf("free = %d, want 4 idle processors (not worth granting)", m.Free)
	}
	a.finish <- nil
	if err := waitDone(t, ha); err != nil {
		t.Fatal(err)
	}
}

func TestShrinkToAdmit(t *testing.T) {
	s := New(Config{Procs: 4, QueueDepth: 8, ShrinkToAdmit: true})
	defer s.Close()

	a := newGate("a", 4)
	ha, _ := s.Submit(a)
	if st := ha.Status(); st.Granted != 4 {
		t.Fatalf("a granted %d, want 4", st.Granted)
	}
	b := newGate("b", 2)
	hb, _ := s.Submit(b)
	if st := hb.Status(); st.State != StateQueued {
		t.Fatalf("b: %+v, want queued", st)
	}
	// The shrink request targets a (largest grant). It applies at a's
	// next checkpoint: a drops to the next plateau (2), freeing room
	// for b.
	a.step <- struct{}{}
	stb := waitStatus(t, hb, func(st JobStatus) bool { return st.State == StateRunning }, "b admitted")
	if stb.Granted != 2 {
		t.Fatalf("b granted %d, want 2", stb.Granted)
	}
	sta := ha.Status()
	if sta.Granted != 2 || sta.Resizes != 1 {
		t.Fatalf("a after shrink: %+v, want grant 2 with 1 resize", sta)
	}
	checkOnPlateau(t, sta)
	checkOnPlateau(t, stb)
	checkBudget(t, s)

	a.finish <- nil
	b.finish <- nil
	if err := waitDone(t, ha); err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, hb); err != nil {
		t.Fatal(err)
	}
}

func TestQueueBackpressure(t *testing.T) {
	s := New(Config{Procs: 1, QueueDepth: 2})
	defer s.Close()

	a := newGate("a", 1)
	ha, _ := s.Submit(a)
	if st := ha.Status(); st.State != StateRunning {
		t.Fatalf("a: %+v", st)
	}
	for _, name := range []string{"b", "c"} {
		if _, err := s.Submit(newGate(name, 1)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := s.Submit(newGate("d", 1)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("d: err = %v, want ErrQueueFull", err)
	}
	if m := s.Metrics(); m.Rejected != 1 || m.Queued != 2 {
		t.Fatalf("metrics %+v, want Rejected 1, Queued 2", m)
	}
	s.Close() // cancels the queue and the running gate
}

func TestCancelQueuedAndRunning(t *testing.T) {
	s := New(Config{Procs: 2, QueueDepth: 8})
	defer s.Close()

	a := newGate("a", 2)
	ha, _ := s.Submit(a)
	b := newGate("b", 2)
	hb, _ := s.Submit(b)
	if st := hb.Status(); st.State != StateQueued {
		t.Fatalf("b: %+v, want queued", st)
	}

	// Cancel the queued job: immediate, no processors were held.
	if err := s.Cancel(hb.ID()); err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, hb); !errors.Is(err, context.Canceled) {
		t.Fatalf("b err = %v, want context.Canceled", err)
	}
	if st := hb.Status(); st.State != StateCanceled {
		t.Fatalf("b: %+v, want canceled", st)
	}

	// Cancel the running job: cooperative, lands via its context.
	if err := s.Cancel(ha.ID()); err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, ha); !errors.Is(err, context.Canceled) {
		t.Fatalf("a err = %v, want context.Canceled", err)
	}
	m := checkBudget(t, s)
	if m.Canceled != 2 || m.InUse != 0 {
		t.Fatalf("metrics %+v, want 2 canceled and an idle budget", m)
	}
	if err := s.Cancel(9999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(9999) = %v, want ErrNotFound", err)
	}
}

func TestJobPanicBecomesFailure(t *testing.T) {
	s := New(Config{Procs: 2, QueueDepth: 4})
	defer s.Close()
	h, err := s.Submit(NewFuncJob("boom", 2, func(g *Grant) error {
		panic("kaboom")
	}))
	if err != nil {
		t.Fatal(err)
	}
	werr := waitDone(t, h)
	if werr == nil {
		t.Fatal("want error from panicking job")
	}
	st := h.Status()
	if st.State != StateFailed || st.Err == "" {
		t.Fatalf("status %+v, want failed with error text", st)
	}
	if m := checkBudget(t, s); m.Failed != 1 || m.InUse != 0 {
		t.Fatalf("metrics %+v, want Failed 1 and processors reclaimed", m)
	}
}

func TestDrainStopsAdmissionAndWaits(t *testing.T) {
	s := New(Config{Procs: 2, QueueDepth: 4})
	a := newGate("a", 2)
	ha, _ := s.Submit(a)

	drained := make(chan error, 1)
	go func() {
		drained <- s.Drain(context.Background())
	}()
	// Admission must close promptly once draining. Submissions that
	// race ahead of the draining flag are admitted; cancel them so the
	// drain can complete.
	deadline := time.Now().Add(5 * time.Second)
	var raced []*Handle
	for {
		h, err := s.Submit(newGate("late", 1))
		if errors.Is(err, ErrDraining) {
			break
		}
		if err == nil {
			raced = append(raced, h)
		}
		if time.Now().After(deadline) {
			t.Fatal("Submit never started returning ErrDraining")
		}
		time.Sleep(time.Millisecond)
	}
	for _, h := range raced {
		h.Cancel()
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the running job finished", err)
	default:
	}
	a.finish <- nil
	if err := waitDone(t, ha); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after the last job finished")
	}
	s.Close()
}

func TestDrainHonorsContext(t *testing.T) {
	s := New(Config{Procs: 1, QueueDepth: 4})
	a := newGate("a", 1)
	_, _ = s.Submit(a)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}
	s.Close()
}

// TestRaggedMixInvariants drives a randomized (but seeded) mix of job
// sizes through a small budget and asserts, at every transition the
// test can observe, that grants are plateau-efficient and the budget
// is never exceeded.
func TestRaggedMixInvariants(t *testing.T) {
	const procs = 6
	s := New(Config{Procs: procs, QueueDepth: 64, Grow: true, ShrinkToAdmit: true})
	defer s.Close()
	rng := rand.New(rand.NewSource(42))

	type slot struct {
		j *gateJob
		h *Handle
	}
	var live []slot
	// finishOne completes a randomly chosen RUNNING job (finishing a
	// queued job would deadlock: it cannot start until someone else
	// frees processors). While any jobs are live, at least one is
	// running — the dispatcher always admits the queue head when
	// processors are free.
	finishOne := func() {
		var runnable []int
		for i, sl := range live {
			if sl.h.Status().State == StateRunning {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) == 0 {
			t.Fatal("no running job among live jobs")
		}
		i := runnable[rng.Intn(len(runnable))]
		sl := live[i]
		sl.j.finish <- nil
		if err := waitDone(t, sl.h); err != nil {
			t.Fatal(err)
		}
		live = append(live[:i], live[i+1:]...)
	}
	for round := 0; round < 40; round++ {
		m := 1 + rng.Intn(20)
		j := newGate("job", m)
		h, err := s.Submit(j)
		if errors.Is(err, ErrQueueFull) {
			finishOne()
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, slot{j, h})
		checkBudget(t, s)
		for _, sl := range live {
			checkOnPlateau(t, sl.h.Status())
		}
		// Step every live job so pending resizes apply, then drain a
		// random job now and then to exercise reclaim + regrow.
		for _, sl := range live {
			select {
			case sl.j.step <- struct{}{}:
			default:
			}
		}
		if len(live) > 3 {
			finishOne()
			checkBudget(t, s)
		}
	}
	for len(live) > 0 {
		finishOne()
	}
	m := checkBudget(t, s)
	if m.InUse != 0 || m.Queued != 0 || m.Running != 0 {
		t.Fatalf("not idle after all jobs finished: %+v", m)
	}
}

// TestSyntheticJobRuns executes real StepProfile work through the
// scheduler: two concurrent synthetic jobs on a two-processor budget,
// with sync events flowing into the stats.
func TestSyntheticJobRuns(t *testing.T) {
	s := New(Config{Procs: 2, QueueDepth: 4, Grow: true})
	defer s.Close()
	profile := model.StepProfile{
		Loops: []model.LoopClass{
			{Name: "sweep", WorkCycles: 20_000, Parallelism: 8, SyncEvents: 2},
			{Name: "bc", WorkCycles: 1_000, Parallelism: 1, SyncEvents: 0},
		},
		SerialCycles: 500,
	}
	ha, err := s.Submit(NewSyntheticJob("syn-a", profile, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := s.Submit(NewSyntheticJob("syn-b", profile, 3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, ha); err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, hb); err != nil {
		t.Fatal(err)
	}
	sta, stb := ha.Status(), hb.Status()
	if sta.State != StateDone || stb.State != StateDone {
		t.Fatalf("states %v/%v, want done/done", sta.State, stb.State)
	}
	m := checkBudget(t, s)
	if m.Completed != 2 {
		t.Fatalf("completed %d, want 2", m.Completed)
	}
	if m.SyncEvents == 0 {
		t.Fatal("no sync events recorded for parallel synthetic jobs")
	}
}

func TestSubmitClampsParallelism(t *testing.T) {
	s := New(Config{Procs: 2, QueueDepth: 4})
	defer s.Close()
	h, err := s.Submit(NewFuncJob("serial", 0, func(g *Grant) error {
		if g.Team().Workers() != 1 {
			t.Errorf("serial job got %d workers", g.Team().Workers())
		}
		return nil
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := waitDone(t, h); err != nil {
		t.Fatal(err)
	}
	if st := h.Status(); st.Requested != 1 {
		t.Fatalf("requested %d, want clamped to 1", st.Requested)
	}
}
