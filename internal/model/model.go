// Package model implements the closed-form performance models from
// ARL-TR-2556 ("Using Loop-Level Parallelism to Parallelize Vectorizable
// Programs"): the minimum-work-per-loop criterion of Table 1, the
// work-per-synchronization-event accounting of Table 2, the stair-step
// speedup model of Table 3 and Figure 1, and the Amdahl/overhead
// composition used to predict whole-application scaling.
//
// All work quantities are expressed in processor cycles, as in the paper.
// The models are exact arithmetic: they are reproduced bit-for-bit by the
// benchmark harness and compared against the paper's printed tables in
// EXPERIMENTS.md.
package model

import (
	"fmt"
	"math"
)

// OverheadBudget is the fraction of runtime the paper allots to
// synchronization cost: "it is preferable to keep these costs below 1% of
// the runtime" (§3). Table 1 is computed with this value.
const OverheadBudget = 0.01

// MinWorkPerLoop returns the minimum amount of work (in cycles, summed
// over one execution of the loop on a single processor) that a
// parallelized loop must contain so that the synchronization cost of one
// parallel region stays below budget·runtime when run on procs
// processors (Table 1).
//
// Derivation: the loop body takes work/procs cycles of wall-clock time;
// one synchronization event costs syncCost cycles. Requiring
// syncCost ≤ budget · (work/procs) gives work ≥ procs·syncCost/budget.
func MinWorkPerLoop(procs int, syncCost float64, budget float64) float64 {
	if procs < 1 {
		panic(fmt.Sprintf("model: MinWorkPerLoop procs must be >= 1, got %d", procs))
	}
	if syncCost < 0 {
		panic(fmt.Sprintf("model: MinWorkPerLoop syncCost must be >= 0, got %g", syncCost))
	}
	if budget <= 0 {
		panic(fmt.Sprintf("model: MinWorkPerLoop budget must be > 0, got %g", budget))
	}
	return float64(procs) * syncCost / budget
}

// Table1Procs and Table1SyncCosts are the row and column headings of
// Table 1 in the paper.
var (
	Table1Procs     = []int{2, 8, 32, 128}
	Table1SyncCosts = []float64{10_000, 100_000, 1_000_000}
)

// Table1 returns the paper's Table 1: rows indexed by Table1Procs,
// columns by Table1SyncCosts, each entry the minimum work per
// parallelized loop (in cycles) for efficient (≤1% overhead) execution.
func Table1() [][]float64 {
	t := make([][]float64, len(Table1Procs))
	for i, p := range Table1Procs {
		row := make([]float64, len(Table1SyncCosts))
		for j, sc := range Table1SyncCosts {
			row[j] = MinWorkPerLoop(p, sc, OverheadBudget)
		}
		t[i] = row
	}
	return t
}

// LoopPlacement identifies which loop of a nest carries the parallel
// region, in the sense of Table 2. The placement determines how many
// grid points are processed per synchronization event.
type LoopPlacement int

const (
	// InnerLoop: the parallel region wraps only the innermost loop, so
	// each execution of the inner loop is a separate region.
	InnerLoop LoopPlacement = iota
	// MiddleLoop: the region wraps the middle loop of a 3-D nest (one
	// plane of work per region).
	MiddleLoop
	// OuterLoop: the region wraps the outermost loop (the whole zone per
	// region) — the paper's recommended placement.
	OuterLoop
	// BoundaryInner: a boundary-condition routine parallelized at its
	// inner loop (one edge row of a face per region).
	BoundaryInner
	// BoundaryOuter: a boundary-condition routine parallelized at its
	// outer loop (one whole face per region).
	BoundaryOuter
)

// String returns the Table 2 row label for the placement.
func (p LoopPlacement) String() string {
	switch p {
	case InnerLoop:
		return "inner loop"
	case MiddleLoop:
		return "middle loop"
	case OuterLoop:
		return "outer loop"
	case BoundaryInner:
		return "boundary condition - inner loop"
	case BoundaryOuter:
		return "boundary condition - outer loop"
	default:
		return fmt.Sprintf("LoopPlacement(%d)", int(p))
	}
}

// WorkPerSyncEvent returns the available amount of work (in cycles) per
// synchronization event for a rectangular grid with the given dimensions
// (highest-stride first; len 1, 2 or 3), a parallel region at the given
// placement, and the given work per grid point in cycles (Table 2).
//
// The rule is the one implicit in Table 2: the work available in one
// region is workPerPoint times the number of grid points enclosed by the
// parallelized loop. For a d-dimensional zone with dims [n1, …, nd]
// (n1 outermost):
//
//	outer loop   → n1·…·nd points (the whole zone)
//	middle loop  → n2·…·nd points (one outer-index plane)
//	inner loop   → nd points (one pencil)
//	boundary - outer → points of one face (drop the outermost dim)
//	boundary - inner → nd points (one pencil of a face)
//
// A 1-D grid has a single loop; every placement degenerates to the whole
// grid, matching the single 1-D row of Table 2.
func WorkPerSyncEvent(dims []int, placement LoopPlacement, workPerPoint float64) float64 {
	if len(dims) == 0 || len(dims) > 3 {
		panic(fmt.Sprintf("model: WorkPerSyncEvent needs 1-3 dims, got %d", len(dims)))
	}
	for _, n := range dims {
		if n < 1 {
			panic(fmt.Sprintf("model: WorkPerSyncEvent dims must be >= 1, got %v", dims))
		}
	}
	if workPerPoint < 0 {
		panic(fmt.Sprintf("model: WorkPerSyncEvent workPerPoint must be >= 0, got %g", workPerPoint))
	}
	points := func(ds []int) float64 {
		p := 1.0
		for _, n := range ds {
			p *= float64(n)
		}
		return p
	}
	d := len(dims)
	var enclosed float64
	switch placement {
	case OuterLoop:
		enclosed = points(dims)
	case MiddleLoop:
		if d < 3 {
			enclosed = points(dims[min(1, d-1):])
		} else {
			enclosed = points(dims[1:])
		}
	case InnerLoop:
		enclosed = float64(dims[d-1])
	case BoundaryOuter:
		if d == 1 {
			enclosed = 1
		} else {
			enclosed = points(dims[1:])
		}
	case BoundaryInner:
		if d == 1 {
			enclosed = 1
		} else {
			enclosed = float64(dims[d-1])
		}
	default:
		panic(fmt.Sprintf("model: unknown placement %v", placement))
	}
	return enclosed * workPerPoint
}

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	Problem   string // "1-D", "2-D", "3-D"
	Dims      []int  // grid dimensions
	LoopIters int    // iteration count of the parallelized loop
	Placement LoopPlacement
	Label     string     // row label as printed in the paper
	Work      [3]float64 // work per sync event at 10, 100, 1000 cycles/point
}

// Table2WorkPerPoint are the column headings of Table 2.
var Table2WorkPerPoint = [3]float64{10, 100, 1000}

// Table2 returns the paper's Table 2 (available work per synchronization
// event for a 1-million-grid-point zone) row by row.
func Table2() []Table2Row {
	type spec struct {
		problem   string
		dims      []int
		iters     int
		placement LoopPlacement
		label     string
	}
	specs := []spec{
		{"1-D", []int{1_000_000}, 1_000_000, OuterLoop, "1-D"},
		{"2-D", []int{1000, 1000}, 1000, InnerLoop, "Inner loop"},
		{"2-D", []int{1000, 1000}, 1000, OuterLoop, "Outer loop"},
		{"2-D", []int{1000, 1000}, 1000, BoundaryOuter, "Boundary condition"},
		{"3-D", []int{100, 100, 100}, 100, InnerLoop, "Inner loop"},
		{"3-D", []int{100, 100, 100}, 100, MiddleLoop, "Middle loop"},
		{"3-D", []int{100, 100, 100}, 100, OuterLoop, "Outer loop"},
		{"3-D", []int{100, 100, 100}, 100, BoundaryInner, "Boundary condition - inner loop"},
		{"3-D", []int{100, 100, 100}, 100, BoundaryOuter, "Boundary condition - outer loop"},
	}
	rows := make([]Table2Row, len(specs))
	for i, s := range specs {
		r := Table2Row{
			Problem:   s.problem,
			Dims:      s.dims,
			LoopIters: s.iters,
			Placement: s.placement,
			Label:     s.label,
		}
		for j, w := range Table2WorkPerPoint {
			r.Work[j] = WorkPerSyncEvent(s.dims, s.placement, w)
		}
		rows[i] = r
	}
	return rows
}

// StairStepSpeedup returns the paper's predicted speedup for a loop with
// n units of parallelism executed on procs processors (Table 3,
// Figure 1): the loop's iterations are dealt out in blocks, so the
// critical path holds ceil(n/procs) units and
//
//	speedup = n / ceil(n/procs).
//
// The result is exact for procs ≥ 1 and n ≥ 1; extra processors beyond n
// are idle, so speedup saturates at n.
func StairStepSpeedup(n, procs int) float64 {
	if n < 1 {
		panic(fmt.Sprintf("model: StairStepSpeedup n must be >= 1, got %d", n))
	}
	if procs < 1 {
		panic(fmt.Sprintf("model: StairStepSpeedup procs must be >= 1, got %d", procs))
	}
	return float64(n) / float64(ceilDiv(n, procs))
}

// MaxUnitsPerProcessor returns the maximum number of units of
// parallelism assigned to a single processor — the middle column of
// Table 3 — for a loop with n units on procs processors.
func MaxUnitsPerProcessor(n, procs int) int {
	if n < 1 || procs < 1 {
		panic(fmt.Sprintf("model: MaxUnitsPerProcessor needs n, procs >= 1, got %d, %d", n, procs))
	}
	return ceilDiv(n, procs)
}

// Table3Row is one row of the paper's Table 3 for N = 15.
type Table3Row struct {
	ProcsLo, ProcsHi int // processor-count range sharing one speedup step
	MaxUnits         int
	Speedup          float64
}

// Table3 returns the paper's Table 3 (predicted speedup for a loop with
// 15 units of parallelism), collapsing processor counts that share a
// stair-step into ranges exactly as the paper prints them
// (1, 2, 3, 4, 5–7, 8–14, 15).
func Table3() []Table3Row {
	const n = 15
	var rows []Table3Row
	for p := 1; p <= n; {
		u := MaxUnitsPerProcessor(n, p)
		hi := p
		for hi+1 <= n && MaxUnitsPerProcessor(n, hi+1) == u {
			hi++
		}
		rows = append(rows, Table3Row{
			ProcsLo:  p,
			ProcsHi:  hi,
			MaxUnits: u,
			Speedup:  StairStepSpeedup(n, p),
		})
		p = hi + 1
	}
	return rows
}

// Figure1Parallelism lists the parallelism levels plotted in Figure 1.
var Figure1Parallelism = []int{5, 15, 25, 35, 45}

// Figure1MaxProcs is the x-axis extent of Figure 1.
const Figure1MaxProcs = 50

// Figure1Series returns the predicted-speedup curves of Figure 1: for
// each n in Figure1Parallelism, speedups at procs = 1…Figure1MaxProcs.
// The outer index parallels Figure1Parallelism.
func Figure1Series() [][]float64 {
	out := make([][]float64, len(Figure1Parallelism))
	for i, n := range Figure1Parallelism {
		s := make([]float64, Figure1MaxProcs)
		for p := 1; p <= Figure1MaxProcs; p++ {
			s[p-1] = StairStepSpeedup(n, p)
		}
		out[i] = s
	}
	return out
}

// AmdahlSpeedup returns the classic Amdahl's-law speedup for a program
// whose parallelizable fraction (of single-processor runtime) is f, on
// procs processors. The paper invokes Amdahl's law for the serial
// boundary-condition routines ("too much time spent executing serial
// code", §3).
func AmdahlSpeedup(f float64, procs int) float64 {
	if f < 0 || f > 1 {
		panic(fmt.Sprintf("model: AmdahlSpeedup fraction must be in [0,1], got %g", f))
	}
	if procs < 1 {
		panic(fmt.Sprintf("model: AmdahlSpeedup procs must be >= 1, got %d", procs))
	}
	return 1 / ((1 - f) + f/float64(procs))
}

// SpeedupJumps returns the processor counts (≤ maxProcs, ascending) at
// which the stair-step speedup of a loop with n units of parallelism
// jumps to a new plateau. The paper observes these at roughly M/5, M/4,
// M/3, M/2 and M for maximum loop dimension M (§5).
func SpeedupJumps(n, maxProcs int) []int {
	if n < 1 || maxProcs < 1 {
		panic(fmt.Sprintf("model: SpeedupJumps needs n, maxProcs >= 1, got %d, %d", n, maxProcs))
	}
	var jumps []int
	prev := math.Inf(1) // so p=1 is never counted as a jump
	for p := 1; p <= maxProcs; p++ {
		s := StairStepSpeedup(n, p)
		if p > 1 && s > prev {
			jumps = append(jumps, p)
		}
		prev = s
	}
	return jumps
}

// PlateauProcs returns the efficient team sizes (≤ maxProcs, ascending)
// for a loop with m units of parallelism: the processor counts that sit
// at the left edge of a stair-step plateau, i.e. 1 plus the jump points
// of SpeedupJumps. Any processor count strictly between two consecutive
// entries delivers exactly the speedup of the smaller entry (Table 3:
// for m = 15, granting 6 or 7 processors buys nothing over 5), so a
// space-sharing scheduler should only ever hand a job one of these
// sizes.
func PlateauProcs(m, maxProcs int) []int {
	if m < 1 || maxProcs < 1 {
		panic(fmt.Sprintf("model: PlateauProcs needs m, maxProcs >= 1, got %d, %d", m, maxProcs))
	}
	return append([]int{1}, SpeedupJumps(m, maxProcs)...)
}

func ceilDiv(a, b int) int {
	return (a + b - 1) / b
}
