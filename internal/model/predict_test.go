package model

import (
	"math"
	"testing"
	"testing/quick"
)

// sampleProfile is a small F3D-like step profile: three implicit sweeps
// with limited parallelism, one well-parallel RHS loop, and serial
// boundary conditions.
func sampleProfile() StepProfile {
	return StepProfile{
		Loops: []LoopClass{
			{Name: "rhs", WorkCycles: 4e8, Parallelism: 89, SyncEvents: 3},
			{Name: "sweep-j", WorkCycles: 2e8, Parallelism: 75, SyncEvents: 1},
			{Name: "sweep-k", WorkCycles: 2e8, Parallelism: 89, SyncEvents: 1},
			{Name: "sweep-l", WorkCycles: 2e8, Parallelism: 89, SyncEvents: 1},
		},
		SerialCycles: 1e7,
	}
}

func TestTotalCyclesAndSyncEvents(t *testing.T) {
	p := sampleProfile()
	if got, want := p.TotalCycles(), 4e8+2e8+2e8+2e8+1e7; got != want {
		t.Errorf("TotalCycles = %g, want %g", got, want)
	}
	if got := p.SyncEventsPerStep(); got != 6 {
		t.Errorf("SyncEventsPerStep = %d, want 6", got)
	}
}

func TestPredictStepCyclesSingleProc(t *testing.T) {
	p := sampleProfile()
	// On one processor no parallel regions are opened: predicted time is
	// exactly the total work.
	if got, want := p.PredictStepCycles(1, 50_000), p.TotalCycles(); got != want {
		t.Errorf("PredictStepCycles(1) = %g, want %g", got, want)
	}
}

func TestPredictSpeedupBounds(t *testing.T) {
	p := sampleProfile()
	prev := 0.0
	for procs := 1; procs <= 89; procs++ {
		s := p.PredictSpeedup(procs, 0)
		if s > float64(procs)+1e-9 {
			t.Errorf("speedup %g at %d procs exceeds linear", s, procs)
		}
		if s < prev-1e-9 {
			t.Errorf("zero-sync speedup decreased: %g -> %g at %d procs", prev, s, procs)
		}
		prev = s
	}
	// With sync cost, speedup is strictly below the zero-sync value.
	for _, procs := range []int{2, 16, 64} {
		if p.PredictSpeedup(procs, 1e6) >= p.PredictSpeedup(procs, 0) {
			t.Errorf("sync cost did not reduce speedup at %d procs", procs)
		}
	}
}

func TestPredictSerialFractionCapsSpeedup(t *testing.T) {
	// A profile that is 10% serial cannot exceed Amdahl's bound of 10.
	p := StepProfile{
		Loops:        []LoopClass{{Name: "work", WorkCycles: 9e8, Parallelism: 1 << 20, SyncEvents: 1}},
		SerialCycles: 1e8,
	}
	s := p.PredictSpeedup(1<<20, 0)
	if s > 10+1e-6 {
		t.Errorf("speedup %g exceeds Amdahl bound 10", s)
	}
	if s < 9.9 {
		t.Errorf("speedup %g far below Amdahl bound 10 with zero sync cost", s)
	}
}

func TestPredictStairStepPlateau(t *testing.T) {
	// One loop with parallelism 15 must show Table 3 plateaus.
	p := StepProfile{
		Loops: []LoopClass{{Name: "only", WorkCycles: 1e9, Parallelism: 15, SyncEvents: 1}},
	}
	for procs := 5; procs <= 7; procs++ {
		if got := p.PredictSpeedup(procs, 0); math.Abs(got-5) > 1e-9 {
			t.Errorf("speedup at %d procs = %g, want 5 (plateau)", procs, got)
		}
	}
	if got := p.PredictSpeedup(15, 0); math.Abs(got-15) > 1e-9 {
		t.Errorf("speedup at 15 procs = %g, want 15", got)
	}
}

func TestScale(t *testing.T) {
	p := sampleProfile()
	q := p.Scale(59)
	if got, want := q.TotalCycles(), 59*p.TotalCycles(); math.Abs(got-want) > want*1e-12 {
		t.Errorf("scaled TotalCycles = %g, want %g", got, want)
	}
	if q.SyncEventsPerStep() != p.SyncEventsPerStep() {
		t.Errorf("Scale changed sync events: %d -> %d", p.SyncEventsPerStep(), q.SyncEventsPerStep())
	}
	for i := range q.Loops {
		if q.Loops[i].Parallelism != p.Loops[i].Parallelism {
			t.Errorf("Scale changed parallelism of %s", q.Loops[i].Name)
		}
	}
	// Original must be untouched.
	if p.Loops[0].WorkCycles != 4e8 {
		t.Errorf("Scale mutated receiver: %g", p.Loops[0].WorkCycles)
	}
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) should panic")
		}
	}()
	p.Scale(0)
}

func TestEfficientProcs(t *testing.T) {
	// With a sync cost that grows linearly with procs and a tiny loop,
	// the optimum is small; with zero cost it is at the parallelism cap.
	tiny := StepProfile{
		Loops: []LoopClass{{Name: "tiny", WorkCycles: 1e6, Parallelism: 128, SyncEvents: 10}},
	}
	growing := func(p int) float64 { return 5_000 * float64(p) }
	opt := tiny.EfficientProcs(128, growing)
	if opt >= 32 {
		t.Errorf("EfficientProcs for tiny loop with growing sync cost = %d, want small", opt)
	}
	big := StepProfile{
		Loops: []LoopClass{{Name: "big", WorkCycles: 1e12, Parallelism: 128, SyncEvents: 1}},
	}
	if got := big.EfficientProcs(128, func(int) float64 { return 0 }); got != 128 {
		t.Errorf("EfficientProcs for big loop, zero sync = %d, want 128", got)
	}
}

func TestPredictMonotoneInWork(t *testing.T) {
	f := func(w1, w2 uint32, pu uint8) bool {
		procs := int(pu%127) + 2
		a := StepProfile{Loops: []LoopClass{{WorkCycles: float64(w1), Parallelism: 64, SyncEvents: 1}}}
		b := StepProfile{Loops: []LoopClass{{WorkCycles: float64(w1) + float64(w2), Parallelism: 64, SyncEvents: 1}}}
		return b.PredictStepCycles(procs, 1000) >= a.PredictStepCycles(procs, 1000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredictPanics(t *testing.T) {
	p := sampleProfile()
	for name, fn := range map[string]func(){
		"procs":    func() { p.PredictStepCycles(0, 0) },
		"syncCost": func() { p.PredictStepCycles(1, -1) },
		"maxProcs": func() { p.EfficientProcs(0, func(int) float64 { return 0 }) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
