package model

import "fmt"

// LoopClass describes one parallelized loop nest (or one family of
// identical nests executed repeatedly) within a time step, in the terms
// the paper uses to reason about scaling: how much work it holds, how
// much loop-level parallelism is available, and how many synchronization
// events it costs per time step.
type LoopClass struct {
	Name string
	// WorkCycles is the single-processor work per time step contained in
	// all executions of this loop class, in cycles.
	WorkCycles float64
	// Parallelism is the number of units of loop-level parallelism
	// (typically the iteration count of the parallelized outer loop).
	// Zero or negative means the loop is serial.
	Parallelism int
	// SyncEvents is the number of parallel regions this class opens per
	// time step (each costs one synchronization on exit).
	SyncEvents int
}

// StepProfile is the per-time-step execution profile of a program: the
// parallelized loop classes plus residual serial work (boundary
// conditions and other unparallelized routines). It is the input to the
// paper-style performance prediction and to the SMP simulator.
type StepProfile struct {
	Loops []LoopClass
	// SerialCycles is the single-processor work per step that is never
	// parallelized.
	SerialCycles float64
}

// TotalCycles returns the single-processor work per time step.
func (sp *StepProfile) TotalCycles() float64 {
	t := sp.SerialCycles
	for _, l := range sp.Loops {
		t += l.WorkCycles
	}
	return t
}

// SyncEventsPerStep returns the total number of synchronization events
// per time step across all parallel loop classes.
func (sp *StepProfile) SyncEventsPerStep() int {
	n := 0
	for _, l := range sp.Loops {
		n += l.SyncEvents
	}
	return n
}

// Scale returns a copy of the profile with all work quantities (loop
// work and serial work) multiplied by factor. Synchronization event
// counts and parallelism are structural and do not scale with problem
// size within a zone, so they are preserved. Scaling work is how the
// paper's 1-M-point profile extends to larger zones of the same shape.
func (sp *StepProfile) Scale(factor float64) StepProfile {
	if factor <= 0 {
		panic(fmt.Sprintf("model: StepProfile.Scale factor must be > 0, got %g", factor))
	}
	out := StepProfile{
		Loops:        make([]LoopClass, len(sp.Loops)),
		SerialCycles: sp.SerialCycles * factor,
	}
	for i, l := range sp.Loops {
		l.WorkCycles *= factor
		out.Loops[i] = l
	}
	return out
}

// PredictStepCycles returns the predicted wall-clock cycles for one time
// step of the profile on procs processors with the given per-region
// synchronization cost (in cycles). The model composes the three effects
// the paper analyzes:
//
//   - stair-step parallel time: each loop class with parallelism N runs
//     in Work·ceil(N/P)/N cycles (Table 3 / Figure 1);
//   - synchronization overhead: SyncEvents·syncCost cycles per step
//     (Table 1);
//   - Amdahl: SerialCycles are paid at full cost (§3).
//
// Loops whose Parallelism is < 2 are treated as serial.
func (sp *StepProfile) PredictStepCycles(procs int, syncCost float64) float64 {
	if procs < 1 {
		panic(fmt.Sprintf("model: PredictStepCycles procs must be >= 1, got %d", procs))
	}
	if syncCost < 0 {
		panic(fmt.Sprintf("model: PredictStepCycles syncCost must be >= 0, got %g", syncCost))
	}
	t := sp.SerialCycles
	for _, l := range sp.Loops {
		if l.Parallelism < 2 || procs == 1 {
			t += l.WorkCycles
			if procs > 1 && l.Parallelism >= 2 {
				// A parallel region is still opened even when it holds a
				// degenerate loop; on one processor no region is opened.
				t += float64(l.SyncEvents) * syncCost
			}
			continue
		}
		n := l.Parallelism
		t += l.WorkCycles * float64(ceilDiv(n, procs)) / float64(n)
		t += float64(l.SyncEvents) * syncCost
	}
	return t
}

// PredictSpeedup returns the predicted whole-step speedup on procs
// processors relative to one processor.
func (sp *StepProfile) PredictSpeedup(procs int, syncCost float64) float64 {
	return sp.PredictStepCycles(1, syncCost) / sp.PredictStepCycles(procs, syncCost)
}

// EfficientProcs returns the largest processor count in [1, maxProcs]
// for which marginal efficiency is still positive: adding processors
// past this point slows the profile down (the "speed first peaks and
// then starts to drop off" regime of §4, which appears when syncCost
// grows with the machine or parallelism is exhausted).
func (sp *StepProfile) EfficientProcs(maxProcs int, syncCost func(procs int) float64) int {
	if maxProcs < 1 {
		panic(fmt.Sprintf("model: EfficientProcs maxProcs must be >= 1, got %d", maxProcs))
	}
	best, bestT := 1, sp.PredictStepCycles(1, syncCost(1))
	for p := 2; p <= maxProcs; p++ {
		t := sp.PredictStepCycles(p, syncCost(p))
		if t < bestT {
			best, bestT = p, t
		}
	}
	return best
}
