package model_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/sched"
)

// FuzzPlateauProcs fuzzes the stair-step plateau enumeration over
// (m, maxProcs) and checks its defining properties: the list starts at
// 1, is strictly increasing, is bounded by min(m, maxProcs), tops out
// exactly at the allocator's PlateauGrant(m, maxProcs), and every
// entry past 1 is a genuine speedup jump point — ceil(m/p) strictly
// drops relative to p-1 — while 1 always appears.
func FuzzPlateauProcs(f *testing.F) {
	f.Add(15, 15)
	f.Add(15, 7)
	f.Add(1, 1)
	f.Add(97, 32)
	f.Add(1024, 64)
	f.Fuzz(func(t *testing.T, m, maxProcs int) {
		if m < 1 || m > 1<<16 || maxProcs < 1 || maxProcs > 1<<16 {
			t.Skip()
		}
		ps := model.PlateauProcs(m, maxProcs)
		if len(ps) == 0 || ps[0] != 1 {
			t.Fatalf("PlateauProcs(%d, %d) = %v, must contain 1 first", m, maxProcs, ps)
		}
		bound := m
		if maxProcs < bound {
			bound = maxProcs
		}
		ceil := func(p int) int { return (m + p - 1) / p }
		for i, p := range ps {
			if i > 0 && p <= ps[i-1] {
				t.Fatalf("PlateauProcs(%d, %d) = %v not strictly increasing at %d", m, maxProcs, ps, i)
			}
			if p > bound {
				t.Fatalf("PlateauProcs(%d, %d) = %v exceeds min(m, maxProcs) = %d", m, maxProcs, ps, bound)
			}
			if p > 1 && ceil(p) >= ceil(p-1) {
				t.Fatalf("PlateauProcs(%d, %d): %d is not a jump point (ceil %d vs %d)",
					m, maxProcs, p, ceil(p), ceil(p-1))
			}
		}
		// The top plateau is exactly what the allocator would grant
		// with the whole machine available — the two packages must
		// agree on the stair-step geometry.
		if top := ps[len(ps)-1]; top != sched.PlateauGrant(m, maxProcs) {
			t.Fatalf("top plateau %d != PlateauGrant(%d, %d) = %d",
				top, m, maxProcs, sched.PlateauGrant(m, maxProcs))
		}
		// If the machine can hold all m units, m itself is a plateau.
		if maxProcs >= m && ps[len(ps)-1] != m {
			t.Fatalf("PlateauProcs(%d, %d) = %v missing m itself", m, maxProcs, ps)
		}
	})
}
