package model_test

import (
	"fmt"

	"repro/internal/model"
)

// The Table 1 criterion: how much work must a loop hold before
// parallelizing it pays on 32 processors with a 100,000-cycle
// synchronization?
func ExampleMinWorkPerLoop() {
	w := model.MinWorkPerLoop(32, 100_000, model.OverheadBudget)
	fmt.Printf("%.0f cycles\n", w)
	// Output:
	// 320000000 cycles
}

// The stair-step speedup of a loop with 15 units of parallelism
// (Table 3): 5, 6 and 7 processors all deliver exactly 5x.
func ExampleStairStepSpeedup() {
	for _, p := range []int{4, 5, 6, 7, 8, 15} {
		fmt.Printf("P=%d: %.3f\n", p, model.StairStepSpeedup(15, p))
	}
	// Output:
	// P=4: 3.750
	// P=5: 5.000
	// P=6: 5.000
	// P=7: 5.000
	// P=8: 7.500
	// P=15: 15.000
}

// Where the paper's 59-million-point case stops scaling: the largest
// zone's J dimension is 175, so the last speedup jumps before 128
// processors land at 59 and 88.
func ExampleSpeedupJumps() {
	jumps := model.SpeedupJumps(175, 128)
	fmt.Println(jumps[len(jumps)-2:])
	// Output:
	// [59 88]
}

// A step profile composes stair-step, synchronization and Amdahl
// effects into one prediction.
func ExampleStepProfile_PredictSpeedup() {
	sp := model.StepProfile{
		Loops: []model.LoopClass{
			{Name: "sweeps", WorkCycles: 9e9, Parallelism: 89, SyncEvents: 4},
		},
		SerialCycles: 5e7,
	}
	fmt.Printf("%.1f\n", sp.PredictSpeedup(64, 50_000))
	// Output:
	// 35.8
}
