package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMinWorkPerLoopPaperValues(t *testing.T) {
	// Spot checks against the printed entries of Table 1.
	cases := []struct {
		procs    int
		syncCost float64
		want     float64
	}{
		{2, 10_000, 2_000_000},
		{2, 100_000, 20_000_000},
		{2, 1_000_000, 200_000_000},
		{8, 10_000, 8_000_000},
		{8, 100_000, 80_000_000},
		{8, 1_000_000, 800_000_000},
		{32, 10_000, 32_000_000},
		{32, 100_000, 320_000_000},
		{32, 1_000_000, 3_200_000_000},
		{128, 10_000, 128_000_000},
		{128, 100_000, 1_280_000_000},
		{128, 1_000_000, 12_800_000_000},
	}
	for _, c := range cases {
		got := MinWorkPerLoop(c.procs, c.syncCost, OverheadBudget)
		if got != c.want {
			t.Errorf("MinWorkPerLoop(%d, %g) = %g, want %g", c.procs, c.syncCost, got, c.want)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	want := [][]float64{
		{2_000_000, 20_000_000, 200_000_000},
		{8_000_000, 80_000_000, 800_000_000},
		{32_000_000, 320_000_000, 3_200_000_000},
		{128_000_000, 1_280_000_000, 12_800_000_000},
	}
	got := Table1()
	if len(got) != len(want) {
		t.Fatalf("Table1 has %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("Table1[%d][%d] = %g, want %g", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestMinWorkPerLoopScalesLinearly(t *testing.T) {
	// work(P, σ) must be linear in both arguments.
	f := func(p uint8, sc uint16) bool {
		procs := int(p%127) + 1
		sync := float64(sc) + 1
		w1 := MinWorkPerLoop(procs, sync, OverheadBudget)
		w2 := MinWorkPerLoop(2*procs, sync, OverheadBudget)
		w3 := MinWorkPerLoop(procs, 2*sync, OverheadBudget)
		return w2 == 2*w1 && w3 == 2*w1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWorkPerSyncEventPaperValues(t *testing.T) {
	// Spot checks against Table 2 entries (1-million-grid-point zone).
	cases := []struct {
		dims      []int
		placement LoopPlacement
		perPoint  float64
		want      float64
	}{
		{[]int{1_000_000}, OuterLoop, 10, 10_000_000},
		{[]int{1_000_000}, OuterLoop, 1000, 1_000_000_000},
		{[]int{1000, 1000}, InnerLoop, 10, 10_000},
		{[]int{1000, 1000}, InnerLoop, 1000, 1_000_000},
		{[]int{1000, 1000}, OuterLoop, 10, 10_000_000},
		{[]int{1000, 1000}, BoundaryOuter, 10, 10_000},
		{[]int{1000, 1000}, BoundaryOuter, 1000, 1_000_000},
		{[]int{100, 100, 100}, InnerLoop, 10, 1_000},
		{[]int{100, 100, 100}, InnerLoop, 1000, 100_000},
		{[]int{100, 100, 100}, MiddleLoop, 10, 100_000},
		{[]int{100, 100, 100}, MiddleLoop, 100, 1_000_000},
		{[]int{100, 100, 100}, MiddleLoop, 1000, 10_000_000},
		{[]int{100, 100, 100}, OuterLoop, 10, 10_000_000},
		{[]int{100, 100, 100}, OuterLoop, 1000, 1_000_000_000},
		{[]int{100, 100, 100}, BoundaryInner, 10, 1_000},
		{[]int{100, 100, 100}, BoundaryOuter, 10, 100_000},
		{[]int{100, 100, 100}, BoundaryOuter, 1000, 10_000_000},
	}
	for _, c := range cases {
		got := WorkPerSyncEvent(c.dims, c.placement, c.perPoint)
		if got != c.want {
			t.Errorf("WorkPerSyncEvent(%v, %v, %g) = %g, want %g",
				c.dims, c.placement, c.perPoint, got, c.want)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	rows := Table2()
	if len(rows) != 9 {
		t.Fatalf("Table2 has %d rows, want 9", len(rows))
	}
	// Every row's grid holds exactly one million points.
	for _, r := range rows {
		pts := 1
		for _, n := range r.Dims {
			pts *= n
		}
		if pts != 1_000_000 {
			t.Errorf("row %q grid %v has %d points, want 1e6", r.Label, r.Dims, pts)
		}
		// Work columns scale with the per-point headings.
		base := r.Work[0] / Table2WorkPerPoint[0]
		for j := range r.Work {
			if r.Work[j] != base*Table2WorkPerPoint[j] {
				t.Errorf("row %q column %d = %g, not proportional to per-point work",
					r.Label, j, r.Work[j])
			}
		}
	}
	// Outer-loop rows all expose the full zone per sync event.
	for _, r := range rows {
		if r.Placement == OuterLoop && r.Work[0] != 10_000_000 {
			t.Errorf("outer-loop row %q Work[0] = %g, want 1e7", r.Label, r.Work[0])
		}
	}
}

func TestWorkPerSyncOrdering(t *testing.T) {
	// For any 3-D zone, inner ≤ middle ≤ outer and boundary ≤ interior
	// at the same placement.
	f := func(a, b, c uint8, w uint8) bool {
		dims := []int{int(a%50) + 1, int(b%50) + 1, int(c%50) + 1}
		wp := float64(w) + 1
		in := WorkPerSyncEvent(dims, InnerLoop, wp)
		mid := WorkPerSyncEvent(dims, MiddleLoop, wp)
		out := WorkPerSyncEvent(dims, OuterLoop, wp)
		bi := WorkPerSyncEvent(dims, BoundaryInner, wp)
		bo := WorkPerSyncEvent(dims, BoundaryOuter, wp)
		return in <= mid && mid <= out && bi <= bo && bo <= out && bi <= in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStairStepSpeedupTable3(t *testing.T) {
	// Exact reproduction of Table 3 (N = 15).
	cases := []struct {
		procs   int
		maxUnit int
		speedup float64
	}{
		{1, 15, 1.0},
		{2, 8, 15.0 / 8.0},
		{3, 5, 3.0},
		{4, 4, 3.75},
		{5, 3, 5.0},
		{6, 3, 5.0},
		{7, 3, 5.0},
		{8, 2, 7.5},
		{14, 2, 7.5},
		{15, 1, 15.0},
	}
	for _, c := range cases {
		if got := MaxUnitsPerProcessor(15, c.procs); got != c.maxUnit {
			t.Errorf("MaxUnitsPerProcessor(15, %d) = %d, want %d", c.procs, got, c.maxUnit)
		}
		if got := StairStepSpeedup(15, c.procs); math.Abs(got-c.speedup) > 1e-12 {
			t.Errorf("StairStepSpeedup(15, %d) = %g, want %g", c.procs, got, c.speedup)
		}
	}
}

func TestTable3Rows(t *testing.T) {
	rows := Table3()
	want := []Table3Row{
		{1, 1, 15, 1},
		{2, 2, 8, 15.0 / 8.0},
		{3, 3, 5, 3},
		{4, 4, 4, 3.75},
		{5, 7, 3, 5},
		{8, 14, 2, 7.5},
		{15, 15, 1, 15},
	}
	if len(rows) != len(want) {
		t.Fatalf("Table3 has %d rows, want %d: %+v", len(rows), len(want), rows)
	}
	for i, w := range want {
		g := rows[i]
		if g.ProcsLo != w.ProcsLo || g.ProcsHi != w.ProcsHi || g.MaxUnits != w.MaxUnits {
			t.Errorf("Table3 row %d = %+v, want %+v", i, g, w)
		}
		if math.Abs(g.Speedup-w.Speedup) > 1e-12 {
			t.Errorf("Table3 row %d speedup = %g, want %g", i, g.Speedup, w.Speedup)
		}
	}
}

func TestStairStepProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Monotone non-decreasing in procs; bounded by min(procs, n);
	// saturates exactly at n when procs >= n.
	f := func(nu, pu uint8) bool {
		n := int(nu%200) + 1
		p := int(pu%255) + 1
		s := StairStepSpeedup(n, p)
		if s > float64(n)+1e-9 || s > float64(p)+1e-9 || s < 1-1e-9 {
			return false
		}
		if p >= n && s != float64(n) {
			return false
		}
		return StairStepSpeedup(n, p+1) >= s
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Speedup is exact (linear) whenever procs divides n.
	g := func(ku, pu uint8) bool {
		p := int(pu%40) + 1
		k := int(ku%10) + 1
		return StairStepSpeedup(k*p, p) == float64(p)
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Error(err)
	}
}

func TestFigure1Series(t *testing.T) {
	series := Figure1Series()
	if len(series) != len(Figure1Parallelism) {
		t.Fatalf("Figure1Series returned %d series, want %d", len(series), len(Figure1Parallelism))
	}
	for i, s := range series {
		n := Figure1Parallelism[i]
		if len(s) != Figure1MaxProcs {
			t.Fatalf("series %d has %d points, want %d", i, len(s), Figure1MaxProcs)
		}
		if s[0] != 1 {
			t.Errorf("series n=%d at p=1 is %g, want 1", n, s[0])
		}
		// Saturation: p >= n gives exactly n.
		for p := n; p <= Figure1MaxProcs; p++ {
			if s[p-1] != float64(n) {
				t.Errorf("series n=%d at p=%d is %g, want %d", n, p, s[p-1], n)
			}
		}
	}
	// The visible plateau in the paper's figures: n=45 is flat from
	// p=23 through p=44 (ceil(45/p)=2).
	s45 := series[4]
	for p := 23; p <= 44; p++ {
		if s45[p-1] != 22.5 {
			t.Errorf("n=45 p=%d speedup = %g, want 22.5", p, s45[p-1])
		}
	}
}

func TestSpeedupJumps(t *testing.T) {
	// For n = 89 (largest J dimension of the 1-M-point case) the jumps
	// within 128 processors land at ceil boundaries near 89/4, 89/3,
	// 89/2, 89 — matching the paper's "jumps at M/5, M/4, M/3, M/2, M".
	jumps := SpeedupJumps(89, 128)
	wantContains := []int{23, 30, 45, 89} // ceil(89/4)=23, ceil(89/3)=30, ceil(89/2)=45
	seen := make(map[int]bool, len(jumps))
	for _, j := range jumps {
		seen[j] = true
	}
	for _, w := range wantContains {
		if !seen[w] {
			t.Errorf("SpeedupJumps(89, 128) = %v, missing expected jump at %d", jumps, w)
		}
	}
	// Jumps must be strictly ascending and beyond 1.
	for i := 1; i < len(jumps); i++ {
		if jumps[i] <= jumps[i-1] {
			t.Errorf("jumps not ascending: %v", jumps)
		}
	}
	if len(jumps) > 0 && jumps[0] < 2 {
		t.Errorf("first jump %d < 2", jumps[0])
	}
}

func TestAmdahlSpeedup(t *testing.T) {
	if got := AmdahlSpeedup(1, 64); got != 64 {
		t.Errorf("AmdahlSpeedup(1, 64) = %g, want 64", got)
	}
	if got := AmdahlSpeedup(0, 64); got != 1 {
		t.Errorf("AmdahlSpeedup(0, 64) = %g, want 1", got)
	}
	// 5% serial code caps speedup at 20 asymptotically.
	if got := AmdahlSpeedup(0.95, 1_000_000); math.Abs(got-20) > 0.1 {
		t.Errorf("AmdahlSpeedup(0.95, 1e6) = %g, want ~20", got)
	}
	f := func(fu uint16, pu uint8) bool {
		frac := float64(fu) / 65535
		p := int(pu) + 1
		s := AmdahlSpeedup(frac, p)
		return s >= 1-1e-12 && s <= float64(p)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("MinWorkPerLoop procs", func() { MinWorkPerLoop(0, 1, 0.01) })
	mustPanic("MinWorkPerLoop budget", func() { MinWorkPerLoop(1, 1, 0) })
	mustPanic("MinWorkPerLoop syncCost", func() { MinWorkPerLoop(1, -1, 0.01) })
	mustPanic("WorkPerSyncEvent dims", func() { WorkPerSyncEvent(nil, OuterLoop, 1) })
	mustPanic("WorkPerSyncEvent dims4", func() { WorkPerSyncEvent([]int{1, 1, 1, 1}, OuterLoop, 1) })
	mustPanic("WorkPerSyncEvent dim0", func() { WorkPerSyncEvent([]int{0, 5}, OuterLoop, 1) })
	mustPanic("StairStepSpeedup n", func() { StairStepSpeedup(0, 1) })
	mustPanic("StairStepSpeedup procs", func() { StairStepSpeedup(1, 0) })
	mustPanic("AmdahlSpeedup frac", func() { AmdahlSpeedup(1.5, 2) })
	mustPanic("AmdahlSpeedup procs", func() { AmdahlSpeedup(0.5, 0) })
	mustPanic("SpeedupJumps", func() { SpeedupJumps(0, 10) })
}

func TestLoopPlacementString(t *testing.T) {
	cases := map[LoopPlacement]string{
		InnerLoop:         "inner loop",
		MiddleLoop:        "middle loop",
		OuterLoop:         "outer loop",
		BoundaryInner:     "boundary condition - inner loop",
		BoundaryOuter:     "boundary condition - outer loop",
		LoopPlacement(99): "LoopPlacement(99)",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(p), got, want)
		}
	}
}
