package model

import (
	"reflect"
	"testing"
)

// TestPlateauProcsTable3 pins PlateauProcs against the paper's Table 3:
// for N = 15 the speedup steps begin at 1, 2, 3, 4, 5, 8 and 15
// processors (the ranges 5–7 and 8–14 share a plateau with their left
// edge).
func TestPlateauProcsTable3(t *testing.T) {
	cases := []struct {
		m, maxProcs int
		want        []int
	}{
		{15, 15, []int{1, 2, 3, 4, 5, 8, 15}},
		{15, 50, []int{1, 2, 3, 4, 5, 8, 15}},
		{15, 7, []int{1, 2, 3, 4, 5}},
		{1, 8, []int{1}},
		{2, 8, []int{1, 2}},
		{4, 3, []int{1, 2}},
		{5, 50, []int{1, 2, 3, 5}},
	}
	for _, c := range cases {
		got := PlateauProcs(c.m, c.maxProcs)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("PlateauProcs(%d, %d) = %v, want %v", c.m, c.maxProcs, got, c.want)
		}
	}
}

// TestPlateauProcsMatchesTable3Rows checks that the plateau left edges
// are exactly the ProcsLo column of Table3().
func TestPlateauProcsMatchesTable3Rows(t *testing.T) {
	var want []int
	for _, r := range Table3() {
		want = append(want, r.ProcsLo)
	}
	if got := PlateauProcs(15, 15); !reflect.DeepEqual(got, want) {
		t.Errorf("PlateauProcs(15, 15) = %v, Table3 ProcsLo = %v", got, want)
	}
}

// TestPlateauProcsAreJumpPoints verifies the defining property over a
// sweep of loop sizes: every returned p > 1 strictly increases the
// stair-step speedup over p-1, and every p not returned does not.
func TestPlateauProcsAreJumpPoints(t *testing.T) {
	for m := 1; m <= 120; m++ {
		const maxProcs = 150
		onPlateau := make(map[int]bool)
		for _, p := range PlateauProcs(m, maxProcs) {
			onPlateau[p] = true
		}
		for p := 2; p <= maxProcs; p++ {
			jumped := StairStepSpeedup(m, p) > StairStepSpeedup(m, p-1)
			if jumped != onPlateau[p] {
				t.Fatalf("m=%d p=%d: speedup jump %v but plateau membership %v",
					m, p, jumped, onPlateau[p])
			}
		}
	}
}

func TestPlateauProcsPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 5}, {5, 0}, {-1, 5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PlateauProcs(%d, %d) should panic", c[0], c[1])
				}
			}()
			PlateauProcs(c[0], c[1])
		}()
	}
}
