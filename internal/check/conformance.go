package check

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/adapt"
	"repro/internal/parloop"
)

// AllSchedules is the full schedule axis of the conformance matrix.
var AllSchedules = []parloop.Schedule{
	parloop.Static, parloop.StaticCyclic, parloop.Dynamic, parloop.Guided,
}

// Spec is one conformance run's parameters, handed to a kernel's
// Parallel function.
type Spec struct {
	// N is the problem size.
	N int
	// Sched and Chunk select the loop schedule. Kernels whose
	// parallel structure is fixed (the f3d solver partitions
	// statically inside) may ignore them.
	Sched parloop.Schedule
	Chunk int
	// StepHook, if non-nil, must be called by multi-step kernels
	// between fork-join regions, once per step. The driver uses it to
	// apply mid-run Team.Resize exactly where the scheduler would: at
	// a step boundary.
	StepHook func(step int)
	// AdaptHook, if non-nil, runs after StepHook with the spec itself:
	// an adaptive controller (or its scripted stand-in) may retarget
	// Sched and Chunk here, so the next region runs under a new
	// configuration — the mid-flight re-pick whose conformance the
	// adaptive matrix column proves.
	AdaptHook func(step int, spec *Spec)
}

// Step invokes the spec's step hooks, if any. Kernels with Steps > 0
// call it before each step's parallel region.
func (s *Spec) Step(step int) {
	if s.StepHook != nil {
		s.StepHook(step)
	}
	if s.AdaptHook != nil {
		s.AdaptHook(step, s)
	}
}

// Kernel is one conformance obligation: a serial reference and a
// parallel body that must agree on every point of the matrix.
type Kernel struct {
	// Name identifies the kernel in reports.
	Name string
	// N is the default problem size; MinN the smallest size the
	// kernel accepts (the minimizer's floor, >= 1).
	N, MinN int
	// Steps is the number of step-hook boundaries the parallel body
	// observes (0 for single-region kernels). Only kernels with
	// Steps > 0 get the mid-run Resize column of the matrix.
	Steps int
	// MaxULPs is the tolerated ULP distance from the serial
	// reference: 0 demands bitwise identity (order-invariant kernels:
	// elementwise maps, max reductions, integer-valued sums, the f3d
	// solver), a positive bound admits the regrouping error of
	// floating-point sums under chunked schedules.
	MaxULPs uint64
	// Schedules lists the schedules the kernel honors; nil means the
	// kernel's parallel structure is fixed and it runs once per team
	// size (as Static).
	Schedules []parloop.Schedule
	// Serial computes the reference output for size n on one thread.
	Serial func(n int) []float64
	// Parallel computes the output on the team under the spec.
	Parallel func(t *parloop.Team, spec Spec) []float64
	// Tracked, if non-nil, runs a dependence-instrumented variant of
	// the parallel body on the team, with every shared access routed
	// through the tracker's arrays. Used by CheckDependences.
	Tracked func(tk *Tracker, t *parloop.Team, n int) []float64
}

// Matrix is the conformance test matrix.
type Matrix struct {
	// TeamSizes is the team-size axis.
	TeamSizes []int
	// Chunks is the chunk-size axis for the chunked schedules.
	Chunks []int
	// Resize adds a column where the team is resized between steps
	// (multi-step kernels only).
	Resize bool
	// Adaptive adds a column where every kernel runs under a scripted
	// adaptive controller (internal/adapt's real decision policy on a
	// seeded simulated workload): the initial {schedule, chunk} is the
	// script's first pick and, for multi-step kernels, every step
	// boundary re-picks schedule, chunk and team size per the script.
	// Conformance vs. serial must survive all of it.
	Adaptive bool
}

// DefaultMatrix covers team sizes through 8 (including sizes that do
// not divide typical loop counts), three chunk sizes, mid-run resizes
// and the adaptive-controller column.
func DefaultMatrix() Matrix {
	return Matrix{
		TeamSizes: []int{1, 2, 3, 4, 6, 8},
		Chunks:    []int{1, 3, 16},
		Resize:    true,
		Adaptive:  true,
	}
}

// Case identifies one cell of the matrix.
type Case struct {
	Workers int
	Sched   parloop.Schedule
	Chunk   int
	Resized bool
	// Adaptive marks a scripted-controller cell; Seed is its script
	// seed (Sched and Chunk then record the script's first pick).
	Adaptive bool
	Seed     int64
}

func (c Case) String() string {
	s := fmt.Sprintf("workers=%d sched=%v chunk=%d", c.Workers, c.Sched, c.Chunk)
	if c.Resized {
		s += " resize"
	}
	if c.Adaptive {
		s += fmt.Sprintf(" adaptive(seed=%d)", c.Seed)
	}
	return s
}

// Failure is one conformance violation, minimized where possible.
type Failure struct {
	Kernel string
	Case   Case
	// N is the (minimized) problem size that still fails.
	N int
	// Index is the first (or worst) mismatching output element; Got
	// and Want its values, ULPs their distance.
	Index     int
	Got, Want float64
	ULPs      uint64
	// Detail carries structural failures (length mismatch,
	// nondeterministic rerun) where element fields do not apply.
	Detail string
	// Minimized reports whether the minimizer ran to completion.
	Minimized bool
}

func (f Failure) String() string {
	if f.Detail != "" {
		return fmt.Sprintf("%s [%v n=%d]: %s", f.Kernel, f.Case, f.N, f.Detail)
	}
	return fmt.Sprintf("%s [%v n=%d]: out[%d] = %v, want %v (%d ulps)",
		f.Kernel, f.Case, f.N, f.Index, f.Got, f.Want, f.ULPs)
}

// Report is the outcome of a conformance run.
type Report struct {
	// Kernels is the number of kernels checked, Cases the number of
	// matrix cells executed.
	Kernels, Cases int
	Failures       []Failure
}

// OK reports whether every case passed.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d kernels, %d cases, %d failures\n",
		r.Kernels, r.Cases, len(r.Failures))
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "  FAIL %v\n", f)
	}
	return b.String()
}

// Run executes every kernel over the matrix and returns the report.
// The serial reference is computed once per kernel and size; each
// failing cell is shrunk to a minimized repro case.
func Run(kernels []Kernel, m Matrix) *Report {
	rep := &Report{}
	for _, k := range kernels {
		rep.Kernels++
		cases, fails := runKernel(k, m)
		rep.Cases += cases
		rep.Failures = append(rep.Failures, fails...)
	}
	return rep
}

func runKernel(k Kernel, m Matrix) (cases int, fails []Failure) {
	ref := k.Serial(k.N)
	scheds := k.Schedules
	if len(scheds) == 0 {
		scheds = []parloop.Schedule{parloop.Static}
	}
	for _, workers := range m.TeamSizes {
		team := parloop.NewTeam(workers)
		for _, sched := range scheds {
			chunks := m.Chunks
			if sched == parloop.Static || len(chunks) == 0 {
				chunks = []int{1} // Static ignores the chunk size
			}
			for _, chunk := range chunks {
				variants := []bool{false}
				if m.Resize && k.Steps > 0 && workers > 1 {
					variants = append(variants, true)
				}
				for _, resized := range variants {
					cases++
					c := Case{Workers: workers, Sched: sched, Chunk: chunk, Resized: resized}
					if f, ok := runCase(k, c, team, k.N, ref); !ok {
						fails = append(fails, minimize(k, c, f))
						continue
					}
					// Reruns under the deterministic schedules must
					// reproduce bit-for-bit — the property the paper
					// relies on for debugging parallel runs.
					if sched == parloop.Static || sched == parloop.StaticCyclic {
						out1 := runParallel(k, c, team, k.N)
						out2 := runParallel(k, c, team, k.N)
						if idx, ok := firstBitDiff(out1, out2); !ok {
							detail := "nondeterministic rerun: output length changed"
							if idx >= 0 {
								detail = fmt.Sprintf("nondeterministic rerun at out[%d]: %v vs %v", idx, out1[idx], out2[idx])
							}
							fails = append(fails, Failure{Kernel: k.Name, Case: c, N: k.N, Detail: detail})
						}
					}
				}
			}
		}
		// The adaptive column: one cell per team size, schedule and
		// chunk driven by the scripted controller instead of the axes.
		if m.Adaptive {
			cases++
			c := adaptiveCase(k, workers)
			if f, ok := runCase(k, c, team, k.N, ref); !ok {
				fails = append(fails, minimize(k, c, f))
			}
		}
		team.Close()
	}
	return cases, fails
}

// adaptiveCase builds the scripted-controller cell for a kernel at a
// team size. The seed is a stable hash of the kernel name and team
// size, so every kernel explores a different but reproducible decision
// path.
func adaptiveCase(k Kernel, workers int) Case {
	seed := int64(1469598103934665603) // FNV-1a offset basis
	for _, b := range []byte(k.Name) {
		seed = (seed ^ int64(b)) * 1099511628211
	}
	seed ^= int64(workers) * 0x9e3779b9
	script := adaptScript(k, workers, seed)
	return Case{
		Workers:  workers,
		Sched:    script[0].Sched,
		Chunk:    script[0].Chunk,
		Adaptive: true,
		Seed:     seed,
	}
}

// adaptScript runs the real adapt controller policy on a seeded
// simulated workload and returns per-step {schedule, chunk, workers}
// picks restricted to the kernel's legal schedules.
func adaptScript(k Kernel, workers int, seed int64) []adapt.Choice {
	scheds := k.Schedules
	if len(scheds) == 0 {
		scheds = []parloop.Schedule{parloop.Static}
	}
	steps := k.Steps
	if steps < 1 {
		steps = 1
	}
	return adapt.ScriptChoices(seed, adapt.Config{
		Procs:     workers,
		M:         k.N,
		Schedules: scheds,
		Chunks:    []int{1, 3, 16},
	}, steps)
}

// runParallel executes one parallel run of the kernel for the case,
// wiring the resize cycle through the step hook and restoring the team
// size afterwards.
func runParallel(k Kernel, c Case, team *parloop.Team, n int) []float64 {
	spec := Spec{N: n, Sched: c.Sched, Chunk: c.Chunk}
	if c.Resized {
		// Cycle the team through shrink, grow and restore at step
		// boundaries — the resize pattern a space-sharing scheduler
		// applies to a running job.
		sizes := []int{1, c.Workers + 2, maxInt(1, c.Workers-1), c.Workers}
		spec.StepHook = func(step int) {
			team.Resize(sizes[step%len(sizes)])
		}
	}
	if c.Adaptive {
		// Replay the scripted controller: the initial pick is the
		// script's first choice (already in c.Sched/c.Chunk via
		// adaptiveCase) and each step boundary re-picks schedule,
		// chunk and — when the team is resizable mid-run — team size.
		script := adaptScript(k, c.Workers, c.Seed)
		spec.Sched, spec.Chunk = script[0].Sched, script[0].Chunk
		spec.AdaptHook = func(step int, sp *Spec) {
			ch := script[step%len(script)]
			sp.Sched, sp.Chunk = ch.Sched, ch.Chunk
			if k.Steps > 0 && team.Workers() != ch.Workers {
				team.Resize(ch.Workers)
			}
		}
	}
	out := k.Parallel(team, spec)
	if team.Workers() != c.Workers {
		team.Resize(c.Workers)
	}
	return out
}

// runCase runs the kernel once for the case and compares against ref.
func runCase(k Kernel, c Case, team *parloop.Team, n int, ref []float64) (Failure, bool) {
	out := runParallel(k, c, team, n)
	return compare(k, c, n, out, ref)
}

func compare(k Kernel, c Case, n int, got, want []float64) (Failure, bool) {
	if len(got) != len(want) {
		return Failure{
			Kernel: k.Name, Case: c, N: n,
			Detail: fmt.Sprintf("output length %d, want %d", len(got), len(want)),
		}, false
	}
	worstIdx, worstULPs := -1, uint64(0)
	for i := range got {
		if math.Float64bits(got[i]) == math.Float64bits(want[i]) {
			continue
		}
		d := ulpDist(got[i], want[i])
		if worstIdx < 0 || d > worstULPs {
			worstIdx, worstULPs = i, d
		}
		if k.MaxULPs == 0 {
			// Exact kernels fail on the first differing bit.
			break
		}
	}
	if worstIdx < 0 || (k.MaxULPs > 0 && worstULPs <= k.MaxULPs) {
		return Failure{}, true
	}
	return Failure{
		Kernel: k.Name, Case: c, N: n,
		Index: worstIdx, Got: got[worstIdx], Want: want[worstIdx], ULPs: worstULPs,
	}, false
}

// minimize shrinks a failing case to a small repro: first the problem
// size (halving probes, then finer ones), then the team size, rerunning
// serial reference and parallel body at each candidate. The search is
// bounded so a pathological kernel cannot hang the harness.
func minimize(k Kernel, c Case, found Failure) Failure {
	budget := 48
	fails := func(n, workers int) (Failure, bool) {
		if budget <= 0 {
			return Failure{}, false
		}
		budget--
		cc := c
		cc.Workers = workers
		team := parloop.NewTeam(workers)
		defer team.Close()
		f, ok := runCase(k, cc, team, n, k.Serial(n))
		return f, !ok // "fails" means comparison not ok
	}
	minN := k.MinN
	if minN < 1 {
		minN = 1
	}
	n, workers := k.N, c.Workers
	best := found
	for n > minN && budget > 0 {
		shrunk := false
		for _, cand := range []int{maxInt(minN, n/2), maxInt(minN, n-n/4), n - 1} {
			if cand >= n || cand < minN {
				continue
			}
			if f, bad := fails(cand, workers); bad {
				n, best, shrunk = cand, f, true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	for workers > 2 && budget > 0 {
		if f, bad := fails(n, workers-1); bad {
			workers, best = workers-1, f
			continue
		}
		break
	}
	best.Minimized = true
	return best
}

// DepResult is the dependence-checker verdict for one kernel.
type DepResult struct {
	Kernel string
	Races  []Race
}

// CheckDependences runs every kernel that ships a tracked variant
// under shadow-memory instrumentation on a team of the given size and
// collects the loop-carried dependences found. Shipped kernels must
// come back clean; a seeded-dependence kernel must not.
func CheckDependences(kernels []Kernel, workers int) []DepResult {
	var out []DepResult
	for _, k := range kernels {
		if k.Tracked == nil {
			continue
		}
		team := parloop.NewTeam(workers)
		tk := NewTracker(team, 0)
		k.Tracked(tk, team, k.N)
		team.Close()
		out = append(out, DepResult{Kernel: k.Name, Races: tk.Races()})
	}
	return out
}

// ulpDist returns the distance in representable float64 values between
// a and b (0 when bitwise equal, MaxUint64 when either is NaN).
func ulpDist(a, b float64) uint64 {
	ba, bb := math.Float64bits(a), math.Float64bits(b)
	if ba == bb {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxUint64
	}
	ia, ib := orderedBits(a), orderedBits(b)
	if ia < ib {
		ia, ib = ib, ia
	}
	return uint64(ia) - uint64(ib)
}

// orderedBits maps a float64 onto a signed integer line where
// consecutive integers are consecutive floats (two's-complement
// "biased" trick; both zeros map to 0).
func orderedBits(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

func firstBitDiff(a, b []float64) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
