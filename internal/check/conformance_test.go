package check

import (
	"math"
	"strings"
	"testing"

	"repro/internal/parloop"
)

// TestRegistryPassesReducedMatrix runs every shipped kernel over a
// reduced matrix (the full DefaultMatrix runs in CI via checktool).
// Team size 5 divides none of the kernel sizes, so remainder handling
// is on the path; Resize exercises mid-run team changes at step
// boundaries.
func TestRegistryPassesReducedMatrix(t *testing.T) {
	m := Matrix{TeamSizes: []int{1, 2, 3, 5}, Chunks: []int{1, 5}, Resize: true}
	rep := Run(Registry(), m)
	if !rep.OK() {
		t.Fatalf("conformance failures:\n%s", rep)
	}
	if rep.Kernels != len(Registry()) {
		t.Errorf("checked %d kernels, want %d", rep.Kernels, len(Registry()))
	}
	if rep.Cases == 0 {
		t.Error("no cases executed")
	}
}

// TestSeededDependenceCaughtAndMinimized: the harness must catch the
// deliberately broken kernel on every multi-worker cell and shrink the
// repro to the smallest failing configuration.
func TestSeededDependenceCaughtAndMinimized(t *testing.T) {
	k := SeededDependence()
	m := Matrix{TeamSizes: []int{1, 2, 4}, Chunks: []int{1}}
	rep := Run([]Kernel{k}, m)
	if rep.OK() {
		t.Fatal("seeded loop-carried dependence passed the harness")
	}
	// The workers=1 cell runs the recurrence in order and passes; the
	// workers=2 and workers=4 cells each fail once. Failures carry the
	// minimized case, so both report workers=2 below.
	if len(rep.Failures) != 2 {
		t.Fatalf("%d failures, want 2 (workers 2 and 4):\n%s", len(rep.Failures), rep)
	}
	for _, f := range rep.Failures {
		if !f.Minimized {
			t.Errorf("failure not minimized: %v", f)
			continue
		}
		// The recurrence breaks at the first chunk boundary, so the
		// minimal repro is two elements on two workers.
		if f.N != k.MinN {
			t.Errorf("minimized to n=%d, want %d: %v", f.N, k.MinN, f)
		}
		if f.Case.Workers != 2 {
			t.Errorf("minimized to workers=%d, want 2: %v", f.Case.Workers, f)
		}
		if f.Got == f.Want {
			t.Errorf("failure without a value mismatch: %v", f)
		}
		if s := f.String(); !strings.Contains(s, k.Name) {
			t.Errorf("failure string misses kernel name: %q", s)
		}
	}
}

// TestLengthMismatchReported: a parallel body that drops or duplicates
// output elements is a structural failure with a Detail, not a value
// diff.
func TestLengthMismatchReported(t *testing.T) {
	k := Kernel{
		Name: "short-output", N: 64, MinN: 1,
		Serial: func(n int) []float64 { return make([]float64, n) },
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			return make([]float64, spec.N-1)
		},
	}
	rep := Run([]Kernel{k}, Matrix{TeamSizes: []int{2}})
	if rep.OK() {
		t.Fatal("length mismatch not reported")
	}
	if d := rep.Failures[0].Detail; !strings.Contains(d, "length") {
		t.Errorf("detail %q does not mention the length mismatch", d)
	}
}

// TestNondeterministicRerunCaught: under the deterministic schedules
// (Static, StaticCyclic) the harness reruns each cell and demands
// bit-identical output — the reproducibility the paper relies on for
// debugging parallel runs.
func TestNondeterministicRerunCaught(t *testing.T) {
	calls := 0
	k := Kernel{
		Name: "flaky", N: 8, MinN: 1,
		Schedules: []parloop.Schedule{parloop.Static},
		Serial:    func(n int) []float64 { return []float64{1} },
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			calls++
			if calls == 1 {
				return []float64{1} // first run matches the reference...
			}
			return []float64{float64(calls)} // ...then drifts per call
		},
	}
	rep := Run([]Kernel{k}, Matrix{TeamSizes: []int{2}})
	if rep.OK() {
		t.Fatal("nondeterministic rerun not caught")
	}
	if d := rep.Failures[0].Detail; !strings.Contains(d, "nondeterministic") {
		t.Errorf("detail %q does not mention nondeterminism", d)
	}
}

// TestULPBoundAdmitsRegrouping: a kernel one ULP off passes with
// MaxULPs >= 1 and fails with 0.
func TestULPBoundAdmitsRegrouping(t *testing.T) {
	mk := func(maxULPs uint64) Kernel {
		return Kernel{
			Name: "one-ulp", N: 4, MinN: 4, MaxULPs: maxULPs,
			Serial: func(n int) []float64 { return []float64{1.0} },
			Parallel: func(t *parloop.Team, spec Spec) []float64 {
				return []float64{math.Nextafter(1.0, 2.0)}
			},
		}
	}
	if rep := Run([]Kernel{mk(1)}, Matrix{TeamSizes: []int{2}}); !rep.OK() {
		t.Errorf("1-ulp error rejected under MaxULPs=1:\n%s", rep)
	}
	rep := Run([]Kernel{mk(0)}, Matrix{TeamSizes: []int{2}})
	if rep.OK() {
		t.Fatal("1-ulp error accepted under exact comparison")
	}
	if got := rep.Failures[0].ULPs; got != 1 {
		t.Errorf("reported %d ulps, want 1", got)
	}
}

func TestULPDist(t *testing.T) {
	next := math.Nextafter
	cases := []struct {
		a, b float64
		want uint64
	}{
		{1.0, 1.0, 0},
		{0.0, math.Copysign(0, -1), 0}, // both zeros coincide
		{1.0, next(1.0, 2.0), 1},
		{next(1.0, 2.0), 1.0, 1}, // symmetric
		{-1.0, next(-1.0, -2.0), 1},
		// Smallest positive and negative denormals straddle zero at
		// distance two.
		{next(0, 1), next(0, -1), 2},
		{1.0, math.NaN(), math.MaxUint64},
		// Bitwise-identical NaNs short-circuit to 0; compare() never
		// reaches ulpDist for bit-equal elements anyway.
		{math.NaN(), math.NaN(), 0},
	}
	for _, c := range cases {
		if got := ulpDist(c.a, c.b); got != c.want {
			t.Errorf("ulpDist(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestOrderedBitsMonotone(t *testing.T) {
	vals := []float64{
		math.Inf(-1), -1e300, -1.5, -math.SmallestNonzeroFloat64,
		0, math.SmallestNonzeroFloat64, 1.5, 1e300, math.Inf(1),
	}
	for i := 1; i < len(vals); i++ {
		if orderedBits(vals[i-1]) >= orderedBits(vals[i]) {
			t.Errorf("orderedBits not monotone at %v -> %v", vals[i-1], vals[i])
		}
	}
}

// TestResizeVariantResizesTheTeam: the resize column must actually
// change the team size mid-run, and restore it afterwards.
func TestResizeVariantResizesTheTeam(t *testing.T) {
	seen := map[int]bool{}
	k := Kernel{
		Name: "observe-resize", N: 16, MinN: 1, Steps: 4,
		Serial: func(n int) []float64 { return make([]float64, n) },
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			out := make([]float64, spec.N)
			for s := 0; s < 4; s++ {
				spec.Step(s)
				seen[t.Workers()] = true
				t.ForSched(spec.N, spec.Sched, spec.Chunk, func(lo, hi int) {})
			}
			return out
		},
	}
	rep := Run([]Kernel{k}, Matrix{TeamSizes: []int{4}, Resize: true})
	if !rep.OK() {
		t.Fatalf("unexpected failures:\n%s", rep)
	}
	if len(seen) < 2 {
		t.Errorf("resize column ran at team sizes %v; want several", seen)
	}
}
