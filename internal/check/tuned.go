package check

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/parloop"
)

// tunedKernels registers the tuned inner-loop kernel layer against its
// scalar references: the lane-batched and planar band solvers (bitwise
// — per system they perform the scalar eliminations in the scalar
// order) and the unrolled slice reductions (ULP-bounded for sums,
// whose four-accumulator unroll regroups the additions; exact for
// max). The parallel bodies partition independent solves across the
// team, so the matrix also proves the tuned forms safe inside regions.
func tunedKernels() []Kernel {
	return []Kernel{
		tridiagBatchKernel(),
		pentadiagBatchKernel(),
		planarTunedKernel(),
		sumSliceKernel(),
		dotSliceKernel(),
		maxSliceKernel(),
	}
}

// batchOrder is the system order used by the batched-solver kernels.
const batchOrder = 40

// laneSeed spreads deterministic band data across batches and lanes.
func laneSeed(batch, lane int) float64 {
	return float64(batch*linalg.Lanes+lane) * 1.618
}

// tridiagBands builds one diagonally dominant 5-lane tridiagonal batch.
func tridiagBands(batch, m int) (a, b, c, d [linalg.Lanes][]float64) {
	for l := 0; l < linalg.Lanes; l++ {
		s := laneSeed(batch, l)
		a[l] = make([]float64, m)
		b[l] = make([]float64, m)
		c[l] = make([]float64, m)
		d[l] = make([]float64, m)
		for i := 0; i < m; i++ {
			t := float64(i)
			a[l][i] = 0.8 * math.Sin(s+1.3*t)
			c[l][i] = 0.8 * math.Cos(s+0.7*t)
			b[l][i] = 3 + 0.5*math.Sin(s*0.9+t)
			d[l][i] = 2 * math.Sin(s+2.1*t)
		}
	}
	return
}

// tridiagBatchKernel: N independent 5-lane tridiagonal batches. The
// serial reference solves every lane with the scalar Thomas solver;
// the parallel body deals batches to workers and solves each with the
// lane-batched SolveTridiag5. Interleaving lanes reorders nothing
// within a lane, so every schedule must reproduce the serial bits.
func tridiagBatchKernel() Kernel {
	solve := func(batch int, batched bool, out []float64) {
		a, b, c, d := tridiagBands(batch, batchOrder)
		if batched {
			linalg.SolveTridiag5(&a, &b, &c, &d, batchOrder)
		} else {
			for l := 0; l < linalg.Lanes; l++ {
				linalg.SolveTridiag(a[l], b[l], c[l], d[l])
			}
		}
		for l := 0; l < linalg.Lanes; l++ {
			copy(out[l*batchOrder:], d[l])
		}
	}
	const per = linalg.Lanes * batchOrder
	return Kernel{
		Name: "tridiag-batch5", N: 48, MinN: 1,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			out := make([]float64, n*per)
			for i := 0; i < n; i++ {
				solve(i, false, out[i*per:])
			}
			return out
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			out := make([]float64, spec.N*per)
			t.ForSched(spec.N, spec.Sched, spec.Chunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					solve(i, true, out[i*per:])
				}
			})
			return out
		},
	}
}

// pentadiagBands builds one diagonally dominant 5-lane pentadiagonal
// batch.
func pentadiagBands(batch, m int) (e, a, b, c, f, d [linalg.Lanes][]float64) {
	for l := 0; l < linalg.Lanes; l++ {
		s := laneSeed(batch, l) + 0.5
		e[l] = make([]float64, m)
		a[l] = make([]float64, m)
		b[l] = make([]float64, m)
		c[l] = make([]float64, m)
		f[l] = make([]float64, m)
		d[l] = make([]float64, m)
		for i := 0; i < m; i++ {
			t := float64(i)
			e[l][i] = 0.3 * math.Sin(s+1.9*t)
			a[l][i] = 0.7 * math.Cos(s+1.1*t)
			c[l][i] = 0.7 * math.Sin(s+0.6*t)
			f[l][i] = 0.3 * math.Cos(s+2.3*t)
			b[l][i] = 3.5 + 0.5*math.Cos(s*1.7+t)
			d[l][i] = 2 * math.Sin(s+3.1*t)
		}
	}
	return
}

// pentadiagBatchKernel: the pentadiagonal companion of tridiag-batch5,
// covering the implicit fourth-difference dissipation path. Bitwise.
func pentadiagBatchKernel() Kernel {
	solve := func(batch int, batched bool, out []float64) {
		e, a, b, c, f, d := pentadiagBands(batch, batchOrder)
		if batched {
			linalg.SolvePentadiag5(&e, &a, &b, &c, &f, &d, batchOrder)
		} else {
			for l := 0; l < linalg.Lanes; l++ {
				linalg.SolvePentadiag(e[l], a[l], b[l], c[l], f[l], d[l])
			}
		}
		for l := 0; l < linalg.Lanes; l++ {
			copy(out[l*batchOrder:], d[l])
		}
	}
	const per = linalg.Lanes * batchOrder
	return Kernel{
		Name: "pentadiag-batch5", N: 32, MinN: 1,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			out := make([]float64, n*per)
			for i := 0; i < n; i++ {
				solve(i, false, out[i*per:])
			}
			return out
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			out := make([]float64, spec.N*per)
			t.ForSched(spec.N, spec.Sched, spec.Chunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					solve(i, true, out[i*per:])
				}
			})
			return out
		},
	}
}

// planarTunedKernel: N independent planes of tridiagonal systems in the
// vector code's [rows][systems] layout. Serial uses the scalar planar
// solver; workers solve whole planes with the unrolled tuned form.
// Unrolling the system loop reorders nothing within a system — bitwise.
func planarTunedKernel() Kernel {
	const rows, nsys = 24, 13
	const per = rows * nsys
	gen := func(plane int) (a, b, c, d []float64) {
		s := float64(plane) * 2.718
		a = make([]float64, per)
		b = make([]float64, per)
		c = make([]float64, per)
		d = make([]float64, per)
		for i := 0; i < per; i++ {
			t := float64(i)
			a[i] = 0.8 * math.Sin(s+0.9*t)
			c[i] = 0.8 * math.Cos(s+1.7*t)
			b[i] = 3 + 0.5*math.Sin(s+0.3*t)
			d[i] = 2 * math.Cos(s+1.1*t)
		}
		return
	}
	return Kernel{
		Name: "planar-tuned", N: 24, MinN: 1,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			out := make([]float64, 0, n*per)
			for i := 0; i < n; i++ {
				a, b, c, d := gen(i)
				linalg.SolveTridiagPlanar(a, b, c, d, rows, nsys)
				out = append(out, d...)
			}
			return out
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			out := make([]float64, spec.N*per)
			t.ForSched(spec.N, spec.Sched, spec.Chunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					a, b, c, d := gen(i)
					linalg.SolveTridiagPlanarTuned(a, b, c, d, rows, nsys)
					copy(out[i*per:], d)
				}
			})
			return out
		},
	}
}

// sumSliceKernel: the unrolled slice sum against the strict
// left-to-right scalar fold. The four-accumulator unroll and the
// per-worker partial merge both regroup the additions, so the bound is
// the same ULP allowance the closure-reduction kernels carry. The
// slice reduction partitions statically inside; the schedule axis does
// not apply.
func sumSliceKernel() Kernel {
	return Kernel{
		Name: "sum-slice-ulp", N: 4096, MinN: 1,
		MaxULPs: 1 << 16,
		Serial: func(n int) []float64 {
			acc := 0.0
			for _, v := range inputF64(n, 8.0) {
				acc += v
			}
			return []float64{acc}
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			return []float64{parloop.SumSlice(t, inputF64(spec.N, 8.0))}
		},
	}
}

// dotSliceKernel: the unrolled slice dot product, ULP-bounded like the
// sums.
func dotSliceKernel() Kernel {
	gen := func(n int) (x, y []float64) {
		x = inputF64(n, 9.0)
		y = make([]float64, n)
		for i := range y {
			y[i] = 1.5 + 0.5*math.Cos(float64(i))
		}
		return
	}
	return Kernel{
		Name: "dot-slice-ulp", N: 4096, MinN: 1,
		MaxULPs: 1 << 16,
		Serial: func(n int) []float64 {
			x, y := gen(n)
			acc := 0.0
			for i := range x {
				acc += x[i] * y[i]
			}
			return []float64{acc}
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			x, y := gen(spec.N)
			return []float64{parloop.DotSlice(t, x, y)}
		},
	}
}

// maxSliceKernel: the unrolled slice max. Grouping cannot change a
// maximum, so the tuned form must match the serial fold bitwise at
// every team size.
func maxSliceKernel() Kernel {
	return Kernel{
		Name: "max-slice-exact", N: 4096, MinN: 1,
		Serial: func(n int) []float64 {
			acc := math.Inf(-1)
			for _, v := range inputF64(n, 10.0) {
				if v > acc {
					acc = v
				}
			}
			return []float64{acc}
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			return []float64{parloop.MaxSlice(t, inputF64(spec.N, 10.0))}
		},
	}
}
