package check

import (
	"fmt"

	"repro/internal/euler"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/parloop"
)

// f3dKernels adapts the real solver to the conformance harness: the
// cache-tuned solver with one fork-join per phase, and the merged
// (Example 3: parallelize the parent) variant with barriers between
// phases. The solver partitions its loops statically inside, so the
// schedule axis does not apply; the team-size and mid-run-resize axes
// do, and the paper's §5 claim — identical answers and convergence
// behaviour at every processor count — must hold bitwise over the full
// residual history and the final flow state.
func f3dKernels() []Kernel {
	ks := []Kernel{}
	for _, impl := range []f3d.KernelImpl{f3d.ScalarKernels, f3d.TunedKernels} {
		for _, merged := range []bool{false, true} {
			name := "f3d-cache"
			if merged {
				name = "f3d-merged"
			}
			if impl == f3d.TunedKernels {
				name += "-tuned"
			}
			impl, merged := impl, merged
			// The serial reference always runs the scalar kernels, so
			// the tuned variants are proved against the scalar bits, not
			// merely self-consistent.
			ks = append(ks, Kernel{
				Name: name, N: 6, MinN: 3, Steps: f3dSteps,
				Serial: func(n int) []float64 {
					return runF3D(n, nil, merged, f3d.ScalarKernels, nil)
				},
				Parallel: func(t *parloop.Team, spec Spec) []float64 {
					return runF3D(spec.N, t, merged, impl, spec.StepHook)
				},
			})
		}
	}
	return ks
}

// f3dSteps is the number of implicit time steps each conformance run
// advances.
const f3dSteps = 5

// runF3D advances a pulse-initialized single-zone case for f3dSteps
// steps and returns the full observable output: per-step residual and
// max-delta (the convergence history), then every conserved value of
// the final state. n scales the zone (n+2 × n+1 × n, so the three
// dimensions stay distinct and none divides typical team sizes). A nil
// team runs the serial reference.
func runF3D(n int, team *parloop.Team, merged bool, kernels f3d.KernelImpl, hook func(step int)) []float64 {
	cfg := f3d.DefaultConfig(grid.Single(n+2, n+1, n))
	opts := f3d.CacheOptions{Team: team, Merged: merged, Kernels: kernels}
	if team != nil {
		opts.Phases = f3d.AllPhases()
	}
	s, err := f3d.NewCacheSolver(cfg, opts)
	if err != nil {
		panic(fmt.Sprintf("check: f3d solver: %v", err))
	}
	defer s.Close()
	f3d.InitPulse(s, 0.01)
	out := make([]float64, 0, 2*f3dSteps)
	for i := 0; i < f3dSteps; i++ {
		if hook != nil {
			hook(i)
		}
		st := s.Step()
		out = append(out, st.Residual, st.MaxDelta)
	}
	var buf [euler.NC]float64
	for _, zs := range s.Zones() {
		z := zs.Zone
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					zs.Q.Point(j, k, l, buf[:])
					out = append(out, buf[:]...)
				}
			}
		}
	}
	return out
}
