package check

import (
	"math"

	"repro/internal/euler"
	"repro/internal/parloop"
)

// Registry returns the shipped conformance kernels: the paper's
// Example 1–3 loop structures, the reduction family, and the euler and
// f3d numerical kernels. Every kernel here must pass the full matrix;
// SeededDependence (deliberately racy) is not part of the registry.
func Registry() []Kernel {
	ks := []Kernel{
		saxpyKernel(),
		stencilKernel(),
		mergedPhasesKernel(),
		sumIntKernel(),
		sumFPKernel(),
		dotKernel(),
		maxKernel(),
		eulerPointKernel(),
	}
	ks = append(ks, tunedKernels()...)
	ks = append(ks, f3dKernels()...)
	ks = append(ks, planKernels()...)
	ks = append(ks, clusterKernels()...)
	return ks
}

// inputF64 fills deterministic, strictly reproducible test data: a
// smooth signal with enough variation that partition bugs move the
// answer.
func inputF64(n int, seed float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(seed+3.7*float64(i)) + 0.5*math.Cos(seed*float64(i+1))
	}
	return x
}

// inputInt fills integer-valued float64 data. Sums of these are exact
// in float64 (well under 2^53), so any regrouping of the addition —
// any schedule, any team size — must produce identical bits.
func inputInt(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = float64((uint32(i) * 2654435761) % 1024)
	}
	return x
}

// saxpyKernel is the paper's Example 1 shape: a single vectorizable
// loop parallelized directly. Elementwise, so every schedule must be
// bitwise identical to serial.
func saxpyKernel() Kernel {
	const a = 1.25
	body := func(x, y, out []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = a*x[i] + y[i]
		}
	}
	return Kernel{
		Name: "saxpy", N: 4096, MinN: 1,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			x, y := inputF64(n, 1.0), inputF64(n, 2.0)
			out := make([]float64, n)
			body(x, y, out, 0, n)
			return out
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			x, y := inputF64(spec.N, 1.0), inputF64(spec.N, 2.0)
			out := make([]float64, spec.N)
			t.ForSched(spec.N, spec.Sched, spec.Chunk, func(lo, hi int) {
				body(x, y, out, lo, hi)
			})
			return out
		},
		Tracked: func(tk *Tracker, t *parloop.Team, n int) []float64 {
			x := tk.Track("saxpy.x", inputF64(n, 1.0))
			y := tk.Track("saxpy.y", inputF64(n, 2.0))
			out := tk.Float64s("saxpy.out", n)
			t.ForSchedW(n, parloop.Dynamic, 7, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					out.Store(w, i, a*x.Load(w, i)+y.Load(w, i))
				}
			})
			return out.Data()
		},
	}
}

// stencilKernel is a multi-step ping-pong Jacobi smoother: each step
// one parallel region reading the previous buffer and writing the
// next. Elementwise per step, so exact under every schedule; the step
// structure gives the driver resize boundaries, and the tracked
// variant proves the cross-step reads are barrier-ordered (a new
// region per step).
func stencilKernel() Kernel {
	const steps = 6
	stepBody := func(cur, next []float64, n, lo, hi int) {
		for i := lo; i < hi; i++ {
			l, r := i-1, i+1
			if l < 0 {
				l = 0
			}
			if r > n-1 {
				r = n - 1
			}
			next[i] = 0.25*cur[l] + 0.5*cur[i] + 0.25*cur[r]
		}
	}
	return Kernel{
		Name: "stencil3", N: 2048, MinN: 1, Steps: steps,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			cur, next := inputF64(n, 3.0), make([]float64, n)
			for s := 0; s < steps; s++ {
				stepBody(cur, next, n, 0, n)
				cur, next = next, cur
			}
			return cur
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			n := spec.N
			cur, next := inputF64(n, 3.0), make([]float64, n)
			for s := 0; s < steps; s++ {
				spec.Step(s)
				t.ForSched(n, spec.Sched, spec.Chunk, func(lo, hi int) {
					stepBody(cur, next, n, lo, hi)
				})
				cur, next = next, cur
			}
			return cur
		},
		Tracked: func(tk *Tracker, t *parloop.Team, n int) []float64 {
			cur := tk.Track("stencil3.a", inputF64(n, 3.0))
			next := tk.Track("stencil3.b", make([]float64, n))
			for s := 0; s < steps; s++ {
				t.ForSchedW(n, parloop.Static, 0, func(w, lo, hi int) {
					for i := lo; i < hi; i++ {
						l, r := i-1, i+1
						if l < 0 {
							l = 0
						}
						if r > n-1 {
							r = n - 1
						}
						next.Store(w, i, 0.25*cur.Load(w, l)+0.5*cur.Load(w, i)+0.25*cur.Load(w, r))
					}
				})
				cur, next = next, cur
			}
			return cur.Data()
		},
	}
}

// mergedPhasesKernel is the paper's Example 2/3 shape: several loop
// phases merged under a single fork-join, with a barrier separating
// the dependent phases. The second phase reads across worker
// boundaries — legal exactly because of the barrier, which the tracked
// variant proves.
func mergedPhasesKernel() Kernel {
	const steps = 4
	phaseA := func(a, b []float64, lo, hi int) {
		for i := lo; i < hi; i++ {
			b[i] = math.Sqrt(math.Abs(a[i])) + 0.1
		}
	}
	phaseB := func(a, b []float64, n, lo, hi int) {
		for i := lo; i < hi; i++ {
			l, r := i-1, i+1
			if l < 0 {
				l = 0
			}
			if r > n-1 {
				r = n - 1
			}
			a[i] = b[l] + b[i] + b[r]
		}
	}
	return Kernel{
		Name: "merged-phases", N: 1536, MinN: 1, Steps: steps,
		// The phases partition with the worker's static range inside
		// one region; chunked schedules do not apply.
		Schedules: []parloop.Schedule{parloop.Static},
		Serial: func(n int) []float64 {
			a, b := inputF64(n, 4.0), make([]float64, n)
			for s := 0; s < steps; s++ {
				phaseA(a, b, 0, n)
				phaseB(a, b, n, 0, n)
			}
			return a
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			n := spec.N
			a, b := inputF64(n, 4.0), make([]float64, n)
			for s := 0; s < steps; s++ {
				spec.Step(s)
				t.Region(func(ctx *parloop.WorkerCtx) {
					lo, hi := ctx.Range(n)
					phaseA(a, b, lo, hi)
					ctx.Barrier()
					phaseB(a, b, n, lo, hi)
				})
			}
			return a
		},
		Tracked: func(tk *Tracker, t *parloop.Team, n int) []float64 {
			a := tk.Track("merged.a", inputF64(n, 4.0))
			b := tk.Track("merged.b", make([]float64, n))
			for s := 0; s < steps; s++ {
				t.Region(func(ctx *parloop.WorkerCtx) {
					w := ctx.ID()
					lo, hi := ctx.Range(n)
					for i := lo; i < hi; i++ {
						b.Store(w, i, math.Sqrt(math.Abs(a.Load(w, i)))+0.1)
					}
					ctx.Barrier()
					for i := lo; i < hi; i++ {
						l, r := i-1, i+1
						if l < 0 {
							l = 0
						}
						if r > n-1 {
							r = n - 1
						}
						a.Store(w, i, b.Load(w, l)+b.Load(w, i)+b.Load(w, r))
					}
				})
			}
			return a.Data()
		},
	}
}

// reduceWith runs a schedule-driven reduction: per-worker partials
// folded over the dealt chunks, merged in ascending worker order. The
// partition varies with the schedule, so the merge tree varies — which
// is exactly what the integer kernel proves harmless and the FP kernel
// bounds in ULPs.
func reduceWith(t *parloop.Team, spec Spec, x []float64, identity float64, fold func(acc, v float64) float64) float64 {
	partials := make([]float64, t.Workers())
	for w := range partials {
		partials[w] = identity
	}
	t.ForSchedW(spec.N, spec.Sched, spec.Chunk, func(w, lo, hi int) {
		acc := partials[w]
		for i := lo; i < hi; i++ {
			acc = fold(acc, x[i])
		}
		partials[w] = acc
	})
	acc := identity
	for _, p := range partials {
		acc = fold(acc, p)
	}
	return acc
}

// sumIntKernel: ordered reduction over integer-valued data. Integer
// sums are exact in float64, so the result must be bit-identical to
// the serial fold for every schedule, chunk and team size — the
// "exact for ordered Reduce" cell of the matrix.
func sumIntKernel() Kernel {
	return Kernel{
		Name: "sum-int-exact", N: 4096, MinN: 1,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			acc := 0.0
			for _, v := range inputInt(n) {
				acc += v
			}
			return []float64{acc}
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			x := inputInt(spec.N)
			return []float64{reduceWith(t, spec, x, 0, func(a, v float64) float64 { return a + v })}
		},
	}
}

// sumFPKernel: the same reduction over real-valued data. Chunked
// schedules regroup the additions, so the serial comparison is
// ULP-bounded rather than exact; the bound still catches lost or
// double-counted chunks outright (those move the sum by far more).
func sumFPKernel() Kernel {
	return Kernel{
		Name: "sum-fp-ulp", N: 4096, MinN: 1,
		MaxULPs:   1 << 16,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			acc := 0.0
			for _, v := range inputF64(n, 5.0) {
				acc += v
			}
			return []float64{acc}
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			x := inputF64(spec.N, 5.0)
			return []float64{reduceWith(t, spec, x, 0, func(a, v float64) float64 { return a + v })}
		},
	}
}

// dotKernel: a two-array FP reduction (the residual-norm shape of the
// solvers), ULP-bounded like sumFP.
func dotKernel() Kernel {
	gen := func(n int) (x, y []float64) {
		x = inputF64(n, 6.0)
		y = make([]float64, n)
		for i := range y {
			y[i] = 1.5 + 0.5*math.Sin(float64(i)) // positive: bounds the conditioning
		}
		return x, y
	}
	return Kernel{
		Name: "dot-ulp", N: 4096, MinN: 1,
		MaxULPs:   1 << 16,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			x, y := gen(n)
			acc := 0.0
			for i := range x {
				acc += x[i] * y[i]
			}
			return []float64{acc}
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			x, y := gen(spec.N)
			partials := make([]float64, t.Workers())
			t.ForSchedW(spec.N, spec.Sched, spec.Chunk, func(w, lo, hi int) {
				acc := partials[w]
				for i := lo; i < hi; i++ {
					acc += x[i] * y[i]
				}
				partials[w] = acc
			})
			acc := 0.0
			for _, p := range partials {
				acc += p
			}
			return []float64{acc}
		},
	}
}

// maxKernel: a max reduction. Max is insensitive to grouping (the
// result is one of the inputs), so every schedule must be bitwise
// identical to serial — no ULP allowance.
func maxKernel() Kernel {
	return Kernel{
		Name: "max-exact", N: 4096, MinN: 1,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			acc := math.Inf(-1)
			for _, v := range inputF64(n, 7.0) {
				if v > acc {
					acc = v
				}
			}
			return []float64{acc}
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			x := inputF64(spec.N, 7.0)
			return []float64{reduceWith(t, spec, x, math.Inf(-1), math.Max)}
		},
	}
}

// eulerPointKernel sweeps the euler package's per-point kernels —
// directional eigensystem, flux and spectral radius — over a batch of
// varied physical states, writing a per-point checksum. Pure per-point
// arithmetic: exact under every schedule.
func eulerPointKernel() Kernel {
	kx, ky, kz := 1/math.Sqrt(3), 1/math.Sqrt(3), 1/math.Sqrt(3)
	point := func(i, n int) float64 {
		t := float64(i) / float64(n)
		u := euler.Prim{
			Rho: 1 + 0.3*math.Sin(7*t),
			U:   0.4 + 0.2*math.Cos(3*t),
			V:   0.1 * math.Sin(5*t),
			W:   0.05 * math.Cos(11*t),
			P:   1 + 0.25*math.Sin(2*t),
		}.Cons()
		e := euler.EigensystemDir(kx, ky, kz, u)
		f := euler.FluxDir(kx, ky, kz, u)
		v := euler.SpectralRadiusDir(kx, ky, kz, u)
		for c := 0; c < euler.NC; c++ {
			v += e.Lambda[c] + f[c]
		}
		return v
	}
	return Kernel{
		Name: "euler-point", N: 1024, MinN: 1,
		Schedules: AllSchedules,
		Serial: func(n int) []float64 {
			out := make([]float64, n)
			for i := range out {
				out[i] = point(i, n)
			}
			return out
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			out := make([]float64, spec.N)
			t.ForSched(spec.N, spec.Sched, spec.Chunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = point(i, spec.N)
				}
			})
			return out
		},
	}
}

// SeededDependence is the deliberately broken kernel: a prefix
// recurrence a[i] = a[i-1] + 1 parallelized as if it were independent
// — the classic C$doacross misuse. Its serial output is a[i] = i+1.
//
// The untracked Parallel body commits the bug in its deterministic,
// race-free form (each worker restarts the recurrence from a stale
// snapshot at its chunk boundary), so the conformance harness catches
// a reproducibly wrong answer without tripping Go's runtime race
// detector. The Tracked variant commits the true cross-worker
// recurrence through lock-synchronized shadow memory; the dependence
// checker must flag it on every execution, whatever the interleaving —
// the case `go test -race` misses when the schedule happens not to
// interleave. It is not part of Registry.
func SeededDependence() Kernel {
	return Kernel{
		Name: "seeded-loop-carried", N: 1024, MinN: 2,
		Schedules: []parloop.Schedule{parloop.Static},
		Serial: func(n int) []float64 {
			a := make([]float64, n)
			for i := 0; i < n; i++ {
				v := 1.0
				if i > 0 {
					v += a[i-1]
				}
				a[i] = v
			}
			return a
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			prev := make([]float64, spec.N) // stale snapshot: all zeros
			a := make([]float64, spec.N)
			t.ForSched(spec.N, spec.Sched, spec.Chunk, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					v := 1.0
					if i == lo && i > 0 {
						v += prev[i-1] // the dependence crosses the chunk boundary
					} else if i > lo {
						v += a[i-1]
					}
					a[i] = v
				}
			})
			return a
		},
		Tracked: func(tk *Tracker, t *parloop.Team, n int) []float64 {
			a := tk.Float64s("seeded.a", n)
			t.ForSchedW(n, parloop.Static, 0, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					v := 1.0
					if i > 0 {
						v += a.Load(w, i-1)
					}
					a.Store(w, i, v)
				}
			})
			return a.Data()
		},
	}
}
