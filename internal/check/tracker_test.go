package check

import (
	"math"
	"strings"
	"testing"

	"repro/internal/parloop"
)

// TestCheckerFlagsSeededDependence is the negative test the subsystem
// exists for: the seeded loop-carried recurrence must be flagged on
// every execution, for every team size above one — detection rests on
// barrier epochs, not on the racy interleaving actually occurring.
func TestCheckerFlagsSeededDependence(t *testing.T) {
	k := SeededDependence()
	for _, workers := range []int{2, 3, 8} {
		res := CheckDependences([]Kernel{k}, workers)
		if len(res) != 1 {
			t.Fatalf("workers=%d: %d results, want 1", workers, len(res))
		}
		races := res[0].Races
		if len(races) == 0 {
			t.Fatalf("workers=%d: seeded loop-carried dependence not flagged", workers)
		}
		r := races[0]
		if r.Array != "seeded.a" {
			t.Errorf("workers=%d: race on array %q, want seeded.a", workers, r.Array)
		}
		if r.Prev.Worker == r.Cur.Worker {
			t.Errorf("workers=%d: race between accesses of one worker: %v", workers, r)
		}
		if r.Prev.Phase != r.Cur.Phase {
			t.Errorf("workers=%d: race across phases %d vs %d", workers, r.Prev.Phase, r.Cur.Phase)
		}
		if !r.Prev.Write && !r.Cur.Write {
			t.Errorf("workers=%d: race with no write: %v", workers, r)
		}
		if s := r.String(); !strings.Contains(s, "seeded.a") || !strings.Contains(s, "race") {
			t.Errorf("unhelpful race message: %q", s)
		}
	}
}

// TestCheckerSilentOnRegistry: every shipped kernel with a tracked
// variant must come back clean — their cross-worker reads are
// barrier-separated by construction.
func TestCheckerSilentOnRegistry(t *testing.T) {
	for _, workers := range []int{2, 4, 7} {
		for _, res := range CheckDependences(Registry(), workers) {
			if len(res.Races) != 0 {
				t.Errorf("workers=%d: shipped kernel %s flagged: %v", workers, res.Kernel, res.Races[0])
			}
		}
	}
}

// TestCheckerSerialTeamSilent: a one-worker team executes the
// recurrence in order; there is no dependence to violate and the
// checker must stay silent.
func TestCheckerSerialTeamSilent(t *testing.T) {
	res := CheckDependences([]Kernel{SeededDependence()}, 1)
	if n := len(res[0].Races); n != 0 {
		t.Errorf("serial execution flagged %d races", n)
	}
}

// TestTrackedVariantsComputeCorrectly: the instrumented bodies are
// still the kernel — their output must match the serial reference (the
// seeded kernel excepted, it is wrong by design).
func TestTrackedVariantsComputeCorrectly(t *testing.T) {
	for _, k := range Registry() {
		if k.Tracked == nil {
			continue
		}
		team := parloop.NewTeam(3)
		tk := NewTracker(team, 0)
		got := k.Tracked(tk, team, k.N)
		team.Close()
		want := k.Serial(k.N)
		if len(got) != len(want) {
			t.Fatalf("%s tracked: length %d, want %d", k.Name, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("%s tracked: out[%d] = %v, want %v", k.Name, i, got[i], want[i])
			}
		}
	}
}

func TestWriteWriteConflictDetected(t *testing.T) {
	team := parloop.NewTeam(4)
	defer team.Close()
	tk := NewTracker(team, 0)
	a := tk.Float64s("shared", 8)
	team.Region(func(ctx *parloop.WorkerCtx) {
		a.Store(ctx.ID(), 0, float64(ctx.ID()))
	})
	races := tk.Races()
	if len(races) == 0 {
		t.Fatal("cross-worker same-phase writes not flagged")
	}
	if kind := races[0].Kind(); kind != "write-write" {
		t.Errorf("race kind %q, want write-write", kind)
	}
}

func TestSharedReadsAreNotRaces(t *testing.T) {
	team := parloop.NewTeam(4)
	defer team.Close()
	tk := NewTracker(team, 0)
	a := tk.Track("input", []float64{1, 2, 3, 4})
	var sink [8]float64
	team.Region(func(ctx *parloop.WorkerCtx) {
		w := ctx.ID()
		sink[w] = a.Load(w, 0) + a.Load(w, 1)
	})
	if races := tk.Races(); len(races) != 0 {
		t.Errorf("read-only sharing flagged: %v", races[0])
	}
}

// TestBarrierOrdersConflict: the same write/read pair that races
// within a phase is legal when a barrier separates the two loops.
func TestBarrierOrdersConflict(t *testing.T) {
	team := parloop.NewTeam(3)
	defer team.Close()

	// Without a barrier: worker w writes b[w], then reads a neighbor's
	// element in the same phase — a race.
	tk := NewTracker(team, 0)
	b := tk.Float64s("b", 3)
	var sink [3]float64
	team.Region(func(ctx *parloop.WorkerCtx) {
		w := ctx.ID()
		b.Store(w, w, float64(w))
		sink[w] = b.Load(w, (w+1)%3)
	})
	if len(tk.Races()) == 0 {
		t.Fatal("unbarriered cross-worker read of fresh writes not flagged")
	}

	// With a barrier between the phases: clean.
	tk2 := NewTracker(team, 0)
	b2 := tk2.Float64s("b2", 3)
	team.Region(func(ctx *parloop.WorkerCtx) {
		w := ctx.ID()
		b2.Store(w, w, float64(w))
		ctx.Barrier()
		sink[w] = b2.Load(w, (w+1)%3)
	})
	if races := tk2.Races(); len(races) != 0 {
		t.Errorf("barrier-separated phases flagged: %v", races[0])
	}
}

// TestJoinOrdersConflict: accesses in different regions are separated
// by the intervening join/fork; writes from region one may be read by
// anyone in region two.
func TestJoinOrdersConflict(t *testing.T) {
	team := parloop.NewTeam(3)
	defer team.Close()
	tk := NewTracker(team, 0)
	a := tk.Float64s("a", 64)
	team.ForSchedW(64, parloop.Static, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Store(w, i, float64(i))
		}
	})
	var sums [3]float64
	team.ForSchedW(64, parloop.StaticCyclic, 5, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[w] += a.Load(w, i) // different partition: cross-worker reads
		}
	})
	if races := tk.Races(); len(races) != 0 {
		t.Errorf("join-separated write/read flagged: %v", races[0])
	}
}

func TestTrackerResetClearsState(t *testing.T) {
	team := parloop.NewTeam(2)
	defer team.Close()
	tk := NewTracker(team, 0)
	a := tk.Float64s("x", 4)
	team.Region(func(ctx *parloop.WorkerCtx) {
		a.Store(ctx.ID(), 0, 1)
	})
	if len(tk.Races()) == 0 {
		t.Fatal("setup: expected a race")
	}
	tk.Reset()
	if len(tk.Races()) != 0 {
		t.Fatal("Reset left races behind")
	}
	// A clean run after Reset stays clean (shadow cells were cleared,
	// so the pre-Reset writes cannot conflict with new accesses).
	team.ForSchedW(4, parloop.Static, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			a.Store(w, i, 2)
		}
	})
	if races := tk.Races(); len(races) != 0 {
		t.Errorf("clean run after Reset flagged: %v", races[0])
	}
}

func TestTrackerLimitCapsRaces(t *testing.T) {
	team := parloop.NewTeam(4)
	defer team.Close()
	tk := NewTracker(team, 3)
	a := tk.Float64s("x", 64)
	team.Region(func(ctx *parloop.WorkerCtx) {
		for i := 0; i < 64; i++ {
			a.Store(ctx.ID(), i, 1) // every element conflicts
		}
	})
	if got := len(tk.Races()); got > 3 {
		t.Errorf("limit 3 recorded %d races", got)
	}
}
