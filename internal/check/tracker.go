// Package check is the correctness-verification subsystem of the
// reproduction. The paper's central claim (§1, §5) is that loop-level
// parallelization leaves the algorithm unchanged: the parallel code
// must produce the serial code's answers, with the serial code's
// convergence behaviour. This package turns that claim into two
// machine-checked obligations:
//
//   - The differential conformance harness (conformance.go) runs every
//     registered kernel — f3d solver steps, euler sweeps, reductions,
//     the paper's Example 1–3 loop structures — across the full matrix
//     of {Schedule} × {team size} × {mid-run Resize} and compares the
//     output against the serial reference: bitwise for order-invariant
//     kernels, ULP-bounded where regrouping legitimately reorders
//     floating-point sums. Failures are shrunk to minimized repro
//     cases.
//
//   - The dynamic loop-dependence checker (this file) is a
//     happens-before race detector specialized to the fork-join/
//     barrier structure of parloop: opt-in Tracked arrays record every
//     read and write with the accessing worker and the team's barrier
//     epoch (parloop.Team.Phase), and two accesses to the same element
//     from different workers in the same epoch — at least one a write
//     — are a loop-carried dependence that the C$doacross-style
//     parallelization missed. Unlike go test -race, detection does not
//     depend on the racy schedule actually interleaving: any execution
//     of the racy loop is flagged.
package check

import (
	"fmt"
	"sync"

	"repro/internal/parloop"
)

// Access is one recorded shadow-memory access.
type Access struct {
	// Worker is the parloop worker index that performed the access.
	Worker int
	// Phase is the team's barrier epoch at the access
	// (parloop.Team.Phase).
	Phase uint64
	// Write reports whether the access was a store.
	Write bool
}

func (a Access) String() string {
	op := "read"
	if a.Write {
		op = "write"
	}
	return fmt.Sprintf("%s by worker %d in phase %d", op, a.Worker, a.Phase)
}

// Race is one detected loop-carried dependence: two accesses to the
// same array element by different workers within the same barrier
// epoch, at least one of them a write.
type Race struct {
	// Array is the tracked array's registered name.
	Array string
	// Index is the conflicting element.
	Index int
	// Prev is the earlier recorded access, Cur the one that exposed
	// the conflict.
	Prev, Cur Access
}

// Kind classifies the race: "write-write", "write-read" (write then
// read) or "read-write" (read then write).
func (r Race) Kind() string {
	switch {
	case r.Prev.Write && r.Cur.Write:
		return "write-write"
	case r.Prev.Write:
		return "write-read"
	default:
		return "read-write"
	}
}

func (r Race) String() string {
	return fmt.Sprintf("%s race on %s[%d]: %v conflicts with %v (no barrier between them)",
		r.Kind(), r.Array, r.Index, r.Cur, r.Prev)
}

// Tracker owns the shadow memory of one checked execution. It is bound
// to the team whose barrier epochs define the happens-before relation;
// all Tracked arrays used in a run must come from one Tracker, and the
// run's parallel regions must execute on that team.
type Tracker struct {
	team *parloop.Team

	mu     sync.Mutex
	arrays []*TrackedF64
	races  []Race
	limit  int
}

// NewTracker creates a tracker bound to the team. At most limit races
// are recorded per run (further conflicts on already-reported elements
// are suppressed element-wise regardless); limit <= 0 defaults to 100.
func NewTracker(team *parloop.Team, limit int) *Tracker {
	if limit <= 0 {
		limit = 100
	}
	return &Tracker{team: team, limit: limit}
}

// Races returns a copy of the races detected so far.
func (tk *Tracker) Races() []Race {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return append([]Race(nil), tk.races...)
}

// Reset clears the recorded races and every tracked array's shadow
// state (the data itself is untouched), so one tracker can check
// several runs.
func (tk *Tracker) Reset() {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	tk.races = tk.races[:0]
	for _, a := range tk.arrays {
		for i := range a.cells {
			a.cells[i] = cell{}
		}
	}
}

func (tk *Tracker) record(r Race) {
	tk.mu.Lock()
	if len(tk.races) < tk.limit {
		tk.races = append(tk.races, r)
	}
	tk.mu.Unlock()
}

// Float64s allocates a zeroed tracked array of length n.
func (tk *Tracker) Float64s(name string, n int) *TrackedF64 {
	return tk.Track(name, make([]float64, n))
}

// Track wraps an existing slice in shadow-memory instrumentation. The
// slice must not be accessed directly while the tracked run executes.
func (tk *Tracker) Track(name string, data []float64) *TrackedF64 {
	a := &TrackedF64{
		tk:    tk,
		name:  name,
		data:  data,
		cells: make([]cell, len(data)),
	}
	tk.mu.Lock()
	tk.arrays = append(tk.arrays, a)
	tk.mu.Unlock()
	return a
}

// cell is one element's shadow state: the last write and the reads of
// the current read epoch.
type cell struct {
	wPhase  uint64
	wWorker int32
	hasW    bool

	rPhase  uint64
	rWorker int32
	rShared bool // more than one distinct reader in rPhase
	hasR    bool

	reported bool // one race per element is enough
}

// trackShards is the lock striping of a tracked array. Accesses to the
// same element always hit the same shard, so each element's shadow
// update plus data access is atomic; the striping also makes the
// underlying data accesses lock-ordered, so a logically racy kernel
// under instrumentation does not additionally trip Go's runtime race
// detector — the checker reports the dependence instead.
const trackShards = 64

// TrackedF64 is a dependence-instrumented float64 array. Every access
// names the worker performing it (parloop.Team.ForSchedW and
// WorkerCtx.ID supply the index); serial code between regions accesses
// as worker 0.
type TrackedF64 struct {
	tk    *Tracker
	name  string
	data  []float64
	cells []cell
	mus   [trackShards]sync.Mutex
}

// Name returns the registered name.
func (a *TrackedF64) Name() string { return a.name }

// Len returns the array length.
func (a *TrackedF64) Len() int { return len(a.data) }

// Data returns the underlying slice, for inspection after the tracked
// run has finished.
func (a *TrackedF64) Data() []float64 { return a.data }

// Load records a read of element i by the worker and returns the
// value.
func (a *TrackedF64) Load(worker, i int) float64 {
	m := &a.mus[uint(i)%trackShards]
	m.Lock()
	a.note(worker, i, false)
	v := a.data[i]
	m.Unlock()
	return v
}

// Store records a write of element i by the worker and stores the
// value.
func (a *TrackedF64) Store(worker, i int, v float64) {
	m := &a.mus[uint(i)%trackShards]
	m.Lock()
	a.note(worker, i, true)
	a.data[i] = v
	m.Unlock()
}

// note updates element i's shadow state with an access by (worker,
// current phase) and reports any conflict. Caller holds the element's
// shard lock.
func (a *TrackedF64) note(worker, i int, write bool) {
	c := &a.cells[i]
	phase := a.tk.team.Phase()
	cur := Access{Worker: worker, Phase: phase, Write: write}
	if write {
		switch {
		case c.hasW && c.wPhase == phase && int(c.wWorker) != worker:
			a.report(i, c, Access{Worker: int(c.wWorker), Phase: c.wPhase, Write: true}, cur)
		case c.hasR && c.rPhase == phase && (c.rShared || int(c.rWorker) != worker):
			a.report(i, c, Access{Worker: int(c.rWorker), Phase: c.rPhase}, cur)
		}
		c.hasW, c.wPhase, c.wWorker = true, phase, int32(worker)
		return
	}
	if c.hasW && c.wPhase == phase && int(c.wWorker) != worker {
		a.report(i, c, Access{Worker: int(c.wWorker), Phase: c.wPhase, Write: true}, cur)
	}
	if !c.hasR || c.rPhase != phase {
		c.hasR, c.rPhase, c.rWorker, c.rShared = true, phase, int32(worker), false
	} else if int(c.rWorker) != worker {
		c.rShared = true
	}
}

func (a *TrackedF64) report(i int, c *cell, prev, cur Access) {
	if c.reported {
		return
	}
	c.reported = true
	a.tk.record(Race{Array: a.name, Index: i, Prev: prev, Cur: cur})
}
