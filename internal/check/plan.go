package check

import (
	"fmt"

	"repro/internal/autopar/pipeline"
	"repro/internal/euler"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/parloop"
)

// PlanConflicts projects tracker races into the planner's wire-level
// conflict evidence: the bridge from a dependence-instrumented run to
// an autopar plan. An observed race becomes a Conflict the planner
// must treat as an unconditional demotion to serial.
func PlanConflicts(races []Race) []pipeline.Conflict {
	out := make([]pipeline.Conflict, 0, len(races))
	for _, r := range races {
		out = append(out, pipeline.Conflict{
			Array:  r.Array,
			Index:  r.Index,
			Kind:   r.Kind(),
			Detail: r.String(),
		})
	}
	return out
}

// planKernels are the plan-conformance cells: every step shape an
// autopar plan can ask the f3d cache solver to execute — fissioned
// RHS, mixed fission (one side parallel, one serial), a serial RHS
// under parallel sweeps, and a mid-run plan application that
// retargets the shape between steps — must reproduce the serial
// reference's residual history and final flow state bitwise
// (MaxULPs 0). This is the headline guarantee of the evidence-driven
// pipeline: applying a plan never changes the answer, only the
// synchronization structure.
func planKernels() []Kernel {
	shapes := []struct {
		name  string
		shape f3d.StepShape
	}{
		// Fission with both sides parallel: same arithmetic as the
		// fused region, one extra fork-join.
		{"f3d-plan-fission", f3d.StepShape{
			RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true, FissionRHS: true,
		}},
		// The mixed-body outcome: J/K passes parallel, L passes and BC
		// serial — what the planner emits when only one side of the
		// body carries dependence evidence.
		{"f3d-plan-mixed", f3d.StepShape{
			RHSJK: true, SweepJK: true, FissionRHS: true,
		}},
		// A demoted RHS (unfissioned, serial) under parallel sweeps:
		// the conflict-demotion outcome.
		{"f3d-plan-serial-rhs", f3d.StepShape{
			SweepJK: true, SweepL: true, BC: true,
		}},
	}
	ks := make([]Kernel, 0, len(shapes)+1)
	for _, sc := range shapes {
		sc := sc
		ks = append(ks, Kernel{
			Name: sc.name, N: 6, MinN: 3, Steps: f3dSteps,
			Serial: func(n int) []float64 {
				return runF3D(n, nil, false, f3d.ScalarKernels, nil)
			},
			Parallel: func(t *parloop.Team, spec Spec) []float64 {
				return runF3DShape(spec.N, t, f3d.NewShapeCfg(sc.shape), spec.StepHook)
			},
		})
	}
	// The applied-plan cell: the run starts under one shape and a
	// "plan" retargets the ShapeCfg between steps — first to the mixed
	// fission shape, then to the fully parallel merged step — exactly
	// how a daemon applies a plan from run N to run N+1 (or live, at a
	// step boundary). The residual history must stay bitwise serial
	// through both reconfigurations.
	ks = append(ks, Kernel{
		Name: "f3d-plan-applied", N: 6, MinN: 3, Steps: f3dSteps,
		Serial: func(n int) []float64 {
			return runF3D(n, nil, false, f3d.ScalarKernels, nil)
		},
		Parallel: func(t *parloop.Team, spec Spec) []float64 {
			cfg := f3d.NewShapeCfg(f3d.StepShape{RHSJK: true, FissionRHS: true})
			hook := func(step int) {
				switch step {
				case 2:
					cfg.Store(f3d.StepShape{
						RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, FissionRHS: true,
					})
				case 3:
					cfg.Store(f3d.StepShape{
						Merged: true, RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true,
					})
				}
				if spec.StepHook != nil {
					spec.StepHook(step)
				}
			}
			return runF3DShape(spec.N, t, cfg, hook)
		},
	})
	return ks
}

// runF3DShape is runF3D with the region structure driven by a shape
// seam instead of the static Phases/Merged knobs.
func runF3DShape(n int, team *parloop.Team, shape *f3d.ShapeCfg, hook func(step int)) []float64 {
	cfg := f3d.DefaultConfig(grid.Single(n+2, n+1, n))
	opts := f3d.CacheOptions{Team: team, Phases: f3d.AllPhases(), Shape: shape}
	s, err := f3d.NewCacheSolver(cfg, opts)
	if err != nil {
		panic(fmt.Sprintf("check: f3d shaped solver: %v", err))
	}
	defer s.Close()
	f3d.InitPulse(s, 0.01)
	out := make([]float64, 0, 2*f3dSteps)
	for i := 0; i < f3dSteps; i++ {
		if hook != nil {
			hook(i)
		}
		st := s.Step()
		out = append(out, st.Residual, st.MaxDelta)
	}
	var buf [euler.NC]float64
	for _, zs := range s.Zones() {
		z := zs.Zone
		for l := 0; l < z.LMax; l++ {
			for k := 0; k < z.KMax; k++ {
				for j := 0; j < z.JMax; j++ {
					zs.Q.Point(j, k, l, buf[:])
					out = append(out, buf[:]...)
				}
			}
		}
	}
	return out
}
