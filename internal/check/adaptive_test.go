package check

import (
	"testing"

	"repro/internal/adapt"
	"repro/internal/parloop"
)

// TestAdaptiveCellsAllKernels runs every registry kernel under the
// scripted adaptive controller across the full team-size axis and
// requires bitwise/ULP conformance vs. serial — mid-step schedule,
// chunk and team-size changes must never alter residual history.
func TestAdaptiveCellsAllKernels(t *testing.T) {
	m := DefaultMatrix()
	m.Resize = false // isolate the adaptive column
	kernels := Registry()
	rep := Run(kernels, m)
	if !rep.OK() {
		t.Fatalf("adaptive conformance failures:\n%s", rep)
	}
	// Every kernel must have gained exactly one adaptive cell per team
	// size on top of the static axes.
	mNo := m
	mNo.Adaptive = false
	repNo := Run(kernels, mNo)
	wantExtra := len(kernels) * len(m.TeamSizes)
	if got := rep.Cases - repNo.Cases; got != wantExtra {
		t.Fatalf("adaptive column added %d cases, want %d", got, wantExtra)
	}
}

// TestAdaptiveCaseDeterminism: the scripted cell must replay
// identically — same seed, same script, same decisions — so a failure
// is reproducible from its Case line alone.
func TestAdaptiveCaseDeterminism(t *testing.T) {
	var stencil Kernel
	for _, k := range Registry() {
		if k.Steps > 0 && len(k.Schedules) > 1 {
			stencil = k
			break
		}
	}
	if stencil.Name == "" {
		t.Fatal("no multi-step multi-schedule kernel in registry")
	}
	c := adaptiveCase(stencil, 4)
	if !c.Adaptive {
		t.Fatal("adaptiveCase did not mark the cell adaptive")
	}
	s1 := adaptScript(stencil, 4, c.Seed)
	s2 := adaptScript(stencil, 4, c.Seed)
	if len(s1) != stencil.Steps || len(s1) != len(s2) {
		t.Fatalf("script lengths %d, %d; want %d", len(s1), len(s2), stencil.Steps)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("script not deterministic at step %d: %v vs %v", i, s1[i], s2[i])
		}
	}
	// Scripted picks must honor the kernel's legal schedules.
	legal := make(map[parloop.Schedule]bool)
	for _, s := range stencil.Schedules {
		legal[s] = true
	}
	for i, ch := range s1 {
		if !legal[ch.Sched] {
			t.Fatalf("step %d scripted illegal schedule %v", i, ch.Sched)
		}
		if ch.Chunk < 1 || ch.Workers < 1 || ch.Workers > 4 {
			t.Fatalf("step %d scripted out-of-envelope choice %v", i, ch)
		}
	}
}

// TestAdaptHookMidFlight is the direct seam test: a hook that flips
// the schedule and chunk every single step (the most aggressive
// controller possible) must leave a multi-step kernel's residual
// history bitwise identical to its serial reference within the
// kernel's ULP budget.
func TestAdaptHookMidFlight(t *testing.T) {
	for _, k := range Registry() {
		if k.Steps == 0 {
			continue
		}
		k := k
		t.Run(k.Name, func(t *testing.T) {
			scheds := k.Schedules
			if len(scheds) == 0 {
				scheds = []parloop.Schedule{parloop.Static}
			}
			team := parloop.NewTeam(4)
			defer team.Close()
			spec := Spec{N: k.N, Sched: scheds[0], Chunk: 1}
			spec.AdaptHook = func(step int, sp *Spec) {
				sp.Sched = scheds[step%len(scheds)]
				sp.Chunk = 1 + (step%3)*5
			}
			out := k.Parallel(team, spec)
			ref := k.Serial(k.N)
			c := Case{Workers: 4, Sched: scheds[0], Chunk: 1, Adaptive: true}
			if f, ok := compare(k, c, k.N, out, ref); !ok {
				t.Fatalf("mid-flight re-pick changed residuals: %v", f)
			}
		})
	}
}

// TestAdaptiveCaseString pins the report line format.
func TestAdaptiveCaseString(t *testing.T) {
	c := Case{Workers: 4, Sched: parloop.Dynamic, Chunk: 3, Adaptive: true, Seed: 99}
	s := c.String()
	want := "workers=4 sched=dynamic chunk=3 adaptive(seed=99)"
	if s != want {
		t.Fatalf("Case.String() = %q, want %q", s, want)
	}
}

// TestScriptUsesControllerPolicy: the script must come from the real
// controller (exploration visible as more than one distinct choice for
// a multi-schedule kernel with enough steps), not a canned rotation.
func TestScriptUsesControllerPolicy(t *testing.T) {
	script := adapt.ScriptChoices(3, adapt.Config{
		Procs: 4, M: 128, Chunks: []int{1, 3, 16},
	}, 32)
	distinct := make(map[adapt.Choice]bool)
	for _, ch := range script {
		distinct[ch] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("script explored %d distinct choices; controller should explore", len(distinct))
	}
}
