package check

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/parloop"
)

// clusterKernels adapt the sharded-solve engine to the conformance
// harness, binding the paper's unchanged-convergence claim to the
// distributed case: a multi-zone solve sharded over any worker count
// must reproduce the single-node residual history bitwise — and must
// keep reproducing it when a worker dies mid-solve and the engine
// fails over. The matrix's team-size axis is reinterpreted as the
// worker-daemon count; schedules do not apply (the shard plan is the
// plateau rule), and the f3d solver itself runs serially inside each
// worker so the only variable under test is the distribution.
func clusterKernels() []Kernel {
	ks := []Kernel{}
	for _, loss := range []bool{false, true} {
		name := "cluster-sharded"
		if loss {
			name = "cluster-failover"
		}
		loss := loss
		ks = append(ks, Kernel{
			Name: name, N: 20, MinN: 8,
			Serial: func(n int) []float64 {
				return runClusterSerial(n)
			},
			Parallel: func(t *parloop.Team, spec Spec) []float64 {
				return runClusterSharded(spec.N, t.Workers(), loss)
			},
		})
	}
	return ks
}

// clusterSteps is the number of lockstep steps each conformance solve
// advances.
const clusterSteps = 4

// clusterCase builds the conformance case: a n×6×5 box stacked into
// three zones along J (cuts clamped so every zone keeps at least four
// J-planes, which holds down to n = 8, the kernels' MinN).
func clusterCase(n int) (grid.Case, []f3d.Interface, f3d.Config) {
	c1 := n / 3
	if c1 < 2 {
		c1 = 2
	}
	c2 := 2 * n / 3
	if c2 > n-4 {
		c2 = n - 4
	}
	if c2 < c1+2 {
		c2 = c1 + 2
	}
	c, ifaces := f3d.StackAlongJ("chk", n, 6, 5, []int{c1, c2})
	return c, ifaces, f3d.DefaultConfig(c)
}

// clusterPulse is the conformance initial-condition amplitude.
const clusterPulse = 0.02

// runClusterSerial runs the single-node reference and returns the
// observable output: per-step residual, max-delta and flops.
func runClusterSerial(n int) []float64 {
	c, ifaces, cfg := clusterCase(n)
	cfg.Case = c
	cfg.Interfaces = ifaces
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
	if err != nil {
		panic(fmt.Sprintf("check: cluster reference solver: %v", err))
	}
	defer s.Close()
	f3d.InitPulse(s, clusterPulse)
	out := make([]float64, 0, 3*clusterSteps)
	for i := 0; i < clusterSteps; i++ {
		st := s.Step()
		out = append(out, st.Residual, st.MaxDelta, st.Flops)
	}
	return out
}

// lossyClient fails its worker starting with a fixed lockstep call —
// the deterministic mid-solve worker loss of the failover kernel.
type lossyClient struct {
	cluster.WorkerClient
	calls int
}

func (l *lossyClient) StepShard(req cluster.StepRequest) (cluster.StepResponse, error) {
	l.calls++
	if l.calls > 2 {
		return cluster.StepResponse{}, cluster.ErrWorkerDown
	}
	return l.WorkerClient.StepShard(req)
}

// runClusterSharded shards the case over `workers` in-process daemons
// and returns the same observable output as the serial reference. With
// loss set (and at least two workers, so survivors exist), one worker
// dies after its second lockstep call and the engine must fail over.
func runClusterSharded(n, workers int, loss bool) []float64 {
	coord := cluster.New(cluster.Config{})
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("w%02d", i)
		var client cluster.WorkerClient = cluster.NewLocalWorker(id, nil)
		if loss && workers >= 2 && i == 0 {
			client = &lossyClient{WorkerClient: client}
		}
		if err := coord.Register(id, client); err != nil {
			panic(fmt.Sprintf("check: register: %v", err))
		}
	}
	c, ifaces, cfg := clusterCase(n)
	res, err := coord.Solve(cluster.SolveSpec{
		Job: "check", Zones: c.Zones, Interfaces: ifaces,
		Config: cfg, PulseAmp: clusterPulse, Steps: clusterSteps,
	})
	if err != nil {
		panic(fmt.Sprintf("check: sharded solve (%d workers, loss=%v): %v", workers, loss, err))
	}
	out := make([]float64, 0, 3*clusterSteps)
	for _, st := range res.History {
		out = append(out, st.Residual, st.MaxDelta, st.Flops)
	}
	return out
}
