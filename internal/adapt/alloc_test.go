package adapt

import (
	"math"
	"testing"

	"repro/internal/sched"
)

// TestMeasuredAllocatorDefersToModel: with no measurements the
// allocator is exactly the plateau policy.
func TestMeasuredAllocatorDefersToModel(t *testing.T) {
	a := NewMeasuredAllocator()
	p := sched.PlateauAllocator{}
	for _, m := range []int{1, 5, 8, 45, 96} {
		for _, avail := range []int{0, 1, 3, 8, 64} {
			if got, want := a.Grant(m, avail), p.Grant(m, avail); got != want {
				t.Fatalf("Grant(%d, %d) = %d, want %d", m, avail, got, want)
			}
		}
		for _, g := range []int{1, 2, 4, 8} {
			if got, want := a.Lower(m, g), p.Lower(m, g); got != want {
				t.Fatalf("Lower(%d, %d) = %d, want %d", m, g, got, want)
			}
		}
	}
}

// TestMeasuredAllocatorShrinks: when measurement says a lower plateau
// delivers the same speedup (a sync-bound loop the model is blind to),
// the grant drops to it; when the lower plateau measures worse, the
// model grant stands.
func TestMeasuredAllocatorShrinks(t *testing.T) {
	a := NewMeasuredAllocator()
	const m = 8
	// Plateaus of m=8 under 8 procs: 1 2 3 4 8. Model grants 8 of 8.
	a.Record(m, 8, 2.1)
	a.Record(m, 4, 2.08) // within 2% of 2.1: shrink 8 -> 4
	a.Record(m, 3, 1.2)  // clearly worse: stop at 4
	if got := a.Grant(m, 8); got != 4 {
		t.Fatalf("Grant(8, 8) = %d, want 4 (measured-equivalent plateau)", got)
	}
	// Lower from 4 goes to 3 by the model; 3 measures worse than 4 so
	// no further measured shrink applies.
	if got := a.Lower(m, 4); got != 3 {
		t.Fatalf("Lower(8, 4) = %d, want 3", got)
	}
	// A job with no measurements is untouched.
	if got := a.Grant(16, 8); got != sched.PlateauGrant(16, 8) {
		t.Fatalf("unmeasured Grant(16, 8) = %d", got)
	}
}

// TestMeasuredAllocatorRecordClamps: garbage measurements are clamped
// or dropped, and Record keeps the best per point.
func TestMeasuredAllocatorRecordClamps(t *testing.T) {
	a := NewMeasuredAllocator()
	a.Record(0, 4, 2)          // bad m: dropped
	a.Record(4, 0, 2)          // bad procs: dropped
	a.Record(4, 4, -1)         // negative: dropped
	a.Record(4, 4, math.NaN()) // NaN: dropped
	if _, ok := a.Measured(4, 4); ok {
		t.Fatal("garbage measurement was stored")
	}
	a.Record(4, 4, 99) // clamped to procs
	if sp, ok := a.Measured(4, 4); !ok || sp != 4 {
		t.Fatalf("Measured(4, 4) = %v, %v; want 4", sp, ok)
	}
	a.Record(4, 4, 2) // worse than stored best: ignored
	if sp, _ := a.Measured(4, 4); sp != 4 {
		t.Fatalf("best-keeping broken: %v", sp)
	}
}

// TestControllerFeedsRecorder: a controller with a Recorder configured
// reports measured speedup per completed window, landing in the
// allocator the scheduler consults — the measured grow/shrink loop,
// closed.
func TestControllerFeedsRecorder(t *testing.T) {
	a := NewMeasuredAllocator()
	cfg := testConfig()
	cfg.Recorder = a
	ctrl := New("rec", Choice{Chunk: 1, Workers: 4}, cfg)
	RunSim(Sim{W: Ragged(96, 800, 3, 11)}, ctrl, 160)
	sp, ok := a.Measured(96, ctrl.Choice().Workers)
	if !ok {
		t.Fatalf("no measurement recorded for (96, %d)", ctrl.Choice().Workers)
	}
	if sp < 1 || sp > 4 {
		t.Fatalf("measured speedup %v outside [1, procs]", sp)
	}
}
