// Package adapt closes the loop between observation and scheduling: a
// per-loop feedback controller that consumes obs/analyze verdicts
// (imbalance fraction, barrier share, Table 1 budget fail, measured
// speedup vs. the stair-step plateau) between time steps and re-picks
// {schedule, chunk, workers} for each instrumented loop.
//
// The paper fixes those choices up front from Table 1 budgets and
// Table 3 plateaus; "Dynamic Loop Parallelisation" (Jackson &
// Agathokleous) and the synergistic static/dynamic/speculative study
// (PAPERS.md) argue they should be re-made at runtime from measured
// behavior. The controller here is a trial-based optimizer with two
// properties the test battery enforces:
//
//   - Hysteresis: a candidate configuration is adopted only when its
//     measured score improves on the incumbent by more than
//     HysteresisPct, and the applied configuration changes at most
//     once per SettleSteps-observation window — never mid-window.
//   - Bounded exploration: each diagnosis round enqueues at most
//     MaxProbes candidates, a configuration is trialed at most once
//     between drift resets, and a rejected configuration is never
//     revisited — so on a stationary workload the controller reaches
//     a fixed point within SettleSteps*(space+2) observations and
//     cannot oscillate.
//
// Mid-flight reconfiguration is conformance-safe by construction: a
// re-pick changes only how iterations are dealt to workers (the
// parloop.LoopCfg seam applies it at the next region entry), never the
// iteration set itself, so residual history is bitwise unchanged —
// internal/check's adaptive cells prove it kernel by kernel.
package adapt

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/obs/analyze"
	"repro/internal/parloop"
	"repro/internal/sched"
)

// Choice is one point of the controller's search space: a full
// {schedule, chunk, workers} configuration for a loop.
type Choice struct {
	Sched   parloop.Schedule `json:"sched"`
	Chunk   int              `json:"chunk"`
	Workers int              `json:"workers"`
}

// String renders the choice compactly for logs and reports.
func (c Choice) String() string {
	return fmt.Sprintf("%v/c%d/w%d", c.Sched, c.Chunk, c.Workers)
}

// Verdict is one step's worth of measured evidence about a loop — the
// distilled form of an obs/analyze per-loop report. All fields are
// tolerated degenerate (zero work, NaN fractions, absurd workers); the
// controller sanitizes on intake so a garbage verdict can never push a
// pick outside the legal envelope.
type Verdict struct {
	// WallNs is the step's wall time for this loop; the controller's
	// score is mean wall per step (lower is better).
	WallNs int64 `json:"wall_ns"`
	// WorkNs is the summed worker-time of useful work, so
	// WorkNs/WallNs is the measured speedup at the current grant.
	WorkNs int64 `json:"work_ns"`
	// ImbalanceFrac, BarrierFrac and SyncFrac are the analyze
	// attribution fractions of wall time (stair-step/join imbalance,
	// mid-region barrier waits, modeled synchronization overhead).
	ImbalanceFrac float64 `json:"imbalance_frac"`
	BarrierFrac   float64 `json:"barrier_frac"`
	SyncFrac      float64 `json:"sync_frac"`
	// BudgetPass is the loop's Table 1 verdict: enough work per sync
	// event for the machine's sync cost.
	BudgetPass bool `json:"budget_pass"`
	// Workers is the team size the verdict was measured at; Units the
	// loop's parallelism M.
	Workers int `json:"workers"`
	Units   int `json:"units"`
}

// FromLoop distills an obs/analyze per-loop report into a Verdict, the
// bridge from the trace pipeline into the controller.
func FromLoop(l analyze.Loop) Verdict {
	return Verdict{
		WallNs:        l.WallNs,
		WorkNs:        l.WorkNs,
		ImbalanceFrac: l.Attribution.ImbalanceFrac,
		BarrierFrac:   l.Attribution.BarrierFrac,
		SyncFrac:      l.Attribution.SyncFrac,
		BudgetPass:    l.Budget.Pass,
		Workers:       l.Workers,
		Units:         l.Units,
	}
}

// sanitize clamps a verdict into its documented domain so downstream
// arithmetic never sees NaN, Inf or negative values.
func sanitize(v Verdict) Verdict {
	clampFrac := func(f float64) float64 {
		if math.IsNaN(f) || f < 0 {
			return 0
		}
		if f > 1 || math.IsInf(f, 1) {
			return 1
		}
		return f
	}
	if v.WallNs < 0 {
		v.WallNs = 0
	}
	if v.WorkNs < 0 {
		v.WorkNs = 0
	}
	v.ImbalanceFrac = clampFrac(v.ImbalanceFrac)
	v.BarrierFrac = clampFrac(v.BarrierFrac)
	v.SyncFrac = clampFrac(v.SyncFrac)
	if v.Workers < 1 {
		v.Workers = 1
	}
	if v.Units < 0 {
		v.Units = 0
	}
	return v
}

// Recorder receives measured speedups. sched-side allocators (the
// MeasuredAllocator) implement it so grant decisions can come from
// measured — not modeled — speedup.
type Recorder interface {
	Record(m, procs int, speedup float64)
}

// Config parameterizes a Controller. The zero value is unusable; Procs
// must be >= 1. Every other field has a documented default.
type Config struct {
	// Procs is the hard ceiling on Workers picks (the machine or
	// grant size). Required.
	Procs int
	// M is the loop's units of parallelism; Workers picks never
	// exceed min(M, Procs) and the worker axis explores only the
	// stair-step plateaus of M. Default Procs.
	M int
	// Schedules is the legal schedule axis. Default parloop.Schedules().
	Schedules []parloop.Schedule
	// Chunks is the legal chunk axis. Default {1, 4, 16, 64}.
	Chunks []int
	// SettleSteps is the measurement window: observations per score
	// before a judgment. Default 2.
	SettleSteps int
	// HysteresisPct: a candidate must beat the incumbent score by
	// more than this percentage to be adopted. Default 5.
	HysteresisPct float64
	// DriftPct: a measured degradation of the incumbent beyond this
	// percentage (a workload phase change) resets the explored set
	// and re-opens the search. Default 30.
	DriftPct float64
	// MaxProbes caps candidates enqueued per diagnosis round
	// (bounded exploration). Default 8.
	MaxProbes int
	// MaxHistory caps the retained decision log. Default 256.
	MaxHistory int
	// Recorder, when non-nil, receives the measured speedup
	// (WorkNs/WallNs at the active worker count) after every
	// completed window.
	Recorder Recorder
}

func (c Config) withDefaults() Config {
	if c.Procs < 1 {
		panic(fmt.Sprintf("adapt: Config.Procs must be >= 1, got %d", c.Procs))
	}
	if c.M < 1 {
		c.M = c.Procs
	}
	if len(c.Schedules) == 0 {
		c.Schedules = parloop.Schedules()
	}
	if len(c.Chunks) == 0 {
		c.Chunks = []int{1, 4, 16, 64}
	}
	if c.SettleSteps < 1 {
		c.SettleSteps = 2
	}
	if c.HysteresisPct <= 0 {
		c.HysteresisPct = 5
	}
	if c.DriftPct <= 0 {
		c.DriftPct = 30
	}
	if c.MaxProbes < 1 {
		c.MaxProbes = 8
	}
	if c.MaxHistory < 1 {
		c.MaxHistory = 256
	}
	return c
}

// workerPlateaus returns the legal worker axis: the stair-step
// plateaus of M capped at Procs (always at least {1}).
func (c Config) workerPlateaus() []int {
	plats := sched.Plateaus(c.M, c.Procs)
	if len(plats) == 0 {
		plats = []int{1}
	}
	return plats
}

// ConvergenceHorizon returns the worst-case number of observations a
// controller with this config needs to reach a fixed point from any
// start on a stationary workload: every configuration in the space is
// trialed at most once (the visited set guarantees that), each trial
// costs one SettleSteps window, plus the incumbent's baseline window
// and one window of slack. Tests and the chaos cost-shift fault size
// their runs with this bound.
func ConvergenceHorizon(cfg Config) int {
	full := cfg.withDefaults()
	space := len(full.workerPlateaus()) * len(full.Schedules) * len(full.Chunks)
	return full.SettleSteps * (space + 2)
}

// Actions a Decision can record.
const (
	ActionHold      = "hold"        // mid-window, or converged: no change
	ActionMeasure   = "measure"     // first window: incumbent baseline taken
	ActionExplore   = "explore"     // a candidate starts its trial window
	ActionAdopt     = "adopt"       // trial beat the incumbent by > hysteresis
	ActionReject    = "reject"      // trial failed; incumbent restored
	ActionConverged = "converged"   // diagnosis has no untried candidates
	ActionDrift     = "drift-reset" // incumbent degraded; search re-opened
)

// Decision is one controller step's outcome: the action taken and the
// configuration applied from this step on.
type Decision struct {
	Step   int    `json:"step"`
	Action string `json:"action"`
	// Choice is the configuration in effect after this decision.
	Choice Choice `json:"choice"`
	// Judged is the candidate whose window closed this step (adopt or
	// reject), if any.
	Judged *Choice `json:"judged,omitempty"`
	// ScoreNs is the judged window's mean wall ns per step;
	// BaselineNs the incumbent's score it was compared to.
	ScoreNs    float64 `json:"score_ns,omitempty"`
	BaselineNs float64 `json:"baseline_ns,omitempty"`
	Reason     string  `json:"reason,omitempty"`
}

// Controller is the per-loop feedback controller. One goroutine calls
// Observe once per step; any goroutine may call Choice, Converged or
// Status concurrently (f3dd's /adapt endpoint does).
type Controller struct {
	mu    sync.Mutex
	label string
	cfg   Config

	active   Choice // configuration currently applied (what verdicts measure)
	best     Choice // incumbent: best adopted configuration
	score    float64
	measured bool // score holds a completed incumbent window
	inTrial  bool // active != best: a candidate is being measured

	queue     []Choice
	rejected  map[Choice]bool
	visited   map[Choice]bool // trialed or adopted since the last drift reset
	converged bool

	step    int
	winN    int
	winWall float64
	winWork float64
	winImb  float64
	winBar  float64
	winSync float64
	winPass int
	lastAvg Verdict // the most recent completed window's averaged verdict

	history []Decision
}

// New returns a controller starting from the given choice (legalized
// into the config's envelope). label names the loop in status reports.
func New(label string, start Choice, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		label:    label,
		cfg:      cfg,
		rejected: make(map[Choice]bool),
		visited:  make(map[Choice]bool),
	}
	c.active = c.legalize(start)
	c.best = c.active
	c.visited[c.active] = true
	return c
}

// legalize clamps a choice into the legal envelope: schedule from
// cfg.Schedules, chunk >= 1, workers a plateau in [1, min(M, Procs)].
func (c *Controller) legalize(ch Choice) Choice {
	ok := false
	for _, s := range c.cfg.Schedules {
		if ch.Sched == s {
			ok = true
			break
		}
	}
	if !ok {
		ch.Sched = c.cfg.Schedules[0]
	}
	if ch.Chunk < 1 {
		ch.Chunk = 1
	}
	plats := c.cfg.workerPlateaus()
	// Round workers down to the nearest legal plateau (up to the
	// smallest when below it).
	w := plats[0]
	for _, p := range plats {
		if p <= ch.Workers {
			w = p
		}
	}
	ch.Workers = w
	return ch
}

// Choice returns the configuration the loop should run with now.
func (c *Controller) Choice() Choice {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.active
}

// Converged reports whether the search is at a fixed point (it re-opens
// only on a drift reset).
func (c *Controller) Converged() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.converged
}

// Observe feeds one step's verdict for the loop and returns the
// decision taken. The returned Decision.Choice is the configuration to
// apply for the next step.
func (c *Controller) Observe(v Verdict) Decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	v = sanitize(v)
	c.step++
	c.winN++
	c.winWall += float64(v.WallNs)
	c.winWork += float64(v.WorkNs)
	c.winImb += v.ImbalanceFrac
	c.winBar += v.BarrierFrac
	c.winSync += v.SyncFrac
	if v.BudgetPass {
		c.winPass++
	}
	if c.winN < c.cfg.SettleSteps {
		return Decision{Step: c.step, Action: ActionHold, Choice: c.active}
	}

	// Window complete: judge it.
	n := float64(c.winN)
	mean := c.winWall / n
	avg := Verdict{
		WallNs:        int64(mean),
		WorkNs:        int64(c.winWork / n),
		ImbalanceFrac: c.winImb / n,
		BarrierFrac:   c.winBar / n,
		SyncFrac:      c.winSync / n,
		BudgetPass:    c.winPass*2 >= c.winN,
		Workers:       c.active.Workers,
		Units:         c.cfg.M,
	}
	c.winN, c.winWall, c.winWork, c.winImb, c.winBar, c.winSync, c.winPass = 0, 0, 0, 0, 0, 0, 0
	c.lastAvg = avg
	if c.cfg.Recorder != nil && mean > 0 {
		c.cfg.Recorder.Record(c.cfg.M, c.active.Workers, c.winSpeedup(avg))
	}

	d := c.judge(mean, avg)
	c.record(d)
	return d
}

func (c *Controller) winSpeedup(avg Verdict) float64 {
	if avg.WallNs <= 0 {
		return 1
	}
	sp := float64(avg.WorkNs) / float64(avg.WallNs)
	if sp < 1 {
		sp = 1
	}
	return sp
}

// judge closes a measurement window. Called with the lock held.
func (c *Controller) judge(mean float64, avg Verdict) Decision {
	d := Decision{Step: c.step, Choice: c.active}

	if c.inTrial {
		judged := c.active
		d.Judged = &judged
		d.ScoreNs = mean
		d.BaselineNs = c.score
		if mean < c.score*(1-c.cfg.HysteresisPct/100) {
			c.best = c.active
			c.score = mean
			d.Action = ActionAdopt
			d.Reason = fmt.Sprintf("%s improved on %.4g ns/step", judged, d.BaselineNs)
		} else {
			c.rejected[judged] = true
			c.active = c.best
			d.Action = ActionReject
			d.Reason = fmt.Sprintf("%s did not beat %.4g ns/step by >%.3g%%",
				judged, d.BaselineNs, c.cfg.HysteresisPct)
		}
		c.inTrial = false
		d.Choice = c.active
		c.startNextTrial(&d)
		return d
	}

	// Incumbent window.
	if !c.measured {
		c.measured = true
		c.score = mean
		d.Action = ActionMeasure
		d.ScoreNs = mean
	} else if c.converged && mean > c.score*(1+c.cfg.DriftPct/100) {
		// Phase change: the adopted configuration degraded well past
		// hysteresis. Re-open the whole search.
		d.Action = ActionDrift
		d.ScoreNs = mean
		d.BaselineNs = c.score
		d.Reason = fmt.Sprintf("incumbent %.4g -> %.4g ns/step (> %.3g%% drift)",
			c.score, mean, c.cfg.DriftPct)
		c.converged = false
		c.rejected = make(map[Choice]bool)
		c.visited = map[Choice]bool{c.active: true}
		c.queue = nil
		c.score = mean
	} else {
		// Track the incumbent so hysteresis compares against current
		// conditions, not a stale measurement.
		c.score = mean
		d.Action = ActionHold
		d.ScoreNs = mean
	}
	c.startNextTrial(&d)
	return d
}

// startNextTrial pops the next untried candidate (refilling the queue
// from diagnosis when empty) and begins its trial; with nothing left to
// try it declares convergence. Called with the lock held; d is updated
// in place. A decision that already adopted/rejected keeps its action —
// the new trial is visible through d.Choice.
func (c *Controller) startNextTrial(d *Decision) {
	if c.converged {
		return
	}
	for {
		if len(c.queue) == 0 {
			c.queue = c.diagnose()
		}
		if len(c.queue) == 0 {
			c.converged = true
			if d.Action == ActionHold || d.Action == ActionMeasure {
				d.Action = ActionConverged
				d.Reason = fmt.Sprintf("no untried candidates; fixed point %s", c.best)
			}
			return
		}
		cand := c.queue[0]
		c.queue = c.queue[1:]
		if c.visited[cand] || c.rejected[cand] || cand == c.active {
			continue
		}
		c.visited[cand] = true
		c.active = cand
		c.inTrial = true
		if d.Action == ActionHold || d.Action == ActionMeasure {
			d.Action = ActionExplore
		}
		d.Choice = cand
		return
	}
}

// diagnose proposes the next candidates from the most recent window's
// averaged verdict, ordered by the symptom they treat, then fills with
// a systematic sweep so convergence implies the whole space was
// considered. At most MaxProbes are returned. Called with the lock
// held.
func (c *Controller) diagnose() []Choice {
	avgImb := c.winImbAvg()
	var out []Choice
	seen := make(map[Choice]bool)
	add := func(ch Choice) {
		ch = c.legalize(ch)
		if seen[ch] || c.visited[ch] || c.rejected[ch] || ch == c.best {
			return
		}
		seen[ch] = true
		out = append(out, ch)
	}
	hasSched := func(want parloop.Schedule) bool {
		for _, s := range c.cfg.Schedules {
			if s == want {
				return true
			}
		}
		return false
	}
	plats := c.cfg.workerPlateaus()
	cur := c.best

	imbalanced := avgImb.ImbalanceFrac >= 0.10 || avgImb.BarrierFrac >= 0.10
	syncBound := avgImb.SyncFrac >= 0.05 || !avgImb.BudgetPass

	if imbalanced {
		// Ragged iteration costs: dealing chunks on demand (or cyclically)
		// balances what a one-shot static deal cannot.
		for _, s := range []parloop.Schedule{parloop.Dynamic, parloop.Guided, parloop.StaticCyclic} {
			if !hasSched(s) {
				continue
			}
			for _, ch := range c.cfg.Chunks {
				add(Choice{Sched: s, Chunk: ch, Workers: cur.Workers})
			}
		}
	}
	if syncBound {
		// Too little work per sync event (Table 1 fail): coarser chunks,
		// the no-per-chunk-cost static deal, and one plateau down.
		for i := len(c.cfg.Chunks) - 1; i >= 0; i-- {
			add(Choice{Sched: cur.Sched, Chunk: c.cfg.Chunks[i], Workers: cur.Workers})
		}
		if hasSched(parloop.Static) {
			add(Choice{Sched: parloop.Static, Chunk: cur.Chunk, Workers: cur.Workers})
		}
		if lower := sched.NextLowerPlateau(c.cfg.M, cur.Workers); lower >= 1 {
			add(Choice{Sched: cur.Sched, Chunk: cur.Chunk, Workers: lower})
		}
	}
	if !imbalanced && !syncBound {
		// Healthy loop: try the next plateau up (more speedup if the
		// stair allows it) and the cheapest schedule.
		for _, p := range plats {
			if p > cur.Workers {
				add(Choice{Sched: cur.Sched, Chunk: cur.Chunk, Workers: p})
				break
			}
		}
		if hasSched(parloop.Static) {
			add(Choice{Sched: parloop.Static, Chunk: cur.Chunk, Workers: cur.Workers})
		}
	}
	// Systematic fill: everything not yet tried, current workers first
	// so schedule/chunk structure is settled before the worker axis.
	for _, w := range []int{cur.Workers} {
		for _, s := range c.cfg.Schedules {
			for _, ch := range c.cfg.Chunks {
				add(Choice{Sched: s, Chunk: ch, Workers: w})
			}
		}
	}
	for _, w := range plats {
		for _, s := range c.cfg.Schedules {
			for _, ch := range c.cfg.Chunks {
				add(Choice{Sched: s, Chunk: ch, Workers: w})
			}
		}
	}
	if len(out) > c.cfg.MaxProbes {
		out = out[:c.cfg.MaxProbes]
	}
	return out
}

// winImbAvg returns the most recent completed window's averaged
// verdict, which diagnosis reads its symptoms from.
func (c *Controller) winImbAvg() Verdict { return c.lastAvg }

// record appends a decision to the bounded history. Called with the
// lock held.
func (c *Controller) record(d Decision) {
	if d.Action == ActionHold && len(c.history) > 0 {
		// Converged steady-state holds would swamp the log; keep only
		// state-changing decisions after the first.
		last := c.history[len(c.history)-1]
		if last.Action == ActionHold || last.Action == ActionConverged {
			return
		}
	}
	c.history = append(c.history, d)
	if len(c.history) > c.cfg.MaxHistory {
		c.history = c.history[len(c.history)-c.cfg.MaxHistory:]
	}
}

// Status is a point-in-time snapshot of the controller for status
// endpoints and reports.
type Status struct {
	Label      string     `json:"label"`
	Step       int        `json:"step"`
	Choice     Choice     `json:"choice"`
	BaselineNs float64    `json:"baseline_ns"`
	Converged  bool       `json:"converged"`
	Explored   int        `json:"explored"`
	Rejected   int        `json:"rejected"`
	Decisions  []Decision `json:"decisions"`
}

// Status snapshots the controller.
func (c *Controller) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	hist := make([]Decision, len(c.history))
	copy(hist, c.history)
	return Status{
		Label:      c.label,
		Step:       c.step,
		Choice:     c.active,
		BaselineNs: c.score,
		Converged:  c.converged,
		Explored:   len(c.visited),
		Rejected:   len(c.rejected),
		Decisions:  hist,
	}
}
