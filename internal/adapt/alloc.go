package adapt

import (
	"sync"

	"repro/internal/sched"
)

// MeasuredAllocator is a sched.Allocator that corrects the stair-step
// model with measured speedups. The plateau model is an upper bound —
// it assumes perfectly divisible work and free synchronization — so a
// grant that sits on a modeled plateau can still be wasted when the
// measured speedup there is no better than one plateau down (sync-bound
// loops, Table 1 fails). Controllers feed measurements in through the
// Recorder interface (Config.Recorder); Grant and Lower then shrink a
// modeled grant to the smallest plateau whose *measured* speedup is
// within Tol of the modeled pick's. With no measurements recorded it
// behaves exactly like the inner allocator, so wiring it in is safe
// before any job has run.
type MeasuredAllocator struct {
	// Inner is the model allocator to correct; nil means
	// sched.PlateauAllocator.
	Inner sched.Allocator
	// Tol is the relative speedup loss accepted when shrinking to a
	// lower plateau; 0 means 0.02 (2%).
	Tol float64

	mu   sync.Mutex
	meas map[[2]int]float64 // {m, procs} -> best measured speedup
}

// NewMeasuredAllocator returns a MeasuredAllocator over the paper's
// plateau policy with the default tolerance.
func NewMeasuredAllocator() *MeasuredAllocator {
	return &MeasuredAllocator{}
}

func (a *MeasuredAllocator) inner() sched.Allocator {
	if a.Inner != nil {
		return a.Inner
	}
	return sched.PlateauAllocator{}
}

func (a *MeasuredAllocator) tol() float64 {
	if a.Tol > 0 {
		return a.Tol
	}
	return 0.02
}

// Record implements Recorder: it stores the best measured speedup seen
// for a job with m units of parallelism running on procs processors.
// Non-positive or absurd speedups (above procs) are clamped into
// [something, procs] rather than trusted.
func (a *MeasuredAllocator) Record(m, procs int, speedup float64) {
	if m < 1 || procs < 1 {
		return
	}
	if speedup < 0.0 || speedup != speedup { // negative or NaN
		return
	}
	if speedup > float64(procs) {
		speedup = float64(procs)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.meas == nil {
		a.meas = make(map[[2]int]float64)
	}
	k := [2]int{m, procs}
	if speedup > a.meas[k] {
		a.meas[k] = speedup
	}
}

// Measured returns the recorded speedup for (m, procs) and whether one
// exists.
func (a *MeasuredAllocator) Measured(m, procs int) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sp, ok := a.meas[[2]int{m, procs}]
	return sp, ok
}

// shrink walks g down the plateau ladder while measurements say the
// lower plateau delivers speedup within tol of the current one.
func (a *MeasuredAllocator) shrink(m, g int) int {
	in := a.inner()
	tol := a.tol()
	a.mu.Lock()
	defer a.mu.Unlock()
	for g > 1 {
		l := in.Lower(m, g)
		if l < 1 {
			break
		}
		cur, okCur := a.meas[[2]int{m, g}]
		low, okLow := a.meas[[2]int{m, l}]
		if !okCur || !okLow || low < cur*(1-tol) {
			break
		}
		g = l
	}
	return g
}

// Grant implements sched.Allocator: the model grant, shrunk to the
// smallest plateau measurement says performs just as well.
func (a *MeasuredAllocator) Grant(m, avail int) int {
	g := a.inner().Grant(m, avail)
	if g < 1 {
		return g
	}
	return a.shrink(m, g)
}

// Lower implements sched.Allocator: one modeled plateau down, then any
// further measured-equivalent shrink.
func (a *MeasuredAllocator) Lower(m, granted int) int {
	l := a.inner().Lower(m, granted)
	if l < 1 {
		return l
	}
	return a.shrink(m, l)
}
