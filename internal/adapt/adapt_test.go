package adapt

import (
	"strings"
	"testing"

	"repro/internal/obs/analyze"
	"repro/internal/parloop"
)

// testConfig is the battery's standard controller space: 4 schedules ×
// 3 chunks × the worker plateaus of M=96 capped at 4 procs.
func testConfig() Config {
	return Config{
		Procs:  4,
		M:      96,
		Chunks: []int{1, 8, 64},
	}
}

// space enumerates every legal choice of a config.
func space(cfg Config) []Choice {
	full := cfg.withDefaults()
	var out []Choice
	for _, w := range full.workerPlateaus() {
		for _, s := range full.Schedules {
			for _, c := range full.Chunks {
				out = append(out, Choice{Sched: s, Chunk: c, Workers: w})
			}
		}
	}
	return out
}

// TestConvergenceFromAnyStart is the property test of satellite 2:
// from ANY starting {schedule, chunk, workers} on a stationary
// synthetic workload, the controller reaches a fixed point within
// N = SettleSteps*(|space|+2) steps, never changes its pick after
// convergence, and never explores a configuration it rejected.
func TestConvergenceFromAnyStart(t *testing.T) {
	cfg := testConfig()
	starts := space(cfg)
	n := ConvergenceHorizon(cfg)
	if want := cfg.withDefaults().SettleSteps * (len(starts) + 2); n != want {
		t.Fatalf("ConvergenceHorizon = %d, want SettleSteps*(|space|+2) = %d", n, want)
	}
	steps := n + 40 // post-convergence tail to observe stability

	for _, start := range starts {
		start := start
		t.Run(start.String(), func(t *testing.T) {
			t.Parallel()
			ctrl := New("prop", start, cfg)
			out := RunSim(Sim{W: Ragged(96, 800, 3, 11)}, ctrl, steps)

			if out.ConvergedAt < 0 || out.ConvergedAt > n {
				t.Fatalf("not converged within N=%d steps (converged at %d)", n, out.ConvergedAt)
			}
			for s := out.ConvergedAt; s < steps; s++ {
				if out.Choices[s] != out.Final {
					t.Fatalf("oscillation: step %d ran %v after convergence at step %d picked %v",
						s, out.Choices[s], out.ConvergedAt, out.Final)
				}
			}
			// Replay the decision log: an explored choice must never be
			// one that was rejected earlier.
			rejected := make(map[Choice]bool)
			explored := make(map[Choice]int)
			for _, d := range ctrl.Status().Decisions {
				if d.Action == ActionReject && d.Judged != nil {
					rejected[*d.Judged] = true
				}
				switch d.Action {
				case ActionExplore, ActionAdopt, ActionReject:
					// d.Choice is the configuration applied next; if it is
					// a fresh trial it must not be previously rejected.
					if d.Choice != out.Final && rejected[d.Choice] {
						t.Fatalf("step %d revisits rejected configuration %v", d.Step, d.Choice)
					}
					explored[d.Choice]++
				}
			}
			_ = explored
		})
	}
}

// TestConvergedChoiceQuality checks the controller earns its keep: on
// the ragged workload the fixed point must not be the naive static
// deal, and its steady-state score must be within hysteresis of the
// best configuration in the whole space.
func TestConvergedChoiceQuality(t *testing.T) {
	cfg := testConfig()
	sim := Sim{W: Ragged(96, 800, 3, 11)}
	ctrl := New("quality", Choice{Sched: parloop.Static, Chunk: 1, Workers: 4}, cfg)
	out := RunSim(sim, ctrl, 160)
	if out.ConvergedAt < 0 {
		t.Fatal("controller did not converge")
	}

	best := 0.0
	var bestCh Choice
	for _, ch := range space(cfg) {
		res, _ := sim.Step(0, ch)
		if best == 0 || res.WallNs < best {
			best, bestCh = res.WallNs, ch
		}
	}
	// Adoption needs a >hysteresis improvement, so the fixed point can
	// trail the true optimum by at most ~hysteresis (compounded once).
	limit := best * (1 + 2*cfg.withDefaults().HysteresisPct/100)
	if out.FinalScore > limit {
		t.Fatalf("fixed point %v scores %.0f ns; best %v scores %.0f ns (limit %.0f)",
			out.Final, out.FinalScore, bestCh, best, limit)
	}
	if out.Final.Sched == parloop.Static {
		t.Fatalf("controller stayed on the static deal (%v) for a ragged workload", out.Final)
	}
}

// TestDriftReset proves the phase-change path: converge on one cost
// surface, shift it (KindCostShift's shape), and require re-convergence
// to a fixed point that suits the new surface.
func TestDriftReset(t *testing.T) {
	cfg := testConfig()
	// Phase 1 ragged (dynamic wins); phase 2 uniform but 60x heavier
	// per iteration at chunk granularity — the fork/deal overheads
	// vanish relative to work, so the surface changes shape entirely.
	w := PhaseShift(Ragged(96, 800, 3, 7), Uniform(96, 48000), 160)
	ctrl := New("drift", Choice{Sched: parloop.Static, Chunk: 1, Workers: 4}, cfg)
	out := RunSim(Sim{W: w}, ctrl, 400)
	if out.ConvergedAt < 0 || out.ConvergedAt > 160 {
		t.Fatalf("no convergence before the shift (converged at %d)", out.ConvergedAt)
	}
	if !ctrl.Converged() {
		t.Fatal("controller did not re-converge after the cost shift")
	}
	var sawDrift bool
	for _, d := range ctrl.Status().Decisions {
		if d.Action == ActionDrift {
			sawDrift = true
		}
	}
	if !sawDrift {
		t.Fatalf("no drift-reset decision recorded after the cost shift (final %v)", out.Final)
	}
}

// TestLegalize pins the envelope clamp.
func TestLegalize(t *testing.T) {
	ctrl := New("env", Choice{Sched: parloop.Schedule(99), Chunk: -5, Workers: 1000}, testConfig())
	ch := ctrl.Choice()
	if ch.Chunk < 1 {
		t.Fatalf("chunk %d < 1", ch.Chunk)
	}
	if ch.Workers < 1 || ch.Workers > 4 {
		t.Fatalf("workers %d outside [1, 4]", ch.Workers)
	}
	legalSched := false
	for _, s := range parloop.Schedules() {
		if ch.Sched == s {
			legalSched = true
		}
	}
	if !legalSched {
		t.Fatalf("schedule %v not legal", ch.Sched)
	}
}

// TestFromLoop pins the analyze bridge.
func TestFromLoop(t *testing.T) {
	l := analyze.Loop{
		Name:    "k",
		Workers: 3,
		Units:   42,
		WallNs:  1000,
		WorkNs:  2400,
	}
	l.Attribution.ImbalanceFrac = 0.25
	l.Attribution.BarrierFrac = 0.05
	l.Attribution.SyncFrac = 0.01
	l.Budget.Pass = true
	v := FromLoop(l)
	if v.WallNs != 1000 || v.WorkNs != 2400 || v.Workers != 3 || v.Units != 42 ||
		v.ImbalanceFrac != 0.25 || v.BarrierFrac != 0.05 || v.SyncFrac != 0.01 || !v.BudgetPass {
		t.Fatalf("FromLoop mismatch: %+v", v)
	}
}

// TestObserveWindowBoundaries: the applied choice may change only when
// a SettleSteps window closes, never mid-window (the hysteresis bound
// the fuzz target also enforces on arbitrary inputs).
func TestObserveWindowBoundaries(t *testing.T) {
	cfg := testConfig()
	settle := cfg.withDefaults().SettleSteps
	ctrl := New("win", Choice{Sched: parloop.Dynamic, Chunk: 8, Workers: 4}, cfg)
	prev := ctrl.Choice()
	for step := 1; step <= 200; step++ {
		d := ctrl.Observe(Verdict{WallNs: int64(1000 + step%7), Workers: 4, Units: 96, BudgetPass: true})
		if d.Choice != prev && step%settle != 0 {
			t.Fatalf("choice changed mid-window at step %d (%v -> %v)", step, prev, d.Choice)
		}
		prev = d.Choice
	}
}

// TestStatusAndHistory covers the snapshot path and the decision-log
// dedupe/caps.
func TestStatusAndHistory(t *testing.T) {
	cfg := testConfig()
	cfg.MaxHistory = 8
	ctrl := New("hist", Choice{Sched: parloop.Static, Chunk: 1, Workers: 4}, cfg)
	RunSim(Sim{W: Ragged(96, 800, 3, 3)}, ctrl, 400)
	st := ctrl.Status()
	if st.Label != "hist" || st.Step != 400 {
		t.Fatalf("status identity: %+v", st)
	}
	if len(st.Decisions) > 8 {
		t.Fatalf("history %d exceeds cap 8", len(st.Decisions))
	}
	if !st.Converged {
		t.Fatal("expected convergence after 400 steps")
	}
	holds := 0
	for i, d := range st.Decisions {
		if d.Action == ActionHold && i > 0 &&
			(st.Decisions[i-1].Action == ActionHold || st.Decisions[i-1].Action == ActionConverged) {
			holds++
		}
	}
	if holds > 0 {
		t.Fatalf("steady-state holds not deduped: %d consecutive", holds)
	}
	if s := st.Choice.String(); !strings.Contains(s, "/c") || !strings.Contains(s, "/w") {
		t.Fatalf("Choice.String format: %q", s)
	}
}

// TestManager covers registration and snapshotting by job ID.
func TestManager(t *testing.T) {
	m := NewManager()
	if _, ok := m.Snapshot(1); ok {
		t.Fatal("empty manager returned a snapshot")
	}
	c1 := New("loop-a", Choice{Sched: parloop.Dynamic, Chunk: 8, Workers: 2}, testConfig())
	c2 := New("loop-b", Choice{Sched: parloop.Static, Chunk: 1, Workers: 4}, testConfig())
	m.Register(7, c1)
	m.Register(7, c2)
	sts, ok := m.Snapshot(7)
	if !ok || len(sts) != 2 {
		t.Fatalf("Snapshot(7) = %v, %v; want 2 loops", sts, ok)
	}
	if sts[0].Label != "loop-a" || sts[1].Label != "loop-b" {
		t.Fatalf("labels %q, %q", sts[0].Label, sts[1].Label)
	}
}

// TestScriptChoicesDeterministic: same seed, same script; different
// seed, different start; every scripted choice legal.
func TestScriptChoicesDeterministic(t *testing.T) {
	cfg := Config{Procs: 4, M: 64, Chunks: []int{1, 8, 64}}
	a := ScriptChoices(5, cfg, 24)
	b := ScriptChoices(5, cfg, 24)
	if len(a) != 24 || len(b) != 24 {
		t.Fatalf("script lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 5 not deterministic at step %d: %v vs %v", i, a[i], b[i])
		}
		if a[i].Chunk < 1 || a[i].Workers < 1 || a[i].Workers > 4 {
			t.Fatalf("illegal scripted choice %v", a[i])
		}
	}
	c := ScriptChoices(6, cfg, 24)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 5 and 6 produced identical scripts")
	}
}
