package adapt

import (
	"math"
	"testing"

	"repro/internal/parloop"
)

// FuzzControllerDecide feeds arbitrary — including degenerate —
// verdict streams into the decision function and asserts the two
// safety properties no input may break:
//
//   - every pick stays in the legal envelope {schedule from the
//     config, chunk >= 1, 1 <= workers <= procs}, and
//   - the hysteresis bound holds: the applied configuration changes
//     only when a SettleSteps measurement window closes, so two
//     consecutive changes are at least SettleSteps observations apart.
//
// The corpus seeds cover zero-work, single-iteration and all-barrier
// verdicts explicitly; the fuzzer mutates from there (NaN and Inf
// fractions reach the controller through math.Float64frombits).
func FuzzControllerDecide(f *testing.F) {
	// wall, work, imbalance bits, barrier bits, sync bits, budget,
	// workers, units, seed
	f.Add(int64(0), int64(0), uint64(0), uint64(0), uint64(0), true, 0, 0, int64(1))                // zero work
	f.Add(int64(100), int64(100), uint64(0), uint64(0), uint64(0), true, 1, 1, int64(2))            // single iteration
	f.Add(int64(5000), int64(0), uint64(0), math.Float64bits(1), uint64(0), false, 4, 96, int64(3)) // all barrier
	f.Add(int64(-50), int64(-1), math.Float64bits(math.NaN()), math.Float64bits(math.Inf(1)),
		math.Float64bits(-3), false, -7, -1, int64(4)) // garbage
	f.Add(int64(1e12), int64(1e15), math.Float64bits(0.4), math.Float64bits(0.2),
		math.Float64bits(0.1), true, 1024, 1<<30, int64(5)) // huge

	f.Fuzz(func(t *testing.T, wall, work int64, imbBits, barBits, syncBits uint64,
		budget bool, workers, units int, seed int64) {
		cfg := Config{
			Procs:  4,
			M:      96,
			Chunks: []int{1, 8, 64},
		}
		full := cfg.withDefaults()
		start := Choice{
			Sched:   parloop.Schedule(seed % 6), // may be illegal; New must legalize
			Chunk:   int(seed % 7),
			Workers: int(seed % 11),
		}
		ctrl := New("fuzz", start, cfg)

		legal := func(ch Choice, when string) {
			ok := false
			for _, s := range full.Schedules {
				if ch.Sched == s {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("%s: illegal schedule in %v", when, ch)
			}
			if ch.Chunk < 1 {
				t.Fatalf("%s: chunk %d < 1 in %v", when, ch.Chunk, ch)
			}
			if ch.Workers < 1 || ch.Workers > full.Procs {
				t.Fatalf("%s: workers %d outside [1, %d] in %v", when, ch.Workers, full.Procs, ch)
			}
		}
		legal(ctrl.Choice(), "start")

		// Derive a deterministic stream of mutated verdicts from the
		// fuzzed one so hysteresis is exercised across many windows.
		prev := ctrl.Choice()
		lastChange := 0
		for step := 1; step <= 64; step++ {
			k := int64(step) * (seed | 1)
			v := Verdict{
				WallNs:        wall + k,
				WorkNs:        work - k,
				ImbalanceFrac: math.Float64frombits(imbBits + uint64(step)),
				BarrierFrac:   math.Float64frombits(barBits ^ uint64(step)),
				SyncFrac:      math.Float64frombits(syncBits - uint64(step)),
				BudgetPass:    budget != (step%3 == 0),
				Workers:       workers + step,
				Units:         units - step,
			}
			d := ctrl.Observe(v)
			legal(d.Choice, "decision")
			legal(ctrl.Choice(), "applied")
			if d.Choice != prev {
				if since := step - lastChange; since < full.SettleSteps {
					t.Fatalf("hysteresis violated: choice changed after %d steps (< settle %d): %v -> %v",
						since, full.SettleSteps, prev, d.Choice)
				}
				lastChange = step
				prev = d.Choice
			}
			if d.Step != step {
				t.Fatalf("decision step %d, want %d", d.Step, step)
			}
		}
		// The status snapshot must stay well-formed too.
		st := ctrl.Status()
		legal(st.Choice, "status")
		for _, d := range st.Decisions {
			legal(d.Choice, "history")
		}
	})
}
