package adapt

import (
	"fmt"

	"repro/internal/parloop"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// LoopJob is a schedulable adaptive workload: a ragged-cost parallel
// loop stepped under the feedback controller. Each step it reads the
// controller's current {schedule, chunk, workers} pick, applies the
// schedule/chunk through a parloop.LoopCfg, resizes its own team to
// the worker pick (capped by the scheduler's current grant — the
// worker axis above the grant flows through the MeasuredAllocator,
// which the controller feeds via Config.Recorder), runs the loop as
// real spin work, and feeds the measured verdict back.
type LoopJob struct {
	name  string
	n     int
	steps int
	costs []int // per-iteration spin counts (seeded ragged surface)
	ctrl  *Controller
	clock simclock.Clock
}

// NewLoopJob builds an adaptive job: n ragged-cost iterations per
// step, steps steps, spin cost ~workScale per unit. procs is the
// controller's worker ceiling (the daemon's budget); rec, when
// non-nil, receives measured speedups (wire the MeasuredAllocator
// here). The cost surface and the controller's exploration are both
// deterministic in seed.
func NewLoopJob(name string, n, steps int, workScale float64, seed int64, procs int, rec Recorder, clock simclock.Clock) (*LoopJob, error) {
	if n < 1 {
		return nil, fmt.Errorf("adapt: LoopJob needs n >= 1, got %d", n)
	}
	if steps < 1 {
		return nil, fmt.Errorf("adapt: LoopJob needs steps >= 1, got %d", steps)
	}
	if workScale <= 0 {
		return nil, fmt.Errorf("adapt: LoopJob needs workScale > 0, got %g", workScale)
	}
	if procs < 1 {
		return nil, fmt.Errorf("adapt: LoopJob needs procs >= 1, got %d", procs)
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	w := Ragged(n, workScale, 3, seed)
	costs := make([]int, n)
	for i := range costs {
		costs[i] = int(w.Cost(0, i))
	}
	// Start from the schedule the paper would pick statically (Static,
	// full grant) so the decision log shows the controller earning its
	// keep.
	ctrl := New(name, Choice{Sched: parloop.Static, Chunk: 1, Workers: procs},
		Config{Procs: procs, M: n, Recorder: rec})
	return &LoopJob{name: name, n: n, steps: steps, costs: costs, ctrl: ctrl, clock: clock}, nil
}

// Controller exposes the job's controller for status endpoints
// (register it with a Manager under the scheduler's job ID).
func (j *LoopJob) Controller() *Controller { return j.ctrl }

// Name implements sched.Job.
func (j *LoopJob) Name() string { return j.name }

// Parallelism implements sched.Job.
func (j *LoopJob) Parallelism() int { return j.n }

// Run implements sched.Job.
func (j *LoopJob) Run(g *sched.Grant) error {
	// The job runs on its own team so the controller's worker picks
	// can be applied with Team.Resize without fighting the scheduler
	// over the grant team; the grant is honored as a hard cap,
	// re-read at every checkpoint.
	team := parloop.NewTeam(min(j.ctrl.Choice().Workers, g.Procs()))
	defer team.Close()
	cfg := parloop.NewLoopCfg(parloop.Static, 1)

	busy := make([]int64, j.ctrl.cfg.Procs)
	for s := 0; s < j.steps; s++ {
		if err := g.Checkpoint(); err != nil {
			return err
		}
		ch := j.ctrl.Choice()
		w := min(ch.Workers, g.Procs())
		if w < 1 {
			w = 1
		}
		if team.Workers() != w {
			team.Resize(w)
		}
		cfg.Store(ch.Sched, ch.Chunk)
		for i := range busy {
			busy[i] = 0
		}
		start := j.clock.Now()
		team.ForCfgW(j.n, cfg, func(worker, lo, hi int) {
			c := 0
			for i := lo; i < hi; i++ {
				c += j.costs[i]
				spinUnits(j.costs[i])
			}
			busy[worker] += int64(c)
		})
		wall := j.clock.Now().Sub(start).Nanoseconds()
		j.ctrl.Observe(measuredVerdict(wall, busy[:w], j.n))
	}
	return nil
}

// measuredVerdict distills a real step's measurements: wall time from
// the clock, imbalance from per-worker busy counters (in work units —
// the fraction is dimensionless so the unit cancels), and measured
// speedup (WorkNs) scaled from the busy distribution.
func measuredVerdict(wallNs int64, busy []int64, units int) Verdict {
	var total, max int64
	for _, b := range busy {
		total += b
		if b > max {
			max = b
		}
	}
	p := int64(len(busy))
	v := Verdict{WallNs: wallNs, Workers: len(busy), Units: units, BudgetPass: true}
	if max > 0 && wallNs > 0 {
		v.ImbalanceFrac = float64(p*max-total) / float64(p*max)
		// Realized parallelism ≈ total/max; express it as WorkNs so
		// WorkNs/WallNs is the measured speedup the allocator records.
		v.WorkNs = int64(float64(wallNs) * float64(total) / float64(max))
	}
	return v
}

// spinUnits burns roughly n units of CPU work (matching the spin-loop
// shape sched's synthetic jobs use, so the two workload families are
// comparable in benchdump).
func spinUnits(n int) {
	x := 1.0
	for i := 0; i < n; i++ {
		x += 1 / x
	}
	if x < 0 {
		panic("adapt: spin underflow (unreachable)")
	}
}

// ScriptChoices runs a real controller against a seeded ragged
// simulated workload and returns the choice applied at each of steps
// steps — a deterministic per-step decision script. The conformance
// harness replays these scripts inside kernels (internal/check's
// adaptive cells): the decisions come from the genuine controller
// policy, but being pure simulation they are reproducible bit for bit.
func ScriptChoices(seed int64, cfg Config, steps int) []Choice {
	full := cfg.withDefaults()
	start := Choice{
		Sched:   full.Schedules[int(uint64(seed)%uint64(len(full.Schedules)))],
		Chunk:   full.Chunks[int(uint64(seed>>8)%uint64(len(full.Chunks)))],
		Workers: full.Procs,
	}
	ctrl := New("script", start, cfg)
	out := RunSim(Sim{W: Ragged(4*full.M, 900, 3, seed)}, ctrl, steps)
	return out.Choices
}
