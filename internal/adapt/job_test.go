package adapt

import (
	"context"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/simclock"
)

// TestLoopJobUnderScheduler runs the adaptive job end to end under a
// real scheduler with the MeasuredAllocator wired as both the grant
// policy and the controller's recorder — the full control loop f3dd
// -adapt assembles.
func TestLoopJobUnderScheduler(t *testing.T) {
	alloc := NewMeasuredAllocator()
	s := sched.New(sched.Config{
		Procs:     4,
		Clock:     simclock.Real{},
		Allocator: alloc,
	})
	defer s.Close()

	job, err := NewLoopJob("adaptive", 96, 12, 300, 42, 4, alloc, nil)
	if err != nil {
		t.Fatalf("NewLoopJob: %v", err)
	}
	m := NewManager()
	h, err := s.Submit(job)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	m.Register(h.ID(), job.Controller())

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := h.Wait(ctx); err != nil {
		t.Fatalf("job failed: %v", err)
	}

	sts, ok := m.Snapshot(h.ID())
	if !ok || len(sts) != 1 {
		t.Fatalf("Snapshot = %v, %v", sts, ok)
	}
	st := sts[0]
	if st.Step != 12 {
		t.Fatalf("controller saw %d steps, want 12", st.Step)
	}
	if st.Choice.Workers < 1 || st.Choice.Workers > 4 || st.Choice.Chunk < 1 {
		t.Fatalf("final choice %v outside envelope", st.Choice)
	}
	if len(st.Decisions) == 0 {
		t.Fatal("no decisions recorded")
	}
	// The controller must have fed the allocator at least one measured
	// speedup for the loop's parallelism.
	found := false
	for _, w := range []int{1, 2, 3, 4} {
		if _, ok := alloc.Measured(96, w); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("no measured speedup reached the allocator")
	}
}

func TestNewLoopJobValidation(t *testing.T) {
	cases := []struct {
		n, steps  int
		workScale float64
		procs     int
	}{
		{0, 5, 1, 4},
		{8, 0, 1, 4},
		{8, 5, 0, 4},
		{8, 5, 1, 0},
	}
	for _, c := range cases {
		if _, err := NewLoopJob("bad", c.n, c.steps, c.workScale, 1, c.procs, nil, nil); err == nil {
			t.Fatalf("NewLoopJob(%+v) accepted", c)
		}
	}
	j, err := NewLoopJob("ok", 8, 5, 1, 1, 4, nil, nil)
	if err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	if j.Name() != "ok" || j.Parallelism() != 8 {
		t.Fatalf("identity: %q %d", j.Name(), j.Parallelism())
	}
}
