package adapt

import (
	"fmt"
	"time"

	"repro/internal/parloop"
	"repro/internal/simclock"
)

// Workload is a synthetic loop with a scripted per-iteration cost
// surface. Cost(step, i) returns iteration i's cost in nanoseconds at
// time step `step`, so a workload can encode ragged tails (cost varies
// with i), drift (cost varies with step) and phase changes (cost
// switches families at a step). Everything is pure arithmetic: the
// same workload always produces the same verdicts, which is what lets
// the convergence battery and benchdump gate on exact outcomes.
type Workload struct {
	Name string
	N    int
	Cost func(step, i int) float64
}

// splitmix64 is a tiny deterministic hash, the cost-surface noise
// source (no math/rand: the sequence must be a pure function of the
// seed and index on every platform).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitNoise returns a deterministic value in [0, 1) for (seed, i).
func unitNoise(seed int64, i int) float64 {
	return float64(splitmix64(uint64(seed)^uint64(i)*0x9e3779b97f4a7c15)>>11) / float64(1<<53)
}

// Ragged returns a stationary workload with per-iteration costs spread
// in [baseNs, baseNs*(1+skew)], a 10x heavy head covering the first
// n/8 indices (a boundary-layer-like cost cluster) and sparse 4x
// spikes — the shape where a one-shot static deal loses badly to
// on-demand dealing, because contiguous blocks concentrate the head on
// one worker.
func Ragged(n int, baseNs, skew float64, seed int64) Workload {
	head := n / 8
	return Workload{
		Name: "ragged",
		N:    n,
		Cost: func(_, i int) float64 {
			c := baseNs * (1 + skew*unitNoise(seed, i))
			if i < head {
				c *= 10
			}
			if i%31 == 7 {
				c *= 4
			}
			return c
		},
	}
}

// Triangular returns a stationary workload whose cost ramps linearly
// with the index — smooth variation, the static-cyclic sweet spot.
func Triangular(n int, baseNs float64) Workload {
	return Workload{
		Name: "triangular",
		N:    n,
		Cost: func(_, i int) float64 {
			return baseNs * (0.25 + 1.5*float64(i)/float64(n))
		},
	}
}

// Uniform returns a flat stationary workload — the static schedule's
// home turf, where any per-chunk overhead is pure loss.
func Uniform(n int, baseNs float64) Workload {
	return Workload{
		Name: "uniform",
		N:    n,
		Cost: func(_, _ int) float64 { return baseNs },
	}
}

// PhaseShift switches from workload a to workload b at shiftStep — the
// scripted phase change the drift-reset path must survive. a and b
// must have equal N.
func PhaseShift(a, b Workload, shiftStep int) Workload {
	if a.N != b.N {
		panic(fmt.Sprintf("adapt: PhaseShift needs equal N, got %d and %d", a.N, b.N))
	}
	return Workload{
		Name: fmt.Sprintf("%s-then-%s", a.Name, b.Name),
		N:    a.N,
		Cost: func(step, i int) float64 {
			if step < shiftStep {
				return a.Cost(step, i)
			}
			return b.Cost(step-shiftStep, i)
		},
	}
}

// Scaled multiplies a workload's cost surface by k from shiftStep on —
// the KindCostShift fault shape (same raggedness, heavier iterations).
func Scaled(w Workload, k float64, shiftStep int) Workload {
	return Workload{
		Name: fmt.Sprintf("%s-x%g@%d", w.Name, k, shiftStep),
		N:    w.N,
		Cost: func(step, i int) float64 {
			c := w.Cost(step, i)
			if step >= shiftStep {
				c *= k
			}
			return c
		},
	}
}

// Sim executes workload steps under a Choice exactly the way parloop
// deals them — Static via parloop.StaticRange, StaticCyclic round-
// robin, Dynamic by earliest-free-worker greedy dealing, Guided with
// parloop's remaining/(2*workers) shrinking-chunk formula — plus an
// explicit overhead model, so chunk size and schedule have the real
// tradeoff: finer chunks balance better but pay more deal/chunk
// overhead, and every region pays a fork-join cost per worker.
type Sim struct {
	W Workload
	// ForkNs is the per-worker fork-join cost of one region (the
	// paper's sync cost); default 1500.
	ForkNs float64
	// DealNs is the per-chunk atomic deal cost for Dynamic and
	// Guided; default 400.
	DealNs float64
	// ChunkNs is the fixed per-chunk dispatch overhead every schedule
	// pays; default 60.
	ChunkNs float64
	// Clock, when non-nil, is advanced by each simulated step's wall
	// time, so a soak driving real timers off the same virtual clock
	// sees simulated time flow.
	Clock *simclock.Virtual
}

func (s Sim) withDefaults() Sim {
	if s.ForkNs == 0 {
		s.ForkNs = 1500
	}
	if s.DealNs == 0 {
		s.DealNs = 400
	}
	if s.ChunkNs == 0 {
		s.ChunkNs = 60
	}
	return s
}

// StepResult is one simulated step's outcome.
type StepResult struct {
	WallNs  float64   // makespan + fork-join cost
	WorkNs  float64   // pure iteration cost, summed
	BusyNs  []float64 // per-worker busy time including overheads
	Chunks  int
	Deals   int // atomic deal operations (Dynamic/Guided only)
	Workers int
}

// span is a contiguous chunk of iterations with a precomputed cost.
type span struct {
	lo, hi int
	cost   float64
}

// Step simulates one step of the workload under ch and returns both
// the raw result and the Verdict the controller would see for it.
func (s Sim) Step(step int, ch Choice) (StepResult, Verdict) {
	s = s.withDefaults()
	n, p := s.W.N, ch.Workers
	if p < 1 {
		p = 1
	}
	chunk := ch.Chunk
	if chunk < 1 {
		chunk = 1
	}
	cost := func(lo, hi int) float64 {
		c := 0.0
		for i := lo; i < hi; i++ {
			c += s.W.Cost(step, i)
		}
		return c
	}

	busy := make([]float64, p)
	chunks, deals := 0, 0
	work := 0.0

	// assign adds a chunk to a fixed worker (static dealing).
	assign := func(w, lo, hi int) {
		c := cost(lo, hi)
		work += c
		busy[w] += s.ChunkNs + c
		chunks++
	}
	// deal adds a chunk to the earliest-free worker (on-demand
	// dealing: the worker that frees first takes the next chunk, ties
	// to the lowest index — exactly the greedy order the shared
	// atomic counter realizes).
	deal := func(lo, hi int) {
		w := 0
		for k := 1; k < p; k++ {
			if busy[k] < busy[w] {
				w = k
			}
		}
		c := cost(lo, hi)
		work += c
		busy[w] += s.DealNs + s.ChunkNs + c
		chunks++
		deals++
	}

	switch ch.Sched {
	case parloop.Static:
		for w := 0; w < p; w++ {
			lo, hi := parloop.StaticRange(n, p, w)
			if lo < hi {
				assign(w, lo, hi)
			}
		}
	case parloop.StaticCyclic:
		for w := 0; w < p; w++ {
			for lo := w * chunk; lo < n; lo += p * chunk {
				hi := min(lo+chunk, n)
				assign(w, lo, hi)
			}
		}
	case parloop.Dynamic:
		for lo := 0; lo < n; lo += chunk {
			deal(lo, min(lo+chunk, n))
		}
	case parloop.Guided:
		for lo := 0; lo < n; {
			c := (n - lo) / (2 * p)
			if c < chunk {
				c = chunk
			}
			hi := min(lo+c, n)
			deal(lo, hi)
			lo = hi
		}
	default:
		panic(fmt.Sprintf("adapt: Sim.Step: unknown schedule %v", ch.Sched))
	}

	makespan := 0.0
	for _, b := range busy {
		if b > makespan {
			makespan = b
		}
	}
	wall := makespan + s.ForkNs
	res := StepResult{
		WallNs: wall, WorkNs: work, BusyNs: busy,
		Chunks: chunks, Deals: deals, Workers: p,
	}

	total := float64(p) * wall
	idle := 0.0
	for _, b := range busy {
		idle += makespan - b
	}
	overhead := float64(p)*s.ForkNs + float64(deals)*s.DealNs + float64(chunks)*s.ChunkNs
	syncFrac := overhead / total
	v := Verdict{
		WallNs:        int64(wall),
		WorkNs:        int64(work),
		ImbalanceFrac: idle / total,
		SyncFrac:      syncFrac,
		BudgetPass:    syncFrac < 0.05,
		Workers:       p,
		Units:         n,
	}
	if s.Clock != nil {
		s.Clock.Advance(time.Duration(wall) * time.Nanosecond)
	}
	return res, v
}

// SimOutcome is the result of driving a controller against a simulated
// workload for a fixed number of steps.
type SimOutcome struct {
	Steps int
	// Final is the controller's choice after the last step.
	Final Choice
	// ConvergedAt is the first step (1-based) at which the controller
	// reported convergence, or -1 if it never did.
	ConvergedAt int
	// FinalScore is the steady-state wall ns of Final, simulated at
	// the last step's cost surface.
	FinalScore float64
	// Wall accumulates the simulated wall time of every step actually
	// taken (exploration cost included).
	Wall float64
	// Choices records the choice applied at each step.
	Choices []Choice
}

// RunSim drives ctrl against the simulated workload for steps steps:
// each step runs under the controller's current choice, and the
// resulting verdict is fed back.
func RunSim(s Sim, ctrl *Controller, steps int) SimOutcome {
	out := SimOutcome{Steps: steps, ConvergedAt: -1}
	for t := 0; t < steps; t++ {
		ch := ctrl.Choice()
		out.Choices = append(out.Choices, ch)
		res, v := s.Step(t, ch)
		out.Wall += res.WallNs
		ctrl.Observe(v)
		if out.ConvergedAt < 0 && ctrl.Converged() {
			out.ConvergedAt = t + 1
		}
	}
	out.Final = ctrl.Choice()
	res, _ := s.Step(steps-1, out.Final)
	out.FinalScore = res.WallNs
	return out
}

// StaticScores simulates one steady-state step (at step index step)
// for every fixed {schedule, chunk} configuration at the given worker
// count and returns choice -> wall ns. Static ignores chunk, so it
// appears once. This is the field the adaptive controller must match
// or beat.
func StaticScores(s Sim, step, workers int, scheds []parloop.Schedule, chunks []int) map[Choice]float64 {
	out := make(map[Choice]float64)
	for _, sc := range scheds {
		cs := chunks
		if sc == parloop.Static {
			cs = chunks[:1]
		}
		for _, c := range cs {
			ch := Choice{Sched: sc, Chunk: c, Workers: workers}
			res, _ := s.Step(step, ch)
			out[ch] = res.WallNs
		}
	}
	return out
}
