package adapt

import "sync"

// Manager indexes the controllers of live adaptive jobs by scheduler
// job ID, the lookup behind f3dd's GET /jobs/{id}/adapt.
type Manager struct {
	mu   sync.Mutex
	jobs map[uint64][]*Controller
}

// NewManager returns an empty Manager.
func NewManager() *Manager {
	return &Manager{jobs: make(map[uint64][]*Controller)}
}

// Register attaches a controller to a job ID (a job may have one
// controller per instrumented loop).
func (m *Manager) Register(id uint64, ctrl *Controller) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[id] = append(m.jobs[id], ctrl)
}

// Snapshot returns the per-loop controller statuses for a job, or
// ok=false if the job has no registered controllers.
func (m *Manager) Snapshot(id uint64) ([]Status, bool) {
	m.mu.Lock()
	ctrls := m.jobs[id]
	m.mu.Unlock()
	if len(ctrls) == 0 {
		return nil, false
	}
	out := make([]Status, len(ctrls))
	for i, c := range ctrls {
		out[i] = c.Status()
	}
	return out, true
}

// JobAdapt is the wire shape of GET /jobs/{id}/adapt: the job's
// identity plus every instrumented loop's controller status. tracetool
// renders it as a decision-log table (tracetool adapt).
type JobAdapt struct {
	ID    uint64   `json:"id"`
	Name  string   `json:"name,omitempty"`
	State string   `json:"state,omitempty"`
	Loops []Status `json:"loops"`
}
