package adapt

import (
	"testing"
	"time"

	"repro/internal/parloop"
	"repro/internal/simclock"
)

// TestSimWorkConservation: every schedule must execute exactly the
// workload's total cost, whatever the dealing.
func TestSimWorkConservation(t *testing.T) {
	w := Ragged(257, 700, 2.5, 42)
	want := 0.0
	for i := 0; i < w.N; i++ {
		want += w.Cost(0, i)
	}
	s := Sim{W: w}
	for _, sched := range parloop.Schedules() {
		for _, chunk := range []int{1, 7, 64} {
			for _, workers := range []int{1, 3, 4, 8} {
				res, v := s.Step(0, Choice{Sched: sched, Chunk: chunk, Workers: workers})
				if diff := res.WorkNs - want; diff > 1e-6*want || diff < -1e-6*want {
					t.Fatalf("%v/c%d/w%d: work %.0f != %.0f", sched, chunk, workers, res.WorkNs, want)
				}
				if res.WallNs < want/float64(workers) {
					t.Fatalf("%v/c%d/w%d: wall %.0f below perfect parallel bound %.0f",
						sched, chunk, workers, res.WallNs, want/float64(workers))
				}
				if v.ImbalanceFrac < 0 || v.ImbalanceFrac > 1 || v.SyncFrac < 0 || v.SyncFrac > 1 {
					t.Fatalf("%v/c%d/w%d: fractions out of range: %+v", sched, chunk, workers, v)
				}
			}
		}
	}
}

// TestSimSchedulePreferences: the cost surface must reproduce the
// qualitative tradeoffs the controller exists to exploit.
func TestSimSchedulePreferences(t *testing.T) {
	// Ragged: on-demand dealing beats the one-shot static deal.
	ragged := Sim{W: Ragged(96, 800, 3, 11)}
	stat, _ := ragged.Step(0, Choice{Sched: parloop.Static, Chunk: 1, Workers: 4})
	dyn, _ := ragged.Step(0, Choice{Sched: parloop.Dynamic, Chunk: 8, Workers: 4})
	if dyn.WallNs >= stat.WallNs {
		t.Fatalf("ragged: dynamic %.0f not better than static %.0f", dyn.WallNs, stat.WallNs)
	}
	// Uniform: static's zero deal cost wins over fine-chunk dynamic.
	uniform := Sim{W: Uniform(96, 800)}
	stat, _ = uniform.Step(0, Choice{Sched: parloop.Static, Chunk: 1, Workers: 4})
	dynFine, _ := uniform.Step(0, Choice{Sched: parloop.Dynamic, Chunk: 1, Workers: 4})
	if stat.WallNs >= dynFine.WallNs {
		t.Fatalf("uniform: static %.0f not better than dynamic/c1 %.0f", stat.WallNs, dynFine.WallNs)
	}
	// Chunk tradeoff under dynamic: chunk 1 pays more deals than chunk 8.
	d1, _ := ragged.Step(0, Choice{Sched: parloop.Dynamic, Chunk: 1, Workers: 4})
	d8, _ := ragged.Step(0, Choice{Sched: parloop.Dynamic, Chunk: 8, Workers: 4})
	if d1.Deals <= d8.Deals {
		t.Fatalf("deal counts: c1=%d c8=%d", d1.Deals, d8.Deals)
	}
}

// TestSimGuidedMatchesParloopFormula: the simulated guided chunk
// ladder must mirror parloop's remaining/(2*workers) rule.
func TestSimGuidedMatchesParloopFormula(t *testing.T) {
	s := Sim{W: Uniform(100, 10)}
	res, _ := s.Step(0, Choice{Sched: parloop.Guided, Chunk: 1, Workers: 2})
	// n=100, p=2: chunks 25, 18, 14, 10, 8, 6, 4, 3, 3, 2, 2, 1, ...
	// The exact ladder matters less than the count being far below n
	// (shrinking chunks) and above n/(2p) (not one giant chunk).
	if res.Chunks < 5 || res.Chunks > 30 {
		t.Fatalf("guided chunk count %d implausible for n=100 p=2", res.Chunks)
	}
	if res.Deals != res.Chunks {
		t.Fatalf("guided deals %d != chunks %d", res.Deals, res.Chunks)
	}
}

// TestWorkloadBuilders pins the scripted surfaces.
func TestWorkloadBuilders(t *testing.T) {
	r := Ragged(64, 100, 1, 9)
	if r.Cost(0, 3) != r.Cost(5, 3) {
		t.Fatal("ragged workload not stationary")
	}
	if r.Cost(0, 7) < 8*100 {
		t.Fatalf("heavy-tail index 7 cost %.0f; want >= 800", r.Cost(0, 7))
	}
	tri := Triangular(64, 100)
	if tri.Cost(0, 10) >= tri.Cost(0, 50) {
		t.Fatal("triangular costs not increasing")
	}
	ps := PhaseShift(Uniform(8, 1), Uniform(8, 2), 3)
	if ps.Cost(2, 0) != 1 || ps.Cost(3, 0) != 2 {
		t.Fatalf("phase shift: %v %v", ps.Cost(2, 0), ps.Cost(3, 0))
	}
	sc := Scaled(Uniform(8, 5), 4, 10)
	if sc.Cost(9, 0) != 5 || sc.Cost(10, 0) != 20 {
		t.Fatalf("scaled: %v %v", sc.Cost(9, 0), sc.Cost(10, 0))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("PhaseShift with mismatched N did not panic")
		}
	}()
	PhaseShift(Uniform(8, 1), Uniform(9, 1), 1)
}

// TestSimVirtualClock: the sim advances an attached virtual clock by
// simulated wall time, so simclock-driven harnesses see time flow.
func TestSimVirtualClock(t *testing.T) {
	vc := simclock.NewVirtual(time.Date(2001, 9, 1, 0, 0, 0, 0, time.UTC))
	s := Sim{W: Uniform(16, 100), Clock: vc}
	before := vc.Now()
	res, _ := s.Step(0, Choice{Sched: parloop.Static, Chunk: 1, Workers: 2})
	got := vc.Now().Sub(before)
	if got != time.Duration(res.WallNs)*time.Nanosecond {
		t.Fatalf("clock advanced %v; step wall %v", got, time.Duration(res.WallNs))
	}
}

// TestStaticScores: one entry per {schedule, chunk} with static
// deduped, and the map's minimum is consistent with direct simulation.
func TestStaticScores(t *testing.T) {
	s := Sim{W: Ragged(96, 800, 3, 11)}
	scheds := parloop.Schedules()
	chunks := []int{1, 8, 64}
	scores := StaticScores(s, 0, 4, scheds, chunks)
	want := 1 + 3*len(chunks) // static once, 3 schedules x 3 chunks
	if len(scores) != want {
		t.Fatalf("got %d configurations, want %d", len(scores), want)
	}
	for ch, sc := range scores {
		res, _ := s.Step(0, ch)
		if res.WallNs != sc {
			t.Fatalf("%v: score %.0f != simulated %.0f", ch, sc, res.WallNs)
		}
	}
}

// TestSimDegenerate: empty and single-iteration workloads stay sane.
func TestSimDegenerate(t *testing.T) {
	for _, sched := range parloop.Schedules() {
		s := Sim{W: Uniform(0, 100)}
		res, v := s.Step(0, Choice{Sched: sched, Chunk: 4, Workers: 4})
		if res.WorkNs != 0 || v.WallNs <= 0 {
			t.Fatalf("%v empty: %+v %+v", sched, res, v)
		}
		s1 := Sim{W: Uniform(1, 100)}
		res1, _ := s1.Step(0, Choice{Sched: sched, Chunk: 4, Workers: 4})
		if res1.WorkNs != 100 {
			t.Fatalf("%v single: work %.0f", sched, res1.WorkNs)
		}
	}
}
