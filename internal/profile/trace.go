package profile

import (
	"repro/internal/obs"
)

// The tracer adapter makes obs span events the profiler's runtime
// data source: instead of wrapping code in Profiler.Time calls, attach
// an obs.Tracer to the teams (or run under the f3dd daemon with
// tracing enabled), pull the events, and charge them here. Region
// spans are charged under their label; barrier waits and chunk spans
// are charged under "<label>/barrier" and "<label>/chunk" so the
// ranking separates useful work from synchronization cost — the split
// the paper's §4 workflow reads off prof output.

// unlabeled is the entry name for events from teams without a label.
const unlabeled = "region"

// AddTrace charges the span-shaped events (region end, barrier wait,
// chunk execution) to p. Non-span events are ignored.
func AddTrace(p *Profiler, events []obs.Event) {
	for _, e := range events {
		name := e.Name
		if name == "" {
			name = unlabeled
		}
		switch e.Kind {
		case obs.KindRegionEnd:
			p.Add(name, e.Dur)
		case obs.KindBarrier:
			p.Add(name+"/barrier", e.Dur)
		case obs.KindChunk:
			p.Add(name+"/chunk", e.Dur)
		}
	}
}

// FromTrace builds a fresh profiler from span events.
func FromTrace(events []obs.Event) *Profiler {
	p := New()
	AddTrace(p, events)
	return p
}

// Collect drains tr's current buffer into a fresh profiler: the
// one-call bridge from a live tracer to the paper's ranked loop
// profile (rank with Entries, judge with Advise).
func Collect(tr *obs.Tracer) *Profiler {
	return FromTrace(tr.Events())
}
