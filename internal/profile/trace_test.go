package profile

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/parloop"
)

func TestFromTraceChargesSpans(t *testing.T) {
	events := []obs.Event{
		{Kind: obs.KindRegionEnd, Name: "rhs", Dur: 10 * time.Millisecond},
		{Kind: obs.KindRegionEnd, Name: "rhs", Dur: 30 * time.Millisecond},
		{Kind: obs.KindRegionEnd, Name: "bc", Dur: 5 * time.Millisecond},
		{Kind: obs.KindBarrier, Name: "rhs", Worker: 1, Dur: 2 * time.Millisecond},
		{Kind: obs.KindChunk, Name: "rhs", Worker: 0, Dur: 9 * time.Millisecond},
		{Kind: obs.KindRegionEnd, Name: "", Dur: time.Millisecond},
		{Kind: obs.KindGrant, Name: "rhs", A: 4, B: 8}, // not a span: ignored
	}
	p := FromTrace(events)
	entries := p.Entries()
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5: %+v", len(entries), entries)
	}
	// Sorted by total: rhs (40ms) first.
	if entries[0].Name != "rhs" || entries[0].Total != 40*time.Millisecond || entries[0].Calls != 2 {
		t.Errorf("top entry = %+v, want rhs 40ms over 2 calls", entries[0])
	}
	byName := make(map[string]Entry)
	for _, e := range entries {
		byName[e.Name] = e
	}
	if e := byName["rhs/barrier"]; e.Total != 2*time.Millisecond {
		t.Errorf("rhs/barrier = %+v", e)
	}
	if e := byName["rhs/chunk"]; e.Total != 9*time.Millisecond {
		t.Errorf("rhs/chunk = %+v", e)
	}
	if e := byName[unlabeled]; e.Total != time.Millisecond {
		t.Errorf("unlabeled region = %+v", e)
	}
}

// TestCollectFromLiveTeam closes the loop: a traced parloop team's
// events land in a profiler ranking without any Time() calls in the
// loop bodies.
func TestCollectFromLiveTeam(t *testing.T) {
	tr := obs.NewTracer(4096, nil)
	tr.Enable()
	team := parloop.NewTeam(4)
	defer team.Close()
	team.SetTracer(tr, "sweep")

	sink := 0.0
	for step := 0; step < 5; step++ {
		team.ForChunked(1<<12, func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			_ = s
		})
	}
	_ = sink

	p := Collect(tr)
	entries := p.Entries()
	byName := make(map[string]Entry)
	for _, e := range entries {
		byName[e.Name] = e
	}
	if e := byName["sweep"]; e.Calls != 5 {
		t.Errorf("sweep regions = %+v, want 5 calls", e)
	}
	if e := byName["sweep/chunk"]; e.Calls != 20 {
		t.Errorf("sweep chunks = %+v, want 20 calls (4 workers x 5 regions)", e)
	}
	// The ranked profile should place the region above its per-worker
	// chunks only if total region time >= any single chunk — both must
	// at least be nonzero.
	if byName["sweep"].Total <= 0 || byName["sweep/chunk"].Total <= 0 {
		t.Error("span durations were not recorded")
	}
}
