package profile

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func TestAddAndEntries(t *testing.T) {
	p := New()
	p.Add("rhs", 100*time.Millisecond)
	p.Add("rhs", 200*time.Millisecond)
	p.Add("bc", 5*time.Millisecond)
	p.Add("sweep", 350*time.Millisecond)
	es := p.Entries()
	if len(es) != 3 {
		t.Fatalf("entries = %d, want 3", len(es))
	}
	if es[0].Name != "sweep" || es[1].Name != "rhs" || es[2].Name != "bc" {
		t.Errorf("wrong order: %v, %v, %v", es[0].Name, es[1].Name, es[2].Name)
	}
	if es[1].Calls != 2 || es[1].Total != 300*time.Millisecond {
		t.Errorf("rhs entry wrong: %+v", es[1])
	}
	if es[1].Mean() != 150*time.Millisecond {
		t.Errorf("rhs mean = %v", es[1].Mean())
	}
	if p.Total() != 655*time.Millisecond {
		t.Errorf("Total = %v", p.Total())
	}
	p.Reset()
	if len(p.Entries()) != 0 || p.Total() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestTimeChargesDuration(t *testing.T) {
	p := New()
	p.Time("work", func() { time.Sleep(5 * time.Millisecond) })
	es := p.Entries()
	if len(es) != 1 || es[0].Total < 4*time.Millisecond {
		t.Errorf("Time charged %v", es)
	}
}

func TestProfilerConcurrentUse(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Add("loop", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	es := p.Entries()
	if es[0].Calls != 800 {
		t.Errorf("calls = %d, want 800", es[0].Calls)
	}
}

func TestMeanEmptyEntry(t *testing.T) {
	if (Entry{}).Mean() != 0 {
		t.Error("zero entry mean should be 0")
	}
}

func TestAdviseThreshold(t *testing.T) {
	// On a 300 MHz machine with a 10,000-cycle sync cost and 1% budget,
	// 8 processors need 8e6 cycles ≈ 26.7 ms of work per loop.
	entries := []Entry{
		{Name: "big", Calls: 10, Total: 10 * 100 * time.Millisecond},      // 100ms/call = 3e7 cycles
		{Name: "small", Calls: 1000, Total: 1000 * 10 * time.Microsecond}, // 10µs/call = 3e3 cycles
	}
	adv := Advise(entries, 300, 10_000, 8, model.OverheadBudget)
	if len(adv) != 2 {
		t.Fatalf("advice count = %d", len(adv))
	}
	if !adv[0].Parallelize {
		t.Errorf("big loop should be parallelized: %+v", adv[0])
	}
	if adv[1].Parallelize {
		t.Errorf("small loop should stay serial: %+v", adv[1])
	}
	if adv[0].MinWorkCycles != 8_000_000 {
		t.Errorf("threshold = %g, want 8e6", adv[0].MinWorkCycles)
	}
	if math.Abs(adv[0].WorkCycles-3e7) > 1 {
		t.Errorf("big work = %g cycles, want 3e7", adv[0].WorkCycles)
	}
}

func TestAdvisePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("clockMHz <= 0 should panic")
		}
	}()
	Advise(nil, 0, 1, 1, 0.01)
}

func TestCoverageSpeedup(t *testing.T) {
	entries := []Entry{
		{Name: "a", Total: 90 * time.Second},
		{Name: "b", Total: 9 * time.Second},
		{Name: "c", Total: 1 * time.Second},
	}
	// Nothing parallel: speedup 1.
	if got := CoverageSpeedup(entries, 0, 64); got != 1 {
		t.Errorf("k=0 speedup = %g", got)
	}
	// Everything parallel: speedup = procs.
	if got := CoverageSpeedup(entries, 3, 64); got != 64 {
		t.Errorf("k=3 speedup = %g", got)
	}
	// Top loop only: 90% coverage → Amdahl 1/(0.1 + 0.9/64).
	want := model.AmdahlSpeedup(0.9, 64)
	if got := CoverageSpeedup(entries, 1, 64); math.Abs(got-want) > 1e-12 {
		t.Errorf("k=1 speedup = %g, want %g", got, want)
	}
	// Monotone in k.
	prev := 0.0
	for k := 0; k <= 3; k++ {
		s := CoverageSpeedup(entries, k, 16)
		if s < prev {
			t.Errorf("coverage speedup decreased at k=%d", k)
		}
		prev = s
	}
	if got := CoverageSpeedup(nil, 0, 8); got != 1 {
		t.Errorf("empty profile speedup = %g, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range k should panic")
		}
	}()
	CoverageSpeedup(entries, 4, 8)
}

func TestFormat(t *testing.T) {
	entries := []Entry{
		{Name: "sweep", Calls: 5, Total: 500 * time.Millisecond},
		{Name: "rhs", Calls: 5, Total: 400 * time.Millisecond},
		{Name: "bc", Calls: 5, Total: 100 * time.Millisecond},
	}
	out := Format(entries, 2)
	if !strings.Contains(out, "sweep") || !strings.Contains(out, "rhs") {
		t.Errorf("Format missing entries:\n%s", out)
	}
	if strings.Contains(out, "bc") {
		t.Errorf("Format should truncate to 2 rows:\n%s", out)
	}
	if !strings.Contains(out, "50.0%") {
		t.Errorf("Format missing self%% column:\n%s", out)
	}
	full := Format(entries, 0)
	if !strings.Contains(full, "bc") {
		t.Errorf("Format(0) should include all rows:\n%s", full)
	}
	if !strings.Contains(full, "100.0%") {
		t.Errorf("cumulative should reach 100%%:\n%s", full)
	}
}
