// Package profile is the loop-profiling substrate of the reproduction,
// standing in for the prof/pixie/Perfex/SpeedShop tooling of the
// paper's §6. It times named loops, ranks them by cost, and — the core
// of the paper's incremental parallelization workflow — advises which
// loops are expensive enough to justify parallelization under the
// Table 1 criterion ("we needed to know which loops were expensive
// enough to justify being parallelized").
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
)

// Entry is one profiled loop (or routine). The JSON shape (total in
// integer nanoseconds) is part of the analyze.Report schema.
type Entry struct {
	Name  string        `json:"name"`
	Calls int           `json:"calls"`
	Total time.Duration `json:"total_ns"`
}

// Mean returns the average duration per call.
func (e Entry) Mean() time.Duration {
	if e.Calls == 0 {
		return 0
	}
	return e.Total / time.Duration(e.Calls)
}

// Profiler accumulates loop timings. It is safe for concurrent use.
type Profiler struct {
	mu      sync.Mutex
	entries map[string]*Entry
}

// New returns an empty profiler.
func New() *Profiler {
	return &Profiler{entries: make(map[string]*Entry)}
}

// Time runs fn and charges its wall-clock duration to name.
func (p *Profiler) Time(name string, fn func()) {
	start := time.Now()
	fn()
	p.Add(name, time.Since(start))
}

// Add charges one call of duration d to name.
func (p *Profiler) Add(name string, d time.Duration) {
	p.mu.Lock()
	e := p.entries[name]
	if e == nil {
		e = &Entry{Name: name}
		p.entries[name] = e
	}
	e.Calls++
	e.Total += d
	p.mu.Unlock()
}

// Entries returns all entries sorted by total time, most expensive
// first (ties broken by name for determinism).
func (p *Profiler) Entries() []Entry {
	p.mu.Lock()
	out := make([]Entry, 0, len(p.entries))
	for _, e := range p.entries {
		out = append(out, *e)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Total returns the sum of all charged durations.
func (p *Profiler) Total() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	var t time.Duration
	for _, e := range p.entries {
		t += e.Total
	}
	return t
}

// Reset clears all entries.
func (p *Profiler) Reset() {
	p.mu.Lock()
	p.entries = make(map[string]*Entry)
	p.mu.Unlock()
}

// Format renders a prof-style table of the top n entries (n <= 0 means
// all): rank, cumulative %, self %, calls, mean, total.
func Format(entries []Entry, n int) string {
	if n <= 0 || n > len(entries) {
		n = len(entries)
	}
	var total time.Duration
	for _, e := range entries {
		total += e.Total
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-28s %8s %8s %12s %12s %7s\n",
		"#", "loop", "self%", "cum%", "calls", "mean", "total")
	var cum time.Duration
	for i := 0; i < n; i++ {
		e := entries[i]
		cum += e.Total
		selfPct, cumPct := 0.0, 0.0
		if total > 0 {
			selfPct = 100 * float64(e.Total) / float64(total)
			cumPct = 100 * float64(cum) / float64(total)
		}
		fmt.Fprintf(&b, "%-4d %-28s %7.1f%% %7.1f%% %12d %12v %7v\n",
			i+1, e.Name, selfPct, cumPct, e.Calls, e.Mean().Round(time.Microsecond), e.Total.Round(time.Millisecond))
	}
	return b.String()
}

// Advice is the parallelization recommendation for one loop.
type Advice struct {
	Entry Entry
	// WorkCycles is the loop's per-call work converted to cycles.
	WorkCycles float64
	// MinWorkCycles is the Table 1 threshold for the target machine.
	MinWorkCycles float64
	// Parallelize reports whether the loop clears the threshold.
	Parallelize bool
}

// Advise applies the paper's Table 1 criterion to profiled loops: a
// loop is worth parallelizing on procs processors when the work in one
// execution is at least procs·syncCostCycles/budget cycles, so the
// synchronization stays below the budget fraction of runtime. clockMHz
// converts measured durations to cycles; budget is typically
// model.OverheadBudget (1 %).
func Advise(entries []Entry, clockMHz float64, syncCostCycles float64, procs int, budget float64) []Advice {
	if clockMHz <= 0 {
		panic(fmt.Sprintf("profile: Advise clockMHz must be > 0, got %g", clockMHz))
	}
	min := model.MinWorkPerLoop(procs, syncCostCycles, budget)
	out := make([]Advice, len(entries))
	for i, e := range entries {
		perCall := e.Mean().Seconds() * clockMHz * 1e6
		out[i] = Advice{
			Entry:         e,
			WorkCycles:    perCall,
			MinWorkCycles: min,
			Parallelize:   perCall >= min,
		}
	}
	return out
}

// CoverageSpeedup returns the Amdahl-predicted speedup if the first k
// entries (by cost) are parallelized perfectly on procs processors and
// the rest stay serial — the number the incremental workflow watches as
// it works down the profile.
func CoverageSpeedup(entries []Entry, k, procs int) float64 {
	if k < 0 || k > len(entries) {
		panic(fmt.Sprintf("profile: CoverageSpeedup k=%d out of range [0,%d]", k, len(entries)))
	}
	var total, covered time.Duration
	for i, e := range entries {
		total += e.Total
		if i < k {
			covered += e.Total
		}
	}
	if total == 0 {
		return 1
	}
	frac := float64(covered) / float64(total)
	return model.AmdahlSpeedup(frac, procs)
}
