package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestKindRoundTripExhaustive iterates every defined kind — the table
// is generated from the enum range, so a kind added without String and
// ParseKind mappings fails here instead of silently printing numbers.
func TestKindRoundTripExhaustive(t *testing.T) {
	if got, want := len(kinds), int(kindCount); got != want {
		t.Errorf("kinds table lists %d kinds, enum defines %d — add the new kind to kinds", got, want)
	}
	seen := make(map[string]Kind, int(kindCount))
	for k := Kind(0); k < kindCount; k++ {
		s := k.String()
		if strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d) has no String mapping", int(k))
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("Kind(%d) and Kind(%d) share the name %q", int(prev), int(k), s)
		}
		seen[s] = k
		got, err := ParseKind(s)
		if err != nil {
			t.Errorf("ParseKind(%q): %v", s, err)
			continue
		}
		if got != k {
			t.Errorf("ParseKind(%q) = Kind(%d), want Kind(%d)", s, int(got), int(k))
		}
	}
	// The sentinel itself must stay unnamed: the fallback is what
	// makes an unmapped kind visible.
	if s := kindCount.String(); !strings.HasPrefix(s, "Kind(") {
		t.Errorf("kindCount.String() = %q, want the Kind(%%d) fallback", s)
	}
	if _, err := ParseKind("no-such-kind"); err == nil {
		t.Error("ParseKind accepted an unknown name")
	}
}

// TestEventJSONRoundTripClusterFields pins the wire form of the
// cluster correlation fields: Node, Trace and Epoch survive the JSONL
// round trip, and stay omitted (backward-compatible) when unset.
func TestEventJSONRoundTripClusterFields(t *testing.T) {
	at := time.Date(2001, 9, 1, 12, 0, 0, 42, time.UTC)
	in := Event{
		Seq: 7, At: at, Kind: KindShardStep, Name: "solve", Worker: -1,
		Node: "w01", Trace: "solve#3", Epoch: 5,
		Dur: 1500 * time.Nanosecond, A: 5, B: 3,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, key := range []string{`"node":"w01"`, `"trace":"solve#3"`, `"epoch":5`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("wire form %s missing %s", b, key)
		}
	}
	var out Event
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !out.At.Equal(in.At) {
		t.Errorf("At drifted: %v vs %v", out.At, in.At)
	}
	in.At, out.At = time.Time{}, time.Time{}
	if out != in {
		t.Errorf("round trip changed the event: %+v vs %+v", out, in)
	}

	// Unset correlation fields stay off the wire entirely.
	plain := Event{Seq: 1, At: at, Kind: KindChunk, Worker: 2, A: 0, B: 8}
	pb, err := json.Marshal(plain)
	if err != nil {
		t.Fatalf("marshal plain: %v", err)
	}
	for _, key := range []string{`"node"`, `"trace"`, `"epoch"`} {
		if strings.Contains(string(pb), key) {
			t.Errorf("plain event leaked %s onto the wire: %s", key, pb)
		}
	}
	var pout Event
	if err := json.Unmarshal(pb, &pout); err != nil {
		t.Fatalf("unmarshal plain: %v", err)
	}
	if pout.Node != "" || pout.Trace != "" || pout.Epoch != 0 {
		t.Errorf("plain event grew correlation fields: %+v", pout)
	}
}
