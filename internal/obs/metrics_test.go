package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs.")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if again := r.Counter("jobs_total", "Jobs."); again != c {
		t.Error("re-registering a counter did not return the original")
	}

	g := r.Gauge("queue_depth", "Depth.")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g, want 1.5", g.Value())
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("registering gauge over counter did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("grant_procs", "Grant sizes.", []float64{1, 2, 4, 8})
	for _, v := range []float64{1, 1, 2, 3, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Errorf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 112 {
		t.Errorf("sum = %g, want 112", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"# TYPE grant_procs histogram",
		`grant_procs_bucket{le="1"} 2`, // 1, 1 (le is inclusive)
		`grant_procs_bucket{le="2"} 3`, // + 2
		`grant_procs_bucket{le="4"} 4`, // + 3
		`grant_procs_bucket{le="8"} 5`, // + 5
		`grant_procs_bucket{le="+Inf"} 6`,
		"grant_procs_sum 112",
		"grant_procs_count 6",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("output missing %q:\n%s", line, out)
		}
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sched_submitted_total", "Jobs admitted.")
	c.Add(7)
	g := r.Gauge("sched_free_procs", "Idle processors.")
	g.Set(3)
	r.GaugeFunc("sched_queue_depth", "Queued jobs.", func() float64 { return 2 })
	r.Counter(`jobs_total{state="done"}`, "Jobs by terminal state.").Add(4)
	r.Counter(`jobs_total{state="failed"}`, "Jobs by terminal state.").Add(1)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP sched_submitted_total Jobs admitted.
# TYPE sched_submitted_total counter
sched_submitted_total 7
# HELP sched_free_procs Idle processors.
# TYPE sched_free_procs gauge
sched_free_procs 3
# HELP sched_queue_depth Queued jobs.
# TYPE sched_queue_depth gauge
sched_queue_depth 2
# HELP jobs_total Jobs by terminal state.
# TYPE jobs_total counter
jobs_total{state="done"} 4
jobs_total{state="failed"} 1
`
	if buf.String() != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestGaugeFuncReplace(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("v", "", func() float64 { return 1 })
	r.GaugeFunc("v", "", func() float64 { return 2 })
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "v 2\n") {
		t.Errorf("replaced gauge func not used:\n%s", buf.String())
	}
}

func TestFormatFloatInf(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatFloat(+Inf) = %q", got)
	}
}

func TestMetricsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 10, 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 200))
				if j%250 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %g, want 8000", g.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}
