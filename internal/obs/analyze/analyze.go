// Package analyze is the trace-analysis and diagnosis engine of the
// observability stack: it consumes obs.Event streams (live from a
// Tracer, or read back from JSONL exports) and produces the paper's
// Tables-and-Figures reasoning on measured data —
//
//   - a fork-join critical-path reconstruction per parallel region
//     (work, span, critical path, achieved and achievable speedup),
//   - an Amdahl attribution splitting each loop's wall time into
//     parallel work, serial residue, measured barrier waits, load
//     imbalance and synchronization overhead (the three loss buckets
//     of §3: "too much time spent executing serial code", the Table 1
//     synchronization budget, and the stair-step imbalance of
//     Table 3),
//   - per-loop synchronization-budget verdicts against the Table 1
//     minimum-work criterion at the measured work per sync event (the
//     quantity Table 2 tabulates),
//   - measured stair-step occupancy: speedup per (units, team size)
//     pair with plateau detection, directly comparable to Table 3 and
//     Figure 1, and
//   - a plateau audit of scheduler grants against model.PlateauProcs.
//
// The attribution is exact by construction: for every loop, the five
// components sum to the loop's wall time (serial residue is defined as
// the remainder outside parallel regions, and the in-region remainder
// is split between model-bounded sync overhead and imbalance), so a
// report can be checked for self-consistency to floating-point
// rounding.
//
// Reports are plain JSON-serializable values: cmd/f3dd serves them at
// GET /analyze, cmd/tracetool renders them offline, and Diff compares
// two of them for regressions.
package analyze

import (
	"math"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/profile"
)

// Schema versions the Report JSON shape (bumped on incompatible
// change); tracetool diff refuses mismatched schemas.
const Schema = 1

// Config tunes the analysis. The zero value is usable: Defaults fills
// in a 1 GHz clock (1 cycle/ns), the paper's cheapest Table 1
// synchronization cost (10k cycles) and its 1% overhead budget.
type Config struct {
	// ClockGHz converts measured nanoseconds to processor cycles
	// (cycles = ns × ClockGHz). <= 0 defaults to 1.
	ClockGHz float64 `json:"clock_ghz"`
	// SyncCostCycles is the assumed cost of one synchronization event
	// in cycles — a Table 1 column. <= 0 defaults to 10_000.
	SyncCostCycles float64 `json:"sync_cost_cycles"`
	// Budget is the tolerable synchronization fraction of runtime.
	// <= 0 defaults to model.OverheadBudget (1%).
	Budget float64 `json:"budget"`
	// PlateauTolPct is the relative tolerance (percent) within which
	// two team sizes' measured speedups count as the same stair-step
	// plateau. <= 0 defaults to 1.
	PlateauTolPct float64 `json:"plateau_tol_pct"`
}

// Defaults returns c with zero fields replaced by defaults.
func (c Config) Defaults() Config {
	if c.ClockGHz <= 0 {
		c.ClockGHz = 1
	}
	if c.SyncCostCycles <= 0 {
		c.SyncCostCycles = 10_000
	}
	if c.Budget <= 0 {
		c.Budget = model.OverheadBudget
	}
	if c.PlateauTolPct <= 0 {
		c.PlateauTolPct = 1
	}
	return c
}

// Attribution splits wall time into the paper's loss buckets. All
// components are expressed in per-processor wall nanoseconds and sum
// to WallNs exactly (up to integer rounding, reported as ResidualNs):
//
//	WallNs = ParallelNs + SerialNs + BarrierNs + ImbalanceNs + SyncNs
type Attribution struct {
	// WallNs is the attributed wall time.
	WallNs int64 `json:"wall_ns"`
	// ParallelNs is perfectly parallel work: Σ region work/P.
	ParallelNs int64 `json:"parallel_ns"`
	// SerialNs is the serial residue — wall time outside any parallel
	// region (Amdahl's serial fraction).
	SerialNs int64 `json:"serial_ns"`
	// BarrierNs is measured barrier-wait time, Σ waits/P — the load
	// imbalance the workers actually sat out at mid-region barriers.
	BarrierNs int64 `json:"barrier_ns"`
	// ImbalanceNs is join-side load imbalance: in-region time not
	// covered by work, barrier waits or the sync-cost model — idle
	// processors waiting for the critical-path worker (the stair-step
	// loss of Table 3).
	ImbalanceNs int64 `json:"imbalance_ns"`
	// SyncNs is modeled synchronization overhead: the in-region
	// remainder capped at SyncEvents × SyncCostCycles / ClockGHz / P.
	SyncNs int64 `json:"sync_ns"`
	// ResidualNs is WallNs minus the five components — integer
	// rounding only; a self-consistency witness.
	ResidualNs int64 `json:"residual_ns"`

	// Fractions of WallNs, for direct Amdahl reasoning.
	ParallelFrac  float64 `json:"parallel_frac"`
	SerialFrac    float64 `json:"serial_frac"`
	BarrierFrac   float64 `json:"barrier_frac"`
	ImbalanceFrac float64 `json:"imbalance_frac"`
	SyncFrac      float64 `json:"sync_frac"`
}

// finish computes fractions and the residual from the ns components.
func (a *Attribution) finish() {
	a.ResidualNs = a.WallNs - a.ParallelNs - a.SerialNs - a.BarrierNs - a.ImbalanceNs - a.SyncNs
	if a.WallNs > 0 {
		w := float64(a.WallNs)
		a.ParallelFrac = float64(a.ParallelNs) / w
		a.SerialFrac = float64(a.SerialNs) / w
		a.BarrierFrac = float64(a.BarrierNs) / w
		a.ImbalanceFrac = float64(a.ImbalanceNs) / w
		a.SyncFrac = float64(a.SyncNs) / w
	}
}

// Budget is the Table 1 synchronization-budget verdict for one loop.
type Budget struct {
	// WorkPerSyncCycles is the measured work per synchronization
	// event, in cycles — the quantity Table 2 tabulates.
	WorkPerSyncCycles float64 `json:"work_per_sync_cycles"`
	// MinWorkCycles is the Table 1 threshold at the loop's team size.
	MinWorkCycles float64 `json:"min_work_cycles"`
	// Ratio is WorkPerSyncCycles / MinWorkCycles; >= 1 passes.
	Ratio float64 `json:"ratio"`
	// OverheadFrac estimates the fraction of region wall time paid to
	// synchronization: syncCost / (syncCost + workPerSync/P).
	OverheadFrac float64 `json:"overhead_frac"`
	// Pass reports whether the loop clears the Table 1 criterion.
	Pass bool `json:"pass"`
}

// Loop aggregates every parallel region sharing one trace label
// (normally one job's dominant loop).
type Loop struct {
	Name string `json:"name"`
	// Regions is the number of complete fork-join regions analyzed;
	// IncompleteRegions counts regions lost to trace truncation.
	Regions           int `json:"regions"`
	IncompleteRegions int `json:"incomplete_regions,omitempty"`
	// Barriers is the number of mid-region barrier crossings;
	// SyncEvents = Regions + Barriers, the paper's synchronization
	// count.
	Barriers   int `json:"barriers"`
	SyncEvents int `json:"sync_events"`
	// Workers is the largest team size observed; Units the largest
	// per-region unit count (Σ chunk index ranges); Chunks the total
	// chunk spans.
	Workers int `json:"workers"`
	Units   int `json:"units"`
	Chunks  int `json:"chunks"`

	// WorkNs is Σ chunk durations (worker-time); SpanNs Σ region
	// durations; CriticalNs Σ per-region critical paths (the longest
	// chain of chunk work through the region's barrier phases);
	// BarrierWaitNs Σ barrier waits (worker-time).
	WorkNs        int64 `json:"work_ns"`
	SpanNs        int64 `json:"span_ns"`
	CriticalNs    int64 `json:"critical_ns"`
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
	// WallNs spans the loop's first event to its last; SerialNs is
	// the part outside any region.
	WallNs   int64 `json:"wall_ns"`
	SerialNs int64 `json:"serial_ns"`

	// AchievedSpeedup is work/span — the parallelism actually
	// realized. AchievableSpeedup is work/critical-path — the best
	// this loop's dependence structure allows on any processor count
	// (the stair-step ceiling).
	AchievedSpeedup   float64 `json:"achieved_speedup"`
	AchievableSpeedup float64 `json:"achievable_speedup"`

	Attribution Attribution `json:"attribution"`
	Budget      Budget      `json:"budget"`
}

// Occupancy is the measured stair-step cell for one (units, team
// size) pair, comparable to a Table 3 row or a Figure 1 point.
type Occupancy struct {
	Units   int `json:"units"`
	Workers int `json:"workers"`
	Regions int `json:"regions"`
	// MeasuredSpeedup is Σwork / Σcritical-path over the cell's
	// regions; PredictedSpeedup is model.StairStepSpeedup.
	MeasuredSpeedup  float64 `json:"measured_speedup"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
	// ErrPct is 100·(measured−predicted)/predicted.
	ErrPct float64 `json:"err_pct"`
}

// Plateau is a run of observed team sizes sharing one measured
// speedup step — the analyzer's reconstruction of a Table 3 row.
type Plateau struct {
	Units            int     `json:"units"`
	ProcsLo          int     `json:"procs_lo"`
	ProcsHi          int     `json:"procs_hi"`
	MeasuredSpeedup  float64 `json:"measured_speedup"`
	PredictedSpeedup float64 `json:"predicted_speedup"`
}

// GrantBucket is one cell of the scheduler grant-size histogram,
// audited against the stair-step plateaus of the job's requested
// parallelism.
type GrantBucket struct {
	Name      string `json:"name"`
	Requested int    `json:"requested"`
	Procs     int    `json:"procs"`
	Count     int    `json:"count"`
	// OnPlateau reports whether Procs sits at the left edge of a
	// stair-step plateau of Requested — the only efficient grants.
	OnPlateau bool `json:"on_plateau"`
	// PredictedSpeedup is the stair-step speedup at this grant.
	PredictedSpeedup float64 `json:"predicted_speedup"`
}

// Report is the full diagnosis.
type Report struct {
	Schema int    `json:"schema"`
	Label  string `json:"label,omitempty"`
	Config Config `json:"config"`

	// Events analyzed; Truncated and DroppedEvents flag reports built
	// from a trace that lost events to ring wraparound (attribution
	// from such traces undercounts whatever was overwritten).
	Events        int   `json:"events"`
	Truncated     bool  `json:"truncated"`
	DroppedEvents int64 `json:"dropped_events,omitempty"`

	// WallNs is the elapsed span of the whole trace (first event
	// start to last event end).
	WallNs int64 `json:"wall_ns"`

	// Totals sums the per-loop attributions. Its WallNs is the sum of
	// per-loop walls, which exceeds the report WallNs when traced
	// jobs overlap in time.
	Totals Attribution `json:"totals"`

	// Loops, most work first.
	Loops []Loop `json:"loops"`

	// Occupancy cells sorted by (units, workers), and the plateaus
	// detected from them.
	Occupancy []Occupancy `json:"occupancy,omitempty"`
	Plateaus  []Plateau   `json:"plateaus,omitempty"`

	// Grants audits scheduler grant/resize events;
	// PlateauEfficiency is the fraction of them on a plateau edge.
	Grants            []GrantBucket `json:"grants,omitempty"`
	PlateauEfficiency float64       `json:"plateau_efficiency"`

	// Ranked is the prof-style ranked loop profile (region, barrier
	// and chunk charges) built with internal/profile — the paper's §4
	// ranked-loop view of the same trace.
	Ranked []profile.Entry `json:"ranked,omitempty"`
}

// span is one chunk or barrier occurrence inside a region.
type span struct {
	worker  int
	at      time.Time // event timestamp (span end)
	dur     time.Duration
	lo, hi  int64
	barrier bool
}

// loopState accumulates one label's regions while scanning the
// stream.
type loopState struct {
	loop    Loop
	pending []span
	open    bool // region begin seen, end not yet

	haveBounds   bool
	first        time.Time // earliest event start
	last         time.Time // latest event end
	parallelNs   float64
	barrierNs    float64
	imbalanceNs  float64
	syncNs       float64
	sumSpanNs    float64
	workPerCycle float64
}

// occKey identifies an occupancy cell.
type occKey struct{ units, workers int }

type occAgg struct {
	regions  int
	workNs   float64
	criticNs float64
}

type grantKey struct {
	name      string
	requested int
	procs     int
}

// Analyze builds a Report from an event stream (oldest first, as
// returned by Tracer.Events/EventsSince or obs.ReadJSONL).
func Analyze(events []obs.Event, cfg Config) *Report {
	cfg = cfg.Defaults()
	r := &Report{Schema: Schema, Config: cfg, Events: len(events)}

	loops := make(map[string]*loopState)
	order := []string{}
	occ := make(map[occKey]*occAgg)
	grants := make(map[grantKey]int)
	requested := make(map[string]int) // latest known M per label

	state := func(name string) *loopState {
		ls := loops[name]
		if ls == nil {
			ls = &loopState{loop: Loop{Name: name}}
			loops[name] = ls
			order = append(order, name)
		}
		return ls
	}

	var traceStart, traceEnd time.Time
	haveTime := false
	bound := func(start, end time.Time) {
		if !haveTime {
			traceStart, traceEnd, haveTime = start, end, true
			return
		}
		if start.Before(traceStart) {
			traceStart = start
		}
		if end.After(traceEnd) {
			traceEnd = end
		}
	}

	for _, e := range events {
		switch e.Kind {
		case obs.KindTraceDropped:
			r.Truncated = true
			r.DroppedEvents += e.A
			continue
		case obs.KindGrant:
			requested[e.Name] = int(e.B)
			grants[grantKey{e.Name, int(e.B), int(e.A)}]++
			bound(e.At, e.At)
			continue
		case obs.KindResize:
			m := int(e.C)
			if m <= 0 {
				m = requested[e.Name]
			} else {
				requested[e.Name] = m
			}
			if m > 0 {
				grants[grantKey{e.Name, m, int(e.B)}]++
			}
			bound(e.At, e.At)
			continue
		case obs.KindPreempt:
			// A shrink *request*; the applied resize follows at the
			// victim's checkpoint. Only bounds time.
			bound(e.At, e.At)
			continue
		}

		ls := state(e.Name)
		start := e.At.Add(-e.Dur)
		bound(start, e.At)
		if !ls.haveBounds {
			ls.first, ls.last, ls.haveBounds = start, e.At, true
		} else {
			if start.Before(ls.first) {
				ls.first = start
			}
			if e.At.After(ls.last) {
				ls.last = e.At
			}
		}

		switch e.Kind {
		case obs.KindRegionBegin:
			if ls.open || len(ls.pending) > 0 {
				// The previous region's end was lost (truncation or a
				// panic mid-region): its partial spans cannot be
				// attributed.
				ls.loop.IncompleteRegions++
				ls.pending = ls.pending[:0]
			}
			ls.open = true
		case obs.KindChunk:
			ls.pending = append(ls.pending, span{worker: e.Worker, at: e.At, dur: e.Dur, lo: e.A, hi: e.B})
		case obs.KindBarrier:
			ls.pending = append(ls.pending, span{worker: e.Worker, at: e.At, dur: e.Dur, barrier: true})
		case obs.KindRegionEnd:
			closeRegion(ls, e, cfg, occ)
		}
	}

	// Regions still open at stream end were cut off by the capture
	// window.
	for _, ls := range loops {
		if ls.open || len(ls.pending) > 0 {
			ls.loop.IncompleteRegions++
		}
	}

	// Finalize loops: wall, serial residue, attribution, budget.
	for _, name := range order {
		ls := loops[name]
		l := &ls.loop
		if l.Regions == 0 && l.IncompleteRegions == 0 {
			continue
		}
		if ls.haveBounds {
			l.WallNs = ls.last.Sub(ls.first).Nanoseconds()
		}
		serial := float64(l.WallNs) - ls.sumSpanNs
		if serial < 0 {
			serial = 0
		}
		l.SerialNs = int64(math.Round(serial))
		if l.SpanNs > 0 {
			l.AchievedSpeedup = float64(l.WorkNs) / float64(l.SpanNs)
		}
		if l.CriticalNs > 0 {
			l.AchievableSpeedup = float64(l.WorkNs) / float64(l.CriticalNs)
		}
		l.Attribution = Attribution{
			WallNs:      l.WallNs,
			ParallelNs:  int64(math.Round(ls.parallelNs)),
			SerialNs:    l.SerialNs,
			BarrierNs:   int64(math.Round(ls.barrierNs)),
			ImbalanceNs: int64(math.Round(ls.imbalanceNs)),
			SyncNs:      int64(math.Round(ls.syncNs)),
		}
		l.Attribution.finish()
		l.Budget = budgetVerdict(l, cfg)
		r.Loops = append(r.Loops, *l)

		r.Totals.WallNs += l.Attribution.WallNs
		r.Totals.ParallelNs += l.Attribution.ParallelNs
		r.Totals.SerialNs += l.Attribution.SerialNs
		r.Totals.BarrierNs += l.Attribution.BarrierNs
		r.Totals.ImbalanceNs += l.Attribution.ImbalanceNs
		r.Totals.SyncNs += l.Attribution.SyncNs
	}
	r.Totals.finish()
	sort.SliceStable(r.Loops, func(i, j int) bool { return r.Loops[i].WorkNs > r.Loops[j].WorkNs })

	if haveTime {
		r.WallNs = traceEnd.Sub(traceStart).Nanoseconds()
	}

	// Occupancy cells and plateau detection.
	keys := make([]occKey, 0, len(occ))
	for k := range occ {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].units != keys[j].units {
			return keys[i].units < keys[j].units
		}
		return keys[i].workers < keys[j].workers
	})
	for _, k := range keys {
		a := occ[k]
		cell := Occupancy{Units: k.units, Workers: k.workers, Regions: a.regions}
		if a.criticNs > 0 {
			cell.MeasuredSpeedup = a.workNs / a.criticNs
		}
		if k.units >= 1 && k.workers >= 1 {
			cell.PredictedSpeedup = model.StairStepSpeedup(k.units, k.workers)
			if cell.PredictedSpeedup > 0 {
				cell.ErrPct = 100 * (cell.MeasuredSpeedup - cell.PredictedSpeedup) / cell.PredictedSpeedup
			}
		}
		r.Occupancy = append(r.Occupancy, cell)
	}
	r.Plateaus = detectPlateaus(r.Occupancy, cfg.PlateauTolPct)

	// Grant audit.
	gkeys := make([]grantKey, 0, len(grants))
	for k := range grants {
		gkeys = append(gkeys, k)
	}
	sort.Slice(gkeys, func(i, j int) bool {
		a, b := gkeys[i], gkeys[j]
		if a.name != b.name {
			return a.name < b.name
		}
		if a.requested != b.requested {
			return a.requested < b.requested
		}
		return a.procs < b.procs
	})
	total, onPlateau := 0, 0
	for _, k := range gkeys {
		count := grants[k]
		b := GrantBucket{Name: k.name, Requested: k.requested, Procs: k.procs, Count: count}
		if k.requested >= 1 && k.procs >= 1 {
			b.PredictedSpeedup = model.StairStepSpeedup(k.requested, k.procs)
			for _, p := range model.PlateauProcs(k.requested, k.requested) {
				if p == k.procs {
					b.OnPlateau = true
					break
				}
			}
		}
		total += count
		if b.OnPlateau {
			onPlateau += count
		}
		r.Grants = append(r.Grants, b)
	}
	if total > 0 {
		r.PlateauEfficiency = float64(onPlateau) / float64(total)
	}

	r.Ranked = profile.FromTrace(events).Entries()
	return r
}

// closeRegion finalizes one fork-join region from its end event and
// the pending chunk/barrier spans, charging the loop aggregates and
// the occupancy cell.
func closeRegion(ls *loopState, end obs.Event, cfg Config, occ map[occKey]*occAgg) {
	l := &ls.loop
	l.Regions++
	ls.open = false
	spans := ls.pending
	ls.pending = nil

	workers := int(end.A)
	if workers < 1 {
		workers = 1
	}
	if workers > l.Workers {
		l.Workers = workers
	}
	spanNs := float64(end.Dur.Nanoseconds())
	l.SpanNs += end.Dur.Nanoseconds()
	ls.sumSpanNs += spanNs

	// Per-worker phase split: a worker's barrier crossings partition
	// its chunks into phases; the critical path is the sum over
	// phases of the slowest worker's busy time in that phase.
	var workNs, barrierNs float64
	units := int64(0)
	chunks := 0
	barriersPerWorker := make(map[int]int)
	busy := make(map[int][]float64) // worker -> per-phase busy ns
	sort.SliceStable(spans, func(i, j int) bool {
		if !spans[i].at.Equal(spans[j].at) {
			return spans[i].at.Before(spans[j].at)
		}
		// A chunk ending exactly when a barrier completes belongs
		// before the crossing.
		return !spans[i].barrier && spans[j].barrier
	})
	phase := make(map[int]int)
	maxPhase := 0
	for _, s := range spans {
		if s.barrier {
			barrierNs += float64(s.dur.Nanoseconds())
			barriersPerWorker[s.worker]++
			phase[s.worker]++
			if phase[s.worker] > maxPhase {
				maxPhase = phase[s.worker]
			}
			continue
		}
		chunks++
		units += s.hi - s.lo
		workNs += float64(s.dur.Nanoseconds())
		p := phase[s.worker]
		if p > maxPhase {
			maxPhase = p
		}
		b := busy[s.worker]
		for len(b) <= p {
			b = append(b, 0)
		}
		b[p] += float64(s.dur.Nanoseconds())
		busy[s.worker] = b
	}

	crossings := 0
	for _, n := range barriersPerWorker {
		if n > crossings {
			crossings = n
		}
	}
	l.Barriers += crossings
	l.SyncEvents = l.Regions + l.Barriers
	l.Chunks += chunks
	if int(units) > l.Units {
		l.Units = int(units)
	}

	var critical float64
	if chunks == 0 {
		// No chunk attribution: the region is opaque; its whole span
		// is the critical path.
		critical = spanNs
	} else {
		for p := 0; p <= maxPhase; p++ {
			var m float64
			for _, b := range busy {
				if p < len(b) && b[p] > m {
					m = b[p]
				}
			}
			critical += m
		}
	}
	l.WorkNs += int64(math.Round(workNs))
	l.CriticalNs += int64(math.Round(critical))
	l.BarrierWaitNs += int64(math.Round(barrierNs))

	// Attribution: per-processor shares. The in-region remainder
	// beyond work and barrier waits is split between modeled sync
	// overhead (capped at syncEvents × syncCost) and join-side
	// imbalance.
	p := float64(workers)
	parallel := workNs / p
	barrier := barrierNs / p
	remainder := spanNs - parallel - barrier
	if remainder < 0 {
		remainder = 0
	}
	syncEvents := float64(1 + crossings)
	syncCap := syncEvents * cfg.SyncCostCycles / cfg.ClockGHz / p
	syncNs := math.Min(remainder, syncCap)
	ls.parallelNs += parallel
	ls.barrierNs += barrier
	ls.syncNs += syncNs
	ls.imbalanceNs += remainder - syncNs

	if chunks > 0 && units > 0 {
		k := occKey{units: int(units), workers: workers}
		a := occ[k]
		if a == nil {
			a = &occAgg{}
			occ[k] = a
		}
		a.regions++
		a.workNs += workNs
		a.criticNs += critical
	}
}

// budgetVerdict applies the Table 1 criterion to a finished loop.
func budgetVerdict(l *Loop, cfg Config) Budget {
	b := Budget{}
	if l.SyncEvents == 0 {
		b.Pass = true
		return b
	}
	workCycles := float64(l.WorkNs) * cfg.ClockGHz
	b.WorkPerSyncCycles = workCycles / float64(l.SyncEvents)
	procs := l.Workers
	if procs < 1 {
		procs = 1
	}
	b.MinWorkCycles = model.MinWorkPerLoop(procs, cfg.SyncCostCycles, cfg.Budget)
	if b.MinWorkCycles > 0 {
		b.Ratio = b.WorkPerSyncCycles / b.MinWorkCycles
	}
	perProc := b.WorkPerSyncCycles / float64(procs)
	b.OverheadFrac = cfg.SyncCostCycles / (cfg.SyncCostCycles + perProc)
	b.Pass = b.WorkPerSyncCycles >= b.MinWorkCycles
	return b
}

// detectPlateaus groups occupancy cells with equal units and
// measured speedups within tolPct into stair-step plateaus.
func detectPlateaus(cells []Occupancy, tolPct float64) []Plateau {
	var out []Plateau
	var cur *Plateau
	var curUnits int
	for _, c := range cells {
		if c.MeasuredSpeedup <= 0 {
			continue
		}
		if cur != nil && c.Units == curUnits &&
			math.Abs(c.MeasuredSpeedup-cur.MeasuredSpeedup) <= cur.MeasuredSpeedup*tolPct/100 {
			cur.ProcsHi = c.Workers
			continue
		}
		if cur != nil {
			out = append(out, *cur)
		}
		curUnits = c.Units
		cur = &Plateau{
			Units:            c.Units,
			ProcsLo:          c.Workers,
			ProcsHi:          c.Workers,
			MeasuredSpeedup:  c.MeasuredSpeedup,
			PredictedSpeedup: c.PredictedSpeedup,
		}
	}
	if cur != nil {
		out = append(out, *cur)
	}
	return out
}
