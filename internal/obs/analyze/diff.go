package analyze

import (
	"fmt"
	"math"
)

// Severity classifies a Delta.
type Severity string

const (
	// SevRegression: the new report is worse beyond tolerance.
	SevRegression Severity = "regression"
	// SevImprovement: the new report is better beyond tolerance.
	SevImprovement Severity = "improvement"
	// SevInfo: a structural note (loop appeared/disappeared, trace
	// truncated) that is neither clearly better nor worse.
	SevInfo Severity = "info"
)

// Delta is one difference between two reports.
type Delta struct {
	Severity Severity `json:"severity"`
	// Loop is empty for report-level deltas.
	Loop  string  `json:"loop,omitempty"`
	Field string  `json:"field"`
	Old   float64 `json:"old"`
	New   float64 `json:"new"`
	Note  string  `json:"note,omitempty"`
}

// String renders the delta for terminal output.
func (d Delta) String() string {
	where := d.Field
	if d.Loop != "" {
		where = d.Loop + "." + d.Field
	}
	if d.Note != "" {
		return fmt.Sprintf("%-11s %s: %s", d.Severity, where, d.Note)
	}
	return fmt.Sprintf("%-11s %s: %.4g -> %.4g", d.Severity, where, d.Old, d.New)
}

// Diff compares two reports loop by loop and returns the differences
// that exceed tolPct (a relative tolerance in percent for speedups,
// and an absolute tolerance in percentage points for wall-time
// fractions). An empty result means the new report is within
// tolerance of the old everywhere — the contract tracetool diff's
// exit status reports.
func Diff(oldR, newR *Report, tolPct float64) []Delta {
	if tolPct <= 0 {
		tolPct = 1
	}
	var out []Delta

	if oldR.Schema != newR.Schema {
		out = append(out, Delta{Severity: SevInfo, Field: "schema",
			Old: float64(oldR.Schema), New: float64(newR.Schema),
			Note: "report schemas differ; field comparisons may be unreliable"})
	}
	if newR.Truncated && !oldR.Truncated {
		out = append(out, Delta{Severity: SevInfo, Field: "truncated",
			New:  float64(newR.DroppedEvents),
			Note: fmt.Sprintf("new trace lost %d events to ring wraparound; attribution undercounts", newR.DroppedEvents)})
	}

	oldLoops := map[string]Loop{}
	for _, l := range oldR.Loops {
		oldLoops[l.Name] = l
	}
	seen := map[string]bool{}
	for _, nl := range newR.Loops {
		seen[nl.Name] = true
		ol, ok := oldLoops[nl.Name]
		if !ok {
			out = append(out, Delta{Severity: SevInfo, Loop: nl.Name, Field: "present",
				New: 1, Note: "loop only in new report"})
			continue
		}
		out = append(out, diffLoop(ol, nl, tolPct)...)
	}
	for _, ol := range oldR.Loops {
		if !seen[ol.Name] {
			out = append(out, Delta{Severity: SevInfo, Loop: ol.Name, Field: "present",
				Old: 1, Note: "loop only in old report"})
		}
	}

	// Plateau efficiency of scheduler grants: lower is worse.
	if oldR.Grants != nil || newR.Grants != nil {
		if d := relDelta(oldR.PlateauEfficiency, newR.PlateauEfficiency); math.Abs(d) > tolPct {
			sev := SevRegression
			if d > 0 {
				sev = SevImprovement
			}
			out = append(out, Delta{Severity: sev, Field: "plateau_efficiency",
				Old: oldR.PlateauEfficiency, New: newR.PlateauEfficiency})
		}
	}
	return out
}

// diffLoop compares one loop across reports.
func diffLoop(ol, nl Loop, tolPct float64) []Delta {
	var out []Delta
	speedup := func(field string, o, n float64) {
		d := relDelta(o, n)
		if math.Abs(d) <= tolPct {
			return
		}
		sev := SevRegression
		if d > 0 {
			sev = SevImprovement
		}
		out = append(out, Delta{Severity: sev, Loop: nl.Name, Field: field, Old: o, New: n})
	}
	speedup("achieved_speedup", ol.AchievedSpeedup, nl.AchievedSpeedup)
	speedup("achievable_speedup", ol.AchievableSpeedup, nl.AchievableSpeedup)

	// Loss fractions: an increase beyond tolPct percentage points is a
	// regression (more wall time lost to that bucket).
	frac := func(field string, o, n float64) {
		d := (n - o) * 100
		if math.Abs(d) <= tolPct {
			return
		}
		sev := SevRegression
		if d < 0 {
			sev = SevImprovement
		}
		out = append(out, Delta{Severity: sev, Loop: nl.Name, Field: field, Old: o, New: n})
	}
	frac("serial_frac", ol.Attribution.SerialFrac, nl.Attribution.SerialFrac)
	frac("barrier_frac", ol.Attribution.BarrierFrac, nl.Attribution.BarrierFrac)
	frac("imbalance_frac", ol.Attribution.ImbalanceFrac, nl.Attribution.ImbalanceFrac)
	frac("sync_frac", ol.Attribution.SyncFrac, nl.Attribution.SyncFrac)

	if ol.Budget.Pass && !nl.Budget.Pass {
		out = append(out, Delta{Severity: SevRegression, Loop: nl.Name, Field: "budget.pass",
			Old: 1, New: 0,
			Note: fmt.Sprintf("loop fell below the Table 1 sync budget (ratio %.2f -> %.2f)",
				ol.Budget.Ratio, nl.Budget.Ratio)})
	} else if !ol.Budget.Pass && nl.Budget.Pass {
		out = append(out, Delta{Severity: SevImprovement, Loop: nl.Name, Field: "budget.pass",
			Old: 0, New: 1})
	}
	return out
}

// relDelta returns the relative change from o to n in percent
// (positive = n larger).
func relDelta(o, n float64) float64 {
	if o == 0 {
		if n == 0 {
			return 0
		}
		return math.Inf(sign(n))
	}
	return 100 * (n - o) / math.Abs(o)
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
