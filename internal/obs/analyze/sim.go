package analyze

import (
	"time"

	"repro/internal/obs"
	"repro/internal/parloop"
)

// StairStepTrace synthesizes an idealized trace of one loop with the
// given number of parallelizable units executed once per team size in
// teamSizes: every unit costs exactly unitDur of work, chunks follow
// the parloop Static partition, and serialDur of untraced serial time
// separates consecutive regions. Each region is preceded by a grant
// event (granted = team size, requested = units), so the trace also
// exercises the grant audit.
//
// Because work is uniform, the measured speedup of each region is
// exactly the paper's stair-step model: units/ceil(units/P). Feeding
// the result to Analyze must reproduce Table 3 — that is the
// analyzer's acceptance test, and the deterministic fixture the
// benchmark suite gates on.
func StairStepTrace(name string, units int, teamSizes []int, unitDur, serialDur time.Duration, start time.Time) []obs.Event {
	var events []obs.Event
	seq := uint64(1)
	emit := func(e obs.Event) {
		e.Seq = seq
		seq++
		events = append(events, e)
	}

	now := start
	for _, p := range teamSizes {
		if p < 1 {
			p = 1
		}
		emit(obs.Event{At: now, Kind: obs.KindGrant, Name: name, Worker: -1,
			A: int64(p), B: int64(units)})
		emit(obs.Event{At: now, Kind: obs.KindRegionBegin, Name: name, Worker: -1,
			A: int64(p)})
		var span time.Duration
		for w := 0; w < p; w++ {
			lo, hi := parloop.StaticRange(units, p, w)
			if lo >= hi {
				continue
			}
			dur := time.Duration(hi-lo) * unitDur
			if dur > span {
				span = dur
			}
			emit(obs.Event{At: now.Add(dur), Kind: obs.KindChunk, Name: name,
				Worker: w, Dur: dur, A: int64(lo), B: int64(hi)})
		}
		now = now.Add(span)
		emit(obs.Event{At: now, Kind: obs.KindRegionEnd, Name: name, Worker: -1,
			Dur: span, A: int64(p)})
		now = now.Add(serialDur)
	}
	return events
}
