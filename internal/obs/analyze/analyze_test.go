package analyze

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// base is the deterministic trace epoch used by all tests.
var base = time.Date(2001, 9, 1, 0, 0, 0, 0, time.UTC)

// seqTrace assigns ascending Seq values to hand-built events.
func seqTrace(events []obs.Event) []obs.Event {
	for i := range events {
		events[i].Seq = uint64(i + 1)
	}
	return events
}

// TestStairStepOccupancyMatchesTable3 is the acceptance criterion: on
// an idealized 15-unit workload swept over team sizes 1..15, measured
// occupancy must reproduce the paper's Table 3 within 1% — in
// particular speedup 5.0 across P=5–7 and 7.5 across P=8–14 — and the
// detected plateaus must be exactly the printed rows
// (1, 2, 3, 4, 5–7, 8–14, 15).
func TestStairStepOccupancyMatchesTable3(t *testing.T) {
	sizes := make([]int, 15)
	for i := range sizes {
		sizes[i] = i + 1
	}
	events := StairStepTrace("zone", 15, sizes, time.Millisecond, 100*time.Microsecond, base)
	r := Analyze(events, Config{})

	if len(r.Occupancy) != 15 {
		t.Fatalf("occupancy cells = %d, want 15", len(r.Occupancy))
	}
	for _, c := range r.Occupancy {
		if c.Units != 15 {
			t.Errorf("cell units = %d, want 15", c.Units)
		}
		want := model.StairStepSpeedup(15, c.Workers)
		if c.PredictedSpeedup != want {
			t.Errorf("P=%d predicted = %v, want %v", c.Workers, c.PredictedSpeedup, want)
		}
		if err := math.Abs(c.MeasuredSpeedup-want) / want; err > 0.01 {
			t.Errorf("P=%d measured speedup %v vs predicted %v: err %.2f%% > 1%%",
				c.Workers, c.MeasuredSpeedup, want, 100*err)
		}
		if c.Workers >= 5 && c.Workers <= 7 && math.Abs(c.MeasuredSpeedup-5.0) > 0.05 {
			t.Errorf("P=%d measured speedup %v, want 5.0 within 1%%", c.Workers, c.MeasuredSpeedup)
		}
		if c.Workers >= 8 && c.Workers <= 14 && math.Abs(c.MeasuredSpeedup-7.5) > 0.075 {
			t.Errorf("P=%d measured speedup %v, want 7.5 within 1%%", c.Workers, c.MeasuredSpeedup)
		}
	}

	table := model.Table3()
	if len(r.Plateaus) != len(table) {
		t.Fatalf("plateaus = %d, want %d (Table 3 rows)", len(r.Plateaus), len(table))
	}
	for i, row := range table {
		p := r.Plateaus[i]
		if p.ProcsLo != row.ProcsLo || p.ProcsHi != row.ProcsHi {
			t.Errorf("plateau %d procs [%d,%d], want [%d,%d]", i, p.ProcsLo, p.ProcsHi, row.ProcsLo, row.ProcsHi)
		}
		if math.Abs(p.MeasuredSpeedup-row.Speedup) > row.Speedup*0.01 {
			t.Errorf("plateau %d speedup %v, want %v within 1%%", i, p.MeasuredSpeedup, row.Speedup)
		}
	}
}

// TestAttributionSumsToWall: on both idealized and barrier-heavy
// traces, the attribution components must sum to wall time within
// 0.5% (the acceptance bound; by construction the residual is integer
// rounding only).
func TestAttributionSumsToWall(t *testing.T) {
	events := StairStepTrace("zone", 15, []int{1, 3, 5, 8, 15}, time.Millisecond, 250*time.Microsecond, base)
	events = append(events, seqTrace(barrierRegionEvents("mix", base.Add(time.Second)))...)
	r := Analyze(events, Config{})

	if len(r.Loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(r.Loops))
	}
	for _, l := range r.Loops {
		a := l.Attribution
		sum := a.ParallelNs + a.SerialNs + a.BarrierNs + a.ImbalanceNs + a.SyncNs
		if a.WallNs == 0 {
			t.Fatalf("%s: zero wall", l.Name)
		}
		if err := math.Abs(float64(a.WallNs-sum)) / float64(a.WallNs); err > 0.005 {
			t.Errorf("%s: attribution sum %d vs wall %d: err %.3f%% > 0.5%%", l.Name, sum, a.WallNs, 100*err)
		}
		if a.ResidualNs != a.WallNs-sum {
			t.Errorf("%s: residual %d inconsistent with components", l.Name, a.ResidualNs)
		}
		fracs := a.ParallelFrac + a.SerialFrac + a.BarrierFrac + a.ImbalanceFrac + a.SyncFrac
		if math.Abs(fracs-1) > 0.005 {
			t.Errorf("%s: fractions sum to %v, want 1 within 0.5%%", l.Name, fracs)
		}
	}
}

// barrierRegionEvents hand-builds one two-worker region with a
// mid-region barrier and known timings:
//
//	phase 0: w0 works 40ns on [0,4), w1 works 20ns on [4,6)
//	barrier: w0 waits 0ns, w1 waits 20ns (both cross at t0+40)
//	phase 1: w0 works 20ns on [6,8), w1 works 60ns on [8,14)
//	region end at t0+100, span 100ns
//
// Critical path = max(40,20) + max(20,60) = 100ns; work = 140ns.
func barrierRegionEvents(name string, t0 time.Time) []obs.Event {
	ns := func(d int64) time.Duration { return time.Duration(d) }
	return []obs.Event{
		{At: t0, Kind: obs.KindRegionBegin, Name: name, Worker: -1, A: 2},
		{At: t0.Add(ns(40)), Kind: obs.KindChunk, Name: name, Worker: 0, Dur: ns(40), A: 0, B: 4},
		{At: t0.Add(ns(20)), Kind: obs.KindChunk, Name: name, Worker: 1, Dur: ns(20), A: 4, B: 6},
		{At: t0.Add(ns(40)), Kind: obs.KindBarrier, Name: name, Worker: 0, Dur: 0},
		{At: t0.Add(ns(40)), Kind: obs.KindBarrier, Name: name, Worker: 1, Dur: ns(20)},
		{At: t0.Add(ns(60)), Kind: obs.KindChunk, Name: name, Worker: 0, Dur: ns(20), A: 6, B: 8},
		{At: t0.Add(ns(100)), Kind: obs.KindChunk, Name: name, Worker: 1, Dur: ns(60), A: 8, B: 14},
		{At: t0.Add(ns(100)), Kind: obs.KindRegionEnd, Name: name, Worker: -1, Dur: ns(100), A: 2},
	}
}

// TestCriticalPathGolden checks the per-worker phase-split critical
// path and the exact attribution on the hand-built barrier region.
func TestCriticalPathGolden(t *testing.T) {
	events := seqTrace(barrierRegionEvents("r", base))
	// SyncCostCycles=4 at 1 GHz: the modeled sync cap is
	// 2 events × 4 cycles / 2 procs = 4ns, so the 20ns in-region
	// remainder splits into 4ns sync + 16ns imbalance.
	r := Analyze(events, Config{ClockGHz: 1, SyncCostCycles: 4})

	if len(r.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(r.Loops))
	}
	l := r.Loops[0]
	if l.Regions != 1 || l.Barriers != 1 || l.SyncEvents != 2 {
		t.Errorf("regions/barriers/sync = %d/%d/%d, want 1/1/2", l.Regions, l.Barriers, l.SyncEvents)
	}
	if l.Workers != 2 || l.Units != 14 || l.Chunks != 4 {
		t.Errorf("workers/units/chunks = %d/%d/%d, want 2/14/4", l.Workers, l.Units, l.Chunks)
	}
	if l.WorkNs != 140 || l.CriticalNs != 100 || l.SpanNs != 100 || l.BarrierWaitNs != 20 {
		t.Errorf("work/critical/span/barrier = %d/%d/%d/%d, want 140/100/100/20",
			l.WorkNs, l.CriticalNs, l.SpanNs, l.BarrierWaitNs)
	}
	if math.Abs(l.AchievableSpeedup-1.4) > 1e-9 {
		t.Errorf("achievable speedup = %v, want 1.4", l.AchievableSpeedup)
	}
	a := l.Attribution
	want := Attribution{WallNs: 100, ParallelNs: 70, SerialNs: 0, BarrierNs: 10, ImbalanceNs: 16, SyncNs: 4}
	if a.WallNs != want.WallNs || a.ParallelNs != want.ParallelNs || a.SerialNs != want.SerialNs ||
		a.BarrierNs != want.BarrierNs || a.ImbalanceNs != want.ImbalanceNs || a.SyncNs != want.SyncNs {
		t.Errorf("attribution = %+v, want %+v", a, want)
	}
	if a.ResidualNs != 0 {
		t.Errorf("residual = %d, want 0", a.ResidualNs)
	}
}

// TestBudgetVerdict: a loop whose measured work per sync event clears
// the Table 1 minimum passes; a tiny loop fails.
func TestBudgetVerdict(t *testing.T) {
	// 15 units × 1ms at 1 GHz = 15e6 cycles of work over 1 sync event;
	// Table 1 minimum for 15 procs at 10k cycles and 1% budget is
	// 15×10_000/0.01 = 15e6. Exactly at threshold -> pass.
	events := StairStepTrace("big", 15, []int{15}, time.Millisecond, 0, base)
	r := Analyze(events, Config{})
	if !r.Loops[0].Budget.Pass {
		t.Errorf("big loop: budget fail (ratio %v), want pass", r.Loops[0].Budget.Ratio)
	}

	// Same shape but 1µs units: 15e3 cycles of work, 1000x short.
	events = StairStepTrace("small", 15, []int{15}, time.Microsecond, 0, base)
	r = Analyze(events, Config{})
	b := r.Loops[0].Budget
	if b.Pass {
		t.Errorf("small loop: budget pass (ratio %v), want fail", b.Ratio)
	}
	if math.Abs(b.Ratio-0.001) > 1e-9 {
		t.Errorf("small loop ratio = %v, want 0.001", b.Ratio)
	}
}

// TestTruncatedTraceFlagged: a drop marker (as synthesized by
// Tracer.EventsSince after ring wraparound) flags the report.
func TestTruncatedTraceFlagged(t *testing.T) {
	events := StairStepTrace("zone", 15, []int{5}, time.Millisecond, 0, base)
	marked := append([]obs.Event{obs.DropMarker(1, 42, base)}, events...)
	r := Analyze(marked, Config{})
	if !r.Truncated || r.DroppedEvents != 42 {
		t.Errorf("truncated=%v dropped=%d, want true/42", r.Truncated, r.DroppedEvents)
	}

	if r = Analyze(events, Config{}); r.Truncated {
		t.Error("clean trace flagged truncated")
	}
}

// TestTruncatedTraceFromRealTracer: overflow a real ring buffer and
// run the cursor read through the analyzer.
func TestTruncatedTraceFromRealTracer(t *testing.T) {
	tr := obs.NewTracer(8, nil)
	tr.Enable()
	for i := 0; i < 20; i++ {
		tr.Emit(obs.Event{Kind: obs.KindBarrier, Name: "x"})
	}
	events, dropped := tr.EventsSince(1)
	if dropped == 0 {
		t.Fatal("expected drops after overflowing an 8-slot ring")
	}
	r := Analyze(events, Config{})
	if !r.Truncated || r.DroppedEvents != int64(dropped) {
		t.Errorf("truncated=%v dropped=%d, want true/%d", r.Truncated, r.DroppedEvents, dropped)
	}
}

// TestIncompleteRegionCounted: a region whose end event was lost is
// counted, not silently attributed.
func TestIncompleteRegionCounted(t *testing.T) {
	events := seqTrace([]obs.Event{
		{At: base, Kind: obs.KindRegionBegin, Name: "cut", Worker: -1, A: 2},
		{At: base.Add(10), Kind: obs.KindChunk, Name: "cut", Worker: 0, Dur: 10, A: 0, B: 5},
	})
	r := Analyze(events, Config{})
	if len(r.Loops) != 1 || r.Loops[0].IncompleteRegions != 1 || r.Loops[0].Regions != 0 {
		t.Errorf("got %+v, want one loop with 1 incomplete region", r.Loops)
	}
}

// TestGrantAudit: plateau grants count toward efficiency, off-plateau
// grants against it, and resizes (carrying M in C) are audited too.
func TestGrantAudit(t *testing.T) {
	events := seqTrace([]obs.Event{
		// M=15: plateaus at 1,2,3,4,5,8,15. P=5 efficient, P=6 wasteful.
		{At: base, Kind: obs.KindGrant, Name: "a", Worker: -1, A: 5, B: 15},
		{At: base.Add(1), Kind: obs.KindGrant, Name: "a", Worker: -1, A: 6, B: 15},
		// Resize to 8 with requested M=15 in C.
		{At: base.Add(2), Kind: obs.KindResize, Name: "a", Worker: -1, A: 6, B: 8, C: 15},
	})
	r := Analyze(events, Config{})
	if len(r.Grants) != 3 {
		t.Fatalf("grant buckets = %d, want 3: %+v", len(r.Grants), r.Grants)
	}
	byProcs := map[int]GrantBucket{}
	for _, g := range r.Grants {
		byProcs[g.Procs] = g
	}
	if !byProcs[5].OnPlateau || byProcs[6].OnPlateau || !byProcs[8].OnPlateau {
		t.Errorf("plateau flags wrong: %+v", r.Grants)
	}
	if byProcs[8].PredictedSpeedup != 7.5 {
		t.Errorf("P=8 predicted = %v, want 7.5", byProcs[8].PredictedSpeedup)
	}
	if math.Abs(r.PlateauEfficiency-2.0/3.0) > 1e-9 {
		t.Errorf("plateau efficiency = %v, want 2/3", r.PlateauEfficiency)
	}
}

// TestRankedProfileEmbedded: the report embeds the prof-style ranked
// entries with region/chunk split.
func TestRankedProfileEmbedded(t *testing.T) {
	events := StairStepTrace("zone", 15, []int{5}, time.Millisecond, 0, base)
	r := Analyze(events, Config{})
	if len(r.Ranked) == 0 {
		t.Fatal("no ranked entries")
	}
	names := map[string]bool{}
	for _, e := range r.Ranked {
		names[e.Name] = true
	}
	if !names["zone"] || !names["zone/chunk"] {
		t.Errorf("ranked names = %v, want zone and zone/chunk", names)
	}
}

// TestReportJSONRoundTrip: reports survive the JSON encoding served
// by f3dd /analyze and consumed by tracetool diff.
func TestReportJSONRoundTrip(t *testing.T) {
	events := StairStepTrace("zone", 15, []int{5, 8}, time.Millisecond, time.Microsecond, base)
	r := Analyze(events, Config{})
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Loops) != len(r.Loops) || len(back.Occupancy) != len(r.Occupancy) {
		t.Errorf("round trip mangled report: %+v", back)
	}
	if back.Loops[0].Attribution != r.Loops[0].Attribution {
		t.Errorf("attribution round trip: %+v != %+v", back.Loops[0].Attribution, r.Loops[0].Attribution)
	}
}

// TestAnalyzeLiveParloopTrace: end-to-end over a real team run —
// attribution must still sum, and units must match the loop bound.
func TestAnalyzeLiveParloopTrace(t *testing.T) {
	tr := obs.NewTracer(4096, nil)
	tr.Enable()
	team := newTracedTeam(t, tr, "live", 4)
	defer team.Close()

	for step := 0; step < 3; step++ {
		team.For(64, func(i int) { busyWork(200) })
	}
	r := Analyze(tr.Events(), Config{ClockGHz: 1})
	if len(r.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(r.Loops))
	}
	l := r.Loops[0]
	if l.Regions != 3 || l.Units != 64 || l.Workers != 4 {
		t.Errorf("regions/units/workers = %d/%d/%d, want 3/64/4", l.Regions, l.Units, l.Workers)
	}
	a := l.Attribution
	sum := a.ParallelNs + a.SerialNs + a.BarrierNs + a.ImbalanceNs + a.SyncNs
	if err := math.Abs(float64(a.WallNs-sum)) / float64(a.WallNs); err > 0.005 {
		t.Errorf("live attribution sum err %.3f%% > 0.5%%", 100*err)
	}
	if l.AchievedSpeedup <= 0 || l.AchievableSpeedup <= 0 {
		t.Errorf("speedups %v/%v, want > 0", l.AchievedSpeedup, l.AchievableSpeedup)
	}
}
