package analyze

import (
	"math"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/parloop"
)

// newTracedTeam builds a parloop team with the tracer attached.
func newTracedTeam(t *testing.T, tr *obs.Tracer, name string, workers int) *parloop.Team {
	t.Helper()
	team := parloop.NewTeam(workers)
	team.SetTracer(tr, name)
	return team
}

// sink defeats dead-code elimination in busyWork; atomic because loop
// bodies run it from every worker concurrently.
var sink atomic.Uint64

// busyWork burns roughly n floating-point operations.
func busyWork(n int) {
	x := 1.0
	for i := 0; i < n; i++ {
		x += 1.0 / float64(i+1)
	}
	sink.Store(math.Float64bits(x))
}
