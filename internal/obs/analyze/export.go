package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/obs"
)

// Trace exporters: the same obs.Event stream rendered for two
// ubiquitous flame-chart viewers. Speedscope's evented format gets one
// time-ordered lane per worker (chunk and barrier spans) plus a
// control lane of region spans; the Chrome trace-event format
// ("catapult", chrome://tracing / Perfetto) gets complete ("X") spans
// on per-worker threads and instant ("i") marks for scheduler events.

// lane is the pseudo-thread used for events without a worker (region
// begin/end, scheduler events).
const controlLane = -1

// traceSpan is a span event normalized for export.
type traceSpan struct {
	name       string
	worker     int
	start, end time.Time
	cat        string
	lo, hi     int64
}

// collectSpans normalizes span-shaped events, returning them with the
// earliest start. Non-span events are skipped.
func collectSpans(events []obs.Event) (spans []traceSpan, epoch time.Time) {
	have := false
	for _, e := range events {
		var s traceSpan
		switch e.Kind {
		case obs.KindRegionEnd:
			s = traceSpan{name: e.Name, worker: controlLane, cat: "region"}
		case obs.KindBarrier:
			s = traceSpan{name: e.Name + "/barrier", worker: e.Worker, cat: "barrier"}
		case obs.KindChunk:
			s = traceSpan{name: e.Name + "/chunk", worker: e.Worker, cat: "chunk", lo: e.A, hi: e.B}
		default:
			continue
		}
		if s.name == "/barrier" || s.name == "/chunk" {
			s.name = "region" + s.name
		} else if s.name == "" {
			s.name = "region"
		}
		s.start = e.At.Add(-e.Dur)
		s.end = e.At
		spans = append(spans, s)
		if !have || s.start.Before(epoch) {
			epoch = s.start
			have = true
		}
	}
	return spans, epoch
}

// speedscope evented-profile JSON shapes.
type ssFile struct {
	Schema             string      `json:"$schema"`
	Name               string      `json:"name"`
	ActiveProfileIndex int         `json:"activeProfileIndex"`
	Shared             ssShared    `json:"shared"`
	Profiles           []ssProfile `json:"profiles"`
}

type ssShared struct {
	Frames []ssFrame `json:"frames"`
}

type ssFrame struct {
	Name string `json:"name"`
}

type ssProfile struct {
	Type       string    `json:"type"`
	Name       string    `json:"name"`
	Unit       string    `json:"unit"`
	StartValue int64     `json:"startValue"`
	EndValue   int64     `json:"endValue"`
	Events     []ssEvent `json:"events"`
}

type ssEvent struct {
	Type  string `json:"type"` // "O" open, "C" close
	Frame int    `json:"frame"`
	At    int64  `json:"at"`
}

// WriteSpeedscope renders the trace as a speedscope evented profile
// (https://www.speedscope.app/file-format-schema.json): one profile
// per worker lane in nanoseconds since the first span. Spans on a lane
// are flattened — if truncation or clock skew makes two spans on one
// lane overlap, the later span is clamped to start where the earlier
// ended, keeping the open/close stream monotone as the format
// requires.
func WriteSpeedscope(w io.Writer, events []obs.Event, name string) error {
	spans, epoch := collectSpans(events)

	frameIdx := map[string]int{}
	var frames []ssFrame
	frame := func(name string) int {
		i, ok := frameIdx[name]
		if !ok {
			i = len(frames)
			frameIdx[name] = i
			frames = append(frames, ssFrame{Name: name})
		}
		return i
	}

	byLane := map[int][]traceSpan{}
	for _, s := range spans {
		byLane[s.worker] = append(byLane[s.worker], s)
	}
	lanes := make([]int, 0, len(byLane))
	for l := range byLane {
		lanes = append(lanes, l)
	}
	sort.Ints(lanes)

	var profiles []ssProfile
	for _, l := range lanes {
		ls := byLane[l]
		sort.SliceStable(ls, func(i, j int) bool {
			if !ls[i].start.Equal(ls[j].start) {
				return ls[i].start.Before(ls[j].start)
			}
			return ls[i].end.Before(ls[j].end)
		})
		p := ssProfile{Type: "evented", Unit: "nanoseconds"}
		if l == controlLane {
			p.Name = "regions"
		} else {
			p.Name = fmt.Sprintf("worker %d", l)
		}
		var cursor int64
		for _, s := range ls {
			at := s.start.Sub(epoch).Nanoseconds()
			end := s.end.Sub(epoch).Nanoseconds()
			if at < cursor {
				at = cursor // flatten overlap
			}
			if end <= at {
				continue
			}
			f := frame(s.name)
			p.Events = append(p.Events,
				ssEvent{Type: "O", Frame: f, At: at},
				ssEvent{Type: "C", Frame: f, At: end})
			cursor = end
		}
		p.EndValue = cursor
		if len(p.Events) > 0 {
			profiles = append(profiles, p)
		}
	}
	if profiles == nil {
		profiles = []ssProfile{}
	}
	if frames == nil {
		frames = []ssFrame{}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(ssFile{
		Schema:   "https://www.speedscope.app/file-format-schema.json",
		Name:     name,
		Shared:   ssShared{Frames: frames},
		Profiles: profiles,
	})
}

// chromeEvent is one entry of the Chrome trace-event format (the
// JSON-array flavor). Timestamps and durations are in microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the object form with a traceEvents array, which both
// chrome://tracing and Perfetto accept.
type chromeFile struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	Metadata    map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders the trace in Chrome trace-event format:
// complete ("X") spans for regions, chunks and barrier waits on
// per-worker threads, and global instant ("i") marks for scheduler
// grant/resize/preempt events and drop markers.
func WriteChromeTrace(w io.Writer, events []obs.Event) error {
	spans, epoch := collectSpans(events)
	if epoch.IsZero() {
		// No spans: anchor instants at the first event.
		for _, e := range events {
			epoch = e.At
			break
		}
	}
	us := func(t time.Time) float64 { return float64(t.Sub(epoch).Nanoseconds()) / 1e3 }
	tid := func(worker int) int { return worker + 1 } // control lane -1 -> tid 0

	out := chromeFile{TraceEvents: []chromeEvent{
		{Name: "process_name", Ph: "M", Pid: 1, Args: map[string]any{"name": "trace"}},
		{Name: "thread_name", Ph: "M", Pid: 1, Tid: 0, Args: map[string]any{"name": "regions"}},
	}}
	named := map[int]bool{0: true}

	for _, s := range spans {
		t := tid(s.worker)
		if !named[t] {
			named[t] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: t,
				Args: map[string]any{"name": fmt.Sprintf("worker %d", s.worker)},
			})
		}
		ev := chromeEvent{Name: s.name, Cat: s.cat, Ph: "X",
			Ts: us(s.start), Dur: float64(s.end.Sub(s.start).Nanoseconds()) / 1e3,
			Pid: 1, Tid: t}
		if s.cat == "chunk" {
			ev.Args = map[string]any{"lo": s.lo, "hi": s.hi}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}

	for _, e := range events {
		var args map[string]any
		switch e.Kind {
		case obs.KindGrant:
			args = map[string]any{"granted": e.A, "requested": e.B}
		case obs.KindResize:
			args = map[string]any{"from": e.A, "to": e.B, "requested": e.C}
		case obs.KindPreempt:
			args = map[string]any{"cur": e.A, "lower": e.B, "requested": e.C}
		case obs.KindTraceDropped:
			args = map[string]any{"dropped": e.A}
		default:
			continue
		}
		name := e.Kind.String()
		if e.Name != "" {
			name += ":" + e.Name
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: name, Cat: "sched", Ph: "i", Ts: us(e.At), Pid: 1, Tid: 0, S: "g",
			Args: args,
		})
	}

	return json.NewEncoder(w).Encode(out)
}
