package analyze

import (
	"fmt"
	"sort"

	"repro/internal/obs"
)

// ClusterConfig tunes the cluster analysis.
type ClusterConfig struct {
	// CoordNode is the node tag of the coordinator's own events, which
	// separates the per-step wall spans from worker-side spans in a
	// merged timeline. Empty defaults to "coord" (the cluster
	// package's default).
	CoordNode string `json:"coord_node"`
}

// Defaults returns c with zero fields replaced by defaults.
func (c ClusterConfig) Defaults() ClusterConfig {
	if c.CoordNode == "" {
		c.CoordNode = "coord"
	}
	return c
}

// ClusterWorkerStep is one worker's lane in one lockstep step.
type ClusterWorkerStep struct {
	// Node is the worker's node tag.
	Node string `json:"node"`
	// RPCNs is the coordinator-observed round-trip for this worker's
	// step RPC — the straggler race is over these.
	RPCNs int64 `json:"rpc_ns"`
	// ComputeNs is the worker-reported solver step time.
	ComputeNs int64 `json:"compute_ns"`
	// ExchangeNs is the worker-reported exchange handling time
	// (plane decode, boundary capture, checkpoint snapshots).
	ExchangeNs int64 `json:"exchange_ns"`
	// Partial marks a lane whose worker-side spans were missing from
	// the timeline (ring wraparound, failed pull): ComputeNs then
	// falls back to RPCNs and ExchangeNs to zero.
	Partial bool `json:"partial,omitempty"`
}

// ClusterStep is the exact-sum attribution of one lockstep step:
//
//	WallNs = ComputeNs + ExchangeNs + StragglerNs + FailoverNs + CollectNs
//
// ComputeNs and ExchangeNs are per-worker means (the work everyone
// did in parallel), StragglerNs is how far the slowest worker ran
// past the mean RPC (the lockstep barrier's load imbalance),
// FailoverNs is recovery time charged to steps that replayed, and
// CollectNs is the coordinator-side remainder (fold, plane routing,
// RPC fan-out overhead) — defined as the remainder, so the identity
// closes exactly unless it would go negative, which is reported as
// Closed=false with the deficit in ResidualNs.
type ClusterStep struct {
	Step        int64               `json:"step"`
	WallNs      int64               `json:"wall_ns"`
	ComputeNs   int64               `json:"compute_ns"`
	ExchangeNs  int64               `json:"exchange_ns"`
	StragglerNs int64               `json:"straggler_ns"`
	FailoverNs  int64               `json:"failover_ns"`
	CollectNs   int64               `json:"collect_ns"`
	ResidualNs  int64               `json:"residual_ns"`
	Closed      bool                `json:"closed"`
	Straggler   string              `json:"straggler,omitempty"`
	Partial     bool                `json:"partial,omitempty"`
	Verdict     string              `json:"verdict"` // "confirmed" or "plausible"
	Workers     []ClusterWorkerStep `json:"workers,omitempty"`
}

// StragglerCount is one worker's straggler tally over a solve.
type StragglerCount struct {
	Node        string `json:"node"`
	Steps       int    `json:"steps"`
	StragglerNs int64  `json:"straggler_ns"`
}

// ClusterSolve is the cluster report for one coordinator-assigned
// solve id.
type ClusterSolve struct {
	Trace string `json:"trace"`
	Job   string `json:"job"`
	// Steps are the per-step attributions, in step order.
	Steps []ClusterStep `json:"steps"`
	// Totals sums the step attributions (Step = step count, Straggler
	// = the most frequent straggler). Failover time from rounds that
	// never replayed to a successful step is included here (in both
	// WallNs and FailoverNs, keeping the identity closed).
	Totals ClusterStep `json:"totals"`
	// Stragglers tallies which worker lost the lockstep race how
	// often, sorted by time lost (descending).
	Stragglers []StragglerCount `json:"stragglers,omitempty"`
	// ExchangeBarrierShare is the solve's headline: the fraction of
	// total wall time spent exchanging boundary planes and waiting
	// for stragglers at the lockstep barrier — the distributed
	// analogue of the paper's synchronization overhead.
	ExchangeBarrierShare float64 `json:"exchange_barrier_share"`
	Closed               bool    `json:"closed"`
	Partial              bool    `json:"partial,omitempty"`
}

// ClusterReport is the fleet-wide critical-path report.
type ClusterReport struct {
	Schema int `json:"schema"`
	// Nodes are the distinct node tags seen, sorted.
	Nodes []string `json:"nodes"`
	// Events is how many timeline events the analysis consumed.
	Events int `json:"events"`
	// Solves are the per-solve reports, in first-appearance order.
	Solves []ClusterSolve `json:"solves"`
	// ExchangeBarrierShare is the wall-weighted headline across all
	// solves.
	ExchangeBarrierShare float64 `json:"exchange_barrier_share"`
	// Closed reports whether every step of every solve closed its
	// attribution identity exactly.
	Closed bool `json:"closed"`
	// Truncated reports ring wraparound anywhere in the fleet:
	// DroppedEvents counts lost events per node. Steps that lost a
	// worker's spans to the wrap degrade to Verdict "plausible"
	// rather than mis-closing.
	Truncated     bool              `json:"truncated,omitempty"`
	DroppedEvents map[string]uint64 `json:"dropped_events,omitempty"`
}

// clusterStepKey indexes per-step state within one solve.
type clusterStepKey struct {
	trace string
	step  int64
}

// clusterLaneKey indexes one worker's spans within one step.
type clusterLaneKey struct {
	trace string
	step  int64
	node  string
}

// ClusterAnalyze reconstructs per-step cross-node attribution from a
// merged fleet timeline (a Collector's Timeline, or node-tagged JSONL
// merged offline). Only events carrying a Trace correlation id
// participate; single-node traces yield an empty report.
//
// Failover replays make a (worker, step) pair appear more than once;
// the last occurrence wins, matching the state the surviving history
// was computed from.
func ClusterAnalyze(events []obs.Event, cfg ClusterConfig) *ClusterReport {
	cfg = cfg.Defaults()
	rep := &ClusterReport{Schema: Schema, Events: len(events), Closed: true}

	nodes := map[string]struct{}{}
	walls := map[clusterStepKey]int64{}    // coordinator step span
	jobs := map[string]string{}            // trace -> job name
	order := []string{}                    // traces in first-appearance order
	stepsSeen := map[string][]int64{}      // trace -> step numbers in order
	rpc := map[clusterLaneKey]int64{}      // coordinator-observed RPC per worker
	compute := map[clusterLaneKey]int64{}  // worker-side solver span
	exchange := map[clusterLaneKey]int64{} // worker-side exchange span
	laneOrder := map[clusterStepKey][]string{}
	failover := map[clusterStepKey]int64{} // recovery time charged to the replayed step
	orphanFailover := map[string]int64{}   // failover with no surviving step (aborted solves)
	dropped := map[string]uint64{}

	seenTrace := func(trace, job string) {
		if _, ok := jobs[trace]; !ok {
			jobs[trace] = job
			order = append(order, trace)
		}
	}

	for _, e := range events {
		if e.Node != "" {
			nodes[e.Node] = struct{}{}
		}
		if e.Kind == obs.KindTraceDropped {
			node := e.Node
			if node == "" {
				node = cfg.CoordNode
			}
			dropped[node] += uint64(e.A)
			continue
		}
		if e.Trace == "" {
			continue
		}
		sk := clusterStepKey{e.Trace, e.Epoch}
		lk := clusterLaneKey{e.Trace, e.Epoch, e.Node}
		switch e.Kind {
		case obs.KindShardStep:
			if e.Node == cfg.CoordNode {
				seenTrace(e.Trace, e.Name)
				if _, ok := walls[sk]; !ok {
					stepsSeen[e.Trace] = append(stepsSeen[e.Trace], e.Epoch)
				}
				walls[sk] = int64(e.Dur)
			} else {
				compute[lk] = int64(e.Dur)
			}
		case obs.KindExchange:
			if e.Node != cfg.CoordNode {
				exchange[lk] = int64(e.Dur)
			}
		case obs.KindStepRPC:
			seenTrace(e.Trace, e.Name)
			if _, ok := rpc[lk]; !ok {
				laneOrder[sk] = append(laneOrder[sk], e.Node)
			}
			rpc[lk] = int64(e.Dur)
		case obs.KindFailover:
			if e.Dur > 0 {
				seenTrace(e.Trace, e.Name)
				failover[sk] += int64(e.Dur)
			}
		}
	}

	// Failover charged to epochs that never reached a successful
	// round (the solve aborted mid-recovery) still belongs to its
	// solve's totals.
	for sk, ns := range failover {
		if _, ok := walls[sk]; !ok {
			orphanFailover[sk.trace] += ns
		}
	}

	var fleetWall, fleetExchBarrier int64
	for _, trace := range order {
		solve := ClusterSolve{Trace: trace, Job: jobs[trace], Closed: true}
		steps := stepsSeen[trace]
		sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
		counts := map[string]*StragglerCount{}
		for _, s := range steps {
			sk := clusterStepKey{trace, s}
			st := attributeStep(sk, walls[sk], failover[sk], laneOrder[sk], rpc, compute, exchange)
			if c, ok := counts[st.Straggler]; ok {
				c.Steps++
				c.StragglerNs += st.StragglerNs
			} else if st.Straggler != "" {
				counts[st.Straggler] = &StragglerCount{Node: st.Straggler, Steps: 1, StragglerNs: st.StragglerNs}
			}
			solve.Totals.WallNs += st.WallNs
			solve.Totals.ComputeNs += st.ComputeNs
			solve.Totals.ExchangeNs += st.ExchangeNs
			solve.Totals.StragglerNs += st.StragglerNs
			solve.Totals.FailoverNs += st.FailoverNs
			solve.Totals.CollectNs += st.CollectNs
			solve.Totals.ResidualNs += st.ResidualNs
			solve.Closed = solve.Closed && st.Closed
			solve.Partial = solve.Partial || st.Partial
			solve.Steps = append(solve.Steps, st)
		}
		if orphan := orphanFailover[trace]; orphan > 0 {
			solve.Totals.WallNs += orphan
			solve.Totals.FailoverNs += orphan
		}
		solve.Totals.Step = int64(len(solve.Steps))
		solve.Totals.Closed = solve.Closed
		solve.Totals.Partial = solve.Partial
		solve.Totals.Verdict = verdict(solve.Partial)
		for _, c := range counts {
			solve.Stragglers = append(solve.Stragglers, *c)
		}
		sort.Slice(solve.Stragglers, func(i, j int) bool {
			a, b := solve.Stragglers[i], solve.Stragglers[j]
			if a.StragglerNs != b.StragglerNs {
				return a.StragglerNs > b.StragglerNs
			}
			return a.Node < b.Node
		})
		if len(solve.Stragglers) > 0 {
			solve.Totals.Straggler = solve.Stragglers[0].Node
		}
		if solve.Totals.WallNs > 0 {
			solve.ExchangeBarrierShare = float64(solve.Totals.ExchangeNs+solve.Totals.StragglerNs) /
				float64(solve.Totals.WallNs)
		}
		fleetWall += solve.Totals.WallNs
		fleetExchBarrier += solve.Totals.ExchangeNs + solve.Totals.StragglerNs
		rep.Closed = rep.Closed && solve.Closed
		rep.Solves = append(rep.Solves, solve)
	}

	if fleetWall > 0 {
		rep.ExchangeBarrierShare = float64(fleetExchBarrier) / float64(fleetWall)
	}
	for n := range nodes {
		rep.Nodes = append(rep.Nodes, n)
	}
	sort.Strings(rep.Nodes)
	if len(dropped) > 0 {
		rep.Truncated = true
		rep.DroppedEvents = dropped
	}
	return rep
}

// attributeStep builds one step's exact-sum attribution.
func attributeStep(sk clusterStepKey, wall, failoverNs int64, lanes []string,
	rpc, compute, exchange map[clusterLaneKey]int64) ClusterStep {

	st := ClusterStep{Step: sk.step, WallNs: wall + failoverNs, FailoverNs: failoverNs}

	var sumCompute, sumExchange, sumBusy, maxBusy int64
	sorted := append([]string(nil), lanes...)
	sort.Strings(sorted)
	for _, node := range sorted {
		lk := clusterLaneKey{sk.trace, sk.step, node}
		lane := ClusterWorkerStep{Node: node, RPCNs: rpc[lk]}
		if c, ok := compute[lk]; ok {
			lane.ComputeNs = c
			lane.ExchangeNs = exchange[lk]
		} else {
			// The worker's own spans never arrived (ring wrap, failed
			// pull): fall back to charging its whole RPC as compute —
			// the sum still closes, but only plausibly.
			lane.ComputeNs = lane.RPCNs
			lane.Partial = true
			st.Partial = true
		}
		busy := lane.RPCNs
		if busy == 0 {
			busy = lane.ComputeNs + lane.ExchangeNs
		}
		sumCompute += lane.ComputeNs
		sumExchange += lane.ExchangeNs
		sumBusy += busy
		// Straggler tie-break: lanes iterate in sorted node order and
		// the comparison is strict, so the lexicographically first of
		// the slowest workers is named.
		if busy > maxBusy {
			maxBusy = busy
			st.Straggler = node
		}
		st.Workers = append(st.Workers, lane)
	}
	if w := int64(len(sorted)); w > 0 {
		st.ComputeNs = sumCompute / w
		st.ExchangeNs = sumExchange / w
		st.StragglerNs = maxBusy - sumBusy/w
	}
	// Collect is the remainder, so the five-term identity closes
	// exactly by construction; a negative remainder (worker clocks
	// claiming more time than the coordinator observed) is the one
	// way closure fails, and is surfaced rather than clamped away.
	rem := st.WallNs - st.ComputeNs - st.ExchangeNs - st.StragglerNs - st.FailoverNs
	if rem >= 0 {
		st.CollectNs = rem
		st.Closed = true
	} else {
		st.ResidualNs = rem
	}
	st.Verdict = verdict(st.Partial)
	return st
}

func verdict(partial bool) string {
	if partial {
		return "plausible"
	}
	return "confirmed"
}

// CheckClusterClosure verifies every step's five-term identity in a
// report, returning a descriptive error for the first violation —
// the tracetool cluster gate.
func CheckClusterClosure(rep *ClusterReport) error {
	for _, s := range rep.Solves {
		for _, st := range s.Steps {
			sum := st.ComputeNs + st.ExchangeNs + st.StragglerNs + st.FailoverNs + st.CollectNs + st.ResidualNs
			if sum != st.WallNs || !st.Closed {
				return fmt.Errorf("solve %s step %d: attribution does not close: compute %d + exchange %d + straggler %d + failover %d + collect %d + residual %d = %d, wall %d",
					s.Trace, st.Step, st.ComputeNs, st.ExchangeNs, st.StragglerNs, st.FailoverNs, st.CollectNs, st.ResidualNs, sum, st.WallNs)
			}
		}
	}
	return nil
}
