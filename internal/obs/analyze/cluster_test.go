package analyze

import (
	"testing"
	"time"

	"repro/internal/obs"
)

// clusterEvents builds the merged timeline of one coordinator step:
// a coordinator wall span plus per-worker RPC / compute / exchange
// spans, in milliseconds.
func clusterStepEvents(trace string, step int64, wallMs int64, workers map[string][3]int64) []obs.Event {
	base := time.Unix(0, 0)
	var out []obs.Event
	for node, d := range workers {
		out = append(out,
			obs.Event{Kind: obs.KindStepRPC, Name: "job", Worker: 0, Node: node,
				Trace: trace, Epoch: step, At: base, Dur: time.Duration(d[0]) * time.Millisecond, A: step},
			obs.Event{Kind: obs.KindShardStep, Name: "job", Worker: -1, Node: node,
				Trace: trace, Epoch: step, At: base, Dur: time.Duration(d[1]) * time.Millisecond, A: step},
			obs.Event{Kind: obs.KindExchange, Name: "job", Worker: -1, Node: node,
				Trace: trace, Epoch: step, At: base, Dur: time.Duration(d[2]) * time.Millisecond, A: step},
		)
	}
	out = append(out, obs.Event{Kind: obs.KindShardStep, Name: "job", Worker: -1, Node: "coord",
		Trace: trace, Epoch: step, At: base, Dur: time.Duration(wallMs) * time.Millisecond, A: step})
	return out
}

func ms(n int64) int64 { return n * int64(time.Millisecond) }

func TestClusterAnalyzeClosureAndStraggler(t *testing.T) {
	// Three workers: rpc/compute/exchange (ms). w03 is the straggler.
	events := clusterStepEvents("job#1", 0, 40, map[string][3]int64{
		"w01": {10, 8, 1},
		"w02": {20, 17, 2},
		"w03": {30, 26, 3},
	})
	rep := ClusterAnalyze(events, ClusterConfig{})
	if len(rep.Solves) != 1 || len(rep.Solves[0].Steps) != 1 {
		t.Fatalf("want 1 solve with 1 step, got %+v", rep)
	}
	st := rep.Solves[0].Steps[0]
	if st.WallNs != ms(40) {
		t.Errorf("wall = %d, want %d", st.WallNs, ms(40))
	}
	// compute mean = (8+17+26)/3 = 17, exchange mean = 2,
	// straggler = max rpc 30 - mean rpc 20 = 10, collect = 40-17-2-10 = 11.
	if st.ComputeNs != ms(17) || st.ExchangeNs != ms(2) || st.StragglerNs != ms(10) || st.CollectNs != ms(11) {
		t.Errorf("attribution = compute %d exchange %d straggler %d collect %d",
			st.ComputeNs, st.ExchangeNs, st.StragglerNs, st.CollectNs)
	}
	if !st.Closed || st.ResidualNs != 0 || st.Verdict != "confirmed" || st.Partial {
		t.Errorf("step not cleanly closed: %+v", st)
	}
	if st.Straggler != "w03" {
		t.Errorf("straggler = %q, want w03", st.Straggler)
	}
	if got := st.ComputeNs + st.ExchangeNs + st.StragglerNs + st.FailoverNs + st.CollectNs; got != st.WallNs {
		t.Errorf("identity: components sum to %d, wall %d", got, st.WallNs)
	}
	if len(st.Workers) != 3 || st.Workers[0].Node != "w01" {
		t.Errorf("lanes = %+v", st.Workers)
	}
	s := rep.Solves[0]
	if len(s.Stragglers) == 0 || s.Stragglers[0].Node != "w03" || s.Stragglers[0].Steps != 1 {
		t.Errorf("straggler tally = %+v", s.Stragglers)
	}
	// share = (2 + 10) / 40
	if want := 12.0 / 40.0; s.ExchangeBarrierShare != want {
		t.Errorf("share = %g, want %g", s.ExchangeBarrierShare, want)
	}
	if !rep.Closed || rep.Truncated {
		t.Errorf("report flags: %+v", rep)
	}
	if err := CheckClusterClosure(rep); err != nil {
		t.Errorf("CheckClusterClosure: %v", err)
	}
}

func TestClusterAnalyzeRoundingAbsorbedByCollect(t *testing.T) {
	// Sums that do not divide evenly by 3: remainder must land in
	// collect, keeping the identity exact.
	events := clusterStepEvents("job#1", 0, 50, map[string][3]int64{
		"w01": {11, 7, 1},
		"w02": {13, 9, 1},
		"w03": {17, 12, 2},
	})
	rep := ClusterAnalyze(events, ClusterConfig{})
	st := rep.Solves[0].Steps[0]
	if !st.Closed {
		t.Fatalf("step not closed: %+v", st)
	}
	if got := st.ComputeNs + st.ExchangeNs + st.StragglerNs + st.FailoverNs + st.CollectNs + st.ResidualNs; got != st.WallNs {
		t.Errorf("identity: %d != wall %d", got, st.WallNs)
	}
	if err := CheckClusterClosure(rep); err != nil {
		t.Errorf("CheckClusterClosure: %v", err)
	}
}

func TestClusterAnalyzeStragglerTieBreak(t *testing.T) {
	events := clusterStepEvents("job#1", 0, 40, map[string][3]int64{
		"w02": {30, 26, 3},
		"w01": {30, 26, 3},
		"w03": {10, 8, 1},
	})
	rep := ClusterAnalyze(events, ClusterConfig{})
	if got := rep.Solves[0].Steps[0].Straggler; got != "w01" {
		t.Errorf("straggler = %q, want lexicographically first of the tied slowest (w01)", got)
	}
}

func TestClusterAnalyzeFailoverCharge(t *testing.T) {
	events := clusterStepEvents("job#1", 2, 40, map[string][3]int64{
		"w01": {10, 8, 1},
		"w02": {20, 17, 2},
	})
	base := time.Unix(0, 0)
	// A failed round at epoch 2 replayed after 25ms of recovery; the
	// per-worker loss marker (Dur 0) must not be double-counted.
	events = append(events,
		obs.Event{Kind: obs.KindFailover, Name: "w03", Worker: -1, Node: "coord",
			Trace: "job#1", Epoch: 2, At: base, A: 2},
		obs.Event{Kind: obs.KindFailover, Name: "job", Worker: -1, Node: "coord",
			Trace: "job#1", Epoch: 2, At: base, Dur: 25 * time.Millisecond, A: 2, B: 1},
	)
	rep := ClusterAnalyze(events, ClusterConfig{})
	st := rep.Solves[0].Steps[0]
	if st.FailoverNs != ms(25) {
		t.Errorf("failover = %d, want %d", st.FailoverNs, ms(25))
	}
	if st.WallNs != ms(40+25) {
		t.Errorf("wall = %d, want coordinator wall + failover = %d", st.WallNs, ms(65))
	}
	if !st.Closed {
		t.Errorf("step not closed: %+v", st)
	}
	if err := CheckClusterClosure(rep); err != nil {
		t.Errorf("CheckClusterClosure: %v", err)
	}
}

func TestClusterAnalyzeOrphanFailoverInTotals(t *testing.T) {
	events := clusterStepEvents("job#1", 0, 40, map[string][3]int64{
		"w01": {10, 8, 1},
	})
	base := time.Unix(0, 0)
	// Recovery at epoch 5, but the solve aborted before epoch 5 ever
	// completed: the time still belongs to the solve's totals.
	events = append(events, obs.Event{Kind: obs.KindFailover, Name: "job", Worker: -1,
		Node: "coord", Trace: "job#1", Epoch: 5, At: base, Dur: 30 * time.Millisecond, A: 5, B: 1})
	rep := ClusterAnalyze(events, ClusterConfig{})
	s := rep.Solves[0]
	if len(s.Steps) != 1 {
		t.Fatalf("want 1 step, got %d", len(s.Steps))
	}
	if s.Totals.FailoverNs != ms(30) || s.Totals.WallNs != ms(40+30) {
		t.Errorf("totals = wall %d failover %d, want wall %d failover %d",
			s.Totals.WallNs, s.Totals.FailoverNs, ms(70), ms(30))
	}
}

func TestClusterAnalyzePartialDegradation(t *testing.T) {
	// w02's worker-side spans are missing (its ring wrapped): the
	// step must still close, but only plausibly, with w02's RPC
	// charged as compute.
	base := time.Unix(0, 0)
	events := []obs.Event{
		{Kind: obs.KindStepRPC, Name: "job", Node: "w01", Trace: "job#1", Epoch: 0,
			At: base, Dur: 10 * time.Millisecond, A: 0},
		{Kind: obs.KindShardStep, Name: "job", Worker: -1, Node: "w01", Trace: "job#1", Epoch: 0,
			At: base, Dur: 8 * time.Millisecond, A: 0},
		{Kind: obs.KindExchange, Name: "job", Worker: -1, Node: "w01", Trace: "job#1", Epoch: 0,
			At: base, Dur: time.Millisecond, A: 0},
		{Kind: obs.KindStepRPC, Name: "job", Node: "w02", Trace: "job#1", Epoch: 0,
			At: base, Dur: 20 * time.Millisecond, A: 0},
		obs.DropMarker(0, 7, base),
		{Kind: obs.KindShardStep, Name: "job", Worker: -1, Node: "coord", Trace: "job#1", Epoch: 0,
			At: base, Dur: 30 * time.Millisecond, A: 0},
	}
	// Node-tag the marker as the collector would.
	for i := range events {
		if events[i].Kind == obs.KindTraceDropped {
			events[i].Node = "w02"
		}
	}
	rep := ClusterAnalyze(events, ClusterConfig{})
	st := rep.Solves[0].Steps[0]
	if !st.Partial || st.Verdict != "plausible" {
		t.Errorf("want plausible partial step, got %+v", st)
	}
	if !st.Closed {
		t.Errorf("partial step must still close: %+v", st)
	}
	var w02 *ClusterWorkerStep
	for i := range st.Workers {
		if st.Workers[i].Node == "w02" {
			w02 = &st.Workers[i]
		}
	}
	if w02 == nil || !w02.Partial || w02.ComputeNs != ms(20) || w02.ExchangeNs != 0 {
		t.Errorf("w02 lane = %+v, want partial with compute = rpc", w02)
	}
	if !rep.Truncated || rep.DroppedEvents["w02"] != 7 {
		t.Errorf("truncation not surfaced: %+v", rep)
	}
	if err := CheckClusterClosure(rep); err != nil {
		t.Errorf("CheckClusterClosure: %v", err)
	}
}

func TestClusterAnalyzeNegativeResidualNotClosed(t *testing.T) {
	// Worker-side spans claim more time than the coordinator's wall:
	// mis-aligned clocks. The analyzer must refuse to close rather
	// than hide the deficit.
	events := clusterStepEvents("job#1", 0, 10, map[string][3]int64{
		"w01": {50, 45, 4},
	})
	rep := ClusterAnalyze(events, ClusterConfig{})
	st := rep.Solves[0].Steps[0]
	if st.Closed || st.ResidualNs >= 0 {
		t.Errorf("want unclosed step with negative residual, got %+v", st)
	}
	if rep.Closed {
		t.Error("report must not claim closure")
	}
	if err := CheckClusterClosure(rep); err == nil {
		t.Error("CheckClusterClosure must fail")
	}
}

func TestClusterAnalyzeIgnoresUntracedEvents(t *testing.T) {
	base := time.Unix(0, 0)
	events := []obs.Event{
		{Kind: obs.KindRegionBegin, Name: "loop", At: base},
		{Kind: obs.KindShardStep, Name: "job", Worker: -1, Node: "coord", At: base,
			Dur: 30 * time.Millisecond}, // no Trace: single-node span
	}
	rep := ClusterAnalyze(events, ClusterConfig{})
	if len(rep.Solves) != 0 {
		t.Errorf("untraced events must not form solves: %+v", rep.Solves)
	}
	if rep.Events != 2 {
		t.Errorf("events = %d, want 2", rep.Events)
	}
}

func TestClusterAnalyzeLastWinsOnReplay(t *testing.T) {
	// The same (worker, step) appears twice — a replay after
	// failover. The later spans win.
	first := clusterStepEvents("job#1", 0, 40, map[string][3]int64{"w01": {25, 20, 2}})
	second := clusterStepEvents("job#1", 0, 30, map[string][3]int64{"w01": {10, 8, 1}})
	events := append(first, second...)
	rep := ClusterAnalyze(events, ClusterConfig{})
	st := rep.Solves[0].Steps[0]
	if st.WallNs != ms(30) || st.ComputeNs != ms(8) {
		t.Errorf("replay must win: %+v", st)
	}
	if len(st.Workers) != 1 {
		t.Errorf("lane duplicated on replay: %+v", st.Workers)
	}
}
