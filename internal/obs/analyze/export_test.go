package analyze

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestWriteSpeedscope(t *testing.T) {
	events := StairStepTrace("zone", 15, []int{1, 5, 8}, time.Millisecond, 100*time.Microsecond, base)
	events = append(events, seqTrace(barrierRegionEvents("mix", base.Add(time.Second)))...)

	var buf bytes.Buffer
	if err := WriteSpeedscope(&buf, events, "test"); err != nil {
		t.Fatal(err)
	}
	var f ssFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("speedscope output is not valid JSON: %v", err)
	}
	if f.Schema != "https://www.speedscope.app/file-format-schema.json" {
		t.Errorf("$schema = %q", f.Schema)
	}
	// Lanes: regions (control) plus workers 0..7 from the P=8 sweep.
	if len(f.Profiles) < 2 {
		t.Fatalf("profiles = %d, want at least control + worker lanes", len(f.Profiles))
	}
	for _, p := range f.Profiles {
		if p.Type != "evented" || p.Unit != "nanoseconds" {
			t.Errorf("profile %q type/unit = %s/%s", p.Name, p.Type, p.Unit)
		}
		// Open/close events must be balanced, monotone and in-range.
		depth := 0
		last := int64(-1)
		for _, e := range p.Events {
			if e.At < last {
				t.Fatalf("profile %q: events not monotone (%d after %d)", p.Name, e.At, last)
			}
			last = e.At
			if e.Frame < 0 || e.Frame >= len(f.Shared.Frames) {
				t.Fatalf("profile %q: frame %d out of range", p.Name, e.Frame)
			}
			switch e.Type {
			case "O":
				depth++
			case "C":
				depth--
			default:
				t.Fatalf("profile %q: bad event type %q", p.Name, e.Type)
			}
			if depth < 0 {
				t.Fatalf("profile %q: close before open", p.Name)
			}
		}
		if depth != 0 {
			t.Errorf("profile %q: %d unclosed frames", p.Name, depth)
		}
		if p.EndValue < last {
			t.Errorf("profile %q: endValue %d before last event %d", p.Name, p.EndValue, last)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := StairStepTrace("zone", 15, []int{5}, time.Millisecond, 0, base)
	events = append(events, seqTrace(barrierRegionEvents("mix", base.Add(time.Second)))...)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace output is not valid JSON: %v", err)
	}
	var spans, instants, meta int
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			if e.Dur < 0 || e.Ts < 0 {
				t.Errorf("span %q has negative ts/dur", e.Name)
			}
		case "i":
			instants++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	// P=5 stair-step region: 1 region span + 5 chunks; barrier region:
	// 1 region + 4 chunks + 2 barrier waits (the 0-duration wait is
	// still emitted). Instants: 1 grant.
	if spans != 13 {
		t.Errorf("spans = %d, want 13", spans)
	}
	if instants != 1 {
		t.Errorf("instants = %d, want 1 (the grant)", instants)
	}
	if meta < 2 {
		t.Errorf("metadata events = %d, want process + thread names", meta)
	}
}

func TestDiff(t *testing.T) {
	good := Analyze(StairStepTrace("zone", 15, []int{8}, time.Millisecond, 0, base), Config{})
	if deltas := Diff(good, good, 1); len(deltas) != 0 {
		t.Errorf("self-diff not empty: %v", deltas)
	}

	// Degrade: same loop at P=5 (speedup 5.0 vs 7.5) and too little
	// work for the sync budget.
	bad := Analyze(StairStepTrace("zone", 15, []int{5}, time.Microsecond, 0, base), Config{})
	deltas := Diff(good, bad, 1)
	found := map[string]Severity{}
	for _, d := range deltas {
		found[d.Field] = d.Severity
	}
	if found["achieved_speedup"] != SevRegression {
		t.Errorf("no achieved_speedup regression in %v", deltas)
	}
	if found["budget.pass"] != SevRegression {
		t.Errorf("no budget.pass regression in %v", deltas)
	}
	// And the reverse diff reports improvements, not regressions.
	for _, d := range Diff(bad, good, 1) {
		if d.Severity == SevRegression && (d.Field == "achieved_speedup" || d.Field == "budget.pass") {
			t.Errorf("reverse diff reports regression: %v", d)
		}
	}

	// Loop rename shows up as structural info.
	renamed := Analyze(StairStepTrace("other", 15, []int{8}, time.Millisecond, 0, base), Config{})
	var appeared, vanished bool
	for _, d := range Diff(good, renamed, 1) {
		if d.Field == "present" && d.Loop == "other" {
			appeared = true
		}
		if d.Field == "present" && d.Loop == "zone" {
			vanished = true
		}
	}
	if !appeared || !vanished {
		t.Error("loop rename not reported as present/absent info deltas")
	}

	// A truncated new report carries an info delta.
	truncated := *bad
	truncated.Truncated = true
	truncated.DroppedEvents = 7
	var flagged bool
	for _, d := range Diff(good, &truncated, 1) {
		if d.Field == "truncated" {
			flagged = true
		}
	}
	if !flagged {
		t.Error("truncation not flagged by diff")
	}
}
