package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Enable() // must not panic
	tr.Disable()
	tr.Emit(Event{Kind: KindGrant})
	tr.Reset()
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events() = %v, want nil", got)
	}
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer reports nonzero accounting")
	}
	if !tr.Now().IsZero() {
		t.Error("nil tracer Now() is nonzero")
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.Emit(Event{Kind: KindRegionBegin})
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.Len())
	}
}

func TestEmitAllocatesNothing(t *testing.T) {
	tr := NewTracer(1024, nil)
	tr.Enable()
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindBarrier, Worker: 2, Dur: time.Microsecond, At: time.Unix(0, 1)})
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %v objects per call, want 0", allocs)
	}
}

func TestRingBufferOverwritesOldest(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindChunk, A: int64(i), At: time.Unix(int64(i), 0)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := int64(6 + i); e.A != want || e.Seq != uint64(want) {
			t.Errorf("event %d: A=%d Seq=%d, want both %d (oldest-first order)", i, e.A, e.Seq, want)
		}
	}
}

func TestResetClearsBuffer(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.Enable()
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Kind: KindChunk, At: time.Unix(1, 0)})
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d, want 0, 0", tr.Len(), tr.Total())
	}
	tr.Emit(Event{Kind: KindGrant, At: time.Unix(2, 0)})
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Seq != 0 {
		t.Fatalf("after Reset+Emit: events %+v, want one event with Seq 0", ev)
	}
}

func TestVirtualClockTimestamps(t *testing.T) {
	start := time.Date(2001, 4, 1, 0, 0, 0, 0, time.UTC)
	vc := simclock.NewVirtual(start)
	tr := NewTracer(8, vc)
	tr.Enable()
	tr.Emit(Event{Kind: KindGrant})
	vc.Advance(90 * time.Second)
	tr.Emit(Event{Kind: KindResize})
	ev := tr.Events()
	if !ev[0].At.Equal(start) {
		t.Errorf("first event at %v, want virtual start %v", ev[0].At, start)
	}
	if want := start.Add(90 * time.Second); !ev[1].At.Equal(want) {
		t.Errorf("second event at %v, want %v", ev[1].At, want)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8, simclock.NewVirtual(time.Unix(1000, 0).UTC()))
	tr.Enable()
	tr.Emit(Event{Kind: KindGrant, Name: "f3d", Worker: -1, A: 4, B: 15})
	tr.Emit(Event{Kind: KindRegionEnd, Name: "f3d", Worker: -1, Dur: 1500 * time.Nanosecond, A: 4})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec["kind"] != "grant" || rec["name"] != "f3d" || rec["a"] != float64(4) || rec["b"] != float64(15) {
		t.Errorf("grant line decoded to %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if rec["kind"] != "region_end" || rec["dur_ns"] != float64(1500) {
		t.Errorf("region_end line decoded to %v", rec)
	}

	// Every line must scan independently (the JSONL contract).
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Errorf("line %q: %v", sc.Text(), err)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindRegionBegin: "region_begin",
		KindRegionEnd:   "region_end",
		KindBarrier:     "barrier",
		KindChunk:       "chunk",
		KindGrant:       "grant",
		KindResize:      "resize",
		KindPreempt:     "preempt",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind prints %q", got)
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(256, nil)
	tr.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Kind: KindChunk, Worker: g, A: int64(i), At: time.Unix(0, 1)})
				if i%100 == 0 {
					tr.Events()
					tr.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", tr.Total())
	}
	ev := tr.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("events out of order: Seq %d follows %d", ev[i].Seq, ev[i-1].Seq)
		}
	}
}
