package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Enable() // must not panic
	tr.Disable()
	tr.Emit(Event{Kind: KindGrant})
	tr.Reset()
	if got := tr.Events(); got != nil {
		t.Errorf("nil tracer Events() = %v, want nil", got)
	}
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 {
		t.Error("nil tracer reports nonzero accounting")
	}
	if !tr.Now().IsZero() {
		t.Error("nil tracer Now() is nonzero")
	}
}

func TestDisabledTracerRecordsNothing(t *testing.T) {
	tr := NewTracer(8, nil)
	tr.Emit(Event{Kind: KindRegionBegin})
	if tr.Len() != 0 {
		t.Fatalf("disabled tracer recorded %d events", tr.Len())
	}
}

func TestEmitAllocatesNothing(t *testing.T) {
	tr := NewTracer(1024, nil)
	tr.Enable()
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindBarrier, Worker: 2, Dur: time.Microsecond, At: time.Unix(0, 1)})
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %v objects per call, want 0", allocs)
	}
}

func TestRingBufferOverwritesOldest(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.Enable()
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Kind: KindChunk, A: int64(i), At: time.Unix(int64(i), 0)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	ev := tr.Events()
	for i, e := range ev {
		if want := int64(6 + i); e.A != want || e.Seq != uint64(want) {
			t.Errorf("event %d: A=%d Seq=%d, want both %d (oldest-first order)", i, e.A, e.Seq, want)
		}
	}
}

func TestResetClearsBuffer(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.Enable()
	for i := 0; i < 6; i++ {
		tr.Emit(Event{Kind: KindChunk, At: time.Unix(1, 0)})
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Total() != 0 {
		t.Fatalf("after Reset: Len=%d Total=%d, want 0, 0", tr.Len(), tr.Total())
	}
	tr.Emit(Event{Kind: KindGrant, At: time.Unix(2, 0)})
	ev := tr.Events()
	if len(ev) != 1 || ev[0].Seq != 0 {
		t.Fatalf("after Reset+Emit: events %+v, want one event with Seq 0", ev)
	}
}

func TestVirtualClockTimestamps(t *testing.T) {
	start := time.Date(2001, 4, 1, 0, 0, 0, 0, time.UTC)
	vc := simclock.NewVirtual(start)
	tr := NewTracer(8, vc)
	tr.Enable()
	tr.Emit(Event{Kind: KindGrant})
	vc.Advance(90 * time.Second)
	tr.Emit(Event{Kind: KindResize})
	ev := tr.Events()
	if !ev[0].At.Equal(start) {
		t.Errorf("first event at %v, want virtual start %v", ev[0].At, start)
	}
	if want := start.Add(90 * time.Second); !ev[1].At.Equal(want) {
		t.Errorf("second event at %v, want %v", ev[1].At, want)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(8, simclock.NewVirtual(time.Unix(1000, 0).UTC()))
	tr.Enable()
	tr.Emit(Event{Kind: KindGrant, Name: "f3d", Worker: -1, A: 4, B: 15})
	tr.Emit(Event{Kind: KindRegionEnd, Name: "f3d", Worker: -1, Dur: 1500 * time.Nanosecond, A: 4})

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec["kind"] != "grant" || rec["name"] != "f3d" || rec["a"] != float64(4) || rec["b"] != float64(15) {
		t.Errorf("grant line decoded to %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if rec["kind"] != "region_end" || rec["dur_ns"] != float64(1500) {
		t.Errorf("region_end line decoded to %v", rec)
	}

	// Every line must scan independently (the JSONL contract).
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Errorf("line %q: %v", sc.Text(), err)
		}
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindRegionBegin:  "region_begin",
		KindRegionEnd:    "region_end",
		KindBarrier:      "barrier",
		KindChunk:        "chunk",
		KindGrant:        "grant",
		KindResize:       "resize",
		KindPreempt:      "preempt",
		KindTraceDropped: "trace_dropped",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
		back, err := ParseKind(s)
		if err != nil || back != k {
			t.Errorf("ParseKind(%q) = %v, %v, want %v", s, back, err, k)
		}
	}
	if got := Kind(200).String(); !strings.Contains(got, "200") {
		t.Errorf("unknown kind prints %q", got)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
}

func TestEventsSinceCursor(t *testing.T) {
	tr := NewTracer(4, nil)
	tr.Enable()
	for i := 0; i < 3; i++ {
		tr.Emit(Event{Kind: KindChunk, A: int64(i), At: time.Unix(int64(i), 0)})
	}

	// No drops yet: a cursor inside the window returns the tail.
	ev, dropped := tr.EventsSince(1)
	if dropped != 0 || len(ev) != 2 || ev[0].Seq != 1 {
		t.Fatalf("EventsSince(1) = %d events (dropped %d), first Seq %d; want 2, 0, 1", len(ev), dropped, ev[0].Seq)
	}
	// A cursor past the end returns nothing.
	if ev, dropped := tr.EventsSince(10); len(ev) != 0 || dropped != 0 {
		t.Fatalf("EventsSince(10) = %d events, dropped %d; want 0, 0", len(ev), dropped)
	}

	// Wrap the ring: seqs 0..5 are gone (capacity 4, 10 events).
	for i := 3; i < 10; i++ {
		tr.Emit(Event{Kind: KindChunk, A: int64(i), At: time.Unix(int64(i), 0)})
	}
	ev, dropped = tr.EventsSince(0)
	if dropped != 6 {
		t.Fatalf("dropped = %d, want 6", dropped)
	}
	if len(ev) != 5 || ev[0].Kind != KindTraceDropped || ev[0].A != 6 || ev[0].Seq != 0 {
		t.Fatalf("EventsSince(0) after wrap: %+v; want leading trace_dropped marker with A=6", ev)
	}
	if ev[1].Seq != 6 || ev[len(ev)-1].Seq != 9 {
		t.Fatalf("surviving window = [%d, %d], want [6, 9]", ev[1].Seq, ev[len(ev)-1].Seq)
	}
	// Resuming from a live cursor sees no marker.
	if ev, dropped := tr.EventsSince(8); dropped != 0 || len(ev) != 2 || ev[0].Kind == KindTraceDropped {
		t.Fatalf("EventsSince(8) = %+v (dropped %d), want the 2 tail events and no marker", ev, dropped)
	}
}

func TestWriteJSONLSinceMarksDrops(t *testing.T) {
	tr := NewTracer(2, nil)
	tr.Enable()
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Kind: KindChunk, A: int64(i), At: time.Unix(int64(i), 0)})
	}
	var buf bytes.Buffer
	next, dropped, err := tr.WriteJSONLSince(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 || next != 5 {
		t.Fatalf("next=%d dropped=%d, want 5, 3", next, dropped)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines, want 3 (marker + 2 events): %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "trace_dropped" || first["a"] != float64(3) {
		t.Errorf("first line %v, want trace_dropped with a=3", first)
	}
	// Nothing new: cursor is stable, no marker re-sent.
	buf.Reset()
	next2, dropped2, err := tr.WriteJSONLSince(&buf, next)
	if err != nil || next2 != next || dropped2 != 0 || buf.Len() != 0 {
		t.Errorf("idle follow-up write: next=%d dropped=%d len=%d err=%v", next2, dropped2, buf.Len(), err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16, simclock.NewVirtual(time.Unix(2000, 0).UTC()))
	tr.Enable()
	in := []Event{
		{Kind: KindGrant, Name: "f3d", Worker: -1, A: 4, B: 15},
		{Kind: KindChunk, Name: "f3d", Worker: 2, Dur: 1500 * time.Nanosecond, A: 0, B: 8},
		{Kind: KindResize, Name: "f3d", Worker: -1, A: 4, B: 8, C: 15},
		{Kind: KindBarrier, Name: "f3d", Worker: 1, Dur: 40 * time.Nanosecond},
	}
	for _, e := range in {
		tr.Emit(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events()
	if len(got) != len(want) {
		t.Fatalf("round trip returned %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].At.Equal(want[i].At) {
			t.Errorf("event %d At = %v, want %v", i, got[i].At, want[i].At)
		}
		got[i].At, want[i].At = time.Time{}, time.Time{}
		if got[i] != want[i] {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, got[i], want[i])
		}
	}

	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"nope\",\"at\":\"2001-01-01T00:00:00Z\"}\n")); err == nil {
		t.Error("ReadJSONL accepted an unknown kind")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("ReadJSONL accepted a malformed line")
	}
}

// TestTracerConcurrentEnableDisableEmitEvents hammers the tracer's
// whole control surface from many goroutines at once; with -race this
// is the proof Enable/Disable/Emit/Events/EventsSince/Reset share no
// unsynchronized state.
func TestTracerConcurrentEnableDisableEmitEvents(t *testing.T) {
	tr := NewTracer(128, nil)
	tr.Enable()
	stop := make(chan struct{})

	var emitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		emitters.Add(1)
		go func(g int) {
			defer emitters.Done()
			for i := 0; i < 2000; i++ {
				tr.Emit(Event{Kind: KindChunk, Worker: g, A: int64(i), At: time.Unix(0, 1)})
			}
		}(g)
	}

	var control sync.WaitGroup
	control.Add(2)
	go func() { // toggler
		defer control.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				tr.Disable()
			} else {
				tr.Enable()
			}
		}
	}()
	go func() { // reader with a live cursor, occasionally resetting
		defer control.Done()
		var cursor uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ev, _ := tr.EventsSince(cursor)
			for _, e := range ev {
				if e.Kind != KindTraceDropped {
					cursor = e.Seq + 1
				}
			}
			tr.Events()
			tr.Len()
			tr.Dropped()
			if i%50 == 49 {
				tr.Reset()
				cursor = 0
			}
		}
	}()

	emitters.Wait()
	close(stop)
	control.Wait()

	// The final state must still be internally consistent.
	ev := tr.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("events out of order: Seq %d follows %d", ev[i].Seq, ev[i-1].Seq)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(256, nil)
	tr.Enable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Emit(Event{Kind: KindChunk, Worker: g, A: int64(i), At: time.Unix(0, 1)})
				if i%100 == 0 {
					tr.Events()
					tr.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if tr.Total() != 4000 {
		t.Fatalf("Total = %d, want 4000", tr.Total())
	}
	ev := tr.Events()
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("events out of order: Seq %d follows %d", ev[i].Seq, ev[i-1].Seq)
		}
	}
}
