// Package obs is the observability substrate of the runtime stack: a
// low-overhead synchronization-event tracer and a Prometheus-text
// metrics registry.
//
// The paper's method is measure-first — profile the loops, count the
// synchronization events, rank by cost, then parallelize (§4's
// prof/Perfex workflow). Package obs makes that measurement available
// at runtime instead of only in offline benchmarks: parloop teams
// emit region/barrier/chunk span events, the scheduler emits
// grant/resize/preempt events, and both feed counters and histograms
// that cmd/f3dd exposes over HTTP.
//
// The tracer is designed to be left attached in production:
//
//   - Disabled, every instrumentation site costs one nil check plus
//     one atomic load and allocates nothing (Event is a value type and
//     no timestamp is read).
//   - Enabled, events go into a fixed-capacity ring buffer (oldest
//     overwritten) under a single mutex; export is JSONL.
//   - Timestamps come from a simclock.Clock, so traces taken under the
//     virtual clock of the deterministic test harness carry simulated
//     time, exactly like the scheduler's own accounting.
//
// All Tracer methods are safe on a nil receiver (a nil tracer is
// permanently disabled), so instrumented code never needs a nil guard.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/simclock"
)

// Kind classifies a trace event.
type Kind uint8

const (
	// KindRegionBegin marks the fork of a parallel region. A carries
	// the team size.
	KindRegionBegin Kind = iota
	// KindRegionEnd marks the join of a parallel region; Dur spans the
	// whole fork-join. A carries the team size.
	KindRegionEnd
	// KindBarrier is one worker's wait at a mid-region barrier; Dur is
	// the time that worker spent parked.
	KindBarrier
	// KindChunk is one worker's execution of one loop chunk; A and B
	// carry the chunk's [lo, hi) bounds.
	KindChunk
	// KindGrant is a scheduler grant: a job received processors. A
	// carries the granted processor count, B the job's requested
	// parallelism M.
	KindGrant
	// KindResize is an applied grant resize (at a job checkpoint). A
	// carries the old grant, B the new.
	KindResize
	// KindPreempt is a shrink request issued to a running job so
	// queued work can be admitted. A carries the victim's current
	// grant, B the requested lower plateau.
	KindPreempt
	// KindTraceDropped is a synthetic marker injected into cursor
	// reads and JSONL exports when ring-buffer wraparound dropped
	// events from the requested window. A carries the number of
	// dropped events; Seq is the sequence the window asked for.
	// Consumers (the analyzer in particular) use it to flag reports
	// built from truncated traces instead of silently mis-attributing
	// time.
	KindTraceDropped
	// KindHeartbeat is a cluster worker heartbeat observed by the
	// coordinator. Name carries the worker id; A is 1 when the
	// heartbeat revived a worker previously marked lost.
	KindHeartbeat
	// KindShardStep is one lockstep time step of a sharded solve; Dur
	// spans the slowest worker's step. A carries the step index, B the
	// number of live shards.
	KindShardStep
	// KindExchange is one boundary-plane exchange round between
	// lockstep steps. A carries the step index, B the number of planes
	// routed.
	KindExchange
	// KindFailover is a re-shard after a worker loss. Name carries the
	// lost worker's id, A the checkpoint step rolled back to, B the
	// number of surviving workers. The coordinator additionally emits
	// one span-shaped failover event per failed round (Name = job,
	// Dur = the failed round plus the re-shard) so the cluster
	// analyzer can charge failover time to the step that replays.
	KindFailover
	// KindStepRPC is the coordinator-side span of one worker's
	// lockstep StepShard RPC: Node carries the worker id, Dur the
	// round-trip as the coordinator's clock saw it, A the step index,
	// B the number of live shards. The per-step straggler is the
	// worker whose StepRPC span is longest.
	KindStepRPC
	// KindCollect is one collector pull of a worker's trace ring:
	// Name carries the worker id, Dur the pull duration, A the number
	// of events fetched, B the number dropped to ring wraparound.
	KindCollect
	// KindClockSync is one collector clock-offset estimate for a
	// worker: Name carries the worker id, A the estimated offset in
	// nanoseconds (worker clock minus coordinator clock), B the probe
	// round-trip time in nanoseconds.
	KindClockSync

	// kindCount sentinels the enum: every Kind below it must have a
	// String mapping and an entry in kinds, which the exhaustive
	// round-trip test enforces.
	kindCount
)

// String returns the snake_case name used in JSONL export.
func (k Kind) String() string {
	switch k {
	case KindRegionBegin:
		return "region_begin"
	case KindRegionEnd:
		return "region_end"
	case KindBarrier:
		return "barrier"
	case KindChunk:
		return "chunk"
	case KindGrant:
		return "grant"
	case KindResize:
		return "resize"
	case KindPreempt:
		return "preempt"
	case KindTraceDropped:
		return "trace_dropped"
	case KindHeartbeat:
		return "heartbeat"
	case KindShardStep:
		return "shard_step"
	case KindExchange:
		return "exchange"
	case KindFailover:
		return "failover"
	case KindStepRPC:
		return "step_rpc"
	case KindCollect:
		return "collect"
	case KindClockSync:
		return "clock_sync"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// kinds lists every named Kind, for ParseKind.
var kinds = []Kind{
	KindRegionBegin, KindRegionEnd, KindBarrier, KindChunk,
	KindGrant, KindResize, KindPreempt, KindTraceDropped,
	KindHeartbeat, KindShardStep, KindExchange, KindFailover,
	KindStepRPC, KindCollect, KindClockSync,
}

// ParseKind inverts Kind.String, so JSONL traces can be read back.
func ParseKind(s string) (Kind, error) {
	for _, k := range kinds {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("obs: unknown event kind %q", s)
}

// Event is one trace record. It is a plain value: emitting one
// allocates nothing beyond the ring slot it is copied into.
type Event struct {
	// Seq is the tracer-assigned sequence number (total events emitted
	// before this one, including any since overwritten).
	Seq uint64
	// At is the event timestamp. The zero value is replaced with the
	// tracer clock's current time at Emit.
	At time.Time
	// Kind classifies the event.
	Kind Kind
	// Name labels the source: the job name for team and scheduler
	// events, empty for an unlabeled team.
	Name string
	// Worker is the emitting worker's index, or -1 for team- and
	// scheduler-level events.
	Worker int
	// Node identifies the machine (cluster worker daemon or
	// coordinator) that emitted the event. Empty for single-node
	// traces; the fleet collector tags pulled events with the worker
	// id so a merged timeline stays attributable.
	Node string
	// Trace is the coordinator-assigned solve id correlating events
	// across nodes: every shard RPC carries it, so worker-side spans
	// join the originating cluster solve. Empty outside cluster
	// solves.
	Trace string
	// Epoch is the lockstep step epoch within Trace (the step index
	// the event belongs to). Meaningful only when Trace is set.
	Epoch int64
	// Dur is the span duration for span-shaped kinds (region end,
	// barrier, chunk); zero for instantaneous events.
	Dur time.Duration
	// A, B and C are kind-specific arguments; see the Kind constants.
	// C carries the job's requested parallelism M on resize and
	// preempt events, so occupancy analysis can bind a resize to its
	// loop even when the original grant event has been overwritten.
	A, B, C int64
}

// Tracer records events into a fixed-capacity ring buffer.
type Tracer struct {
	enabled atomic.Bool
	clock   simclock.Clock

	mu  sync.Mutex
	buf []Event // ring storage, len(buf) == capacity
	n   uint64  // total events ever emitted
}

// NewTracer creates a disabled tracer holding up to capacity events
// (capacity < 1 is clamped to 1). clock stamps events; nil defaults to
// the wall clock.
func NewTracer(capacity int, clock simclock.Clock) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if clock == nil {
		clock = simclock.Real{}
	}
	return &Tracer{clock: clock, buf: make([]Event, capacity)}
}

// Enabled reports whether the tracer is recording. A nil tracer is
// permanently disabled. Instrumented code checks this before reading
// timestamps or constructing events, which is what makes the disabled
// path allocation-free.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// Enable starts recording.
func (t *Tracer) Enable() {
	if t != nil {
		t.enabled.Store(true)
	}
}

// Disable stops recording. Events emitted by sites that passed their
// Enabled check just before the flip may still land; the ring simply
// records them.
func (t *Tracer) Disable() {
	if t != nil {
		t.enabled.Store(false)
	}
}

// Now reads the tracer's clock (zero time on a nil tracer). Span
// instrumentation uses it so virtual-clock tests see simulated time.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.clock.Now()
}

// Emit records e if the tracer is enabled, stamping e.At with the
// tracer clock when the caller left it zero and assigning e.Seq.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	if e.At.IsZero() {
		e.At = t.clock.Now()
	}
	t.mu.Lock()
	e.Seq = t.n
	t.buf[t.n%uint64(len(t.buf))] = e
	t.n++
	t.mu.Unlock()
}

// Len returns the number of events currently held (at most the
// capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Total returns the number of events ever emitted, including those
// already overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns how many events were overwritten before export.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Reset discards all recorded events and restarts the sequence
// counter, giving profiling windows a clean buffer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.buf {
		t.buf[i] = Event{}
	}
	t.n = 0
}

// Events returns the recorded events, oldest first. It is the raw
// snapshot: no drop marker is synthesized (use EventsSince for cursor
// semantics and truncation marking).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// EventsSince returns the held events with Seq >= since, oldest first,
// plus the number of matching events that were already overwritten by
// ring wraparound before this read. When dropped > 0 the returned
// slice begins with a synthetic KindTraceDropped marker (Seq = since,
// A = dropped, stamped with the first surviving event's timestamp) so
// downstream consumers see the truncation in-band.
//
// Cursor protocol: a client that has processed events up to sequence s
// calls EventsSince(s+1); the next cursor is lastEvent.Seq+1.
func (t *Tracer) EventsSince(since uint64) (events []Event, dropped uint64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	snap := t.snapshotLocked()
	t.mu.Unlock()
	// snap holds the ring's live window [first, t.n); everything in
	// [since, first) is gone.
	if len(snap) == 0 {
		return nil, 0
	}
	first := snap[0].Seq
	if since > first {
		// Skip events the caller has already seen.
		skip := since - first
		if skip >= uint64(len(snap)) {
			return nil, 0
		}
		return snap[skip:], 0
	}
	dropped = first - since
	if dropped == 0 {
		return snap, 0
	}
	out := make([]Event, 0, len(snap)+1)
	out = append(out, DropMarker(since, dropped, snap[0].At))
	out = append(out, snap...)
	return out, dropped
}

// NextCursor returns the cursor to resume from after processing a
// batch returned by EventsSince(since): one past the last non-marker
// event's Seq, or since unchanged when the batch held none.
func NextCursor(events []Event, since uint64) uint64 {
	for i := len(events) - 1; i >= 0; i-- {
		if events[i].Kind != KindTraceDropped {
			return events[i].Seq + 1
		}
	}
	return since
}

// DropMarker builds the synthetic trace_dropped event injected when a
// read window lost events to ring wraparound: Seq is the sequence the
// window started at, A the number of events dropped.
func DropMarker(since, dropped uint64, at time.Time) Event {
	return Event{Seq: since, At: at, Kind: KindTraceDropped, Worker: -1, A: int64(dropped)}
}

// snapshotLocked copies the live ring contents in order; caller holds
// t.mu.
func (t *Tracer) snapshotLocked() []Event {
	capacity := uint64(len(t.buf))
	if t.n == 0 {
		return nil
	}
	if t.n <= capacity {
		out := make([]Event, t.n)
		copy(out, t.buf[:t.n])
		return out
	}
	start := t.n % capacity
	out := make([]Event, 0, capacity)
	out = append(out, t.buf[start:]...)
	out = append(out, t.buf[:start]...)
	return out
}

// eventJSON is the JSONL wire form of an Event.
type eventJSON struct {
	Seq    uint64 `json:"seq"`
	At     string `json:"at"`
	Kind   string `json:"kind"`
	Name   string `json:"name,omitempty"`
	Worker int    `json:"worker"`
	Node   string `json:"node,omitempty"`
	Trace  string `json:"trace,omitempty"`
	Epoch  int64  `json:"epoch,omitempty"`
	DurNs  int64  `json:"dur_ns,omitempty"`
	A      int64  `json:"a,omitempty"`
	B      int64  `json:"b,omitempty"`
	C      int64  `json:"c,omitempty"`
}

// MarshalJSON encodes the event in the JSONL wire form (snake_case
// kind, RFC3339Nano timestamp, duration in nanoseconds).
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Seq:    e.Seq,
		At:     e.At.Format(time.RFC3339Nano),
		Kind:   e.Kind.String(),
		Name:   e.Name,
		Worker: e.Worker,
		Node:   e.Node,
		Trace:  e.Trace,
		Epoch:  e.Epoch,
		DurNs:  e.Dur.Nanoseconds(),
		A:      e.A,
		B:      e.B,
		C:      e.C,
	})
}

// UnmarshalJSON decodes the JSONL wire form back into an Event, so
// exported traces can be re-analyzed offline (cmd/tracetool).
func (e *Event) UnmarshalJSON(b []byte) error {
	var j eventJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	k, err := ParseKind(j.Kind)
	if err != nil {
		return err
	}
	at, err := time.Parse(time.RFC3339Nano, j.At)
	if err != nil {
		return fmt.Errorf("obs: event timestamp %q: %w", j.At, err)
	}
	*e = Event{
		Seq:    j.Seq,
		At:     at,
		Kind:   k,
		Name:   j.Name,
		Worker: j.Worker,
		Node:   j.Node,
		Trace:  j.Trace,
		Epoch:  j.Epoch,
		Dur:    time.Duration(j.DurNs),
		A:      j.A,
		B:      j.B,
		C:      j.C,
	}
	return nil
}

// WriteJSONL writes the recorded events oldest-first, one JSON object
// per line (the GET /trace wire format). If ring wraparound has
// dropped events, the first line is a synthetic trace_dropped marker
// carrying the count, so the export is self-describing about
// truncation.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	_, _, err := t.WriteJSONLSince(w, 0)
	return err
}

// WriteJSONLSince writes the events with Seq >= since as JSONL,
// prefixed with a trace_dropped marker when the window lost events to
// wraparound. It returns the next cursor (one past the last written
// event's Seq; since again when nothing was written) and the dropped
// count, which the daemon surfaces in the X-Trace-Dropped header.
func (t *Tracer) WriteJSONLSince(w io.Writer, since uint64) (next uint64, dropped uint64, err error) {
	events, dropped := t.EventsSince(since)
	next = since
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return next, dropped, err
		}
		if e.Kind != KindTraceDropped {
			next = e.Seq + 1
		}
	}
	return next, dropped, nil
}

// WriteEventsJSONL writes an already-collected event slice as JSONL
// (the WriteJSONL wire format) — the export path for merged
// multi-node timelines that no single tracer ring holds.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL parses a JSONL trace (the WriteJSONL format) back into
// events. Blank lines are skipped; any malformed line is an error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Event
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return out, nil
}
