package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are
// lock-free and safe for concurrent use, which is what lets the
// scheduler bump counters from any goroutine and the /metrics handler
// read them without touching the scheduler mutex.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down, stored as float64 bits
// behind one atomic word.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (atomically, via CAS).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: bounds are inclusive upper edges, with an implicit +Inf
// bucket. Observation is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered entry. Exactly one of the typed fields is
// set.
type metric struct {
	name    string // full name, possibly with a {label="v"} block
	help    string
	ctr     *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

func (m *metric) typeName() string {
	switch {
	case m.ctr != nil:
		return "counter"
	case m.hist != nil:
		return "histogram"
	default:
		return "gauge"
	}
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Registration is idempotent for counters, gauges
// and histograms: asking for an existing name returns the existing
// metric (the type must match). Metric names may carry a constant
// label block, e.g. "sched_jobs_total{state=\"done\"}"; names sharing
// a family (the part before '{') share one HELP/TYPE header.
type Registry struct {
	mu      sync.Mutex
	order   []string
	entries map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*metric)}
}

// Counter returns the counter registered under name, creating it if
// needed. It panics if name is registered as a different metric type.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, func() *metric { return &metric{ctr: &Counter{}} })
	if m.ctr == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return m.ctr
}

// Gauge returns the gauge registered under name, creating it if
// needed. It panics if name is registered as a different metric type.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, func() *metric { return &metric{gauge: &Gauge{}} })
	if m.gauge == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return m.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time (used for values that live behind another component's lock,
// like the scheduler's queue depth). Re-registering the same name
// replaces the function, so rebuilding a component against a shared
// registry is safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.entries[name]; ok {
		if m.gaugeFn == nil {
			panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
		}
		m.gaugeFn = fn
		return
	}
	r.entries[name] = &metric{name: name, help: help, gaugeFn: fn}
	r.order = append(r.order, name)
}

// Histogram returns the histogram registered under name, creating it
// with the given inclusive upper bucket bounds (sorted ascending; an
// +Inf bucket is implicit). It panics if name is registered as a
// different metric type.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, help, func() *metric {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		sort.Float64s(b)
		return &metric{hist: &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}}
	})
	if m.hist == nil {
		panic(fmt.Sprintf("obs: metric %q already registered as %s", name, m.typeName()))
	}
	return m.hist
}

func (r *Registry) register(name, help string, mk func() *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.entries[name]; ok {
		return m
	}
	m := mk()
	m.name, m.help = name, help
	r.entries[name] = m
	r.order = append(r.order, name)
	return m
}

// family splits a metric name into its family (HELP/TYPE unit) and the
// constant label block without braces ("" when unlabeled).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// joinLabels merges a constant label block with an extra label.
func joinLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return "{" + labels + "," + extra + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in registration
// order in the Prometheus text exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool)
	for _, name := range r.order {
		m := r.entries[name]
		fam, labels := family(name)
		if !seen[fam] {
			seen[fam] = true
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, m.typeName()); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.ctr != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", name, m.ctr.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(m.gauge.Value()))
		case m.gaugeFn != nil:
			_, err = fmt.Fprintf(w, "%s %s\n", name, formatFloat(m.gaugeFn()))
		case m.hist != nil:
			err = writeHistogram(w, fam, labels, m.hist)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram family: cumulative _bucket
// lines with le labels, then _sum and _count.
func writeHistogram(w io.Writer, fam, labels string, h *Histogram) error {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		lbl := joinLabels(labels, `le="`+formatFloat(bound)+`"`)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, lbl, cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", fam, joinLabels(labels, `le="+Inf"`), cum); err != nil {
		return err
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, suffix, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, suffix, h.Count())
	return err
}
