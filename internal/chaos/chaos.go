// Package chaos is a seeded fault injector and workload generator for
// the scheduler stack. It turns the paper's safety claim — loop-level
// parallelization must not change program behavior — into a testable
// obligation for the serving layer: whatever faults a job suffers
// (worker panics mid-region, hangs past its deadline, slow indexes
// stalling a loop, floods of submissions), the scheduler's invariants
// must hold: the processor budget is conserved, every grant sits on a
// stair-step plateau, no job is lost or finished twice, and drain
// still terminates.
//
// Everything is deterministic from a seed: the same seed produces the
// same job mix with the same injected faults, and — run on a
// simclock.Virtual — the same terminal state for every job, so a soak
// failure reproduces exactly.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/adapt"
	"repro/internal/parloop"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// Kind enumerates the injectable fault kinds.
type Kind int

const (
	// KindNone: a healthy job.
	KindNone Kind = iota
	// KindPanicWorker: one worker panics inside a parallel region at
	// the chosen step, with teammates committed to a barrier — the
	// worst case for fork-join bookkeeping.
	KindPanicWorker
	// KindJobError: Run returns an error at the chosen step.
	KindJobError
	// KindHang: the job stops making progress at the chosen step and
	// blocks until canceled — only a run deadline gets rid of it.
	KindHang
	// KindStall: one index of one loop takes a long (virtual) time,
	// holding the region open until the clock advances — the
	// slow-worker case the stair-step model says hurts the most.
	KindStall
	// KindRace: the job runs a loop-carried recurrence parallelized as
	// if it were independent — the C$doacross misuse the paper warns
	// against. The accesses go through a lock-synchronized Mem, so the
	// process stays memory-safe and the runtime race detector stays
	// quiet; the job completes (StateDone) with possibly wrong
	// numerics. Pointing internal/check's dependence Tracker at the
	// same RacyStep flags the dependence on every execution — the soak
	// proves the scheduler happily runs such jobs, and the checker is
	// the tool that finds them.
	KindRace
	// KindNodeLoss: a cluster worker dies mid-solve — every call to it
	// fails from the chosen lockstep step on. The sharded-solve engine
	// must fail over: re-plan onto the survivors, roll back to the
	// checkpoint and reproduce the residual history bitwise.
	KindNodeLoss
	// KindSlowLink: one worker's transport gains a fixed (virtual)
	// latency for the whole solve. Lockstep makes every step as slow
	// as its slowest shard — the cluster-scale version of the stall —
	// but the numbers must not change.
	KindSlowLink
	// KindCostShift: the per-iteration cost surface of an adaptive
	// loop shifts mid-run. The job runs a real adapt.Controller
	// against a deterministic cost model that jumps at the fault step;
	// the controller must converge, detect the drift, and re-converge
	// to a legal configuration — anything else fails the job, which
	// the soak's expected-state check then catches.
	KindCostShift
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindNone:
		return "none"
	case KindPanicWorker:
		return "panic-worker"
	case KindJobError:
		return "job-error"
	case KindHang:
		return "hang"
	case KindStall:
		return "stall"
	case KindRace:
		return "race"
	case KindNodeLoss:
		return "node-loss"
	case KindSlowLink:
		return "slow-link"
	case KindCostShift:
		return "cost-shift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one planned fault: what goes wrong, at which step of the
// job, and (for in-region faults) at which iteration index.
type Fault struct {
	Kind  Kind
	Step  int // time step at which the fault fires
	Index int // loop index for panic/stall faults
}

// Profile sets the per-job probability of each fault kind; the
// remainder of the probability mass is healthy jobs. The sum must not
// exceed 1.
type Profile struct {
	PanicWorker float64
	JobError    float64
	Hang        float64
	Stall       float64
	Race        float64
	CostShift   float64
}

// FaultFraction returns the total probability of any fault.
func (p Profile) FaultFraction() float64 {
	return p.PanicWorker + p.JobError + p.Hang + p.Stall + p.Race + p.CostShift
}

func (p Profile) validate() {
	for _, v := range []float64{p.PanicWorker, p.JobError, p.Hang, p.Stall, p.Race, p.CostShift} {
		if v < 0 {
			panic(fmt.Sprintf("chaos: negative fault probability in %+v", p))
		}
	}
	if p.FaultFraction() > 1 {
		panic(fmt.Sprintf("chaos: fault probabilities sum past 1 in %+v", p))
	}
}

// Injector deals faults from a seeded stream according to a Profile.
// Two injectors with the same seed and profile deal identical
// sequences.
type Injector struct {
	rng *rand.Rand
	p   Profile
}

// NewInjector creates a seeded injector.
func NewInjector(seed int64, p Profile) *Injector {
	p.validate()
	return &Injector{rng: rand.New(rand.NewSource(seed)), p: p}
}

// Next deals the fault plan for the next job, which will run the given
// number of steps.
func (in *Injector) Next(steps int) Fault {
	if steps < 1 {
		steps = 1
	}
	u := in.rng.Float64()
	step := in.rng.Intn(steps)
	idx := in.rng.Intn(1 << 16)
	switch {
	case u < in.p.PanicWorker:
		return Fault{Kind: KindPanicWorker, Step: step, Index: idx}
	case u < in.p.PanicWorker+in.p.JobError:
		return Fault{Kind: KindJobError, Step: step, Index: idx}
	case u < in.p.PanicWorker+in.p.JobError+in.p.Hang:
		return Fault{Kind: KindHang, Step: step, Index: idx}
	case u < in.p.PanicWorker+in.p.JobError+in.p.Hang+in.p.Stall:
		return Fault{Kind: KindStall, Step: step, Index: idx}
	case u < in.p.PanicWorker+in.p.JobError+in.p.Hang+in.p.Stall+in.p.Race:
		return Fault{Kind: KindRace, Step: step, Index: idx}
	case u < in.p.FaultFraction():
		return Fault{Kind: KindCostShift, Step: step, Index: idx}
	default:
		return Fault{Kind: KindNone}
	}
}

// Spec describes one generated job: its shape plus its planned fault.
type Spec struct {
	Name  string
	M     int // loop-level parallelism
	Steps int
	Fault Fault
}

// ExpectedState returns the terminal state this spec must reach when
// run with a deadline on a virtual clock: the fault kind alone decides
// the outcome, which is what makes soak assertions deterministic.
func (s Spec) ExpectedState() sched.State {
	switch s.Fault.Kind {
	case KindPanicWorker, KindJobError:
		return sched.StateFailed
	case KindHang:
		return sched.StateTimedOut
	default:
		// KindNone, KindStall, KindRace and KindCostShift all
		// complete: a stall is only slow, a seeded race corrupts
		// numerics, not control flow — the scheduler cannot tell such
		// a job from a healthy one, which is exactly why the
		// dependence checker exists — and a cost shift is handled by
		// the adaptive controller, which fails the job (StateFailed,
		// caught here) only if it cannot re-converge.
		return sched.StateDone
	}
}

// GenConfig shapes the workload a Generator deals.
type GenConfig struct {
	// MaxM bounds job parallelism (1..MaxM). <= 0 defaults to 24.
	MaxM int
	// MaxSteps bounds time steps per job (1..MaxSteps). <= 0
	// defaults to 4.
	MaxSteps int
	// Profile is the fault mix.
	Profile Profile
	// Stall is the virtual duration of an injected stall. <= 0
	// defaults to 5s.
	Stall time.Duration
}

func (c GenConfig) withDefaults() GenConfig {
	if c.MaxM <= 0 {
		c.MaxM = 24
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 4
	}
	if c.Stall <= 0 {
		c.Stall = 5 * time.Second
	}
	return c
}

// Generator deals a deterministic stream of job Specs.
type Generator struct {
	cfg GenConfig
	rng *rand.Rand
	inj *Injector
	n   int
}

// NewGenerator creates a seeded generator. The same seed and config
// yield the same Spec sequence.
func NewGenerator(seed int64, cfg GenConfig) *Generator {
	cfg = cfg.withDefaults()
	return &Generator{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed)),
		inj: NewInjector(seed^0x5851f42d4c957f2d, cfg.Profile),
	}
}

// Next deals the next job spec.
func (g *Generator) Next() Spec {
	g.n++
	m := 1 + g.rng.Intn(g.cfg.MaxM)
	steps := 1 + g.rng.Intn(g.cfg.MaxSteps)
	f := g.inj.Next(steps)
	return Spec{
		Name:  fmt.Sprintf("chaos-%d-%s", g.n, f.Kind),
		M:     m,
		Steps: steps,
		Fault: f,
	}
}

// Job builds the schedulable job for a spec. The clock is used by
// stall faults; healthy steps run one tiny parallel region each, and
// every step checkpoints first so resizes and cancellation land.
func (s Spec) Job(clk simclock.Clock, stall time.Duration) sched.Job {
	if clk == nil {
		clk = simclock.Real{}
	}
	if stall <= 0 {
		stall = 5 * time.Second
	}
	return &job{spec: s, clk: clk, stall: stall}
}

// job executes a Spec on the granted team.
type job struct {
	spec  Spec
	clk   simclock.Clock
	stall time.Duration
}

// Name implements sched.Job.
func (j *job) Name() string { return j.spec.Name }

// Parallelism implements sched.Job.
func (j *job) Parallelism() int { return j.spec.M }

// Run implements sched.Job: Steps checkpointed time steps, with the
// planned fault fired at its step.
func (j *job) Run(g *sched.Grant) error {
	for step := 0; step < j.spec.Steps; step++ {
		if err := g.Checkpoint(); err != nil {
			return err
		}
		f := j.spec.Fault
		if f.Kind != KindNone && f.Step == step {
			if err := j.fire(g); err != nil {
				return err
			}
			continue
		}
		// Healthy step: one fork-join region of trivial work.
		g.Team().ForChunked(j.spec.M, func(lo, hi int) {
			x := 1.0
			for i := lo; i < hi; i++ {
				x += 1 / x
			}
			if x < 0 {
				panic("unreachable")
			}
		})
	}
	return nil
}

// fire executes the planned fault.
func (j *job) fire(g *sched.Grant) error {
	f := j.spec.Fault
	switch f.Kind {
	case KindPanicWorker:
		// One worker dies mid-region while its teammates commit to a
		// barrier: the panic must break the barrier (no deadlocked
		// teammates) and unwind through Run as a *parloop.PanicError,
		// which the scheduler converts into a job failure.
		g.Team().Region(func(ctx *parloop.WorkerCtx) {
			if ctx.ID() == f.Index%ctx.Workers() {
				panic(fmt.Sprintf("chaos: injected worker panic at step %d", f.Step))
			}
			ctx.Barrier()
		})
		return nil // unreachable: the region panics
	case KindJobError:
		return fmt.Errorf("chaos: injected error at step %d", f.Step)
	case KindHang:
		<-g.Context().Done()
		return g.Checkpoint()
	case KindStall:
		target := f.Index % j.spec.M
		g.Team().ForChunked(j.spec.M, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == target {
					j.clk.Sleep(j.stall)
				}
			}
		})
		return nil
	case KindRace:
		// Run the seeded recurrence on synchronized memory: the step
		// completes and the job reaches StateDone, numerics be damned.
		n := 64 + f.Index%64
		RacyStep(g.Team(), NewSyncMem(n), n)
		return nil
	case KindCostShift:
		return j.costShift(g)
	default:
		return nil
	}
}

// costShift runs the adaptive-controller episode of a KindCostShift
// fault: a real adapt.Controller optimizes a deterministic ragged cost
// surface whose per-iteration cost jumps 8x at a mid-run step. The
// fault is survived — and the job completes — only if the controller
// converges before the shift, records a drift reset when the surface
// moves, and re-converges to a configuration inside the legal envelope
// afterwards. Any other outcome returns an error, so the job lands in
// StateFailed instead of its expected StateDone and the soak's
// determinism check reports it.
func (j *job) costShift(g *sched.Grant) error {
	procs := g.Procs()
	if procs < 1 {
		procs = 1
	}
	// Scale the loop with the spec so different jobs stress different
	// plateau ladders, but keep enough iterations for raggedness.
	n := 24 * j.spec.M
	if n < 96 {
		n = 96
	}
	f := j.spec.Fault
	seed := int64(f.Index)<<8 | int64(f.Step&0xff) | 1
	cfg := adapt.Config{Procs: procs, M: n, Chunks: []int{1, 8}}
	horizon := adapt.ConvergenceHorizon(cfg)
	shift := horizon + 8
	total := shift + horizon + 16

	sim := adapt.Sim{W: adapt.Scaled(adapt.Ragged(n, 800, 3, seed), 8, shift)}
	if v, ok := j.clk.(*simclock.Virtual); ok {
		sim.Clock = v
	}
	ctrl := adapt.New(j.spec.Name, adapt.Choice{Sched: parloop.Static, Chunk: 1, Workers: procs}, cfg)
	out := adapt.RunSim(sim, ctrl, total)

	if out.ConvergedAt < 0 || out.ConvergedAt > horizon {
		return fmt.Errorf("chaos: cost-shift loop did not converge before the shift (converged at %d, horizon %d)",
			out.ConvergedAt, horizon)
	}
	if !ctrl.Converged() {
		return fmt.Errorf("chaos: cost-shift loop did not re-converge after the shift at step %d", shift)
	}
	sawDrift := false
	for _, d := range ctrl.Status().Decisions {
		if d.Action == adapt.ActionDrift {
			sawDrift = true
		}
	}
	if !sawDrift {
		return fmt.Errorf("chaos: cost-shift loop never recorded a drift reset (final %v)", out.Final)
	}
	if ch := out.Final; ch.Chunk < 1 || ch.Workers < 1 || ch.Workers > procs {
		return fmt.Errorf("chaos: cost-shift fixed point %v outside the legal envelope", ch)
	}
	return nil
}

// Mem is element-addressed float64 storage whose accesses name the
// worker performing them. chaos uses it to run seeded-race steps on
// either plain synchronized memory (SyncMem, in soaks) or a
// dependence-instrumented array (internal/check's TrackedF64
// implements Mem), where the checker flags the loop-carried dependence.
type Mem interface {
	Load(worker, i int) float64
	Store(worker, i int, v float64)
}

// SyncMem is mutex-synchronized float64 storage: the cheapest Mem that
// keeps a logically racy loop free of Go-level data races, so soaks
// run clean under the runtime race detector while still exercising the
// wrong parallelization.
type SyncMem struct {
	mu   sync.Mutex
	data []float64
}

// NewSyncMem allocates zeroed synchronized storage of length n.
func NewSyncMem(n int) *SyncMem {
	return &SyncMem{data: make([]float64, n)}
}

// Load implements Mem.
func (m *SyncMem) Load(_, i int) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.data[i]
}

// Store implements Mem.
func (m *SyncMem) Store(_, i int, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[i] = v
}

// Data returns a snapshot of the stored values.
func (m *SyncMem) Data() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]float64(nil), m.data...)
}

// RacyStep runs one step of the seeded fault's loop: the prefix
// recurrence a[i] = a[i-1] + 1 statically partitioned across the team
// as if iterations were independent. On one worker the result is
// a[i] = i+1; on several, workers read predecessors another worker
// owns without a barrier between them — the loop-carried dependence
// internal/check's Tracker flags when m is a tracked array.
func RacyStep(t *parloop.Team, m Mem, n int) {
	t.ForSchedW(n, parloop.Static, 0, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			v := 1.0
			if i > 0 {
				v += m.Load(w, i-1)
			}
			m.Store(w, i, v)
		}
	})
}
