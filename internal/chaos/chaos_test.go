package chaos

import (
	"testing"

	"repro/internal/sched"
)

// TestGeneratorDeterministic: the same seed and config deal the exact
// same job stream — names, shapes, and fault plans. This is what makes
// a soak failure reproducible from its seed alone.
func TestGeneratorDeterministic(t *testing.T) {
	cfg := GenConfig{Profile: Profile{PanicWorker: 0.1, JobError: 0.1, Hang: 0.1, Stall: 0.1}}
	a := NewGenerator(42, cfg)
	b := NewGenerator(42, cfg)
	for i := 0; i < 500; i++ {
		sa, sb := a.Next(), b.Next()
		if sa != sb {
			t.Fatalf("spec %d diverged: %+v vs %+v", i, sa, sb)
		}
		if sa.M < 1 || sa.Steps < 1 {
			t.Fatalf("spec %d degenerate: %+v", i, sa)
		}
	}
	// A different seed must actually change the stream.
	c := NewGenerator(43, cfg)
	same := 0
	a = NewGenerator(42, cfg)
	for i := 0; i < 500; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 500 {
		t.Fatal("seed 43 dealt the same stream as seed 42")
	}
}

// TestInjectorHonorsProfile: fault frequencies land near their
// configured probabilities, and a zero profile injects nothing.
func TestInjectorHonorsProfile(t *testing.T) {
	p := Profile{PanicWorker: 0.1, JobError: 0.1, Hang: 0.1, Stall: 0.1, Race: 0.1, CostShift: 0.1}
	in := NewInjector(7, p)
	const n = 5000
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		f := in.Next(4)
		counts[f.Kind]++
		if f.Kind != KindNone && (f.Step < 0 || f.Step >= 4) {
			t.Fatalf("fault step %d out of range", f.Step)
		}
	}
	faulted := n - counts[KindNone]
	frac := float64(faulted) / n
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("fault fraction %.3f, want near %.1f", frac, p.FaultFraction())
	}
	for _, k := range []Kind{KindPanicWorker, KindJobError, KindHang, KindStall, KindRace, KindCostShift} {
		if counts[k] == 0 {
			t.Fatalf("kind %v never dealt in %d draws", k, n)
		}
	}

	quiet := NewInjector(7, Profile{})
	for i := 0; i < 1000; i++ {
		if f := quiet.Next(4); f.Kind != KindNone {
			t.Fatalf("zero profile injected %v", f.Kind)
		}
	}
}

// TestExpectedStateMapping pins the fault-kind -> terminal-state
// contract the soak asserts against.
func TestExpectedStateMapping(t *testing.T) {
	cases := map[Kind]sched.State{
		KindNone:        sched.StateDone,
		KindStall:       sched.StateDone,
		KindRace:        sched.StateDone,
		KindCostShift:   sched.StateDone,
		KindJobError:    sched.StateFailed,
		KindPanicWorker: sched.StateFailed,
		KindHang:        sched.StateTimedOut,
	}
	for k, want := range cases {
		s := Spec{Fault: Fault{Kind: k}}
		if got := s.ExpectedState(); got != want {
			t.Errorf("ExpectedState(%v) = %v, want %v", k, got, want)
		}
	}
}

// TestSingleFaultJobs runs one job of each kind through a real
// scheduler on the virtual clock and checks the terminal state — the
// unit-sized version of the soak.
func TestSingleFaultJobs(t *testing.T) {
	kinds := []Kind{KindNone, KindJobError, KindPanicWorker, KindStall, KindRace, KindCostShift, KindHang}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			res, err := Soak(SoakConfig{
				Seed: 1,
				Jobs: 1,
				Gen:  GenConfig{Profile: exclusiveProfile(k), MaxM: 6, MaxSteps: 3},
			})
			if err != nil {
				t.Fatalf("soak: %v (result %+v)", err, res)
			}
			want := Spec{Fault: Fault{Kind: k}}.ExpectedState()
			if res.ByState[want] != 1 {
				t.Fatalf("states %v, want one %v", res.ByState, want)
			}
		})
	}
}

// exclusiveProfile deals only the given kind (or nothing for
// KindNone).
func exclusiveProfile(k Kind) Profile {
	switch k {
	case KindPanicWorker:
		return Profile{PanicWorker: 1}
	case KindJobError:
		return Profile{JobError: 1}
	case KindHang:
		return Profile{Hang: 1}
	case KindStall:
		return Profile{Stall: 1}
	case KindRace:
		return Profile{Race: 1}
	case KindCostShift:
		return Profile{CostShift: 1}
	default:
		return Profile{}
	}
}

// TestProfileValidation: bad probabilities refuse to construct.
func TestProfileValidation(t *testing.T) {
	for _, p := range []Profile{
		{PanicWorker: -0.1},
		{PanicWorker: 0.5, JobError: 0.6},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewInjector(%+v) did not panic", p)
				}
			}()
			NewInjector(1, p)
		}()
	}
}

// TestSpecJobDefaults: nil clock and zero stall get safe defaults.
func TestSpecJobDefaults(t *testing.T) {
	j := Spec{Name: "x", M: 2, Steps: 1}.Job(nil, 0)
	if j.Name() != "x" || j.Parallelism() != 2 {
		t.Fatalf("job identity mangled: %s/%d", j.Name(), j.Parallelism())
	}
}
