package chaos

import (
	"testing"

	"repro/internal/check"
	"repro/internal/parloop"
)

// TestRacyStepSerialIsTheRecurrence: on one worker the seeded loop is
// just the prefix recurrence, a[i] = i+1 — the reference the parallel
// misuse silently diverges from.
func TestRacyStepSerialIsTheRecurrence(t *testing.T) {
	team := parloop.NewTeam(1)
	defer team.Close()
	const n = 100
	m := NewSyncMem(n)
	RacyStep(team, m, n)
	for i, v := range m.Data() {
		if v != float64(i+1) {
			t.Fatalf("serial RacyStep: a[%d] = %v, want %d", i, v, i+1)
		}
	}
}

// TestRacyStepFlaggedByDependenceChecker is the integration the fault
// kind exists for: running the same step on a dependence-tracked array
// flags the loop-carried dependence on every execution, regardless of
// how the workers actually interleave.
func TestRacyStepFlaggedByDependenceChecker(t *testing.T) {
	for _, workers := range []int{2, 4} {
		team := parloop.NewTeam(workers)
		tk := check.NewTracker(team, 0)
		a := tk.Float64s("racy.a", 256)
		RacyStep(team, a, 256)
		team.Close()
		races := tk.Races()
		if len(races) == 0 {
			t.Fatalf("workers=%d: checker silent on the seeded race", workers)
		}
		if r := races[0]; r.Array != "racy.a" {
			t.Errorf("workers=%d: race on %q, want racy.a", workers, r.Array)
		}
	}
}

// TestRacyStepCompletesOnSyncMem: the soak-side contract — whatever
// the workers do to the numerics, the step terminates and the process
// is unharmed, so a KindRace job reaches StateDone.
func TestRacyStepCompletesOnSyncMem(t *testing.T) {
	team := parloop.NewTeam(4)
	defer team.Close()
	m := NewSyncMem(512)
	RacyStep(team, m, 512)
	if got := len(m.Data()); got != 512 {
		t.Fatalf("memory length %d after step, want 512", got)
	}
}
