package chaos

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/euler"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// TestStepHooksInjectFaultsIntoSolverJobs wires the chaos fault kinds
// into real solver jobs through their WithStepHook seams: an euler
// sweep that errors mid-run, an euler sweep that hangs until its
// deadline reaps it, and an f3d time-stepper that errors — all against
// one scheduler whose budget must balance afterwards.
func TestStepHooksInjectFaultsIntoSolverJobs(t *testing.T) {
	clk := simclock.NewVirtual(time.Unix(0, 0))
	s := sched.New(sched.Config{Procs: 4, QueueDepth: 8, Clock: clk})
	defer s.Close()

	// Euler sweep failing at sweep 1.
	failing := euler.NewSweepJob("euler-fail", 16, 4).WithStepHook(func(sweep int) error {
		if sweep == 1 {
			return fmt.Errorf("chaos: injected sweep fault")
		}
		return nil
	})
	hFail, err := s.Submit(failing)
	if err != nil {
		t.Fatal(err)
	}
	if werr := waitHandle(t, hFail); werr == nil {
		t.Fatal("failing sweep returned nil error")
	}
	if st := hFail.Status(); st.State != sched.StateFailed || st.Cause != sched.CauseError {
		t.Fatalf("failing sweep status %+v, want failed/error", st)
	}

	// F3D stepper failing at step 0.
	fj, err := f3d.NewJob("f3d-fail", f3d.DefaultConfig(grid.Single(9, 8, 7)), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	fj.WithStepHook(func(step int) error { return fmt.Errorf("chaos: injected f3d fault at step %d", step) })
	hF3d, err := s.Submit(fj)
	if err != nil {
		t.Fatal(err)
	}
	if werr := waitHandle(t, hF3d); werr == nil {
		t.Fatal("failing f3d job returned nil error")
	}

	// Euler sweep hanging at sweep 0 until its deadline fires.
	grantc := make(chan *sched.Grant, 1)
	hanging := euler.NewSweepJob("euler-hang", 8, 4).WithStepHook(func(sweep int) error {
		if sweep == 0 {
			g := <-grantc
			<-g.Context().Done()
			return g.Checkpoint()
		}
		return nil
	})
	hHang, err := s.SubmitWithOptions(wrapGrant{hanging, grantc}, sched.SubmitOptions{Timeout: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("deadline watcher never registered")
		}
		time.Sleep(time.Millisecond)
	}
	clk.Advance(time.Minute)
	if werr := waitHandle(t, hHang); !errors.Is(werr, sched.ErrTimeout) {
		t.Fatalf("hanging sweep err = %v, want ErrTimeout", werr)
	}
	if st := hHang.Status(); st.State != sched.StateTimedOut {
		t.Fatalf("hanging sweep status %+v, want timed-out", st)
	}

	m := s.Metrics()
	if m.InUse != 0 || m.InUse+m.Free != m.Procs {
		t.Fatalf("budget off after hook faults: %+v", m)
	}
	if m.Failed != 2 || m.TimedOut != 1 {
		t.Fatalf("metrics %+v, want Failed 2 / TimedOut 1", m)
	}
}

// wrapGrant passes the job's grant to the hook through a channel: the
// hook API deliberately has no grant parameter, but a hanging fault
// needs the cancellation context.
type wrapGrant struct {
	*euler.SweepJob
	grantc chan *sched.Grant
}

func (w wrapGrant) Run(g *sched.Grant) error {
	select {
	case w.grantc <- g:
	default:
	}
	return w.SweepJob.Run(g)
}

func waitHandle(t *testing.T, h *sched.Handle) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	err := h.Wait(ctx)
	if ctx.Err() != nil {
		t.Fatal("job never finished")
	}
	return err
}
