package chaos

import (
	"testing"
	"time"

	"repro/internal/sched"
)

// soakSeed pins the headline soak workload; changing it is fine, but
// the run must stay deterministic for whatever seed is chosen.
const soakSeed = 20260805

// TestChaosSoakDeterministic is the acceptance soak: 240 jobs with a
// ~36% injected-fault mix flooded through an 8-processor scheduler on
// the virtual clock. Soak itself asserts the invariants after every
// event (budget conservation, plateau-only grants, fault-determined
// terminal states, exact accounting, drain termination); this test
// additionally pins the workload shape — enough jobs, enough faults,
// every fault kind present, the flood path exercised — and that the
// whole thing needed zero real-time sleeps of consequence.
func TestChaosSoakDeterministic(t *testing.T) {
	cfg := SoakConfig{
		Seed: soakSeed,
		Jobs: 240,
		Gen: GenConfig{
			Profile: Profile{PanicWorker: 0.09, JobError: 0.09, Hang: 0.09, Stall: 0.09, Race: 0.09},
			MaxM:    24,
		},
	}
	res, err := Soak(cfg)
	if err != nil {
		t.Fatalf("soak: %v\nresult: %+v", err, res)
	}
	if res.Submitted != cfg.Jobs {
		t.Fatalf("submitted %d jobs, want %d (retry-until-admitted lost some)", res.Submitted, cfg.Jobs)
	}
	if frac := float64(res.Faulted) / float64(res.Submitted); frac < 0.20 {
		t.Fatalf("fault fraction %.2f below the 20%% floor (faulted %d/%d)", frac, res.Faulted, res.Submitted)
	}
	for _, k := range []Kind{KindPanicWorker, KindJobError, KindHang, KindStall, KindRace} {
		if res.ByKind[k] == 0 {
			t.Errorf("fault kind %v never injected; weaken the profile split or bump Jobs", k)
		}
	}
	if res.FloodRejections == 0 {
		t.Error("queue flood never hit ErrQueueFull; shrink QueueDepth to keep the backpressure path covered")
	}
	if res.ByState[sched.StateDone] == 0 || res.ByState[sched.StateFailed] == 0 || res.ByState[sched.StateTimedOut] == 0 {
		t.Errorf("terminal mix %v missing a state the fault mix must produce", res.ByState)
	}
	if res.ByState[sched.StateCanceled] != 0 {
		t.Errorf("%d jobs canceled; nothing cancels in a soak", res.ByState[sched.StateCanceled])
	}
	if res.Metrics.Panics != uint64(res.ByKind[KindPanicWorker]) {
		t.Errorf("panic counter %d != injected worker panics %d", res.Metrics.Panics, res.ByKind[KindPanicWorker])
	}
	if res.VirtualElapsed <= 0 {
		t.Error("virtual clock never advanced; hangs and stalls cannot have been exercised")
	}
}

// TestChaosSoakRepeatable runs the same seed twice and demands
// identical outcome histograms — the determinism half of the
// acceptance criterion, independent of goroutine interleaving.
func TestChaosSoakRepeatable(t *testing.T) {
	if testing.Short() {
		t.Skip("two soaks in -short mode")
	}
	cfg := SoakConfig{
		Seed: soakSeed,
		Jobs: 120,
		Gen: GenConfig{
			Profile: Profile{PanicWorker: 0.1, JobError: 0.1, Hang: 0.1, Stall: 0.1},
		},
	}
	a, err := Soak(cfg)
	if err != nil {
		t.Fatalf("first soak: %v", err)
	}
	b, err := Soak(cfg)
	if err != nil {
		t.Fatalf("second soak: %v", err)
	}
	for _, st := range []sched.State{sched.StateDone, sched.StateFailed, sched.StateTimedOut, sched.StateCanceled} {
		if a.ByState[st] != b.ByState[st] {
			t.Errorf("state %v: %d vs %d across identical seeds", st, a.ByState[st], b.ByState[st])
		}
	}
	for _, k := range []Kind{KindNone, KindPanicWorker, KindJobError, KindHang, KindStall, KindRace} {
		if a.ByKind[k] != b.ByKind[k] {
			t.Errorf("kind %v: %d vs %d across identical seeds", k, a.ByKind[k], b.ByKind[k])
		}
	}
}

// TestSoakCostShift folds KindCostShift into the fault mix: jobs whose
// per-iteration cost jumps mid-run and whose embedded adaptive
// controller must converge, drift-reset, and re-converge. The fault is
// self-checking (a controller that fails to re-converge errors the job
// into StateFailed, which the expected-state check flags), so this
// test only has to prove the kind is dealt, every such job completes,
// and the usual soak invariants survive with it in the mix on the
// virtual clock.
func TestSoakCostShift(t *testing.T) {
	res, err := Soak(SoakConfig{
		Seed: soakSeed,
		Jobs: 80,
		Gen: GenConfig{
			Profile: Profile{PanicWorker: 0.08, Hang: 0.08, Stall: 0.08, CostShift: 0.25},
			MaxM:    16,
		},
	})
	if err != nil {
		t.Fatalf("soak: %v\nresult: %+v", err, res)
	}
	if res.ByKind[KindCostShift] == 0 {
		t.Fatal("cost-shift fault never dealt; raise its probability or Jobs")
	}
	// Every cost-shift job re-converged: each one reached StateDone,
	// or Soak's expected-state check would already have failed above.
	if res.ByState[sched.StateDone] < res.ByKind[KindCostShift] {
		t.Fatalf("done count %d below cost-shift count %d", res.ByState[sched.StateDone], res.ByKind[KindCostShift])
	}
	if res.VirtualElapsed <= 0 {
		t.Error("virtual clock never advanced under the cost-shift mix")
	}
}

// TestSoakTinyBudget squeezes the same chaos through a single
// processor with a queue of two — maximal contention, constant
// flooding — to shake out budget-accounting bugs that a roomy
// configuration hides.
func TestSoakTinyBudget(t *testing.T) {
	res, err := Soak(SoakConfig{
		Seed:       3,
		Jobs:       60,
		Procs:      1,
		QueueDepth: 2,
		Gen: GenConfig{
			Profile:  Profile{PanicWorker: 0.12, JobError: 0.12, Hang: 0.12, Stall: 0.12},
			MaxM:     6,
			MaxSteps: 2,
		},
		HangTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("soak: %v\nresult: %+v", err, res)
	}
	if res.FloodRejections == 0 {
		t.Error("queue depth 2 under 60 jobs never flooded")
	}
	if res.Metrics.MaxInUse > 1 {
		t.Errorf("max_in_use %d on a 1-processor budget", res.Metrics.MaxInUse)
	}
}
