package chaos

import (
	"flag"
	"math"
	"os"
	"testing"

	"repro/internal/obs"
)

// -cluster-trace-out makes the traced soak write its merged fleet
// timeline as JSONL — CI uploads it and runs `tracetool cluster` over
// it, gating on attribution closure.
var clusterTraceOut = flag.String("cluster-trace-out", "", "write the traced cluster soak's merged timeline (JSONL) here")

// TestClusterSoak drives the sharded-solve engine through a seeded
// sequence of jobs with guaranteed node losses and probable slow
// links: every job must finish with the single-node history bitwise
// (ClusterSoak checks that internally) and every fired loss must have
// produced a failover. Tracing is on, so the soak also proves the
// collector survives pulling from a down node and that the merged
// timeline's cross-node attribution closes for every job.
func TestClusterSoak(t *testing.T) {
	res, err := ClusterSoak(ClusterSoakConfig{Seed: 7, NodeLoss: 1, Trace: true})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if res.Jobs != 4 {
		t.Errorf("completed %d jobs, want 4", res.Jobs)
	}
	if res.Losses < 1 {
		t.Errorf("no node loss fired (losses=%d) — the failover path went untested", res.Losses)
	}
	if res.Failovers < res.Losses {
		t.Errorf("failovers %d < fired losses %d", res.Failovers, res.Losses)
	}
	if res.PullErrors < res.Losses {
		t.Errorf("collector recorded %d pull errors over %d losses — the down-node pulls went unexercised",
			res.PullErrors, res.Losses)
	}
	if res.TraceReport == nil || !res.TraceReport.Closed {
		t.Fatalf("traced soak report missing or open: %+v", res.TraceReport)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("traced soak produced an empty timeline")
	}
	t.Logf("soak: %d jobs, %d losses, %d slow links, %d failovers, %d events, %d pull errors",
		res.Jobs, res.Losses, res.SlowLinks, res.Failovers, len(res.Timeline), res.PullErrors)

	if *clusterTraceOut != "" {
		f, err := os.Create(*clusterTraceOut)
		if err != nil {
			t.Fatalf("cluster-trace-out: %v", err)
		}
		if err := obs.WriteEventsJSONL(f, res.Timeline); err != nil {
			f.Close()
			t.Fatalf("cluster-trace-out: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("cluster-trace-out: %v", err)
		}
		t.Logf("wrote %d events to %s", len(res.Timeline), *clusterTraceOut)
	}
}

// TestClusterSoakDeterministic: the same seed reproduces the same
// histories, losses and failovers exactly — with tracing enabled on
// one side only, which must not perturb the solve.
func TestClusterSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second soak run skipped in -short")
	}
	a, err := ClusterSoak(ClusterSoakConfig{Seed: 99, NodeLoss: 1, Trace: true})
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := ClusterSoak(ClusterSoakConfig{Seed: 99, NodeLoss: 1})
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.Losses != b.Losses || a.SlowLinks != b.SlowLinks || a.Failovers != b.Failovers {
		t.Fatalf("fault accounting diverged: %+v vs %+v", a, b)
	}
	for job, ha := range a.Histories {
		hb, ok := b.Histories[job]
		if !ok || len(ha) != len(hb) {
			t.Fatalf("job %s histories differ in shape", job)
		}
		for i := range ha {
			if math.Float64bits(ha[i].Residual) != math.Float64bits(hb[i].Residual) {
				t.Fatalf("job %s step %d residual differs across identical seeds", job, i)
			}
		}
	}
}
