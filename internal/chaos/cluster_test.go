package chaos

import (
	"math"
	"testing"
)

// TestClusterSoak drives the sharded-solve engine through a seeded
// sequence of jobs with guaranteed node losses and probable slow
// links: every job must finish with the single-node history bitwise
// (ClusterSoak checks that internally) and every fired loss must have
// produced a failover.
func TestClusterSoak(t *testing.T) {
	res, err := ClusterSoak(ClusterSoakConfig{Seed: 7, NodeLoss: 1})
	if err != nil {
		t.Fatalf("soak: %v", err)
	}
	if res.Jobs != 4 {
		t.Errorf("completed %d jobs, want 4", res.Jobs)
	}
	if res.Losses < 1 {
		t.Errorf("no node loss fired (losses=%d) — the failover path went untested", res.Losses)
	}
	if res.Failovers < res.Losses {
		t.Errorf("failovers %d < fired losses %d", res.Failovers, res.Losses)
	}
	t.Logf("soak: %d jobs, %d losses, %d slow links, %d failovers",
		res.Jobs, res.Losses, res.SlowLinks, res.Failovers)
}

// TestClusterSoakDeterministic: the same seed reproduces the same
// histories, losses and failovers exactly.
func TestClusterSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("second soak run skipped in -short")
	}
	a, err := ClusterSoak(ClusterSoakConfig{Seed: 99, NodeLoss: 1})
	if err != nil {
		t.Fatalf("run A: %v", err)
	}
	b, err := ClusterSoak(ClusterSoakConfig{Seed: 99, NodeLoss: 1})
	if err != nil {
		t.Fatalf("run B: %v", err)
	}
	if a.Losses != b.Losses || a.SlowLinks != b.SlowLinks || a.Failovers != b.Failovers {
		t.Fatalf("fault accounting diverged: %+v vs %+v", a, b)
	}
	for job, ha := range a.Histories {
		hb, ok := b.Histories[job]
		if !ok || len(ha) != len(hb) {
			t.Fatalf("job %s histories differ in shape", job)
		}
		for i := range ha {
			if math.Float64bits(ha[i].Residual) != math.Float64bits(hb[i].Residual) {
				t.Fatalf("job %s step %d residual differs across identical seeds", job, i)
			}
		}
	}
}
