package chaos

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/sched"
	"repro/internal/simclock"
)

// SoakConfig parameterizes a deterministic chaos soak: a seeded
// workload of faulty jobs flooded through a scheduler on a virtual
// clock.
type SoakConfig struct {
	// Seed drives the workload generator and fault injector.
	Seed int64
	// Jobs is how many jobs to push through. <= 0 defaults to 200.
	Jobs int
	// Procs is the processor budget. <= 0 defaults to 8.
	Procs int
	// QueueDepth bounds the admission queue; keep it well under Jobs
	// so submission floods exercise backpressure. <= 0 defaults to 16.
	QueueDepth int
	// Gen shapes the job mix.
	Gen GenConfig
	// HangTimeout is the run deadline given to jobs with an injected
	// hang — the only way they terminate. <= 0 defaults to 30s.
	HangTimeout time.Duration
	// SafeTimeout is the run deadline given to every other job. It
	// must be far beyond any virtual time the driver can plausibly
	// advance, so healthy jobs never spuriously time out; the driver
	// enforces this by refusing to advance past SafeTimeout/2 total.
	// <= 0 defaults to 12h.
	SafeTimeout time.Duration
}

func (c SoakConfig) withDefaults() SoakConfig {
	if c.Jobs <= 0 {
		c.Jobs = 200
	}
	if c.Procs <= 0 {
		c.Procs = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.HangTimeout <= 0 {
		c.HangTimeout = 30 * time.Second
	}
	if c.SafeTimeout <= 0 {
		c.SafeTimeout = 12 * time.Hour
	}
	return c
}

// SoakResult reports what a soak run did.
type SoakResult struct {
	// Submitted is the number of jobs admitted (== SoakConfig.Jobs on
	// success; every job is retried until admitted).
	Submitted int
	// Faulted is how many jobs carried an injected fault.
	Faulted int
	// FloodRejections counts ErrQueueFull rejections absorbed while
	// flooding the queue — evidence the backpressure path ran.
	FloodRejections int
	// ByKind counts jobs per injected fault kind.
	ByKind map[Kind]int
	// ByState counts terminal states over all jobs.
	ByState map[sched.State]int
	// VirtualElapsed is total virtual time advanced by the driver.
	VirtualElapsed time.Duration
	// Metrics is the scheduler's final accounting snapshot.
	Metrics sched.Metrics
}

// Soak runs the configured workload to completion, checking the
// scheduler's safety invariants throughout:
//
//   - budget conservation: in_use + free == procs after every event;
//   - plateau-only grants: every running job's grant sits on a
//     stair-step plateau of its requested parallelism;
//   - deterministic outcomes: each job's terminal state matches its
//     fault plan (healthy/stall -> done, error/panic -> failed,
//     hang -> timed-out);
//   - no lost or double-counted jobs: terminal counts reconcile
//     exactly with scheduler metrics;
//   - drain termination: the scheduler closes cleanly afterwards.
//
// The driver advances the virtual clock only when the workload stops
// making progress on its own (advance-if-stuck), so CPU-bound healthy
// jobs are never at the mercy of wall-clock scheduling jitter.
func Soak(cfg SoakConfig) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	start := time.Unix(0, 0)
	clk := simclock.NewVirtual(start)
	s := sched.New(sched.Config{
		Procs:         cfg.Procs,
		QueueDepth:    cfg.QueueDepth,
		Grow:          true,
		ShrinkToAdmit: true,
		Clock:         clk,
	})
	defer s.Close()

	gen := NewGenerator(cfg.Seed, cfg.Gen)
	res := &SoakResult{
		ByKind:  make(map[Kind]int),
		ByState: make(map[sched.State]int),
	}

	type entry struct {
		spec Spec
		h    *sched.Handle
	}
	entries := make([]entry, 0, cfg.Jobs)

	checkInvariants := func() error {
		m := s.Metrics()
		if m.InUse+m.Free != m.Procs {
			return fmt.Errorf("budget leak: in_use %d + free %d != procs %d", m.InUse, m.Free, m.Procs)
		}
		if m.MaxInUse > m.Procs {
			return fmt.Errorf("budget exceeded: max_in_use %d > procs %d", m.MaxInUse, m.Procs)
		}
		for _, e := range entries {
			st := e.h.Status()
			if st.State != sched.StateRunning {
				continue
			}
			on := false
			for _, p := range model.PlateauProcs(st.Requested, st.Requested) {
				if st.Granted == p {
					on = true
					break
				}
			}
			if !on {
				return fmt.Errorf("job %d (%s) granted %d, off every plateau of m=%d",
					st.ID, e.spec.Name, st.Granted, st.Requested)
			}
		}
		return nil
	}

	terminalCount := func() int {
		n := 0
		for _, e := range entries {
			if e.h.Status().State.Terminal() {
				n++
			}
		}
		return n
	}

	// advanceIfStuck waits for cond, letting real goroutines run; if no
	// terminal-count progress shows up for a while, it advances the
	// virtual clock one quantum so sleeping stalls and deadline
	// watchers fire. Total advancement is capped well under
	// SafeTimeout, which is what guarantees healthy jobs cannot time
	// out no matter how the race scheduler interleaves things.
	quantum := cfg.HangTimeout / 4
	if q := cfg.Gen.withDefaults().Stall; q < quantum && q > 0 {
		quantum = q
	}
	horizon := cfg.SafeTimeout / 2
	advanceIfStuck := func(cond func() bool) error {
		wall := time.Now().Add(2 * time.Minute)
		lastTerm := terminalCount()
		idle := 0
		for !cond() {
			if time.Now().After(wall) {
				return errors.New("soak wedged: no progress against the wall clock")
			}
			time.Sleep(100 * time.Microsecond)
			if n := terminalCount(); n > lastTerm {
				lastTerm, idle = n, 0
				continue
			}
			idle++
			if idle < 20 {
				continue
			}
			idle = 0
			if clk.Now().Sub(start) > horizon {
				return fmt.Errorf("soak advanced past the %v safety horizon; outcomes would stop being deterministic", horizon)
			}
			clk.Advance(quantum)
		}
		return nil
	}

	for i := 0; i < cfg.Jobs; i++ {
		spec := gen.Next()
		res.ByKind[spec.Fault.Kind]++
		if spec.Fault.Kind != KindNone {
			res.Faulted++
		}
		timeout := cfg.SafeTimeout
		if spec.Fault.Kind == KindHang {
			timeout = cfg.HangTimeout
		}
		job := spec.Job(clk, cfg.Gen.withDefaults().Stall)
		for {
			h, err := s.SubmitWithOptions(job, sched.SubmitOptions{Timeout: timeout})
			if err == nil {
				entries = append(entries, entry{spec, h})
				res.Submitted++
				break
			}
			if !errors.Is(err, sched.ErrQueueFull) {
				return res, fmt.Errorf("submit %s: %w", spec.Name, err)
			}
			// Queue flooded: absorb the rejection, let the backlog
			// drain (advancing virtual time if it takes faults to
			// clear), and retry so no job is ever dropped.
			res.FloodRejections++
			queued := s.Metrics().Queued
			if err := advanceIfStuck(func() bool { return s.Metrics().Queued < queued }); err != nil {
				return res, err
			}
		}
		if err := checkInvariants(); err != nil {
			return res, err
		}
	}

	// Drain: everything submitted must reach a terminal state.
	if err := advanceIfStuck(func() bool { return terminalCount() == len(entries) }); err != nil {
		return res, err
	}

	// Every job lands exactly on the terminal state its fault plan
	// dictates — that is the determinism claim.
	for _, e := range entries {
		st := e.h.Status()
		res.ByState[st.State]++
		if want := e.spec.ExpectedState(); st.State != want {
			return res, fmt.Errorf("job %s: terminal state %v, want %v (fault %v)",
				e.spec.Name, st.State, want, e.spec.Fault.Kind)
		}
		if err := checkInvariants(); err != nil {
			return res, err
		}
	}

	// Reconcile with scheduler accounting: nothing lost, nothing
	// double-counted.
	m := s.Metrics()
	res.Metrics = m
	res.VirtualElapsed = clk.Now().Sub(start)
	total := m.Completed + m.Failed + m.TimedOut + m.Canceled
	if int(total) != len(entries) {
		return res, fmt.Errorf("accounting mismatch: %d terminal in metrics, %d jobs submitted", total, len(entries))
	}
	if int(m.Completed) != res.ByState[sched.StateDone] ||
		int(m.Failed) != res.ByState[sched.StateFailed] ||
		int(m.TimedOut) != res.ByState[sched.StateTimedOut] ||
		int(m.Canceled) != res.ByState[sched.StateCanceled] {
		return res, fmt.Errorf("per-state accounting mismatch: metrics %+v vs observed %v", m, res.ByState)
	}
	if m.InUse != 0 || m.Running != 0 || m.Queued != 0 {
		return res, fmt.Errorf("scheduler not idle after drain: %+v", m)
	}

	// Drain termination: Close must return promptly with nothing left
	// behind (it blocks on every job goroutine).
	s.Close()
	return res, nil
}
