package chaos

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/simclock"
)

// ClusterSoakConfig parameterizes a deterministic soak of the
// sharded-solve engine: a seeded sequence of solves routed through one
// coordinator while workers die, links slow down and lost workers
// rejoin between jobs (rebalancing). Everything runs on a virtual
// clock, so injected latencies resolve in microseconds of real time
// and the whole run is reproducible from the seed.
type ClusterSoakConfig struct {
	// Seed drives every random choice.
	Seed int64
	// Workers is the daemon count (default 3).
	Workers int
	// Jobs is the number of sharded solves (default 4).
	Jobs int
	// Steps per solve (default 6).
	Steps int
	// NodeLoss and SlowLink are per-job fault probabilities
	// (defaults 0.5 and 0.5; a job can suffer both).
	NodeLoss, SlowLink float64
	// Trace turns fleet tracing on: every worker and the coordinator
	// record spans, and a collector pulls them between jobs — also
	// while a lost worker is still down, which is the fault the
	// collector itself must survive. The merged timeline and its
	// cluster report land in the result.
	Trace bool
	// TraceBuf is each trace ring's capacity (default 8192).
	TraceBuf int
}

func (c ClusterSoakConfig) withDefaults() ClusterSoakConfig {
	if c.Workers <= 0 {
		c.Workers = 3
	}
	if c.Jobs <= 0 {
		c.Jobs = 4
	}
	if c.Steps <= 0 {
		c.Steps = 6
	}
	if c.NodeLoss == 0 {
		c.NodeLoss = 0.5
	}
	if c.SlowLink == 0 {
		c.SlowLink = 0.5
	}
	if c.TraceBuf <= 0 {
		c.TraceBuf = 8192
	}
	return c
}

// ClusterSoakResult reports what the soak did and saw.
type ClusterSoakResult struct {
	// Jobs is the number of solves completed (all of them, or the
	// soak errored).
	Jobs int
	// Losses and SlowLinks count the faults that actually fired.
	Losses, SlowLinks int
	// Failovers sums the engine's re-shards across all jobs.
	Failovers int
	// Histories holds each job's residual history, keyed by job name —
	// the determinism witness a caller can compare across runs.
	Histories map[string][]cluster.StepStat
	// Timeline is the merged node-tagged fleet timeline (Trace only).
	Timeline []obs.Event
	// TraceReport is the cluster critical-path report over Timeline.
	TraceReport *analyze.ClusterReport
	// PullErrors counts collector fetches that failed against a down
	// worker — expected under node loss; the collector records them
	// and keeps its cursor instead of wedging or duplicating events.
	PullErrors int
}

// chaosWorker wraps an in-process worker with a scripted node loss: on
// its armed lockstep call the worker fails permanently (until revived
// between jobs). Scripting by call count keeps the injection
// deterministic — no goroutine timing decides when the node dies.
type chaosWorker struct {
	*cluster.LocalWorker

	mu     sync.Mutex
	failAt int // fail on the n-th StepShard call of this job; 0 = never
	calls  int
	fired  bool
}

// arm programs the next job's fault plan (failAt = 0 disarms).
func (w *chaosWorker) arm(failAt int) {
	w.mu.Lock()
	w.failAt = failAt
	w.calls = 0
	w.fired = false
	w.mu.Unlock()
}

// lossFired reports whether the armed loss actually hit.
func (w *chaosWorker) lossFired() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.fired
}

func (w *chaosWorker) StepShard(req cluster.StepRequest) (cluster.StepResponse, error) {
	w.mu.Lock()
	w.calls++
	fire := w.failAt > 0 && w.calls >= w.failAt && !w.fired
	if fire {
		w.fired = true
	}
	w.mu.Unlock()
	if fire {
		w.LocalWorker.Fail()
	}
	return w.LocalWorker.StepShard(req)
}

// ClusterSoak runs the configured workload and checks the engine's
// safety obligations on every job:
//
//   - conformance under faults: each solve's residual history is
//     bitwise the single-node history, losses and slow links
//     notwithstanding;
//   - termination: every solve reaches a terminal result (the virtual
//     clock is advanced only when the workload is stuck);
//   - failover accounting: every fired node loss produces a failover
//     and evicts the worker from the live set;
//   - rebalancing: revived workers rejoin before the next job and the
//     planner uses them again;
//   - no shard leaks: after each job every reachable host is empty;
//   - collector survival (Trace): pulling the fleet's trace rings
//     while a lost node is down records an error and keeps the cursor
//     — the merged timeline stays duplicate-free and node-tagged, and
//     its cross-node attribution closes for every job.
func ClusterSoak(cfg ClusterSoakConfig) (*ClusterSoakResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	clk := simclock.NewVirtual(time.Unix(0, 0))
	var tracer *obs.Tracer
	if cfg.Trace {
		tracer = obs.NewTracer(cfg.TraceBuf, clk)
		tracer.Enable()
	}
	coord := cluster.New(cluster.Config{Clock: clk, HeartbeatTTL: time.Hour, Tracer: tracer})
	var col *cluster.Collector
	if cfg.Trace {
		col = cluster.NewCollector(cluster.CollectorConfig{Clock: clk, Coord: tracer, Node: coord.Node()})
	}

	workers := make([]*chaosWorker, cfg.Workers)
	for i := range workers {
		id := fmt.Sprintf("w%02d", i)
		workers[i] = &chaosWorker{LocalWorker: cluster.NewLocalWorker(id, clk)}
		if err := coord.Register(id, workers[i]); err != nil {
			return nil, err
		}
		if cfg.Trace {
			workers[i].EnableTrace(cfg.TraceBuf)
			col.AddWorker(id, workers[i].LocalWorker)
		}
	}
	if cfg.Trace {
		col.SyncClocks()
	}

	// One canonical 3-zone case; the reference history is computed once
	// on a single node.
	c, ifaces := f3d.StackAlongJ("soak", 20, 6, 5, []int{6, 12})
	solveCfg := f3d.DefaultConfig(c)
	const pulse = 0.02
	ref, err := singleNodeHistory(c, ifaces, solveCfg, pulse, cfg.Steps)
	if err != nil {
		return nil, err
	}

	res := &ClusterSoakResult{Histories: make(map[string][]cluster.StepStat)}
	for j := 0; j < cfg.Jobs; j++ {
		// Deal this job's faults from the seeded stream.
		lossIdx, slowIdx := -1, -1
		failCall, delay := 0, time.Duration(0)
		if rng.Float64() < cfg.NodeLoss {
			lossIdx = rng.Intn(cfg.Workers)
			failCall = 1 + rng.Intn(cfg.Steps)
		}
		if rng.Float64() < cfg.SlowLink {
			slowIdx = rng.Intn(cfg.Workers)
			delay = time.Duration(50+rng.Intn(200)) * time.Millisecond
		}
		for i, w := range workers {
			if i == lossIdx {
				w.arm(failCall)
			} else {
				w.arm(0)
			}
			if i == slowIdx {
				w.SetDelay(delay)
			} else {
				w.SetDelay(0)
			}
		}

		job := fmt.Sprintf("soak-job-%02d", j)
		out, err := runSolveAdvancing(coord, clk, cluster.SolveSpec{
			Job: job, Zones: c.Zones, Interfaces: ifaces,
			Config: solveCfg, PulseAmp: pulse, Steps: cfg.Steps,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos: job %s: %w", job, err)
		}
		res.Jobs++
		res.Histories[job] = out.History
		res.Failovers += out.Failovers

		if err := compareHistories(job, out.History, ref); err != nil {
			return nil, err
		}
		fired := lossIdx >= 0 && workers[lossIdx].lossFired()
		if fired {
			res.Losses++
			if out.Failovers < 1 {
				return nil, fmt.Errorf("chaos: job %s lost %s but the engine recorded no failover", job, workers[lossIdx].ID())
			}
			for _, id := range coord.Live() {
				if id == workers[lossIdx].ID() {
					return nil, fmt.Errorf("chaos: job %s: lost worker %s still live", job, id)
				}
			}
		}
		if slowIdx >= 0 {
			res.SlowLinks++
		}
		// Pull the fleet's spans now, with the lost worker still down:
		// the collector must record the failed fetch and keep its
		// cursor — not wedge the merge, and not duplicate events when
		// the post-revival pull drains the survivor's ring.
		if cfg.Trace {
			for _, w := range workers {
				// A virtual-clock link delay would park this pull on an
				// unadvanced clock; the next job re-arms delays anyway.
				w.SetDelay(0)
			}
			before := collectorErrors(col)
			col.Pull()
			if fired && collectorErrors(col) <= before {
				return nil, fmt.Errorf("chaos: job %s: pull against down worker %s recorded no error", job, workers[lossIdx].ID())
			}
		}
		// No shard leaks on any reachable host.
		for i, w := range workers {
			if i == lossIdx && fired {
				continue
			}
			if n := w.Host().ShardCount(); n != 0 {
				return nil, fmt.Errorf("chaos: job %s leaked %d shards on %s", job, n, w.ID())
			}
		}
		// Rebalance: revive the lost worker so the next job can plan
		// over the full fleet again.
		if fired {
			workers[lossIdx].Recover()
			if err := coord.Heartbeat(workers[lossIdx].ID()); err != nil {
				return nil, fmt.Errorf("chaos: revive %s: %w", workers[lossIdx].ID(), err)
			}
		}
		if got := len(coord.Live()); got != cfg.Workers {
			return nil, fmt.Errorf("chaos: after job %s only %d/%d workers live", job, got, cfg.Workers)
		}
	}

	// The merged timeline must be coherent after all that: every event
	// node-tagged, no (node, seq) duplicated by the retried pulls, and
	// the cross-node attribution identity closed for every job —
	// node-loss chaos during collection may cost events (reported as
	// plausible lanes), never corrupt the merge.
	if cfg.Trace {
		col.Pull()
		tl := col.Timeline()
		// Seq is unique per emitting ring, and each ring must surface
		// exactly once. step_rpc spans are coordinator-emitted but
		// carry the worker lane's node tag, so origin — not the tag —
		// identifies the ring.
		type key struct {
			coordRing bool
			node      string
			seq       uint64
		}
		seen := make(map[key]bool, len(tl))
		for _, e := range tl {
			if e.Node == "" {
				return nil, fmt.Errorf("chaos: merged timeline holds an untagged %v event", e.Kind)
			}
			if e.Kind == obs.KindTraceDropped {
				continue
			}
			k := key{e.Node == coord.Node() || e.Kind == obs.KindStepRPC, e.Node, e.Seq}
			if seen[k] {
				return nil, fmt.Errorf("chaos: duplicate event (%s, %v, seq %d) in merged timeline", e.Node, e.Kind, e.Seq)
			}
			seen[k] = true
		}
		rep := analyze.ClusterAnalyze(tl, analyze.ClusterConfig{CoordNode: coord.Node()})
		if err := analyze.CheckClusterClosure(rep); err != nil {
			return nil, fmt.Errorf("chaos: cluster attribution: %w", err)
		}
		if len(rep.Solves) != res.Jobs {
			return nil, fmt.Errorf("chaos: trace report covers %d solves, want %d", len(rep.Solves), res.Jobs)
		}
		res.Timeline = tl
		res.TraceReport = rep
		res.PullErrors = collectorErrors(col)
	}
	return res, nil
}

// collectorErrors sums the per-worker failed-fetch counters.
func collectorErrors(col *cluster.Collector) int {
	n := 0
	for _, st := range col.Stats() {
		n += st.Errors
	}
	return n
}

// runSolveAdvancing runs a solve in a goroutine while advancing the
// virtual clock whenever the workload is stuck on injected latency —
// the cluster version of the soak driver's advance-if-stuck loop.
func runSolveAdvancing(coord *cluster.Coordinator, clk *simclock.Virtual, spec cluster.SolveSpec) (cluster.SolveResult, error) {
	type out struct {
		res cluster.SolveResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := coord.Solve(spec)
		done <- out{res, err}
	}()
	deadline := time.After(60 * time.Second)
	for {
		select {
		case o := <-done:
			return o.res, o.err
		case <-deadline:
			return cluster.SolveResult{}, fmt.Errorf("chaos: solve %s did not terminate", spec.Job)
		default:
			if !clk.AdvanceToNext() {
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
}

// singleNodeHistory computes the serial reference for the soak case.
func singleNodeHistory(c grid.Case, ifaces []f3d.Interface, cfg f3d.Config, pulse float64, steps int) ([]cluster.StepStat, error) {
	cfg.Case = c
	cfg.Interfaces = ifaces
	s, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
	if err != nil {
		return nil, err
	}
	defer s.Close()
	f3d.InitPulse(s, pulse)
	hist := make([]cluster.StepStat, steps)
	for i := range hist {
		st := s.Step()
		hist[i] = cluster.StepStat{Residual: st.Residual, MaxDelta: st.MaxDelta, Flops: st.Flops}
	}
	return hist, nil
}

// compareHistories demands bitwise agreement with the reference.
func compareHistories(job string, got, want []cluster.StepStat) error {
	if len(got) != len(want) {
		return fmt.Errorf("chaos: job %s history has %d steps, want %d", job, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i].Residual) != math.Float64bits(want[i].Residual) ||
			math.Float64bits(got[i].MaxDelta) != math.Float64bits(want[i].MaxDelta) {
			return fmt.Errorf("chaos: job %s diverged at step %d: (%v, %v) vs (%v, %v)",
				job, i, got[i].Residual, got[i].MaxDelta, want[i].Residual, want[i].MaxDelta)
		}
	}
	return nil
}
