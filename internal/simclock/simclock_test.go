package simclock

import (
	"testing"
	"time"
)

func TestVirtualNowAndAdvance(t *testing.T) {
	start := time.Unix(1000, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", v.Now(), start)
	}
	v.Advance(3 * time.Second)
	if want := start.Add(3 * time.Second); !v.Now().Equal(want) {
		t.Fatalf("Now() after Advance = %v, want %v", v.Now(), want)
	}
	if n := v.Advance(0); n != 0 {
		t.Fatalf("Advance(0) fired %d timers, want 0", n)
	}
}

func TestVirtualAfterFiresInDeadlineOrder(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	c3 := v.After(3 * time.Second)
	c1 := v.After(1 * time.Second)
	c2 := v.After(2 * time.Second)
	if v.Waiters() != 3 {
		t.Fatalf("Waiters() = %d, want 3", v.Waiters())
	}
	if n := v.Advance(10 * time.Second); n != 3 {
		t.Fatalf("Advance fired %d, want 3", n)
	}
	// All three channels hold their fire time; deadline order is
	// reflected in the delivered timestamps.
	t1, t2, t3 := <-c1, <-c2, <-c3
	if !t1.Before(t2) || !t2.Before(t3) {
		t.Fatalf("fire times out of order: %v, %v, %v", t1, t2, t3)
	}
	if v.Waiters() != 0 {
		t.Fatalf("Waiters() after fire = %d, want 0", v.Waiters())
	}
}

func TestVirtualAfterNonPositiveFiresImmediately(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	select {
	case <-v.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-v.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestVirtualPartialAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	c1 := v.After(1 * time.Second)
	c5 := v.After(5 * time.Second)
	if n := v.Advance(2 * time.Second); n != 1 {
		t.Fatalf("Advance(2s) fired %d, want 1", n)
	}
	<-c1
	select {
	case <-c5:
		t.Fatal("5s timer fired after only 2s")
	default:
	}
	if n := v.Advance(3 * time.Second); n != 1 {
		t.Fatalf("Advance(3s) fired %d, want 1", n)
	}
	<-c5
}

func TestVirtualAdvanceToNext(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	if v.AdvanceToNext() {
		t.Fatal("AdvanceToNext with no timers reported true")
	}
	c := v.After(7 * time.Second)
	if !v.AdvanceToNext() {
		t.Fatal("AdvanceToNext with a pending timer reported false")
	}
	<-c
	if want := time.Unix(7, 0); !v.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualSleepUnblocksOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(time.Minute)
		close(done)
	}()
	// Wait for the sleeper to register, then advance.
	deadline := time.Now().Add(10 * time.Second)
	for v.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sleeper never registered")
		}
		time.Sleep(time.Microsecond)
	}
	v.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	before := time.Now()
	if c.Now().Before(before) {
		t.Fatal("Real.Now() went backwards")
	}
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(10 * time.Second):
		t.Fatal("Real.After never fired")
	}
}
