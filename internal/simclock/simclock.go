// Package simclock abstracts time behind a Clock interface so the
// scheduler stack can run against either the wall clock (production)
// or a virtual, manually advanced clock (deterministic tests).
//
// The virtual clock is the foundation of the chaos soak harness: job
// deadlines, retry backoffs and injected stalls all wait on the same
// Virtual instance, so a test advances simulated time explicitly and
// hundreds of timeout-laden jobs resolve in milliseconds of real time,
// in a reproducible order (timers fire in deadline order, ties in
// registration order).
package simclock

import (
	"sort"
	"sync"
	"time"
)

// Clock is the time source the scheduler stack depends on. Now reports
// the current instant, After returns a channel that delivers one value
// once the given duration has elapsed, and Sleep blocks for it.
type Clock interface {
	Now() time.Time
	After(d time.Duration) <-chan time.Time
	Sleep(d time.Duration)
}

// Real is the wall clock: a zero-cost passthrough to package time.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// vtimer is one pending Virtual timer.
type vtimer struct {
	at  time.Time
	seq uint64 // registration order, the tie-break for equal deadlines
	ch  chan time.Time
}

// Virtual is a manually advanced clock. Time only moves when Advance
// (or AdvanceToNext) is called; timers due at or before the new time
// fire synchronously, in deadline order, before Advance returns. The
// zero value is not usable; call NewVirtual.
type Virtual struct {
	mu     sync.Mutex
	now    time.Time
	seq    uint64
	timers []*vtimer
}

// NewVirtual creates a virtual clock reading start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// After implements Clock. The returned channel has capacity one, so
// firing never blocks Advance even if the waiter has gone away.
// d <= 0 fires immediately.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- v.now
		return ch
	}
	v.seq++
	v.timers = append(v.timers, &vtimer{at: v.now.Add(d), seq: v.seq, ch: ch})
	return ch
}

// Sleep implements Clock: it blocks until the virtual clock has been
// advanced past the deadline by some other goroutine.
func (v *Virtual) Sleep(d time.Duration) { <-v.After(d) }

// Waiters returns the number of pending timers — how many goroutines
// (at most) are blocked waiting for virtual time to move. Drivers use
// it to decide whether advancing the clock can unblock anything.
func (v *Virtual) Waiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.timers)
}

// Advance moves the clock forward by d (d < 0 panics; d == 0 is a
// no-op) and fires every timer whose deadline is now due, in deadline
// order. It returns the number of timers fired.
func (v *Virtual) Advance(d time.Duration) int {
	if d < 0 {
		panic("simclock: Advance needs d >= 0")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now = v.now.Add(d)
	return v.fireDueLocked()
}

// AdvanceToNext jumps the clock to the earliest pending deadline and
// fires every timer due at that instant. It reports whether any timer
// was pending; with none, the clock does not move.
func (v *Virtual) AdvanceToNext() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.timers) == 0 {
		return false
	}
	next := v.timers[0].at
	for _, t := range v.timers[1:] {
		if t.at.Before(next) {
			next = t.at
		}
	}
	v.now = next
	v.fireDueLocked()
	return true
}

// fireDueLocked delivers every due timer in (deadline, registration)
// order and removes it. Caller holds v.mu.
func (v *Virtual) fireDueLocked() int {
	var due []*vtimer
	rest := v.timers[:0]
	for _, t := range v.timers {
		if !t.at.After(v.now) {
			due = append(due, t)
		} else {
			rest = append(rest, t)
		}
	}
	v.timers = rest
	sort.Slice(due, func(i, j int) bool {
		if !due[i].at.Equal(due[j].at) {
			return due[i].at.Before(due[j].at)
		}
		return due[i].seq < due[j].seq
	})
	for _, t := range due {
		t.ch <- t.at
	}
	return len(due)
}
