// Package autopar is a loop-nest dependence analyzer and
// parallelization planner: a miniature of the automatic-parallelizing
// compilers the paper's §8 weighs ("parallelizing compilers don't work
// and they never will" — Wolfe) against the semi-automatic,
// profile-guided directive approach the paper (and Hisley's ARL study)
// advocate.
//
// The package represents loop nests over affine array subscripts,
// decides which loops are parallelizable (no loop-carried dependence),
// and plans where to put the parallel region under different
// strategies:
//
//   - Innermost: parallelize the innermost parallelizable loop — what a
//     vectorizing mindset produces, and the worst case for
//     synchronization cost (paper Example 1, Table 2 "inner loop");
//   - Outermost: parallelize the outermost parallelizable loop of every
//     nest, however small — what a fully automatic compiler does, and
//     the source of Hisley's observed "parallel slowdown" on cheap
//     loops;
//   - CostGuided: parallelize the outermost parallelizable loop only
//     when the nest's work clears the Table 1 threshold — the paper's
//     §4 methodology in rule form.
//
// Plans compose into a model.StepProfile, so the three strategies'
// whole-program scaling can be predicted and compared on the machine
// models (see the §8 reproduction in the package tests and
// cmd/autopar).
package autopar

import (
	"fmt"
	"strings"

	"repro/internal/model"
)

// Affine is an affine subscript expression: Const + Σ Coeffs[v]·v over
// loop variables v.
type Affine struct {
	Const  int
	Coeffs map[string]int
}

// Idx returns the affine expression for a bare loop variable.
func Idx(v string) Affine {
	return Affine{Coeffs: map[string]int{v: 1}}
}

// Plus returns the expression shifted by a constant: v + c.
func (a Affine) Plus(c int) Affine {
	out := Affine{Const: a.Const + c, Coeffs: map[string]int{}}
	for v, k := range a.Coeffs {
		out.Coeffs[v] = k
	}
	return out
}

// ConstIdx returns a constant subscript.
func ConstIdx(c int) Affine { return Affine{Const: c} }

// dependsOnlyOn reports whether the expression involves exactly the
// variable v (with nonzero coefficient) and no other variable.
func (a Affine) dependsOnlyOn(v string) (coeff int, ok bool) {
	for w, c := range a.Coeffs {
		if c == 0 {
			continue
		}
		if w != v {
			return 0, false
		}
		coeff = c
	}
	if coeff == 0 {
		return 0, false
	}
	return coeff, true
}

// String implements fmt.Stringer.
func (a Affine) String() string {
	parts := []string{}
	for v, c := range a.Coeffs {
		switch c {
		case 0:
		case 1:
			parts = append(parts, v)
		default:
			parts = append(parts, fmt.Sprintf("%d%s", c, v))
		}
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	return strings.Join(parts, "+")
}

// Access is one array reference executed by the innermost iteration.
type Access struct {
	Array string
	Index []Affine
	Write bool
}

// Read and WriteTo build accesses concisely.
func Read(array string, index ...Affine) Access {
	return Access{Array: array, Index: index}
}

// WriteTo marks a written reference.
func WriteTo(array string, index ...Affine) Access {
	return Access{Array: array, Index: index, Write: true}
}

// Loop is one level of a nest.
type Loop struct {
	Var string
	N   int // trip count
}

// Nest is a perfect loop nest with affine array accesses.
type Nest struct {
	Name  string
	Loops []Loop // outermost first
	// Accesses performed by one innermost iteration.
	Accesses []Access
	// Private lists arrays that are (or can be made) private to a
	// parallel iteration — the directive's `local(...)` clause; accesses
	// to them never create cross-iteration dependences.
	Private []string
	// WorkPerIter is the computational work of one innermost iteration,
	// in cycles (the cost-model input).
	WorkPerIter float64
	// Calls is how many times the nest executes per time step.
	Calls int
}

// TotalWork returns the nest's single-processor work per step in cycles.
func (n *Nest) TotalWork() float64 {
	iters := 1.0
	for _, l := range n.Loops {
		iters *= float64(l.N)
	}
	calls := n.Calls
	if calls == 0 {
		calls = 1
	}
	return iters * n.WorkPerIter * float64(calls)
}

// loopIndex returns the position of var v in the nest, or -1.
func (n *Nest) loopIndex(v string) int {
	for i, l := range n.Loops {
		if l.Var == v {
			return i
		}
	}
	return -1
}

// isPrivate reports whether the array is iteration-private.
func (n *Nest) isPrivate(array string) bool {
	for _, p := range n.Private {
		if p == array {
			return true
		}
	}
	return false
}

// Parallelizable reports whether the loop with variable v carries no
// dependence, i.e. distinct values of v can never touch the same array
// element through a (write, any) access pair.
//
// The test is the conservative single-subscript test classical
// vectorizers use: a pair is independent with respect to v if some
// subscript position matches in both references, depends only on v with
// equal coefficients, and the constant difference is either zero (same
// iteration only) or not divisible by the coefficient (no integer
// solution). Anything the test cannot certify is reported as a
// dependence — conservative, like the compilers the paper describes.
func (n *Nest) Parallelizable(v string) bool {
	if n.loopIndex(v) < 0 {
		return false
	}
	for i, a := range n.Accesses {
		if !a.Write || n.isPrivate(a.Array) {
			continue
		}
		for j, b := range n.Accesses {
			if i == j && !b.Write {
				continue
			}
			if b.Array != a.Array || n.isPrivate(b.Array) {
				continue
			}
			if !independentWRT(a, b, v) {
				return false
			}
		}
	}
	return true
}

// independentWRT applies the subscript test to one pair.
func independentWRT(a, b Access, v string) bool {
	if len(a.Index) != len(b.Index) {
		// Different shapes — cannot reason; be conservative.
		return false
	}
	for d := range a.Index {
		ca, oka := a.Index[d].dependsOnlyOn(v)
		cb, okb := b.Index[d].dependsOnlyOn(v)
		if !oka || !okb || ca != cb {
			continue
		}
		diff := b.Index[d].Const - a.Index[d].Const
		if diff == 0 {
			return true // collision requires the same v
		}
		if diff%ca != 0 {
			return true // no integer iteration distance
		}
		// Nonzero integer distance: genuine loop-carried dependence via
		// this subscript; keep looking for another certifying subscript.
	}
	return false
}

// Strategy selects how a planner places parallel regions.
type Strategy int

const (
	// Innermost parallelizes the innermost parallelizable loop.
	Innermost Strategy = iota
	// Outermost parallelizes the outermost parallelizable loop of every
	// nest regardless of size (the fully automatic compiler).
	Outermost
	// CostGuided parallelizes the outermost parallelizable loop only if
	// the nest clears the Table 1 minimum-work threshold (the paper's
	// profile-guided directives).
	CostGuided
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case Innermost:
		return "innermost"
	case Outermost:
		return "outermost"
	case CostGuided:
		return "cost-guided"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Plan is the decision for one nest.
type Plan struct {
	Nest *Nest
	// Depth is the parallelized loop level (0 = outermost); -1 means the
	// nest stays serial.
	Depth int
	// Reason explains the decision.
	Reason string
}

// Parallel reports whether the plan parallelizes the nest.
func (p Plan) Parallel() bool { return p.Depth >= 0 }

// Machine holds the planning cost parameters (Table 1 inputs).
type Machine struct {
	Procs    int
	SyncCost float64 // cycles per synchronization event
	Budget   float64 // overhead budget (model.OverheadBudget)
}

// PlanNest decides where (if anywhere) to parallelize one nest.
func PlanNest(n *Nest, strat Strategy, m Machine) Plan {
	if m.Procs < 1 {
		panic(fmt.Sprintf("autopar: PlanNest procs must be >= 1, got %d", m.Procs))
	}
	var candidates []int
	for d, l := range n.Loops {
		if n.Parallelizable(l.Var) {
			candidates = append(candidates, d)
		}
	}
	if len(candidates) == 0 {
		return Plan{Nest: n, Depth: -1, Reason: "no parallelizable loop"}
	}
	switch strat {
	case Innermost:
		d := candidates[len(candidates)-1]
		return Plan{Nest: n, Depth: d, Reason: fmt.Sprintf("innermost parallelizable loop %s", n.Loops[d].Var)}
	case Outermost:
		d := candidates[0]
		return Plan{Nest: n, Depth: d, Reason: fmt.Sprintf("outermost parallelizable loop %s", n.Loops[d].Var)}
	case CostGuided:
		d := candidates[0]
		minWork := model.MinWorkPerLoop(m.Procs, m.SyncCost, m.Budget)
		perRegion := n.regionWork(d)
		if perRegion < minWork {
			return Plan{Nest: n, Depth: -1,
				Reason: fmt.Sprintf("work per region %.3g below Table 1 threshold %.3g", perRegion, minWork)}
		}
		return Plan{Nest: n, Depth: d, Reason: fmt.Sprintf("loop %s clears Table 1 threshold", n.Loops[d].Var)}
	default:
		panic(fmt.Sprintf("autopar: unknown strategy %v", strat))
	}
}

// regionWork returns the work (cycles) inside one parallel region when
// the nest is parallelized at depth d: everything enclosed by that loop
// and the loops inside it.
func (n *Nest) regionWork(d int) float64 {
	w := n.WorkPerIter
	for i := d; i < len(n.Loops); i++ {
		w *= float64(n.Loops[i].N)
	}
	return w
}

// regionsPerStep returns how many parallel regions per step a plan at
// depth d opens: one per execution of the loops outside the region,
// times the call count.
func (n *Nest) regionsPerStep(d int) int {
	r := 1
	for i := 0; i < d; i++ {
		r *= n.Loops[i].N
	}
	calls := n.Calls
	if calls == 0 {
		calls = 1
	}
	return r * calls
}

// PlanProgram plans every nest and composes the result into a
// model.StepProfile (in cycles), ready for scaling prediction.
func PlanProgram(nests []*Nest, strat Strategy, m Machine) ([]Plan, model.StepProfile) {
	plans := make([]Plan, len(nests))
	var sp model.StepProfile
	for i, n := range nests {
		p := PlanNest(n, strat, m)
		plans[i] = p
		if !p.Parallel() {
			sp.SerialCycles += n.TotalWork()
			continue
		}
		sp.Loops = append(sp.Loops, model.LoopClass{
			Name:        n.Name,
			WorkCycles:  n.TotalWork(),
			Parallelism: n.Loops[p.Depth].N,
			SyncEvents:  n.regionsPerStep(p.Depth),
		})
	}
	return plans, sp
}

// PredictSpeedup plans the program under the strategy and returns the
// predicted whole-program speedup on the machine — the number Hisley's
// study compares across approaches.
func PredictSpeedup(nests []*Nest, strat Strategy, m Machine) float64 {
	_, sp := PlanProgram(nests, strat, m)
	return sp.PredictSpeedup(m.Procs, m.SyncCost)
}
