package autopar_test

import (
	"fmt"

	"repro/internal/autopar"
	"repro/internal/model"
)

// An implicit-sweep nest carries a dependence along j but is free in k
// and l — the analyzer finds exactly what a human reading the paper's
// Example 1 would.
func ExampleNest_Parallelizable() {
	sweep := &autopar.Nest{
		Name:  "sweep-j",
		Loops: []autopar.Loop{{Var: "l", N: 70}, {Var: "k", N: 75}, {Var: "j", N: 89}},
		Accesses: []autopar.Access{
			autopar.WriteTo("a", autopar.Idx("j"), autopar.Idx("k"), autopar.Idx("l")),
			autopar.Read("a", autopar.Idx("j").Plus(-1), autopar.Idx("k"), autopar.Idx("l")),
		},
		WorkPerIter: 80,
	}
	for _, v := range []string{"j", "k", "l"} {
		fmt.Printf("%s: %v\n", v, sweep.Parallelizable(v))
	}
	// Output:
	// j: false
	// k: true
	// l: true
}

// The cost-guided planner refuses a loop too cheap to amortize a
// synchronization (the paper's reason for leaving boundary conditions
// serial).
func ExamplePlanNest() {
	bc := &autopar.Nest{
		Name:  "bc",
		Loops: []autopar.Loop{{Var: "k", N: 75}, {Var: "j", N: 89}},
		Accesses: []autopar.Access{
			autopar.WriteTo("q", autopar.Idx("j"), autopar.Idx("k")),
		},
		WorkPerIter: 10,
	}
	m := autopar.Machine{Procs: 32, SyncCost: 100_000, Budget: model.OverheadBudget}
	p := autopar.PlanNest(bc, autopar.CostGuided, m)
	fmt.Println("parallel:", p.Parallel())
	// Output:
	// parallel: false
}
