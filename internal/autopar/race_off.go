//go:build !race

package autopar

// raceEnabled reports whether the Go race detector is active.
const raceEnabled = false
