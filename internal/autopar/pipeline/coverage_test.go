package pipeline

import (
	"math/rand"
	"testing"
)

// TestPlannerPropertySweep is the deterministic twin of
// FuzzPlanFromEvidence: a seeded sweep over generated evidence so the
// planner's property envelope (validity, determinism, fixed point) is
// exercised on every plain `go test` run, not only under -fuzz.
func TestPlannerPropertySweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := Config{}
	for iter := 0; iter < 500; iter++ {
		data := make([]byte, rng.Intn(64))
		rng.Read(data)
		ev := evidenceFromBytes(data)
		p := PlanFromEvidence(ev, cfg)
		if err := Validate(p, ev, cfg); err != nil {
			t.Fatalf("iter %d: invalid plan: %v\nevidence: %+v", iter, err, ev)
		}
		applied := Applied(ev, p, cfg)
		next := PlanFromEvidence(applied, cfg)
		if err := Validate(next, applied, cfg); err != nil {
			t.Fatalf("iter %d: invalid re-plan: %v", iter, err)
		}
		if ch := Changes(p, next); len(ch) != 0 {
			t.Fatalf("iter %d: not a fixed point: %v\nevidence: %+v", iter, ch, ev)
		}
	}
}

// Per-kind fact honesty checks not already covered by the planner
// paths: each dishonest fact must be rejected with a specific error.
func TestValidateFactObligations(t *testing.T) {
	l := cleanLoop("x", 0.9, 200_000)
	l.Parts = []PartEvidence{{Name: "pp", WorkFrac: 0.5, Static: StaticUnknown}}
	ev := Evidence{Loops: []LoopEvidence{l}}
	serialWith := func(f Fact) *Plan {
		return handPlan(LoopPlan{Loop: "x", Action: Serial, Rationale: []Fact{f}})
	}
	wantInvalid(t, serialWith(Fact{Kind: FactTrackerClean, Loop: "x"}), ev, "tracker-clean fact unsupported")
	wantInvalid(t, serialWith(Fact{Kind: FactNoEvidence, Loop: "x"}), ev, "evidence exists")
	wantInvalid(t, serialWith(Fact{Kind: FactGroupBudget, Loop: "x"}), ev, "ungrouped")
	wantInvalid(t, serialWith(Fact{Kind: FactPart, Loop: "x"}), ev, "part fact without a part")
	wantInvalid(t, serialWith(Fact{Kind: "vibes", Loop: "x"}), ev, "unknown fact kind")
	wantInvalid(t, serialWith(Fact{Kind: FactBudget, Loop: "x", Part: "nope", Value: 4}), ev, "unknown part")
	wantInvalid(t, handPlan(LoopPlan{Loop: "x", Action: Parallelize, Rationale: []Fact{
		{Kind: FactStatic, Loop: "x"},
		{Kind: FactBudget, Loop: "x", Value: 4},
		{Kind: FactRank, Loop: "x", Value: 0.1}, // real share is 0.9
	}}), ev, "rank fact share")

	// Unknown static verdict cannot back a static fact.
	u := cleanLoop("u", 0.9, 200_000)
	u.Static = StaticUnknown
	u.Tracked = true
	evu := Evidence{Loops: []LoopEvidence{u}}
	wantInvalid(t, handPlan(LoopPlan{Loop: "u", Action: Parallelize, Rationale: []Fact{
		{Kind: FactStatic, Loop: "u"},
		{Kind: FactBudget, Loop: "u", Value: 4},
	}}), evu, "verdict is")
}

// Validator legality paths the planner never takes on its own.
func TestValidateRejectsIllegalParallelizations(t *testing.T) {
	// Budget-failing loop parallelized.
	weak := cleanLoop("weak", 0.9, 10_000)
	ev := Evidence{Loops: []LoopEvidence{weak}}
	wantInvalid(t, handPlan(LoopPlan{Loop: "weak", Action: Parallelize, Rationale: []Fact{
		{Kind: FactStatic, Loop: "weak"},
		{Kind: FactBudget, Loop: "weak", Value: 0.2},
	}}), ev, "fails its sync budget")

	// Loop with a conflicted part run whole-parallel.
	mixed := cleanLoop("mixed", 0.9, 200_000)
	mixed.Parts = []PartEvidence{{Name: "bad", WorkFrac: 0.5, Static: StaticParallel, Conflicts: oneConflict()}}
	evm := Evidence{Loops: []LoopEvidence{mixed}}
	wantInvalid(t, handPlan(LoopPlan{Loop: "mixed", Action: Parallelize, Rationale: []Fact{
		{Kind: FactStatic, Loop: "mixed"},
		{Kind: FactBudget, Loop: "mixed", Value: 4},
	}}), evm, "observed conflicts")

	// Statically-serial part run whole-parallel.
	mixed2 := cleanLoop("m2", 0.9, 200_000)
	mixed2.Parts = []PartEvidence{{Name: "ser", WorkFrac: 0.5, Static: StaticSerial}}
	ev2 := Evidence{Loops: []LoopEvidence{mixed2}}
	wantInvalid(t, handPlan(LoopPlan{Loop: "m2", Action: Parallelize, Rationale: []Fact{
		{Kind: FactStatic, Loop: "m2"},
		{Kind: FactBudget, Loop: "m2", Value: 4},
	}}), ev2, "statically serial")

	// No dependence evidence at all.
	unk := cleanLoop("unk", 0.9, 200_000)
	unk.Static = StaticUnknown
	ev3 := Evidence{Loops: []LoopEvidence{unk}}
	wantInvalid(t, handPlan(LoopPlan{Loop: "unk", Action: Parallelize, Rationale: []Fact{
		{Kind: FactBudget, Loop: "unk", Value: 4},
	}}), ev3, "no dependence evidence")

	// Missing fact kinds on an otherwise legal parallelization.
	ok := cleanLoop("ok", 0.9, 200_000)
	ev4 := Evidence{Loops: []LoopEvidence{ok}}
	wantInvalid(t, handPlan(LoopPlan{Loop: "ok", Action: Parallelize, Rationale: []Fact{
		{Kind: FactBudget, Loop: "ok", Value: 4},
	}}), ev4, "without a dependence fact")
	wantInvalid(t, handPlan(LoopPlan{Loop: "ok", Action: Parallelize, Rationale: []Fact{
		{Kind: FactStatic, Loop: "ok"},
	}}), ev4, "without a budget fact")
}

func TestValidateMergeObligations(t *testing.T) {
	a, b := cleanLoop("a", 0.5, 20_000), cleanLoop("b", 0.4, 20_000)
	a.Group, b.Group = "g", "g"
	ev := Evidence{Loops: []LoopEvidence{a, b}}
	dep := func(l string) []Fact {
		return []Fact{{Kind: FactStatic, Loop: l}, {Kind: FactGroupBudget, Loop: l, Value: 0.5}}
	}
	// Fused region that still fails the combined budget.
	wantInvalid(t, &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "a", Action: Merge, Group: "g", Rationale: dep("a")},
		{Loop: "b", Action: Merge, Group: "g", Rationale: dep("b")},
	}}, ev, "fails the budget")

	// Merge whose stated group contradicts the evidence group.
	big, small := cleanLoop("big", 0.5, 120_000), cleanLoop("small", 0.4, 20_000)
	big.Group, small.Group = "g", "g"
	ev2 := Evidence{Loops: []LoopEvidence{big, small}}
	wantInvalid(t, &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "big", Action: Merge, Group: "other", Rationale: dep("big")},
		{Loop: "small", Action: Merge, Group: "g", Rationale: dep("small")},
	}}, ev2, "evidence group")

	// A merged loop must itself be dependence-clean.
	racy := cleanLoop("racy", 0.3, 120_000)
	racy.Group = "g"
	racy.Conflicts = oneConflict()
	ev3 := Evidence{Loops: []LoopEvidence{big, small, racy}}
	wantInvalid(t, &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "big", Action: Merge, Group: "g", Rationale: dep("big")},
		{Loop: "small", Action: Merge, Group: "g", Rationale: dep("small")},
		{Loop: "racy", Action: Merge, Group: "g", Rationale: []Fact{
			{Kind: FactGroupBudget, Loop: "racy", Value: 0.5}}},
	}}, ev3, "ineligible")
}

// Applied/Changes edge paths: plans that do not cover the evidence,
// fission of parts lacking their own certificates, merged groups in
// Changes.
func TestAppliedAndChangesEdges(t *testing.T) {
	cfg := Config{}
	// Loop absent from the plan carries over untouched.
	l := cleanLoop("extra", 0.5, 100_000)
	out := Applied(Evidence{Loops: []LoopEvidence{l}}, &Plan{Schema: Schema}, cfg)
	if len(out.Loops) != 1 || out.Loops[0].Name != "extra" {
		t.Fatalf("unplanned loop mangled: %+v", out.Loops)
	}

	// Fissioned part with no verdict of its own inherits the loop's
	// certificate; with neither, it lands unknown.
	host := cleanLoop("host", 0.8, 200_000)
	host.Parts = []PartEvidence{
		{Name: "u", WorkFrac: 0.6},
		{Name: "c", WorkFrac: 0.4, Conflicts: oneConflict()},
	}
	plan := handPlan(LoopPlan{Loop: "host", Action: Fission,
		ParallelParts: []string{"u"}, SerialParts: []string{"c"}})
	ap := Applied(Evidence{Loops: []LoopEvidence{host}}, plan, cfg)
	if u := ap.Loop("host-u"); u == nil || u.Static != StaticParallel {
		t.Errorf("part without verdict did not inherit the loop certificate: %+v", u)
	}
	host.Static = StaticUnknown
	host.Tracked = true
	ap2 := Applied(Evidence{Loops: []LoopEvidence{host}}, plan, cfg)
	if u := ap2.Loop("host-u"); u == nil || u.Static != StaticUnknown || !u.Tracked {
		t.Errorf("uncertified part: %+v", u)
	}

	// Changes: merged-group demotion and fission flips are reported.
	prev := &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "a", Action: Merge, Group: "g"},
		{Loop: "f", Action: Fission, ParallelParts: []string{"p"}, SerialParts: []string{"s"}},
	}}
	next := &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "g", Action: Serial},
		{Loop: "f-p", Action: Serial},
		{Loop: "f-s", Action: Parallelize},
	}}
	if ch := Changes(prev, next); len(ch) != 3 {
		t.Fatalf("changes = %v, want merged-group + two part flips", ch)
	}
}
