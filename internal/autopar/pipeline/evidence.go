package pipeline

import (
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// FromTrace builds planner evidence straight from a trace: analyze the
// events, then join the per-loop report with the declared static
// structure. Equivalent to FromAnalysis(analyze.Analyze(events, acfg),
// structs, source).
func FromTrace(events []obs.Event, acfg analyze.Config, structs []LoopStructure, source string) Evidence {
	return FromAnalysis(analyze.Analyze(events, acfg), structs, source)
}

// FromAnalysis turns an analyze report into planner evidence:
//
//   - RankShare comes from the report's profile.FromTrace ranking
//     (entries matching traced loop names; WallNs fallback when the
//     ranking carries none of them);
//   - the Table 1 budget verdict is taken from the report, except for
//     region-only loops — regions that partition work via ctx.Range
//     emit no chunk spans, so the analyzer sees WorkNs = 0 and fails
//     them vacuously. For those, work is re-estimated as span ×
//     workers (every worker busy for the region's span, the right
//     model for a statically partitioned region) and the verdict
//     recomputed against model.MinWorkPerLoop;
//   - the static verdict, merge group and mixed-body parts join in
//     from the declared structures; loops traced without a declaration
//     get StaticUnknown and no group — the conservative default.
//
// Dependence-run evidence (Tracker conflicts) is attached afterwards
// with AddConflicts/MarkTracked — tracing and tracking are separate
// instrumented runs.
func FromAnalysis(rep *analyze.Report, structs []LoopStructure, source string) Evidence {
	cfg := rep.Config.Defaults()
	byName := make(map[string]*LoopStructure, len(structs))
	for i := range structs {
		byName[structs[i].Name] = &structs[i]
	}

	// Rank shares: profiled time per loop, normalized. The ranking
	// carries sub-entries too ("label/barrier", "label/chunk"); only
	// entries naming a traced loop count.
	loopNames := make(map[string]bool, len(rep.Loops))
	for i := range rep.Loops {
		loopNames[rep.Loops[i].Name] = true
	}
	totals := make(map[string]float64, len(rep.Loops))
	sum := 0.0
	for _, e := range rep.Ranked {
		if loopNames[e.Name] {
			totals[e.Name] += float64(e.Total)
			sum += float64(e.Total)
		}
	}
	if sum == 0 {
		for i := range rep.Loops {
			l := &rep.Loops[i]
			totals[l.Name] = float64(l.WallNs)
			sum += float64(l.WallNs)
		}
	}

	ev := Evidence{Source: source, SyncCostCycles: cfg.SyncCostCycles}
	for i := range rep.Loops {
		l := &rep.Loops[i]
		le := LoopEvidence{
			Name:              l.Name,
			WorkNs:            l.WorkNs,
			Workers:           l.Workers,
			SyncEvents:        l.SyncEvents,
			WorkPerSyncCycles: l.Budget.WorkPerSyncCycles,
			MinWorkCycles:     l.Budget.MinWorkCycles,
			BudgetPass:        l.Budget.Pass,
			ImbalanceFrac:     l.Attribution.ImbalanceFrac,
			BarrierFrac:       l.Attribution.BarrierFrac,
			Static:            StaticUnknown,
		}
		if sum > 0 {
			le.RankShare = totals[l.Name] / sum
		}
		if l.Workers > ev.Procs {
			ev.Procs = l.Workers
		}
		if l.WorkNs == 0 && l.SpanNs > 0 && l.SyncEvents > 0 {
			procs := l.Workers
			if procs < 1 {
				procs = 1
			}
			est := float64(l.SpanNs) * float64(procs) * cfg.ClockGHz
			le.WorkNs = int64(float64(l.SpanNs) * float64(procs))
			le.WorkPerSyncCycles = est / float64(l.SyncEvents)
			le.MinWorkCycles = model.MinWorkPerLoop(procs, cfg.SyncCostCycles, cfg.Budget)
			le.BudgetPass = le.WorkPerSyncCycles >= le.MinWorkCycles
		}
		if st := byName[l.Name]; st != nil {
			if st.Static != "" {
				le.Static = st.Static
			}
			le.Group = st.Group
			for _, pt := range st.Parts {
				le.Parts = append(le.Parts, PartEvidence{
					Name:     pt.Name,
					WorkFrac: pt.WorkFrac,
					Static:   partStatic(pt.Static),
				})
			}
		}
		ev.Loops = append(ev.Loops, le)
	}
	ev.Loops = sortLoops(ev.Loops)
	return ev
}

func partStatic(v StaticVerdict) StaticVerdict {
	if v == "" {
		return StaticUnknown
	}
	return v
}

// AddConflicts attaches observed dependence conflicts to a loop (or,
// with part != "", to one of its declared parts) and marks the loop
// tracked. Returns false when the loop (or part) is not in the
// evidence.
func (ev *Evidence) AddConflicts(loop, part string, cs []Conflict) bool {
	l := ev.Loop(loop)
	if l == nil {
		return false
	}
	l.Tracked = true
	if part == "" {
		l.Conflicts = append(l.Conflicts, cs...)
		return true
	}
	for i := range l.Parts {
		if l.Parts[i].Name == part {
			l.Parts[i].Conflicts = append(l.Parts[i].Conflicts, cs...)
			return true
		}
	}
	return false
}

// MarkTracked records that the named loops ran under dependence
// instrumentation (a clean tracked run, when no conflicts are added):
// the evidence that promotes a statically-unknown loop.
func (ev *Evidence) MarkTracked(loops ...string) {
	for _, name := range loops {
		if l := ev.Loop(name); l != nil {
			l.Tracked = true
		}
	}
}
