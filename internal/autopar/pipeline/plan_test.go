package pipeline

import (
	"strings"
	"testing"
)

// cleanLoop builds a statically-certified, budget-relevant loop.
func cleanLoop(name string, share, wps float64) LoopEvidence {
	return LoopEvidence{
		Name:              name,
		RankShare:         share,
		WorkNs:            int64(share * 1e9),
		Workers:           4,
		SyncEvents:        10,
		WorkPerSyncCycles: wps,
		MinWorkCycles:     50_000,
		BudgetPass:        wps >= 50_000,
		Static:            StaticParallel,
	}
}

func oneConflict() []Conflict {
	return []Conflict{{Array: "a", Index: 7, Kind: "write-read", Detail: "write-read race on a[7]"}}
}

func mustValidate(t *testing.T, p *Plan, ev Evidence, cfg Config) {
	t.Helper()
	if err := Validate(p, ev, cfg); err != nil {
		t.Fatalf("planner emitted an invalid plan: %v", err)
	}
}

func TestPlanParallelizesHotCleanLoop(t *testing.T) {
	ev := Evidence{Source: "t", Procs: 4, Loops: []LoopEvidence{cleanLoop("hot", 0.9, 200_000)}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	d, ok := p.Decision("hot")
	if !ok || d.Action != Parallelize {
		t.Fatalf("decision = %+v, want parallelize", d)
	}
	if !hasKind(d.Rationale, FactStatic) || !hasKind(d.Rationale, FactBudget) || !hasKind(d.Rationale, FactRank) {
		t.Errorf("rationale missing dependence/budget/rank facts: %+v", d.Rationale)
	}
}

func TestPlanDemotesObservedConflict(t *testing.T) {
	l := cleanLoop("racy", 0.9, 200_000)
	l.Tracked = true
	l.Conflicts = oneConflict()
	l.Static = StaticUnknown
	ev := Evidence{Loops: []LoopEvidence{l}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	d, _ := p.Decision("racy")
	if d.Action != Serial {
		t.Fatalf("conflicted loop planned %s, want serial", d.Action)
	}
	if !hasKind(d.Rationale, FactConflict) {
		t.Errorf("no conflict fact in %+v", d.Rationale)
	}
}

// Even a conflict-free tracked run must not override a static serial
// proof: the dependence may be input-dependent.
func TestPlanDemotesStaticSerialDespiteCleanRun(t *testing.T) {
	l := cleanLoop("proven", 0.9, 200_000)
	l.Static = StaticSerial
	l.Tracked = true
	ev := Evidence{Loops: []LoopEvidence{l}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	if d, _ := p.Decision("proven"); d.Action != Serial {
		t.Fatalf("statically serial loop planned %s, want serial", d.Action)
	}
}

func TestPlanDemotesWithoutDependenceEvidence(t *testing.T) {
	l := cleanLoop("mystery", 0.9, 200_000)
	l.Static = StaticUnknown // and not tracked
	ev := Evidence{Loops: []LoopEvidence{l}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	d, _ := p.Decision("mystery")
	if d.Action != Serial || !hasKind(d.Rationale, FactNoEvidence) {
		t.Fatalf("unknown untracked loop: %+v, want serial with no-evidence fact", d)
	}
}

// A clean tracked run promotes a statically-unknown loop — the
// evidence-driven promotion the static planner alone cannot make.
func TestPlanPromotesTrackedUnknown(t *testing.T) {
	l := cleanLoop("promoted", 0.9, 200_000)
	l.Static = StaticUnknown
	l.Tracked = true
	ev := Evidence{Loops: []LoopEvidence{l}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	d, _ := p.Decision("promoted")
	if d.Action != Parallelize || !hasKind(d.Rationale, FactTrackerClean) {
		t.Fatalf("tracked-clean unknown loop: %+v, want parallelize with tracker-clean fact", d)
	}
}

func TestPlanDemotesBudgetFailAndCold(t *testing.T) {
	ev := Evidence{Loops: []LoopEvidence{
		cleanLoop("tiny", 0.6, 10_000),    // budget fail
		cleanLoop("cold", 0.0001, 90_000), // passes budget, below rank threshold
	}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	if d, _ := p.Decision("tiny"); d.Action != Serial || !hasKind(d.Rationale, FactBudget) {
		t.Errorf("budget-failing loop: %+v, want serial with budget fact", d)
	}
	if d, _ := p.Decision("cold"); d.Action != Serial || !hasKind(d.Rationale, FactCold) {
		t.Errorf("cold loop: %+v, want serial with cold fact", d)
	}
}

// Two adjacent regions where one cannot amortize its own fork-join but
// the fused region can: the Example 2/3 merge.
func TestPlanMergesAdjacentRegions(t *testing.T) {
	big := cleanLoop("big", 0.7, 120_000)
	small := cleanLoop("small", 0.2, 20_000) // fails alone
	big.Group, small.Group = "step", "step"
	ev := Evidence{Loops: []LoopEvidence{big, small}}
	cfg := Config{}
	p := PlanFromEvidence(ev, cfg)
	mustValidate(t, p, ev, cfg)
	for _, name := range []string{"big", "small"} {
		d, _ := p.Decision(name)
		if d.Action != Merge || d.Group != "step" {
			t.Fatalf("loop %s: %+v, want merge into step", name, d)
		}
		if !hasKind(d.Rationale, FactGroupBudget) {
			t.Errorf("loop %s merged without group-budget fact", name)
		}
	}
	// Fused: (120k+20k)/(1+0.5) ≈ 93k >= 50k.
	next := PlanFromEvidence(Applied(ev, p, cfg), cfg)
	if ch := Changes(p, next); len(ch) != 0 {
		t.Errorf("merge not a fixed point: %v", ch)
	}
	if d, ok := next.Decision("step"); !ok || d.Action != Parallelize {
		t.Errorf("fused region re-plans as %+v, want parallelize", d)
	}
}

// A group whose members all clear their own budgets stays unfused: the
// merge transform exists to rescue failing loops, not to fuse for its
// own sake.
func TestPlanNoMergeWhenAllPass(t *testing.T) {
	a, b := cleanLoop("a", 0.5, 120_000), cleanLoop("b", 0.4, 120_000)
	a.Group, b.Group = "g", "g"
	ev := Evidence{Loops: []LoopEvidence{a, b}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	if p.Count(Merge) != 0 || p.Count(Parallelize) != 2 {
		t.Fatalf("plan = %+v, want two parallelize and no merge", p.Loops)
	}
}

// A merge must not launder a budget failure the fused region cannot
// fix: two tiny loops stay serial.
func TestPlanNoMergeWhenFusedStillFails(t *testing.T) {
	a, b := cleanLoop("a", 0.5, 20_000), cleanLoop("b", 0.4, 20_000)
	a.Group, b.Group = "g", "g"
	ev := Evidence{Loops: []LoopEvidence{a, b}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	// Fused: 40k/1.5 ≈ 27k < 50k — no merge, both serial.
	if p.Count(Serial) != 2 {
		t.Fatalf("plan = %+v, want both serial", p.Loops)
	}
}

// A mixed body whose obstruction localizes to one part fissions: the
// clean hot part runs parallel, the conflicted part stays serial.
func TestPlanFissionsMixedBody(t *testing.T) {
	l := cleanLoop("rhs", 0.8, 200_000)
	l.Parts = []PartEvidence{
		{Name: "jk", WorkFrac: 0.6, Static: StaticParallel},
		{Name: "l", WorkFrac: 0.4, Static: StaticParallel, Conflicts: oneConflict()},
	}
	ev := Evidence{Loops: []LoopEvidence{l}}
	cfg := Config{}
	p := PlanFromEvidence(ev, cfg)
	mustValidate(t, p, ev, cfg)
	d, _ := p.Decision("rhs")
	if d.Action != Fission {
		t.Fatalf("mixed body planned %s, want fission", d.Action)
	}
	if len(d.ParallelParts) != 1 || d.ParallelParts[0] != "jk" ||
		len(d.SerialParts) != 1 || d.SerialParts[0] != "l" {
		t.Fatalf("fission split %v / %v, want [jk] / [l]", d.ParallelParts, d.SerialParts)
	}
	next := PlanFromEvidence(Applied(ev, p, cfg), cfg)
	if ch := Changes(p, next); len(ch) != 0 {
		t.Errorf("fission not a fixed point: %v", ch)
	}
	if d, ok := next.Decision("rhs-jk"); !ok || d.Action != Parallelize {
		t.Errorf("fissioned parallel part re-plans as %+v", d)
	}
	if d, ok := next.Decision("rhs-l"); !ok || d.Action != Serial {
		t.Errorf("fissioned serial part re-plans as %+v", d)
	}
}

// When no part is worth isolating the mixed body stays serial whole.
func TestPlanMixedBodyWithNoViablePartStaysSerial(t *testing.T) {
	l := cleanLoop("rhs", 0.8, 60_000)
	l.Parts = []PartEvidence{
		// Clean but too small to amortize a region of its own.
		{Name: "jk", WorkFrac: 0.3, Static: StaticParallel},
		{Name: "l", WorkFrac: 0.7, Static: StaticSerial},
	}
	ev := Evidence{Loops: []LoopEvidence{l}}
	p := PlanFromEvidence(ev, Config{})
	mustValidate(t, p, ev, Config{})
	if d, _ := p.Decision("rhs"); d.Action != Serial {
		t.Fatalf("planned %s, want serial (18k cycles/sync part cannot amortize)", d.Action)
	}
}

// Plans come out hottest loop first — the §4 ranking order.
func TestPlanOrderHottestFirst(t *testing.T) {
	ev := Evidence{Loops: []LoopEvidence{
		cleanLoop("warm", 0.3, 100_000),
		cleanLoop("hot", 0.6, 100_000),
		cleanLoop("cool", 0.1, 100_000),
	}}
	p := PlanFromEvidence(ev, Config{})
	want := []string{"hot", "warm", "cool"}
	for i, lp := range p.Loops {
		if lp.Loop != want[i] {
			t.Fatalf("plan order %v, want %v", planNames(p), want)
		}
	}
}

func planNames(p *Plan) []string {
	var out []string
	for _, lp := range p.Loops {
		out = append(out, lp.Loop)
	}
	return out
}

func TestChangesReportsFlips(t *testing.T) {
	prev := &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "a", Action: Parallelize},
		{Loop: "b", Action: Serial},
	}}
	next := &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "a", Action: Serial},
		{Loop: "b", Action: Serial},
	}}
	ch := Changes(prev, next)
	if len(ch) != 1 || !strings.Contains(ch[0], `"a"`) {
		t.Fatalf("changes = %v, want one flip on a", ch)
	}
}

func TestPlanCountAndDecision(t *testing.T) {
	ev := Evidence{Loops: []LoopEvidence{cleanLoop("x", 0.9, 200_000)}}
	p := PlanFromEvidence(ev, Config{})
	if p.Count(Parallelize) != 1 || p.Count(Serial) != 0 {
		t.Errorf("counts wrong: %+v", p.Loops)
	}
	if _, ok := p.Decision("absent"); ok {
		t.Errorf("Decision invented an entry")
	}
}
