package pipeline

import (
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/parloop"
)

// tracePhases runs two prefixed phase loops plus an out-of-prefix loop
// on a traced team, the way a phase-traced daemon job would.
func tracePhases(t *testing.T, prefix string) []obs.Event {
	t.Helper()
	tr := obs.NewTracer(1<<14, nil)
	tr.Enable()
	team := parloop.NewTeam(4)
	defer team.Close()
	team.SetTracer(tr, prefix+"/rhs")
	for i := 0; i < 3; i++ {
		team.For(64, func(int) { spin(20_000) })
	}
	team.SetLabel(prefix + "/sweep-jk")
	for i := 0; i < 3; i++ {
		team.For(64, func(int) { spin(10_000) })
	}
	team.SetLabel("otherjob/loop") // must not leak into this job's plan
	team.For(64, func(int) { spin(5_000) })
	return tr.Events()
}

func TestManagerDerivesAndCachesPlan(t *testing.T) {
	m := NewManager()
	m.Register(7, "jobA", "jobA", F3DStructure("jobA"), analyze.Config{}, Config{})
	if !m.Registered(7) || m.Registered(8) {
		t.Fatal("registration bookkeeping wrong")
	}

	events := tracePhases(t, "jobA")
	p, err := m.Plan(7, events)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if _, ok := p.Decision("jobA/rhs"); !ok {
		t.Fatalf("plan misses the traced rhs loop: %+v", p.Loops)
	}
	if _, ok := p.Decision("otherjob/loop"); ok {
		t.Fatal("plan includes another job's loop")
	}
	// Cached: identical plan served with no events at all.
	p2, err := m.Plan(7, nil)
	if err != nil || p2 != p {
		t.Fatalf("cached plan not served: %v %p vs %p", err, p2, p)
	}
}

func TestManagerErrors(t *testing.T) {
	m := NewManager()
	if _, err := m.Plan(1, nil); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unregistered job: %v, want ErrUnknownJob", err)
	}
	if err := m.SetPlan(1, &Plan{Schema: Schema}); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("SetPlan on unregistered job: %v", err)
	}
	m.Register(1, "j", "j", nil, analyze.Config{}, Config{})
	if _, err := m.Plan(1, nil); !errors.Is(err, ErrNoEvidence) {
		t.Fatalf("empty trace: %v, want ErrNoEvidence", err)
	}
	// An untraced-run error is not cached: evidence arriving later
	// still yields a plan.
	events := tracePhases(t, "j")
	if _, err := m.Plan(1, events); err != nil {
		t.Fatalf("Plan after evidence: %v", err)
	}
}

func TestManagerSetPlan(t *testing.T) {
	m := NewManager()
	m.Register(3, "j", "j", nil, analyze.Config{}, Config{})
	want := &Plan{Schema: Schema, Source: "stored"}
	if err := m.SetPlan(3, want); err != nil {
		t.Fatalf("SetPlan: %v", err)
	}
	got, err := m.Plan(3, nil)
	if err != nil || got != want {
		t.Fatalf("stored plan not served: %v %+v", err, got)
	}
}
