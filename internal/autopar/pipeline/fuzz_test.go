package pipeline

import (
	"fmt"
	"reflect"
	"testing"
)

// evidenceFromBytes deterministically synthesizes planner evidence
// from a fuzz payload: up to 8 loops with fuzzed rankings, budgets,
// static verdicts, tracker evidence, merge groups and mixed-body
// parts. Loop and part names are index-derived so the generator never
// produces the duplicate-name inputs the validator (rightly) rejects.
func evidenceFromBytes(data []byte) Evidence {
	next := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nLoops := int(next())%8 + 1
	ev := Evidence{Source: "fuzz", Procs: int(next())%8 + 1, SyncCostCycles: 10_000}
	for i := 0; i < nLoops; i++ {
		l := LoopEvidence{
			Name:              fmt.Sprintf("L%d", i),
			RankShare:         float64(next()) / 255,
			WorkNs:            int64(next()) * 1_000_000,
			Workers:           int(next())%8 + 1,
			SyncEvents:        int(next()) % 64,
			WorkPerSyncCycles: float64(next()) * 1_000,
			MinWorkCycles:     float64(next()) * 500,
		}
		l.BudgetPass = l.WorkPerSyncCycles >= l.MinWorkCycles
		switch next() % 3 {
		case 0:
			l.Static = StaticUnknown
		case 1:
			l.Static = StaticParallel
		case 2:
			l.Static = StaticSerial
		}
		if next()%2 == 0 {
			l.Tracked = true
			for c := int(next()) % 3; c > 0; c-- {
				l.Conflicts = append(l.Conflicts, Conflict{
					Array: "a", Index: int(next()), Kind: "write-read",
				})
			}
		}
		if g := next() % 4; g != 0 {
			l.Group = fmt.Sprintf("g%d", g)
		}
		for p := int(next()) % 3; p > 0; p-- {
			pt := PartEvidence{
				Name:     fmt.Sprintf("p%d", p),
				WorkFrac: float64(next()) / 255,
			}
			switch next() % 3 {
			case 0:
				pt.Static = StaticUnknown
			case 1:
				pt.Static = StaticParallel
			case 2:
				pt.Static = StaticSerial
			}
			if next()%4 == 0 {
				pt.Conflicts = []Conflict{{Array: "q", Index: int(next()), Kind: "write-write"}}
			}
			l.Parts = append(l.Parts, pt)
		}
		ev.Loops = append(ev.Loops, l)
	}
	return ev
}

// FuzzPlanFromEvidence: for arbitrary ranking/conflict-set/verdict
// triples the planner must emit a plan that (1) validates against its
// own evidence — so it never parallelizes a flagged loop, never
// fissions illegally, and every rationale is closure-complete — (2) is
// deterministic, and (3) is a fixed point under re-planning from the
// applied evidence.
func FuzzPlanFromEvidence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 4, 200, 10, 4, 8, 250, 9, 1, 0, 1, 2, 100, 1, 130, 1, 0})
	f.Add([]byte("merge-groups-and-parts-seed-corpus-entry"))
	f.Add([]byte{8, 2, 255, 255, 8, 63, 255, 0, 2, 0, 2, 2, 128, 2, 64, 1, 1, 7, 99, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		ev := evidenceFromBytes(data)
		cfg := Config{}
		p := PlanFromEvidence(ev, cfg)
		if err := Validate(p, ev, cfg); err != nil {
			t.Fatalf("planner emitted an invalid plan: %v\nevidence: %+v", err, ev)
		}
		for _, lp := range p.Loops {
			l := ev.Loop(lp.Loop)
			if (lp.Action == Parallelize || lp.Action == Merge) && len(l.Conflicts) > 0 {
				t.Fatalf("tracker-flagged loop %q parallelized", lp.Loop)
			}
			if len(lp.Rationale) == 0 {
				t.Fatalf("loop %q decided without rationale", lp.Loop)
			}
		}
		if p2 := PlanFromEvidence(ev, cfg); !reflect.DeepEqual(p, p2) {
			t.Fatalf("planner nondeterministic:\n%+v\nvs\n%+v", p, p2)
		}
		applied := Applied(ev, p, cfg)
		next := PlanFromEvidence(applied, cfg)
		if err := Validate(next, applied, cfg); err != nil {
			t.Fatalf("re-plan invalid: %v", err)
		}
		if ch := Changes(p, next); len(ch) != 0 {
			t.Fatalf("plan not a fixed point: %v\nevidence: %+v", ch, ev)
		}
	})
}
