package pipeline

import (
	"fmt"
	"math"
)

// Validate machine-checks a plan against the evidence it claims to
// rest on. It enforces legality (no dependence-flagged loop may run
// parallel, fissions must partition the declared parts, merges must be
// all-or-none per group), closure (every evidence loop is decided,
// every decision cites at least one fact, every fact names its own
// loop), and honesty (each fact kind has obligations the evidence must
// actually support — a conflict fact requires observed conflicts, a
// budget fact must state the real ratio). Validate accepts plans the
// planner would not emit — it checks legality and honesty, not
// optimality — so it can gate hand-written or fuzzed plans too.
func Validate(p *Plan, ev Evidence, cfg Config) error {
	cfg = cfg.withDefaults()
	if p == nil {
		return fmt.Errorf("pipeline: nil plan")
	}
	if p.Schema != Schema {
		return fmt.Errorf("pipeline: plan schema %d, want %d", p.Schema, Schema)
	}

	// Exact closure: plan loops == evidence loops, no dups, no extras.
	seen := make(map[string]bool, len(p.Loops))
	for i := range p.Loops {
		lp := &p.Loops[i]
		if seen[lp.Loop] {
			return fmt.Errorf("pipeline: duplicate decision for loop %q", lp.Loop)
		}
		seen[lp.Loop] = true
		l := ev.Loop(lp.Loop)
		if l == nil {
			return fmt.Errorf("pipeline: decision for loop %q absent from evidence", lp.Loop)
		}
		if err := validateDecision(lp, l, p, ev, cfg); err != nil {
			return err
		}
	}
	for i := range ev.Loops {
		if !seen[ev.Loops[i].Name] {
			return fmt.Errorf("pipeline: evidence loop %q has no decision", ev.Loops[i].Name)
		}
	}
	return nil
}

func validateDecision(lp *LoopPlan, l *LoopEvidence, p *Plan, ev Evidence, cfg Config) error {
	if len(lp.Rationale) == 0 {
		return fmt.Errorf("pipeline: loop %q: empty rationale", lp.Loop)
	}
	for i := range lp.Rationale {
		if err := validateFact(&lp.Rationale[i], l, ev, cfg); err != nil {
			return fmt.Errorf("pipeline: loop %q: %w", lp.Loop, err)
		}
	}

	switch lp.Action {
	case Parallelize:
		if err := parallelLegal(l); err != nil {
			return fmt.Errorf("pipeline: loop %q parallelized illegally: %w", lp.Loop, err)
		}
		if !l.BudgetPass {
			return fmt.Errorf("pipeline: loop %q parallelized but fails its sync budget", lp.Loop)
		}
		if !hasKind(lp.Rationale, FactStatic, FactTrackerClean) {
			return fmt.Errorf("pipeline: loop %q parallelized without a dependence fact", lp.Loop)
		}
		if !hasKind(lp.Rationale, FactBudget, FactGroupBudget) {
			return fmt.Errorf("pipeline: loop %q parallelized without a budget fact", lp.Loop)
		}
	case Merge:
		if err := parallelLegal(l); err != nil {
			return fmt.Errorf("pipeline: loop %q merged illegally: %w", lp.Loop, err)
		}
		if lp.Group == "" || lp.Group != l.Group {
			return fmt.Errorf("pipeline: loop %q merged into group %q but evidence group is %q",
				lp.Loop, lp.Group, l.Group)
		}
		if err := mergeGroupLegal(lp, p, ev, cfg); err != nil {
			return err
		}
		if !hasKind(lp.Rationale, FactStatic, FactTrackerClean) {
			return fmt.Errorf("pipeline: loop %q merged without a dependence fact", lp.Loop)
		}
		if !hasKind(lp.Rationale, FactGroupBudget) {
			return fmt.Errorf("pipeline: loop %q merged without a group-budget fact", lp.Loop)
		}
	case Fission:
		if err := fissionLegal(lp, l, cfg); err != nil {
			return err
		}
	case Serial:
		if !hasKind(lp.Rationale, FactConflict, FactStatic, FactNoEvidence, FactBudget, FactCold, FactPart) {
			return fmt.Errorf("pipeline: loop %q left serial without a demotion fact", lp.Loop)
		}
	default:
		return fmt.Errorf("pipeline: loop %q: unknown action %q", lp.Loop, lp.Action)
	}
	return nil
}

// parallelLegal: the loop-level dependence obligations for running the
// whole body parallel (Parallelize or Merge).
func parallelLegal(l *LoopEvidence) error {
	if len(l.Conflicts) > 0 {
		return fmt.Errorf("tracker observed %d conflict(s)", len(l.Conflicts))
	}
	if l.Static == StaticSerial {
		return fmt.Errorf("statically proven loop-carried dependence")
	}
	for i := range l.Parts {
		if len(l.Parts[i].Conflicts) > 0 {
			return fmt.Errorf("part %q has observed conflicts", l.Parts[i].Name)
		}
		if l.Parts[i].Static == StaticSerial {
			return fmt.Errorf("part %q is statically serial", l.Parts[i].Name)
		}
	}
	if l.Static != StaticParallel && !l.Tracked {
		return fmt.Errorf("no dependence evidence (static unknown, no tracked run)")
	}
	return nil
}

// mergeGroupLegal: every clean evidence loop in the group must carry
// the Merge action (all-or-none), the group needs >= 2 members, and
// the fused region must clear the combined budget.
func mergeGroupLegal(lp *LoopPlan, p *Plan, ev Evidence, cfg Config) error {
	var members []*LoopEvidence
	for i := range ev.Loops {
		m := &ev.Loops[i]
		if m.Group != lp.Group {
			continue
		}
		d, ok := p.Decision(m.Name)
		if ok && d.Action == Merge {
			if parallelLegal(m) != nil {
				return fmt.Errorf("pipeline: group %q merges ineligible loop %q", lp.Group, m.Name)
			}
			members = append(members, m)
			continue
		}
		// A group member not merged must itself be an eligible merge
		// candidate only if it was clean — but leaving a clean member
		// out of the fused region is allowed only when it is not in
		// the plan at all (which closure already forbids). All-or-none:
		if parallelLegal(m) == nil {
			return fmt.Errorf("pipeline: group %q splits: member %q not merged", lp.Group, m.Name)
		}
	}
	if len(members) < 2 {
		return fmt.Errorf("pipeline: group %q merges %d loop(s); need >= 2", lp.Group, len(members))
	}
	minw := 0.0
	for _, m := range members {
		if m.MinWorkCycles > minw {
			minw = m.MinWorkCycles
		}
	}
	if wps := mergedWorkPerSync(members, cfg); wps < minw {
		return fmt.Errorf("pipeline: group %q fused region fails the budget: %.0f cycles/sync vs %.0f",
			lp.Group, wps, minw)
	}
	return nil
}

func fissionLegal(lp *LoopPlan, l *LoopEvidence, cfg Config) error {
	if len(l.Parts) == 0 {
		return fmt.Errorf("pipeline: loop %q fissioned but declares no parts", lp.Loop)
	}
	if len(l.Conflicts) > 0 {
		return fmt.Errorf("pipeline: loop %q fissioned despite loop-level conflicts", lp.Loop)
	}
	if l.Static == StaticSerial {
		return fmt.Errorf("pipeline: loop %q fissioned despite a static serial verdict", lp.Loop)
	}
	if len(lp.ParallelParts) == 0 {
		return fmt.Errorf("pipeline: loop %q fissioned with no parallel part", lp.Loop)
	}
	// ParallelParts ∪ SerialParts must partition the declared parts.
	assigned := map[string]string{}
	for _, n := range lp.ParallelParts {
		assigned[n] = "parallel"
	}
	for _, n := range lp.SerialParts {
		if assigned[n] != "" {
			return fmt.Errorf("pipeline: loop %q: part %q both parallel and serial", lp.Loop, n)
		}
		assigned[n] = "serial"
	}
	if len(assigned) != len(lp.ParallelParts)+len(lp.SerialParts) {
		return fmt.Errorf("pipeline: loop %q: duplicate part assignment", lp.Loop)
	}
	if len(assigned) != len(l.Parts) {
		return fmt.Errorf("pipeline: loop %q: fission assigns %d part(s), evidence declares %d",
			lp.Loop, len(assigned), len(l.Parts))
	}
	for i := range l.Parts {
		pt := &l.Parts[i]
		side, ok := assigned[pt.Name]
		if !ok {
			return fmt.Errorf("pipeline: loop %q: declared part %q unassigned", lp.Loop, pt.Name)
		}
		if side != "parallel" {
			continue
		}
		if !partParallelizable(l, pt) {
			return fmt.Errorf("pipeline: loop %q: part %q parallelized without dependence evidence",
				lp.Loop, pt.Name)
		}
		frac := clampFrac(pt.WorkFrac)
		if wps := l.WorkPerSyncCycles * frac; wps < l.MinWorkCycles {
			return fmt.Errorf("pipeline: loop %q: part %q parallelized but fails the budget (%.0f vs %.0f)",
				lp.Loop, pt.Name, wps, l.MinWorkCycles)
		}
		if share := l.RankShare * frac; share < cfg.MinRankShare {
			return fmt.Errorf("pipeline: loop %q: part %q parallelized below the rank threshold", lp.Loop, pt.Name)
		}
	}
	return nil
}

// validateFact checks one fact's obligations against the evidence.
func validateFact(f *Fact, l *LoopEvidence, ev Evidence, cfg Config) error {
	if f.Loop != l.Name {
		return fmt.Errorf("fact %q names loop %q", f.Kind, f.Loop)
	}
	var pt *PartEvidence
	if f.Part != "" {
		for i := range l.Parts {
			if l.Parts[i].Name == f.Part {
				pt = &l.Parts[i]
				break
			}
		}
		if pt == nil {
			return fmt.Errorf("fact %q names unknown part %q", f.Kind, f.Part)
		}
	}
	switch f.Kind {
	case FactConflict:
		n := len(l.Conflicts)
		if pt != nil {
			n = len(pt.Conflicts)
		}
		if n == 0 {
			return fmt.Errorf("conflict fact but no observed conflicts")
		}
		if f.Value != float64(n) {
			return fmt.Errorf("conflict fact claims %.0f conflict(s), evidence has %d", f.Value, n)
		}
	case FactTrackerClean:
		if !l.Tracked || len(l.Conflicts) > 0 {
			return fmt.Errorf("tracker-clean fact unsupported (tracked=%v, %d conflicts)",
				l.Tracked, len(l.Conflicts))
		}
	case FactStatic:
		v := l.Static
		if pt != nil {
			v = pt.Static
		}
		if v != StaticParallel && v != StaticSerial {
			return fmt.Errorf("static fact but verdict is %q", v)
		}
	case FactNoEvidence:
		if pt == nil {
			if l.Static == StaticParallel || l.Tracked {
				return fmt.Errorf("no-evidence fact but evidence exists")
			}
		} else if partParallelizable(l, pt) || len(pt.Conflicts) > 0 || pt.Static == StaticSerial {
			return fmt.Errorf("no-evidence fact for part %q but evidence exists", f.Part)
		}
	case FactBudget:
		wps, minw := l.WorkPerSyncCycles, l.MinWorkCycles
		if pt != nil {
			wps *= clampFrac(pt.WorkFrac)
		}
		if !close64(f.Value, budgetRatio(wps, minw)) {
			return fmt.Errorf("budget fact ratio %.6g does not match evidence %.6g",
				f.Value, budgetRatio(wps, minw))
		}
	case FactGroupBudget:
		if l.Group == "" {
			return fmt.Errorf("group-budget fact on ungrouped loop")
		}
	case FactRank:
		share := l.RankShare
		if pt != nil {
			share *= clampFrac(pt.WorkFrac)
		}
		if !close64(f.Value, share) {
			return fmt.Errorf("rank fact share %.6g does not match evidence %.6g", f.Value, share)
		}
	case FactCold:
		share := l.RankShare
		if pt != nil {
			share *= clampFrac(pt.WorkFrac)
		}
		if !close64(f.Value, share) || share >= cfg.MinRankShare {
			return fmt.Errorf("cold fact share %.6g vs evidence %.6g (threshold %.6g)",
				f.Value, share, cfg.MinRankShare)
		}
	case FactPart:
		if pt == nil {
			return fmt.Errorf("part fact without a part")
		}
	default:
		return fmt.Errorf("unknown fact kind %q", f.Kind)
	}
	return nil
}

func hasKind(facts []Fact, kinds ...string) bool {
	for i := range facts {
		for _, k := range kinds {
			if facts[i].Kind == k {
				return true
			}
		}
	}
	return false
}

func close64(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}
