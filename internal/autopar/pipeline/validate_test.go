package pipeline

import (
	"strings"
	"testing"
)

// handPlan builds a plan around one decision, for validator tests.
func handPlan(lp LoopPlan) *Plan {
	return &Plan{Schema: Schema, Loops: []LoopPlan{lp}}
}

func wantInvalid(t *testing.T, p *Plan, ev Evidence, frag string) {
	t.Helper()
	err := Validate(p, ev, Config{})
	if err == nil {
		t.Fatalf("invalid plan accepted (want error containing %q)", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not mention %q", err, frag)
	}
}

// The headline negative: no valid plan parallelizes a loop the Tracker
// flagged, whatever rationale it claims.
func TestValidateRejectsParallelizedConflictLoop(t *testing.T) {
	l := cleanLoop("racy", 0.9, 200_000)
	l.Tracked = true
	l.Conflicts = oneConflict()
	ev := Evidence{Loops: []LoopEvidence{l}}
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "racy", Action: Parallelize,
		Rationale: []Fact{{Kind: FactStatic, Loop: "racy"}},
	}), ev, "illegally")
}

func TestValidateRejectsEmptyRationale(t *testing.T) {
	ev := Evidence{Loops: []LoopEvidence{cleanLoop("x", 0.9, 200_000)}}
	wantInvalid(t, handPlan(LoopPlan{Loop: "x", Action: Parallelize}), ev, "empty rationale")
}

func TestValidateRejectsMissingAndExtraLoops(t *testing.T) {
	ev := Evidence{Loops: []LoopEvidence{cleanLoop("x", 0.9, 200_000)}}
	wantInvalid(t, &Plan{Schema: Schema}, ev, "no decision")
	wantInvalid(t, &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "x", Action: Serial, Rationale: []Fact{{Kind: FactBudget, Loop: "x", Value: 4}}},
		{Loop: "ghost", Action: Serial, Rationale: []Fact{{Kind: FactCold, Loop: "ghost"}}},
	}}, ev, "absent from evidence")
}

// A fact must state the evidence's numbers, not invented ones.
func TestValidateRejectsDishonestFacts(t *testing.T) {
	l := cleanLoop("x", 0.9, 200_000)
	ev := Evidence{Loops: []LoopEvidence{l}}
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "x", Action: Parallelize,
		Rationale: []Fact{
			{Kind: FactStatic, Loop: "x"},
			{Kind: FactBudget, Loop: "x", Value: 99}, // real ratio is 4
		},
	}), ev, "budget fact ratio")
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "x", Action: Serial,
		Rationale: []Fact{{Kind: FactConflict, Loop: "x", Value: 1}},
	}), ev, "no observed conflicts")
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "x", Action: Parallelize,
		Rationale: []Fact{{Kind: FactStatic, Loop: "y"}},
	}), ev, "names loop")
}

func TestValidateRejectsSplitMergeGroup(t *testing.T) {
	a, b := cleanLoop("a", 0.5, 120_000), cleanLoop("b", 0.4, 20_000)
	a.Group, b.Group = "g", "g"
	ev := Evidence{Loops: []LoopEvidence{a, b}}
	p := &Plan{Schema: Schema, Loops: []LoopPlan{
		{Loop: "a", Action: Merge, Group: "g", Rationale: []Fact{
			{Kind: FactStatic, Loop: "a"},
			{Kind: FactGroupBudget, Loop: "a", Value: 1.9},
		}},
		{Loop: "b", Action: Serial, Rationale: []Fact{
			{Kind: FactBudget, Loop: "b", Value: budgetRatio(20_000, 50_000)},
		}},
	}}
	wantInvalid(t, p, ev, "splits")
}

func TestValidateRejectsBadFission(t *testing.T) {
	l := cleanLoop("rhs", 0.8, 200_000)
	l.Parts = []PartEvidence{
		{Name: "jk", WorkFrac: 0.6, Static: StaticParallel},
		{Name: "l", WorkFrac: 0.4, Static: StaticSerial},
	}
	ev := Evidence{Loops: []LoopEvidence{l}}
	rationale := []Fact{{Kind: FactStatic, Loop: "rhs", Part: "jk"}}
	// Parallelizing the statically-serial part.
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "rhs", Action: Fission,
		ParallelParts: []string{"jk", "l"}, Rationale: rationale,
	}), ev, "without dependence evidence")
	// Partition not covering the declared parts.
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "rhs", Action: Fission,
		ParallelParts: []string{"jk"}, Rationale: rationale,
	}), ev, "assigns 1 part(s)")
	// Duplicate assignment.
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "rhs", Action: Fission,
		ParallelParts: []string{"jk"}, SerialParts: []string{"jk"}, Rationale: rationale,
	}), ev, "both parallel and serial")
	// No parallel part: that is not a fission, it is a serial loop.
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "rhs", Action: Fission,
		SerialParts: []string{"jk", "l"}, Rationale: rationale,
	}), ev, "no parallel part")
}

func TestValidateRejectsUnknownActionAndSchema(t *testing.T) {
	l := cleanLoop("x", 0.9, 200_000)
	ev := Evidence{Loops: []LoopEvidence{l}}
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "x", Action: "vectorize",
		Rationale: []Fact{{Kind: FactStatic, Loop: "x"}},
	}), ev, "unknown action")
	wantInvalid(t, &Plan{Schema: 99, Loops: []LoopPlan{{Loop: "x", Action: Serial,
		Rationale: []Fact{{Kind: FactBudget, Loop: "x", Value: 4}}}}}, ev, "schema")
	if err := Validate(nil, ev, Config{}); err == nil {
		t.Fatal("nil plan accepted")
	}
}

// Serial is not a free pass: the demotion must cite a real fact.
func TestValidateRejectsUnjustifiedSerial(t *testing.T) {
	l := cleanLoop("x", 0.9, 200_000)
	ev := Evidence{Loops: []LoopEvidence{l}}
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "x", Action: Serial,
		Rationale: []Fact{{Kind: FactRank, Loop: "x", Value: 0.9}},
	}), ev, "demotion fact")
	// A cold fact on a hot loop is dishonest.
	wantInvalid(t, handPlan(LoopPlan{
		Loop: "x", Action: Serial,
		Rationale: []Fact{{Kind: FactCold, Loop: "x", Value: 0.9}},
	}), ev, "cold fact")
}
