package pipeline

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/parloop"
)

// spin burns deterministic-ish CPU so traced spans are nonzero.
func spin(n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += float64(i%7) * 1e-9
	}
	return s
}

// traceTwoLoops runs a chunked hot loop and a cheaper region-only loop
// (ctx.Range partitioning, so the analyzer sees no chunk spans) on a
// real traced team, and returns the trace.
func traceTwoLoops(t *testing.T) []obs.Event {
	t.Helper()
	tr := obs.NewTracer(1<<14, nil)
	tr.Enable()
	team := parloop.NewTeam(4)
	defer team.Close()
	team.SetTracer(tr, "hot")
	for step := 0; step < 3; step++ {
		team.For(64, func(i int) { spin(20_000) })
	}
	team.SetLabel("regiononly")
	for step := 0; step < 3; step++ {
		team.Region(func(ctx *parloop.WorkerCtx) {
			lo, hi := ctx.Range(64)
			for i := lo; i < hi; i++ {
				spin(5_000)
			}
		})
	}
	return tr.Events()
}

func TestFromTraceBuildsEvidence(t *testing.T) {
	events := traceTwoLoops(t)
	structs := []LoopStructure{
		{Name: "hot", Static: StaticParallel},
		// regiononly left undeclared: must default to unknown.
	}
	ev := FromTrace(events, analyze.Config{}, structs, "live-test")
	if ev.Source != "live-test" {
		t.Errorf("source = %q", ev.Source)
	}
	if ev.Procs != 4 {
		t.Errorf("procs = %d, want 4", ev.Procs)
	}
	if len(ev.Loops) != 2 {
		t.Fatalf("loops = %v, want hot + regiononly", planEvNames(ev))
	}

	hot := ev.Loop("hot")
	if hot == nil || hot.Static != StaticParallel {
		t.Fatalf("hot loop missing or unjoined: %+v", hot)
	}
	if hot.RankShare <= 0 || hot.RankShare > 1 {
		t.Errorf("hot rank share = %v", hot.RankShare)
	}
	if hot.SyncEvents == 0 || hot.WorkNs == 0 {
		t.Errorf("hot loop evidence empty: %+v", hot)
	}

	ro := ev.Loop("regiononly")
	if ro == nil || ro.Static != StaticUnknown || ro.Group != "" {
		t.Fatalf("undeclared loop must default to unknown/ungrouped: %+v", ro)
	}
	// The analyzer sees WorkNs=0 for ctx.Range regions; the evidence
	// builder must re-estimate work from span × workers so the budget
	// verdict is not vacuously false.
	if ro.WorkNs == 0 || ro.WorkPerSyncCycles == 0 || ro.MinWorkCycles == 0 {
		t.Errorf("region-only loop work not estimated: %+v", ro)
	}

	// Shares normalize over the profiled loops.
	if s := hot.RankShare + ro.RankShare; s < 0.999 || s > 1.001 {
		t.Errorf("rank shares sum to %v, want 1", s)
	}
}

func planEvNames(ev Evidence) []string {
	var out []string
	for _, l := range ev.Loops {
		out = append(out, l.Name)
	}
	return out
}

func TestEvidenceMutators(t *testing.T) {
	l := cleanLoop("rhs", 0.8, 200_000)
	l.Static = StaticUnknown
	l.Parts = []PartEvidence{{Name: "jk", WorkFrac: 0.6, Static: StaticUnknown}}
	ev := Evidence{Loops: []LoopEvidence{l, cleanLoop("other", 0.2, 100_000)}}

	if ev.AddConflicts("ghost", "", oneConflict()) {
		t.Error("AddConflicts accepted an unknown loop")
	}
	if ev.AddConflicts("rhs", "ghostpart", oneConflict()) {
		t.Error("AddConflicts accepted an unknown part")
	}
	if !ev.AddConflicts("rhs", "jk", oneConflict()) {
		t.Fatal("AddConflicts rejected a declared part")
	}
	if !ev.AddConflicts("rhs", "", oneConflict()) {
		t.Fatal("AddConflicts rejected the loop")
	}
	rhs := ev.Loop("rhs")
	if !rhs.Tracked || len(rhs.Conflicts) != 1 || len(rhs.Parts[0].Conflicts) != 1 {
		t.Errorf("conflicts not attached: %+v", rhs)
	}
	ev.MarkTracked("other", "ghost")
	if !ev.Loop("other").Tracked {
		t.Error("MarkTracked missed a loop")
	}
}

// End-to-end over a live trace: the planner must parallelize the hot
// statically-certified loop and leave the unknown region-only loop
// serial for lack of dependence evidence — and the whole plan must
// validate against its own evidence.
func TestPlanFromLiveTrace(t *testing.T) {
	events := traceTwoLoops(t)
	structs := []LoopStructure{{Name: "hot", Static: StaticParallel}}
	ev := FromTrace(events, analyze.Config{}, structs, "live")
	cfg := Config{}
	p := PlanFromEvidence(ev, cfg)
	mustValidate(t, p, ev, cfg)
	if d, _ := p.Decision("regiononly"); d.Action != Serial || !hasKind(d.Rationale, FactNoEvidence) {
		t.Errorf("unknown loop: %+v, want serial/no-evidence", d)
	}
	// Promote via a clean tracked run and re-plan: now both can go
	// parallel (budget permitting).
	ev.MarkTracked("regiononly")
	p2 := PlanFromEvidence(ev, cfg)
	mustValidate(t, p2, ev, cfg)
	if d, _ := p2.Decision("regiononly"); d.Action == Serial && hasKind(d.Rationale, FactNoEvidence) {
		t.Errorf("tracked-clean loop still demoted for lack of evidence: %+v", d)
	}
}
