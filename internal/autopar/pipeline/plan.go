package pipeline

import "fmt"

// Config tunes the planner. The zero value is usable; defaults are
// filled in by PlanFromEvidence.
type Config struct {
	// MinRankShare is the cold-loop threshold: a dependence-clean,
	// budget-passing loop whose share of profiled time is below it is
	// still left serial — the paper parallelizes hottest-first and
	// stops where a loop cannot matter (§4). <= 0 defaults to 0.005.
	MinRankShare float64 `json:"min_rank_share,omitempty"`
	// BarrierCostFrac is a mid-region barrier's cost relative to a
	// full fork-join, used in the merged-group budget: k fused
	// regions synchronize once per step plus k-1 barriers, so the
	// combined work per effective sync is
	// Σ work-per-sync / (1 + (k-1)·BarrierCostFrac) — the Example 3
	// arithmetic that lets cheap phases ride along with expensive
	// ones. <= 0 defaults to 0.5.
	BarrierCostFrac float64 `json:"barrier_cost_frac,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.MinRankShare <= 0 {
		c.MinRankShare = 0.005
	}
	if c.BarrierCostFrac <= 0 {
		c.BarrierCostFrac = 0.5
	}
	return c
}

// bodyClass is the planner's dependence classification of one loop.
type bodyClass int

const (
	// classClean: no observed or proven dependence obstruction, and
	// dependence evidence exists (static certificate or clean tracked
	// run) — eligible for parallel execution.
	classClean bodyClass = iota
	// classConflict: the Tracker observed loop-level conflicts.
	classConflict
	// classStaticSerial: statically proven loop-carried dependence.
	classStaticSerial
	// classMixed: the obstructions localize to declared parts —
	// fission candidate.
	classMixed
	// classNoEvidence: verdict unknown and no tracked run.
	classNoEvidence
)

func classify(l *LoopEvidence) bodyClass {
	if len(l.Conflicts) > 0 {
		return classConflict
	}
	if l.Static == StaticSerial {
		return classStaticSerial
	}
	for i := range l.Parts {
		if len(l.Parts[i].Conflicts) > 0 || l.Parts[i].Static == StaticSerial {
			return classMixed
		}
	}
	if l.Static != StaticParallel && !l.Tracked {
		return classNoEvidence
	}
	return classClean
}

// partParallelizable reports whether a part carries enough dependence
// evidence to run as its own region: its own certificate, the whole
// loop's certificate, or a clean tracked run of the loop.
func partParallelizable(l *LoopEvidence, p *PartEvidence) bool {
	if len(p.Conflicts) > 0 || p.Static == StaticSerial {
		return false
	}
	return p.Static == StaticParallel || l.Static == StaticParallel || l.Tracked
}

func clampFrac(f float64) float64 {
	if f < 0 || f != f { // negative or NaN
		return 0
	}
	return f
}

// budgetRatio is work-per-sync over the Table 1 minimum (>= 1 passes);
// 0 when the minimum is unknown.
func budgetRatio(wps, minw float64) float64 {
	if minw <= 0 {
		return 0
	}
	return wps / minw
}

// mergedWorkPerSync is the fused group's work per effective
// synchronization: k regions become one fork-join plus k-1 barriers.
func mergedWorkPerSync(members []*LoopEvidence, cfg Config) float64 {
	sum := 0.0
	for _, m := range members {
		sum += m.WorkPerSyncCycles
	}
	k := float64(len(members))
	return sum / (1 + (k-1)*cfg.BarrierCostFrac)
}

// mergeInfo records a group the planner decided to fuse.
type mergeInfo struct {
	wps, minw, share float64
}

// PlanFromEvidence is the planner: it reproduces, from measured
// evidence, the per-loop judgment the paper made by hand — serial on
// any dependence obstruction, fission when the obstruction localizes
// to a part of a mixed body, merge when adjacent cheap regions only
// clear the Table 1 budget together, parallelize when the loop is
// clean, hot and amortizes its synchronization. Decisions are emitted
// hottest loop first; every decision carries the facts it rests on,
// and Validate(plan, evidence, cfg) machine-checks them.
func PlanFromEvidence(ev Evidence, cfg Config) *Plan {
	cfg = cfg.withDefaults()
	loops := sortLoops(ev.Loops)

	class := make(map[string]bodyClass, len(loops))
	for i := range loops {
		class[loops[i].Name] = classify(&loops[i])
	}

	// Merge pass: a group of >= 2 clean adjacent regions fuses when at
	// least one member fails its own budget but the fused region
	// clears it — and the group is collectively warm enough to matter.
	groups := map[string][]*LoopEvidence{}
	for i := range loops {
		l := &loops[i]
		if l.Group != "" && class[l.Name] == classClean {
			groups[l.Group] = append(groups[l.Group], l)
		}
	}
	merges := map[string]mergeInfo{}
	for g, members := range groups {
		if len(members) < 2 {
			continue
		}
		anyFail, share, minw := false, 0.0, 0.0
		for _, m := range members {
			if !m.BudgetPass {
				anyFail = true
			}
			share += m.RankShare
			if m.MinWorkCycles > minw {
				minw = m.MinWorkCycles
			}
		}
		if !anyFail {
			continue // every member amortizes alone; no need to fuse
		}
		wps := mergedWorkPerSync(members, cfg)
		if wps >= minw && share >= cfg.MinRankShare {
			merges[g] = mergeInfo{wps: wps, minw: minw, share: share}
		}
	}

	p := &Plan{Schema: Schema, Source: ev.Source, Procs: ev.Procs}
	for i := range loops {
		p.Loops = append(p.Loops, decide(&loops[i], class[loops[i].Name], merges, cfg))
	}
	return p
}

func decide(l *LoopEvidence, c bodyClass, merges map[string]mergeInfo, cfg Config) LoopPlan {
	lp := LoopPlan{Loop: l.Name}
	switch c {
	case classConflict:
		lp.Action = Serial
		lp.Rationale = append(lp.Rationale, conflictFact(l.Name, "", l.Conflicts))
		if l.Static == StaticSerial {
			lp.Rationale = append(lp.Rationale, staticFact(l.Name, "", l.Static))
		}
		return lp
	case classStaticSerial:
		lp.Action = Serial
		lp.Rationale = append(lp.Rationale, staticFact(l.Name, "", l.Static))
		return lp
	case classMixed:
		return decideFission(l, cfg)
	case classNoEvidence:
		lp.Action = Serial
		lp.Rationale = append(lp.Rationale, Fact{
			Kind: FactNoEvidence, Loop: l.Name,
			Detail: "static verdict unknown and no dependence-instrumented run; conservative default",
		})
		return lp
	}

	// Clean body: dependence facts first, then the cost decision.
	dep := dependenceFacts(l)
	if mi, ok := merges[l.Group]; ok {
		lp.Action = Merge
		lp.Group = l.Group
		lp.Rationale = append(dep,
			Fact{Kind: FactBudget, Loop: l.Name, Value: budgetRatio(l.WorkPerSyncCycles, l.MinWorkCycles),
				Detail: budgetDetail(l.BudgetPass, l.WorkPerSyncCycles, l.MinWorkCycles)},
			Fact{Kind: FactGroupBudget, Loop: l.Name, Value: budgetRatio(mi.wps, mi.minw),
				Detail: fmt.Sprintf("group %q fused: %.0f cycles/sync vs %.0f minimum", l.Group, mi.wps, mi.minw)},
		)
		return lp
	}
	if !l.BudgetPass {
		lp.Action = Serial
		lp.Rationale = append(dep, Fact{
			Kind: FactBudget, Loop: l.Name, Value: budgetRatio(l.WorkPerSyncCycles, l.MinWorkCycles),
			Detail: budgetDetail(false, l.WorkPerSyncCycles, l.MinWorkCycles),
		})
		if l.RankShare < cfg.MinRankShare {
			lp.Rationale = append(lp.Rationale, coldFact(l.Name, "", l.RankShare, cfg))
		}
		return lp
	}
	if l.RankShare < cfg.MinRankShare {
		lp.Action = Serial
		lp.Rationale = append(dep, coldFact(l.Name, "", l.RankShare, cfg))
		return lp
	}
	lp.Action = Parallelize
	lp.Rationale = append(dep,
		Fact{Kind: FactBudget, Loop: l.Name, Value: budgetRatio(l.WorkPerSyncCycles, l.MinWorkCycles),
			Detail: budgetDetail(true, l.WorkPerSyncCycles, l.MinWorkCycles)},
		Fact{Kind: FactRank, Loop: l.Name, Value: l.RankShare,
			Detail: fmt.Sprintf("%.1f%% of profiled time", 100*l.RankShare)},
	)
	return lp
}

// decideFission handles a mixed body: obstructions localized to parts.
// Parts that are parallelizable, amortized and warm go parallel; the
// rest stay serial. With no part worth isolating, the whole loop stays
// serial.
func decideFission(l *LoopEvidence, cfg Config) LoopPlan {
	lp := LoopPlan{Loop: l.Name}
	var par, ser []string
	var facts []Fact
	for i := range l.Parts {
		pt := &l.Parts[i]
		frac := clampFrac(pt.WorkFrac)
		wps := l.WorkPerSyncCycles * frac
		share := l.RankShare * frac
		switch {
		case len(pt.Conflicts) > 0:
			ser = append(ser, pt.Name)
			facts = append(facts, conflictFact(l.Name, pt.Name, pt.Conflicts))
		case pt.Static == StaticSerial:
			ser = append(ser, pt.Name)
			facts = append(facts, staticFact(l.Name, pt.Name, pt.Static))
		case !partParallelizable(l, pt):
			ser = append(ser, pt.Name)
			facts = append(facts, Fact{Kind: FactNoEvidence, Loop: l.Name, Part: pt.Name,
				Detail: "no dependence evidence for this part; conservative default"})
		case wps < l.MinWorkCycles:
			ser = append(ser, pt.Name)
			facts = append(facts, Fact{Kind: FactBudget, Loop: l.Name, Part: pt.Name,
				Value:  budgetRatio(wps, l.MinWorkCycles),
				Detail: budgetDetail(false, wps, l.MinWorkCycles)})
		case share < cfg.MinRankShare:
			ser = append(ser, pt.Name)
			facts = append(facts, coldFact(l.Name, pt.Name, share, cfg))
		default:
			par = append(par, pt.Name)
			facts = append(facts, Fact{Kind: FactBudget, Loop: l.Name, Part: pt.Name,
				Value:  budgetRatio(wps, l.MinWorkCycles),
				Detail: budgetDetail(true, wps, l.MinWorkCycles)})
		}
	}
	if len(par) == 0 {
		lp.Action = Serial
		lp.Rationale = facts
		return lp
	}
	lp.Action = Fission
	lp.ParallelParts, lp.SerialParts = par, ser
	lp.Rationale = facts
	return lp
}

func dependenceFacts(l *LoopEvidence) []Fact {
	var out []Fact
	if l.Static == StaticParallel {
		out = append(out, staticFact(l.Name, "", l.Static))
	}
	if l.Tracked && len(l.Conflicts) == 0 {
		out = append(out, Fact{Kind: FactTrackerClean, Loop: l.Name,
			Detail: "dependence-instrumented run observed no loop-carried conflict"})
	}
	return out
}

func conflictFact(loop, part string, cs []Conflict) Fact {
	detail := fmt.Sprintf("%d loop-carried conflict(s) observed", len(cs))
	if len(cs) > 0 {
		detail += fmt.Sprintf(", e.g. %s on %s[%d]", cs[0].Kind, cs[0].Array, cs[0].Index)
	}
	return Fact{Kind: FactConflict, Loop: loop, Part: part, Detail: detail, Value: float64(len(cs))}
}

func staticFact(loop, part string, v StaticVerdict) Fact {
	detail := "statically proven iteration-independent"
	if v == StaticSerial {
		detail = "statically proven loop-carried dependence"
	}
	return Fact{Kind: FactStatic, Loop: loop, Part: part, Detail: detail}
}

func coldFact(loop, part string, share float64, cfg Config) Fact {
	return Fact{Kind: FactCold, Loop: loop, Part: part, Value: share,
		Detail: fmt.Sprintf("%.2f%% of profiled time, below the %.2f%% planning threshold",
			100*share, 100*cfg.MinRankShare)}
}

func budgetDetail(pass bool, wps, minw float64) string {
	verdict := "fails"
	if pass {
		verdict = "clears"
	}
	return fmt.Sprintf("%s the Table 1 criterion: %.0f cycles/sync vs %.0f minimum", verdict, wps, minw)
}
