package pipeline

import (
	"errors"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// Errors the manager distinguishes so servers can map them to
// not-found vs conflict responses.
var (
	// ErrUnknownJob: the job was never registered for planning.
	ErrUnknownJob = errors.New("pipeline: job not registered for planning")
	// ErrNoEvidence: the trace carried no loop evidence under the
	// job's phase prefix (tracing off, or the job never stepped).
	ErrNoEvidence = errors.New("pipeline: no loop evidence in trace")
)

// Manager holds per-job planning state for a daemon: the phase-trace
// prefix and static structure each registered job traces under, and
// the plan derived from its evidence (computed lazily from the trace,
// or installed directly with SetPlan). Safe for concurrent use.
type Manager struct {
	mu   sync.Mutex
	jobs map[uint64]*managed
}

type managed struct {
	name    string
	prefix  string
	structs []LoopStructure
	acfg    analyze.Config
	pcfg    Config
	plan    *Plan
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{jobs: map[uint64]*managed{}}
}

// Register enrolls a job: its phase-trace prefix (the label prefix its
// solver phases are traced under), the static loop structure to join
// evidence with, and the analyze/planner configs to plan under.
func (m *Manager) Register(id uint64, name, prefix string, structs []LoopStructure, acfg analyze.Config, pcfg Config) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[id] = &managed{name: name, prefix: prefix, structs: structs, acfg: acfg, pcfg: pcfg}
}

// Registered reports whether the job is enrolled for planning.
func (m *Manager) Registered(id uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id] != nil
}

// SetPlan installs a plan directly (tests, or replaying a stored
// plan), bypassing evidence derivation.
func (m *Manager) SetPlan(id uint64, p *Plan) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return ErrUnknownJob
	}
	j.plan = p
	return nil
}

// Plan returns the job's plan, deriving it from the trace on first
// call: events under the job's phase prefix are analyzed, joined with
// the declared structure, and run through the planner. The derived
// plan is cached — a job's plan is a stable artifact of its traced
// run, served identically on every later request.
func (m *Manager) Plan(id uint64, events []obs.Event) (*Plan, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, ErrUnknownJob
	}
	if j.plan != nil {
		return j.plan, nil
	}
	want := j.prefix + "/"
	var filtered []obs.Event
	for _, e := range events {
		if strings.HasPrefix(e.Name, want) {
			filtered = append(filtered, e)
		}
	}
	ev := FromTrace(filtered, j.acfg, j.structs, j.name)
	if len(ev.Loops) == 0 {
		return nil, ErrNoEvidence
	}
	j.plan = PlanFromEvidence(ev, j.pcfg)
	return j.plan, nil
}

// JobPlan is the wire shape a daemon serves for GET /jobs/{id}/plan.
type JobPlan struct {
	ID    uint64 `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"`
	Plan  *Plan  `json:"plan"`
}
