// Package pipeline closes the loop the paper did by hand: profile the
// run, check the dependences, then decide — per loop — whether to
// parallelize, leave serial, merge adjacent regions, or fission a
// mixed body.
//
// The static planner in internal/autopar reasons over a loop-nest IR;
// this package instead plans from *evidence* gathered off a real
// traced run:
//
//   - hot-loop rankings from profile.FromTrace (carried on
//     analyze.Report.Ranked) say where the time went — the paper's §4
//     "profile the program, rank the loops" step;
//   - check.Tracker barrier-epoch dependence evidence: an observed
//     conflict demotes a loop to serial unconditionally (the
//     C$doacross misuse of §2 caught in the act), while a clean
//     tracked run promotes a loop whose static verdict is merely
//     "unknown" — clean evidence plus a conservative static verdict;
//   - the analyze engine's Table 1 budget and imbalance verdicts say
//     whether a dependence-clean loop amortizes its synchronization
//     (§3's minimum work-per-sync criterion), whether adjacent cheap
//     regions should merge into one (Examples 2-3), and whether a
//     mixed body should fission so its parallel part still runs
//     parallel (the loop-fission transform).
//
// PlanFromEvidence turns that evidence into a Plan whose every
// decision carries a machine-checkable Rationale: Validate rejects any
// plan that parallelizes a flagged loop, fissions without part-local
// justification, or states a fact the evidence does not support. The
// executor seam (f3d.StepShape via ShapeFromPlan) applies a plan to
// the next run, and internal/check's plan-conformance cells prove
// every applied transform reproduces the serial residual history
// bitwise.
package pipeline

import "sort"

// Schema versions the Plan JSON shape (bumped on incompatible change).
const Schema = 1

// Action is a per-loop plan decision.
type Action string

const (
	// Parallelize runs the loop as its own parallel region.
	Parallelize Action = "parallelize"
	// Serial leaves the loop on one processor.
	Serial Action = "serial"
	// Merge hoists the loop into a single region shared with its
	// group (Examples 2-3: adjacent regions fused so one fork-join
	// amortizes across all of them, barriers preserving order).
	Merge Action = "merge"
	// Fission splits a mixed body: the parts that may run parallel
	// become their own regions, the rest stay serial.
	Fission Action = "fission"
)

// StaticVerdict is the conservative compile-time dependence verdict
// attached to a loop (e.g. from autopar.Nest.Parallelizable, or a
// hand-audited structure declaration like F3DStructure).
type StaticVerdict string

const (
	// StaticUnknown: no static certificate either way. Alone it plans
	// serial — promotion then needs clean Tracker evidence.
	StaticUnknown StaticVerdict = "unknown"
	// StaticParallel: statically proven iteration-independent.
	StaticParallel StaticVerdict = "parallel"
	// StaticSerial: a statically proven loop-carried dependence. Never
	// parallelized, even if a particular tracked run observed no
	// conflict (the dependence may be input-dependent).
	StaticSerial StaticVerdict = "serial"
)

// Fact kinds appearing in a Rationale. Validate knows each kind's
// obligations against the evidence.
const (
	// FactConflict: the Tracker observed loop-carried conflicts.
	FactConflict = "conflict"
	// FactTrackerClean: a dependence-instrumented run observed none.
	FactTrackerClean = "tracker-clean"
	// FactStatic: the static verdict behind the decision.
	FactStatic = "static"
	// FactNoEvidence: static verdict unknown and no tracked run —
	// conservative default, serial.
	FactNoEvidence = "no-dependence-evidence"
	// FactBudget: the loop's own Table 1 work-per-sync verdict.
	FactBudget = "budget"
	// FactGroupBudget: the merged group's combined Table 1 verdict.
	FactGroupBudget = "group-budget"
	// FactRank: the loop's share of profiled time.
	FactRank = "rank"
	// FactCold: share below the planning threshold — not worth the
	// risk of parallel overhead on a loop that cannot matter.
	FactCold = "cold"
	// FactPart: a part-level verdict behind a fission (or a fission
	// refusal).
	FactPart = "part"
)

// Fact is one machine-checkable piece of a decision's rationale: a
// kind, the loop (and optionally the part) it is about, a
// human-readable detail, and the numeric value the claim rests on
// (ratio, share, count — per kind).
type Fact struct {
	Kind   string  `json:"kind"`
	Loop   string  `json:"loop"`
	Part   string  `json:"part,omitempty"`
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// LoopPlan is the decision for one profiled loop.
type LoopPlan struct {
	Loop   string `json:"loop"`
	Action Action `json:"action"`
	// Group names the merge group (Action == Merge only).
	Group string `json:"group,omitempty"`
	// ParallelParts and SerialParts partition the loop's declared
	// parts (Action == Fission only).
	ParallelParts []string `json:"parallel_parts,omitempty"`
	SerialParts   []string `json:"serial_parts,omitempty"`
	// Rationale names the evidence behind the decision. Never empty
	// in a valid plan.
	Rationale []Fact `json:"rationale"`
}

// Plan is the full per-loop decision set for one evidence source,
// hottest loop first.
type Plan struct {
	Schema int        `json:"schema"`
	Source string     `json:"source,omitempty"`
	Procs  int        `json:"procs,omitempty"`
	Loops  []LoopPlan `json:"loops"`
}

// Decision returns the plan entry for a loop.
func (p *Plan) Decision(loop string) (LoopPlan, bool) {
	for _, lp := range p.Loops {
		if lp.Loop == loop {
			return lp, true
		}
	}
	return LoopPlan{}, false
}

// Count returns how many loops carry the given action.
func (p *Plan) Count(a Action) int {
	n := 0
	for _, lp := range p.Loops {
		if lp.Action == a {
			n++
		}
	}
	return n
}

// Conflict is one observed loop-carried dependence, the wire-friendly
// projection of a check.Race (check.PlanConflicts converts).
type Conflict struct {
	// Array is the tracked array; Index the conflicting element.
	Array string `json:"array"`
	Index int    `json:"index"`
	// Kind is "write-write", "write-read" or "read-write".
	Kind string `json:"kind"`
	// Detail carries the full race description.
	Detail string `json:"detail,omitempty"`
}

// PartEvidence describes one part of a loop's mixed body: a
// statically delimited sub-computation that fission could isolate
// into its own region (or leave serial).
type PartEvidence struct {
	// Name is the part's label; the post-fission loop is named
	// "<loop>-<part>".
	Name string `json:"name"`
	// WorkFrac is the part's declared share of the loop's work.
	WorkFrac float64 `json:"work_frac"`
	// Static is the part's own dependence verdict.
	Static StaticVerdict `json:"static"`
	// Conflicts are tracker races attributed to this part.
	Conflicts []Conflict `json:"conflicts,omitempty"`
}

// LoopEvidence is everything the planner knows about one profiled
// loop: ranking, budget, imbalance, dependence evidence and declared
// structure.
type LoopEvidence struct {
	Name string `json:"name"`

	// RankShare is the loop's fraction of total profiled time (the
	// profile.FromTrace ranking); WorkNs its absolute work.
	RankShare float64 `json:"rank_share"`
	WorkNs    int64   `json:"work_ns"`

	// Workers and SyncEvents come from the traced regions.
	Workers    int `json:"workers"`
	SyncEvents int `json:"sync_events"`

	// WorkPerSyncCycles vs MinWorkCycles is the Table 1 criterion;
	// BudgetPass its verdict (precomputed so evidence transforms can
	// carry verdicts for loops that did not run as regions).
	WorkPerSyncCycles float64 `json:"work_per_sync_cycles"`
	MinWorkCycles     float64 `json:"min_work_cycles"`
	BudgetPass        bool    `json:"budget_pass"`

	// ImbalanceFrac and BarrierFrac are the analyze attribution's
	// loss shares, carried for rationale detail.
	ImbalanceFrac float64 `json:"imbalance_frac,omitempty"`
	BarrierFrac   float64 `json:"barrier_frac,omitempty"`

	// Static is the conservative static verdict; Tracked reports
	// whether a dependence-instrumented run was performed; Conflicts
	// are the races it observed (loop-level, i.e. not attributed to a
	// specific part).
	Static    StaticVerdict `json:"static"`
	Tracked   bool          `json:"tracked,omitempty"`
	Conflicts []Conflict    `json:"conflicts,omitempty"`

	// Group names the loop's merge group: adjacent regions that could
	// fuse into one (empty = not fusible with anything).
	Group string `json:"group,omitempty"`

	// Parts declares the loop's mixed-body structure, if any.
	Parts []PartEvidence `json:"parts,omitempty"`
}

// Evidence is the planner's full input for one run.
type Evidence struct {
	// Source identifies the traced run the evidence came from.
	Source string `json:"source,omitempty"`
	// Procs is the processor count the run used (plan context).
	Procs int `json:"procs,omitempty"`
	// SyncCostCycles is the Table 1 synchronization cost the budget
	// verdicts were computed under.
	SyncCostCycles float64        `json:"sync_cost_cycles,omitempty"`
	Loops          []LoopEvidence `json:"loops"`
}

// Loop returns a pointer to the named loop's evidence, or nil.
func (ev *Evidence) Loop(name string) *LoopEvidence {
	for i := range ev.Loops {
		if ev.Loops[i].Name == name {
			return &ev.Loops[i]
		}
	}
	return nil
}

// sortLoops orders evidence hottest-first (work desc, name asc) —
// the ranked-loop order plans are emitted in.
func sortLoops(loops []LoopEvidence) []LoopEvidence {
	out := append([]LoopEvidence(nil), loops...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].WorkNs != out[j].WorkNs {
			return out[i].WorkNs > out[j].WorkNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PartStructure declares one part of a loop's body for evidence
// builders (name, declared work share, static verdict).
type PartStructure struct {
	Name     string
	WorkFrac float64
	Static   StaticVerdict
}

// LoopStructure is the static declaration an evidence builder joins
// with a profiled loop: the conservative dependence verdict, the merge
// group, and the mixed-body parts. Loops traced without a matching
// structure get StaticUnknown and no group — the conservative default.
type LoopStructure struct {
	Name   string
	Static StaticVerdict
	Group  string
	Parts  []PartStructure
}
