// Property tests that close the loop against the real dependence
// checker: these live in an external test package because
// internal/check imports pipeline (for the plan-conformance cells and
// PlanConflicts), so the reverse import must happen outside the
// pipeline package proper.
package pipeline_test

import (
	"strings"
	"testing"

	"repro/internal/autopar/pipeline"
	"repro/internal/check"
	"repro/internal/parloop"
)

// doacrossEvidence runs the seeded a[i] = a[i-1]+1 recurrence — the
// paper's §2 C$doacross misuse — under the real Tracker and builds
// planner evidence from the observed races: a hot, budget-passing,
// statically-unknown loop whose only blemish is the dependence the
// tracked run caught.
func doacrossEvidence(t *testing.T, workers int) pipeline.Evidence {
	t.Helper()
	k := check.SeededDependence()
	team := parloop.NewTeam(workers)
	defer team.Close()
	tk := check.NewTracker(team, 0)
	k.Tracked(tk, team, k.N)
	races := tk.Races()
	if len(races) == 0 {
		t.Fatalf("tracker missed the seeded doacross dependence (workers=%d)", workers)
	}
	ev := pipeline.Evidence{
		Source: "doacross-run",
		Procs:  workers,
		Loops: []pipeline.LoopEvidence{{
			Name:              "doacross",
			RankShare:         0.95,
			WorkNs:            1_000_000,
			Workers:           workers,
			SyncEvents:        4,
			WorkPerSyncCycles: 250_000,
			MinWorkCycles:     50_000,
			BudgetPass:        true,
			Static:            pipeline.StaticUnknown,
		}},
	}
	ev.AddConflicts("doacross", "", check.PlanConflicts(races))
	return ev
}

// The headline dependence property: Tracker evidence demotes the
// doacross kernel to serial no matter how hot and well-budgeted it is,
// the rationale names the observed race, and no valid plan can
// parallelize it.
func TestDoacrossDemotedByTrackerEvidence(t *testing.T) {
	for _, workers := range []int{2, 4} {
		ev := doacrossEvidence(t, workers)
		cfg := pipeline.Config{}
		p := pipeline.PlanFromEvidence(ev, cfg)
		if err := pipeline.Validate(p, ev, cfg); err != nil {
			t.Fatalf("workers=%d: plan invalid: %v", workers, err)
		}
		d, ok := p.Decision("doacross")
		if !ok || d.Action != pipeline.Serial {
			t.Fatalf("workers=%d: doacross planned %v, want serial", workers, d.Action)
		}
		found := false
		for _, f := range d.Rationale {
			if f.Kind == pipeline.FactConflict && strings.Contains(f.Detail, "seeded.a") {
				found = true
			}
		}
		if !found {
			t.Errorf("workers=%d: rationale does not name the observed race: %+v", workers, d.Rationale)
		}

		// Adversarial half: hand-build the illegal promotion and watch
		// Validate refuse it.
		bad := &pipeline.Plan{Schema: pipeline.Schema, Loops: []pipeline.LoopPlan{{
			Loop: "doacross", Action: pipeline.Parallelize,
			Rationale: []pipeline.Fact{{Kind: pipeline.FactTrackerClean, Loop: "doacross"}},
		}}}
		if err := pipeline.Validate(bad, ev, cfg); err == nil {
			t.Fatalf("workers=%d: validator accepted a parallelized tracker-flagged loop", workers)
		}
	}
}

// The fixed-point property on the doacross evidence: the serial
// demotion is stable under re-planning from applied evidence.
func TestDoacrossPlanIsFixedPoint(t *testing.T) {
	ev := doacrossEvidence(t, 4)
	cfg := pipeline.Config{}
	p := pipeline.PlanFromEvidence(ev, cfg)
	next := pipeline.PlanFromEvidence(pipeline.Applied(ev, p, cfg), cfg)
	if ch := pipeline.Changes(p, next); len(ch) != 0 {
		t.Fatalf("doacross plan not a fixed point: %v", ch)
	}
}

// The general fixed-point property over a workload exercising every
// action: parallelize, serial (conflict, cold, budget), merge and
// fission in one evidence set. Re-planning from the applied evidence
// must propose no changes, and both plans must validate.
func TestPlanFixedPointAcrossAllActions(t *testing.T) {
	mk := func(name string, share, wps float64, mut func(*pipeline.LoopEvidence)) pipeline.LoopEvidence {
		l := pipeline.LoopEvidence{
			Name: name, RankShare: share, WorkNs: int64(share * 1e9),
			Workers: 4, SyncEvents: 10,
			WorkPerSyncCycles: wps, MinWorkCycles: 50_000, BudgetPass: wps >= 50_000,
			Static: pipeline.StaticParallel,
		}
		if mut != nil {
			mut(&l)
		}
		return l
	}
	ev := pipeline.Evidence{Source: "synthetic", Procs: 4, Loops: []pipeline.LoopEvidence{
		mk("hot", 0.3, 200_000, nil),
		mk("racy", 0.2, 200_000, func(l *pipeline.LoopEvidence) {
			l.Static = pipeline.StaticUnknown
			l.Tracked = true
			l.Conflicts = []pipeline.Conflict{{Array: "q", Index: 3, Kind: "write-write"}}
		}),
		mk("mixed", 0.25, 200_000, func(l *pipeline.LoopEvidence) {
			l.Parts = []pipeline.PartEvidence{
				{Name: "par", WorkFrac: 0.7, Static: pipeline.StaticParallel},
				{Name: "ser", WorkFrac: 0.3, Static: pipeline.StaticSerial},
			}
		}),
		mk("groupbig", 0.15, 120_000, func(l *pipeline.LoopEvidence) { l.Group = "fuse" }),
		mk("groupsmall", 0.08, 20_000, func(l *pipeline.LoopEvidence) { l.Group = "fuse" }),
		mk("cold", 0.002, 100_000, nil),
	}}
	cfg := pipeline.Config{}
	p := pipeline.PlanFromEvidence(ev, cfg)
	if err := pipeline.Validate(p, ev, cfg); err != nil {
		t.Fatalf("plan invalid: %v", err)
	}
	// Every action is exercised.
	for a, want := range map[pipeline.Action]int{
		pipeline.Parallelize: 1, pipeline.Serial: 2, pipeline.Merge: 2, pipeline.Fission: 1,
	} {
		if got := p.Count(a); got != want {
			t.Errorf("%s count = %d, want %d (plan %+v)", a, got, want, p.Loops)
		}
	}
	applied := pipeline.Applied(ev, p, cfg)
	next := pipeline.PlanFromEvidence(applied, cfg)
	if err := pipeline.Validate(next, applied, cfg); err != nil {
		t.Fatalf("re-plan invalid: %v", err)
	}
	if ch := pipeline.Changes(p, next); len(ch) != 0 {
		t.Fatalf("plan not a fixed point on a stable workload: %v", ch)
	}
}
