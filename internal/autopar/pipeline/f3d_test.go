package pipeline

import (
	"testing"

	"repro/internal/f3d"
)

func TestF3DStructurePrefixing(t *testing.T) {
	for _, st := range F3DStructure("jobA") {
		if st.Name != "jobA/step" && st.Group != "step" {
			t.Errorf("phase loop %q not in the step merge group", st.Name)
		}
		if st.Static != StaticParallel {
			t.Errorf("loop %q not statically certified", st.Name)
		}
	}
	// Unprefixed names pass through.
	var names []string
	for _, st := range F3DStructure("") {
		names = append(names, st.Name)
	}
	want := map[string]bool{"bc": true, "rhs": true, "rhs-jk": true, "rhs-l": true,
		"sweep-jk": true, "sweep-l": true, "step": true}
	for _, n := range names {
		if !want[n] {
			t.Errorf("unexpected structure loop %q", n)
		}
	}
	if len(names) != len(want) {
		t.Errorf("structures = %v", names)
	}
}

// plan entry shorthand for lowering tests.
func pe(loop string, a Action) LoopPlan { return LoopPlan{Loop: loop, Action: a} }

func TestShapeFromPlanLowering(t *testing.T) {
	cases := []struct {
		name string
		plan *Plan
		want f3d.StepShape
	}{
		{"all-parallel", &Plan{Loops: []LoopPlan{
			pe("j/rhs", Parallelize), pe("j/sweep-jk", Parallelize),
			pe("j/sweep-l", Parallelize), pe("j/bc", Parallelize),
		}}, f3d.StepShape{RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true}},

		{"rhs-serial", &Plan{Loops: []LoopPlan{
			pe("j/rhs", Serial), pe("j/sweep-jk", Parallelize), pe("j/sweep-l", Parallelize),
		}}, f3d.StepShape{SweepJK: true, SweepL: true}},

		{"fission-mixed", &Plan{Loops: []LoopPlan{
			{Loop: "j/rhs", Action: Fission, ParallelParts: []string{"jk"}, SerialParts: []string{"l"}},
			pe("j/sweep-jk", Parallelize),
		}}, f3d.StepShape{RHSJK: true, SweepJK: true, FissionRHS: true}},

		{"fissioned-evidence", &Plan{Loops: []LoopPlan{
			pe("j/rhs-jk", Parallelize), pe("j/rhs-l", Serial), pe("j/sweep-l", Parallelize),
		}}, f3d.StepShape{RHSJK: true, SweepL: true, FissionRHS: true}},

		{"merged-group", &Plan{Loops: []LoopPlan{
			{Loop: "j/rhs", Action: Merge, Group: "step"},
			{Loop: "j/sweep-jk", Action: Merge, Group: "step"},
			{Loop: "j/sweep-l", Action: Merge, Group: "step"},
			{Loop: "j/bc", Action: Merge, Group: "step"},
		}}, f3d.StepShape{RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true, Merged: true}},

		{"merged-run-replan", &Plan{Loops: []LoopPlan{pe("j/step", Parallelize)}},
			f3d.StepShape{RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, Merged: true}},

		{"merged-run-demoted", &Plan{Loops: []LoopPlan{pe("j/step", Serial)}}, f3d.StepShape{}},

		{"foreign-loops-ignored", &Plan{Loops: []LoopPlan{
			pe("other/rhs", Parallelize), pe("j/sweep-jk", Parallelize),
		}}, f3d.StepShape{SweepJK: true}},
	}
	for _, tc := range cases {
		if got := ShapeFromPlan(tc.plan, "j"); got != tc.want {
			t.Errorf("%s: shape = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

// The round trip behind the applied-plan story: evidence shaped like a
// real phase-traced f3d run plans parallel phases, and the lowered
// shape matches what the evidence supports.
func TestF3DPlanRoundTrip(t *testing.T) {
	structs := F3DStructure("job")
	mk := func(name string, share, wps float64) LoopEvidence {
		l := cleanLoop("job/"+name, share, wps)
		for _, st := range structs {
			if st.Name == l.Name {
				l.Static, l.Group = st.Static, st.Group
				for _, pt := range st.Parts {
					l.Parts = append(l.Parts, PartEvidence{Name: pt.Name, WorkFrac: pt.WorkFrac, Static: pt.Static})
				}
			}
		}
		return l
	}
	ev := Evidence{Procs: 4, Loops: []LoopEvidence{
		mk("rhs", 0.5, 300_000),
		mk("sweep-jk", 0.25, 150_000),
		mk("sweep-l", 0.2, 120_000),
		mk("bc", 0.05, 60_000),
	}}
	cfg := Config{}
	p := PlanFromEvidence(ev, cfg)
	mustValidate(t, p, ev, cfg)
	sh := ShapeFromPlan(p, "job")
	want := f3d.StepShape{RHSJK: true, RHSL: true, SweepJK: true, SweepL: true, BC: true}
	if sh != want {
		t.Fatalf("shape = %+v, want %+v (plan %+v)", sh, want, p.Loops)
	}
	// Demote bc below its budget: the group merge rescues it, and the
	// lowered shape hoists the step (Example 3).
	ev.Loop("job/bc").WorkPerSyncCycles = 20_000
	ev.Loop("job/bc").BudgetPass = false
	p2 := PlanFromEvidence(ev, cfg)
	mustValidate(t, p2, ev, cfg)
	sh2 := ShapeFromPlan(p2, "job")
	if !sh2.Merged || !sh2.BC || !sh2.RHSJK || !sh2.RHSL || !sh2.SweepJK || !sh2.SweepL {
		t.Fatalf("merged shape = %+v (plan %+v)", sh2, p2.Loops)
	}
}
