package pipeline

import "fmt"

// Applied projects evidence through a plan: the loop evidence a
// *stable* workload would produce after the plan's transforms are
// applied. Parallelize/Serial loops carry over unchanged; a fissioned
// loop becomes one loop per part ("<loop>-<part>", metrics scaled by
// the part's work fraction); a merged group becomes a single fused
// loop named after the group. The property tests use it to prove the
// planner is a fixed point: re-planning from applied evidence proposes
// no changes (Changes returns nil).
func Applied(ev Evidence, p *Plan, cfg Config) Evidence {
	cfg = cfg.withDefaults()
	out := Evidence{Source: ev.Source, Procs: ev.Procs, SyncCostCycles: ev.SyncCostCycles}
	merged := map[string]bool{}
	for _, l := range sortLoops(ev.Loops) {
		d, ok := p.Decision(l.Name)
		if !ok {
			out.Loops = append(out.Loops, l)
			continue
		}
		switch d.Action {
		case Fission:
			for i := range l.Parts {
				out.Loops = append(out.Loops, fissionedLoop(&l, &l.Parts[i]))
			}
		case Merge:
			if merged[d.Group] {
				continue
			}
			merged[d.Group] = true
			out.Loops = append(out.Loops, mergedLoop(ev, p, d.Group, cfg))
		default:
			out.Loops = append(out.Loops, l)
		}
	}
	return out
}

// fissionedLoop is the evidence a part produces once isolated into its
// own region: scaled ranking and work, the part's own dependence
// verdict (inheriting the loop-level certificate when the part has
// none), and a recomputed budget verdict.
func fissionedLoop(l *LoopEvidence, pt *PartEvidence) LoopEvidence {
	frac := clampFrac(pt.WorkFrac)
	nl := LoopEvidence{
		Name:              l.Name + "-" + pt.Name,
		RankShare:         l.RankShare * frac,
		WorkNs:            int64(float64(l.WorkNs) * frac),
		Workers:           l.Workers,
		SyncEvents:        l.SyncEvents,
		WorkPerSyncCycles: l.WorkPerSyncCycles * frac,
		MinWorkCycles:     l.MinWorkCycles,
		Static:            pt.Static,
		Tracked:           l.Tracked,
		Conflicts:         pt.Conflicts,
	}
	if nl.Static == "" {
		nl.Static = StaticUnknown
	}
	if nl.Static == StaticUnknown && l.Static == StaticParallel {
		nl.Static = StaticParallel
	}
	nl.BudgetPass = nl.WorkPerSyncCycles >= nl.MinWorkCycles
	return nl
}

// mergedLoop is the fused region's evidence: summed ranking and work,
// the combined work-per-sync the merge decision was based on, and a
// clean dependence record (every member was clean, or the merge was
// illegal).
func mergedLoop(ev Evidence, p *Plan, group string, cfg Config) LoopEvidence {
	var members []*LoopEvidence
	for i := range ev.Loops {
		m := &ev.Loops[i]
		if d, ok := p.Decision(m.Name); ok && d.Action == Merge && d.Group == group {
			members = append(members, m)
		}
	}
	nl := LoopEvidence{Name: group, Static: StaticParallel}
	for _, m := range members {
		nl.RankShare += m.RankShare
		nl.WorkNs += m.WorkNs
		nl.SyncEvents += m.SyncEvents
		if m.Workers > nl.Workers {
			nl.Workers = m.Workers
		}
		if m.MinWorkCycles > nl.MinWorkCycles {
			nl.MinWorkCycles = m.MinWorkCycles
		}
	}
	nl.WorkPerSyncCycles = mergedWorkPerSync(members, cfg)
	nl.BudgetPass = nl.WorkPerSyncCycles >= nl.MinWorkCycles
	return nl
}

// Changes diffs a plan against the re-plan of its own applied
// evidence, reporting every decision the new plan would revise. An
// empty result means prev is a fixed point for that evidence: the
// pipeline has converged and a rerun would keep the same structure.
// Loops absent from the next plan (e.g. a serial loop that left no
// trace in the rerun) are not counted as changes.
func Changes(prev, next *Plan) []string {
	var out []string
	note := func(format string, args ...any) { out = append(out, fmt.Sprintf(format, args...)) }
	for _, d := range prev.Loops {
		switch d.Action {
		case Parallelize, Serial:
			if nd, ok := next.Decision(d.Loop); ok && nd.Action != d.Action {
				note("loop %q: %s -> %s", d.Loop, d.Action, nd.Action)
			}
		case Merge:
			// The fused region shows up under the group's name and must
			// stay parallel (or merge further).
			if nd, ok := next.Decision(d.Group); ok && nd.Action != Parallelize && nd.Action != Merge {
				note("merged group %q: -> %s", d.Group, nd.Action)
			}
		case Fission:
			for _, part := range d.ParallelParts {
				name := d.Loop + "-" + part
				if nd, ok := next.Decision(name); ok && nd.Action != Parallelize {
					note("fissioned part %q: parallel -> %s", name, nd.Action)
				}
			}
			for _, part := range d.SerialParts {
				name := d.Loop + "-" + part
				if nd, ok := next.Decision(name); ok && nd.Action != Serial {
					note("fissioned part %q: serial -> %s", name, nd.Action)
				}
			}
		}
	}
	return out
}
