package pipeline

import (
	"strings"

	"repro/internal/f3d"
)

// F3DStructure declares the cache solver's phase-loop structure for
// the planner, matching the labels a job traced with
// f3d.Job.WithPhaseTrace(prefix) emits ("<prefix>/<phase>").
//
// Every phase is statically iteration-independent — the solver's
// decomposition (J/K planes, L columns) was audited by construction in
// internal/f3d — so the declarations carry StaticParallel and the
// planner's decisions reduce to the paper's cost questions: is the
// phase hot enough, and does it amortize its synchronization? The
// per-phase loops share merge group "step": fusing them is exactly the
// Example 3 hoisted-region transform the solver's Merged mode
// implements. The "rhs" loop declares the jk/l passes as mixed-body
// parts so a plan may fission it when only one side is worth (or safe)
// running parallel; the declared work split favors jk slightly — it
// sweeps nl+2 planes of J/K work while the l pass integrates nk+2
// columns.
func F3DStructure(prefix string) []LoopStructure {
	p := func(s string) string {
		if prefix == "" {
			return s
		}
		return prefix + "/" + s
	}
	rhsParts := []PartStructure{
		{Name: "jk", WorkFrac: 0.55, Static: StaticParallel},
		{Name: "l", WorkFrac: 0.45, Static: StaticParallel},
	}
	return []LoopStructure{
		{Name: p("bc"), Static: StaticParallel, Group: "step"},
		{Name: p("rhs"), Static: StaticParallel, Group: "step", Parts: rhsParts},
		{Name: p("rhs-jk"), Static: StaticParallel, Group: "step"},
		{Name: p("rhs-l"), Static: StaticParallel, Group: "step"},
		{Name: p("sweep-jk"), Static: StaticParallel, Group: "step"},
		{Name: p("sweep-l"), Static: StaticParallel, Group: "step"},
		{Name: p("step"), Static: StaticParallel},
	}
}

// ShapeFromPlan lowers a plan over the f3d phase loops into the
// executable StepShape the cache solver runs: the plan from run N
// becomes run N+1's region structure. Loops outside the prefix are
// ignored; phases the plan does not mention stay serial (the
// conservative default — an unplanned phase has no evidence behind
// running it parallel).
func ShapeFromPlan(p *Plan, prefix string) f3d.StepShape {
	var sh f3d.StepShape
	strip := func(name string) (string, bool) {
		if prefix == "" {
			return name, true
		}
		return strings.CutPrefix(name, prefix+"/")
	}
	for _, lp := range p.Loops {
		phase, ok := strip(lp.Loop)
		if !ok {
			continue
		}
		on := lp.Action == Parallelize || lp.Action == Merge
		if lp.Action == Merge {
			sh.Merged = true
		}
		switch phase {
		case "bc":
			sh.BC = on
		case "rhs":
			if lp.Action == Fission {
				sh.FissionRHS = true
				sh.RHSJK = containsStr(lp.ParallelParts, "jk")
				sh.RHSL = containsStr(lp.ParallelParts, "l")
			} else {
				sh.RHSJK, sh.RHSL = on, on
			}
		case "rhs-jk":
			sh.FissionRHS = true
			sh.RHSJK = on
		case "rhs-l":
			sh.FissionRHS = true
			sh.RHSL = on
		case "sweep-jk":
			sh.SweepJK = on
		case "sweep-l":
			sh.SweepL = on
		case "step":
			// Evidence from a merged-mode run: one loop for the whole
			// step. Parallel keeps the hoisted region; anything else
			// collapses the step to serial.
			if on {
				sh.Merged = true
				sh.RHSJK, sh.RHSL, sh.SweepJK, sh.SweepL = true, true, true, true
			}
		}
	}
	return sh
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
