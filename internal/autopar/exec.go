package autopar

import (
	"fmt"

	"repro/internal/parloop"
)

// Execution of planned nests. A Body receives the current values of all
// loop variables (outermost first) and performs one innermost
// iteration; Execute runs the full iteration space, parallelizing the
// loop a Plan selected via a parloop team. This turns the planner into
// a complete miniature of the directive workflow: analyze → plan →
// execute, with the measured behaviour of each strategy available to
// compare against the model's prediction.

// Body is one innermost iteration. idx holds the loop variables'
// current values in nest order (outermost first). The body must only
// touch data consistent with the nest's declared Accesses — the
// analyzer's soundness is only as good as the declaration, exactly as
// a directive's correctness is only as good as the programmer's
// `local` clause.
type Body func(idx []int)

// Execute runs the nest under the plan: iterations of the loop at
// p.Depth are dealt to the team (static schedule); everything else runs
// sequentially inside. A serial plan (Depth < 0) or a nil team runs the
// whole nest on the caller.
func Execute(p Plan, team *parloop.Team, body Body) {
	n := p.Nest
	if len(n.Loops) == 0 {
		return
	}
	calls := n.Calls
	if calls == 0 {
		calls = 1
	}
	for c := 0; c < calls; c++ {
		if !p.Parallel() || team == nil {
			idx := make([]int, len(n.Loops))
			runSerial(n, 0, idx, body)
			continue
		}
		executeParallel(n, p.Depth, team, body)
	}
}

// runSerial executes loops from level d inward.
func runSerial(n *Nest, d int, idx []int, body Body) {
	if d == len(n.Loops) {
		body(idx)
		return
	}
	for i := 0; i < n.Loops[d].N; i++ {
		idx[d] = i
		runSerial(n, d+1, idx, body)
	}
}

// executeParallel opens one region per execution of the loops outside
// depth, parallelizing the loop at depth — the region structure the
// plan's cost model charged for.
func executeParallel(n *Nest, depth int, team *parloop.Team, body Body) {
	outer := make([]int, depth)
	var walk func(d int)
	walk = func(d int) {
		if d == depth {
			team.ForChunked(n.Loops[depth].N, func(lo, hi int) {
				idx := make([]int, len(n.Loops))
				copy(idx, outer)
				for v := lo; v < hi; v++ {
					idx[depth] = v
					runInner(n, depth+1, idx, body)
				}
			})
			return
		}
		for i := 0; i < n.Loops[d].N; i++ {
			outer[d] = i
			walk(d + 1)
		}
	}
	walk(0)
}

// runInner executes the loops inside the parallel level.
func runInner(n *Nest, d int, idx []int, body Body) {
	if d == len(n.Loops) {
		body(idx)
		return
	}
	for i := 0; i < n.Loops[d].N; i++ {
		idx[d] = i
		runInner(n, d+1, idx, body)
	}
}

// Verify executes the nest twice — serial and under the plan — with
// body writing through the provided make/compare hooks, and reports
// whether the results agree. It is the runtime check behind the
// analyzer's promise that a parallelizable loop really is one.
func Verify(p Plan, team *parloop.Team, makeState func() any, body func(state any, idx []int), equal func(a, b any) bool) error {
	serialState := makeState()
	serialPlan := Plan{Nest: p.Nest, Depth: -1, Reason: "serial reference"}
	Execute(serialPlan, nil, func(idx []int) { body(serialState, idx) })

	parState := makeState()
	Execute(p, team, func(idx []int) { body(parState, idx) })

	if !equal(serialState, parState) {
		return fmt.Errorf("autopar: plan %q at depth %d changed the result", p.Nest.Name, p.Depth)
	}
	return nil
}
