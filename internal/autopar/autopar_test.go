package autopar

import (
	"math"
	"testing"

	"repro/internal/model"
)

// example1Nest is the paper's Example 1: a triply nested loop with no
// dependencies in any direction.
func example1Nest() *Nest {
	return &Nest{
		Name: "example1",
		Loops: []Loop{
			{Var: "l", N: 70},
			{Var: "k", N: 75},
			{Var: "j", N: 89},
		},
		Accesses: []Access{
			WriteTo("a", Idx("j"), Idx("k"), Idx("l")),
			Read("b", Idx("j"), Idx("k"), Idx("l")),
		},
		WorkPerIter: 50,
	}
}

// stencilNest writes a[j] from a[j-1], a[j+1]: dependence in j, free in
// k and l — the shape of an implicit sweep.
func stencilNest() *Nest {
	return &Nest{
		Name: "sweep",
		Loops: []Loop{
			{Var: "l", N: 70},
			{Var: "k", N: 75},
			{Var: "j", N: 89},
		},
		Accesses: []Access{
			WriteTo("a", Idx("j"), Idx("k"), Idx("l")),
			Read("a", Idx("j").Plus(-1), Idx("k"), Idx("l")),
			Read("a", Idx("j").Plus(1), Idx("k"), Idx("l")),
		},
		WorkPerIter: 80,
	}
}

func TestParallelizableIndependentNest(t *testing.T) {
	n := example1Nest()
	for _, v := range []string{"j", "k", "l"} {
		if !n.Parallelizable(v) {
			t.Errorf("independent nest: loop %s should be parallelizable", v)
		}
	}
	if n.Parallelizable("nosuch") {
		t.Error("unknown variable reported parallelizable")
	}
}

func TestParallelizableStencil(t *testing.T) {
	n := stencilNest()
	if n.Parallelizable("j") {
		t.Error("j carries a dependence (a[j] reads a[j±1])")
	}
	for _, v := range []string{"k", "l"} {
		if !n.Parallelizable(v) {
			t.Errorf("loop %s should be parallelizable", v)
		}
	}
}

func TestPrivateArraysIgnored(t *testing.T) {
	// The paper's Example 3: BUFFER is batched per iteration — declared
	// local, so its reuse across iterations is not a dependence.
	n := &Nest{
		Name:  "example3",
		Loops: []Loop{{Var: "l", N: 70}, {Var: "j", N: 89}},
		Accesses: []Access{
			WriteTo("buffer", Idx("k")), // k is not even a loop var here
			Read("buffer", Idx("k")),
			Read("a", Idx("j"), Idx("l")),
		},
		Private:     []string{"buffer"},
		WorkPerIter: 120,
	}
	if !n.Parallelizable("l") || !n.Parallelizable("j") {
		t.Error("private scratch should not block parallelization")
	}
	n.Private = nil
	if n.Parallelizable("l") {
		t.Error("shared scratch must block parallelization (conservative)")
	}
}

func TestReductionDetectedAsDependence(t *testing.T) {
	// sum += a[j]: the write and read of sum collide for every pair of
	// iterations.
	n := &Nest{
		Name:  "reduction",
		Loops: []Loop{{Var: "j", N: 100}},
		Accesses: []Access{
			WriteTo("sum", ConstIdx(0)),
			Read("sum", ConstIdx(0)),
			Read("a", Idx("j")),
		},
		WorkPerIter: 2,
	}
	if n.Parallelizable("j") {
		t.Error("reduction must be reported as a dependence")
	}
}

func TestStrideTwoIndependence(t *testing.T) {
	// a[2j] = a[2j+1]: distance 1 is not divisible by coefficient 2 —
	// no integer solution, independent.
	n := &Nest{
		Name:  "stride2",
		Loops: []Loop{{Var: "j", N: 50}},
		Accesses: []Access{
			WriteTo("a", Affine{Coeffs: map[string]int{"j": 2}}),
			Read("a", Affine{Const: 1, Coeffs: map[string]int{"j": 2}}),
		},
		WorkPerIter: 5,
	}
	if !n.Parallelizable("j") {
		t.Error("stride-2 disjoint accesses should be independent")
	}
	// a[2j] = a[2j+2]: distance exactly one iteration — dependent.
	n.Accesses[1] = Read("a", Affine{Const: 2, Coeffs: map[string]int{"j": 2}})
	if n.Parallelizable("j") {
		t.Error("a[2j] vs a[2j+2] carries a dependence")
	}
}

func TestCoupledSubscriptConservative(t *testing.T) {
	// a[j+k] — the simple test cannot certify independence; must be
	// conservative.
	n := &Nest{
		Name:  "coupled",
		Loops: []Loop{{Var: "k", N: 10}, {Var: "j", N: 10}},
		Accesses: []Access{
			WriteTo("a", Affine{Coeffs: map[string]int{"j": 1, "k": 1}}),
			Read("a", Affine{Coeffs: map[string]int{"j": 1, "k": 1}}),
		},
		WorkPerIter: 1,
	}
	if n.Parallelizable("j") || n.Parallelizable("k") {
		t.Error("coupled subscripts must be conservatively dependent")
	}
}

func TestPlanStrategies(t *testing.T) {
	m := Machine{Procs: 8, SyncCost: 10_000, Budget: model.OverheadBudget}
	big := example1Nest()

	out := PlanNest(big, Outermost, m)
	if out.Depth != 0 {
		t.Errorf("Outermost chose depth %d, want 0", out.Depth)
	}
	in := PlanNest(big, Innermost, m)
	if in.Depth != 2 {
		t.Errorf("Innermost chose depth %d, want 2", in.Depth)
	}
	cg := PlanNest(big, CostGuided, m)
	if cg.Depth != 0 {
		t.Errorf("CostGuided should parallelize the big nest: %+v", cg)
	}

	// A tiny boundary-condition loop: CostGuided leaves it serial, the
	// automatic strategy does not.
	bc := &Nest{
		Name:  "bc",
		Loops: []Loop{{Var: "k", N: 75}, {Var: "j", N: 89}},
		Accesses: []Access{
			WriteTo("a", Idx("j"), Idx("k")),
		},
		WorkPerIter: 10,
	}
	if p := PlanNest(bc, CostGuided, m); p.Parallel() {
		t.Errorf("CostGuided should leave the BC loop serial: %+v", p)
	}
	if p := PlanNest(bc, Outermost, m); !p.Parallel() {
		t.Error("Outermost should parallelize everything it can")
	}

	// The sweep nest: outermost parallelizable loop is l (j is
	// dependent).
	sw := PlanNest(stencilNest(), Outermost, m)
	if sw.Depth != 0 {
		t.Errorf("sweep should parallelize at l (depth 0), got %d", sw.Depth)
	}
}

func TestHisleyComparison(t *testing.T) {
	// §8: an automatic compiler parallelizing every cheap loop produced
	// "parallel slowdown"; directives plus hand tuning scaled. Model a
	// program of two big solver nests (paper 59M-case zone dimensions)
	// plus many cheap, frequently called helper loops, on a machine with
	// a realistic six-figure synchronization cost.
	big := func(name string, work float64) *Nest {
		return &Nest{
			Name:  name,
			Loops: []Loop{{Var: "l", N: 350}, {Var: "k", N: 450}, {Var: "j", N: 175}},
			Accesses: []Access{
				WriteTo("a", Idx("j"), Idx("k"), Idx("l")),
				Read("b", Idx("j"), Idx("k"), Idx("l")),
			},
			WorkPerIter: work,
		}
	}
	nests := []*Nest{big("rhs", 50), big("sweep", 80)}
	for i := 0; i < 30; i++ {
		nests = append(nests, &Nest{
			Name:  "small",
			Loops: []Loop{{Var: "k", N: 75}, {Var: "j", N: 89}},
			Accesses: []Access{
				WriteTo("a", Idx("j"), Idx("k")),
			},
			WorkPerIter: 4,
			Calls:       2000, // called per row, like a helper routine
		})
	}
	m := Machine{Procs: 16, SyncCost: 300_000, Budget: model.OverheadBudget}

	auto := PredictSpeedup(nests, Outermost, m)
	inner := PredictSpeedup(nests, Innermost, m)
	guided := PredictSpeedup(nests, CostGuided, m)

	if guided <= 1.5 {
		t.Errorf("cost-guided speedup = %.2f, expected real speedup", guided)
	}
	if auto >= guided {
		t.Errorf("fully automatic (%.2f) should trail cost-guided (%.2f)", auto, guided)
	}
	if auto >= 1 {
		t.Errorf("fully automatic speedup = %.2f, expected parallel slowdown (<1) with cheap loops", auto)
	}
	if inner >= guided {
		t.Errorf("innermost strategy (%.2f) should trail cost-guided (%.2f)", inner, guided)
	}
}

func TestPlanProgramProfile(t *testing.T) {
	m := Machine{Procs: 8, SyncCost: 10_000, Budget: model.OverheadBudget}
	nests := []*Nest{example1Nest(), stencilNest()}
	plans, sp := PlanProgram(nests, CostGuided, m)
	if len(plans) != 2 {
		t.Fatalf("plans = %d", len(plans))
	}
	wantWork := nests[0].TotalWork() + nests[1].TotalWork()
	if got := sp.TotalCycles(); math.Abs(got-wantWork) > 1e-9 {
		t.Errorf("profile work %g != nest work %g", got, wantWork)
	}
	for _, lc := range sp.Loops {
		if lc.Parallelism != 70 && lc.Parallelism != 75 && lc.Parallelism != 89 {
			t.Errorf("unexpected parallelism %d", lc.Parallelism)
		}
	}
}

func TestRegionAccounting(t *testing.T) {
	n := example1Nest()
	// Parallel at depth 0: one region; at depth 2: one region per (l,k).
	if got := n.regionsPerStep(0); got != 1 {
		t.Errorf("regions at depth 0 = %d, want 1", got)
	}
	if got := n.regionsPerStep(2); got != 70*75 {
		t.Errorf("regions at depth 2 = %d, want %d", got, 70*75)
	}
	if got := n.regionWork(2); got != 89*50 {
		t.Errorf("region work at depth 2 = %g, want %d", got, 89*50)
	}
	n.Calls = 3
	if got := n.regionsPerStep(0); got != 3 {
		t.Errorf("regions with Calls=3 = %d, want 3", got)
	}
}

func TestAffineString(t *testing.T) {
	if got := Idx("j").Plus(2).String(); got != "j+2" {
		t.Errorf("Affine.String = %q", got)
	}
	if got := ConstIdx(0).String(); got != "0" {
		t.Errorf("constant Affine.String = %q", got)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		Innermost: "innermost", Outermost: "outermost", CostGuided: "cost-guided",
		Strategy(9): "Strategy(9)",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", int(s), s.String())
		}
	}
}

func TestPlanPanics(t *testing.T) {
	n := example1Nest()
	for name, fn := range map[string]func(){
		"procs":    func() { PlanNest(n, Outermost, Machine{Procs: 0}) },
		"strategy": func() { PlanNest(n, Strategy(42), Machine{Procs: 1, Budget: 0.01}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
