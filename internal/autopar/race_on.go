//go:build race

package autopar

// raceEnabled reports whether the Go race detector is active. Tests
// that deliberately execute an incorrect (racy) parallelization plan to
// demonstrate runtime verification skip themselves under the detector.
const raceEnabled = true
