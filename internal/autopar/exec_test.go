package autopar

import (
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/parloop"
)

func execMachine() Machine {
	return Machine{Procs: 3, SyncCost: 1000, Budget: model.OverheadBudget}
}

func TestExecuteCoversIterationSpace(t *testing.T) {
	n := &Nest{
		Name:  "cover",
		Loops: []Loop{{Var: "l", N: 5}, {Var: "k", N: 7}, {Var: "j", N: 11}},
		Accesses: []Access{
			WriteTo("a", Idx("j"), Idx("k"), Idx("l")),
		},
		WorkPerIter: 1,
	}
	team := parloop.NewTeam(3)
	defer team.Close()
	for _, depth := range []int{-1, 0, 1, 2} {
		hits := make([]int32, 5*7*11)
		p := Plan{Nest: n, Depth: depth}
		Execute(p, team, func(idx []int) {
			l, k, j := idx[0], idx[1], idx[2]
			atomic.AddInt32(&hits[(l*7+k)*11+j], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("depth=%d: iteration %d executed %d times", depth, i, h)
			}
		}
	}
}

func TestExecuteHonorsCalls(t *testing.T) {
	n := &Nest{
		Name:        "calls",
		Loops:       []Loop{{Var: "j", N: 4}},
		Accesses:    []Access{WriteTo("a", Idx("j"))},
		WorkPerIter: 1,
		Calls:       3,
	}
	var count atomic.Int32
	Execute(Plan{Nest: n, Depth: -1}, nil, func([]int) { count.Add(1) })
	if count.Load() != 12 {
		t.Errorf("executed %d iterations, want 12", count.Load())
	}
}

func TestExecuteRegionAccounting(t *testing.T) {
	// Parallelizing at depth d opens one region per outer iteration —
	// the count the planner charges sync cost for.
	n := &Nest{
		Name:  "regions",
		Loops: []Loop{{Var: "l", N: 6}, {Var: "j", N: 32}},
		Accesses: []Access{
			WriteTo("a", Idx("j"), Idx("l")),
		},
		WorkPerIter: 1,
	}
	team := parloop.NewTeam(3)
	defer team.Close()
	team.ResetSyncEvents()
	Execute(Plan{Nest: n, Depth: 1}, team, func([]int) {})
	if got := team.SyncEvents(); got != 6 {
		t.Errorf("depth-1 plan opened %d regions, want 6", got)
	}
	if got := n.regionsPerStep(1); got != 6 {
		t.Errorf("planner predicts %d regions, want 6", got)
	}
	team.ResetSyncEvents()
	Execute(Plan{Nest: n, Depth: 0}, team, func([]int) {})
	if got := team.SyncEvents(); got != 1 {
		t.Errorf("depth-0 plan opened %d regions, want 1", got)
	}
}

func TestVerifyAcceptsIndependentLoop(t *testing.T) {
	n := &Nest{
		Name:  "saxpy",
		Loops: []Loop{{Var: "j", N: 1000}},
		Accesses: []Access{
			WriteTo("y", Idx("j")),
			Read("x", Idx("j")),
		},
		WorkPerIter: 2,
	}
	team := parloop.NewTeam(4)
	defer team.Close()
	p := PlanNest(n, Outermost, execMachine())
	if !p.Parallel() {
		t.Fatalf("saxpy should be parallelizable: %+v", p)
	}
	x := make([]float64, 1000)
	for i := range x {
		x[i] = float64(i)
	}
	err := Verify(p, team,
		func() any { return make([]float64, 1000) },
		func(state any, idx []int) {
			y := state.([]float64)
			j := idx[0]
			y[j] = 2*x[j] + 1
		},
		func(a, b any) bool {
			ya, yb := a.([]float64), b.([]float64)
			for i := range ya {
				if ya[i] != yb[i] {
					return false
				}
			}
			return true
		})
	if err != nil {
		t.Errorf("Verify rejected a correct plan: %v", err)
	}
}

func TestVerifyCatchesBadPlan(t *testing.T) {
	// A recurrence y[j] = y[j-1]+1: the analyzer would refuse to
	// parallelize it; force a (wrong) parallel plan and let Verify catch
	// the difference. This is the runtime net under the §6 validation
	// ladder.
	n := &Nest{
		Name:  "recurrence",
		Loops: []Loop{{Var: "j", N: 4096}},
		Accesses: []Access{
			WriteTo("y", Idx("j")),
			Read("y", Idx("j").Plus(-1)),
		},
		WorkPerIter: 1,
	}
	if n.Parallelizable("j") {
		t.Fatal("analyzer should refuse the recurrence")
	}
	if raceEnabled {
		t.Skip("deliberately executes a racy plan; meaningless under the race detector")
	}
	team := parloop.NewTeam(4)
	defer team.Close()
	forced := Plan{Nest: n, Depth: 0, Reason: "forced for test"}
	err := Verify(forced, team,
		func() any { return make([]float64, 4097) },
		func(state any, idx []int) {
			y := state.([]float64)
			j := idx[0] + 1
			y[j] = y[j-1] + 1
		},
		func(a, b any) bool {
			ya, yb := a.([]float64), b.([]float64)
			for i := range ya {
				if ya[i] != yb[i] {
					return false
				}
			}
			return true
		})
	if err == nil {
		t.Error("Verify accepted a plan that changes the answer")
	}
}
