package grid

import (
	"testing"
	"testing/quick"
)

func TestPaperCasesPointCounts(t *testing.T) {
	// "The 1-million grid point test case consists of three zones with
	// dimensions of 15×75×70, 87×75×70, and 89×75×70."
	c1 := Paper1M()
	want1 := 15*75*70 + 87*75*70 + 89*75*70 // 1,002,750
	if got := c1.Points(); got != want1 {
		t.Errorf("Paper1M points = %d, want %d", got, want1)
	}
	if want1 < 1_000_000 || want1 > 1_010_000 {
		t.Errorf("Paper1M total %d not ≈ 1 million", want1)
	}
	if got := c1.MaxDim(); got != 89 {
		t.Errorf("Paper1M MaxDim = %d, want 89", got)
	}

	c59 := Paper59M()
	want59 := 29*450*350 + 173*450*350 + 175*450*350 // 59,377,500
	if got := c59.Points(); got != want59 {
		t.Errorf("Paper59M points = %d, want %d", got, want59)
	}
	if want59 < 59_000_000 || want59 > 59_500_000 {
		t.Errorf("Paper59M total %d not ≈ 59 million", want59)
	}
	if got := c59.MaxDim(); got != 450 {
		t.Errorf("Paper59M MaxDim = %d, want 450", got)
	}
}

func TestZoneIndexBijective(t *testing.T) {
	z := NewZone("z", 5, 7, 11)
	seen := make(map[int]bool, z.Points())
	for l := 0; l < z.LMax; l++ {
		for k := 0; k < z.KMax; k++ {
			for j := 0; j < z.JMax; j++ {
				idx := z.Index(j, k, l)
				if idx < 0 || idx >= z.Points() {
					t.Fatalf("Index(%d,%d,%d) = %d out of range", j, k, l, idx)
				}
				if seen[idx] {
					t.Fatalf("Index(%d,%d,%d) = %d duplicated", j, k, l, idx)
				}
				seen[idx] = true
			}
		}
	}
}

func TestZoneIndexJFastest(t *testing.T) {
	z := NewZone("z", 4, 5, 6)
	if z.Index(1, 0, 0)-z.Index(0, 0, 0) != 1 {
		t.Error("J is not unit stride")
	}
	if z.Index(0, 1, 0)-z.Index(0, 0, 0) != z.JMax {
		t.Error("K stride wrong")
	}
	if z.Index(0, 0, 1)-z.Index(0, 0, 0) != z.JMax*z.KMax {
		t.Error("L stride wrong")
	}
}

func TestNewZonePanicsOnTinyDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for dim < 3")
		}
	}()
	NewZone("bad", 2, 5, 5)
}

func TestScaled(t *testing.T) {
	c := Scaled(Paper1M(), 0.2)
	if len(c.Zones) != 3 {
		t.Fatalf("Scaled zones = %d, want 3", len(c.Zones))
	}
	// 0.2 × (15,75,70) → (3,15,14)
	z := c.Zones[0]
	if z.JMax != 3 || z.KMax != 15 || z.LMax != 14 {
		t.Errorf("scaled zone1 = %v, want 3×15×14", z)
	}
	// Shape preserved: zone3 remains the largest.
	if c.Zones[2].MaxDim() <= c.Zones[0].MaxDim() {
		t.Errorf("scaling lost zone-size ordering: %v", c.Zones)
	}
	// Minimum dimension clamp.
	tiny := Scaled(Paper1M(), 0.01)
	for _, z := range tiny.Zones {
		if z.JMax < 3 || z.KMax < 3 || z.LMax < 3 {
			t.Errorf("clamp failed: %v", z)
		}
	}
	for _, bad := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scaled(%g) should panic", bad)
				}
			}()
			Scaled(Paper1M(), bad)
		}()
	}
}

func TestFieldRoundTrip(t *testing.T) {
	z := NewZone("z", 4, 5, 6)
	f := NewField(&z)
	f.Set(2, 3, 4, 42.5)
	if got := f.At(2, 3, 4); got != 42.5 {
		t.Errorf("At = %g, want 42.5", got)
	}
	if got := f.At(2, 3, 3); got != 0 {
		t.Errorf("neighbor contaminated: %g", got)
	}
}

func TestStateFieldLayouts(t *testing.T) {
	z := NewZone("z", 4, 5, 6)
	for _, layout := range []Layout{ComponentMajor, PointMajor} {
		s := NewStateField(&z, 5, layout)
		want := [5]float64{1, 2, 3, 4, 5}
		s.SetPoint(1, 2, 3, want[:])
		var got [5]float64
		s.Point(1, 2, 3, got[:])
		if got != want {
			t.Errorf("%v: Point round trip = %v, want %v", layout, got, want)
		}
		for c := 0; c < 5; c++ {
			if s.At(c, 1, 2, 3) != want[c] {
				t.Errorf("%v: At(%d) = %g, want %g", layout, c, s.At(c, 1, 2, 3), want[c])
			}
		}
		// Neighboring point untouched.
		s.Point(1, 2, 4, got[:])
		if got != [5]float64{} {
			t.Errorf("%v: neighbor contaminated: %v", layout, got)
		}
	}
}

func TestStateFieldLayoutStrides(t *testing.T) {
	z := NewZone("z", 4, 5, 6)
	cm := NewStateField(&z, 5, ComponentMajor)
	if cm.Idx(1, 0, 0, 0)-cm.Idx(0, 0, 0, 0) != z.Points() {
		t.Error("ComponentMajor component stride should be Points()")
	}
	pm := NewStateField(&z, 5, PointMajor)
	if pm.Idx(1, 0, 0, 0)-pm.Idx(0, 0, 0, 0) != 1 {
		t.Error("PointMajor component stride should be 1")
	}
	if pm.Idx(0, 1, 0, 0)-pm.Idx(0, 0, 0, 0) != 5 {
		t.Error("PointMajor point stride should be NC")
	}
}

func TestCopyFromConvertsLayouts(t *testing.T) {
	z := NewZone("z", 4, 4, 4)
	f := func(seed uint8) bool {
		a := NewStateField(&z, 5, ComponentMajor)
		for i := range a.Data {
			a.Data[i] = float64((int(seed)+i*31)%97) / 7
		}
		b := NewStateField(&z, 5, PointMajor)
		b.CopyFrom(&a)
		c := NewStateField(&z, 5, ComponentMajor)
		c.CopyFrom(&b)
		for i := range a.Data {
			if a.Data[i] != c.Data[i] {
				return false
			}
		}
		// Spot check semantic agreement.
		var pa, pb [5]float64
		a.Point(1, 2, 3, pa[:])
		b.Point(1, 2, 3, pb[:])
		return pa == pb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCopyFromShapeMismatchPanics(t *testing.T) {
	z1 := NewZone("a", 4, 4, 4)
	z2 := NewZone("b", 5, 4, 4)
	a := NewStateField(&z1, 5, PointMajor)
	b := NewStateField(&z2, 5, PointMajor)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on shape mismatch")
		}
	}()
	a.CopyFrom(&b)
}

func TestLayoutString(t *testing.T) {
	if ComponentMajor.String() != "component-major" || PointMajor.String() != "point-major" {
		t.Error("Layout.String wrong")
	}
	if Layout(7).String() != "Layout(7)" {
		t.Error("unknown layout string wrong")
	}
}

func TestSingleAndZoneString(t *testing.T) {
	c := Single(5, 6, 7)
	if c.Points() != 5*6*7 || len(c.Zones) != 1 {
		t.Errorf("Single wrong: %+v", c)
	}
	if got := c.Zones[0].String(); got != "zone1[5×6×7]" {
		t.Errorf("Zone.String = %q", got)
	}
}

func TestUnifySpacing(t *testing.T) {
	c := UnifySpacing(Paper1M())
	// zone3 (89×75×70) is the largest; its spacings become universal.
	ref := c.Zones[2]
	for _, z := range c.Zones {
		if z.DJ != ref.DJ || z.DK != ref.DK || z.DL != ref.DL {
			t.Errorf("zone %v spacing not unified", z)
		}
	}
	// Dimensions untouched.
	if c.Zones[0].JMax != 15 || c.Zones[1].JMax != 87 {
		t.Error("UnifySpacing changed dimensions")
	}
	// Original case unmodified.
	orig := Paper1M()
	if orig.Zones[0].DJ == orig.Zones[2].DJ {
		t.Error("test premise wrong: original zones already share spacing")
	}
	if UnifySpacing(Case{}).Zones != nil {
		t.Error("empty case should pass through")
	}
}

func TestStretchCoordsOneSided(t *testing.T) {
	x := StretchCoordsOneSided(17, 2)
	if x[0] != 0 || x[16] != 1 {
		t.Fatalf("endpoints not pinned: %g, %g", x[0], x[16])
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			t.Fatalf("coords not increasing at %d", i)
		}
	}
	// Clustered at the wall only: first gap well below last gap.
	first := x[1] - x[0]
	last := x[16] - x[15]
	if first >= last/3 {
		t.Errorf("one-sided clustering missing: first %g, last %g", first, last)
	}
	// beta = 0 uniform.
	u := StretchCoordsOneSided(5, 0)
	if u[1] != 0.25 {
		t.Errorf("beta=0 not uniform: %v", u)
	}
}

func TestStateFieldIdxBijective(t *testing.T) {
	// Property: Idx is a bijection from (component, point) to [0, NC*points)
	// in both layouts.
	f := func(seed uint8) bool {
		z := NewZone("z", int(seed%4)+3, int(seed%3)+3, int(seed%5)+3)
		for _, layout := range []Layout{ComponentMajor, PointMajor} {
			s := NewStateField(&z, 5, layout)
			seen := make([]bool, len(s.Data))
			for l := 0; l < z.LMax; l++ {
				for k := 0; k < z.KMax; k++ {
					for j := 0; j < z.JMax; j++ {
						for c := 0; c < 5; c++ {
							idx := s.Idx(c, j, k, l)
							if idx < 0 || idx >= len(s.Data) || seen[idx] {
								return false
							}
							seen[idx] = true
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestNewStateFieldPanics(t *testing.T) {
	z := NewZone("z", 4, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("nc < 1 should panic")
		}
	}()
	NewStateField(&z, 0, PointMajor)
}
