package grid

import "fmt"

// Layout selects the memory layout of multi-component fields. The
// choice is one of the paper's serial-tuning levers ("reordering of
// loops and/or array indices", §4): the original vector code keeps each
// conserved variable in its own plane-friendly array, while the
// cache-tuned code interleaves the five components of each point so one
// cache line holds a whole state vector.
type Layout int

const (
	// ComponentMajor stores all points of component 0, then all points
	// of component 1, ... — the classic Fortran common-block layout of
	// vector codes (Q(J,K,L,N) with N slowest... i.e. separate arrays).
	ComponentMajor Layout = iota
	// PointMajor stores the NC components of point 0, then point 1, ...
	// — the cache-friendly layout of the tuned code.
	PointMajor
)

// String implements fmt.Stringer.
func (l Layout) String() string {
	switch l {
	case ComponentMajor:
		return "component-major"
	case PointMajor:
		return "point-major"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Field is a scalar field on a zone, stored flat in J-fastest order.
type Field struct {
	Zone *Zone
	Data []float64
}

// NewField allocates a zero-filled scalar field on z.
func NewField(z *Zone) Field {
	return Field{Zone: z, Data: make([]float64, z.Points())}
}

// At returns the value at (j, k, l).
func (f *Field) At(j, k, l int) float64 { return f.Data[f.Zone.Index(j, k, l)] }

// Set stores v at (j, k, l).
func (f *Field) Set(j, k, l int, v float64) { f.Data[f.Zone.Index(j, k, l)] = v }

// StateField is an NC-component field (NC = 5 for the conserved
// variables of 3-D compressible flow) with a selectable Layout.
type StateField struct {
	Zone   *Zone
	NC     int
	Layout Layout
	Data   []float64
}

// NewStateField allocates a zero-filled nc-component field on z.
func NewStateField(z *Zone, nc int, layout Layout) StateField {
	if nc < 1 {
		panic(fmt.Sprintf("grid: NewStateField nc must be >= 1, got %d", nc))
	}
	return StateField{Zone: z, NC: nc, Layout: layout, Data: make([]float64, nc*z.Points())}
}

// Idx returns the flat offset of component c at point (j, k, l).
func (s *StateField) Idx(c, j, k, l int) int {
	p := s.Zone.Index(j, k, l)
	if s.Layout == ComponentMajor {
		return c*s.Zone.Points() + p
	}
	return p*s.NC + c
}

// At returns component c at (j, k, l).
func (s *StateField) At(c, j, k, l int) float64 { return s.Data[s.Idx(c, j, k, l)] }

// Set stores v into component c at (j, k, l).
func (s *StateField) Set(c, j, k, l int, v float64) { s.Data[s.Idx(c, j, k, l)] = v }

// Point loads the NC components at (j, k, l) into dst (len >= NC).
func (s *StateField) Point(j, k, l int, dst []float64) {
	if s.Layout == PointMajor {
		base := s.Zone.Index(j, k, l) * s.NC
		copy(dst[:s.NC], s.Data[base:base+s.NC])
		return
	}
	p := s.Zone.Index(j, k, l)
	stride := s.Zone.Points()
	for c := 0; c < s.NC; c++ {
		dst[c] = s.Data[c*stride+p]
	}
}

// SetPoint stores src (len >= NC) into the components at (j, k, l).
func (s *StateField) SetPoint(j, k, l int, src []float64) {
	if s.Layout == PointMajor {
		base := s.Zone.Index(j, k, l) * s.NC
		copy(s.Data[base:base+s.NC], src[:s.NC])
		return
	}
	p := s.Zone.Index(j, k, l)
	stride := s.Zone.Points()
	for c := 0; c < s.NC; c++ {
		s.Data[c*stride+p] = src[c]
	}
}

// CopyFrom copies the values of o (which must have the same zone
// dimensions and component count, but may use a different layout) into
// s, converting layouts as needed.
func (s *StateField) CopyFrom(o *StateField) {
	if s.Zone.Points() != o.Zone.Points() || s.NC != o.NC {
		panic("grid: CopyFrom shape mismatch")
	}
	if s.Layout == o.Layout {
		copy(s.Data, o.Data)
		return
	}
	pts := s.Zone.Points()
	// Exactly one of the two is ComponentMajor.
	cm, pm := s, o
	toPM := false
	if s.Layout == PointMajor {
		cm, pm = o, s
		toPM = true
	}
	for p := 0; p < pts; p++ {
		for c := 0; c < s.NC; c++ {
			if toPM {
				pm.Data[p*s.NC+c] = cm.Data[c*pts+p]
			} else {
				cm.Data[c*pts+p] = pm.Data[p*s.NC+c]
			}
		}
	}
}
