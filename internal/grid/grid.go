// Package grid provides the multi-zone 3-D structured grids the F3D
// reproduction runs on, including the exact zone decompositions of the
// paper's two test cases (1-million and 59-million grid points) and
// scaled replicas of the same shape for hosts where the full cases are
// impractical.
//
// Index convention follows the paper's Fortran examples: a zone has
// dimensions JMax × KMax × LMax with J the fastest-varying (unit-stride)
// index, matching `DIMENSION A(JMAX,KMAX,LMAX)` in Example 4. All
// storage is flat []float64 with explicit strides, the layout a tuned
// RISC code would use.
package grid

import "fmt"

// Zone is one block of a multi-zone structured grid: a JMax×KMax×LMax
// box of points with uniform spacing in each direction. The solver
// treats the first and last index in each direction as boundary points.
type Zone struct {
	Name             string
	JMax, KMax, LMax int
	// DJ, DK, DL are the grid spacings in the three index directions
	// (for stretched directions: the minimum local spacing).
	DJ, DK, DL float64
	// XJ, XK, XL optionally hold nonuniform coordinates along each
	// direction (see StretchedZone). nil means uniform spacing.
	XJ, XK, XL []float64
}

// NewZone constructs a zone with the given dimensions and unit spacing
// scaled so the zone spans [0,1] in each direction. Dimensions must be
// at least 3 (one interior point between two boundary points).
func NewZone(name string, jmax, kmax, lmax int) Zone {
	if jmax < 3 || kmax < 3 || lmax < 3 {
		panic(fmt.Sprintf("grid: zone %q dims must be >= 3, got %d×%d×%d", name, jmax, kmax, lmax))
	}
	return Zone{
		Name: name,
		JMax: jmax, KMax: kmax, LMax: lmax,
		DJ: 1 / float64(jmax-1),
		DK: 1 / float64(kmax-1),
		DL: 1 / float64(lmax-1),
	}
}

// Points returns the number of grid points in the zone.
func (z *Zone) Points() int { return z.JMax * z.KMax * z.LMax }

// Index returns the flat index of point (j, k, l) in J-fastest order.
func (z *Zone) Index(j, k, l int) int {
	return (l*z.KMax+k)*z.JMax + j
}

// MaxDim returns the largest of the three dimensions — the paper's "M",
// the available loop-level parallelism of the zone's sweeps, which sets
// the stair-step plateau locations (§5: "With a maximum loop dimension
// of M, the available parallelism is roughly M").
func (z *Zone) MaxDim() int {
	m := z.JMax
	if z.KMax > m {
		m = z.KMax
	}
	if z.LMax > m {
		m = z.LMax
	}
	return m
}

// String implements fmt.Stringer.
func (z Zone) String() string {
	return fmt.Sprintf("%s[%d×%d×%d]", z.Name, z.JMax, z.KMax, z.LMax)
}

// Case is a named multi-zone grid, the unit the paper reports results
// for ("the 1-million grid point test case consists of three zones...").
type Case struct {
	Name  string
	Zones []Zone
}

// Points returns the total number of grid points across all zones.
func (c *Case) Points() int {
	n := 0
	for i := range c.Zones {
		n += c.Zones[i].Points()
	}
	return n
}

// MaxDim returns the largest single zone dimension in the case — the
// parallelism that bounds outer-loop scaling for the whole case.
func (c *Case) MaxDim() int {
	m := 0
	for i := range c.Zones {
		if d := c.Zones[i].MaxDim(); d > m {
			m = d
		}
	}
	return m
}

// Paper1M returns the paper's 1-million-grid-point test case: three
// zones of 15×75×70, 87×75×70 and 89×75×70 points (Table 4, note a).
func Paper1M() Case {
	return Case{
		Name: "1M",
		Zones: []Zone{
			NewZone("zone1", 15, 75, 70),
			NewZone("zone2", 87, 75, 70),
			NewZone("zone3", 89, 75, 70),
		},
	}
}

// Paper59M returns the paper's 59-million-grid-point test case: three
// zones of 29×450×350, 173×450×350 and 175×450×350 points (Table 4,
// note b).
func Paper59M() Case {
	return Case{
		Name: "59M",
		Zones: []Zone{
			NewZone("zone1", 29, 450, 350),
			NewZone("zone2", 173, 450, 350),
			NewZone("zone3", 175, 450, 350),
		},
	}
}

// Scaled returns a case with the same three-zone shape as the paper's
// cases but with every dimension multiplied by factor (minimum 3 points
// per dimension), for running the real solver at laptop scale. factor
// must be in (0, 1].
func Scaled(base Case, factor float64) Case {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("grid: Scaled factor must be in (0,1], got %g", factor))
	}
	out := Case{Name: fmt.Sprintf("%s-x%.3g", base.Name, factor)}
	out.Zones = make([]Zone, len(base.Zones))
	scale := func(n int) int {
		s := int(float64(n)*factor + 0.5)
		if s < 3 {
			s = 3
		}
		return s
	}
	for i, z := range base.Zones {
		out.Zones[i] = NewZone(z.Name, scale(z.JMax), scale(z.KMax), scale(z.LMax))
	}
	return out
}

// UnifySpacing returns a copy of the case in which every zone uses the
// grid spacings of the largest zone. NewZone normalizes each zone to a
// unit box, which is right for independent zones but not for zones that
// tile one physical grid: J-stacked zonal coupling requires matching
// spacings across the interface.
func UnifySpacing(c Case) Case {
	if len(c.Zones) == 0 {
		return c
	}
	ref := 0
	for i := range c.Zones {
		if c.Zones[i].Points() > c.Zones[ref].Points() {
			ref = i
		}
	}
	out := Case{Name: c.Name, Zones: append([]Zone(nil), c.Zones...)}
	for i := range out.Zones {
		out.Zones[i].DJ = c.Zones[ref].DJ
		out.Zones[i].DK = c.Zones[ref].DK
		out.Zones[i].DL = c.Zones[ref].DL
	}
	return out
}

// Single returns a one-zone case, convenient for unit tests and the
// examples.
func Single(jmax, kmax, lmax int) Case {
	return Case{
		Name:  fmt.Sprintf("single-%dx%dx%d", jmax, kmax, lmax),
		Zones: []Zone{NewZone("zone1", jmax, kmax, lmax)},
	}
}
