package grid

import (
	"fmt"
	"math"
)

// Stretched grids. Real F3D grids cluster points toward solid surfaces
// to resolve boundary layers; the solver supports per-direction
// nonuniform spacing via optional coordinate arrays on the zone. A nil
// coordinate array means uniform spacing (the DJ/DK/DL scalars), which
// keeps the uniform code path — and its bitwise guarantees — untouched.

// StretchCoords returns n coordinates on [0, 1] clustered symmetrically
// toward both ends with the two-sided tanh stretching
//
//	x(η) = ½ (1 + tanh(β(2η−1)) / tanh(β)),  η = i/(n−1).
//
// beta = 0 gives uniform spacing; larger beta clusters harder (β ≈ 2
// puts several times more points near the walls than at the center).
func StretchCoords(n int, beta float64) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("grid: StretchCoords needs n >= 2, got %d", n))
	}
	if beta < 0 {
		panic(fmt.Sprintf("grid: StretchCoords beta must be >= 0, got %g", beta))
	}
	x := make([]float64, n)
	if beta == 0 {
		for i := range x {
			x[i] = float64(i) / float64(n-1)
		}
		return x
	}
	t := math.Tanh(beta)
	for i := range x {
		eta := float64(i) / float64(n-1)
		x[i] = 0.5 * (1 + math.Tanh(beta*(2*eta-1))/t)
	}
	// Pin the ends exactly.
	x[0], x[n-1] = 0, 1
	return x
}

// StretchedZone builds a zone whose directions are clustered with the
// given beta factors (0 = uniform in that direction). The DJ/DK/DL
// scalars are set to the minimum local spacing, which is what time-step
// estimation needs.
func StretchedZone(name string, jmax, kmax, lmax int, betaJ, betaK, betaL float64) Zone {
	z := NewZone(name, jmax, kmax, lmax)
	if betaJ > 0 {
		z.XJ = StretchCoords(jmax, betaJ)
		z.DJ = minSpacing(z.XJ)
	}
	if betaK > 0 {
		z.XK = StretchCoords(kmax, betaK)
		z.DK = minSpacing(z.XK)
	}
	if betaL > 0 {
		z.XL = StretchCoords(lmax, betaL)
		z.DL = minSpacing(z.XL)
	}
	return z
}

func minSpacing(x []float64) float64 {
	m := math.Inf(1)
	for i := 1; i < len(x); i++ {
		if d := x[i] - x[i-1]; d < m {
			m = d
		}
	}
	return m
}

// Stretched reports whether any direction has nonuniform spacing.
func (z *Zone) Stretched() bool {
	return z.XJ != nil || z.XK != nil || z.XL != nil
}

// CoordsJ returns the J coordinates (materializing uniform spacing when
// no stretch array is present). The result must be treated as
// read-only.
func (z *Zone) CoordsJ() []float64 { return z.coords(z.XJ, z.JMax, z.DJ) }

// CoordsK returns the K coordinates.
func (z *Zone) CoordsK() []float64 { return z.coords(z.XK, z.KMax, z.DK) }

// CoordsL returns the L coordinates.
func (z *Zone) CoordsL() []float64 { return z.coords(z.XL, z.LMax, z.DL) }

func (z *Zone) coords(x []float64, n int, d float64) []float64 {
	if x != nil {
		return x
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * d
	}
	return out
}

// StretchCoordsOneSided returns n coordinates on [0, 1] clustered
// toward x = 0 only (the wall side of a boundary-layer grid):
//
//	x(η) = 1 − tanh(β(1−η)) / tanh(β).
//
// beta = 0 gives uniform spacing.
func StretchCoordsOneSided(n int, beta float64) []float64 {
	if n < 2 {
		panic(fmt.Sprintf("grid: StretchCoordsOneSided needs n >= 2, got %d", n))
	}
	if beta < 0 {
		panic(fmt.Sprintf("grid: StretchCoordsOneSided beta must be >= 0, got %g", beta))
	}
	x := make([]float64, n)
	if beta == 0 {
		for i := range x {
			x[i] = float64(i) / float64(n-1)
		}
		return x
	}
	t := math.Tanh(beta)
	for i := range x {
		eta := float64(i) / float64(n-1)
		x[i] = 1 - math.Tanh(beta*(1-eta))/t
	}
	x[0], x[n-1] = 0, 1
	return x
}
