package f3d_test

import (
	"fmt"

	"repro/internal/f3d"
	"repro/internal/grid"
	"repro/internal/parloop"
)

// Run the cache-tuned solver in parallel and confirm it converges and
// matches the serial run exactly — the library's one-paragraph
// quickstart.
func Example() {
	cfg := f3d.DefaultConfig(grid.Single(11, 10, 9))

	serial, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{})
	if err != nil {
		panic(err)
	}
	defer serial.Close()

	team := parloop.NewTeam(4)
	defer team.Close()
	parallel, err := f3d.NewCacheSolver(cfg, f3d.CacheOptions{Team: team, Phases: f3d.AllPhases()})
	if err != nil {
		panic(err)
	}
	defer parallel.Close()

	f3d.InitPulse(serial, 0.05)
	f3d.InitPulse(parallel, 0.05)
	h := f3d.RunToSteady(serial, 1e-2, 200)
	for i := 0; i < h.Steps(); i++ {
		parallel.Step()
	}

	fmt.Println("converged:", h.Converged)
	fmt.Println("serial == parallel (bitwise):", f3d.MaxPointwiseDiff(serial, parallel) == 0)
	// Output:
	// converged: true
	// serial == parallel (bitwise): true
}
