package f3d

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/parloop"
	"repro/internal/sched"
)

func TestJobRunsUnderScheduler(t *testing.T) {
	cfg := DefaultConfig(grid.Single(11, 10, 9))
	job, err := NewJob("wing", cfg, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := job.Parallelism(); got != 11 {
		t.Fatalf("Parallelism = %d, want max zone dimension 11", got)
	}
	s := sched.New(sched.Config{Procs: 3, QueueDepth: 4})
	defer s.Close()
	h, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	st := h.Status()
	if st.State != sched.StateDone {
		t.Fatalf("state %v, want done", st.State)
	}
	if st.SyncEvents == 0 {
		t.Error("no sync events recorded for a parallel solver job")
	}
	hist := job.History()
	if len(hist.Residuals) != 4 {
		t.Fatalf("recorded %d residuals, want 4", len(hist.Residuals))
	}
	for i, r := range hist.Residuals {
		if math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
			t.Fatalf("residual[%d] = %g, want finite positive", i, r)
		}
	}
}

func TestJobCancelMidRun(t *testing.T) {
	cfg := DefaultConfig(grid.Single(11, 10, 9))
	job, err := NewJob("long", cfg, 100000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s := sched.New(sched.Config{Procs: 2, QueueDepth: 4})
	defer s.Close()
	h, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	// Let a few steps land, then cancel; the job must stop at its next
	// checkpoint rather than run all 100000 steps.
	deadline := time.Now().Add(30 * time.Second)
	for len(job.History().Residuals) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	h.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := h.Wait(ctx); err == nil {
		t.Fatal("canceled job returned nil error")
	}
	if st := h.Status(); st.State != sched.StateCanceled {
		t.Fatalf("state %v, want canceled", st.State)
	}
	if n := len(job.History().Residuals); n >= 100000 {
		t.Fatalf("job ran to completion (%d steps) despite cancel", n)
	}
}

// TestCacheSolverSurvivesTeamResize exercises the mechanism a
// scheduler grant resize relies on: the solver must keep working when
// its team grows or shrinks between steps (per-worker scratch is grown
// on demand), and the physics must stay put — the resized run's
// residuals match a fixed-team reference to rounding.
func TestCacheSolverSurvivesTeamResize(t *testing.T) {
	cfg := DefaultConfig(grid.Single(11, 10, 9))

	ref, err := NewCacheSolver(cfg, CacheOptions{Phases: AllPhases()})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	InitPulse(ref, 0.05)
	var want []float64
	for i := 0; i < 4; i++ {
		want = append(want, ref.Step().Residual)
	}

	team := parloop.NewTeam(1)
	defer team.Close()
	s, err := NewCacheSolver(cfg, CacheOptions{Team: team, Phases: AllPhases()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	InitPulse(s, 0.05)
	var got []float64
	for _, workers := range []int{1, 3, 4, 2} { // grow, grow, shrink
		team.Resize(workers)
		got = append(got, s.Step().Residual)
	}
	for i := range want {
		rel := math.Abs(got[i]-want[i]) / want[i]
		if rel > 1e-12 {
			t.Errorf("step %d: resized residual %.17g vs reference %.17g (rel %g)",
				i, got[i], want[i], rel)
		}
	}
}
