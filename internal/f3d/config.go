// Package f3d implements the CFD substrate of the reproduction: a 3-D
// implicit compressible-flow solver in the mold of F3D/ARC3D — central
// differencing with scalar artificial dissipation and a diagonalized
// Beam–Warming approximate-factorization implicit time step — on
// multi-zone structured grids.
//
// The package provides the same algorithm in the two code shapes the
// paper contrasts:
//
//   - VectorSolver: the "vectorizable original". Sweeps process one
//     whole plane of the zone at a time with plane-sized scratch arrays
//     and inner loops running across the plane — long vectors, huge
//     scratch (the arrays that "were unlikely to fit into even the
//     largest caches", §4).
//   - CacheSolver: the RISC-tuned rewrite. Sweeps process one pencil at
//     a time with pencil-sized scratch that locks into cache, loops
//     reordered for unit stride, and outer loops parallelized with
//     parloop teams — the paper's entire §4 program.
//
// Both variants execute identical arithmetic per grid point, so their
// results agree bitwise, which is how the paper's requirement of
// parallelization "without introducing any changes to the algorithm or
// the convergence properties" is made testable.
package f3d

import (
	"fmt"

	"repro/internal/euler"
	"repro/internal/grid"
)

// BCKind selects the boundary treatment applied to all six faces of
// every zone. Boundary points are held by the boundary routine and
// excluded from the implicit update (explicit boundary conditions, the
// standard arrangement in ARC3D-class codes and the reason the paper's
// boundary routines are cheap, hard-to-amortize loops).
type BCKind int

const (
	// BCFreestream pins boundary points to the freestream state.
	BCFreestream BCKind = iota
	// BCExtrapolate copies the adjacent interior point outward
	// (zeroth-order extrapolation).
	BCExtrapolate
	// BCSlipWall reflects the adjacent interior state with zero velocity
	// normal to the face (inviscid wall): density, pressure and
	// tangential velocity are carried over; the normal kinetic energy is
	// removed from the total energy.
	BCSlipWall
	// BCNoSlipWall enforces zero velocity at the face (viscous wall,
	// adiabatic): density and internal energy are carried over from the
	// interior, all momentum is dropped.
	BCNoSlipWall
)

// String implements fmt.Stringer.
func (b BCKind) String() string {
	switch b {
	case BCFreestream:
		return "freestream"
	case BCExtrapolate:
		return "extrapolate"
	case BCSlipWall:
		return "slip-wall"
	case BCNoSlipWall:
		return "no-slip-wall"
	default:
		return fmt.Sprintf("BCKind(%d)", int(b))
	}
}

// Face identifies one of a zone's six boundary faces.
type Face int

const (
	FaceJMin Face = iota
	FaceJMax
	FaceKMin
	FaceKMax
	FaceLMin
	FaceLMax
	numFaces
)

// String implements fmt.Stringer.
func (f Face) String() string {
	switch f {
	case FaceJMin:
		return "j-min"
	case FaceJMax:
		return "j-max"
	case FaceKMin:
		return "k-min"
	case FaceKMax:
		return "k-max"
	case FaceLMin:
		return "l-min"
	case FaceLMax:
		return "l-max"
	default:
		return fmt.Sprintf("Face(%d)", int(f))
	}
}

// Config holds the numerical parameters of a solver run. The zero value
// is not valid; start from DefaultConfig.
type Config struct {
	Case grid.Case
	// Dt is the time step (the same for every zone; the implicit scheme
	// tolerates CFL numbers well above explicit limits).
	Dt float64
	// Freestream is the reference state used for initialization and
	// freestream boundaries.
	Freestream euler.Prim
	// BC selects the boundary treatment for all faces.
	BC BCKind
	// FaceBC optionally overrides the treatment per face (applied to
	// every zone). nil entries fall back to BC. At edges and corners the
	// face later in Face order wins.
	FaceBC map[Face]BCKind
	// Eps4 scales the explicit fourth-difference dissipation.
	Eps4 float64
	// Eps2B scales the explicit second-difference dissipation applied at
	// boundary-adjacent points where the five-point stencil does not fit.
	Eps2B float64
	// EpsI scales the implicit second-difference dissipation inside the
	// factored operators.
	EpsI float64
	// ImplicitDissip4 switches the implicit dissipation from second to
	// fourth difference, turning each factor's scalar systems from
	// tridiagonal into pentadiagonal (the ARC3D-style accelerator:
	// matching the explicit fourth-difference dissipation implicitly
	// permits larger stable time steps). EpsI scales it either way.
	ImplicitDissip4 bool
	// ParallelizeBC also runs the boundary-condition routines inside
	// parallel regions. The paper leaves BC routines serial because
	// their loops are too cheap to amortize a synchronization (§3);
	// the flag exists so the trade-off can be benchmarked.
	ParallelizeBC bool
	// Viscous enables the thin-layer Navier–Stokes terms (viscous
	// derivatives in the L direction only, as in F3D). Re must be set
	// when Viscous is true.
	Viscous bool
	// Re is the Reynolds number for the viscous terms.
	Re float64
	// Interfaces couples zones along J with explicit two-point-overlap
	// exchange (the zonal scheme of F3D/ZNSFLOW). Coupled faces override
	// the BC treatment.
	Interfaces []Interface
}

// DefaultConfig returns a stable configuration for the given case: a
// mildly supersonic freestream aligned with J, dissipation constants in
// the usual ARC3D range, and a CFL≈2 time step.
func DefaultConfig(c grid.Case) Config {
	fs := euler.Prim{Rho: 1, U: 0.5, V: 0.05, W: 0.025, P: 1}
	cfg := Config{
		Case:       c,
		Freestream: fs,
		BC:         BCFreestream,
		Eps4:       0.02,
		Eps2B:      0.08,
		EpsI:       0.10,
	}
	cfg.Dt = EstimateDt(&cfg, 2.0)
	return cfg
}

// EstimateDt returns a time step corresponding to the given CFL number
// for the config's freestream state on the finest spacing in the case.
func EstimateDt(cfg *Config, cfl float64) float64 {
	if cfl <= 0 {
		panic(fmt.Sprintf("f3d: EstimateDt cfl must be > 0, got %g", cfl))
	}
	u := cfg.Freestream.Cons()
	minDt := 0.0
	first := true
	for i := range cfg.Case.Zones {
		z := &cfg.Case.Zones[i]
		for _, ax := range []euler.Axis{euler.X, euler.Y, euler.Z} {
			h := spacing(z, ax)
			sr := euler.SpectralRadius(ax, u)
			dt := cfl * h / sr
			if first || dt < minDt {
				minDt, first = dt, false
			}
		}
	}
	return minDt
}

// Validate checks the configuration for internal consistency.
func (cfg *Config) Validate() error {
	if len(cfg.Case.Zones) == 0 {
		return fmt.Errorf("f3d: config has no zones")
	}
	if cfg.Dt <= 0 {
		return fmt.Errorf("f3d: Dt must be > 0, got %g", cfg.Dt)
	}
	if cfg.Freestream.Rho <= 0 || cfg.Freestream.P <= 0 {
		return fmt.Errorf("f3d: non-physical freestream %+v", cfg.Freestream)
	}
	if cfg.Eps4 < 0 || cfg.Eps2B < 0 || cfg.EpsI < 0 {
		return fmt.Errorf("f3d: dissipation coefficients must be >= 0")
	}
	validKind := func(b BCKind) bool {
		switch b {
		case BCFreestream, BCExtrapolate, BCSlipWall, BCNoSlipWall:
			return true
		}
		return false
	}
	if !validKind(cfg.BC) {
		return fmt.Errorf("f3d: unknown BC kind %d", int(cfg.BC))
	}
	for f, b := range cfg.FaceBC {
		if f < 0 || f >= numFaces {
			return fmt.Errorf("f3d: unknown face %d", int(f))
		}
		if !validKind(b) {
			return fmt.Errorf("f3d: unknown BC kind %d on face %v", int(b), f)
		}
	}
	if cfg.Viscous && cfg.Re <= 0 {
		return fmt.Errorf("f3d: viscous run needs Re > 0, got %g", cfg.Re)
	}
	if err := checkInterfaces(cfg.Case, cfg.Interfaces); err != nil {
		return err
	}
	return nil
}

// viscRe returns the Reynolds number to thread into the kernels: the
// configured value for viscous runs, or zero (meaning inviscid) when
// the viscous terms are off.
func (cfg *Config) viscRe() float64 {
	if cfg.Viscous {
		return cfg.Re
	}
	return 0
}

// spacing returns the grid spacing of z along the axis (J↔X, K↔Y, L↔Z).
func spacing(z *grid.Zone, ax euler.Axis) float64 {
	switch ax {
	case euler.X:
		return z.DJ
	case euler.Y:
		return z.DK
	case euler.Z:
		return z.DL
	default:
		panic(fmt.Sprintf("f3d: bad axis %d", int(ax)))
	}
}
