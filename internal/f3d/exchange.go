package f3d

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/euler"
)

// Boundary-plane exchange. The zonal scheme couples zones through
// whole J-planes of conserved state captured at the start of a time
// step (zonal.go). When the zones of one case are sharded across
// daemons, those planes become the wire payload: each worker captures
// the donor planes its neighbours need, the coordinator routes them,
// and the receivers write them onto their coupled faces after boundary
// conditions — exactly where applyInterfacesTo runs in the single-node
// solver, so the distributed step reproduces the single-node step
// bitwise.

// BoundaryPlane is one zone's J-face exchange payload: a KMax×LMax
// plane of conserved state headed for the given face of zone Zone
// (indices are the receiver's, in the receiving solver's case).
// Only the J faces participate: F3D's zonal coupling stacks zones
// along J (see Interface).
type BoundaryPlane struct {
	// Zone is the receiving zone's index in the receiver's case.
	Zone int
	// Face is the receiving face: FaceJMin (j=0) or FaceJMax
	// (j=JMax-1).
	Face Face
	// KMax, LMax are the plane's dimensions; they must match the
	// receiving zone's.
	KMax, LMax int
	// Data holds KMax*LMax*euler.NC conserved values in the capture
	// order of captureInterfaces: l-major, then k, then component.
	Data []float64
}

// planeValues returns the expected element count of the plane.
func (p *BoundaryPlane) planeValues() int { return p.KMax * p.LMax * euler.NC }

// Validate checks internal consistency of the plane itself.
func (p *BoundaryPlane) Validate() error {
	if p.Face != FaceJMin && p.Face != FaceJMax {
		return fmt.Errorf("f3d: boundary plane for face %v (only %v and %v are exchanged)",
			p.Face, FaceJMin, FaceJMax)
	}
	if p.KMax < 1 || p.LMax < 1 {
		return fmt.Errorf("f3d: boundary plane with non-positive dims %dx%d", p.KMax, p.LMax)
	}
	if len(p.Data) != p.planeValues() {
		return fmt.Errorf("f3d: boundary plane %dx%d carries %d values, want %d",
			p.KMax, p.LMax, len(p.Data), p.planeValues())
	}
	return nil
}

// CapturePlane snapshots the donor plane of zone zi of the solver for
// a neighbour coupled across the given face of zi: for FaceJMax the
// j=JMax-2 interior plane (feeding a right neighbour's j=0 face), for
// FaceJMin the j=1 interior plane (feeding a left neighbour's j=JMax-1
// face). The returned plane is addressed to the *donor's* zone and
// face; the caller re-addresses it to the receiver (RetargetTo) before
// applying. Capture must happen at the start of the step, before any
// zone advances — the same time level captureInterfaces uses.
func CapturePlane(s Solver, zi int, face Face) (BoundaryPlane, error) {
	zones := s.Zones()
	if zi < 0 || zi >= len(zones) {
		return BoundaryPlane{}, fmt.Errorf("f3d: CapturePlane zone %d of %d", zi, len(zones))
	}
	zs := zones[zi]
	z := zs.Zone
	var j int
	switch face {
	case FaceJMax:
		j = z.JMax - 2
	case FaceJMin:
		j = 1
	default:
		return BoundaryPlane{}, fmt.Errorf("f3d: CapturePlane face %v (only %v and %v are exchanged)",
			face, FaceJMin, FaceJMax)
	}
	p := BoundaryPlane{
		Zone: zi, Face: face,
		KMax: z.KMax, LMax: z.LMax,
		Data: make([]float64, z.KMax*z.LMax*euler.NC),
	}
	pos := 0
	for l := 0; l < z.LMax; l++ {
		for k := 0; k < z.KMax; k++ {
			zs.Q.Point(j, k, l, p.Data[pos:pos+euler.NC])
			pos += euler.NC
		}
	}
	return p, nil
}

// RetargetTo re-addresses a captured donor plane to its receiver: zone
// index in the receiving case and the receiving face. A plane captured
// on a FaceJMax donor lands on the neighbour's FaceJMin and vice
// versa; Retarget flips the face accordingly.
func (p BoundaryPlane) RetargetTo(zone int) BoundaryPlane {
	p.Zone = zone
	if p.Face == FaceJMax {
		p.Face = FaceJMin
	} else {
		p.Face = FaceJMax
	}
	return p
}

// Apply writes the plane onto its receiving face of the solver,
// overriding whatever the boundary conditions put there — the remote
// half of applyInterfacesTo. It must run after the receiving zone's
// boundary conditions and before its right-hand side; the solver's
// BoundaryHook (CacheOptions) is that point.
func (p *BoundaryPlane) Apply(s Solver) error {
	if err := p.Validate(); err != nil {
		return err
	}
	zones := s.Zones()
	if p.Zone < 0 || p.Zone >= len(zones) {
		return fmt.Errorf("f3d: boundary plane for zone %d of %d", p.Zone, len(zones))
	}
	zs := zones[p.Zone]
	z := zs.Zone
	if z.KMax != p.KMax || z.LMax != p.LMax {
		return fmt.Errorf("f3d: boundary plane %dx%d onto zone %q face %dx%d",
			p.KMax, p.LMax, z.Name, z.KMax, z.LMax)
	}
	j := 0
	if p.Face == FaceJMax {
		j = z.JMax - 1
	}
	pos := 0
	for l := 0; l < z.LMax; l++ {
		for k := 0; k < z.KMax; k++ {
			zs.Q.SetPoint(j, k, l, p.Data[pos:pos+euler.NC])
			pos += euler.NC
		}
	}
	return nil
}

// planeMagic distinguishes (and versions) the wire encoding.
const planeMagic = uint32(0xf3d70001) // "f3d plane", v1

// planeHeader is the fixed-size prefix of the encoding: magic, zone,
// face, KMax, LMax (uint32 each).
const planeHeaderBytes = 5 * 4

// MarshalBinary encodes the plane for the transport: a fixed header
// followed by the IEEE-754 bits of every value, all big-endian. The
// encoding is exact — bitwise conformance of the distributed solve
// depends on the payload never passing through a lossy decimal form.
func (p *BoundaryPlane) MarshalBinary() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Zone < 0 {
		return nil, fmt.Errorf("f3d: boundary plane with negative zone %d", p.Zone)
	}
	buf := make([]byte, planeHeaderBytes+8*len(p.Data))
	binary.BigEndian.PutUint32(buf[0:], planeMagic)
	binary.BigEndian.PutUint32(buf[4:], uint32(p.Zone))
	binary.BigEndian.PutUint32(buf[8:], uint32(p.Face))
	binary.BigEndian.PutUint32(buf[12:], uint32(p.KMax))
	binary.BigEndian.PutUint32(buf[16:], uint32(p.LMax))
	off := planeHeaderBytes
	for _, v := range p.Data {
		binary.BigEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	return buf, nil
}

// UnmarshalBinary decodes a plane encoded by MarshalBinary, rejecting
// truncated, oversized and dimension-inconsistent payloads.
func (p *BoundaryPlane) UnmarshalBinary(b []byte) error {
	if len(b) < planeHeaderBytes {
		return fmt.Errorf("f3d: boundary plane payload of %d bytes, want >= %d", len(b), planeHeaderBytes)
	}
	if m := binary.BigEndian.Uint32(b[0:]); m != planeMagic {
		return fmt.Errorf("f3d: boundary plane bad magic %#x", m)
	}
	q := BoundaryPlane{
		Zone: int(binary.BigEndian.Uint32(b[4:])),
		Face: Face(binary.BigEndian.Uint32(b[8:])),
		KMax: int(binary.BigEndian.Uint32(b[12:])),
		LMax: int(binary.BigEndian.Uint32(b[16:])),
	}
	if q.Face != FaceJMin && q.Face != FaceJMax {
		return fmt.Errorf("f3d: boundary plane bad face %d", int(q.Face))
	}
	if q.KMax < 1 || q.LMax < 1 || q.KMax > 1<<20 || q.LMax > 1<<20 {
		return fmt.Errorf("f3d: boundary plane bad dims %dx%d", q.KMax, q.LMax)
	}
	n := q.planeValues()
	if want := planeHeaderBytes + 8*n; len(b) != want {
		return fmt.Errorf("f3d: boundary plane %dx%d payload of %d bytes, want %d", q.KMax, q.LMax, len(b), want)
	}
	q.Data = make([]float64, n)
	off := planeHeaderBytes
	for i := range q.Data {
		q.Data[i] = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		off += 8
	}
	*p = q
	return nil
}

// ZoneSnapshot is a full copy of one zone's conserved field — the
// checkpoint payload the cluster engine ships so a lost worker's zones
// can be restored on a survivor.
type ZoneSnapshot struct {
	// Zone is the zone's index in the owning solver's case.
	Zone int
	// Data is a copy of the zone's Q storage in its native layout.
	Data []float64
}

// SnapshotZone copies zone zi's conserved state.
func SnapshotZone(s Solver, zi int) (ZoneSnapshot, error) {
	zones := s.Zones()
	if zi < 0 || zi >= len(zones) {
		return ZoneSnapshot{}, fmt.Errorf("f3d: SnapshotZone zone %d of %d", zi, len(zones))
	}
	return ZoneSnapshot{
		Zone: zi,
		Data: append([]float64(nil), zones[zi].Q.Data...),
	}, nil
}

// Restore writes the snapshot back onto zone s.Zone of the solver. The
// storage sizes must match exactly.
func (c *ZoneSnapshot) Restore(s Solver) error {
	zones := s.Zones()
	if c.Zone < 0 || c.Zone >= len(zones) {
		return fmt.Errorf("f3d: snapshot for zone %d of %d", c.Zone, len(zones))
	}
	dst := zones[c.Zone].Q.Data
	if len(dst) != len(c.Data) {
		return fmt.Errorf("f3d: snapshot of %d values onto zone %q storage of %d",
			len(c.Data), zones[c.Zone].Zone.Name, len(dst))
	}
	copy(dst, c.Data)
	return nil
}
