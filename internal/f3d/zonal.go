package f3d

import (
	"fmt"

	"repro/internal/euler"
	"repro/internal/grid"
)

// Zonal interface coupling. F3D is a block-structured zonal code: the
// paper's test cases are three zones stacked along J with matching K×L
// faces. Zones are coupled explicitly with a two-point overlap — each
// zone's J-face boundary points receive the neighbouring zone's
// adjacent interior values, captured at the start of the time step so
// the exchange is symmetric and independent of zone ordering
// (time-lagged patched-grid coupling, as in the ZNSFLOW solver the
// paper's project produced).

// Interface couples zones[Left]'s J-max face to zones[Right]'s J-min
// face. The grids must overlap by two points:
//
//	Left physical j ∈ [0, split+1],  Right physical j ∈ [split, N-1]
//	Left boundary (JMax-1) ← Right interior j=1
//	Right boundary (0)     ← Left interior j=JMax-2
//
// Both zones must have equal KMax, LMax and equal spacings.
type Interface struct {
	Left, Right int
}

// checkInterfaces validates interface definitions against a case.
func checkInterfaces(c grid.Case, ifaces []Interface) error {
	for _, f := range ifaces {
		if f.Left < 0 || f.Left >= len(c.Zones) || f.Right < 0 || f.Right >= len(c.Zones) {
			return fmt.Errorf("f3d: interface %v references missing zone (case has %d zones)", f, len(c.Zones))
		}
		if f.Left == f.Right {
			return fmt.Errorf("f3d: interface %v couples a zone to itself", f)
		}
		a, b := &c.Zones[f.Left], &c.Zones[f.Right]
		if a.KMax != b.KMax || a.LMax != b.LMax {
			return fmt.Errorf("f3d: interface %v face mismatch: %v vs %v", f, a, b)
		}
		if a.DK != b.DK || a.DL != b.DL || a.DJ != b.DJ {
			return fmt.Errorf("f3d: interface %v spacing mismatch", f)
		}
		if a.Stretched() || b.Stretched() {
			return fmt.Errorf("f3d: interface %v couples stretched zones (unsupported)", f)
		}
	}
	return nil
}

// ifaceBuffer holds one interface's captured face planes (KMax×LMax
// state vectors in each direction).
type ifaceBuffer struct {
	toRight []float64 // Left zone's j=JMax-2 plane → Right's j=0 face
	toLeft  []float64 // Right zone's j=1 plane → Left's j=JMax-1 face
}

// newIfaceBuffers allocates exchange buffers for the interfaces.
func newIfaceBuffers(c grid.Case, ifaces []Interface) []ifaceBuffer {
	bufs := make([]ifaceBuffer, len(ifaces))
	for i, f := range ifaces {
		z := &c.Zones[f.Left]
		n := z.KMax * z.LMax * euler.NC
		bufs[i] = ifaceBuffer{
			toRight: make([]float64, n),
			toLeft:  make([]float64, n),
		}
	}
	return bufs
}

// captureInterfaces snapshots the donor planes of every interface from
// the current (time-level n) solution.
func captureInterfaces(zones []*ZoneState, ifaces []Interface, bufs []ifaceBuffer) {
	for i, f := range ifaces {
		left, right := zones[f.Left], zones[f.Right]
		zl := left.Zone
		pos := 0
		for l := 0; l < zl.LMax; l++ {
			for k := 0; k < zl.KMax; k++ {
				left.Q.Point(zl.JMax-2, k, l, bufs[i].toRight[pos:pos+euler.NC])
				right.Q.Point(1, k, l, bufs[i].toLeft[pos:pos+euler.NC])
				pos += euler.NC
			}
		}
	}
}

// applyInterfacesTo writes the captured donor planes onto the receiver
// faces of the given zone (called after the zone's boundary conditions,
// which it overrides on the coupled faces).
func applyInterfacesTo(zoneIdx int, zones []*ZoneState, ifaces []Interface, bufs []ifaceBuffer) {
	for i, f := range ifaces {
		if f.Right == zoneIdx {
			zs := zones[f.Right]
			z := zs.Zone
			pos := 0
			for l := 0; l < z.LMax; l++ {
				for k := 0; k < z.KMax; k++ {
					zs.Q.SetPoint(0, k, l, bufs[i].toRight[pos:pos+euler.NC])
					pos += euler.NC
				}
			}
		}
		if f.Left == zoneIdx {
			zs := zones[f.Left]
			z := zs.Zone
			pos := 0
			for l := 0; l < z.LMax; l++ {
				for k := 0; k < z.KMax; k++ {
					zs.Q.SetPoint(z.JMax-1, k, l, bufs[i].toLeft[pos:pos+euler.NC])
					pos += euler.NC
				}
			}
		}
	}
}

// SplitAlongJ splits a single zone of physical extent n×kmax×lmax into
// two zones with a two-point overlap at index split (1 < split < n−2),
// suitable for zonal-coupling tests and examples: the left zone covers
// physical j ∈ [0, split+1], the right zone j ∈ [split, n−1]. Both
// inherit the parent's spacings, so the composite grid is point-matched
// with the unsplit one.
func SplitAlongJ(name string, n, kmax, lmax, split int) (grid.Case, []Interface) {
	if split < 2 || split > n-4 {
		panic(fmt.Sprintf("f3d: SplitAlongJ split %d out of range [2, %d]", split, n-4))
	}
	parent := grid.NewZone(name, n, kmax, lmax)
	left := grid.Zone{
		Name: name + "-left",
		JMax: split + 2, KMax: kmax, LMax: lmax,
		DJ: parent.DJ, DK: parent.DK, DL: parent.DL,
	}
	right := grid.Zone{
		Name: name + "-right",
		JMax: n - split, KMax: kmax, LMax: lmax,
		DJ: parent.DJ, DK: parent.DK, DL: parent.DL,
	}
	c := grid.Case{Name: name + "-split", Zones: []grid.Zone{left, right}}
	return c, []Interface{{Left: 0, Right: 1}}
}

// StackAlongJ generalizes SplitAlongJ to any number of cuts: a single
// zone of physical extent n×kmax×lmax becomes len(cuts)+1 zones stacked
// along J, each consecutive pair overlapping by two points at its cut.
// Zone i covers physical j ∈ [cuts[i-1], cuts[i]+1] (with cuts extended
// by 0 on the left and n−1 on the right), so the composite grid is
// point-matched with the unsplit one — the multi-zone cases the cluster
// engine shards across workers. Cuts must be strictly increasing with
// every zone at least four points deep.
func StackAlongJ(name string, n, kmax, lmax int, cuts []int) (grid.Case, []Interface) {
	if len(cuts) == 0 {
		panic("f3d: StackAlongJ needs at least one cut")
	}
	prev := 0
	for i, cut := range cuts {
		if cut < prev+2 || cut > n-4 {
			panic(fmt.Sprintf("f3d: StackAlongJ cut[%d]=%d out of range [%d, %d]", i, cut, prev+2, n-4))
		}
		prev = cut
	}
	parent := grid.NewZone(name, n, kmax, lmax)
	bounds := append(append([]int{0}, cuts...), n-1)
	zones := make([]grid.Zone, len(cuts)+1)
	ifaces := make([]Interface, len(cuts))
	for i := range zones {
		lo, hi := bounds[i], bounds[i+1]+1
		if i == len(zones)-1 {
			hi = n - 1
		}
		zones[i] = grid.Zone{
			Name: fmt.Sprintf("%s-z%d", name, i),
			JMax: hi - lo + 1, KMax: kmax, LMax: lmax,
			DJ: parent.DJ, DK: parent.DK, DL: parent.DL,
		}
		if i > 0 {
			ifaces[i-1] = Interface{Left: i - 1, Right: i}
		}
	}
	c := grid.Case{Name: name + "-stack", Zones: zones}
	return c, ifaces
}
