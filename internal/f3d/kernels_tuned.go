package f3d

import (
	"repro/internal/euler"
	"repro/internal/linalg"
)

// Tuned inner-loop kernels for the cache solver: the same arithmetic as
// the scalar reference kernels in kernels.go, restructured the way the
// paper's §4 serial tuning restructured the vector code — invariant
// subexpressions hoisted out of the component loop, the five
// characteristic systems solved as one lane batch so their recurrences
// overlap, and the geometry branch lifted out of the inner loop. Every
// per-element floating-point operation keeps its value and order, so
// tuned results are bitwise identical to the scalar forms; the
// conformance matrix in internal/check enforces that on every build.

// KernelImpl selects which inner-loop kernel implementations a
// CacheSolver runs.
type KernelImpl int

const (
	// ScalarKernels runs the plain reference kernels (kernels.go) — the
	// conformance baseline every other implementation is checked against.
	ScalarKernels KernelImpl = iota
	// TunedKernels runs the restructured kernels in this file: batched
	// band solves, hoisted invariants, split geometry loops. Bitwise
	// identical results, fewer instructions per point.
	TunedKernels
)

// String returns the benchmark/series label of the implementation.
func (k KernelImpl) String() string {
	if k == TunedKernels {
		return "tuned"
	}
	return "scalar"
}

// kernelSet is the dispatch seam between the cache solver's loop
// drivers and the per-line kernels. The drivers (rhsPassJK, rhsPassL,
// sweepJK, sweepLUpdate) call through the worker's set, so scalar and
// tuned variants share every line of driver code.
type kernelSet struct {
	sweepLine func(p *pencil, n int, ax euler.Axis, h, dt, epsI, viscRe float64, g *axisGeom, dissip4 bool)
	rhsFlux   func(ax euler.Axis, q []linalg.Vec5, flux []linalg.Vec5, sigma []float64, n int)
	rhsAccum  func(q, flux []linalg.Vec5, sigma []float64, r []linalg.Vec5, n int, h, dt, eps4, eps2b float64, g *axisGeom)
}

var (
	scalarKernelSet = kernelSet{sweepLine: sweepLineMode, rhsFlux: rhsLineFlux, rhsAccum: rhsLineAccum}
	tunedKernelSet  = kernelSet{sweepLine: sweepLineModeTuned, rhsFlux: rhsLineFluxTuned, rhsAccum: rhsLineAccumTuned}
)

// kernelsFor maps the option value to its kernel set.
func kernelsFor(impl KernelImpl) *kernelSet {
	if impl == TunedKernels {
		return &tunedKernelSet
	}
	return &scalarKernelSet
}

// The lane-batched solvers are locked to one lane per characteristic
// field; this fails to compile if the two constants ever diverge.
var _ [linalg.Lanes][]float64 = [euler.NC][]float64{}

// sweepLineModeTuned is sweepLineMode with the component loop turned
// inside out: the spectral radius, metric coefficients and viscous row
// — all invariant in c — are computed once per point instead of once
// per (component, point), and the five per-component band systems are
// solved as one linalg lane batch. Per component the assembled
// coefficients and the elimination order are exactly those of the
// scalar path, so the results match bitwise.
func sweepLineModeTuned(p *pencil, n int, ax euler.Axis, h, dt, epsI, viscRe float64, g *axisGeom, dissip4 bool) {
	ni := n - 2 // interior unknowns
	if ni < 1 {
		return
	}
	p.checkLine(n)
	nu := dt / (2 * h)
	muScale := epsI * dt / h
	// Eigensystems and characteristic-variable RHS at interior points.
	// EigensystemInto writes the 55-float transform in place instead of
	// copying a by-value return — same values, no duffcopy.
	for i := 1; i <= ni; i++ {
		euler.EigensystemInto(&p.eig[i], ax, p.q[i])
		w := linalg.MulVec5(&p.eig[i].Tinv, &p.r[i])
		for c := 0; c < euler.NC; c++ {
			p.w[c][i-1] = w[c]
		}
	}
	// Band assembly, point-outer: everything independent of the
	// component is hoisted to once per point.
	viscous := viscRe > 0 && ax == euler.Z
	for i := 1; i <= ni; i++ {
		sig := sigmaFromLambda(&p.eig[i].Lambda)
		nui, mu := nu, muScale*sig
		if g != nil {
			nui = dt * g.inv2h[i]
			mu = epsI * dt * g.invh[i] * sig
		}
		var da, db, dc float64
		if viscous {
			if g != nil {
				da, db, dc = viscousImplicitRowVar(dt, viscRe, p.q[i][0], g.invdm[i-1], g.invdm[i], g.invh[i])
			} else {
				da, db, dc = viscousImplicitRow(dt, h, viscRe, p.q[i][0])
			}
		}
		var lamPrev, lamNext *linalg.Vec5
		if i > 1 {
			lamPrev = &p.eig[i-1].Lambda
		}
		if i < ni {
			lamNext = &p.eig[i+1].Lambda
		}
		interior4 := dissip4 && i >= 2 && i <= ni-1
		for c := 0; c < euler.NC; c++ {
			lp, ln := 0.0, 0.0
			if lamPrev != nil {
				lp = lamPrev[c]
			}
			if lamNext != nil {
				ln = lamNext[c]
			}
			var a, b, cc float64
			if dissip4 {
				a, b, cc = implicitRow(nui, 0, lp, ln)
				if interior4 {
					p.te[c][i-1] = mu
					p.tf[c][i-1] = mu
					a += -4 * mu
					b += 6 * mu
					cc += -4 * mu
				} else {
					p.te[c][i-1] = 0
					p.tf[c][i-1] = 0
					a += -mu
					b += 2 * mu
					cc += -mu
				}
			} else {
				a, b, cc = implicitRow(nui, mu, lp, ln)
			}
			if viscous {
				a += da
				b += db
				cc += dc
			}
			p.ta[c][i-1], p.tb[c][i-1], p.tc[c][i-1] = a, b, cc
		}
	}
	// One batched solve across the five characteristic fields.
	if dissip4 {
		linalg.SolvePentadiag5(&p.te, &p.ta, &p.tb, &p.tc, &p.tf, &p.w, ni)
	} else {
		linalg.SolveTridiag5(&p.ta, &p.tb, &p.tc, &p.w, ni)
	}
	// Back-transform to conserved updates.
	for i := 1; i <= ni; i++ {
		var w linalg.Vec5
		for c := 0; c < euler.NC; c++ {
			w[c] = p.w[c][i-1]
		}
		p.r[i] = linalg.MulVec5(&p.eig[i].T, &w)
	}
	p.r[0] = linalg.Vec5{}
	p.r[n-1] = linalg.Vec5{}
}

// rhsLineFluxTuned is rhsLineFlux with one primitive conversion per
// point: the scalar kernel's Flux and SpectralRadius each convert the
// conserved state on their own; here PrimFromCons runs once and both
// evaluations share it through the euler *Prim entry points, whose
// expressions match the scalar path exactly — bitwise identical.
func rhsLineFluxTuned(ax euler.Axis, q []linalg.Vec5, flux []linalg.Vec5, sigma []float64, n int) {
	kx, ky, kz := ax.Unit()
	q, flux, sigma = q[:n], flux[:n], sigma[:n]
	for i := 0; i < n; i++ {
		p := euler.PrimFromCons(q[i])
		flux[i] = euler.FluxDirPrim(kx, ky, kz, q[i], p)
		sigma[i] = euler.SpectralRadiusPrim(ax, p)
	}
}

// rhsLineAccumTuned is rhsLineAccum with the geometry branch hoisted
// out of the point loop into two specialized loops, the interior-vs-
// boundary stencil test hoisted out of the component loop, and the
// point's five-vector rows pinned once per point. Identical per-element
// expressions in identical order — bitwise equal to the scalar form.
func rhsLineAccumTuned(q []linalg.Vec5, flux []linalg.Vec5, sigma []float64, r []linalg.Vec5,
	n int, h, dt, eps4, eps2b float64, g *axisGeom) {
	if n < 3 {
		return
	}
	q, flux, sigma, r = q[:n], flux[:n], sigma[:n], r[:n]
	if g == nil {
		nu := dt / (2 * h)
		ds := dt / h
		for i := 1; i <= n-2; i++ {
			rhsPointAccum(q, flux, r, i, n, nu, ds*sigma[i], eps4, eps2b)
		}
		return
	}
	for i := 1; i <= n-2; i++ {
		rhsPointAccum(q, flux, r, i, n, dt*g.inv2h[i], dt*g.invh[i]*sigma[i], eps4, eps2b)
	}
}

// rhsPointAccum adds one point's flux difference and dissipation to
// r[i], the shared inner body of the two rhsLineAccumTuned loops.
func rhsPointAccum(q, flux, r []linalg.Vec5, i, n int, nui, coeff, eps4, eps2b float64) {
	fm, fp := &flux[i-1], &flux[i+1]
	ri := &r[i]
	if i >= 2 && i <= n-3 {
		qm2, qm1, q0, qp1, qp2 := &q[i-2], &q[i-1], &q[i], &q[i+1], &q[i+2]
		e4 := eps4 * coeff
		for c := 0; c < euler.NC; c++ {
			// Fourth difference as a second difference of second
			// differences, exactly as the scalar kernel forms it.
			sm := (qm2[c] - qm1[c]) - (qm1[c] - q0[c])
			s0 := (qm1[c] - q0[c]) - (q0[c] - qp1[c])
			sp := (q0[c] - qp1[c]) - (qp1[c] - qp2[c])
			d4 := (sm - s0) - (s0 - sp)
			ri[c] += -nui*(fp[c]-fm[c]) - e4*d4
		}
		return
	}
	qm1, q0, qp1 := &q[i-1], &q[i], &q[i+1]
	e2 := eps2b * coeff
	for c := 0; c < euler.NC; c++ {
		d2 := (qm1[c] - q0[c]) - (q0[c] - qp1[c])
		ri[c] += -nui*(fp[c]-fm[c]) + e2*d2
	}
}
