package f3d

import (
	"fmt"
	"math"

	"repro/internal/cachesim"
	"repro/internal/euler"
	"repro/internal/linalg"
)

// This file holds the per-point and per-pencil numerical kernels shared
// by both solver variants. Both variants call exactly these functions
// with exactly the same operand values, so their results agree bitwise;
// the variants differ only in loop order, scratch-array shape and
// parallelization — the dimensions the paper's tuning works in.

// sigmaFromLambda extracts the spectral radius |θ|+a from a
// characteristic speed vector (θ, θ, θ, θ+a, θ−a).
func sigmaFromLambda(lambda *linalg.Vec5) float64 {
	s := math.Abs(lambda[3])
	if t := math.Abs(lambda[4]); t > s {
		s = t
	}
	return s
}

// implicitRow returns the tridiagonal row (a, b, c) of the factored
// implicit operator at one interior point:
//
//	(I + ν δ(λ·) − μ ∇Δ)  with  ν = dt/(2h), μ = εI·(dt/h)·σ
//
// lamPrev and lamNext are the characteristic speed at the neighboring
// points (their coefficients multiply the neighbor updates, which are
// zero at explicit boundaries, so passing any value for an off-end
// neighbor is harmless — the solver ignores a[0] and c[n−1]).
func implicitRow(nu, mu, lamPrev, lamNext float64) (a, b, c float64) {
	return -nu*lamPrev - mu, 1 + 2*mu, nu*lamNext - mu
}

// pencil holds one line of solution data through a zone plus the
// per-point eigensystem along it: the cache-sized working set of the
// tuned code (and one row of the plane-sized working set of the vector
// code).
type pencil struct {
	n   int                 // points along the line, including boundaries
	q   []linalg.Vec5       // conserved state
	r   []linalg.Vec5       // right-hand side / update
	eig []euler.Eigen       // eigensystem at interior points (index 1..n-2)
	w   [euler.NC][]float64 // characteristic variables, per component
	ta  [euler.NC][]float64 // tridiagonal sub-diagonal, per component
	tb  [euler.NC][]float64 // tridiagonal diagonal
	tc  [euler.NC][]float64 // tridiagonal super-diagonal
	// Outer bands for the pentadiagonal (implicit fourth-difference
	// dissipation) mode.
	te [euler.NC][]float64
	tf [euler.NC][]float64
}

// newPencil allocates a pencil for lines of up to nmax points. The
// band scratch is carved from one contiguous arena sized by
// cachesim.PencilFloats, family-major: the five lanes of each band
// family sit back to back, so the lane-batched solvers walk five
// streams that share cache lines instead of six scattered allocations.
func newPencil(nmax int) *pencil {
	p := &pencil{
		n:   nmax,
		q:   make([]linalg.Vec5, nmax),
		r:   make([]linalg.Vec5, nmax),
		eig: make([]euler.Eigen, nmax),
	}
	ar := cachesim.NewArena(cachesim.PencilFloats(nmax, euler.NC))
	for _, fam := range []*[euler.NC][]float64{&p.w, &p.ta, &p.tb, &p.tc, &p.te, &p.tf} {
		for c := 0; c < euler.NC; c++ {
			fam[c] = ar.F64(nmax)
		}
	}
	return p
}

// checkLine validates the line length against the pencil's capacity
// before any kernel writes scratch: a too-long line must fail here,
// not partway through the eigensystem pass with half the pencil
// already overwritten.
func (p *pencil) checkLine(n int) {
	if n > p.n {
		panic(fmt.Sprintf("f3d: line of %d points exceeds pencil capacity %d", n, p.n))
	}
}

// sweepLine applies one direction's factored implicit operator to one
// line of n points: interior updates r[1..n-2] are replaced by the
// solution of T (I + νδΛ − μ∇Δ) T⁻¹ Δ = r. q[0..n-1] must hold the
// time-level-n states along the line; boundary updates are zero
// (explicit boundary conditions).
//
// The five scalar tridiagonal systems (one per characteristic field)
// are built with implicitRow and solved with linalg.SolveTridiag.
//
// viscRe > 0 enables the thin-layer viscous augmentation of the
// L-direction factor (viscousImplicitRow); pass 0 for inviscid runs and
// for the J/K factors.
//
// g carries the metric arrays of a stretched (nonuniform) direction;
// nil means uniform spacing h and leaves the uniform expressions — and
// their bitwise behaviour — untouched.
func sweepLine(p *pencil, n int, ax euler.Axis, h, dt, epsI, viscRe float64, g *axisGeom) {
	sweepLineMode(p, n, ax, h, dt, epsI, viscRe, g, false)
}

// sweepLineMode is sweepLine with selectable implicit dissipation
// order: dissip4 switches from the tridiagonal (I − μ∇Δ) form to the
// pentadiagonal (I + ε·σ·(dt/h)·Δ⁴) form of the ARC3D implicit
// fourth-difference dissipation.
func sweepLineMode(p *pencil, n int, ax euler.Axis, h, dt, epsI, viscRe float64, g *axisGeom, dissip4 bool) {
	ni := n - 2 // interior unknowns
	if ni < 1 {
		return
	}
	p.checkLine(n)
	nu := dt / (2 * h)
	muScale := epsI * dt / h
	// Eigensystems and characteristic-variable RHS at interior points.
	for i := 1; i <= ni; i++ {
		p.eig[i] = euler.Eigensystem(ax, p.q[i])
		w := linalg.MulVec5(&p.eig[i].Tinv, &p.r[i])
		for c := 0; c < euler.NC; c++ {
			p.w[c][i-1] = w[c]
		}
	}
	// Band coefficients per characteristic field.
	viscous := viscRe > 0 && ax == euler.Z
	for c := 0; c < euler.NC; c++ {
		for i := 1; i <= ni; i++ {
			sig := sigmaFromLambda(&p.eig[i].Lambda)
			nui, mu := nu, muScale*sig
			if g != nil {
				nui = dt * g.inv2h[i]
				mu = epsI * dt * g.invh[i] * sig
			}
			lamPrev, lamNext := 0.0, 0.0
			if i > 1 {
				lamPrev = p.eig[i-1].Lambda[c]
			}
			if i < ni {
				lamNext = p.eig[i+1].Lambda[c]
			}
			var a, b, cc float64
			if dissip4 {
				// Convective part only; the dissipation enters as an
				// undivided fourth difference (+μ(1, −4, 6, −4, 1)),
				// degraded to the second-difference form at the first and
				// last interior rows where the stencil does not fit.
				a, b, cc = implicitRow(nui, 0, lamPrev, lamNext)
				if i >= 2 && i <= ni-1 {
					p.te[c][i-1] = mu
					p.tf[c][i-1] = mu
					a += -4 * mu
					b += 6 * mu
					cc += -4 * mu
				} else {
					p.te[c][i-1] = 0
					p.tf[c][i-1] = 0
					a += -mu
					b += 2 * mu
					cc += -mu
				}
			} else {
				a, b, cc = implicitRow(nui, mu, lamPrev, lamNext)
			}
			if viscous {
				var da, db, dc float64
				if g != nil {
					da, db, dc = viscousImplicitRowVar(dt, viscRe, p.q[i][0], g.invdm[i-1], g.invdm[i], g.invh[i])
				} else {
					da, db, dc = viscousImplicitRow(dt, h, viscRe, p.q[i][0])
				}
				a += da
				b += db
				cc += dc
			}
			p.ta[c][i-1], p.tb[c][i-1], p.tc[c][i-1] = a, b, cc
		}
		if dissip4 {
			linalg.SolvePentadiag(p.te[c][:ni], p.ta[c][:ni], p.tb[c][:ni], p.tc[c][:ni], p.tf[c][:ni], p.w[c][:ni])
		} else {
			linalg.SolveTridiag(p.ta[c][:ni], p.tb[c][:ni], p.tc[c][:ni], p.w[c][:ni])
		}
	}
	// Back-transform to conserved updates.
	for i := 1; i <= ni; i++ {
		var w linalg.Vec5
		for c := 0; c < euler.NC; c++ {
			w[c] = p.w[c][i-1]
		}
		p.r[i] = linalg.MulVec5(&p.eig[i].T, &w)
	}
	p.r[0] = linalg.Vec5{}
	p.r[n-1] = linalg.Vec5{}
}

// rhsLineFlux fills flux[i] = F(q[i]) and sigma[i] for one line.
func rhsLineFlux(ax euler.Axis, q []linalg.Vec5, flux []linalg.Vec5, sigma []float64, n int) {
	for i := 0; i < n; i++ {
		flux[i] = euler.Flux(ax, q[i])
		sigma[i] = euler.SpectralRadius(ax, q[i])
	}
}

// rhsLineAccum adds one direction's contribution to the right-hand side
// of a line of n points: the central flux difference plus scalar
// artificial dissipation (fourth difference in the interior, second
// difference at boundary-adjacent points). r[1..n-2] are updated;
// boundary entries are untouched.
//
//	r_i += −ν (F_{i+1} − F_{i−1}) + (dt/h)·σ_i · D_i(q)
//	D_i  =  −ε4 (q_{i−2} − 4q_{i−1} + 6q_i − 4q_{i+1} + q_{i+2})   (interior)
//	D_i  =  +ε2 (q_{i+1} − 2q_i + q_{i−1})                          (ends)
//
// g carries stretched-direction metrics; nil means uniform spacing h.
func rhsLineAccum(q []linalg.Vec5, flux []linalg.Vec5, sigma []float64, r []linalg.Vec5,
	n int, h, dt, eps4, eps2b float64, g *axisGeom) {
	nu := dt / (2 * h)
	ds := dt / h
	// The difference stencils are evaluated as nested first differences
	// so that they vanish *exactly* (not merely to rounding) on constant
	// data: a uniform freestream must be a bitwise steady state.
	for i := 1; i <= n-2; i++ {
		nui, coeff := nu, ds*sigma[i]
		if g != nil {
			nui = dt * g.inv2h[i]
			coeff = dt * g.invh[i] * sigma[i]
		}
		for c := 0; c < euler.NC; c++ {
			v := -nui * (flux[i+1][c] - flux[i-1][c])
			if i >= 2 && i <= n-3 {
				// Fourth difference as a second difference of second
				// differences.
				sm := (q[i-2][c] - q[i-1][c]) - (q[i-1][c] - q[i][c])
				s0 := (q[i-1][c] - q[i][c]) - (q[i][c] - q[i+1][c])
				sp := (q[i][c] - q[i+1][c]) - (q[i+1][c] - q[i+2][c])
				d4 := (sm - s0) - (s0 - sp)
				v -= eps4 * coeff * d4
			} else {
				d2 := (q[i-1][c] - q[i][c]) - (q[i][c] - q[i+1][c])
				v += eps2b * coeff * d2
			}
			r[i][c] += v
		}
	}
}

// Flop-count estimates per interior grid point, used for MFLOPS
// reporting. They are analytic operation counts of the kernels above
// (counted on the source, ±a few percent), not measurements.
const (
	// flopsRHSPerPoint covers three directions of flux evaluation,
	// spectral radii, central differences and dissipation.
	flopsRHSPerPoint = 3 * (22 + 12 + 34)
	// flopsSweepPerPoint covers one direction's eigensystem,
	// characteristic transforms, row assembly and tridiagonal solve.
	flopsSweepPerPoint = 150 + 2*45 + 5*13 + 8
	// flopsUpdatePerPoint is the conserved-variable update.
	flopsUpdatePerPoint = 5
)

// FlopsPerPoint returns the estimated floating-point operations per
// interior grid point per time step (RHS + three sweeps + update).
func FlopsPerPoint() float64 {
	return flopsRHSPerPoint + 3*flopsSweepPerPoint + flopsUpdatePerPoint
}
