package f3d

import (
	"bytes"
	"testing"

	"repro/internal/grid"
)

func TestCheckpointRoundTrip(t *testing.T) {
	cfg := DefaultConfig(grid.Scaled(grid.Paper1M(), 0.1))
	a := newCache(t, cfg, CacheOptions{})
	InitPulse(a, 0.03)
	for i := 0; i < 4; i++ {
		a.Step()
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, a, 4); err != nil {
		t.Fatal(err)
	}

	b := newCache(t, cfg, CacheOptions{})
	InitUniform(b)
	steps, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), b)
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 {
		t.Errorf("restored step count %d, want 4", steps)
	}
	if d := MaxPointwiseDiff(a, b); d != 0 {
		t.Fatalf("restored solution differs by %g", d)
	}
	// A restarted run continues exactly like the uninterrupted one.
	ra := a.Step()
	rb := b.Step()
	if ra.Residual != rb.Residual {
		t.Errorf("restart diverges: %.17g vs %.17g", ra.Residual, rb.Residual)
	}
}

func TestCheckpointCrossVariantRestart(t *testing.T) {
	// A checkpoint written by the cache solver restarts the vector
	// solver (the formats are layout-independent) — and the two then
	// step identically.
	cfg := testConfig(10, 9, 8)
	a := newCache(t, cfg, CacheOptions{})
	InitPulse(a, 0.02)
	a.Step()
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, a, 1); err != nil {
		t.Fatal(err)
	}
	v := newVector(t, cfg)
	InitUniform(v)
	if _, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()), v); err != nil {
		t.Fatal(err)
	}
	ra := a.Step()
	rv := v.Step()
	if ra.Residual != rv.Residual {
		t.Errorf("cross-variant restart diverges")
	}
}

func TestCheckpointErrors(t *testing.T) {
	cfg := testConfig(8, 8, 8)
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, s, 7); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Wrong magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := LoadCheckpoint(bytes.NewReader(bad), s); err == nil {
		t.Error("corrupt magic accepted")
	}
	// Flipped payload bit → CRC failure.
	bad = append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0x01
	if _, err := LoadCheckpoint(bytes.NewReader(bad), s); err == nil {
		t.Error("corrupt payload accepted")
	}
	// Truncated file.
	if _, err := LoadCheckpoint(bytes.NewReader(good[:len(good)-10]), s); err == nil {
		t.Error("truncated checkpoint accepted")
	}
	// Dimension mismatch.
	other := newCache(t, testConfig(9, 8, 8), CacheOptions{})
	if _, err := LoadCheckpoint(bytes.NewReader(good), other); err == nil {
		t.Error("dims mismatch accepted")
	}
	// Zone-count mismatch.
	multi := newCache(t, DefaultConfig(grid.Scaled(grid.Paper1M(), 0.1)), CacheOptions{})
	if _, err := LoadCheckpoint(bytes.NewReader(good), multi); err == nil {
		t.Error("zone count mismatch accepted")
	}
}
