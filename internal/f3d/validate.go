package f3d

import (
	"fmt"
	"strings"

	"repro/internal/parloop"
)

// ValidationReport is the outcome of the §6-style validation ladder:
// the same problem advanced by every code shape, with the invariants
// the paper's project enforced ("several stages ... ranging from quick
// and dirty tests involving only a few time steps, to more elaborate
// tests performed on fully converged solutions").
type ValidationReport struct {
	Steps   int
	Workers int
	// VectorVsCache is the max pointwise difference between the
	// vector-style and cache-tuned variants (must be exactly 0).
	VectorVsCache float64
	// SerialVsParallel is the max pointwise difference between the
	// serial and parallel cache solvers (must be exactly 0).
	SerialVsParallel float64
	// MergedVsPerPhase compares the two parallel region structures
	// (must be exactly 0).
	MergedVsPerPhase float64
	// ResidualHistoryDiff is the largest residual-history discrepancy
	// across all of the above (must be exactly 0).
	ResidualHistoryDiff float64
}

// OK reports whether every invariant held exactly.
func (r ValidationReport) OK() bool {
	return r.VectorVsCache == 0 && r.SerialVsParallel == 0 &&
		r.MergedVsPerPhase == 0 && r.ResidualHistoryDiff == 0
}

// String formats the report for humans.
func (r ValidationReport) String() string {
	var b strings.Builder
	status := func(v float64) string {
		if v == 0 {
			return "OK (bitwise)"
		}
		return fmt.Sprintf("FAIL (max diff %g)", v)
	}
	fmt.Fprintf(&b, "validation over %d steps, %d workers:\n", r.Steps, r.Workers)
	fmt.Fprintf(&b, "  vector vs cache variant:    %s\n", status(r.VectorVsCache))
	fmt.Fprintf(&b, "  serial vs parallel:         %s\n", status(r.SerialVsParallel))
	fmt.Fprintf(&b, "  merged vs per-phase regions: %s\n", status(r.MergedVsPerPhase))
	fmt.Fprintf(&b, "  residual histories:         %s\n", status(r.ResidualHistoryDiff))
	return b.String()
}

// CrossValidate runs the same pulse problem through the vector variant,
// the serial cache variant, the parallel cache variant (per-phase and
// merged regions) and compares everything. It is the repository's
// automated stand-in for the paper's validation-and-verification
// exercise, usable from tests and from `cmd/f3d -validate`.
func CrossValidate(cfg Config, steps, workers int) (ValidationReport, error) {
	rep := ValidationReport{Steps: steps, Workers: workers}
	if steps < 1 {
		return rep, fmt.Errorf("f3d: CrossValidate needs steps >= 1, got %d", steps)
	}
	if workers < 2 {
		return rep, fmt.Errorf("f3d: CrossValidate needs workers >= 2, got %d", workers)
	}

	vec, err := NewVectorSolver(cfg)
	if err != nil {
		return rep, err
	}
	serial, err := NewCacheSolver(cfg, CacheOptions{})
	if err != nil {
		return rep, err
	}
	defer serial.Close()
	team := parloop.NewTeam(workers)
	defer team.Close()
	par, err := NewCacheSolver(cfg, CacheOptions{Team: team, Phases: AllPhases()})
	if err != nil {
		return rep, err
	}
	defer par.Close()
	merged, err := NewCacheSolver(cfg, CacheOptions{Team: team, Phases: AllPhases(), Merged: true})
	if err != nil {
		return rep, err
	}
	defer merged.Close()

	solvers := []Solver{vec, serial, par, merged}
	for _, s := range solvers {
		InitPulse(s, 0.02)
	}
	hist := make([][]float64, len(solvers))
	for i := 0; i < steps; i++ {
		for si, s := range solvers {
			st := s.Step()
			hist[si] = append(hist[si], st.Residual)
		}
	}
	rep.VectorVsCache = MaxPointwiseDiff(vec, serial)
	rep.SerialVsParallel = MaxPointwiseDiff(serial, par)
	rep.MergedVsPerPhase = MaxPointwiseDiff(par, merged)
	for si := 1; si < len(solvers); si++ {
		for i := 0; i < steps; i++ {
			d := hist[si][i] - hist[0][i]
			if d < 0 {
				d = -d
			}
			if d > rep.ResidualHistoryDiff {
				rep.ResidualHistoryDiff = d
			}
		}
	}
	return rep, nil
}
