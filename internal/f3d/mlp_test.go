package f3d

import (
	"testing"

	"repro/internal/grid"
	"repro/internal/parloop"
)

// newZoneTeams builds one team per zone and registers cleanup.
func newZoneTeams(t *testing.T, zones, workers int) []*parloop.Team {
	t.Helper()
	teams := make([]*parloop.Team, zones)
	for i := range teams {
		teams[i] = parloop.NewTeam(workers)
		t.Cleanup(teams[i].Close)
	}
	return teams
}

func TestMLPMatchesSequentialBitwise(t *testing.T) {
	// Zone-level (MLP) execution must give exactly the sequential
	// answer: zones are independent within a step once interface data
	// is captured.
	c := grid.Scaled(grid.Paper1M(), 0.12)
	cfg := DefaultConfig(c)
	ref := newCache(t, cfg, CacheOptions{})
	InitPulse(ref, 0.02)
	refStats := make([]StepStats, 5)
	for i := range refStats {
		refStats[i] = ref.Step()
	}
	for _, innerWorkers := range []int{1, 2} {
		for _, merged := range []bool{false, true} {
			mlp := newCache(t, cfg, CacheOptions{
				ZoneTeams: newZoneTeams(t, len(c.Zones), innerWorkers),
				Phases:    AllPhases(),
				Merged:    merged,
			})
			InitPulse(mlp, 0.02)
			for i := range refStats {
				st := mlp.Step()
				if st.Residual != refStats[i].Residual {
					t.Errorf("inner=%d merged=%v step %d: residual %.17g != %.17g",
						innerWorkers, merged, i, st.Residual, refStats[i].Residual)
				}
				if st.MaxDelta != refStats[i].MaxDelta {
					t.Errorf("inner=%d merged=%v step %d: maxDelta mismatch", innerWorkers, merged, i)
				}
			}
			if d := MaxPointwiseDiff(ref, mlp); d != 0 {
				t.Errorf("inner=%d merged=%v: MLP solution differs by %g", innerWorkers, merged, d)
			}
		}
	}
}

func TestMLPWithZonalInterfaces(t *testing.T) {
	// Zones coupled by interfaces remain independent within a step (the
	// exchange is captured up front), so MLP must still match.
	c, ifaces := SplitAlongJ("z", 21, 9, 8, 10)
	cfg := DefaultConfig(c)
	cfg.Interfaces = ifaces
	ref := newCache(t, cfg, CacheOptions{})
	mlp := newCache(t, cfg, CacheOptions{
		ZoneTeams: newZoneTeams(t, 2, 2),
		Phases:    AllPhases(),
	})
	initPhysicalPulse(ref, []int{0, 10}, 21, 0.03)
	initPhysicalPulse(mlp, []int{0, 10}, 21, 0.03)
	for i := 0; i < 6; i++ {
		rr := ref.Step()
		rm := mlp.Step()
		if rr.Residual != rm.Residual {
			t.Fatalf("step %d: residual mismatch with interfaces", i)
		}
	}
	if d := MaxPointwiseDiff(ref, mlp); d != 0 {
		t.Fatalf("MLP zonal solution differs by %g", d)
	}
}

func TestMLPTeamCountValidation(t *testing.T) {
	c := grid.Scaled(grid.Paper1M(), 0.12)
	cfg := DefaultConfig(c)
	teams := newZoneTeams(t, 2, 1) // 2 teams for 3 zones
	if _, err := NewCacheSolver(cfg, CacheOptions{ZoneTeams: teams}); err == nil {
		t.Error("mismatched ZoneTeams length accepted")
	}
}

func TestMLPSyncStructure(t *testing.T) {
	// Zone-level sections add one outer sync event per step on top of
	// the per-zone loop-level regions.
	c := grid.Scaled(grid.Paper1M(), 0.12)
	cfg := DefaultConfig(c)
	teams := newZoneTeams(t, 3, 2)
	s := newCache(t, cfg, CacheOptions{ZoneTeams: teams, Phases: AllPhases()})
	InitUniform(s)
	for _, tm := range teams {
		tm.ResetSyncEvents()
	}
	s.Step()
	for zi, tm := range teams {
		// Per zone: RHS region (+1 barrier) + sweepJK + sweepL = 4.
		if got := tm.SyncEvents(); got != 4 {
			t.Errorf("zone %d team recorded %d sync events, want 4", zi, got)
		}
	}
}
