package f3d

import (
	"fmt"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
)

// Line gather/scatter between zone fields and pencil buffers. For the
// J axis the gather is unit-stride (in the PointMajor layout); for K
// and L it is the strided "batching up a 1-dimensional buffer" of the
// paper's Example 3 — a pattern whose contention behaviour on paged
// NUMA systems the cachesim package analyzes (Example 4c).

// lineAxis maps a sweep axis to the zone dimension it runs along.
func lineLen(z *grid.Zone, ax euler.Axis) int {
	switch ax {
	case euler.X:
		return z.JMax
	case euler.Y:
		return z.KMax
	case euler.Z:
		return z.LMax
	default:
		panic(fmt.Sprintf("f3d: bad axis %d", int(ax)))
	}
}

// lineIndex returns the (j, k, l) of point i along a line on axis ax
// with fixed cross indices (a, b): for X the line is (i, a, b), for Y
// it is (a, i, b), for Z it is (a, b, i).
func lineIndex(ax euler.Axis, i, a, b int) (j, k, l int) {
	switch ax {
	case euler.X:
		return i, a, b
	case euler.Y:
		return a, i, b
	case euler.Z:
		return a, b, i
	default:
		panic(fmt.Sprintf("f3d: bad axis %d", int(ax)))
	}
}

// loadLine gathers the n points of a line into dst.
func loadLine(f *grid.StateField, ax euler.Axis, a, b int, dst []linalg.Vec5, n int) {
	for i := 0; i < n; i++ {
		j, k, l := lineIndex(ax, i, a, b)
		f.Point(j, k, l, dst[i][:])
	}
}

// storeLineInterior scatters src[1..n-2] back to the field, leaving the
// line's boundary points untouched.
func storeLineInterior(f *grid.StateField, ax euler.Axis, a, b int, src []linalg.Vec5, n int) {
	for i := 1; i <= n-2; i++ {
		j, k, l := lineIndex(ax, i, a, b)
		f.SetPoint(j, k, l, src[i][:])
	}
}

// zeroLine clears the full line in the pencil buffer.
func zeroLine(dst []linalg.Vec5, n int) {
	for i := 0; i < n; i++ {
		dst[i] = linalg.Vec5{}
	}
}

// crossDims returns the two cross-line dimensions (outer, inner) for a
// sweep along ax: the loops that enumerate the lines. The inner
// dimension is chosen to be J whenever the sweep is not along J, so
// the innermost gather stride is as small as the layout allows; the
// outer dimension is what the parallel region divides.
//
//	sweep J → lines indexed by (k inner, l outer)
//	sweep K → lines indexed by (j inner, l outer)
//	sweep L → lines indexed by (j inner, k outer)
func crossDims(z *grid.Zone, ax euler.Axis) (outer, inner int) {
	switch ax {
	case euler.X:
		return z.LMax, z.KMax
	case euler.Y:
		return z.LMax, z.JMax
	case euler.Z:
		return z.KMax, z.JMax
	default:
		panic(fmt.Sprintf("f3d: bad axis %d", int(ax)))
	}
}

// crossIndex maps (outer, inner) cross indices to the (a, b) arguments
// of lineIndex for the sweep axis.
func crossIndex(ax euler.Axis, outer, inner int) (a, b int) {
	switch ax {
	case euler.X:
		return inner, outer // (k, l)
	case euler.Y:
		return inner, outer // (j, l)
	case euler.Z:
		return inner, outer // (j, k)
	default:
		panic(fmt.Sprintf("f3d: bad axis %d", int(ax)))
	}
}
