package f3d

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/parloop"
)

// fillLine populates a pencil's q and r with a smoothly varying
// near-freestream state so the eigensystems are well conditioned.
func fillLine(p *pencil, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		prim := DefaultConfig(grid.Single(4, 4, 4)).Freestream
		prim.Rho *= 1 + 0.05*rng.Float64()
		prim.U += 0.1 * rng.Float64()
		prim.V += 0.05 * rng.Float64()
		prim.W += 0.05 * rng.Float64()
		prim.P *= 1 + 0.05*rng.Float64()
		p.q[i] = prim.Cons()
		for c := 0; c < euler.NC; c++ {
			p.r[i][c] = 1e-3 * (rng.Float64() - 0.5)
		}
	}
}

func copyPencilLine(dst, src *pencil, n int) {
	copy(dst.q[:n], src.q[:n])
	copy(dst.r[:n], src.r[:n])
}

func vecsBitEqual(t *testing.T, name string, got, want []linalg.Vec5, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		for c := 0; c < euler.NC; c++ {
			if math.Float64bits(got[i][c]) != math.Float64bits(want[i][c]) {
				t.Fatalf("%s: bit mismatch at point %d component %d: %v vs %v",
					name, i, c, got[i][c], want[i][c])
			}
		}
	}
}

// TestSweepLineTunedBitwise drives the scalar and tuned sweep kernels
// over every mode combination — axis, implicit dissipation order,
// viscous augmentation, uniform and stretched metrics — and requires
// bit-identical updates, including the degenerate line lengths where
// the pentadiagonal stencil never fits.
func TestSweepLineTunedBitwise(t *testing.T) {
	x := grid.StretchCoords(40, 1.5)
	for _, n := range []int{3, 4, 5, 6, 9, 33} {
		g := newAxisGeom(x[:n])
		for _, tc := range []struct {
			name    string
			ax      euler.Axis
			viscRe  float64
			g       *axisGeom
			dissip4 bool
		}{
			{"x-uniform", euler.X, 0, nil, false},
			{"x-uniform-dissip4", euler.X, 0, nil, true},
			{"y-stretched", euler.Y, 0, g, false},
			{"z-viscous", euler.Z, 1200, nil, false},
			{"z-viscous-stretched", euler.Z, 1200, g, false},
			{"z-viscous-dissip4", euler.Z, 1200, nil, true},
			{"z-viscous-stretched-dissip4", euler.Z, 1200, g, true},
		} {
			ps := newPencil(n)
			pt := newPencil(n)
			fillLine(ps, n, int64(n)*100+int64(len(tc.name)))
			copyPencilLine(pt, ps, n)
			sweepLineMode(ps, n, tc.ax, 0.013, 0.004, 0.02, tc.viscRe, tc.g, tc.dissip4)
			sweepLineModeTuned(pt, n, tc.ax, 0.013, 0.004, 0.02, tc.viscRe, tc.g, tc.dissip4)
			vecsBitEqual(t, tc.name, pt.r, ps.r, n)
		}
	}
}

// TestRHSLineAccumTunedBitwise pins the tuned RHS accumulation to the
// scalar kernel bit for bit, on uniform and stretched metrics and on
// lines short enough that only the boundary stencil fires.
func TestRHSLineAccumTunedBitwise(t *testing.T) {
	x := grid.StretchCoords(40, 1.3)
	for _, n := range []int{3, 4, 5, 6, 7, 33} {
		for _, withGeom := range []bool{false, true} {
			var g *axisGeom
			name := "uniform"
			if withGeom {
				g = newAxisGeom(x[:n])
				name = "stretched"
			}
			p := newPencil(n)
			fillLine(p, n, int64(n))
			flux := make([]linalg.Vec5, n)
			sigma := make([]float64, n)
			rhsLineFlux(euler.X, p.q, flux, sigma, n)
			rs := make([]linalg.Vec5, n)
			rt := make([]linalg.Vec5, n)
			copy(rs, p.r[:n])
			copy(rt, p.r[:n])
			rhsLineAccum(p.q, flux, sigma, rs, n, 0.02, 0.004, 0.01, 0.25, g)
			rhsLineAccumTuned(p.q, flux, sigma, rt, n, 0.02, 0.004, 0.01, 0.25, g)
			vecsBitEqual(t, name, rt, rs, n)
		}
	}
}

// TestPencilCapacityValidatedUpFront is the scratch-capacity companion
// of the linalg validation fix: a line longer than the pencil must be
// rejected before the eigensystem pass writes anything.
func TestPencilCapacityValidatedUpFront(t *testing.T) {
	for name, sweep := range map[string]func(p *pencil, n int, ax euler.Axis, h, dt, epsI, viscRe float64, g *axisGeom, dissip4 bool){
		"scalar": sweepLineMode,
		"tuned":  sweepLineModeTuned,
	} {
		p := newPencil(4)
		fillLine(p, 4, 7)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: oversized line must panic", name)
				}
				for c := 0; c < euler.NC; c++ {
					for i := 0; i < 4; i++ {
						if p.w[c][i] != 0 || p.ta[c][i] != 0 {
							t.Fatalf("%s: scratch written before validation", name)
						}
					}
				}
			}()
			sweep(p, 10, euler.X, 0.01, 0.005, 0.02, 0, nil, false)
		}()
	}
}

// TestCacheSolverTunedKernelsBitwise runs full solves — serial,
// team-parallel, merged regions, stretched viscous, fourth-order
// implicit dissipation — with TunedKernels and requires the residual
// history and every conserved value to match the scalar-kernel solver
// bit for bit.
func TestCacheSolverTunedKernelsBitwise(t *testing.T) {
	team := parloop.NewTeam(4)
	defer team.Close()
	cases := []struct {
		name string
		cfg  Config
		opts CacheOptions // Kernels is overridden per solver
	}{
		{"serial", testConfig(9, 8, 7), CacheOptions{}},
		{"team", testConfig(9, 8, 7), CacheOptions{Team: team, Phases: AllPhases()}},
		{"merged", testConfig(9, 8, 7), CacheOptions{Team: team, Phases: AllPhases(), Merged: true}},
		{"stretched", stretchedConfig(), CacheOptions{}},
	}
	viscous := testConfig(8, 7, 9)
	viscous.Viscous = true
	viscous.Re = 800
	cases = append(cases, struct {
		name string
		cfg  Config
		opts CacheOptions
	}{"viscous", viscous, CacheOptions{}})
	dissip4 := testConfig(9, 8, 7)
	dissip4.ImplicitDissip4 = true
	cases = append(cases, struct {
		name string
		cfg  Config
		opts CacheOptions
	}{"dissip4", dissip4, CacheOptions{}})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			optsScalar := tc.opts
			optsScalar.Kernels = ScalarKernels
			optsTuned := tc.opts
			optsTuned.Kernels = TunedKernels
			ref := newCache(t, tc.cfg, optsScalar)
			tun := newCache(t, tc.cfg, optsTuned)
			InitPulse(ref, 0.02)
			InitPulse(tun, 0.02)
			for step := 0; step < 4; step++ {
				sr := ref.Step()
				st := tun.Step()
				if math.Float64bits(sr.Residual) != math.Float64bits(st.Residual) {
					t.Fatalf("step %d: residual diverged: %v vs %v", step, st.Residual, sr.Residual)
				}
				if math.Float64bits(sr.MaxDelta) != math.Float64bits(st.MaxDelta) {
					t.Fatalf("step %d: max delta diverged: %v vs %v", step, st.MaxDelta, sr.MaxDelta)
				}
			}
			zr, zt := ref.Zones()[0], tun.Zones()[0]
			z := zr.Zone
			var br, bt [euler.NC]float64
			for l := 0; l < z.LMax; l++ {
				for k := 0; k < z.KMax; k++ {
					for j := 0; j < z.JMax; j++ {
						zr.Q.Point(j, k, l, br[:])
						zt.Q.Point(j, k, l, bt[:])
						for c := 0; c < euler.NC; c++ {
							if math.Float64bits(br[c]) != math.Float64bits(bt[c]) {
								t.Fatalf("state diverged at (%d,%d,%d) component %d: %v vs %v",
									j, k, l, c, bt[c], br[c])
							}
						}
					}
				}
			}
		})
	}
}
