package f3d

import (
	"fmt"
	"sync"

	"repro/internal/sched"
)

// Job adapts a CacheSolver run to the sched.Job interface so F3D steps
// can be space-shared with other work by the scheduler daemon. The
// solver runs on the granted team and checkpoints once per time step,
// which is where grant resizes (grow as the queue drains, shrink to
// admit) and cancellation take effect — between parallel regions, as
// parloop.Team.Resize requires.
type Job struct {
	name   string
	cfg    Config
	steps  int
	pulse  float64
	hook   func(step int) error
	shape  *ShapeCfg
	prefix string

	mu   sync.Mutex
	hist History
}

// NewJob builds a scheduler job that advances a fresh solver for the
// given number of time steps from a freestream + pulse initial state
// (pulse 0 means uniform flow).
func NewJob(name string, cfg Config, steps int, pulse float64) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if steps < 1 {
		return nil, fmt.Errorf("f3d: job needs steps >= 1, got %d", steps)
	}
	return &Job{name: name, cfg: cfg, steps: steps, pulse: pulse}, nil
}

// WithStepHook installs a callback invoked after each time step's
// checkpoint, before the solver advances. A non-nil return aborts the
// run with that error. Fault-injection harnesses use this to fail,
// hang or stall a real solver job at a chosen step; it must not be
// called once the job is submitted.
func (j *Job) WithStepHook(hook func(step int) error) *Job {
	j.hook = hook
	return j
}

// WithShape runs the job's solver under the given step shape instead
// of the default AllPhases structure: the application half of the
// auto-parallelization pipeline, where a plan produced from run N's
// trace reconfigures run N+1. The returned ShapeCfg may be retargeted
// between steps while the job runs. Must not be called once the job is
// submitted.
func (j *Job) WithShape(sh StepShape) *Job {
	j.shape = NewShapeCfg(sh)
	return j
}

// Shape returns the job's shape seam, or nil when the job runs the
// default structure.
func (j *Job) Shape() *ShapeCfg { return j.shape }

// WithPhaseTrace labels the solver's phases "<prefix>/<phase>" on the
// granted team's tracer, so a traced run yields per-phase loop
// evidence for the planner. Must not be called once the job is
// submitted.
func (j *Job) WithPhaseTrace(prefix string) *Job {
	j.prefix = prefix
	return j
}

// Name implements sched.Job.
func (j *Job) Name() string { return j.name }

// Parallelism implements sched.Job: the maximum zone dimension M, the
// unit count of the solver's dominant parallelized loops. The paper
// (§5) locates this job's useful processor plateaus at roughly M/5,
// M/4, M/3, M/2 and M — exactly the grant sizes the scheduler will
// consider.
func (j *Job) Parallelism() int { return j.cfg.Case.MaxDim() }

// Run implements sched.Job.
func (j *Job) Run(g *sched.Grant) error {
	opts := CacheOptions{Team: g.Team(), Phases: AllPhases()}
	if j.shape != nil {
		opts.Shape = j.shape
	}
	if j.prefix != "" {
		opts.PhaseTrace = j.prefix
	}
	s, err := NewCacheSolver(j.cfg, opts)
	if err != nil {
		return err
	}
	defer s.Close()
	if j.pulse != 0 {
		InitPulse(s, j.pulse)
	} else {
		InitUniform(s)
	}
	for i := 0; i < j.steps; i++ {
		if err := g.Checkpoint(); err != nil {
			return err
		}
		if j.hook != nil {
			if err := j.hook(i); err != nil {
				return err
			}
		}
		st := s.Step()
		j.mu.Lock()
		j.hist.Residuals = append(j.hist.Residuals, st.Residual)
		j.hist.Flops += st.Flops
		j.mu.Unlock()
	}
	return nil
}

// History returns a copy of the residual history recorded so far. It
// is safe to call while the job is running.
func (j *Job) History() History {
	j.mu.Lock()
	defer j.mu.Unlock()
	h := j.hist
	h.Residuals = append([]float64(nil), j.hist.Residuals...)
	return h
}
