package f3d

import (
	"fmt"
	"math"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/parloop"
	"repro/internal/profile"
)

// ParallelPhases selects which phases of the time step run inside
// parallel regions — the knob behind the paper's incremental
// parallelization workflow ("parallelize them one (or a few) at a
// time", §4). Phases left serial still execute, just on the calling
// goroutine.
type ParallelPhases struct {
	// RHS parallelizes the explicit right-hand-side passes.
	RHS bool
	// SweepJK parallelizes the J and K implicit sweeps (both are
	// partitioned over L, so they merge into one region with no internal
	// barrier — the paper's Example 2).
	SweepJK bool
	// SweepL parallelizes the L implicit sweep and the solution update.
	SweepL bool
	// BC parallelizes the boundary-condition routines. The paper leaves
	// these serial because their loops are too cheap to amortize a
	// synchronization (§3); the default follows suit.
	BC bool
}

// AllPhases returns the production setting: everything except boundary
// conditions parallel.
func AllPhases() ParallelPhases {
	return ParallelPhases{RHS: true, SweepJK: true, SweepL: true, BC: false}
}

// CacheOptions configures a CacheSolver.
type CacheOptions struct {
	// Team executes the parallel regions. nil runs everything serially
	// (a private one-worker team).
	Team *parloop.Team
	// Phases selects which phases are parallel. The zero value is fully
	// serial; use AllPhases() for the production setting.
	Phases ParallelPhases
	// Merged runs each zone's whole time step inside a single parallel
	// region with barriers between phases (the paper's Example 3:
	// parallelize the parent subroutine), instead of one fork-join per
	// phase. Results are identical; only synchronization structure
	// changes.
	Merged bool
	// ZoneTeams enables multi-level parallelism (the MLP style of the
	// paper's §8 related work, Taft's OVERFLOW-MLP): zones advance
	// concurrently, each on its own team running the loop-level regions.
	// Must have one team per zone; Team is ignored when set. Zones are
	// independent within a step (interface data is captured up front),
	// so results remain bitwise identical to the serial ordering.
	ZoneTeams []*parloop.Team
	// Profiler, when set, is charged the wall-clock time of every phase
	// (per zone), keyed "zone/phase" — the prof-style measurement the
	// paper's incremental workflow starts from. Not supported together
	// with ZoneTeams (phases of different zones overlap in time).
	Profiler *profile.Profiler
	// Kernels selects the inner-loop kernel implementations: the scalar
	// reference forms (the zero value) or the tuned batched/unrolled
	// forms. The tuned kernels restructure loops without changing any
	// per-element operation order, so results are bitwise identical —
	// internal/check's matrix verifies the equivalence on every build.
	Kernels KernelImpl
	// Shape, when set, overrides Phases and Merged with an atomically
	// reconfigurable StepShape: the solver loads it once per Step, so a
	// plan produced from one run (or mid-run, between steps) applies at
	// the next step boundary — the executor seam of the
	// auto-parallelization pipeline (internal/autopar/pipeline).
	Shape *ShapeCfg
	// PhaseTrace, when non-empty, relabels the team's tracer around
	// each phase as "<PhaseTrace>/<phase>", so a traced run ranks the
	// step's phases as separate loops — the per-loop evidence the
	// pipeline plans from. The caller's label is restored after each
	// step. Not supported together with ZoneTeams (phases of different
	// zones overlap).
	PhaseTrace string
	// BoundaryHook, when set, is called once per zone per step inside
	// the boundary phase — after the zone's boundary conditions and
	// local interface planes are applied, before its right-hand side.
	// It runs on a single goroutine and must not open regions on the
	// zone's team (with ZoneTeams, hooks of different zones run
	// concurrently).
	// The cluster shard engine uses it to write boundary planes received
	// from zones living on other workers (BoundaryPlane.Apply), which
	// lands remote data at exactly the point applyInterfacesTo lands
	// local data, keeping the distributed step bitwise identical to the
	// single-node one.
	BoundaryHook func(zone int)
}

// cacheScratch is one worker's private working set: a pencil plus flux
// and spectral-radius line buffers. Its size is proportional to the
// largest zone dimension — the paper's §4 resizing of scratch arrays
// "to hold just a single row or column of a single plane of data".
type cacheScratch struct {
	p        *pencil
	kern     *kernelSet
	flux     []linalg.Vec5
	sigma    []float64
	maxDelta float64
}

func newCacheScratch(nmax int, kern *kernelSet) *cacheScratch {
	return &cacheScratch{
		p:     newPencil(nmax),
		kern:  kern,
		flux:  make([]linalg.Vec5, nmax),
		sigma: make([]float64, nmax),
	}
}

// CacheSolver is the RISC-tuned variant of the solver: point-major
// storage, pencil-sized scratch, unit-stride inner loops, and
// loop-level parallelism over the outer dimensions via a parloop.Team.
type CacheSolver struct {
	cfg       Config
	zones     []*ZoneState
	team      *parloop.Team
	ownedTeam bool
	opts      CacheOptions
	kern      *kernelSet
	scratch   []*cacheScratch

	// Multi-level parallelism (opts.ZoneTeams): the outer team runs one
	// section per zone; each zone has its own loop-level team and
	// scratch set.
	outer       *parloop.Team
	zoneScratch [][]*cacheScratch

	// ifbufs holds the zonal-interface exchange buffers (nil when the
	// case has no interfaces).
	ifbufs []ifaceBuffer

	// zoneRes records the last step's per-zone residual parts, so a
	// cluster coordinator can reassemble the global residual in zone
	// order bitwise (ZoneResiduals).
	zoneRes []ZoneResidual

	// nmax is the largest zone dimension, the scratch sizing bound.
	nmax int

	// curShape is the step shape loaded at Step entry, held constant
	// for the whole step so a concurrent ShapeCfg.Store cannot tear a
	// step across two shapes.
	curShape StepShape

	steps int
}

// NewCacheSolver builds the cache-tuned solver for cfg.
func NewCacheSolver(cfg Config, opts CacheOptions) (*CacheSolver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &CacheSolver{cfg: cfg, opts: opts, team: opts.Team, kern: kernelsFor(opts.Kernels)}
	if len(opts.ZoneTeams) > 0 && len(opts.ZoneTeams) != len(cfg.Case.Zones) {
		return nil, fmt.Errorf("f3d: ZoneTeams has %d teams for %d zones",
			len(opts.ZoneTeams), len(cfg.Case.Zones))
	}
	if opts.Profiler != nil && len(opts.ZoneTeams) > 0 {
		return nil, fmt.Errorf("f3d: Profiler is not supported with ZoneTeams (phases overlap)")
	}
	if opts.PhaseTrace != "" && len(opts.ZoneTeams) > 0 {
		return nil, fmt.Errorf("f3d: PhaseTrace is not supported with ZoneTeams (phases overlap)")
	}
	if s.team == nil {
		s.team = parloop.NewTeam(1)
		s.ownedTeam = true
	}
	nmax := 0
	for i := range cfg.Case.Zones {
		z := &cfg.Case.Zones[i]
		s.zones = append(s.zones, newZoneState(z, grid.PointMajor))
		if d := z.MaxDim(); d > nmax {
			nmax = d
		}
	}
	s.nmax = nmax
	s.scratch = make([]*cacheScratch, s.team.Workers())
	for i := range s.scratch {
		s.scratch[i] = newCacheScratch(nmax, s.kern)
	}
	if len(opts.ZoneTeams) > 0 {
		s.outer = parloop.NewTeam(len(cfg.Case.Zones))
		s.zoneScratch = make([][]*cacheScratch, len(opts.ZoneTeams))
		for zi, tm := range opts.ZoneTeams {
			set := make([]*cacheScratch, tm.Workers())
			zmax := cfg.Case.Zones[zi].MaxDim()
			for i := range set {
				set[i] = newCacheScratch(zmax, s.kern)
			}
			s.zoneScratch[zi] = set
		}
	}
	if len(cfg.Interfaces) > 0 {
		s.ifbufs = newIfaceBuffers(cfg.Case, cfg.Interfaces)
	}
	return s, nil
}

// Close releases the solver's private teams (the default one-worker
// team when no Team was supplied, and the zone-level outer team of the
// MLP mode). Caller-supplied teams are left open.
func (s *CacheSolver) Close() {
	if s.ownedTeam {
		s.team.Close()
	}
	if s.outer != nil {
		s.outer.Close()
	}
}

// Zones implements Solver.
func (s *CacheSolver) Zones() []*ZoneState { return s.zones }

// Config implements Solver.
func (s *CacheSolver) Config() *Config { return &s.cfg }

// Team returns the team executing the parallel regions.
func (s *CacheSolver) Team() *parloop.Team { return s.team }

// Steps returns the number of time steps taken.
func (s *CacheSolver) Steps() int { return s.steps }

// ensureScratch grows the per-worker scratch set to the team size. A
// scheduler may grow the team between steps (parloop.Team.Resize); the
// extra workers need private pencils before the next region opens.
// Shrunk teams simply leave the tail of the scratch set idle.
func (s *CacheSolver) ensureScratch() {
	for len(s.scratch) < s.team.Workers() {
		s.scratch = append(s.scratch, newCacheScratch(s.nmax, s.kern))
	}
}

// ZoneResidual is one zone's share of a step's residual: the
// serial-order sum of squares over its interior points and the point
// count. Summing shares across zones in case order and taking
// sqrt(sum/points) reproduces StepStats.Residual bitwise — the fact
// the cluster engine relies on to reassemble a sharded solve's
// residual history exactly.
type ZoneResidual struct {
	SumSq  float64
	Points int
}

// ZoneResiduals returns the per-zone residual parts of the most recent
// Step, indexed like Zones(). It returns nil before the first step;
// the slice is reused by the next Step.
func (s *CacheSolver) ZoneResiduals() []ZoneResidual { return s.zoneRes }

// shape resolves the effective step shape: the reconfigurable Shape
// seam when set, otherwise the static Phases/Merged translation.
func (s *CacheSolver) shape() StepShape {
	if s.opts.Shape != nil {
		return s.opts.Shape.Load()
	}
	return ShapeFromPhases(s.opts.Phases, s.opts.Merged)
}

// Shape returns the shape the most recent step ran under (before the
// first step: the shape the next step would load).
func (s *CacheSolver) Shape() StepShape {
	if s.steps == 0 {
		return s.shape()
	}
	return s.curShape
}

// Step implements Solver: one implicit time step over all zones.
func (s *CacheSolver) Step() StepStats {
	var stats StepStats
	s.curShape = s.shape()
	if s.opts.PhaseTrace != "" {
		old := s.team.Label()
		defer s.team.SetLabel(old)
	}
	s.ensureScratch()
	if s.zoneRes == nil {
		s.zoneRes = make([]ZoneResidual, len(s.zones))
	}
	sumsq, n := 0.0, 0
	for i := range s.scratch {
		s.scratch[i].maxDelta = 0
	}
	for _, set := range s.zoneScratch {
		for _, sc := range set {
			sc.maxDelta = 0
		}
	}
	if s.ifbufs != nil {
		captureInterfaces(s.zones, s.cfg.Interfaces, s.ifbufs)
	}
	if s.outer != nil {
		// MLP: zones advance concurrently, each on its own team. The
		// per-zone results land in zone-indexed slots, so aggregation
		// order — and therefore every reported float — matches the
		// sequential path bitwise.
		sumsqs := make([]float64, len(s.zones))
		ns := make([]int, len(s.zones))
		tasks := make([]func(), len(s.zones))
		for zi := range s.zones {
			zi := zi
			tasks[zi] = func() {
				sumsqs[zi], ns[zi] = s.stepZoneOn(zi, s.opts.ZoneTeams[zi], s.zoneScratch[zi])
			}
		}
		s.outer.Sections(tasks...)
		for zi := range s.zones {
			s.zoneRes[zi] = ZoneResidual{SumSq: sumsqs[zi], Points: ns[zi]}
			sumsq += sumsqs[zi]
			n += ns[zi]
		}
	} else {
		for zi := range s.zones {
			zss, zn := s.stepZone(zi)
			s.zoneRes[zi] = ZoneResidual{SumSq: zss, Points: zn}
			sumsq += zss
			n += zn
		}
	}
	for _, sc := range s.scratch {
		if sc.maxDelta > stats.MaxDelta {
			stats.MaxDelta = sc.maxDelta
		}
	}
	for _, set := range s.zoneScratch {
		for _, sc := range set {
			if sc.maxDelta > stats.MaxDelta {
				stats.MaxDelta = sc.maxDelta
			}
		}
	}
	if n > 0 {
		stats.Residual = math.Sqrt(sumsq / float64(n))
	}
	stats.Flops = s.flopsPerStep()
	s.steps++
	return stats
}

func (s *CacheSolver) flopsPerStep() float64 {
	interior := 0
	for _, zs := range s.zones {
		z := zs.Zone
		interior += (z.JMax - 2) * (z.KMax - 2) * (z.LMax - 2)
	}
	return float64(interior) * FlopsPerPoint()
}

// stepZone advances one zone on the solver's primary team.
func (s *CacheSolver) stepZone(zi int) (sumsq float64, n int) {
	return s.stepZoneOn(zi, s.team, s.scratch)
}

// stepZoneOn advances one zone on the given team with the given
// per-worker scratch and returns the residual sum of squares and
// interior point count.
func (s *CacheSolver) stepZoneOn(zi int, team *parloop.Team, scratch []*cacheScratch) (sumsq float64, n int) {
	sh := s.curShape
	if sh.Merged && team.Workers() > 1 {
		s.relabel(team, "step")
		return s.stepZoneMerged(zi, team, scratch)
	}
	zs := s.zones[zi]
	z := zs.Zone
	nl, nk := z.LMax-2, z.KMax-2

	// phase relabels the tracer for the phase's regions (if phase
	// tracing is on) and charges the phase's wall-clock time to the
	// profiler (if any).
	phase := func(name string, fn func()) {
		s.relabel(team, name)
		if s.opts.Profiler == nil {
			fn()
			return
		}
		s.opts.Profiler.Time(z.Name+"/"+name, fn)
	}

	phase("bc", func() {
		if sh.BC && team.Workers() > 1 {
			team.Region(func(ctx *parloop.WorkerCtx) {
				s.bcWorker(zs, ctx.ID(), ctx.Workers())
			})
		} else {
			zs.applyBC(&s.cfg)
		}
		if s.ifbufs != nil {
			applyInterfacesTo(zi, s.zones, s.cfg.Interfaces, s.ifbufs)
		}
		if s.opts.BoundaryHook != nil {
			s.opts.BoundaryHook(zi)
		}
	})

	// Explicit right-hand side (J+K passes share the L partition and
	// need no barrier between them; the L pass re-partitions over K).
	// Fissioned, each pass is its own region — or serial on the calling
	// goroutine — so a plan can parallelize one side of the mixed body
	// while leaving the other serial. The passes were barrier-separated
	// already, so every variant computes identical bits.
	if sh.FissionRHS {
		phase("rhs-jk", func() {
			if sh.RHSJK && team.Workers() > 1 {
				team.Region(func(ctx *parloop.WorkerCtx) {
					lo, hi := ctx.Range(nl)
					rhsPassJK(zs, &s.cfg, scratch[ctx.ID()], 1+lo, 1+hi)
				})
			} else {
				rhsPassJK(zs, &s.cfg, scratch[0], 1, 1+nl)
			}
		})
		phase("rhs-l", func() {
			if sh.RHSL && team.Workers() > 1 {
				team.Region(func(ctx *parloop.WorkerCtx) {
					lo, hi := ctx.Range(nk)
					rhsPassL(zs, &s.cfg, scratch[ctx.ID()], 1+lo, 1+hi)
				})
			} else {
				rhsPassL(zs, &s.cfg, scratch[0], 1, 1+nk)
			}
		})
	} else {
		phase("rhs", func() {
			if sh.RHSJK && sh.RHSL && team.Workers() > 1 {
				team.Region(func(ctx *parloop.WorkerCtx) {
					sc := scratch[ctx.ID()]
					lo, hi := ctx.Range(nl)
					rhsPassJK(zs, &s.cfg, sc, 1+lo, 1+hi)
					ctx.Barrier()
					lo, hi = ctx.Range(nk)
					rhsPassL(zs, &s.cfg, sc, 1+lo, 1+hi)
				})
			} else {
				sc := scratch[0]
				rhsPassJK(zs, &s.cfg, sc, 1, 1+nl)
				rhsPassL(zs, &s.cfg, sc, 1, 1+nk)
			}
		})
	}

	phase("residual", func() {
		sumsq, n = zs.residualSumSq()
	})

	// Implicit sweeps: J and K share the L partition (one region, no
	// barrier — merged loops); L re-partitions over K and applies the
	// update.
	phase("sweep-jk", func() {
		if sh.SweepJK && team.Workers() > 1 {
			team.Region(func(ctx *parloop.WorkerCtx) {
				sc := scratch[ctx.ID()]
				lo, hi := ctx.Range(nl)
				s.sweepJK(zs, sc, 1+lo, 1+hi)
			})
		} else {
			s.sweepJK(zs, scratch[0], 1, 1+nl)
		}
	})
	phase("sweep-l", func() {
		if sh.SweepL && team.Workers() > 1 {
			team.Region(func(ctx *parloop.WorkerCtx) {
				sc := scratch[ctx.ID()]
				lo, hi := ctx.Range(nk)
				s.sweepLUpdate(zs, sc, 1+lo, 1+hi)
			})
		} else {
			s.sweepLUpdate(zs, scratch[0], 1, 1+nk)
		}
	})
	return sumsq, n
}

// relabel points the team's tracer at one phase of the step, so the
// trace ranks phases as separate loops. A no-op without PhaseTrace.
func (s *CacheSolver) relabel(team *parloop.Team, name string) {
	if s.opts.PhaseTrace == "" {
		return
	}
	team.SetLabel(s.opts.PhaseTrace + "/" + name)
}

// stepZoneMerged is stepZone with every phase hoisted into a single
// parallel region (Example 3), phases separated by barriers.
func (s *CacheSolver) stepZoneMerged(zi int, team *parloop.Team, scratch []*cacheScratch) (sumsq float64, n int) {
	zs := s.zones[zi]
	z := zs.Zone
	nl, nk := z.LMax-2, z.KMax-2
	team.Region(func(ctx *parloop.WorkerCtx) {
		id := ctx.ID()
		sc := scratch[id]
		if s.curShape.BC {
			s.bcWorker(zs, id, ctx.Workers())
		} else if id == 0 {
			zs.applyBC(&s.cfg)
		}
		if s.ifbufs != nil {
			// The exchange overrides coupled faces after all BC writes.
			ctx.Barrier()
			if id == 0 {
				applyInterfacesTo(zi, s.zones, s.cfg.Interfaces, s.ifbufs)
			}
		}
		if s.opts.BoundaryHook != nil {
			ctx.Barrier()
			if id == 0 {
				s.opts.BoundaryHook(zi)
			}
		}
		ctx.Barrier()
		llo, lhi := ctx.Range(nl)
		klo, khi := ctx.Range(nk)
		rhsPassJK(zs, &s.cfg, sc, 1+llo, 1+lhi)
		ctx.Barrier()
		rhsPassL(zs, &s.cfg, sc, 1+klo, 1+khi)
		ctx.Barrier()
		if id == 0 {
			sumsq, n = zs.residualSumSq()
		}
		ctx.Barrier()
		s.sweepJK(zs, sc, 1+llo, 1+lhi)
		ctx.Barrier()
		s.sweepLUpdate(zs, sc, 1+klo, 1+khi)
	})
	return sumsq, n
}

// bcWorker applies this worker's share of the boundary conditions,
// partitioned over the L dimension of the zone. It delegates to the
// same per-point routine as the serial path, so results are identical.
func (s *CacheSolver) bcWorker(zs *ZoneState, worker, workers int) {
	z := zs.Zone
	lo, hi := parloop.StaticRange(z.LMax, workers, worker)
	for l := lo; l < hi; l++ {
		for k := 0; k < z.KMax; k++ {
			for j := 0; j < z.JMax; j++ {
				if j == 0 || j == z.JMax-1 || k == 0 || k == z.KMax-1 || l == 0 || l == z.LMax-1 {
					zs.applyBCPoint(&s.cfg, j, k, l)
				}
			}
		}
	}
}

func clampInterior(i, n int) int {
	if i == 0 {
		return 1
	}
	if i == n-1 {
		return n - 2
	}
	return i
}

// rhsPassJK computes the J- and K-direction right-hand-side
// contributions for the L slab [l0, l1). The J pass initializes R; the
// K pass accumulates into it. Both touch only points within the slab,
// so the two passes merge under one parallel region (Example 2). It is
// shared by every solver variant that stores point-major fields.
func rhsPassJK(zs *ZoneState, cfg *Config, sc *cacheScratch, l0, l1 int) {
	z := zs.Zone
	nJ, nK := z.JMax, z.KMax
	for l := l0; l < l1; l++ {
		for k := 1; k <= z.KMax-2; k++ {
			loadLine(&zs.Q, euler.X, k, l, sc.p.q, nJ)
			sc.kern.rhsFlux(euler.X, sc.p.q, sc.flux, sc.sigma, nJ)
			zeroLine(sc.p.r, nJ)
			sc.kern.rhsAccum(sc.p.q, sc.flux, sc.sigma, sc.p.r, nJ, z.DJ, cfg.Dt, cfg.Eps4, cfg.Eps2B, zs.geom[euler.X])
			storeLineInterior(&zs.R, euler.X, k, l, sc.p.r, nJ)
		}
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Y, j, l, sc.p.q, nK)
			sc.kern.rhsFlux(euler.Y, sc.p.q, sc.flux, sc.sigma, nK)
			loadLine(&zs.R, euler.Y, j, l, sc.p.r, nK)
			sc.kern.rhsAccum(sc.p.q, sc.flux, sc.sigma, sc.p.r, nK, z.DK, cfg.Dt, cfg.Eps4, cfg.Eps2B, zs.geom[euler.Y])
			storeLineInterior(&zs.R, euler.Y, j, l, sc.p.r, nK)
		}
	}
}

// rhsPassL accumulates the L-direction right-hand-side contribution for
// the K slab [k0, k1). It reads and writes points across the whole L
// extent, so a barrier must separate it from the J/K passes.
func rhsPassL(zs *ZoneState, cfg *Config, sc *cacheScratch, k0, k1 int) {
	z := zs.Zone
	nL := z.LMax
	for k := k0; k < k1; k++ {
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Z, j, k, sc.p.q, nL)
			sc.kern.rhsFlux(euler.Z, sc.p.q, sc.flux, sc.sigma, nL)
			loadLine(&zs.R, euler.Z, j, k, sc.p.r, nL)
			sc.kern.rhsAccum(sc.p.q, sc.flux, sc.sigma, sc.p.r, nL, z.DL, cfg.Dt, cfg.Eps4, cfg.Eps2B, zs.geom[euler.Z])
			if cfg.Viscous {
				viscousLineAccum(sc.p.q, sc.p.r, nL, z.DL, cfg.Dt, cfg.Re, zs.geom[euler.Z])
			}
			storeLineInterior(&zs.R, euler.Z, j, k, sc.p.r, nL)
		}
	}
}

// sweepJK applies the J and K implicit factors for the L slab [l0, l1).
func (s *CacheSolver) sweepJK(zs *ZoneState, sc *cacheScratch, l0, l1 int) {
	z, cfg := zs.Zone, &s.cfg
	nJ, nK := z.JMax, z.KMax
	for l := l0; l < l1; l++ {
		for k := 1; k <= z.KMax-2; k++ {
			loadLine(&zs.Q, euler.X, k, l, sc.p.q, nJ)
			loadLine(&zs.R, euler.X, k, l, sc.p.r, nJ)
			sc.kern.sweepLine(sc.p, nJ, euler.X, z.DJ, cfg.Dt, cfg.EpsI, 0, zs.geom[euler.X], cfg.ImplicitDissip4)
			storeLineInterior(&zs.R, euler.X, k, l, sc.p.r, nJ)
		}
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Y, j, l, sc.p.q, nK)
			loadLine(&zs.R, euler.Y, j, l, sc.p.r, nK)
			sc.kern.sweepLine(sc.p, nK, euler.Y, z.DK, cfg.Dt, cfg.EpsI, 0, zs.geom[euler.Y], cfg.ImplicitDissip4)
			storeLineInterior(&zs.R, euler.Y, j, l, sc.p.r, nK)
		}
	}
}

// sweepLUpdate applies the L implicit factor and the conserved-variable
// update for the K slab [k0, k1).
func (s *CacheSolver) sweepLUpdate(zs *ZoneState, sc *cacheScratch, k0, k1 int) {
	z, cfg := zs.Zone, &s.cfg
	nL := z.LMax
	for k := k0; k < k1; k++ {
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Z, j, k, sc.p.q, nL)
			loadLine(&zs.R, euler.Z, j, k, sc.p.r, nL)
			sc.kern.sweepLine(sc.p, nL, euler.Z, z.DL, cfg.Dt, cfg.EpsI, cfg.viscRe(), zs.geom[euler.Z], cfg.ImplicitDissip4)
			for i := 1; i <= nL-2; i++ {
				for c := 0; c < euler.NC; c++ {
					d := sc.p.r[i][c]
					sc.p.q[i][c] += d
					if d < 0 {
						d = -d
					}
					if d > sc.maxDelta {
						sc.maxDelta = d
					}
				}
			}
			storeLineInterior(&zs.Q, euler.Z, j, k, sc.p.q, nL)
		}
	}
}
