package f3d

import (
	"fmt"
	"testing"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
)

func benchConfig() Config {
	return DefaultConfig(grid.Single(33, 27, 25))
}

func mustSolver[T Solver](s T, err error) T {
	if err != nil {
		panic(err)
	}
	return s
}

// BenchmarkStepVariants times one full time step of each code shape at
// the same problem size: the repo-level serial-tuning measurement lives
// in the root bench file; this is the per-package view.
func BenchmarkStepVariants(b *testing.B) {
	cfg := benchConfig()
	b.Run("vector", func(b *testing.B) {
		s := mustSolver(NewVectorSolver(cfg))
		InitPulse(s, 0.02)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("cache", func(b *testing.B) {
		s := mustSolver(NewCacheSolver(cfg, CacheOptions{}))
		defer s.Close()
		InitPulse(s, 0.02)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("cache-tuned", func(b *testing.B) {
		s := mustSolver(NewCacheSolver(cfg, CacheOptions{Kernels: TunedKernels}))
		defer s.Close()
		InitPulse(s, 0.02)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
	b.Run("block", func(b *testing.B) {
		s := mustSolver(NewBlockSolver(cfg, CacheOptions{}))
		defer s.Close()
		InitPulse(s, 0.02)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Step()
		}
	})
}

// BenchmarkBlockVsDiagonal isolates the implicit-sweep cost difference
// between the exact block operator and the diagonalized approximation —
// the ablation the BlockSolver exists for.
func BenchmarkBlockVsDiagonal(b *testing.B) {
	cfg := benchConfig()
	const n = 33
	cs := newCacheScratch(n, &scalarKernelSet)
	bs := newBlockScratch(n)
	fs := cfg.Freestream
	for i := 0; i < n; i++ {
		p := fs
		p.U += 0.01 * float64(i%5)
		u := p.Cons()
		cs.p.q[i] = u
		bs.cs.p.q[i] = u
		cs.p.r[i] = linalg.Vec5{1e-3, 0, 0, 0, 1e-3}
		bs.cs.p.r[i] = cs.p.r[i]
	}
	b.Run("diagonal-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sweepLine(cs.p, n, euler.X, 0.01, 0.005, cfg.EpsI, 0, nil)
		}
	})
	solver := mustSolver(NewBlockSolver(cfg, CacheOptions{}))
	defer solver.Close()
	b.Run("block-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			solver.blockSweepLine(bs, n, euler.X, 0.01)
		}
	})
}

// BenchmarkSweepLineKernels compares the scalar and tuned implicit
// sweep kernels on one line — the tuned batch solve plus hoisted band
// assembly is the step-time lever this layer exists for.
func BenchmarkSweepLineKernels(b *testing.B) {
	cfg := benchConfig()
	const n = 64
	for _, impl := range []KernelImpl{ScalarKernels, TunedKernels} {
		kern := kernelsFor(impl)
		for _, dissip4 := range []bool{false, true} {
			name := impl.String()
			if dissip4 {
				name += "-dissip4"
			}
			b.Run(name, func(b *testing.B) {
				sc := newCacheScratch(n, kern)
				fs := cfg.Freestream
				r0 := make([]linalg.Vec5, n)
				for i := 0; i < n; i++ {
					p := fs
					p.U += 0.01 * float64(i%5)
					sc.p.q[i] = p.Cons()
					r0[i] = linalg.Vec5{1e-3, 0, 0, 0, 1e-3}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// The sweep solves r in place; reload it so every
					// iteration works on the same, well-scaled data.
					copy(sc.p.r, r0)
					kern.sweepLine(sc.p, n, euler.X, 0.01, 0.005, cfg.EpsI, 0, nil, dissip4)
				}
			})
		}
	}
}

func BenchmarkRHSLineKernels(b *testing.B) {
	const n = 128
	cfg := benchConfig()
	q := make([]linalg.Vec5, n)
	r := make([]linalg.Vec5, n)
	flux := make([]linalg.Vec5, n)
	sigma := make([]float64, n)
	for i := range q {
		p := cfg.Freestream
		p.Rho += 0.001 * float64(i%7)
		q[i] = p.Cons()
	}
	b.Run("flux", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rhsLineFlux(euler.X, q, flux, sigma, n)
		}
	})
	b.Run("accum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rhsLineAccum(q, flux, sigma, r, n, 0.01, 0.005, cfg.Eps4, cfg.Eps2B, nil)
		}
	})
	b.Run("viscous", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			viscousLineAccum(q, r, n, 0.01, 0.005, 1000, nil)
		}
	})
}

// BenchmarkLayoutGather measures the line gathers for the three axes in
// both layouts — the stride costs the paper's index reordering attacks.
func BenchmarkLayoutGather(b *testing.B) {
	z := grid.NewZone("z", 64, 64, 64)
	for _, layout := range []grid.Layout{grid.ComponentMajor, grid.PointMajor} {
		f := grid.NewStateField(&z, euler.NC, layout)
		dst := make([]linalg.Vec5, 64)
		for _, ax := range []euler.Axis{euler.X, euler.Y, euler.Z} {
			b.Run(fmt.Sprintf("%v/%v", layout, ax), func(b *testing.B) {
				b.SetBytes(64 * euler.NC * 8)
				for i := 0; i < b.N; i++ {
					loadLine(&f, ax, 10, 12, dst, 64)
				}
			})
		}
	}
}

func BenchmarkZonalExchange(b *testing.B) {
	c, ifaces := SplitAlongJ("z", 41, 33, 31, 20)
	cfg := DefaultConfig(c)
	cfg.Interfaces = ifaces
	s := mustSolver(NewCacheSolver(cfg, CacheOptions{}))
	defer s.Close()
	InitUniform(s)
	bufs := newIfaceBuffers(cfg.Case, ifaces)
	b.Run("capture", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			captureInterfaces(s.Zones(), ifaces, bufs)
		}
	})
	b.Run("apply", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			applyInterfacesTo(0, s.Zones(), ifaces, bufs)
			applyInterfacesTo(1, s.Zones(), ifaces, bufs)
		}
	})
}
