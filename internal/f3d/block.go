package f3d

import (
	"fmt"
	"math"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/linalg"
	"repro/internal/parloop"
)

// BlockSolver is the reference, non-diagonalized Beam–Warming solver:
// each direction's implicit factor keeps the full 5×5 flux Jacobian
// and is solved as a block-tridiagonal system. The diagonalized scheme
// used by CacheSolver/VectorSolver approximates this operator with
// scalar systems in characteristic variables; the block solver is the
// operator it approximates.
//
// Both schemes share the explicit right-hand side, so they converge to
// the same steady states; the time paths differ. The block solve costs
// several times more per point (one 5×5 LU plus block multiplies per
// row versus five scalar Thomas rows) — the classic trade the
// vector-era codes resolved in favor of diagonalization, measured by
// BenchmarkBlockVsDiagonal.
type BlockSolver struct {
	cfg       Config
	zones     []*ZoneState
	team      *parloop.Team
	ownedTeam bool
	phases    ParallelPhases
	scratch   []*blockScratch
	ifbufs    []ifaceBuffer
	steps     int
}

// blockScratch is one worker's working set for the block sweeps: the
// pencil state plus block bands. Still pencil-sized — the block scheme
// is cache-tuned too; it is the arithmetic, not the memory shape, that
// costs more.
type blockScratch struct {
	cs *cacheScratch // shared RHS scratch
	// geom is the metric of the axis being swept (nil for uniform);
	// set by the sweep drivers before each blockSweepLine call.
	geom *axisGeom
	jac  []linalg.Mat5
	ba   []linalg.Mat5
	bb   []linalg.Mat5
	bc   []linalg.Mat5
	d    []linalg.Vec5
	ws   *linalg.BlockTridiagWorkspace
}

func newBlockScratch(nmax int) *blockScratch {
	return &blockScratch{
		cs:  newCacheScratch(nmax, &scalarKernelSet),
		jac: make([]linalg.Mat5, nmax),
		ba:  make([]linalg.Mat5, nmax),
		bb:  make([]linalg.Mat5, nmax),
		bc:  make([]linalg.Mat5, nmax),
		d:   make([]linalg.Vec5, nmax),
		ws:  linalg.NewBlockTridiagWorkspace(nmax),
	}
}

// NewBlockSolver builds the block-implicit solver. opts.Merged is not
// supported (the block solver exists for numerical comparison, not
// synchronization ablations).
func NewBlockSolver(cfg Config, opts CacheOptions) (*BlockSolver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Merged {
		return nil, fmt.Errorf("f3d: BlockSolver does not support merged regions")
	}
	if cfg.ImplicitDissip4 {
		return nil, fmt.Errorf("f3d: BlockSolver does not support ImplicitDissip4 (block-tridiagonal factors)")
	}
	s := &BlockSolver{cfg: cfg, team: opts.Team, phases: opts.Phases}
	if s.team == nil {
		s.team = parloop.NewTeam(1)
		s.ownedTeam = true
	}
	nmax := 0
	for i := range cfg.Case.Zones {
		z := &cfg.Case.Zones[i]
		s.zones = append(s.zones, newZoneState(z, grid.PointMajor))
		if d := z.MaxDim(); d > nmax {
			nmax = d
		}
	}
	s.scratch = make([]*blockScratch, s.team.Workers())
	for i := range s.scratch {
		s.scratch[i] = newBlockScratch(nmax)
	}
	if len(cfg.Interfaces) > 0 {
		s.ifbufs = newIfaceBuffers(cfg.Case, cfg.Interfaces)
	}
	return s, nil
}

// Close releases the solver's private team (if it created one).
func (s *BlockSolver) Close() {
	if s.ownedTeam {
		s.team.Close()
	}
}

// Zones implements Solver.
func (s *BlockSolver) Zones() []*ZoneState { return s.zones }

// Config implements Solver.
func (s *BlockSolver) Config() *Config { return &s.cfg }

// Steps returns the number of time steps taken.
func (s *BlockSolver) Steps() int { return s.steps }

// Step implements Solver.
func (s *BlockSolver) Step() StepStats {
	var stats StepStats
	sumsq, n := 0.0, 0
	for i := range s.scratch {
		s.scratch[i].cs.maxDelta = 0
	}
	if s.ifbufs != nil {
		captureInterfaces(s.zones, s.cfg.Interfaces, s.ifbufs)
	}
	for zi := range s.zones {
		zss, zn := s.stepZone(zi)
		sumsq += zss
		n += zn
	}
	for _, sc := range s.scratch {
		if sc.cs.maxDelta > stats.MaxDelta {
			stats.MaxDelta = sc.cs.maxDelta
		}
	}
	if n > 0 {
		stats.Residual = math.Sqrt(sumsq / float64(n))
	}
	interior := 0
	for _, zs := range s.zones {
		z := zs.Zone
		interior += (z.JMax - 2) * (z.KMax - 2) * (z.LMax - 2)
	}
	// The block factors cost roughly 5x the diagonalized sweeps per
	// point (5×5 LU + block multiplies per row); keep the RHS estimate
	// and scale the sweep share.
	stats.Flops = float64(interior) * (flopsRHSPerPoint + 3*5*flopsSweepPerPoint + flopsUpdatePerPoint)
	s.steps++
	return stats
}

func (s *BlockSolver) stepZone(zi int) (sumsq float64, n int) {
	zs := s.zones[zi]
	z := zs.Zone
	nl, nk := z.LMax-2, z.KMax-2

	zs.applyBC(&s.cfg)
	if s.ifbufs != nil {
		applyInterfacesTo(zi, s.zones, s.cfg.Interfaces, s.ifbufs)
	}

	if s.phases.RHS && s.team.Workers() > 1 {
		s.team.Region(func(ctx *parloop.WorkerCtx) {
			sc := s.scratch[ctx.ID()].cs
			lo, hi := ctx.Range(nl)
			rhsPassJK(zs, &s.cfg, sc, 1+lo, 1+hi)
			ctx.Barrier()
			lo, hi = ctx.Range(nk)
			rhsPassL(zs, &s.cfg, sc, 1+lo, 1+hi)
		})
	} else {
		sc := s.scratch[0].cs
		rhsPassJK(zs, &s.cfg, sc, 1, 1+nl)
		rhsPassL(zs, &s.cfg, sc, 1, 1+nk)
	}

	sumsq, n = zs.residualSumSq()

	if s.phases.SweepJK && s.team.Workers() > 1 {
		s.team.Region(func(ctx *parloop.WorkerCtx) {
			lo, hi := ctx.Range(nl)
			s.blockSweepJK(zs, s.scratch[ctx.ID()], 1+lo, 1+hi)
		})
	} else {
		s.blockSweepJK(zs, s.scratch[0], 1, 1+nl)
	}
	if s.phases.SweepL && s.team.Workers() > 1 {
		s.team.Region(func(ctx *parloop.WorkerCtx) {
			lo, hi := ctx.Range(nk)
			s.blockSweepLUpdate(zs, s.scratch[ctx.ID()], 1+lo, 1+hi)
		})
	} else {
		s.blockSweepLUpdate(zs, s.scratch[0], 1, 1+nk)
	}
	return sumsq, n
}

func (s *BlockSolver) blockSweepJK(zs *ZoneState, sc *blockScratch, l0, l1 int) {
	z := zs.Zone
	nJ, nK := z.JMax, z.KMax
	for l := l0; l < l1; l++ {
		for k := 1; k <= z.KMax-2; k++ {
			loadLine(&zs.Q, euler.X, k, l, sc.cs.p.q, nJ)
			loadLine(&zs.R, euler.X, k, l, sc.cs.p.r, nJ)
			sc.geom = zs.geom[euler.X]
			s.blockSweepLine(sc, nJ, euler.X, z.DJ)
			storeLineInterior(&zs.R, euler.X, k, l, sc.cs.p.r, nJ)
		}
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Y, j, l, sc.cs.p.q, nK)
			loadLine(&zs.R, euler.Y, j, l, sc.cs.p.r, nK)
			sc.geom = zs.geom[euler.Y]
			s.blockSweepLine(sc, nK, euler.Y, z.DK)
			storeLineInterior(&zs.R, euler.Y, j, l, sc.cs.p.r, nK)
		}
	}
}

func (s *BlockSolver) blockSweepLUpdate(zs *ZoneState, sc *blockScratch, k0, k1 int) {
	z := zs.Zone
	nL := z.LMax
	for k := k0; k < k1; k++ {
		for j := 1; j <= z.JMax-2; j++ {
			loadLine(&zs.Q, euler.Z, j, k, sc.cs.p.q, nL)
			loadLine(&zs.R, euler.Z, j, k, sc.cs.p.r, nL)
			sc.geom = zs.geom[euler.Z]
			s.blockSweepLine(sc, nL, euler.Z, z.DL)
			for i := 1; i <= nL-2; i++ {
				for c := 0; c < euler.NC; c++ {
					d := sc.cs.p.r[i][c]
					sc.cs.p.q[i][c] += d
					if d < 0 {
						d = -d
					}
					if d > sc.cs.maxDelta {
						sc.cs.maxDelta = d
					}
				}
			}
			storeLineInterior(&zs.Q, euler.Z, j, k, sc.cs.p.q, nL)
		}
	}
}

// blockSweepLine applies one direction's exact implicit factor to one
// line: solve (I + ν δ(A·) − μ∇Δ) Δ = r as a block-tridiagonal system.
func (s *BlockSolver) blockSweepLine(sc *blockScratch, n int, ax euler.Axis, h float64) {
	// sc.geom is set by the caller for the sweep axis.
	cfg := &s.cfg
	ni := n - 2
	if ni < 1 {
		return
	}
	nu := cfg.Dt / (2 * h)
	muScale := cfg.EpsI * cfg.Dt / h
	q := sc.cs.p.q
	r := sc.cs.p.r
	viscous := cfg.viscRe() > 0 && ax == euler.Z
	g := sc.geom
	// Jacobians and spectral radii at interior points.
	for i := 1; i <= ni; i++ {
		sc.jac[i] = euler.Jacobian(ax, q[i])
	}
	for i := 1; i <= ni; i++ {
		sig := euler.SpectralRadius(ax, q[i])
		nui, mu := nu, muScale*sig
		if g != nil {
			nui = cfg.Dt * g.inv2h[i]
			mu = cfg.EpsI * cfg.Dt * g.invh[i] * sig
		}
		// Viscous augmentation: diagonal entries db on b, da/dc on the
		// off-diagonal blocks.
		var vda, vdb, vdc float64
		if viscous {
			if g != nil {
				vda, vdb, vdc = viscousImplicitRowVar(cfg.Dt, cfg.Re, q[i][0], g.invdm[i-1], g.invdm[i], g.invh[i])
			} else {
				vda, vdb, vdc = viscousImplicitRow(cfg.Dt, h, cfg.Re, q[i][0])
			}
		}
		// Row i (0-based row i-1): a = −ν A_{i−1} − μI + vda·I,
		// b = (1 + 2μ + vdb) I, c = ν A_{i+1} − μI + vdc·I.
		var a, b, c linalg.Mat5
		if i > 1 {
			a = sc.jac[i-1]
			for e := range a {
				a[e] *= -nui
			}
		}
		if i < ni {
			c = sc.jac[i+1]
			for e := range c {
				c[e] *= nui
			}
		}
		for d := 0; d < linalg.BlockSize; d++ {
			idx := d*linalg.BlockSize + d
			a[idx] += -mu + vda
			c[idx] += -mu + vdc
			b[idx] = 1 + 2*mu + vdb
		}
		sc.ba[i-1], sc.bb[i-1], sc.bc[i-1] = a, b, c
		sc.d[i-1] = r[i]
	}
	if err := linalg.SolveBlockTridiag(sc.ws, sc.ba[:ni], sc.bb[:ni], sc.bc[:ni], sc.d[:ni]); err != nil {
		// The factored operator is diagonally dominant for stable time
		// steps; a singular system indicates a non-physical state and is
		// a solver bug.
		panic(fmt.Sprintf("f3d: block sweep failed: %v", err))
	}
	for i := 1; i <= ni; i++ {
		r[i] = sc.d[i-1]
	}
	r[0] = linalg.Vec5{}
	r[n-1] = linalg.Vec5{}
}
