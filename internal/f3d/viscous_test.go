package f3d

import (
	"math"
	"testing"

	"repro/internal/euler"
	"repro/internal/grid"
	"repro/internal/parloop"
)

func viscousConfig(re float64) Config {
	cfg := DefaultConfig(grid.Single(9, 9, 11))
	cfg.Viscous = true
	cfg.Re = re
	return cfg
}

func TestViscousValidation(t *testing.T) {
	cfg := viscousConfig(0)
	if err := cfg.Validate(); err == nil {
		t.Error("viscous config with Re=0 accepted")
	}
	cfg.Re = 100
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid viscous config rejected: %v", err)
	}
}

func TestViscousUniformFlowPreservedExactly(t *testing.T) {
	// The viscous stencil is built from neighbor differences, so a
	// uniform freestream must remain a bitwise fixed point.
	cfg := viscousConfig(500)
	s := newCache(t, cfg, CacheOptions{})
	InitUniform(s)
	for i := 0; i < 5; i++ {
		st := s.Step()
		if st.Residual != 0 || st.MaxDelta != 0 {
			t.Fatalf("step %d: viscous uniform flow drifted (res %g, dq %g)", i, st.Residual, st.MaxDelta)
		}
	}
}

func TestViscousVariantsAgreeBitwise(t *testing.T) {
	cfg := viscousConfig(200)
	cs := newCache(t, cfg, CacheOptions{})
	vs := newVector(t, cfg)
	InitPulse(cs, 0.02)
	InitPulse(vs, 0.02)
	for i := 0; i < 6; i++ {
		sc := cs.Step()
		sv := vs.Step()
		if sc.Residual != sv.Residual {
			t.Fatalf("step %d: viscous residuals differ: %.17g vs %.17g", i, sc.Residual, sv.Residual)
		}
	}
	if d := MaxPointwiseDiff(cs, vs); d != 0 {
		t.Fatalf("viscous variants differ by %g", d)
	}
}

func TestViscousSerialParallelAgree(t *testing.T) {
	cfg := viscousConfig(200)
	serial := newCache(t, cfg, CacheOptions{})
	team := parloop.NewTeam(3)
	defer team.Close()
	par := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases()})
	InitPulse(serial, 0.02)
	InitPulse(par, 0.02)
	for i := 0; i < 5; i++ {
		serial.Step()
		par.Step()
	}
	if d := MaxPointwiseDiff(serial, par); d != 0 {
		t.Fatalf("viscous serial/parallel differ by %g", d)
	}
}

// shearEnergy measures the kinetic energy of the u-velocity deviation
// from freestream, the quantity viscosity must dissipate.
func shearEnergy(s Solver) float64 {
	cfg := s.Config()
	e := 0.0
	var buf [euler.NC]float64
	for _, zs := range s.Zones() {
		z := zs.Zone
		for l := 1; l < z.LMax-1; l++ {
			for k := 1; k < z.KMax-1; k++ {
				for j := 1; j < z.JMax-1; j++ {
					zs.Q.Point(j, k, l, buf[:])
					u := buf[1] / buf[0]
					du := u - cfg.Freestream.U
					e += du * du
				}
			}
		}
	}
	return e
}

// initShear superimposes a sinusoidal u-velocity profile varying in L —
// a shear layer for the thin-layer terms to diffuse.
func initShear(s Solver, amp float64) {
	cfg := s.Config()
	InitUniform(s)
	for _, zs := range s.Zones() {
		z := zs.Zone
		for l := 1; l < z.LMax-1; l++ {
			phase := 2 * math.Pi * float64(l) / float64(z.LMax-1)
			du := amp * math.Sin(phase)
			for k := 1; k < z.KMax-1; k++ {
				for j := 1; j < z.JMax-1; j++ {
					p := euler.Prim{
						Rho: cfg.Freestream.Rho,
						U:   cfg.Freestream.U + du,
						V:   cfg.Freestream.V,
						W:   cfg.Freestream.W,
						P:   cfg.Freestream.P,
					}
					u := p.Cons()
					zs.Q.SetPoint(j, k, l, u[:])
				}
			}
		}
	}
}

func TestViscosityDampsShearFasterAtLowerRe(t *testing.T) {
	// A shear profile varying along L decays under the thin-layer terms,
	// and decays faster at lower Reynolds number.
	decay := func(re float64) float64 {
		cfg := viscousConfig(re)
		s, err := NewCacheSolver(cfg, CacheOptions{})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		initShear(s, 0.05)
		e0 := shearEnergy(s)
		for i := 0; i < 25; i++ {
			s.Step()
		}
		e1 := shearEnergy(s)
		if e0 <= 0 {
			t.Fatal("no initial shear energy")
		}
		return e1 / e0
	}
	lowRe := decay(50)
	highRe := decay(5000)
	if lowRe >= 1 {
		t.Errorf("shear energy did not decay at Re=50: ratio %g", lowRe)
	}
	if lowRe >= highRe {
		t.Errorf("lower Re should damp faster: Re=50 ratio %g vs Re=5000 ratio %g", lowRe, highRe)
	}
}

func TestViscousStability(t *testing.T) {
	// Strong viscosity plus the implicit augmentation must stay stable
	// at the default (inviscid-sized) time step.
	cfg := viscousConfig(10)
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.05)
	for i := 0; i < 40; i++ {
		st := s.Step()
		if math.IsNaN(st.Residual) || math.IsInf(st.Residual, 0) {
			t.Fatalf("step %d: viscous run blew up", i)
		}
	}
}
