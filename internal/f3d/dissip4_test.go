package f3d

import (
	"math"
	"testing"

	"repro/internal/parloop"
)

func dissip4Config() Config {
	cfg := testConfig(12, 11, 10)
	cfg.ImplicitDissip4 = true
	return cfg
}

func TestDissip4UniformFlowPreservedExactly(t *testing.T) {
	s := newCache(t, dissip4Config(), CacheOptions{})
	InitUniform(s)
	for i := 0; i < 5; i++ {
		st := s.Step()
		if st.Residual != 0 || st.MaxDelta != 0 {
			t.Fatalf("step %d: pentadiagonal mode drifted on uniform flow", i)
		}
	}
}

func TestDissip4StableAndConverges(t *testing.T) {
	s := newCache(t, dissip4Config(), CacheOptions{})
	InitPulse(s, 0.05)
	first := s.Step()
	var last StepStats
	for i := 0; i < 60; i++ {
		last = s.Step()
		if math.IsNaN(last.Residual) {
			t.Fatalf("pentadiagonal mode blew up at step %d", i)
		}
	}
	if last.Residual > first.Residual/10 {
		t.Errorf("pentadiagonal mode did not converge: %g -> %g", first.Residual, last.Residual)
	}
}

func TestDissip4SerialParallelAgreeBitwise(t *testing.T) {
	cfg := dissip4Config()
	serial := newCache(t, cfg, CacheOptions{})
	team := parloop.NewTeam(3)
	defer team.Close()
	par := newCache(t, cfg, CacheOptions{Team: team, Phases: AllPhases()})
	InitPulse(serial, 0.02)
	InitPulse(par, 0.02)
	for i := 0; i < 5; i++ {
		serial.Step()
		par.Step()
	}
	if d := MaxPointwiseDiff(serial, par); d != 0 {
		t.Fatalf("pentadiagonal serial/parallel differ by %g", d)
	}
}

func TestDissip4DiffersFromTridiagonalMode(t *testing.T) {
	// The two implicit operators take different paths to the same steady
	// state.
	a := newCache(t, dissip4Config(), CacheOptions{})
	cfg2 := testConfig(12, 11, 10)
	b := newCache(t, cfg2, CacheOptions{})
	InitPulse(a, 0.03)
	InitPulse(b, 0.03)
	ra := a.Step()
	rb := b.Step()
	if ra.Residual != rb.Residual {
		t.Error("first residual should match (shared explicit RHS)")
	}
	if d := MaxPointwiseDiff(a, b); d == 0 {
		t.Error("implicit operators should differ after a step")
	}
	for i := 0; i < 200; i++ {
		a.Step()
		b.Step()
	}
	if d := MaxPointwiseDiff(a, b); d > 1e-6 {
		t.Errorf("steady states differ by %g", d)
	}
}

func TestDissip4UnsupportedVariants(t *testing.T) {
	cfg := dissip4Config()
	if _, err := NewVectorSolver(cfg); err == nil {
		t.Error("VectorSolver accepted ImplicitDissip4")
	}
	if _, err := NewBlockSolver(cfg, CacheOptions{}); err == nil {
		t.Error("BlockSolver accepted ImplicitDissip4")
	}
}

func TestDissip4StretchedViscous(t *testing.T) {
	cfg := stretchedConfig()
	cfg.ImplicitDissip4 = true
	cfg.Viscous, cfg.Re = true, 300
	s := newCache(t, cfg, CacheOptions{})
	InitPulse(s, 0.03)
	for i := 0; i < 40; i++ {
		st := s.Step()
		if math.IsNaN(st.Residual) {
			t.Fatalf("stretched viscous pentadiagonal run blew up at step %d", i)
		}
	}
}
